(* Tests for the workload library (rng, distributions, stats, report,
   runner) and the Slack policy helper. *)

let test_rng_deterministic () =
  let a = Workload.Rng.create ~seed:1 ~stream:0 in
  let b = Workload.Rng.create ~seed:1 ~stream:0 in
  let xs = List.init 100 (fun _ -> Workload.Rng.next a) in
  let ys = List.init 100 (fun _ -> Workload.Rng.next b) in
  Alcotest.(check (list int)) "same stream, same numbers" xs ys

let test_rng_streams_differ () =
  let a = Workload.Rng.create ~seed:1 ~stream:0 in
  let b = Workload.Rng.create ~seed:1 ~stream:1 in
  let xs = List.init 20 (fun _ -> Workload.Rng.next a) in
  let ys = List.init 20 (fun _ -> Workload.Rng.next b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_below_in_range () =
  let r = Workload.Rng.create ~seed:99 ~stream:3 in
  for _ = 1 to 10_000 do
    let v = Workload.Rng.below r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.below: bound must be positive") (fun () ->
      ignore (Workload.Rng.below r 0))

let test_rng_below_covers () =
  let r = Workload.Rng.create ~seed:5 ~stream:0 in
  let seen = Array.make 10 false in
  for _ = 1 to 5_000 do
    seen.(Workload.Rng.below r 10) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let r = Workload.Rng.create ~seed:8 ~stream:0 in
  for _ = 1 to 1_000 do
    let f = Workload.Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_distribution_stack_balance () =
  let r = Workload.Rng.create ~seed:3 ~stream:0 in
  let pushes = ref 0 and total = 20_000 in
  for _ = 1 to total do
    match Workload.Distribution.stack_op r with
    | Workload.Distribution.Push _ -> incr pushes
    | Workload.Distribution.Pop -> ()
  done;
  let ratio = float_of_int !pushes /. float_of_int total in
  Alcotest.(check bool) "about half pushes" true
    (ratio > 0.45 && ratio < 0.55)

let test_distribution_list_mix () =
  let r = Workload.Rng.create ~seed:4 ~stream:0 in
  let ins = ref 0 and rem = ref 0 and con = ref 0 and total = 30_000 in
  for _ = 1 to total do
    match Workload.Distribution.list_op r with
    | Workload.Distribution.Insert _ -> incr ins
    | Workload.Distribution.Remove _ -> incr rem
    | Workload.Distribution.Contains _ -> incr con
  done;
  let pct x = float_of_int !x /. float_of_int total in
  Alcotest.(check bool) "20% inserts" true (pct ins > 0.17 && pct ins < 0.23);
  Alcotest.(check bool) "20% removes" true (pct rem > 0.17 && pct rem < 0.23);
  Alcotest.(check bool) "60% contains" true (pct con > 0.56 && pct con < 0.64)

let test_distribution_keys_in_range () =
  let r = Workload.Rng.create ~seed:4 ~stream:1 in
  for _ = 1 to 5_000 do
    let k =
      match Workload.Distribution.list_op ~key_range:500 r with
      | Workload.Distribution.Insert k
      | Workload.Distribution.Remove k
      | Workload.Distribution.Contains k ->
          k
    in
    if k < 0 || k >= 500 then Alcotest.fail "key out of range"
  done

let test_initial_keys () =
  let keys = Workload.Distribution.initial_keys ~key_range:1000 ~seed:7 () in
  Alcotest.(check int) "half the range" 500 (List.length keys);
  Alcotest.(check int) "distinct" 500
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun k -> if k < 0 || k >= 1000 then Alcotest.fail "key out of range")
    keys;
  let keys' = Workload.Distribution.initial_keys ~key_range:1000 ~seed:7 () in
  Alcotest.(check (list int)) "deterministic" keys keys'

let feq = Alcotest.float 1e-9

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.check feq "mean" 2.5 (Workload.Stats.mean xs);
  Alcotest.check feq "min" 1.0 (Workload.Stats.min xs);
  Alcotest.check feq "max" 4.0 (Workload.Stats.max xs);
  Alcotest.check (Alcotest.float 1e-6) "std" 1.2909944487 (Workload.Stats.std_dev xs);
  Alcotest.check feq "median" 2.0 (Workload.Stats.median xs);
  Alcotest.check feq "p100" 4.0 (Workload.Stats.percentile xs 100.0);
  Alcotest.check feq "p1" 1.0 (Workload.Stats.percentile xs 1.0)

let test_stats_degenerate () =
  Alcotest.check feq "std of single" 0.0 (Workload.Stats.std_dev [| 5.0 |]);
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Histogram.mean: empty sample array") (fun () ->
      ignore (Workload.Stats.mean [||]))

let test_report_rendering () =
  let t =
    Workload.Report.create ~title:"demo" ~columns:[ "a"; "b" ]
  in
  Workload.Report.add_row t ~label:"1" ~cells:[ "x"; "y" ];
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Workload.Report.print ppf t;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "has title" true
    (String.length s > 4 && String.sub s 0 4 = "demo");
  Alcotest.check_raises "bad row"
    (Invalid_argument "Report.add_row: cell count does not match columns")
    (fun () -> Workload.Report.add_row t ~label:"2" ~cells:[ "only one" ])

let test_report_csv () =
  let t = Workload.Report.create ~title:"t" ~columns:[ "a"; "b" ] in
  Workload.Report.add_row t ~label:"1" ~cells:[ "x"; "y" ];
  Workload.Report.add_row t ~label:"2" ~cells:[ "u"; "v" ];
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Workload.Report.csv ppf t;
  Format.pp_print_flush ppf ();
  Alcotest.(check string) "csv shape" "# t\nthreads,a,b\n1,x,y\n2,u,v\n"
    (Buffer.contents buf)

let test_report_seconds () =
  Alcotest.(check string) "seconds" "1.50s" (Workload.Report.seconds 1.5);
  Alcotest.(check string) "millis" "12.0ms" (Workload.Report.seconds 0.012);
  Alcotest.(check string) "micros" "120us" (Workload.Report.seconds 0.00012);
  Alcotest.(check string) "nan" "-" (Workload.Report.seconds Float.nan)

let test_runner_runs_workers () =
  let counter = Atomic.make 0 in
  let m =
    Workload.Runner.run ~threads:3 ~repeats:2 ~ops_per_thread:100
      ~setup:(fun () -> ())
      ~worker:(fun () ~thread:_ ~ops ->
        for _ = 1 to ops do
          Atomic.incr counter
        done)
      ()
  in
  Alcotest.(check int) "all ops ran twice" 600 (Atomic.get counter);
  Alcotest.(check int) "threads recorded" 3 m.Workload.Runner.threads;
  Alcotest.(check bool) "time positive" true (m.Workload.Runner.seconds > 0.0);
  Alcotest.(check bool) "cas nan when absent" true
    (Float.is_nan m.Workload.Runner.cas_per_op)

let test_runner_propagates_failure () =
  match
    Workload.Runner.run ~threads:2 ~repeats:1 ~ops_per_thread:1
      ~setup:(fun () -> ())
      ~worker:(fun () ~thread ~ops:_ -> if thread = 1 then failwith "worker boom")
      ()
  with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure msg -> Alcotest.(check string) "propagated" "worker boom" msg

let test_runner_invalid_args () =
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Runner.run: threads must be positive") (fun () ->
      ignore
        (Workload.Runner.run ~threads:0 ~repeats:1 ~ops_per_thread:1
           ~setup:(fun () -> ())
           ~worker:(fun () ~thread:_ ~ops:_ -> ())
           ()));
  Alcotest.check_raises "zero repeats"
    (Invalid_argument "Runner.run: repeats must be positive") (fun () ->
      ignore
        (Workload.Runner.run ~threads:1 ~repeats:0 ~ops_per_thread:1
           ~setup:(fun () -> ())
           ~worker:(fun () ~thread:_ ~ops:_ -> ())
           ()))

let test_runner_cas_accounting () =
  let m =
    Workload.Runner.run ~threads:2 ~repeats:1 ~ops_per_thread:50
      ~setup:(fun () -> Lockfree.Treiber_stack.create ())
      ~worker:(fun s ~thread:_ ~ops ->
        for i = 1 to ops do
          Lockfree.Treiber_stack.push s i
        done)
      ~cas_total:(fun s -> Lockfree.Treiber_stack.cas_count s)
      ()
  in
  Alcotest.(check bool) "at least one CAS per push" true
    (m.Workload.Runner.cas_per_op >= 1.0)

let test_slack_policy () =
  let forced = ref [] in
  let s = Fl.Slack.create 3 in
  Fl.Slack.note s (fun () -> forced := 1 :: !forced);
  Fl.Slack.note s (fun () -> forced := 2 :: !forced);
  Alcotest.(check int) "pending below bound" 2 (Fl.Slack.pending s);
  Alcotest.(check (list int)) "nothing forced" [] !forced;
  Fl.Slack.note s (fun () -> forced := 3 :: !forced);
  Alcotest.(check (list int)) "all forced newest-first" [ 1; 2; 3 ] !forced;
  Alcotest.(check int) "reset" 0 (Fl.Slack.pending s)

let test_slack_one_is_immediate () =
  let count = ref 0 in
  let s = Fl.Slack.create 1 in
  Fl.Slack.note s (fun () -> incr count);
  Alcotest.(check int) "forced immediately" 1 !count

let test_slack_drain_partial () =
  let count = ref 0 in
  let s = Fl.Slack.create 100 in
  Fl.Slack.note s (fun () -> incr count);
  Fl.Slack.note s (fun () -> incr count);
  Fl.Slack.drain s;
  Alcotest.(check int) "drained" 2 !count;
  Fl.Slack.drain s;
  Alcotest.(check int) "idempotent" 2 !count

let test_slack_oldest_first_order () =
  let forced = ref [] in
  let s = Fl.Slack.create ~order:Fl.Slack.Oldest_first 3 in
  Fl.Slack.note s (fun () -> forced := 1 :: !forced);
  Fl.Slack.note s (fun () -> forced := 2 :: !forced);
  Fl.Slack.note s (fun () -> forced := 3 :: !forced);
  Alcotest.(check (list int)) "oldest first" [ 3; 2; 1 ] !forced

let test_zipf_skew () =
  let z = Workload.Distribution.zipf ~n:100 () in
  let rng = Workload.Rng.create ~seed:17 ~stream:0 in
  let counts = Array.make 100 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let k = Workload.Distribution.zipf_draw z rng in
    if k < 0 || k >= 100 then Alcotest.fail "rank out of range";
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 0 has weight 1/H(100) ~ 19%; expect it to dominate. *)
  Alcotest.(check bool) "rank 0 most frequent" true
    (Array.for_all (fun c -> c <= counts.(0)) counts);
  let p0 = float_of_int counts.(0) /. float_of_int draws in
  Alcotest.(check bool) "rank 0 frequency plausible" true
    (p0 > 0.15 && p0 < 0.25);
  (* Monotone-ish decay: rank 0 >> rank 50. *)
  Alcotest.(check bool) "heavy head" true (counts.(0) > 10 * counts.(50))

let test_zipf_uniform_exponent_zero () =
  let z = Workload.Distribution.zipf ~exponent:0.0 ~n:10 () in
  let rng = Workload.Rng.create ~seed:18 ~stream:0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let k = Workload.Distribution.zipf_draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* With exponent 0 every rank is equally likely; no rank should be
     wildly over-represented. *)
  Array.iter
    (fun c ->
      if c < 500 || c > 3500 then
        Alcotest.fail (Printf.sprintf "uniform draw skewed: %d" c))
    counts

let test_zipf_invalid () =
  Alcotest.check_raises "n=0"
    (Invalid_argument "Distribution.zipf: n must be positive") (fun () ->
      ignore (Workload.Distribution.zipf ~n:0 ()));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Distribution.zipf: exponent must be non-negative")
    (fun () -> ignore (Workload.Distribution.zipf ~exponent:(-1.0) ~n:5 ()))

let test_slack_invalid () =
  Alcotest.check_raises "zero slack"
    (Invalid_argument "Slack.create: slack must be >= 1") (fun () ->
      ignore (Fl.Slack.create 0))

(* ------------------------------ arrival ------------------------------ *)

let test_arrival_pacer_validation () =
  Alcotest.check_raises "zero burst"
    (Invalid_argument "Arrival.pacer: burst must be >= 1") (fun () ->
      ignore (Workload.Arrival.pacer (Bursty { burst = 0; pause_ns = 10 })));
  Alcotest.check_raises "negative pause"
    (Invalid_argument "Arrival.pacer: pause_ns must be >= 0") (fun () ->
      ignore (Workload.Arrival.pacer (Bursty { burst = 4; pause_ns = -1 })))

(* Burst 1 and zero gap are degenerate but legal: the pacer must cost
   nothing (no div-by-zero, no wait) rather than spin or hang. *)
let test_arrival_pacer_degenerate () =
  let t0 = Sync.Mono.now () in
  let p = Workload.Arrival.pacer (Bursty { burst = 1; pause_ns = 0 }) in
  for _ = 1 to 100_000 do
    Workload.Arrival.tick p
  done;
  let p2 = Workload.Arrival.pacer (Bursty { burst = 3; pause_ns = 0 }) in
  for _ = 1 to 100_000 do
    Workload.Arrival.tick p2
  done;
  let steady = Workload.Arrival.pacer Workload.Arrival.Steady in
  for _ = 1 to 100_000 do
    Workload.Arrival.tick steady
  done;
  Alcotest.(check bool) "degenerate pacers are free" true
    (Sync.Mono.now () -. t0 < 5.0)

let test_arrival_process_validation () =
  let bad name p =
    Alcotest.check_raises name
      (Invalid_argument (name ^ ": rate must be positive and finite"))
      (fun () -> Workload.Arrival.validate p)
  in
  bad "Arrival.Periodic" (Periodic { rate = 0.0 });
  bad "Arrival.Poisson" (Poisson { rate = -1.0 });
  bad "Arrival.Burst" (Burst { rate = Float.nan; burst = 2 });
  bad "Arrival.Periodic" (Periodic { rate = Float.infinity });
  Alcotest.check_raises "zero burst"
    (Invalid_argument "Arrival.Burst: burst must be >= 1") (fun () ->
      Workload.Arrival.validate (Burst { rate = 100.0; burst = 0 }))

let draw_stamps process ~n =
  let rng = Workload.Rng.create ~seed:7 ~stream:0 in
  let s = Workload.Arrival.schedule ~start_ns:1_000 process ~rng in
  List.init n (fun _ -> Workload.Arrival.next_arrival_ns s)

let check_nondecreasing name stamps =
  ignore
    (List.fold_left
       (fun prev x ->
         if x < prev then Alcotest.failf "%s: stamps went backwards" name;
         x)
       min_int stamps)

let test_arrival_periodic_schedule () =
  let stamps = draw_stamps (Periodic { rate = 1_000_000.0 }) ~n:100 in
  check_nondecreasing "periodic" stamps;
  Alcotest.(check int) "first stamp is the start" 1_000 (List.hd stamps);
  Alcotest.(check int) "exact 1us gaps" (1_000 + (99 * 1_000))
    (List.nth stamps 99)

let test_arrival_poisson_schedule () =
  let n = 20_000 in
  let rate = 1_000_000.0 in
  let stamps = draw_stamps (Poisson { rate }) ~n in
  check_nondecreasing "poisson" stamps;
  let span = float_of_int (List.nth stamps (n - 1) - List.hd stamps) in
  let mean_gap = span /. float_of_int (n - 1) in
  let expect = 1e9 /. rate in
  Alcotest.(check bool) "mean interarrival within 20% of 1/rate" true
    (mean_gap > 0.8 *. expect && mean_gap < 1.2 *. expect)

let test_arrival_burst_schedule () =
  let stamps = draw_stamps (Burst { rate = 1_000.0; burst = 4 }) ~n:9 in
  check_nondecreasing "burst" stamps;
  let s = Array.of_list stamps in
  for i = 1 to 3 do
    Alcotest.(check int) "coincident within burst" s.(0) s.(i)
  done;
  Alcotest.(check bool) "gap after the burst" true (s.(4) > s.(3));
  (* Long-run rate: the inter-burst gap covers the whole burst. *)
  Alcotest.(check int) "gap = burst / rate" (s.(0) + 4_000_000) s.(4);
  Alcotest.(check int) "next burst coincident again" s.(4) s.(7)

(* Very high rates must saturate to zero gaps — coincident stamps, no
   division blow-up — and never busy-hang in [wait_until] (the stamps
   are immediately in the past). *)
let test_arrival_extreme_rates () =
  let t0 = Sync.Mono.now () in
  List.iter
    (fun p ->
      let rng = Workload.Rng.create ~seed:3 ~stream:1 in
      let s = Workload.Arrival.schedule ~start_ns:0 p ~rng in
      for _ = 1 to 50_000 do
        let stamp = Workload.Arrival.next_arrival_ns s in
        if stamp < 0 then Alcotest.fail "negative stamp";
        Workload.Arrival.wait_until stamp
      done)
    [
      Workload.Arrival.Periodic { rate = 1e18 };
      Poisson { rate = 1e18 };
      Burst { rate = 1e15; burst = 1 };
      Burst { rate = max_float; burst = 1_000 };
    ];
  Alcotest.(check bool) "past-due schedules issue immediately" true
    (Sync.Mono.now () -. t0 < 5.0)

let test_arrival_wait_until_past () =
  let t0 = Sync.Mono.now () in
  for _ = 1 to 10_000 do
    Workload.Arrival.wait_until 0
  done;
  Workload.Arrival.wait_until min_int;
  Alcotest.(check bool) "no wait for past deadlines" true
    (Sync.Mono.now () -. t0 < 1.0)

let test_arrival_process_names () =
  Alcotest.(check string) "periodic" "periodic-100/s"
    (Workload.Arrival.process_to_string (Periodic { rate = 100.0 }));
  Alcotest.(check string) "poisson" "poisson-50000/s"
    (Workload.Arrival.process_to_string (Poisson { rate = 50_000.0 }));
  Alcotest.(check string) "burst" "burst-8x1000/s"
    (Workload.Arrival.process_to_string (Burst { rate = 1_000.0; burst = 8 }))

(* ------------------------------ overload ------------------------------ *)

module Ov = Workload.Overload

(* Synthesize one epoch's worth of telemetry directly into the global
   metrics: [step] diffs snapshots, so whatever we record between two
   steps is that epoch's observation. *)
let synth_hot ~budget_ns =
  Obs.Metrics.on_future_created 64;
  Obs.Metrics.on_future_forced ~w:1 (budget_ns * 50)

let ov_cfg = { Ov.default with hysteresis = 2; min_ops = 8 }

let test_overload_validation () =
  let bad name cfg =
    Alcotest.(check bool) name true
      (try
         ignore (Ov.create ~cfg ());
         false
       with Invalid_argument _ -> true)
  in
  bad "epoch" { ov_cfg with hysteresis = 0 };
  bad "budget" { ov_cfg with p99_budget_ns = 0 };
  bad "fraction" { ov_cfg with recover_fraction = 0.0 };
  bad "squeeze" { ov_cfg with squeeze_slack = 0 };
  bad "percents" { ov_cfg with shed_floor = 80; shed_ceiling = 20 };
  Alcotest.check_raises "epoch must be > 0"
    (Invalid_argument "Overload.create: epoch must be > 0") (fun () ->
      ignore (Ov.create ~epoch:0.0 ()))

(* The full ladder, driven by hand-stepped epochs: hot epochs escalate
   one rung each (ramping the shed fraction before leaving Shed), idle
   epochs are calm and de-escalate only after [hysteresis] in a row. *)
let test_overload_ladder () =
  let ov = Ov.create ~cfg:ov_cfg () in
  Alcotest.(check string) "starts admitting" "admit" (Ov.stage_name (Ov.stage ov));
  let hot () =
    synth_hot ~budget_ns:ov_cfg.p99_budget_ns;
    Ov.step ov
  in
  hot ();
  Alcotest.(check string) "hot #1: squeeze" "squeeze"
    (Ov.stage_name (Ov.stage ov));
  hot ();
  Alcotest.(check string) "hot #2: shed" "shed" (Ov.stage_name (Ov.stage ov));
  Alcotest.(check int) "shed floor" ov_cfg.shed_floor (Ov.shed_percent ov);
  hot ();
  Alcotest.(check string) "ramp, not escalate" "shed"
    (Ov.stage_name (Ov.stage ov));
  Alcotest.(check int) "shed fraction doubled" (2 * ov_cfg.shed_floor)
    (Ov.shed_percent ov);
  hot ();
  Alcotest.(check int) "ramped to ceiling" ov_cfg.shed_ceiling
    (Ov.shed_percent ov);
  Alcotest.(check bool) "writes still allowed" false (Ov.writes_degraded ov);
  hot ();
  Alcotest.(check string) "ramp exhausted: degrade" "degrade"
    (Ov.stage_name (Ov.stage ov));
  Alcotest.(check bool) "writes refused" true (Ov.writes_degraded ov);
  hot ();
  Alcotest.(check string) "degrade is the last rung" "degrade"
    (Ov.stage_name (Ov.stage ov));
  Alcotest.(check int) "three escalations" 3 (Ov.escalations ov);
  (* Recovery: idle epochs are calm; two per rung (hysteresis = 2). *)
  Ov.step ov;
  Alcotest.(check string) "one calm epoch holds" "degrade"
    (Ov.stage_name (Ov.stage ov));
  Ov.step ov;
  Alcotest.(check string) "hysteresis met: shed" "shed"
    (Ov.stage_name (Ov.stage ov));
  Ov.step ov;
  Ov.step ov;
  Alcotest.(check string) "then squeeze" "squeeze"
    (Ov.stage_name (Ov.stage ov));
  Ov.step ov;
  Ov.step ov;
  Alcotest.(check string) "fully recovered" "admit"
    (Ov.stage_name (Ov.stage ov));
  Alcotest.(check int) "three recoveries" 3 (Ov.recoveries ov);
  Alcotest.(check bool) "epochs counted" true (Ov.epochs ov >= 9)

(* A hot epoch mid-recovery zeroes the calm streak: the ladder must not
   de-escalate off a streak interrupted by fresh overload. *)
let test_overload_hysteresis_reset () =
  let ov = Ov.create ~cfg:{ ov_cfg with hysteresis = 3 } () in
  Ov.force_stage ov Ov.Shed;
  Ov.step ov;
  Ov.step ov;
  synth_hot ~budget_ns:ov_cfg.p99_budget_ns;
  Ov.step ov;
  (* The hot epoch ramps the shed fraction but also resets the streak:
     two more calm epochs must not be enough. *)
  Ov.step ov;
  Ov.step ov;
  Alcotest.(check string) "streak was reset" "shed"
    (Ov.stage_name (Ov.stage ov));
  Ov.step ov;
  Alcotest.(check string) "full streak de-escalates" "squeeze"
    (Ov.stage_name (Ov.stage ov))

let test_overload_slack_control () =
  let ov = Ov.create ~cfg:{ ov_cfg with squeeze_slack = 1 } () in
  let sl = Fl.Slack.create 16 in
  Ov.register_slack ov sl;
  Alcotest.(check int) "untouched while admitting" 16 (Fl.Slack.slack sl);
  Ov.force_stage ov Ov.Squeeze;
  Alcotest.(check int) "squeezed" 1 (Fl.Slack.slack sl);
  (* A worker joining a squeezed service is squeezed immediately. *)
  let late = Fl.Slack.create 8 in
  Ov.register_slack ov late;
  Alcotest.(check int) "late joiner squeezed" 1 (Fl.Slack.slack late);
  Ov.force_stage ov Ov.Admit;
  Alcotest.(check int) "restored to its own bound" 16 (Fl.Slack.slack sl);
  Alcotest.(check int) "late joiner restored too" 8 (Fl.Slack.slack late)

(* The admission lottery is a deterministic ticket draw: at a shed
   fraction of p percent, exactly p per hundred consecutive decisions
   are refused. *)
let test_overload_admit_fractions () =
  let ov = Ov.create ~cfg:ov_cfg () in
  let count_sheds n =
    let refused = ref 0 in
    for _ = 1 to n do
      if not (Ov.admit ov) then incr refused
    done;
    !refused
  in
  Alcotest.(check int) "admit stage sheds nothing" 0 (count_sheds 200);
  Ov.force_stage ov Ov.Squeeze;
  Alcotest.(check int) "squeeze stage sheds nothing" 0 (count_sheds 200);
  Ov.force_stage ov Ov.Shed;
  Alcotest.(check int) "shed floor fraction" ov_cfg.shed_floor
    (count_sheds 400 * 100 / 400);
  Ov.force_stage ov Ov.Degrade;
  Alcotest.(check int) "ceiling fraction while degraded" ov_cfg.shed_ceiling
    (count_sheds 400 * 100 / 400);
  Alcotest.(check int) "every decision counted" 1200 (Ov.offered ov);
  Alcotest.(check bool) "sheds counted" true (Ov.sheds ov > 0);
  Ov.force_stage ov Ov.Admit;
  Alcotest.(check int) "recovered: all admitted" 0 (count_sheds 200)

let test_overload_start_stop () =
  let ov = Ov.create ~cfg:ov_cfg ~epoch:0.001 () in
  Alcotest.(check bool) "not running" false (Ov.running ov);
  Ov.start ov;
  Alcotest.(check bool) "running" true (Ov.running ov);
  Alcotest.check_raises "double start"
    (Invalid_argument "Overload.start: already running") (fun () ->
      Ov.start ov);
  let deadline = Sync.Mono.now () +. 5.0 in
  while Ov.epochs ov < 3 && Sync.Mono.now () < deadline do
    Domain.cpu_relax ()
  done;
  Ov.stop ov;
  Alcotest.(check bool) "stopped" false (Ov.running ov);
  Alcotest.(check bool) "background epochs ran" true (Ov.epochs ov >= 3);
  Ov.stop ov (* idempotent *)

(* ------------------------------ service ------------------------------ *)

(* Closed-form bookkeeping identities of a clean (chaos-free) run: every
   request is either admitted or shed, every admitted op completes, and
   every completion lands in the sojourn histogram. *)
let service_smoke backend () =
  let cfg =
    {
      Workload.Service.default_config with
      workers = 2;
      requests_per_worker = 2_000;
      process = Workload.Arrival.Poisson { rate = 500_000.0 };
      backend;
    }
  in
  let r = Workload.Service.run cfg in
  let total = 2 * 2_000 in
  Alcotest.(check int) "admitted + shed = requests" total
    (r.Workload.Service.admitted + r.Workload.Service.shed);
  Alcotest.(check bool) "offered covers every decision" true
    (r.Workload.Service.offered >= total);
  Alcotest.(check int) "every admitted op completed"
    r.Workload.Service.admitted r.Workload.Service.completed;
  Alcotest.(check int) "nothing failed" 0 r.Workload.Service.failed;
  Alcotest.(check int) "every completion measured"
    r.Workload.Service.completed
    (Obs.Histogram.count r.Workload.Service.sojourn);
  let p50 = Workload.Service.sojourn_p r 50.0 in
  let p999 = Workload.Service.sojourn_p r 99.9 in
  Alcotest.(check bool) "tail dominates median" true (p999 >= p50 && p50 >= 0);
  Alcotest.(check bool) "no chaos deaths" true
    (r.Workload.Service.measurement.Workload.Runner.killed = 0)

let test_service_validation () =
  Alcotest.check_raises "workers"
    (Invalid_argument "Service.run: workers must be >= 1") (fun () ->
      ignore
        (Workload.Service.run
           { Workload.Service.default_config with workers = 0 }));
  Alcotest.check_raises "retry attempts"
    (Invalid_argument "Service.run: retry_attempts must be >= 1") (fun () ->
      ignore
        (Workload.Service.run
           { Workload.Service.default_config with retry_attempts = 0 }))

(* Overload end to end: impossible budgets force the ladder into
   shedding, and the shed/degraded arithmetic still balances. *)
let test_service_sheds_under_overload () =
  let was = Obs.sample_every () in
  Obs.set_sample_every 1;
  Fun.protect
    ~finally:(fun () -> Obs.set_sample_every was)
    (fun () ->
      let overload =
        {
          Ov.default with
          min_ops = 1;
          p99_budget_ns = 1;
          pending_budget_ns = 1;
          hysteresis = 10_000 (* never recover during the run *);
        }
      in
      let cfg =
        {
          Workload.Service.default_config with
          workers = 2;
          requests_per_worker = 30_000;
          process = Workload.Arrival.Poisson { rate = 2_000_000.0 };
          overload;
          epoch_s = 0.001;
        }
      in
      let r = Workload.Service.run cfg in
      let total = 2 * 30_000 in
      Alcotest.(check int) "admitted + shed = requests" total
        (r.Workload.Service.admitted + r.Workload.Service.shed);
      Alcotest.(check bool) "ladder engaged" true
        (Ov.stage_index r.Workload.Service.max_stage >= 1);
      Alcotest.(check bool) "escalations recorded" true
        (r.Workload.Service.escalations >= 1);
      Alcotest.(check bool) "controller epochs ran" true
        (r.Workload.Service.controller_epochs >= 1);
      Alcotest.(check bool) "load was shed" true (r.Workload.Service.shed > 0);
      Alcotest.(check bool) "shed rate in (0, 1]" true
        (Workload.Service.shed_rate r > 0.0
        && Workload.Service.shed_rate r <= 1.0);
      Alcotest.(check int) "admitted subset still completes"
        r.Workload.Service.admitted r.Workload.Service.completed)

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "streams differ" `Quick test_rng_streams_differ;
          Alcotest.test_case "below in range" `Quick test_rng_below_in_range;
          Alcotest.test_case "below covers" `Quick test_rng_below_covers;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "stack balance" `Quick
            test_distribution_stack_balance;
          Alcotest.test_case "list mix 20/20/60" `Quick
            test_distribution_list_mix;
          Alcotest.test_case "keys in range" `Quick
            test_distribution_keys_in_range;
          Alcotest.test_case "initial keys" `Quick test_initial_keys;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "degenerate" `Quick test_stats_degenerate;
        ] );
      ( "report",
        [
          Alcotest.test_case "rendering" `Quick test_report_rendering;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "seconds formatting" `Quick test_report_seconds;
        ] );
      ( "runner",
        [
          Alcotest.test_case "runs workers" `Quick test_runner_runs_workers;
          Alcotest.test_case "propagates failures" `Quick
            test_runner_propagates_failure;
          Alcotest.test_case "invalid args" `Quick test_runner_invalid_args;
          Alcotest.test_case "cas accounting" `Quick test_runner_cas_accounting;
        ] );
      ( "slack",
        [
          Alcotest.test_case "policy" `Quick test_slack_policy;
          Alcotest.test_case "slack=1 immediate" `Quick
            test_slack_one_is_immediate;
          Alcotest.test_case "drain partial" `Quick test_slack_drain_partial;
          Alcotest.test_case "oldest-first order" `Quick
            test_slack_oldest_first_order;
          Alcotest.test_case "invalid" `Quick test_slack_invalid;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "exponent zero is uniform" `Quick
            test_zipf_uniform_exponent_zero;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "pacer validation" `Quick
            test_arrival_pacer_validation;
          Alcotest.test_case "burst 1 / zero gap are free" `Quick
            test_arrival_pacer_degenerate;
          Alcotest.test_case "process validation" `Quick
            test_arrival_process_validation;
          Alcotest.test_case "periodic schedule" `Quick
            test_arrival_periodic_schedule;
          Alcotest.test_case "poisson schedule" `Quick
            test_arrival_poisson_schedule;
          Alcotest.test_case "burst schedule" `Quick test_arrival_burst_schedule;
          Alcotest.test_case "extreme rates saturate" `Quick
            test_arrival_extreme_rates;
          Alcotest.test_case "wait_until past deadline" `Quick
            test_arrival_wait_until_past;
          Alcotest.test_case "process names" `Quick test_arrival_process_names;
        ] );
      ( "overload",
        [
          Alcotest.test_case "config validation" `Quick
            test_overload_validation;
          Alcotest.test_case "full ladder" `Quick test_overload_ladder;
          Alcotest.test_case "hysteresis reset" `Quick
            test_overload_hysteresis_reset;
          Alcotest.test_case "slack squeeze/restore" `Quick
            test_overload_slack_control;
          Alcotest.test_case "admit fractions" `Quick
            test_overload_admit_fractions;
          Alcotest.test_case "start/stop" `Quick test_overload_start_stop;
        ] );
      ( "service",
        [
          Alcotest.test_case "sharded smoke" `Quick
            (service_smoke Workload.Service.Sharded);
          Alcotest.test_case "central smoke" `Quick
            (service_smoke Workload.Service.Central);
          Alcotest.test_case "validation" `Quick test_service_validation;
          Alcotest.test_case "sheds under overload" `Slow
            test_service_sheds_under_overload;
        ] );
    ]
