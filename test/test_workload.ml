(* Tests for the workload library (rng, distributions, stats, report,
   runner) and the Slack policy helper. *)

let test_rng_deterministic () =
  let a = Workload.Rng.create ~seed:1 ~stream:0 in
  let b = Workload.Rng.create ~seed:1 ~stream:0 in
  let xs = List.init 100 (fun _ -> Workload.Rng.next a) in
  let ys = List.init 100 (fun _ -> Workload.Rng.next b) in
  Alcotest.(check (list int)) "same stream, same numbers" xs ys

let test_rng_streams_differ () =
  let a = Workload.Rng.create ~seed:1 ~stream:0 in
  let b = Workload.Rng.create ~seed:1 ~stream:1 in
  let xs = List.init 20 (fun _ -> Workload.Rng.next a) in
  let ys = List.init 20 (fun _ -> Workload.Rng.next b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_below_in_range () =
  let r = Workload.Rng.create ~seed:99 ~stream:3 in
  for _ = 1 to 10_000 do
    let v = Workload.Rng.below r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.below: bound must be positive") (fun () ->
      ignore (Workload.Rng.below r 0))

let test_rng_below_covers () =
  let r = Workload.Rng.create ~seed:5 ~stream:0 in
  let seen = Array.make 10 false in
  for _ = 1 to 5_000 do
    seen.(Workload.Rng.below r 10) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let r = Workload.Rng.create ~seed:8 ~stream:0 in
  for _ = 1 to 1_000 do
    let f = Workload.Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_distribution_stack_balance () =
  let r = Workload.Rng.create ~seed:3 ~stream:0 in
  let pushes = ref 0 and total = 20_000 in
  for _ = 1 to total do
    match Workload.Distribution.stack_op r with
    | Workload.Distribution.Push _ -> incr pushes
    | Workload.Distribution.Pop -> ()
  done;
  let ratio = float_of_int !pushes /. float_of_int total in
  Alcotest.(check bool) "about half pushes" true
    (ratio > 0.45 && ratio < 0.55)

let test_distribution_list_mix () =
  let r = Workload.Rng.create ~seed:4 ~stream:0 in
  let ins = ref 0 and rem = ref 0 and con = ref 0 and total = 30_000 in
  for _ = 1 to total do
    match Workload.Distribution.list_op r with
    | Workload.Distribution.Insert _ -> incr ins
    | Workload.Distribution.Remove _ -> incr rem
    | Workload.Distribution.Contains _ -> incr con
  done;
  let pct x = float_of_int !x /. float_of_int total in
  Alcotest.(check bool) "20% inserts" true (pct ins > 0.17 && pct ins < 0.23);
  Alcotest.(check bool) "20% removes" true (pct rem > 0.17 && pct rem < 0.23);
  Alcotest.(check bool) "60% contains" true (pct con > 0.56 && pct con < 0.64)

let test_distribution_keys_in_range () =
  let r = Workload.Rng.create ~seed:4 ~stream:1 in
  for _ = 1 to 5_000 do
    let k =
      match Workload.Distribution.list_op ~key_range:500 r with
      | Workload.Distribution.Insert k
      | Workload.Distribution.Remove k
      | Workload.Distribution.Contains k ->
          k
    in
    if k < 0 || k >= 500 then Alcotest.fail "key out of range"
  done

let test_initial_keys () =
  let keys = Workload.Distribution.initial_keys ~key_range:1000 ~seed:7 () in
  Alcotest.(check int) "half the range" 500 (List.length keys);
  Alcotest.(check int) "distinct" 500
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun k -> if k < 0 || k >= 1000 then Alcotest.fail "key out of range")
    keys;
  let keys' = Workload.Distribution.initial_keys ~key_range:1000 ~seed:7 () in
  Alcotest.(check (list int)) "deterministic" keys keys'

let feq = Alcotest.float 1e-9

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.check feq "mean" 2.5 (Workload.Stats.mean xs);
  Alcotest.check feq "min" 1.0 (Workload.Stats.min xs);
  Alcotest.check feq "max" 4.0 (Workload.Stats.max xs);
  Alcotest.check (Alcotest.float 1e-6) "std" 1.2909944487 (Workload.Stats.std_dev xs);
  Alcotest.check feq "median" 2.0 (Workload.Stats.median xs);
  Alcotest.check feq "p100" 4.0 (Workload.Stats.percentile xs 100.0);
  Alcotest.check feq "p1" 1.0 (Workload.Stats.percentile xs 1.0)

let test_stats_degenerate () =
  Alcotest.check feq "std of single" 0.0 (Workload.Stats.std_dev [| 5.0 |]);
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Histogram.mean: empty sample array") (fun () ->
      ignore (Workload.Stats.mean [||]))

let test_report_rendering () =
  let t =
    Workload.Report.create ~title:"demo" ~columns:[ "a"; "b" ]
  in
  Workload.Report.add_row t ~label:"1" ~cells:[ "x"; "y" ];
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Workload.Report.print ppf t;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "has title" true
    (String.length s > 4 && String.sub s 0 4 = "demo");
  Alcotest.check_raises "bad row"
    (Invalid_argument "Report.add_row: cell count does not match columns")
    (fun () -> Workload.Report.add_row t ~label:"2" ~cells:[ "only one" ])

let test_report_csv () =
  let t = Workload.Report.create ~title:"t" ~columns:[ "a"; "b" ] in
  Workload.Report.add_row t ~label:"1" ~cells:[ "x"; "y" ];
  Workload.Report.add_row t ~label:"2" ~cells:[ "u"; "v" ];
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Workload.Report.csv ppf t;
  Format.pp_print_flush ppf ();
  Alcotest.(check string) "csv shape" "# t\nthreads,a,b\n1,x,y\n2,u,v\n"
    (Buffer.contents buf)

let test_report_seconds () =
  Alcotest.(check string) "seconds" "1.50s" (Workload.Report.seconds 1.5);
  Alcotest.(check string) "millis" "12.0ms" (Workload.Report.seconds 0.012);
  Alcotest.(check string) "micros" "120us" (Workload.Report.seconds 0.00012);
  Alcotest.(check string) "nan" "-" (Workload.Report.seconds Float.nan)

let test_runner_runs_workers () =
  let counter = Atomic.make 0 in
  let m =
    Workload.Runner.run ~threads:3 ~repeats:2 ~ops_per_thread:100
      ~setup:(fun () -> ())
      ~worker:(fun () ~thread:_ ~ops ->
        for _ = 1 to ops do
          Atomic.incr counter
        done)
      ()
  in
  Alcotest.(check int) "all ops ran twice" 600 (Atomic.get counter);
  Alcotest.(check int) "threads recorded" 3 m.Workload.Runner.threads;
  Alcotest.(check bool) "time positive" true (m.Workload.Runner.seconds > 0.0);
  Alcotest.(check bool) "cas nan when absent" true
    (Float.is_nan m.Workload.Runner.cas_per_op)

let test_runner_propagates_failure () =
  match
    Workload.Runner.run ~threads:2 ~repeats:1 ~ops_per_thread:1
      ~setup:(fun () -> ())
      ~worker:(fun () ~thread ~ops:_ -> if thread = 1 then failwith "worker boom")
      ()
  with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure msg -> Alcotest.(check string) "propagated" "worker boom" msg

let test_runner_invalid_args () =
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Runner.run: threads must be positive") (fun () ->
      ignore
        (Workload.Runner.run ~threads:0 ~repeats:1 ~ops_per_thread:1
           ~setup:(fun () -> ())
           ~worker:(fun () ~thread:_ ~ops:_ -> ())
           ()));
  Alcotest.check_raises "zero repeats"
    (Invalid_argument "Runner.run: repeats must be positive") (fun () ->
      ignore
        (Workload.Runner.run ~threads:1 ~repeats:0 ~ops_per_thread:1
           ~setup:(fun () -> ())
           ~worker:(fun () ~thread:_ ~ops:_ -> ())
           ()))

let test_runner_cas_accounting () =
  let m =
    Workload.Runner.run ~threads:2 ~repeats:1 ~ops_per_thread:50
      ~setup:(fun () -> Lockfree.Treiber_stack.create ())
      ~worker:(fun s ~thread:_ ~ops ->
        for i = 1 to ops do
          Lockfree.Treiber_stack.push s i
        done)
      ~cas_total:(fun s -> Lockfree.Treiber_stack.cas_count s)
      ()
  in
  Alcotest.(check bool) "at least one CAS per push" true
    (m.Workload.Runner.cas_per_op >= 1.0)

let test_slack_policy () =
  let forced = ref [] in
  let s = Fl.Slack.create 3 in
  Fl.Slack.note s (fun () -> forced := 1 :: !forced);
  Fl.Slack.note s (fun () -> forced := 2 :: !forced);
  Alcotest.(check int) "pending below bound" 2 (Fl.Slack.pending s);
  Alcotest.(check (list int)) "nothing forced" [] !forced;
  Fl.Slack.note s (fun () -> forced := 3 :: !forced);
  Alcotest.(check (list int)) "all forced newest-first" [ 1; 2; 3 ] !forced;
  Alcotest.(check int) "reset" 0 (Fl.Slack.pending s)

let test_slack_one_is_immediate () =
  let count = ref 0 in
  let s = Fl.Slack.create 1 in
  Fl.Slack.note s (fun () -> incr count);
  Alcotest.(check int) "forced immediately" 1 !count

let test_slack_drain_partial () =
  let count = ref 0 in
  let s = Fl.Slack.create 100 in
  Fl.Slack.note s (fun () -> incr count);
  Fl.Slack.note s (fun () -> incr count);
  Fl.Slack.drain s;
  Alcotest.(check int) "drained" 2 !count;
  Fl.Slack.drain s;
  Alcotest.(check int) "idempotent" 2 !count

let test_slack_oldest_first_order () =
  let forced = ref [] in
  let s = Fl.Slack.create ~order:Fl.Slack.Oldest_first 3 in
  Fl.Slack.note s (fun () -> forced := 1 :: !forced);
  Fl.Slack.note s (fun () -> forced := 2 :: !forced);
  Fl.Slack.note s (fun () -> forced := 3 :: !forced);
  Alcotest.(check (list int)) "oldest first" [ 3; 2; 1 ] !forced

let test_zipf_skew () =
  let z = Workload.Distribution.zipf ~n:100 () in
  let rng = Workload.Rng.create ~seed:17 ~stream:0 in
  let counts = Array.make 100 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let k = Workload.Distribution.zipf_draw z rng in
    if k < 0 || k >= 100 then Alcotest.fail "rank out of range";
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 0 has weight 1/H(100) ~ 19%; expect it to dominate. *)
  Alcotest.(check bool) "rank 0 most frequent" true
    (Array.for_all (fun c -> c <= counts.(0)) counts);
  let p0 = float_of_int counts.(0) /. float_of_int draws in
  Alcotest.(check bool) "rank 0 frequency plausible" true
    (p0 > 0.15 && p0 < 0.25);
  (* Monotone-ish decay: rank 0 >> rank 50. *)
  Alcotest.(check bool) "heavy head" true (counts.(0) > 10 * counts.(50))

let test_zipf_uniform_exponent_zero () =
  let z = Workload.Distribution.zipf ~exponent:0.0 ~n:10 () in
  let rng = Workload.Rng.create ~seed:18 ~stream:0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let k = Workload.Distribution.zipf_draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* With exponent 0 every rank is equally likely; no rank should be
     wildly over-represented. *)
  Array.iter
    (fun c ->
      if c < 500 || c > 3500 then
        Alcotest.fail (Printf.sprintf "uniform draw skewed: %d" c))
    counts

let test_zipf_invalid () =
  Alcotest.check_raises "n=0"
    (Invalid_argument "Distribution.zipf: n must be positive") (fun () ->
      ignore (Workload.Distribution.zipf ~n:0 ()));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Distribution.zipf: exponent must be non-negative")
    (fun () -> ignore (Workload.Distribution.zipf ~exponent:(-1.0) ~n:5 ()))

let test_slack_invalid () =
  Alcotest.check_raises "zero slack"
    (Invalid_argument "Slack.create: slack must be >= 1") (fun () ->
      ignore (Fl.Slack.create 0))

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "streams differ" `Quick test_rng_streams_differ;
          Alcotest.test_case "below in range" `Quick test_rng_below_in_range;
          Alcotest.test_case "below covers" `Quick test_rng_below_covers;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "stack balance" `Quick
            test_distribution_stack_balance;
          Alcotest.test_case "list mix 20/20/60" `Quick
            test_distribution_list_mix;
          Alcotest.test_case "keys in range" `Quick
            test_distribution_keys_in_range;
          Alcotest.test_case "initial keys" `Quick test_initial_keys;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "degenerate" `Quick test_stats_degenerate;
        ] );
      ( "report",
        [
          Alcotest.test_case "rendering" `Quick test_report_rendering;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "seconds formatting" `Quick test_report_seconds;
        ] );
      ( "runner",
        [
          Alcotest.test_case "runs workers" `Quick test_runner_runs_workers;
          Alcotest.test_case "propagates failures" `Quick
            test_runner_propagates_failure;
          Alcotest.test_case "invalid args" `Quick test_runner_invalid_args;
          Alcotest.test_case "cas accounting" `Quick test_runner_cas_accounting;
        ] );
      ( "slack",
        [
          Alcotest.test_case "policy" `Quick test_slack_policy;
          Alcotest.test_case "slack=1 immediate" `Quick
            test_slack_one_is_immediate;
          Alcotest.test_case "drain partial" `Quick test_slack_drain_partial;
          Alcotest.test_case "oldest-first order" `Quick
            test_slack_oldest_first_order;
          Alcotest.test_case "invalid" `Quick test_slack_invalid;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "exponent zero is uniform" `Quick
            test_zipf_uniform_exponent_zero;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid;
        ] );
    ]
