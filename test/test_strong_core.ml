(* Tests for the strong-FL engine internals: the lock-free pending queue
   and the bounded drain / delegation protocol of Strong_core. *)

module PQ = Fl.Pending_queue

let test_pq_fifo_drain () =
  let q = PQ.create () in
  Alcotest.(check bool) "empty" true (PQ.is_empty q);
  Alcotest.(check (list int)) "drain empty" [] (PQ.drain q);
  PQ.enqueue q 1;
  PQ.enqueue q 2;
  PQ.enqueue q 3;
  Alcotest.(check bool) "not empty" false (PQ.is_empty q);
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (PQ.drain q);
  Alcotest.(check bool) "empty after drain" true (PQ.is_empty q);
  Alcotest.(check (list int)) "drain again" [] (PQ.drain q);
  PQ.enqueue q 4;
  Alcotest.(check (list int)) "usable after drain" [ 4 ] (PQ.drain q)

let test_pq_covers_completed_enqueues () =
  (* Every enqueue that returned before the drain must be included. *)
  let q = PQ.create () in
  let n = 4 and per = 2_000 in
  let barrier = Sync.Barrier.create (n + 1) in
  let producers =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            Sync.Barrier.wait barrier;
            for j = 1 to per do
              PQ.enqueue q ((i * per) + j)
            done))
  in
  Sync.Barrier.wait barrier;
  List.iter Domain.join producers;
  (* All producers are done: one drain must return everything. *)
  let ops = PQ.drain q in
  Alcotest.(check int) "all covered" (n * per) (List.length ops);
  Alcotest.(check int) "no duplicates" (n * per)
    (List.length (List.sort_uniq compare ops))

let test_pq_per_producer_order () =
  let q = PQ.create () in
  let n = 3 and per = 2_000 in
  let producers =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            for j = 1 to per do
              PQ.enqueue q ((i * 1_000_000) + j)
            done))
  in
  List.iter Domain.join producers;
  let ops = PQ.drain q in
  let last = Hashtbl.create 4 in
  List.iter
    (fun v ->
      let p = v / 1_000_000 and s = v mod 1_000_000 in
      (match Hashtbl.find_opt last p with
      | Some prev when prev >= s -> Alcotest.fail "producer order broken"
      | _ -> ());
      Hashtbl.replace last p s)
    ops;
  Alcotest.(check pass) "per-producer order kept" () ()

(* ----------------------------- engine ------------------------------- *)

let test_engine_applies_batch_in_order () =
  let applied = ref [] in
  let core =
    Fl.Strong_core.create ~apply_batch:(fun ops ->
        applied := !applied @ ops)
  in
  Fl.Strong_core.submit core "a";
  Fl.Strong_core.submit core "b";
  Fl.Strong_core.submit core "c";
  (* Evaluate with a readiness flag flipped by the batch itself. *)
  let ready = ref false in
  let core2 =
    Fl.Strong_core.create ~apply_batch:(fun ops ->
        applied := !applied @ ops;
        ready := true)
  in
  Fl.Strong_core.submit core2 "x";
  Fl.Strong_core.eval core2 ~is_ready:(fun () -> !ready);
  Alcotest.(check (list string)) "batch applied" [ "x" ] !applied;
  (* drain_now on the first core *)
  applied := [];
  Fl.Strong_core.drain_now core;
  Alcotest.(check (list string)) "drain_now order" [ "a"; "b"; "c" ] !applied

let test_engine_eval_noop_when_ready () =
  let applied = ref 0 in
  let core =
    Fl.Strong_core.create ~apply_batch:(fun ops ->
        applied := !applied + List.length ops)
  in
  Fl.Strong_core.submit core 1;
  (* Already "ready": eval must not drain anything. *)
  Fl.Strong_core.eval core ~is_ready:(fun () -> true);
  Alcotest.(check int) "nothing applied" 0 !applied;
  (* The op is still pending and is picked up by the next drain. *)
  Fl.Strong_core.drain_now core;
  Alcotest.(check int) "applied later" 1 !applied

let test_engine_exception_releases_lock () =
  let core =
    Fl.Strong_core.create ~apply_batch:(fun _ -> failwith "apply boom")
  in
  Fl.Strong_core.submit core 1;
  (match Fl.Strong_core.drain_now core with
  | () -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "msg" "apply boom" msg);
  (* The lock must have been released: a further drain_now can acquire it
     again (and raises again, proving the batch code ran). *)
  Fl.Strong_core.submit core 2;
  match Fl.Strong_core.drain_now core with
  | () -> Alcotest.fail "expected exception again"
  | exception Failure _ -> Alcotest.(check pass) "lock free again" () ()

(* Delegation under contention: many domains submit one op each and
   evaluate; every op is applied exactly once, by somebody. *)
let test_engine_delegation_exactly_once () =
  let seen = Array.make 64 0 in
  let lock = Sync.Spinlock.create () in
  let ready = Array.init 64 (fun _ -> Atomic.make false) in
  let core =
    Fl.Strong_core.create ~apply_batch:(fun ops ->
        Sync.Spinlock.with_lock lock (fun () ->
            List.iter (fun i -> seen.(i) <- seen.(i) + 1) ops);
        List.iter (fun i -> Atomic.set ready.(i) true) ops)
  in
  let n = 8 and per = 8 in
  let barrier = Sync.Barrier.create n in
  let worker d () =
    Sync.Barrier.wait barrier;
    for j = 0 to per - 1 do
      let id = (d * per) + j in
      Fl.Strong_core.submit core id;
      Fl.Strong_core.eval core ~is_ready:(fun () -> Atomic.get ready.(id))
    done
  in
  let ds = List.init n (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Array.iteri
    (fun i c ->
      if c <> 1 then
        Alcotest.fail (Printf.sprintf "op %d applied %d times" i c))
    seen;
  Alcotest.(check pass) "each op applied exactly once" () ()

let () =
  Alcotest.run "strong-core"
    [
      ( "pending-queue",
        [
          Alcotest.test_case "fifo drain" `Quick test_pq_fifo_drain;
          Alcotest.test_case "covers completed enqueues (4 domains)" `Slow
            test_pq_covers_completed_enqueues;
          Alcotest.test_case "per-producer order (3 domains)" `Slow
            test_pq_per_producer_order;
        ] );
      ( "engine",
        [
          Alcotest.test_case "batch order" `Quick
            test_engine_applies_batch_in_order;
          Alcotest.test_case "eval noop when ready" `Quick
            test_engine_eval_noop_when_ready;
          Alcotest.test_case "exception releases lock" `Quick
            test_engine_exception_releases_lock;
          Alcotest.test_case "delegation exactly once (8 domains)" `Slow
            test_engine_delegation_exactly_once;
        ] );
    ]
