(* Tests for the preallocated ring buffer behind the FL pending windows:
   model-based qcheck properties exercising wraparound and growth, unit
   tests for the window operations, an allocation-budget check on the
   weak-stack flush path, and the Slack drain reentrancy regression. *)

module B = Fl.Opbuf

(* ------------------------- unit: basics ----------------------------- *)

let test_basics () =
  let b = B.create () in
  Alcotest.(check bool) "empty" true (B.is_empty b);
  Alcotest.(check int) "len 0" 0 (B.length b);
  for i = 1 to 5 do
    B.push b i
  done;
  Alcotest.(check int) "len 5" 5 (B.length b);
  Alcotest.(check int) "get 0 oldest" 1 (B.get b 0);
  Alcotest.(check int) "get 4 newest" 5 (B.get b 4);
  Alcotest.(check (list int)) "to_list oldest first" [ 1; 2; 3; 4; 5 ]
    (B.to_list b);
  Alcotest.(check int) "pop_back newest" 5 (B.pop_back b);
  B.drop_front b 2;
  Alcotest.(check (list int)) "after drop_front" [ 3; 4 ] (B.to_list b);
  B.set b 0 30;
  Alcotest.(check (list int)) "after set" [ 30; 4 ] (B.to_list b);
  B.clear b;
  Alcotest.(check bool) "cleared" true (B.is_empty b)

let test_bounds () =
  let b = B.create () in
  B.push b 1;
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Opbuf.get: index out of range") (fun () ->
      ignore (B.get b 1));
  Alcotest.check_raises "pop_back empty"
    (Invalid_argument "Opbuf.pop_back: empty") (fun () ->
      ignore (B.pop_back (B.create () : int B.t)));
  Alcotest.check_raises "drop_front beyond"
    (Invalid_argument "Opbuf.drop_front: bad count") (fun () ->
      B.drop_front b 2)

(* Growth across the initial capacity, with a head offset so the unroll
   path (wrapped ring -> rebased array) is exercised. *)
let test_growth_wrapped () =
  let b = B.create ~capacity:4 () in
  (* Offset the head: push then drop so head <> 0. *)
  for i = 0 to 2 do
    B.push b i
  done;
  B.drop_front b 3;
  (* Now fill past the physical end and through several doublings. *)
  let n = 100 in
  for i = 0 to n - 1 do
    B.push b i
  done;
  Alcotest.(check int) "length" n (B.length b);
  Alcotest.(check (list int)) "order preserved across growth"
    (List.init n Fun.id) (B.to_list b);
  Alcotest.(check bool) "capacity grew" true (B.capacity b >= n)

let test_iter_orders () =
  let b = B.create ~capacity:2 () in
  for i = 1 to 6 do
    B.push b i
  done;
  let fwd = ref [] and bwd = ref [] in
  B.iter (fun x -> fwd := x :: !fwd) b;
  B.rev_iter (fun x -> bwd := x :: !bwd) b;
  Alcotest.(check (list int)) "iter oldest first" [ 1; 2; 3; 4; 5; 6 ]
    (List.rev !fwd);
  Alcotest.(check (list int)) "rev_iter newest first" [ 6; 5; 4; 3; 2; 1 ]
    (List.rev !bwd)

let test_truncate_swap () =
  let a = B.create () and b = B.create () in
  for i = 1 to 8 do
    B.push a i
  done;
  B.truncate a 3;
  Alcotest.(check (list int)) "truncate keeps oldest" [ 1; 2; 3 ]
    (B.to_list a);
  B.push b 99;
  B.swap a b;
  Alcotest.(check (list int)) "swap a" [ 99 ] (B.to_list a);
  Alcotest.(check (list int)) "swap b" [ 1; 2; 3 ] (B.to_list b)

(* ------------------------ unit: tombstones --------------------------- *)

let test_tombstones_basic () =
  let b = B.create () in
  for i = 1 to 5 do
    B.push b i
  done;
  B.delete b 1;
  B.delete b 3;
  Alcotest.(check bool) "deleted flagged" true (B.deleted b 1);
  Alcotest.(check bool) "live slot not flagged" false (B.deleted b 0);
  Alcotest.(check int) "length keeps logical indices" 5 (B.length b);
  Alcotest.(check int) "live counts survivors" 3 (B.live b);
  Alcotest.(check (list int)) "to_list skips tombstones" [ 1; 3; 5 ]
    (B.to_list b);
  Alcotest.check_raises "get on deleted slot"
    (Invalid_argument "Opbuf.get: deleted slot") (fun () ->
      ignore (B.get b 1));
  Alcotest.(check int) "neighbours untouched" 3 (B.get b 2);
  let fwd = ref [] in
  B.iter (fun x -> fwd := x :: !fwd) b;
  Alcotest.(check (list int)) "iter skips tombstones" [ 1; 3; 5 ]
    (List.rev !fwd)

let test_tombstones_compact () =
  let b = B.create ~capacity:4 () in
  (* Offset head so compaction crosses the ring's physical wrap. *)
  for i = 0 to 2 do
    B.push b i
  done;
  B.drop_front b 3;
  for i = 1 to 7 do
    B.push b i
  done;
  B.delete b 0;
  B.delete b 2;
  B.delete b 6;
  Alcotest.(check int) "compact returns survivors" 4 (B.compact b);
  Alcotest.(check int) "length shrank" 4 (B.length b);
  Alcotest.(check (list int)) "order preserved" [ 2; 4; 5; 6 ] (B.to_list b);
  (* Survivors are real elements again: indexable, poppable. *)
  Alcotest.(check int) "get 0" 2 (B.get b 0);
  Alcotest.(check int) "pop_back" 6 (B.pop_back b);
  (* Compacting a clean buffer is the identity. *)
  Alcotest.(check int) "idempotent" 3 (B.compact b);
  Alcotest.(check (list int)) "unchanged" [ 2; 4; 5 ] (B.to_list b)

let test_tombstones_pop_back_skips () =
  let b = B.create () in
  for i = 1 to 4 do
    B.push b i
  done;
  B.delete b 3;
  B.delete b 2;
  Alcotest.(check int) "pop_back skips trailing tombstones" 2 (B.pop_back b);
  Alcotest.(check int) "length consumed the tombstones" 1 (B.length b);
  B.delete b 0;
  Alcotest.check_raises "all-tombstone buffer pops empty"
    (Invalid_argument "Opbuf.pop_back: empty") (fun () ->
      ignore (B.pop_back b))

let test_tombstones_parallel_rings () =
  (* The weak-stack flush discipline: two index-aligned rings, a cancelled
     op tombstoned at the same index in both, then both compacted — the
     pairing of survivors must be preserved. *)
  let vals = B.create () and tags = B.create () in
  for i = 1 to 6 do
    B.push vals (i * 10);
    B.push tags (Printf.sprintf "t%d" i)
  done;
  List.iter
    (fun i ->
      B.delete vals i;
      B.delete tags i)
    [ 1; 4 ];
  Alcotest.(check int) "vals compact" 4 (B.compact vals);
  Alcotest.(check int) "tags compact" 4 (B.compact tags);
  for i = 0 to B.length vals - 1 do
    let v = B.get vals i and tag = B.get tags i in
    Alcotest.(check string)
      (Printf.sprintf "pair %d aligned" i)
      (Printf.sprintf "t%d" (v / 10))
      tag
  done

(* The property version of the same invariant: an arbitrary interleaving
   of pushes, same-index deletes, and compactions applied to two rings —
   deliberately created with different capacities, so growth and
   wraparound happen at different times — must keep them index-aligned:
   equal lengths, identical tombstone positions, and every live slot
   still holding its partner's value. This is the alignment contract the
   weak-stack flush path relies on when it cancels a window entry. *)
let prop_parallel_rings_aligned =
  QCheck.Test.make ~name:"parallel rings aligned under delete/compact"
    ~count:400
    QCheck.(list (pair (int_bound 5) (int_bound 30)))
    (fun script ->
      let vals = B.create ~capacity:2 () in
      let tags = B.create ~capacity:16 () in
      let counter = ref 0 in
      let aligned () =
        B.length vals = B.length tags
        && B.live vals = B.live tags
        &&
        let ok = ref true in
        for i = 0 to B.length vals - 1 do
          if B.deleted vals i <> B.deleted tags i then ok := false
          else if
            (not (B.deleted vals i)) && B.get tags i <> B.get vals i * 10
          then ok := false
        done;
        !ok
      in
      let step (kind, arg) =
        match kind with
        | 0 | 1 | 2 ->
            (* Bias toward pushes so deletes and compactions have
               something to chew on. *)
            incr counter;
            B.push vals !counter;
            B.push tags (!counter * 10);
            true
        | 3 | 4 ->
            let len = B.length vals in
            if len > 0 then begin
              let i = arg mod len in
              B.delete vals i;
              B.delete tags i
            end;
            true
        | _ -> B.compact vals = B.compact tags
      in
      List.for_all (fun op -> step op && aligned ()) script
      && B.compact vals = B.compact tags
      && aligned ())

(* -------------------- qcheck: list-model parity ---------------------- *)

(* Script: true = push of the (fresh) counter value; false = one of the
   removal operations, selected by the attached int. Model is a plain
   list, oldest first. *)
let prop_model =
  QCheck.Test.make ~name:"opbuf matches list model (wraparound + growth)"
    ~count:1000
    QCheck.(list (pair bool (int_bound 2)))
    (fun script ->
      let b = B.create ~capacity:2 () in
      let model = ref [] in
      let counter = ref 0 in
      List.iter
        (fun (is_push, sel) ->
          if is_push then begin
            incr counter;
            B.push b !counter;
            model := !model @ [ !counter ]
          end
          else
            match sel with
            | 0 ->
                (* pop_back: remove newest *)
                if !model <> [] then begin
                  let expected = List.nth !model (List.length !model - 1) in
                  let got = B.pop_back b in
                  if got <> expected then
                    QCheck.Test.fail_reportf "pop_back: got %d, want %d" got
                      expected;
                  model :=
                    List.filteri
                      (fun i _ -> i < List.length !model - 1)
                      !model
                end
            | 1 ->
                (* drop_front: remove a prefix *)
                if !model <> [] then begin
                  let n = 1 + (!counter mod List.length !model) in
                  let n = min n (List.length !model) in
                  B.drop_front b n;
                  model := List.filteri (fun i _ -> i >= n) !model
                end
            | _ ->
                (* truncate to half *)
                let n = List.length !model / 2 in
                B.truncate b n;
                model := List.filteri (fun i _ -> i < n) !model)
        script;
      B.to_list b = !model
      && B.length b = List.length !model
      && List.for_all2 ( = )
           (List.init (B.length b) (B.get b))
           !model)

(* FIFO through the ring: interleaved push/drop_front at ring-wrapping
   sizes preserves arrival order. *)
let prop_fifo =
  QCheck.Test.make ~name:"opbuf FIFO order under wraparound" ~count:500
    QCheck.(int_bound 5)
    (fun chunk ->
      let chunk = chunk + 1 in
      let b = B.create ~capacity:4 () in
      let next_in = ref 0 and next_out = ref 0 and ok = ref true in
      for _ = 1 to 50 do
        for _ = 1 to chunk do
          B.push b !next_in;
          incr next_in
        done;
        let take = B.length b / 2 in
        for i = 0 to take - 1 do
          if B.get b i <> !next_out + i then ok := false
        done;
        B.drop_front b take;
        next_out := !next_out + take
      done;
      !ok)

(* ---------------- allocation budget: weak-stack flush ---------------- *)

(* A full window's flush must allocate O(1) beyond the spliced nodes and
   the futures themselves: the ring is reused, no transient lists. Budget:
   push+flush ≤ 22 words/op (was ~30 with list windows; now ~18: future +
   stack node + CAS-counter noise), pop+flush ≤ 19 (was ~27). Skipped
   under FLDS_FAULTS: armed injection points allocate on the paths being
   budgeted. *)
let test_alloc_budget () =
  if Faults.enabled () then Alcotest.skip ();
  let window = 64 and iters = 500 in
  let s = Fl.Weak_stack.create ~elimination:false () in
  let h = Fl.Weak_stack.handle s in
  let measure f =
    for _ = 1 to 10 do
      f ()
    done;
    Gc.full_major ();
    let before = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    (Gc.minor_words () -. before) /. float_of_int (iters * window)
  in
  let push_words =
    measure (fun () ->
        for i = 1 to window do
          ignore (Fl.Weak_stack.push h i)
        done;
        Fl.Weak_stack.flush h)
  in
  let pop_words =
    measure (fun () ->
        for _ = 1 to window do
          ignore (Fl.Weak_stack.pop h)
        done;
        Fl.Weak_stack.flush h)
  in
  Alcotest.(check bool)
    (Printf.sprintf "push+flush %.1f words/op within budget" push_words)
    true (push_words <= 22.0);
  Alcotest.(check bool)
    (Printf.sprintf "pop+flush %.1f words/op within budget" pop_words)
    true (pop_words <= 19.0)

(* ---------------- Slack drain reentrancy regression ------------------ *)

(* A force thunk that reentrantly notes follow-up work must not corrupt
   the half-drained window: the reentrant registrations land in a fresh
   window and are drained before [drain] returns, each exactly once. *)
let test_slack_reentrant_note () =
  let sl = Fl.Slack.create ~order:Fl.Slack.Newest_first 4 in
  let fired = ref [] in
  let rec thunk ~respawn id () =
    fired := id :: !fired;
    if respawn then
      (* A follow-up operation issued from inside the force, as a
         medium-FL evaluator would: must be drained too, once. *)
      Fl.Slack.note sl (thunk ~respawn:false (id + 100))
  in
  for id = 1 to 3 do
    Fl.Slack.note sl (thunk ~respawn:true id)
  done;
  (* The 4th note fills the window and triggers the drain; its thunk
     respawns as well. *)
  Fl.Slack.note sl (thunk ~respawn:true 4);
  let sorted = List.sort compare !fired in
  Alcotest.(check (list int)) "each thunk fired exactly once"
    [ 1; 2; 3; 4; 101; 102; 103; 104 ] sorted;
  Alcotest.(check int) "window empty after drain" 0 (Fl.Slack.pending sl);
  (* Explicit drain on a partially filled window with reentrant notes. *)
  fired := [];
  Fl.Slack.note sl (thunk ~respawn:true 10);
  Fl.Slack.drain sl;
  Alcotest.(check (list int)) "explicit drain settles follow-ups"
    [ 10; 110 ] (List.sort compare !fired);
  Alcotest.(check int) "empty again" 0 (Fl.Slack.pending sl)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "opbuf"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "growth wrapped" `Quick test_growth_wrapped;
          Alcotest.test_case "iteration orders" `Quick test_iter_orders;
          Alcotest.test_case "truncate + swap" `Quick test_truncate_swap;
        ]
        @ qsuite [ prop_model; prop_fifo ] );
      ( "tombstones",
        [
          Alcotest.test_case "delete/deleted/live" `Quick
            test_tombstones_basic;
          Alcotest.test_case "compact across wrap" `Quick
            test_tombstones_compact;
          Alcotest.test_case "pop_back skips" `Quick
            test_tombstones_pop_back_skips;
          Alcotest.test_case "parallel rings stay aligned" `Quick
            test_tombstones_parallel_rings;
        ]
        @ qsuite [ prop_parallel_rings_aligned ] );
      ( "allocation",
        [ Alcotest.test_case "weak-stack flush budget" `Quick test_alloc_budget ] );
      ( "slack",
        [
          Alcotest.test_case "reentrant note during drain" `Quick
            test_slack_reentrant_note;
        ] );
    ]
