(* Tests for the Conformance library itself: claimed conditions, explicit
   condition overrides, and — critically — that it actually catches
   incorrect implementations. *)

module R = Fl.Registry
module Future = Futures.Future

let test_claimed_conditions () =
  Alcotest.(check string) "lockfree" "strong"
    (Lin.Order.condition_name (Conformance.claimed_condition "lockfree"));
  Alcotest.(check string) "elim" "strong"
    (Lin.Order.condition_name (Conformance.claimed_condition "elim"));
  Alcotest.(check string) "flatcomb" "strong"
    (Lin.Order.condition_name (Conformance.claimed_condition "flatcomb"));
  Alcotest.(check string) "strong" "strong"
    (Lin.Order.condition_name (Conformance.claimed_condition "strong"));
  Alcotest.(check string) "medium" "medium"
    (Lin.Order.condition_name (Conformance.claimed_condition "medium"));
  Alcotest.(check string) "txn" "medium"
    (Lin.Order.condition_name (Conformance.claimed_condition "txn"));
  Alcotest.(check string) "weak" "weak"
    (Lin.Order.condition_name (Conformance.claimed_condition "weak"));
  Alcotest.check_raises "unknown"
    (Invalid_argument "Conformance: unknown implementation nonesuch")
    (fun () -> ignore (Conformance.claimed_condition "nonesuch"))

(* A deliberately broken stack: pop returns values FIFO (it is a queue in
   disguise). Even the weak condition must catch this within a few
   rounds. *)
let broken_stack : R.stack_impl =
  {
    s_name = "weak" (* claim weak-FL: the weakest condition *);
    s_make =
      (fun () ->
        let q = Lockfree.Ms_queue.create () in
        {
          R.s_handle =
            (fun () ->
              {
                R.s_push =
                  (fun x ->
                    Lockfree.Ms_queue.enqueue q x;
                    Future.of_value ());
                s_pop =
                  (fun () -> Future.of_value (Lockfree.Ms_queue.dequeue q));
                s_flush = ignore;
                s_abandon = (fun () -> 0);
              });
          s_drain = ignore;
          s_cas_count = (fun () -> 0);
          s_contents = (fun () -> Lockfree.Ms_queue.to_list q);
          s_dials = (fun () -> []);
        });
  }

let test_catches_broken_stack () =
  (* Single domain, sequential ops: push a; push b; pop must be b, the
     broken stack returns a. More ops per thread make a violating
     interleaving near-certain. *)
  let outcome =
    Conformance.check_stack ~threads:2 ~ops_per_thread:8 ~rounds:10
      broken_stack
  in
  Alcotest.(check bool) "violations found" true (outcome.violations > 0);
  Alcotest.(check bool) "failure rendered" true
    (outcome.first_failure <> None)

(* A "stack" that loses every second push entirely. *)
let lossy_stack : R.stack_impl =
  {
    s_name = "weak";
    s_make =
      (fun () ->
        let s = Lockfree.Treiber_stack.create () in
        let parity = Atomic.make 0 in
        {
          R.s_handle =
            (fun () ->
              {
                R.s_push =
                  (fun x ->
                    if Atomic.fetch_and_add parity 1 land 1 = 0 then
                      Lockfree.Treiber_stack.push s x;
                    Future.of_value ());
                s_pop =
                  (fun () -> Future.of_value (Lockfree.Treiber_stack.pop s));
                s_flush = ignore;
                s_abandon = (fun () -> 0);
              });
          s_drain = ignore;
          s_cas_count = (fun () -> 0);
          s_contents = (fun () -> Lockfree.Treiber_stack.to_list s);
          s_dials = (fun () -> []);
        });
  }

let test_catches_lossy_stack () =
  let outcome =
    Conformance.check_stack ~threads:2 ~ops_per_thread:8 ~rounds:10
      lossy_stack
  in
  Alcotest.(check bool) "violations found" true (outcome.violations > 0)

(* Condition override: the weak stack checked against STRONG must fail
   (elimination reorders operations), while against weak it passes. This
   also demonstrates the conditions are genuinely distinguishable on real
   executions, not just on paper. *)
let test_weak_stack_fails_strong_check () =
  let impl = R.find_stack "weak" in
  let strong_outcome =
    Conformance.check_stack ~threads:3 ~ops_per_thread:6
      ~condition:Lin.Order.Strong ~rounds:30 impl
  in
  let weak_outcome = Conformance.check_stack ~rounds:10 impl in
  Alcotest.(check int) "weak check passes" 0 weak_outcome.violations;
  (* The strong check must fail in at least one of 30 randomized rounds:
     any round where a pop's future is fulfilled by elimination against a
     push invoked after the pop's creation response violates strong-FL. *)
  Alcotest.(check bool) "strong check fails eventually" true
    (strong_outcome.violations > 0)

let test_outcome_rounds_recorded () =
  let outcome = Conformance.check_queue ~rounds:3 (R.find_queue "medium") in
  Alcotest.(check int) "rounds" 3 outcome.rounds;
  Alcotest.(check int) "no violations" 0 outcome.violations;
  Alcotest.(check bool) "no failure text" true (outcome.first_failure = None)

let () =
  Alcotest.run "conformance"
    [
      ( "conditions",
        [ Alcotest.test_case "claimed map" `Quick test_claimed_conditions ] );
      ( "detection",
        [
          Alcotest.test_case "catches FIFO-as-stack" `Slow
            test_catches_broken_stack;
          Alcotest.test_case "catches lossy stack" `Slow
            test_catches_lossy_stack;
          Alcotest.test_case "weak impl fails strong check" `Slow
            test_weak_stack_fails_strong_check;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "rounds recorded" `Slow
            test_outcome_rounds_recorded;
        ] );
    ]
