(* Tests for the Future mechanism: fulfilment, forcing, evaluators,
   cross-domain handoff. *)

module Future = Futures.Future

let test_of_value () =
  let f = Future.of_value 42 in
  Alcotest.(check bool) "ready" true (Future.is_ready f);
  Alcotest.(check (option int)) "peek" (Some 42) (Future.peek f);
  Alcotest.(check int) "force" 42 (Future.force f);
  Alcotest.(check int) "force again" 42 (Future.force f)

let test_fulfil_once () =
  let f = Future.create () in
  Alcotest.(check bool) "pending" false (Future.is_ready f);
  Alcotest.(check (option int)) "peek pending" None (Future.peek f);
  Future.fulfil f 7;
  Alcotest.(check bool) "ready" true (Future.is_ready f);
  Alcotest.check_raises "double fulfil" Future.Already_fulfilled (fun () ->
      Future.fulfil f 8);
  Alcotest.(check int) "value preserved" 7 (Future.force f)

let test_try_fulfil () =
  let f = Future.create () in
  Alcotest.(check bool) "first" true (Future.try_fulfil f 1);
  Alcotest.(check bool) "second" false (Future.try_fulfil f 2);
  Alcotest.(check int) "kept first" 1 (Future.force f)

let test_evaluator_runs_on_force () =
  let ran = ref false in
  let f = Future.create () in
  Future.set_evaluator f (fun () ->
      ran := true;
      Future.fulfil f 99);
  Alcotest.(check bool) "not yet" false !ran;
  Alcotest.(check int) "forced" 99 (Future.force f);
  Alcotest.(check bool) "evaluator ran" true !ran

let test_evaluator_not_rerun () =
  let runs = ref 0 in
  let f = Future.create () in
  Future.set_evaluator f (fun () ->
      incr runs;
      Future.fulfil f !runs);
  Alcotest.(check int) "first force" 1 (Future.force f);
  Alcotest.(check int) "second force cached" 1 (Future.force f);
  Alcotest.(check int) "single run" 1 !runs

let test_create_with () =
  let f = ref None in
  let fut = Future.create_with ~evaluator:(fun () ->
      match !f with Some fut -> Future.fulfil fut 5 | None -> ())
  in
  f := Some fut;
  Alcotest.(check int) "force" 5 (Future.force fut)

let test_force_stuck () =
  let f : int Future.t = Future.create () in
  Alcotest.check_raises "stuck without evaluator" Future.Stuck (fun () ->
      ignore (Future.force f))

let test_broken_evaluator_stuck () =
  let f : int Future.t = Future.create () in
  Future.set_evaluator f (fun () -> () (* forgets to fulfil *));
  Alcotest.check_raises "stuck evaluator" Future.Stuck (fun () ->
      ignore (Future.force f))

let test_evaluator_replacement () =
  (* set_evaluator replaces: only the latest installed evaluator runs.
     This is how the medium-FL structures re-point a pending future at a
     cheaper resume position as more operations pile up behind it. *)
  let f = Future.create () in
  let first = ref 0 and second = ref 0 in
  Future.set_evaluator f (fun () ->
      incr first;
      Future.fulfil f 1);
  Future.set_evaluator f (fun () ->
      incr second;
      Future.fulfil f 2);
  Alcotest.(check int) "replacement fulfilled" 2 (Future.force f);
  Alcotest.(check int) "old evaluator never ran" 0 !first;
  Alcotest.(check int) "new evaluator ran once" 1 !second

let test_replace_broken_evaluator () =
  (* A Stuck force leaves the future pending: the owner may install a
     working evaluator and retry. *)
  let f : int Future.t = Future.create () in
  Future.set_evaluator f (fun () -> ());
  Alcotest.check_raises "broken first" Future.Stuck (fun () ->
      ignore (Future.force f));
  Alcotest.(check bool) "still pending" false (Future.is_ready f);
  Future.set_evaluator f (fun () -> Future.fulfil f 11);
  Alcotest.(check int) "repaired and forced" 11 (Future.force f)

let test_evaluator_fulfilled_concurrently () =
  (* The evaluator finds the future already fulfilled (an eliminator or
     combiner got there first): it must not double-fulfil, and force
     returns the existing value. *)
  let f = Future.create () in
  Future.set_evaluator f (fun () -> ignore (Future.try_fulfil f 2));
  Future.fulfil f 1;
  Alcotest.(check int) "first fulfilment wins" 1 (Future.force f)

(* --------------------------- bounded waits --------------------------- *)

let test_await_for_ready () =
  let f = Future.of_value 5 in
  Alcotest.(check int) "ready, no wait" 5 (Future.await_for f ~seconds:0.0)

let test_await_for_timeout () =
  let f : int Future.t = Future.create () in
  let dt =
    Workload.Runner.time (fun () ->
        Alcotest.check_raises "nobody fulfils" Future.Timeout (fun () ->
            ignore (Future.await_for f ~seconds:0.002)))
  in
  Alcotest.(check bool) "waited the timeout out" true (dt >= 0.002);
  (* Timeout leaves the future usable. *)
  Future.fulfil f 3;
  Alcotest.(check int) "late fulfilment still lands" 3 (Future.await f)

let test_force_until_timeout_then_value () =
  let f : int Future.t = Future.create () in
  Alcotest.check_raises "deadline passes" Future.Timeout (fun () ->
      ignore (Future.force_until f ~deadline:(Sync.Mono.now () +. 0.002)));
  Future.fulfil f 8;
  Alcotest.(check int) "ready future ignores deadline" 8
    (Future.force_until f ~deadline:0.0)

let test_force_until_evaluator_completes () =
  (* An installed evaluator runs to completion even past the deadline —
     aborting it midway could leave pending lists half-applied. *)
  let f = Future.create () in
  Future.set_evaluator f (fun () ->
      Unix.sleepf 0.005;
      Future.fulfil f 4);
  Alcotest.(check int) "evaluator finishes despite past deadline" 4
    (Future.force_until f ~deadline:0.0)

let test_force_until_broken_evaluator_stuck () =
  let f : int Future.t = Future.create () in
  Future.set_evaluator f (fun () -> ());
  Alcotest.check_raises "stuck beats timeout for broken evaluators"
    Future.Stuck (fun () ->
      ignore (Future.force_until f ~deadline:(Sync.Mono.now () +. 1.0)))

let test_await_for_cross_domain () =
  let f = Future.create () in
  let producer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.005;
        Future.fulfil f 77)
  in
  Alcotest.(check int) "fulfilled within patience" 77
    (Future.await_for f ~seconds:2.0);
  Domain.join producer

let test_cross_domain_fulfil () =
  let f = Future.create () in
  let producer = Domain.spawn (fun () -> Future.fulfil f 123) in
  Alcotest.(check int) "await" 123 (Future.await f);
  Domain.join producer

let test_cross_domain_force_waits () =
  (* force with no evaluator waits a bounded time; a concurrent fulfiller
     should win the race comfortably. *)
  let f = Future.create () in
  let producer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.01;
        Future.fulfil f "hello")
  in
  Alcotest.(check string) "forced" "hello" (Future.force f);
  Domain.join producer

let test_many_futures_one_producer () =
  let n = 1_000 in
  let futures = Array.init n (fun _ -> Future.create ()) in
  let producer =
    Domain.spawn (fun () -> Array.iteri (fun i f -> Future.fulfil f i) futures)
  in
  let ok = ref true in
  Array.iteri (fun i f -> if Future.await f <> i then ok := false) futures;
  Domain.join producer;
  Alcotest.(check bool) "all values delivered" true !ok

(* ----------------------------- lifecycle ---------------------------- *)

let test_cancel_basic () =
  let f : int Future.t = Future.create () in
  Alcotest.(check bool) "pending before" true (Future.is_pending f);
  Alcotest.(check bool) "cancel wins" true (Future.cancel f);
  Alcotest.(check bool) "cancelled" true (Future.is_cancelled f);
  Alcotest.(check bool) "not ready" false (Future.is_ready f);
  Alcotest.(check bool) "not pending" false (Future.is_pending f);
  Alcotest.(check (option int)) "peek empty" None (Future.peek f);
  Alcotest.(check bool) "second cancel loses" false (Future.cancel f);
  Alcotest.(check bool) "poison after cancel loses" false
    (Future.poison f Future.Orphaned);
  Alcotest.(check bool) "try_fulfil after cancel loses" false
    (Future.try_fulfil f 1);
  Alcotest.check_raises "force raises" Future.Cancelled (fun () ->
      ignore (Future.force f));
  Alcotest.check_raises "await raises" Future.Cancelled (fun () ->
      ignore (Future.await f));
  Alcotest.check_raises "await_for raises, not Timeout" Future.Cancelled
    (fun () -> ignore (Future.await_for f ~seconds:10.0));
  Alcotest.check_raises "fulfil raises" Future.Already_fulfilled (fun () ->
      Future.fulfil f 2)

let test_cancel_loses_to_fulfil () =
  let f = Future.create () in
  Future.fulfil f 5;
  Alcotest.(check bool) "cancel after fulfil loses" false (Future.cancel f);
  Alcotest.(check int) "value stands" 5 (Future.force f)

let test_poison_basic () =
  let f : int Future.t = Future.create () in
  Alcotest.(check bool) "poison wins" true (Future.poison f Future.Orphaned);
  Alcotest.(check bool) "poisoned" true (Future.is_poisoned f);
  Alcotest.(check bool) "not cancelled" false (Future.is_cancelled f);
  Alcotest.(check bool) "second poison loses" false
    (Future.poison f Future.Orphaned);
  Alcotest.check_raises "force raises Broken" (Future.Broken Future.Orphaned)
    (fun () -> ignore (Future.force f));
  Alcotest.check_raises "await_for raises immediately"
    (Future.Broken Future.Orphaned) (fun () ->
      ignore (Future.await_for f ~seconds:10.0))

let test_poison_carries_reason () =
  let f : int Future.t = Future.create () in
  let reason = Failure "combiner died" in
  Alcotest.(check bool) "poison wins" true (Future.poison f reason);
  Alcotest.check_raises "reason travels" (Future.Broken reason) (fun () ->
      ignore (Future.await f))

let test_cancelled_evaluator_not_run () =
  let ran = ref false in
  let f : int Future.t = Future.create () in
  Future.set_evaluator f (fun () ->
      ran := true;
      Future.fulfil f 1);
  Alcotest.(check bool) "cancel wins" true (Future.cancel f);
  Alcotest.check_raises "force raises" Future.Cancelled (fun () ->
      ignore (Future.force f));
  Alcotest.(check bool) "evaluator never ran" false !ran

let test_cancel_fulfil_race () =
  (* Exactly one of a concurrent cancel and fulfil wins, and the loser's
     view is consistent with the winner's. *)
  let races = 200 in
  let inconsistent = ref 0 in
  for _ = 1 to races do
    let f = Future.create () in
    let barrier = Sync.Barrier.create 2 in
    let fulfiller =
      Domain.spawn (fun () ->
          Sync.Barrier.wait barrier;
          Future.try_fulfil f 42)
    in
    Sync.Barrier.wait barrier;
    let cancelled = Future.cancel f in
    let fulfilled = Domain.join fulfiller in
    (match (cancelled, fulfilled) with
    | true, false ->
        if not (Future.is_cancelled f) then incr inconsistent
    | false, true -> if Future.force f <> 42 then incr inconsistent
    | true, true | false, false -> incr inconsistent);
    ()
  done;
  Alcotest.(check int) "one winner, consistent state" 0 !inconsistent

let test_map_propagates_cancel () =
  let f : int Future.t = Future.create () in
  let g = Future.map (fun x -> x * 2) f in
  Alcotest.(check bool) "parent cancelled" true (Future.cancel f);
  Alcotest.check_raises "derived raises parent's exn, not Stuck"
    Future.Cancelled (fun () -> ignore (Future.force g));
  (* The derived future is itself terminated: later forces short-circuit
     without re-forcing the parent. *)
  Alcotest.(check bool) "derived cancelled" true (Future.is_cancelled g);
  Alcotest.check_raises "cached terminal state" Future.Cancelled (fun () ->
      ignore (Future.force g))

let test_map_propagates_poison () =
  let f : int Future.t = Future.create () in
  let g = Future.map (fun x -> x * 2) f in
  Alcotest.(check bool) "parent poisoned" true
    (Future.poison f Future.Orphaned);
  Alcotest.check_raises "derived raises Broken"
    (Future.Broken Future.Orphaned) (fun () -> ignore (Future.force g));
  Alcotest.(check bool) "derived poisoned" true (Future.is_poisoned g)

let test_both_propagates_terminal () =
  let a = Future.create () and b : string Future.t = Future.create () in
  Future.fulfil a 1;
  Alcotest.(check bool) "b poisoned" true (Future.poison b Future.Orphaned);
  let c = Future.both a b in
  Alcotest.check_raises "pair raises" (Future.Broken Future.Orphaned)
    (fun () -> ignore (Future.force c));
  Alcotest.(check bool) "pair poisoned" true (Future.is_poisoned c)

let test_all_propagates_terminal () =
  let fs = [ Future.of_value 0; Future.create (); Future.of_value 2 ] in
  (match fs with
  | [ _; p; _ ] -> Alcotest.(check bool) "cancelled" true (Future.cancel p)
  | _ -> assert false);
  let batch = Future.all fs in
  Alcotest.check_raises "batch raises" Future.Cancelled (fun () ->
      ignore (Future.force batch));
  Alcotest.(check bool) "batch cancelled" true (Future.is_cancelled batch)

let test_poison_wakes_waiter () =
  (* A waiter spinning in await is released (with Broken) when another
     thread poisons the orphan — the recovery path for a dead fulfiller. *)
  let f : int Future.t = Future.create () in
  let waiter =
    Domain.spawn (fun () ->
        match Future.await f with
        | _ -> `Fulfilled
        | exception Future.Broken Future.Orphaned -> `Poisoned
        | exception _ -> `Other)
  in
  Unix.sleepf 0.005;
  Alcotest.(check bool) "poison wins" true (Future.poison f Future.Orphaned);
  Alcotest.(check bool) "waiter released with Broken" true
    (Domain.join waiter = `Poisoned)

(* ---------------------------- combinators --------------------------- *)

let test_map () =
  let f = Future.create () in
  let g = Future.map (fun x -> x * 2) f in
  Alcotest.(check bool) "derived pending" false (Future.is_ready g);
  Future.fulfil f 21;
  Alcotest.(check int) "derived forces parent" 42 (Future.force g);
  Alcotest.(check int) "cached" 42 (Future.force g)

let test_map_forces_evaluator () =
  let evaluated = ref false in
  let f = Future.create () in
  Future.set_evaluator f (fun () ->
      evaluated := true;
      Future.fulfil f 10);
  let g = Future.map string_of_int f in
  Alcotest.(check string) "maps after eval" "10" (Future.force g);
  Alcotest.(check bool) "parent evaluator ran" true !evaluated

let test_both () =
  let a = Future.create () and b = Future.create () in
  Future.set_evaluator a (fun () -> Future.fulfil a 1);
  Future.set_evaluator b (fun () -> Future.fulfil b "x");
  let c = Future.both a b in
  Alcotest.(check (pair int string)) "pair" (1, "x") (Future.force c)

let test_all () =
  let fs = List.init 5 Future.of_value in
  let batch = Future.all fs in
  Alcotest.(check (list int)) "batch" [ 0; 1; 2; 3; 4 ] (Future.force batch);
  let pending = Future.create () in
  let batch2 = Future.all [ pending ] in
  Future.set_evaluator pending (fun () -> Future.fulfil pending 9);
  Alcotest.(check (list int)) "evaluators forced" [ 9 ] (Future.force batch2)

(* Compile-time conformance of the handle-based structures to the shared
   signatures (no runtime component). *)
module _ : Fl.Fl_intf.HANDLE_STACK = Fl.Weak_stack
module _ : Fl.Fl_intf.HANDLE_STACK = Fl.Medium_stack
module _ : Fl.Fl_intf.HANDLE_QUEUE = Fl.Weak_queue
module _ : Fl.Fl_intf.HANDLE_QUEUE = Fl.Medium_queue

module Int_key = struct
  type t = int

  let compare = Int.compare
end

module _ : Fl.Fl_intf.HANDLE_SET with module Key := Int_key =
  Fl.Weak_list.Make (Int_key)

module _ : Fl.Fl_intf.HANDLE_SET with module Key := Int_key =
  Fl.Medium_list.Make (Int_key)

module _ : Fl.Fl_intf.HANDLE_SET with module Key := Int_key =
  Fl.Txn_list.Make (Int_key)

(* Rejection: the admission-control fate. Distinct from Cancelled (the
   waiter gave up) and Broken (the op was accepted, then lost) — a
   rejected op was never accepted, so resubmission is safe. *)
let test_reject_basic () =
  let f : int Future.t = Future.create () in
  Alcotest.(check bool) "reject wins the race" true (Future.reject f);
  Alcotest.(check bool) "rejected" true (Future.is_rejected f);
  Alcotest.(check bool) "not cancelled" false (Future.is_cancelled f);
  Alcotest.(check bool) "not ready" false (Future.is_ready f);
  Alcotest.(check bool) "not pending" false (Future.is_pending f);
  Alcotest.(check (option int)) "peek empty" None (Future.peek f);
  Alcotest.(check bool) "second reject loses" false (Future.reject f);
  Alcotest.(check bool) "cancel after reject loses" false (Future.cancel f);
  Alcotest.(check bool) "try_fulfil after reject loses" false
    (Future.try_fulfil f 1);
  Alcotest.check_raises "force raises" Future.Rejected (fun () ->
      ignore (Future.force f));
  Alcotest.check_raises "await raises" Future.Rejected (fun () ->
      ignore (Future.await f));
  Alcotest.check_raises "await_for raises, not Timeout" Future.Rejected
    (fun () -> ignore (Future.await_for f ~seconds:10.0))

let test_reject_loses_races () =
  let f = Future.create () in
  Future.fulfil f 5;
  Alcotest.(check bool) "reject after fulfil loses" false (Future.reject f);
  Alcotest.(check int) "value kept" 5 (Future.force f);
  let g : int Future.t = Future.create () in
  Alcotest.(check bool) "cancel first" true (Future.cancel g);
  Alcotest.(check bool) "reject after cancel loses" false (Future.reject g);
  Alcotest.(check bool) "fate unchanged" true (Future.is_cancelled g)

let test_rejected_constructor () =
  let f : int Future.t = Future.rejected () in
  Alcotest.(check bool) "born rejected" true (Future.is_rejected f);
  Alcotest.check_raises "force raises" Future.Rejected (fun () ->
      ignore (Future.force f))

let test_map_propagates_reject () =
  let f : int Future.t = Future.create () in
  let g = Future.map (fun x -> x + 1) f in
  ignore (Future.reject f);
  Alcotest.check_raises "derived raises Rejected" Future.Rejected (fun () ->
      ignore (Future.force g));
  Alcotest.(check bool) "derived is rejected" true (Future.is_rejected g)

let test_retry_eventually_accepted () =
  let refusals = ref 2 in
  let calls = ref 0 in
  let f =
    Future.retry ~attempts:5 (fun () ->
        incr calls;
        if !refusals > 0 then begin
          decr refusals;
          Future.rejected ()
        end
        else Future.of_value 42)
  in
  Alcotest.(check int) "two refusals, then accepted" 3 !calls;
  Alcotest.(check int) "accepted value" 42 (Future.force f)

let test_retry_exhausts_attempts () =
  let calls = ref 0 in
  let f : int Future.t =
    Future.retry ~attempts:3 (fun () ->
        incr calls;
        Future.rejected ())
  in
  Alcotest.(check int) "bounded: exactly attempts calls" 3 !calls;
  Alcotest.(check bool) "final fate is rejected" true (Future.is_rejected f)

(* retry only resubmits Rejected: a Cancelled or Broken future was an
   accepted op, and resubmitting it could double-apply the effect. *)
let test_retry_only_retries_rejected () =
  let calls = ref 0 in
  let f : int Future.t =
    Future.retry ~attempts:5 (fun () ->
        incr calls;
        let g = Future.create () in
        ignore (Future.cancel g);
        g)
  in
  Alcotest.(check int) "cancelled not resubmitted" 1 !calls;
  Alcotest.(check bool) "cancelled fate kept" true (Future.is_cancelled f);
  let broken_calls = ref 0 in
  let b : int Future.t =
    Future.retry ~attempts:5 (fun () ->
        incr broken_calls;
        let g = Future.create () in
        ignore (Future.poison g Future.Orphaned);
        g)
  in
  Alcotest.(check int) "broken not resubmitted" 1 !broken_calls;
  Alcotest.(check bool) "broken fate kept" true (Future.is_poisoned b);
  Alcotest.check_raises "attempts must be >= 1"
    (Invalid_argument "Future.retry: attempts must be >= 1") (fun () ->
      ignore (Future.retry ~attempts:0 (fun () -> Future.of_value 0)))

(* Concurrent reject vs fulfil: exactly one side wins, and the loser
   observes the winner's fate. *)
let test_reject_fulfil_race () =
  for _ = 1 to 200 do
    let f = Future.create () in
    let barrier = Atomic.make 0 in
    let d =
      Domain.spawn (fun () ->
          Atomic.incr barrier;
          while Atomic.get barrier < 2 do
            Domain.cpu_relax ()
          done;
          Future.try_fulfil f 1)
    in
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do
      Domain.cpu_relax ()
    done;
    let rejected = Future.reject f in
    let fulfilled = Domain.join d in
    Alcotest.(check bool) "exactly one winner" true (rejected <> fulfilled);
    Alcotest.(check bool) "fate matches winner" fulfilled (Future.is_ready f)
  done

let () =
  Alcotest.run "future"
    [
      ( "single-thread",
        [
          Alcotest.test_case "of_value" `Quick test_of_value;
          Alcotest.test_case "fulfil once" `Quick test_fulfil_once;
          Alcotest.test_case "try_fulfil" `Quick test_try_fulfil;
          Alcotest.test_case "evaluator on force" `Quick
            test_evaluator_runs_on_force;
          Alcotest.test_case "evaluator not rerun" `Quick
            test_evaluator_not_rerun;
          Alcotest.test_case "create_with" `Quick test_create_with;
          Alcotest.test_case "force stuck" `Quick test_force_stuck;
          Alcotest.test_case "broken evaluator" `Quick
            test_broken_evaluator_stuck;
          Alcotest.test_case "evaluator replacement" `Quick
            test_evaluator_replacement;
          Alcotest.test_case "repair broken evaluator" `Quick
            test_replace_broken_evaluator;
          Alcotest.test_case "evaluator loses fulfilment race" `Quick
            test_evaluator_fulfilled_concurrently;
        ] );
      ( "bounded-waits",
        [
          Alcotest.test_case "await_for ready" `Quick test_await_for_ready;
          Alcotest.test_case "await_for timeout" `Quick test_await_for_timeout;
          Alcotest.test_case "force_until timeout then value" `Quick
            test_force_until_timeout_then_value;
          Alcotest.test_case "force_until runs evaluator to completion"
            `Quick test_force_until_evaluator_completes;
          Alcotest.test_case "force_until broken evaluator is Stuck" `Quick
            test_force_until_broken_evaluator_stuck;
          Alcotest.test_case "await_for cross-domain" `Quick
            test_await_for_cross_domain;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "cancel matrix" `Quick test_cancel_basic;
          Alcotest.test_case "cancel loses to fulfil" `Quick
            test_cancel_loses_to_fulfil;
          Alcotest.test_case "poison matrix" `Quick test_poison_basic;
          Alcotest.test_case "poison carries reason" `Quick
            test_poison_carries_reason;
          Alcotest.test_case "cancelled evaluator not run" `Quick
            test_cancelled_evaluator_not_run;
          Alcotest.test_case "cancel vs fulfil race" `Quick
            test_cancel_fulfil_race;
          Alcotest.test_case "map propagates cancel" `Quick
            test_map_propagates_cancel;
          Alcotest.test_case "map propagates poison" `Quick
            test_map_propagates_poison;
          Alcotest.test_case "both propagates terminal" `Quick
            test_both_propagates_terminal;
          Alcotest.test_case "all propagates terminal" `Quick
            test_all_propagates_terminal;
          Alcotest.test_case "poison wakes waiter" `Quick
            test_poison_wakes_waiter;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "reject matrix" `Quick test_reject_basic;
          Alcotest.test_case "reject loses races" `Quick
            test_reject_loses_races;
          Alcotest.test_case "rejected constructor" `Quick
            test_rejected_constructor;
          Alcotest.test_case "map propagates reject" `Quick
            test_map_propagates_reject;
          Alcotest.test_case "retry eventually accepted" `Quick
            test_retry_eventually_accepted;
          Alcotest.test_case "retry exhausts attempts" `Quick
            test_retry_exhausts_attempts;
          Alcotest.test_case "retry only retries rejected" `Quick
            test_retry_only_retries_rejected;
          Alcotest.test_case "reject vs fulfil race" `Quick
            test_reject_fulfil_race;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "map forces evaluator" `Quick
            test_map_forces_evaluator;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "all" `Quick test_all;
        ] );
      ( "cross-domain",
        [
          Alcotest.test_case "fulfil then await" `Quick
            test_cross_domain_fulfil;
          Alcotest.test_case "force waits for fulfiller" `Quick
            test_cross_domain_force_waits;
          Alcotest.test_case "1000 futures" `Slow
            test_many_futures_one_producer;
        ] );
    ]
