(* Tests for the Harris lock-free list: set semantics, the position-resume
   API, and multi-domain stress with invariant checks. *)

module H = Lockfree.Harris_list.Make (struct
  type t = int

  let compare = Int.compare
end)

let test_set_semantics () =
  let l = H.create () in
  Alcotest.(check bool) "empty" true (H.is_empty l);
  Alcotest.(check bool) "insert 5" true (H.insert l 5);
  Alcotest.(check bool) "insert 5 dup" false (H.insert l 5);
  Alcotest.(check bool) "insert 1" true (H.insert l 1);
  Alcotest.(check bool) "insert 9" true (H.insert l 9);
  Alcotest.(check (list int)) "sorted" [ 1; 5; 9 ] (H.to_list l);
  Alcotest.(check bool) "contains 5" true (H.contains l 5);
  Alcotest.(check bool) "contains 2" false (H.contains l 2);
  Alcotest.(check bool) "remove 5" true (H.remove l 5);
  Alcotest.(check bool) "remove 5 again" false (H.remove l 5);
  Alcotest.(check bool) "contains removed" false (H.contains l 5);
  Alcotest.(check (list int)) "after remove" [ 1; 9 ] (H.to_list l);
  Alcotest.(check int) "length" 2 (H.length l)

let test_remove_head_and_tail () =
  let l = H.create () in
  List.iter (fun k -> ignore (H.insert l k)) [ 1; 2; 3 ];
  Alcotest.(check bool) "remove head" true (H.remove l 1);
  Alcotest.(check bool) "remove tail" true (H.remove l 3);
  Alcotest.(check (list int)) "middle left" [ 2 ] (H.to_list l);
  Alcotest.(check bool) "remove last" true (H.remove l 2);
  Alcotest.(check bool) "empty" true (H.is_empty l);
  Alcotest.(check bool) "reinsert after empty" true (H.insert l 2)

let test_positions_ascending () =
  let l = H.create () in
  List.iter (fun k -> ignore (H.insert l k)) [ 10; 20; 30; 40; 50 ];
  let pos = H.head_position l in
  let r1, pos = H.contains_from l pos 10 in
  Alcotest.(check bool) "10 present" true r1;
  let r2, pos = H.insert_from l pos 25 in
  Alcotest.(check bool) "insert 25" true r2;
  let r3, pos = H.remove_from l pos 30 in
  Alcotest.(check bool) "remove 30" true r3;
  let r4, pos = H.contains_from l pos 45 in
  Alcotest.(check bool) "45 absent" false r4;
  let r5, _ = H.contains_from l pos 50 in
  Alcotest.(check bool) "50 present" true r5;
  Alcotest.(check (list int)) "final" [ 10; 20; 25; 40; 50 ] (H.to_list l)

let test_position_same_key_twice () =
  let l = H.create () in
  let pos = H.head_position l in
  let r1, pos = H.insert_from l pos 7 in
  let r2, pos = H.remove_from l pos 7 in
  let r3, pos = H.insert_from l pos 7 in
  let r4, _ = H.contains_from l pos 7 in
  Alcotest.(check (list bool)) "sequence" [ true; true; true; true ]
    [ r1; r2; r3; r4 ]

let test_stale_position_falls_back () =
  let l = H.create () in
  List.iter (fun k -> ignore (H.insert l k)) [ 10; 20; 30 ];
  (* Get a position pointing just before 20, then delete 10 and 20 and
     re-insert 20: the stale position must not hide the fresh node. *)
  let _, pos = H.contains_from l (H.head_position l) 20 in
  ignore (H.remove l 10);
  ignore (H.remove l 20);
  ignore (H.insert l 20);
  let present, _ = H.contains_from l pos 20 in
  Alcotest.(check bool) "sees re-inserted key" true present

let test_boundary_keys () =
  let l = H.create () in
  Alcotest.(check bool) "min_int" true (H.insert l min_int);
  Alcotest.(check bool) "max_int" true (H.insert l max_int);
  Alcotest.(check bool) "zero" true (H.insert l 0);
  Alcotest.(check (list int)) "sorted" [ min_int; 0; max_int ] (H.to_list l)

let prop_model =
  QCheck.Test.make ~name:"harris matches Set model (sequential)" ~count:400
    QCheck.(list (pair (int_bound 2) (int_bound 40)))
    (fun script ->
      let module IS = Set.Make (Int) in
      let l = H.create () in
      let model = ref IS.empty in
      List.for_all
        (fun (kind, k) ->
          match kind with
          | 0 ->
              let expected = not (IS.mem k !model) in
              model := IS.add k !model;
              H.insert l k = expected
          | 1 ->
              let expected = IS.mem k !model in
              model := IS.remove k !model;
              H.remove l k = expected
          | _ -> H.contains l k = IS.mem k !model)
        script
      && H.to_list l = IS.elements !model)

(* Disjoint key ranges: each domain owns a key range; at the end each
   domain's final local model must match the shared list's restriction to
   its range (operations on disjoint ranges don't interfere). *)
let test_parallel_disjoint_ranges () =
  let l = H.create () in
  let domains = 4 and range = 64 and ops = 4_000 in
  let finals = Array.make domains [] in
  let worker i () =
    let module IS = Set.Make (Int) in
    let rng = Workload.Rng.create ~seed:7 ~stream:i in
    let base = i * range in
    let model = ref IS.empty in
    for _ = 1 to ops do
      let k = base + Workload.Rng.below rng range in
      match Workload.Rng.below rng 3 with
      | 0 ->
          let expected = not (IS.mem k !model) in
          model := IS.add k !model;
          assert (H.insert l k = expected)
      | 1 ->
          let expected = IS.mem k !model in
          model := IS.remove k !model;
          assert (H.remove l k = expected)
      | _ -> assert (H.contains l k = IS.mem k !model)
    done;
    finals.(i) <- IS.elements !model
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let contents = H.to_list l in
  for i = 0 to domains - 1 do
    let base = i * range in
    let mine = List.filter (fun k -> k >= base && k < base + range) contents in
    Alcotest.(check (list int))
      (Printf.sprintf "domain %d range" i)
      finals.(i) mine
  done;
  (* sortedness of the full snapshot *)
  Alcotest.(check (list int)) "snapshot sorted"
    (List.sort_uniq compare contents)
    contents

(* Contended single key: concurrent inserts/removes of one key; the number
   of successful inserts and removes may differ by at most ... and final
   presence must agree with the balance. *)
let test_parallel_single_key_balance () =
  let l = H.create () in
  let domains = 4 and ops = 3_000 in
  let inserts = Array.make domains 0 and removes = Array.make domains 0 in
  let worker i () =
    let rng = Workload.Rng.create ~seed:11 ~stream:i in
    for _ = 1 to ops do
      if Workload.Rng.bool rng then begin
        if H.insert l 42 then inserts.(i) <- inserts.(i) + 1
      end
      else if H.remove l 42 then removes.(i) <- removes.(i) + 1
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let ins = Array.fold_left ( + ) 0 inserts in
  let rem = Array.fold_left ( + ) 0 removes in
  let present = H.contains l 42 in
  (* Successful inserts and removes of one key strictly alternate, so
     ins - rem is 1 if present else 0. *)
  Alcotest.(check int) "alternation balance" (if present then 1 else 0)
    (ins - rem)

(* Position-resumed application of a key-sorted script must agree with
   plain from-the-head operations. *)
let prop_positions_equal_plain =
  QCheck.Test.make ~name:"position API == plain ops on sorted scripts"
    ~count:300
    QCheck.(
      pair (list (int_bound 30)) (list (pair (int_bound 2) (int_bound 30))))
    (fun (init, script) ->
      let sorted =
        List.stable_sort (fun (_, k1) (_, k2) -> compare k1 k2) script
      in
      let build () =
        let l = H.create () in
        List.iter (fun k -> ignore (H.insert l k)) init;
        l
      in
      let l1 = build () and l2 = build () in
      let _, r1 =
        List.fold_left
          (fun (pos, acc) (kind, k) ->
            let r, pos' =
              match kind with
              | 0 -> H.insert_from l1 pos k
              | 1 -> H.remove_from l1 pos k
              | _ -> H.contains_from l1 pos k
            in
            (pos', r :: acc))
          (H.head_position l1, [])
          sorted
      in
      let r2 =
        List.rev_map
          (fun (kind, k) ->
            match kind with
            | 0 -> H.insert l2 k
            | 1 -> H.remove l2 k
            | _ -> H.contains l2 k)
          sorted
      in
      r1 = r2 && H.to_list l1 = H.to_list l2)

(* Overlapping key range under full contention: for every key, successful
   inserts and removes alternate, so their difference is exactly the final
   presence (0 or 1). *)
let test_parallel_per_key_balance () =
  let l = H.create () in
  let domains = 4 and ops = 2_500 and range = 16 in
  let inserts = Array.init domains (fun _ -> Array.make range 0) in
  let removes = Array.init domains (fun _ -> Array.make range 0) in
  let worker i () =
    let rng = Workload.Rng.create ~seed:23 ~stream:i in
    for _ = 1 to ops do
      let k = Workload.Rng.below rng range in
      if Workload.Rng.bool rng then begin
        if H.insert l k then inserts.(i).(k) <- inserts.(i).(k) + 1
      end
      else if H.remove l k then removes.(i).(k) <- removes.(i).(k) + 1
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let contents = H.to_list l in
  for k = 0 to range - 1 do
    let ins = Array.fold_left (fun a per -> a + per.(k)) 0 inserts in
    let rem = Array.fold_left (fun a per -> a + per.(k)) 0 removes in
    let present = List.mem k contents in
    Alcotest.(check int)
      (Printf.sprintf "key %d balance" k)
      (if present then 1 else 0)
      (ins - rem)
  done

(* Readers racing writers never crash or return out-of-thin-air answers;
   sortedness of every snapshot is preserved. *)
let test_parallel_snapshot_sorted () =
  let l = H.create () in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Workload.Rng.create ~seed:31 ~stream:0 in
        for _ = 1 to 20_000 do
          let k = Workload.Rng.below rng 64 in
          if Workload.Rng.bool rng then ignore (H.insert l k)
          else ignore (H.remove l k)
        done;
        Atomic.set stop true)
  in
  let sorted_violations = ref 0 in
  while not (Atomic.get stop) do
    let snap = H.to_list l in
    if List.sort_uniq compare snap <> snap then incr sorted_violations
  done;
  Domain.join writer;
  Alcotest.(check int) "snapshots always sorted" 0 !sorted_violations

let () =
  Alcotest.run "lockfree-list"
    [
      ( "sequential",
        [
          Alcotest.test_case "set semantics" `Quick test_set_semantics;
          Alcotest.test_case "remove head/tail" `Quick
            test_remove_head_and_tail;
          Alcotest.test_case "positions ascending" `Quick
            test_positions_ascending;
          Alcotest.test_case "same key via positions" `Quick
            test_position_same_key_twice;
          Alcotest.test_case "stale position fallback" `Quick
            test_stale_position_falls_back;
          Alcotest.test_case "boundary keys" `Quick test_boundary_keys;
          QCheck_alcotest.to_alcotest prop_model;
          QCheck_alcotest.to_alcotest prop_positions_equal_plain;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "disjoint ranges (4 domains)" `Slow
            test_parallel_disjoint_ranges;
          Alcotest.test_case "single-key balance (4 domains)" `Slow
            test_parallel_single_key_balance;
          Alcotest.test_case "per-key balance (4 domains)" `Slow
            test_parallel_per_key_balance;
          Alcotest.test_case "snapshots stay sorted (2 domains)" `Slow
            test_parallel_snapshot_sorted;
        ] );
    ]
