(* Tests for the three futures-based linked-list sets. *)

module Future = Futures.Future

module Int_key = struct
  type t = int

  let compare = Int.compare
end

module H = Lockfree.Harris_list.Make (Int_key)
module WL = Fl.Weak_list.Make (Int_key)
module ML = Fl.Medium_list.Make (Int_key)
module SL = Fl.Strong_list.Make (Int_key)

let force = Future.force

(* ------------------------------ weak ------------------------------- *)

let test_weak_basic () =
  let l = WL.create () in
  let h = WL.handle l in
  let f1 = WL.insert h 5 in
  let f2 = WL.insert h 3 in
  let f3 = WL.contains h 5 in
  Alcotest.(check int) "three pending" 3 (WL.pending_count h);
  Alcotest.(check bool) "insert 5 fresh" true (force f1);
  Alcotest.(check bool) "insert 3 fresh" true (force f2);
  Alcotest.(check bool) "contains 5" true (force f3);
  Alcotest.(check (list int)) "shared sorted" [ 3; 5 ]
    (H.to_list (WL.shared l))

let test_weak_same_key_combining () =
  let l = WL.create () in
  let h = WL.handle l in
  (* insert k; remove k; contains k — net effect nil, one key group. *)
  let fi = WL.insert h 7 in
  let fr = WL.remove h 7 in
  let fc = WL.contains h 7 in
  WL.flush h;
  Alcotest.(check bool) "insert changed" true (force fi);
  Alcotest.(check bool) "remove found it" true (force fr);
  Alcotest.(check bool) "contains after remove" false (force fc);
  Alcotest.(check bool) "shared untouched" true (H.is_empty (WL.shared l));
  (* No modification CAS should have hit the shared list (probe only). *)
  Alcotest.(check int) "zero CAS" 0 (H.cas_count (WL.shared l))

let test_weak_net_insert () =
  let l = WL.create () in
  let h = WL.handle l in
  let fr = WL.remove h 4 in
  let fi = WL.insert h 4 in
  WL.flush h;
  (* Temporal order per key: remove first (absent), then insert. *)
  Alcotest.(check bool) "remove absent" false (force fr);
  Alcotest.(check bool) "insert fresh" true (force fi);
  Alcotest.(check (list int)) "net insert" [ 4 ] (H.to_list (WL.shared l))

let test_weak_net_remove () =
  let l = WL.create () in
  ignore (H.insert (WL.shared l) 4);
  let h = WL.handle l in
  let fi = WL.insert h 4 in
  let fr = WL.remove h 4 in
  WL.flush h;
  Alcotest.(check bool) "insert dup" false (force fi);
  Alcotest.(check bool) "remove present" true (force fr);
  Alcotest.(check bool) "net removed" true (H.is_empty (WL.shared l))

let test_weak_many_keys_one_traversal () =
  let l = WL.create () in
  let h = WL.handle l in
  let keys = [ 50; 10; 30; 20; 40 ] in
  let fs = List.map (fun k -> WL.insert h k) keys in
  WL.flush h;
  List.iter (fun f -> Alcotest.(check bool) "inserted" true (force f)) fs;
  Alcotest.(check (list int)) "sorted result" [ 10; 20; 30; 40; 50 ]
    (H.to_list (WL.shared l))

(* ----------------------------- medium ------------------------------ *)

let test_medium_program_order () =
  let l = ML.create () in
  let h = ML.handle l in
  let f1 = ML.insert h 3 in
  let f2 = ML.insert h 2 in
  (* Keys decrease: resume hint cannot apply; both still succeed. *)
  Alcotest.(check bool) "insert 3" true (force f1);
  Alcotest.(check bool) "insert 2" true (force f2);
  Alcotest.(check (list int)) "both present" [ 2; 3 ]
    (H.to_list (ML.shared l))

let test_medium_stops_at_target () =
  let l = ML.create () in
  let h = ML.handle l in
  let f1 = ML.insert h 1 in
  let f2 = ML.insert h 2 in
  let f3 = ML.insert h 3 in
  (* Forcing f2 applies f1 and f2 but not f3. *)
  Alcotest.(check bool) "f2" true (force f2);
  Alcotest.(check bool) "f1 applied" true (Future.is_ready f1);
  Alcotest.(check bool) "f3 pending" false (Future.is_ready f3);
  Alcotest.(check int) "one left" 1 (ML.pending_count h);
  Alcotest.(check (list int)) "only 1,2 visible" [ 1; 2 ]
    (H.to_list (ML.shared l));
  ignore (force f3 : bool);
  Alcotest.(check (list int)) "3 after force" [ 1; 2; 3 ]
    (H.to_list (ML.shared l))

let test_medium_same_key_sequence () =
  let l = ML.create () in
  let h = ML.handle l in
  let f1 = ML.insert h 5 in
  let f2 = ML.remove h 5 in
  let f3 = ML.insert h 5 in
  let f4 = ML.contains h 5 in
  ML.flush h;
  Alcotest.(check (list bool)) "temporal results" [ true; true; true; true ]
    [ force f1; force f2; force f3; force f4 ];
  Alcotest.(check (list int)) "present" [ 5 ] (H.to_list (ML.shared l))

let test_medium_resume_hint_disabled_equivalent () =
  (* Same script with and without the hint must give the same results. *)
  let script h (ml_insert, ml_remove, ml_contains, flush) =
    let fs =
      [
        ml_insert h 10; ml_insert h 20; ml_contains h 15; ml_remove h 10;
        ml_insert h 5; ml_contains h 5; ml_remove h 30;
      ]
    in
    flush h;
    List.map Future.force fs
  in
  let l1 = ML.create () in
  let r1 =
    script (ML.handle l1) (ML.insert, ML.remove, ML.contains, ML.flush)
  in
  let l2 = ML.create ~resume_hint:false () in
  let r2 =
    script (ML.handle l2) (ML.insert, ML.remove, ML.contains, ML.flush)
  in
  Alcotest.(check (list bool)) "same results" r1 r2;
  Alcotest.(check (list int)) "same state" (H.to_list (ML.shared l1))
    (H.to_list (ML.shared l2))

(* ----------------------------- strong ------------------------------ *)

let test_strong_basic () =
  let l = SL.create () in
  let f1 = SL.insert l 9 in
  let f2 = SL.insert l 4 in
  let f3 = SL.contains l 9 in
  let f4 = SL.remove l 4 in
  Alcotest.(check bool) "insert 9" true (force f1);
  Alcotest.(check bool) "insert 4" true (force f2);
  Alcotest.(check bool) "contains 9" true (force f3);
  Alcotest.(check bool) "remove 4" true (force f4);
  SL.drain l;
  Alcotest.(check (list int)) "state" [ 9 ] (SL.to_list l)

let test_strong_same_key_stable_order () =
  let l = SL.create () in
  (* Same key, alternating: stable sort must preserve temporal order. *)
  let f1 = SL.insert l 5 in
  let f2 = SL.remove l 5 in
  let f3 = SL.insert l 5 in
  let f4 = SL.remove l 5 in
  Alcotest.(check (list bool)) "alternating all succeed"
    [ true; true; true; true ]
    [ force f1; force f2; force f3; force f4 ];
  SL.drain l;
  Alcotest.(check (list int)) "empty" [] (SL.to_list l)

let test_strong_unsorted_ablation_equivalent () =
  let run ~sort_batch =
    let l = SL.create ~sort_batch () in
    let fs =
      [
        SL.insert l 30; SL.insert l 10; SL.contains l 30; SL.remove l 10;
        SL.insert l 20; SL.contains l 10;
      ]
    in
    let rs = List.map force fs in
    SL.drain l;
    (rs, SL.to_list l)
  in
  let r1, s1 = run ~sort_batch:true in
  let r2, s2 = run ~sort_batch:false in
  Alcotest.(check (list bool)) "results agree" r1 r2;
  Alcotest.(check (list int)) "states agree" s1 s2

let test_strong_delegation () =
  let l = SL.create () in
  let submitted = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let f = SL.insert l 11 in
        Atomic.set submitted true;
        Future.await f)
  in
  let rec wait tries =
    if (not (Atomic.get submitted)) && tries > 0 then begin
      Unix.sleepf 0.001;
      wait (tries - 1)
    end
  in
  wait 5000;
  let present = force (SL.contains l 11) in
  ignore (Domain.join d : bool);
  Alcotest.(check bool) "sees delegated insert" true present

(* ------------------------------- txn -------------------------------- *)

module TL = Fl.Txn_list.Make (Int_key)

let test_txn_basic () =
  let l = TL.create () in
  let h = TL.handle l in
  let f1 = TL.insert h 5 in
  let f2 = TL.insert h 3 in
  let f3 = TL.remove h 5 in
  let f4 = TL.contains h 3 in
  Alcotest.(check int) "four pending" 4 (TL.pending_count h);
  TL.flush h;
  Alcotest.(check (list bool)) "results" [ true; true; true; true ]
    [ force f1; force f2; force f3; force f4 ];
  Alcotest.(check (list int)) "state" [ 3 ] (H.to_list (TL.shared l))

let test_txn_reorders_but_medium () =
  (* insert 3 then insert 2 — the scenario §8 calls out. The txn list may
     apply them key-ordered because nobody can observe the intermediate
     state; results still follow invocation order per key. *)
  let l = TL.create () in
  let h = TL.handle l in
  let f3 = TL.insert h 3 in
  let f2 = TL.insert h 2 in
  TL.flush h;
  Alcotest.(check bool) "3 inserted" true (force f3);
  Alcotest.(check bool) "2 inserted" true (force f2);
  Alcotest.(check (list int)) "both present" [ 2; 3 ] (H.to_list (TL.shared l))

let test_txn_same_key_temporal () =
  let l = TL.create () in
  let h = TL.handle l in
  let f1 = TL.insert h 9 in
  let f2 = TL.remove h 9 in
  let f3 = TL.contains h 9 in
  TL.flush h;
  Alcotest.(check (list bool)) "replayed in order" [ true; true; false ]
    [ force f1; force f2; force f3 ];
  Alcotest.(check bool) "net nil" true (H.is_empty (TL.shared l))

(* Atomicity across domains: a writer flips keys {0,1} together in one
   transaction; a reader probes both keys in one transaction. The reader
   must never see them differ — this is exactly what the (lock-free) weak
   list cannot guarantee. *)
let test_txn_atomic_visibility () =
  let l = TL.create () in
  let iterations = 2_000 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        let h = TL.handle l in
        for _ = 1 to iterations do
          ignore (TL.insert h 0);
          ignore (TL.insert h 1);
          TL.flush h;
          ignore (TL.remove h 0);
          ignore (TL.remove h 1);
          TL.flush h
        done;
        Atomic.set stop true)
  in
  let reader =
    Domain.spawn (fun () ->
        let h = TL.handle l in
        while not (Atomic.get stop) do
          let f0 = TL.contains h 0 in
          let f1 = TL.contains h 1 in
          TL.flush h;
          if force f0 <> force f1 then Atomic.incr violations
        done)
  in
  Domain.join writer;
  Domain.join reader;
  Alcotest.(check int) "keys always flip together" 0 (Atomic.get violations)

(* ------------------- model equivalence (sequential) ------------------ *)

let prop_against_model (impl : Fl.Registry.set_impl) =
  QCheck.Test.make
    ~name:(impl.l_name ^ " set matches model with random slack")
    ~count:200
    QCheck.(pair (list (pair (int_bound 2) (int_bound 20))) (int_bound 7))
    (fun (script, slack_minus_1) ->
      let module IS = Set.Make (Int) in
      let inst = impl.l_make () in
      let o = inst.l_handle () in
      let slack = Fl.Slack.create (slack_minus_1 + 1) in
      let model = ref IS.empty in
      let ok = ref true in
      List.iter
        (fun (kind, k) ->
          match kind with
          | 0 ->
              let expected = not (IS.mem k !model) in
              model := IS.add k !model;
              let f = o.l_insert k in
              Fl.Slack.note slack (fun () ->
                  if Future.force f <> expected then ok := false)
          | 1 ->
              let expected = IS.mem k !model in
              model := IS.remove k !model;
              let f = o.l_remove k in
              Fl.Slack.note slack (fun () ->
                  if Future.force f <> expected then ok := false)
          | _ ->
              let expected = IS.mem k !model in
              let f = o.l_contains k in
              Fl.Slack.note slack (fun () ->
                  if Future.force f <> expected then ok := false))
        script;
      Fl.Slack.drain slack;
      o.l_flush ();
      inst.l_drain ();
      !ok && inst.l_contents () = IS.elements !model)

let model_props =
  List.map
    (fun impl -> QCheck_alcotest.to_alcotest (prop_against_model impl))
    Fl.Registry.set_impls

let () =
  Alcotest.run "fl-list"
    [
      ( "weak",
        [
          Alcotest.test_case "basic" `Quick test_weak_basic;
          Alcotest.test_case "same-key combining, no CAS" `Quick
            test_weak_same_key_combining;
          Alcotest.test_case "net insert" `Quick test_weak_net_insert;
          Alcotest.test_case "net remove" `Quick test_weak_net_remove;
          Alcotest.test_case "many keys, sorted application" `Quick
            test_weak_many_keys_one_traversal;
        ] );
      ( "medium",
        [
          Alcotest.test_case "descending keys ok" `Quick
            test_medium_program_order;
          Alcotest.test_case "stops at target" `Quick
            test_medium_stops_at_target;
          Alcotest.test_case "same-key temporal sequence" `Quick
            test_medium_same_key_sequence;
          Alcotest.test_case "resume-hint ablation equivalent" `Quick
            test_medium_resume_hint_disabled_equivalent;
        ] );
      ( "strong",
        [
          Alcotest.test_case "basic" `Quick test_strong_basic;
          Alcotest.test_case "same-key stable order" `Quick
            test_strong_same_key_stable_order;
          Alcotest.test_case "sort ablation equivalent" `Quick
            test_strong_unsorted_ablation_equivalent;
          Alcotest.test_case "delegation across domains" `Slow
            test_strong_delegation;
        ] );
      ( "txn",
        [
          Alcotest.test_case "basic" `Quick test_txn_basic;
          Alcotest.test_case "reorders under atomicity (§8)" `Quick
            test_txn_reorders_but_medium;
          Alcotest.test_case "same-key temporal replay" `Quick
            test_txn_same_key_temporal;
          Alcotest.test_case "atomic visibility (2 domains)" `Slow
            test_txn_atomic_visibility;
        ] );
      ("model", model_props);
    ]
