(* Tests for the flat-combining engine and its stack/queue/set baselines
   (Hendler et al. 2010; the paper's §7 comparison point). *)

module FC = Combining.Flat_combining
module FS = Combining.Fc_stack
module FQ = Combining.Fc_queue

module FSet = Combining.Fc_set.Make (struct
  type t = int

  let compare = Int.compare
end)

(* ------------------------------ engine ------------------------------ *)

let test_engine_applies () =
  let calls = ref [] in
  let t =
    FC.create ~apply:(fun op ->
        calls := op :: !calls;
        op * 2)
      ()
  in
  let h = FC.handle t in
  Alcotest.(check int) "result" 10 (FC.apply h 5);
  Alcotest.(check int) "again" 14 (FC.apply h 7);
  Alcotest.(check (list int)) "both applied in order" [ 5; 7 ]
    (List.rev !calls);
  Alcotest.(check bool) "combiner ran" true (FC.combiner_passes t >= 2)

let test_engine_multiple_handles () =
  let t = FC.create ~apply:(fun op -> op + 100) () in
  let h1 = FC.handle t in
  let h2 = FC.handle t in
  Alcotest.(check int) "h1" 101 (FC.apply h1 1);
  Alcotest.(check int) "h2" 102 (FC.apply h2 2);
  Alcotest.(check int) "h1 again" 103 (FC.apply h1 3)

(* Delegation: a slow combiner answers requests published by waiters. *)
let test_engine_combines_for_others () =
  let sum = ref 0 in
  let t =
    FC.create ~apply:(fun op ->
        sum := !sum + op;
        !sum)
      ()
  in
  let n = 4 and per = 2_000 in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            let h = FC.handle t in
            for j = 1 to per do
              ignore (FC.apply h ((i * per) + j))
            done))
  in
  List.iter Domain.join domains;
  (* Every request applied exactly once: the running sum saw them all. *)
  let expected = List.init (n * per) (fun k -> k + 1 + 0) in
  ignore expected;
  let total = n * per * (n * per + 1) / 2 in
  Alcotest.(check int) "all requests applied exactly once" total !sum;
  (* Combining actually happened: far fewer passes than operations. *)
  Alcotest.(check bool) "passes <= operations" true
    (FC.combiner_passes t <= n * per)

(* ------------------------------ stack ------------------------------- *)

let test_fc_stack_lifo () =
  let s = FS.create () in
  let h = FS.handle s in
  Alcotest.(check (option int)) "pop empty" None (FS.pop h);
  FS.push h 1;
  FS.push h 2;
  Alcotest.(check (list int)) "contents" [ 2; 1 ] (FS.to_list s);
  Alcotest.(check (option int)) "pop" (Some 2) (FS.pop h);
  Alcotest.(check int) "length" 1 (FS.length s)

let test_fc_stack_parallel_conservation () =
  let s = FS.create () in
  let domains = 4 and ops = 2_000 in
  let balance = Array.make domains 0 in
  let worker i () =
    let h = FS.handle s in
    let rng = Workload.Rng.create ~seed:5 ~stream:i in
    for n = 1 to ops do
      if Workload.Rng.bool rng then begin
        FS.push h n;
        balance.(i) <- balance.(i) + 1
      end
      else
        match FS.pop h with
        | Some _ -> balance.(i) <- balance.(i) - 1
        | None -> ()
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "pushes - pops = remaining"
    (Array.fold_left ( + ) 0 balance)
    (FS.length s)

(* ------------------------------ queue ------------------------------- *)

let test_fc_queue_fifo () =
  let q = FQ.create () in
  let h = FQ.handle q in
  FQ.enqueue h 1;
  FQ.enqueue h 2;
  FQ.enqueue h 3;
  Alcotest.(check (option int)) "deq 1" (Some 1) (FQ.dequeue h);
  Alcotest.(check (option int)) "deq 2" (Some 2) (FQ.dequeue h);
  Alcotest.(check (list int)) "rest" [ 3 ] (FQ.to_list q)

let test_fc_queue_per_producer_order () =
  let q = FQ.create () in
  let producers = 3 and per = 1_000 in
  let ds =
    List.init producers (fun i ->
        Domain.spawn (fun () ->
            let h = FQ.handle q in
            for n = 1 to per do
              FQ.enqueue h ((i * 1_000_000) + n)
            done))
  in
  List.iter Domain.join ds;
  let all = FQ.to_list q in
  Alcotest.(check int) "all enqueued" (producers * per) (List.length all);
  let last = Hashtbl.create 4 in
  List.iter
    (fun v ->
      let p = v / 1_000_000 and n = v mod 1_000_000 in
      (match Hashtbl.find_opt last p with
      | Some m when m >= n -> Alcotest.fail "per-producer order broken"
      | _ -> ());
      Hashtbl.replace last p n)
    all

(* ------------------------------- set -------------------------------- *)

let test_fc_set_semantics () =
  let l = FSet.create () in
  let h = FSet.handle l in
  Alcotest.(check bool) "insert" true (FSet.insert h 5);
  Alcotest.(check bool) "dup" false (FSet.insert h 5);
  Alcotest.(check bool) "member" true (FSet.contains h 5);
  Alcotest.(check bool) "remove" true (FSet.remove h 5);
  Alcotest.(check bool) "gone" false (FSet.contains h 5);
  Alcotest.(check (list int)) "empty" [] (FSet.to_list l)

let test_fc_set_parallel_per_key_balance () =
  let l = FSet.create () in
  let domains = 4 and ops = 1_500 and range = 8 in
  let net = Array.init domains (fun _ -> Array.make range 0) in
  let worker i () =
    let h = FSet.handle l in
    let rng = Workload.Rng.create ~seed:77 ~stream:i in
    for _ = 1 to ops do
      let k = Workload.Rng.below rng range in
      if Workload.Rng.bool rng then begin
        if FSet.insert h k then net.(i).(k) <- net.(i).(k) + 1
      end
      else if FSet.remove h k then net.(i).(k) <- net.(i).(k) - 1
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let contents = FSet.to_list l in
  for k = 0 to range - 1 do
    let bal = Array.fold_left (fun a per -> a + per.(k)) 0 net in
    Alcotest.(check int)
      (Printf.sprintf "key %d" k)
      (if List.mem k contents then 1 else 0)
      bal
  done

(* Registry integration: the flatcomb entries behave like the others. *)
let test_registry_flatcomb_strong_fl () =
  let outcome =
    Conformance.check_stack ~rounds:4 (Fl.Registry.find_stack "flatcomb")
  in
  Alcotest.(check int) "stack strong-FL" 0 outcome.Conformance.violations;
  let outcome =
    Conformance.check_queue ~rounds:4 (Fl.Registry.find_queue "flatcomb")
  in
  Alcotest.(check int) "queue strong-FL" 0 outcome.Conformance.violations;
  let outcome =
    Conformance.check_set ~rounds:4 (Fl.Registry.find_set "flatcomb")
  in
  Alcotest.(check int) "set strong-FL" 0 outcome.Conformance.violations

let () =
  Alcotest.run "combining"
    [
      ( "engine",
        [
          Alcotest.test_case "applies" `Quick test_engine_applies;
          Alcotest.test_case "multiple handles" `Quick
            test_engine_multiple_handles;
          Alcotest.test_case "combines for others (4 domains)" `Slow
            test_engine_combines_for_others;
        ] );
      ( "stack",
        [
          Alcotest.test_case "lifo" `Quick test_fc_stack_lifo;
          Alcotest.test_case "conservation (4 domains)" `Slow
            test_fc_stack_parallel_conservation;
        ] );
      ( "queue",
        [
          Alcotest.test_case "fifo" `Quick test_fc_queue_fifo;
          Alcotest.test_case "per-producer order (3 domains)" `Slow
            test_fc_queue_per_producer_order;
        ] );
      ( "set",
        [
          Alcotest.test_case "semantics" `Quick test_fc_set_semantics;
          Alcotest.test_case "per-key balance (4 domains)" `Slow
            test_fc_set_parallel_per_key_balance;
        ] );
      ( "registry",
        [
          Alcotest.test_case "flatcomb is strong-FL (checked)" `Slow
            test_registry_flatcomb_strong_fl;
        ] );
    ]
