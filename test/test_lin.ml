(* Tests for the linearizability framework: specs, precedence orders, the
   checker, and the paper's worked examples (Figures 2 and 3). *)

module H = Lin.History
module QSpec = Lin.Spec.Queue_spec
module SSpec = Lin.Spec.Stack_spec
module SetSpec = Lin.Spec.Set_spec
module QCheck_ = QCheck
module CQ = Lin.Checker.Make (Lin.Spec.Queue_spec)
module CS = Lin.Checker.Make (Lin.Spec.Stack_spec)
module CSet = Lin.Checker.Make (Lin.Spec.Set_spec)

let entry ?(thread = 0) ?(obj = 0) op ~c:(c_inv, c_res) ?e () =
  {
    H.thread;
    obj;
    op;
    create_inv = c_inv;
    create_res = c_res;
    eval_inv = Option.map fst e;
    eval_res = Option.map snd e;
  }

(* ----------------------------- specs -------------------------------- *)

let test_queue_spec () =
  let s0 = QSpec.initial in
  let s1 = QSpec.apply s0 ~obj:0 (QSpec.Enq 1) in
  Alcotest.(check bool) "enq legal" true (s1 <> None);
  let s1 = Option.get s1 in
  Alcotest.(check bool) "deq wrong value illegal" true
    (QSpec.apply s1 ~obj:0 (QSpec.Deq (Some 2)) = None);
  Alcotest.(check bool) "deq right value legal" true
    (QSpec.apply s1 ~obj:0 (QSpec.Deq (Some 1)) <> None);
  Alcotest.(check bool) "deq empty on nonempty illegal" true
    (QSpec.apply s1 ~obj:0 (QSpec.Deq None) = None);
  Alcotest.(check bool) "deq empty on empty legal" true
    (QSpec.apply s0 ~obj:0 (QSpec.Deq None) <> None);
  (* distinct objects are independent *)
  Alcotest.(check bool) "other object still empty" true
    (QSpec.apply s1 ~obj:1 (QSpec.Deq None) <> None)

let test_stack_spec () =
  let s0 = SSpec.initial in
  let s1 = Option.get (SSpec.apply s0 ~obj:0 (SSpec.Push 1)) in
  let s2 = Option.get (SSpec.apply s1 ~obj:0 (SSpec.Push 2)) in
  Alcotest.(check bool) "lifo pop" true
    (SSpec.apply s2 ~obj:0 (SSpec.Pop (Some 2)) <> None);
  Alcotest.(check bool) "fifo pop illegal" true
    (SSpec.apply s2 ~obj:0 (SSpec.Pop (Some 1)) = None)

let test_set_spec () =
  let s0 = SetSpec.initial in
  Alcotest.(check bool) "insert false on empty illegal" true
    (SetSpec.apply s0 ~obj:0 (SetSpec.Insert (3, false)) = None);
  let s1 = Option.get (SetSpec.apply s0 ~obj:0 (SetSpec.Insert (3, true))) in
  Alcotest.(check bool) "dup insert returns false" true
    (SetSpec.apply s1 ~obj:0 (SetSpec.Insert (3, false)) <> None);
  Alcotest.(check bool) "contains true" true
    (SetSpec.apply s1 ~obj:0 (SetSpec.Contains (3, true)) <> None);
  Alcotest.(check bool) "contains false illegal" true
    (SetSpec.apply s1 ~obj:0 (SetSpec.Contains (3, false)) = None);
  let s2 = Option.get (SetSpec.apply s1 ~obj:0 (SetSpec.Remove (3, true))) in
  Alcotest.(check bool) "remove again false" true
    (SetSpec.apply s2 ~obj:0 (SetSpec.Remove (3, false)) <> None)

(* ----------------------------- history ------------------------------ *)

let test_history_merge_sorted () =
  let clock = H.clock () in
  let l1 = H.log () and l2 = H.log () in
  (* Interleave creations across two logs. *)
  let record log thread op =
    let c0 = H.now clock in
    let c1 = H.now clock in
    H.add log
      {
        H.thread;
        obj = 0;
        op;
        create_inv = c0;
        create_res = c1;
        eval_inv = None;
        eval_res = None;
      }
  in
  record l1 0 (QSpec.Enq 1);
  record l2 1 (QSpec.Enq 2);
  record l1 0 (QSpec.Enq 3);
  let merged = H.merge [ l1; l2 ] in
  let starts = Array.to_list (Array.map (fun e -> e.H.create_inv) merged) in
  Alcotest.(check (list int)) "sorted by create_inv"
    (List.sort compare starts) starts;
  Alcotest.(check int) "all entries" 3 (Array.length merged)

let test_clock_monotone_across_domains () =
  let clock = H.clock () in
  let n = 4 and per = 2_000 in
  let draws = Array.make n [] in
  let ds =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            let mine = ref [] in
            for _ = 1 to per do
              mine := H.now clock :: !mine
            done;
            draws.(i) <- !mine))
  in
  List.iter Domain.join ds;
  let all = Array.to_list draws |> List.concat in
  Alcotest.(check int) "all distinct" (n * per)
    (List.length (List.sort_uniq compare all))

(* ----------------------------- orders ------------------------------- *)

let test_intervals () =
  let e = entry (QSpec.Enq 1) ~c:(0, 1) ~e:(6, 7) () in
  Alcotest.(check (pair int int)) "strong = creation" (0, 1)
    (Lin.Order.interval Lin.Order.Strong e);
  Alcotest.(check (pair int int)) "weak = create..eval" (0, 7)
    (Lin.Order.interval Lin.Order.Weak e);
  let pending = entry (QSpec.Enq 1) ~c:(0, 1) () in
  Alcotest.(check (pair int int)) "unevaluated extends forever" (0, max_int)
    (Lin.Order.interval Lin.Order.Medium pending)

let test_program_order_edges () =
  (* Same thread, same object, non-overlapping creations. *)
  let a = entry (QSpec.Enq 1) ~c:(0, 1) ~e:(10, 11) () in
  let b = entry (QSpec.Enq 2) ~c:(2, 3) ~e:(12, 13) () in
  let h = [| a; b |] in
  let has cond =
    List.mem (0, 1) (Lin.Order.edges cond h)
  in
  Alcotest.(check bool) "weak: unordered" false (has Lin.Order.Weak);
  Alcotest.(check bool) "medium: ordered" true (has Lin.Order.Medium);
  Alcotest.(check bool) "strong: ordered (intervals)" true
    (has Lin.Order.Strong);
  (* different objects *)
  let b' = { b with H.obj = 1 } in
  let h' = [| a; b' |] in
  let has' cond = List.mem (0, 1) (Lin.Order.edges cond h') in
  Alcotest.(check bool) "medium: cross-object unordered" false
    (has' Lin.Order.Medium);
  Alcotest.(check bool) "fsc: cross-object ordered" true
    (has' Lin.Order.Fsc)

(* --------------------------- Figure 2 ------------------------------- *)

(* One thread, one queue: enq(1); enq(2); deq() -> z, all futures forced
   after all creations. Admissible z per condition:
     strong/medium: only Some 1;  weak: None, Some 1 or Some 2. *)
let figure2_history z =
  [|
    entry (QSpec.Enq 1) ~c:(0, 1) ~e:(6, 7) ();
    entry (QSpec.Enq 2) ~c:(2, 3) ~e:(8, 9) ();
    entry (QSpec.Deq z) ~c:(4, 5) ~e:(10, 11) ();
  |]

let test_figure2 () =
  let accepted cond z = CQ.check cond (figure2_history z) in
  List.iter
    (fun cond ->
      Alcotest.(check bool) "z=1 accepted" true (accepted cond (Some 1));
      Alcotest.(check bool) "z=2 rejected" false (accepted cond (Some 2));
      Alcotest.(check bool) "z=empty rejected" false (accepted cond None))
    [ Lin.Order.Strong; Lin.Order.Medium ];
  Alcotest.(check bool) "weak: z=1" true (accepted Lin.Order.Weak (Some 1));
  Alcotest.(check bool) "weak: z=2" true (accepted Lin.Order.Weak (Some 2));
  Alcotest.(check bool) "weak: z=empty" true (accepted Lin.Order.Weak None)

(* If the first enqueue's future is evaluated before the second enqueue is
   even created, weak-FL must order them. *)
let test_weak_sequentialized_by_eval () =
  let h =
    [|
      entry (QSpec.Enq 1) ~c:(0, 1) ~e:(2, 3) ();
      entry (QSpec.Enq 2) ~c:(4, 5) ~e:(6, 7) ();
      entry (QSpec.Deq (Some 2)) ~c:(8, 9) ~e:(10, 11) ();
    |]
  in
  Alcotest.(check bool) "deq=2 now illegal even under weak" false
    (CQ.check Lin.Order.Weak h)

(* --------------------------- Figure 3 ------------------------------- *)

(* Two threads, two queues p(=0) and q(=1):
     A: p.enq(x); q.enq(x); evals; p.deq() = y
     B: q.enq(y); p.enq(y); evals; q.deq() = x
   Medium-FL accepts it; futures sequential consistency does not (cycle),
   even though each object's subhistory alone is Fsc-linearizable —
   Fsc is not compositional. *)
let x = 100

let y = 200

let figure3_history =
  [|
    (* A *)
    entry ~thread:0 ~obj:0 (QSpec.Enq x) ~c:(0, 1) ~e:(8, 9) ();
    entry ~thread:0 ~obj:1 (QSpec.Enq x) ~c:(4, 5) ~e:(12, 13) ();
    entry ~thread:0 ~obj:0 (QSpec.Deq (Some y)) ~c:(16, 17) ~e:(18, 19) ();
    (* B *)
    entry ~thread:1 ~obj:1 (QSpec.Enq y) ~c:(2, 3) ~e:(10, 11) ();
    entry ~thread:1 ~obj:0 (QSpec.Enq y) ~c:(6, 7) ~e:(14, 15) ();
    entry ~thread:1 ~obj:1 (QSpec.Deq (Some x)) ~c:(20, 21) ~e:(22, 23) ();
  |]

let test_figure3_medium_accepts () =
  Alcotest.(check bool) "medium-FL accepts" true
    (CQ.check Lin.Order.Medium figure3_history)

let test_figure3_fsc_rejects () =
  Alcotest.(check bool) "futures SC rejects (cycle)" false
    (CQ.check Lin.Order.Fsc figure3_history)

let test_figure3_fsc_not_compositional () =
  (* Each per-object subhistory alone is Fsc-linearizable. *)
  let by_obj o =
    Array.of_list
      (List.filter (fun e -> e.H.obj = o) (Array.to_list figure3_history))
  in
  Alcotest.(check bool) "p alone ok" true
    (CQ.linearization Lin.Order.Fsc (by_obj 0) <> None);
  Alcotest.(check bool) "q alone ok" true
    (CQ.linearization Lin.Order.Fsc (by_obj 1) <> None)

let test_figure3_weak_accepts () =
  Alcotest.(check bool) "weak accepts too" true
    (CQ.check Lin.Order.Weak figure3_history)

let test_figure3_strong_rejects () =
  (* Under strong-FL the enqueues take effect at creation time: on p,
     enq(x) [0,1] precedes enq(y) [6,7], so p.deq() = y is illegal. *)
  Alcotest.(check bool) "strong rejects" false
    (CQ.check Lin.Order.Strong figure3_history)

(* ---------------------- unevaluated operations ---------------------- *)

(* An operation whose future is never evaluated has an effect interval
   that extends to infinity under weak/medium: it may be linearized
   arbitrarily late. Here a never-forced enqueue must be ordered AFTER a
   later deq()=empty for the history to be legal — which weak permits. *)
let test_unevaluated_op_linearizes_late () =
  (* Two threads: thread 0's enqueue is pending forever, thread 1's
     dequeue finds the queue empty. Weak and medium allow ordering the
     enqueue after the dequeue; strong pins it inside [0,1]. *)
  let h =
    [|
      entry ~thread:0 (QSpec.Enq 9) ~c:(0, 1) (* never evaluated *) ();
      entry ~thread:1 (QSpec.Deq None) ~c:(2, 3) ~e:(4, 5) ();
    |]
  in
  Alcotest.(check bool) "weak accepts (enq after deq)" true
    (CQ.check Lin.Order.Weak h);
  Alcotest.(check bool) "medium accepts (different threads)" true
    (CQ.check Lin.Order.Medium h);
  Alcotest.(check bool) "strong rejects" false (CQ.check Lin.Order.Strong h)

let test_unevaluated_medium_program_order () =
  (* Same thread, same object: medium orders the unevaluated enq(9)
     BEFORE the thread's later deq, so deq()=empty becomes illegal; weak
     still accepts the late enqueue. *)
  let h =
    [|
      entry (QSpec.Enq 9) ~c:(0, 1) ();
      entry (QSpec.Deq None) ~c:(2, 3) ~e:(4, 5) ();
    |]
  in
  Alcotest.(check bool) "medium rejects" false
    (CQ.check Lin.Order.Medium h);
  Alcotest.(check bool) "weak still accepts" true
    (CQ.check Lin.Order.Weak h)

(* --------------------------- checker -------------------------------- *)

let test_checker_witness_order () =
  let h = figure2_history (Some 1) in
  match CQ.linearization Lin.Order.Medium h with
  | None -> Alcotest.fail "expected a linearization"
  | Some order ->
      Alcotest.(check int) "all ops" 3 (List.length order);
      (* enq(1) must come before deq in the witness *)
      let pos v = Option.get (List.find_index (fun i -> i = v) order) in
      Alcotest.(check bool) "enq1 before deq" true (pos 0 < pos 2)

let test_checker_rejects_oversized () =
  let h =
    Array.init 63 (fun i -> entry (QSpec.Enq i) ~c:(2 * i, (2 * i) + 1) ())
  in
  Alcotest.check_raises "too large"
    (Invalid_argument "Checker.linearization: history too large (> 62 ops)")
    (fun () -> ignore (CQ.linearization Lin.Order.Weak h))

let test_checker_empty_history () =
  Alcotest.(check bool) "empty ok" true (CQ.check Lin.Order.Strong [||]);
  Alcotest.(check bool)
    "empty segmented ok" true
    (CQ.check_segmented Lin.Order.Strong [||]);
  Alcotest.(check
              (list (testable (fun fmt _ -> Format.fprintf fmt "<state>") ( = ))))
    "empty reachable = from" [ QSpec.initial ]
    (CQ.reachable_states Lin.Order.Strong ~from:[ QSpec.initial ] [||])

let test_checker_single_pending () =
  (* One never-evaluated op is always linearizable: it may take effect at
     any point, including after the end of the history. *)
  let enq = [| entry (QSpec.Enq 7) ~c:(1, 2) () |] in
  let deq = [| entry (QSpec.Deq None) ~c:(1, 2) () |] in
  List.iter
    (fun cond ->
      Alcotest.(check bool) "pending enq ok" true (CQ.check cond enq);
      Alcotest.(check bool)
        "pending enq segmented ok" true
        (CQ.check_segmented cond enq);
      Alcotest.(check bool) "pending deq ok" true (CQ.check cond deq))
    [ Lin.Order.Strong; Lin.Order.Medium; Lin.Order.Weak; Lin.Order.Fsc ]

(* Chain-overlapped enq/deq alternation: op i occupies [2i, 2i+3], which
   overlaps op i+1's [2i+2, 2i+5], so no quiescent cut exists anywhere —
   one segment of exactly n ops. Dequeues drain as they go, so the queue
   depth (and the reachable state set) stays tiny and the single-segment
   search remains tractable even at the 62-op bound. *)
let chain_history n =
  Array.init n (fun i ->
      let op = if i mod 2 = 0 then QSpec.Enq (i / 2) else QSpec.Deq (Some (i / 2)) in
      entry op ~c:(2 * i, (2 * i) + 1) ~e:((2 * i) + 2, (2 * i) + 3) ())

let test_checker_max_segment_boundary () =
  Alcotest.(check bool)
    "62-op single segment at the default bound" true
    (CQ.check_segmented Lin.Order.Weak (chain_history 62));
  Alcotest.check_raises "63rd chained op overflows the segment"
    (Invalid_argument
       "Checker.check_segmented: segment of 63 ops exceeds the 62-op search \
        bound (no quiescent cut)")
    (fun () ->
      ignore (CQ.check_segmented Lin.Order.Weak (chain_history 63)));
  Alcotest.check_raises "explicit max_segment below the segment size"
    (Invalid_argument
       "Checker.check_segmented: segment of 62 ops exceeds the 61-op search \
        bound (no quiescent cut)")
    (fun () ->
      ignore
        (CQ.check_segmented ~max_segment:61 Lin.Order.Weak (chain_history 62)))

let test_reachable_states_all_concurrent () =
  (* k pairwise-concurrent enqueues of distinct values reach exactly k!
     distinct queue states — the blow-up that motivates both quiescent
     segmentation and the streaming certificates. *)
  let h k = Array.init k (fun i -> entry (QSpec.Enq i) ~c:(0, 1000) ()) in
  List.iter
    (fun (k, fact) ->
      let states =
        CQ.reachable_states Lin.Order.Strong ~from:[ QSpec.initial ] (h k)
      in
      Alcotest.(check int)
        (Printf.sprintf "%d concurrent enqs reach %d states" k fact)
        fact (List.length states))
    [ (1, 1); (3, 6); (5, 120) ];
  Alcotest.(check
              (list (testable (fun fmt _ -> Format.fprintf fmt "<state>") ( = ))))
    "no start states, no end states" []
    (CQ.reachable_states Lin.Order.Strong ~from:[] (h 3))

(* Condition hierarchy on random single-object histories: strong-FL
   implies medium-FL implies weak-FL (the orders only shrink). *)
let prop_hierarchy =
  QCheck_.Test.make ~name:"strong => medium => weak (random histories)"
    ~count:300
    QCheck_.(list_of_size Gen.(int_range 1 6) (pair bool (int_bound 2)))
    (fun script ->
      (* Build a single-thread history with immediate or deferred evals and
         semi-random results; the hierarchy must hold whether or not the
         history is actually correct. *)
      let t = ref 0 in
      let tick () =
        incr t;
        !t
      in
      let entries =
        List.map
          (fun (is_enq, r) ->
            let c0 = tick () in
            let c1 = tick () in
            let e0 = tick () in
            let e1 = tick () in
            let op =
              if is_enq then QSpec.Enq r
              else QSpec.Deq (if r = 0 then None else Some (r - 1))
            in
            entry op ~c:(c0, c1) ~e:(e0, e1) ())
          script
      in
      let h = Array.of_list entries in
      let s = CQ.check Lin.Order.Strong h in
      let m = CQ.check Lin.Order.Medium h in
      let w = CQ.check Lin.Order.Weak h in
      ((not s) || m) && ((not m) || w))

(* Overlapping-everything histories: weak accepts iff some permutation is
   legal; compare against brute force. *)
let prop_weak_equals_bruteforce =
  QCheck_.Test.make ~name:"weak == brute-force permutation search"
    ~count:200
    QCheck_.(list_of_size Gen.(int_range 1 5) (pair bool (int_bound 2)))
    (fun script ->
      let ops =
        List.map
          (fun (is_enq, r) ->
            if is_enq then QSpec.Enq r
            else QSpec.Deq (if r = 0 then None else Some (r - 1)))
          script
      in
      (* All creations first (overlapping), all evals at the end, all
         overlapping: the weak order is empty. *)
      let n = List.length ops in
      let h =
        Array.of_list
          (List.mapi
             (fun i op -> entry op ~c:(i, 100 + i) ~e:(200 + i, 300 + i) ())
             ops)
      in
      let rec permutations = function
        | [] -> [ [] ]
        | l ->
            List.concat_map
              (fun x ->
                let rest = List.filter (fun y -> y != x) l in
                List.map (fun p -> x :: p) (permutations rest))
              l
      in
      let legal perm =
        let rec go state = function
          | [] -> true
          | op :: rest -> (
              match QSpec.apply state ~obj:0 op with
              | Some s -> go s rest
              | None -> false)
        in
        go QSpec.initial perm
      in
      let brute = List.exists legal (permutations ops) in
      let _ = n in
      CQ.check Lin.Order.Weak h = brute)

(* Theorem 6.2 (non-blocking), witness form: an accepted history can
   always be extended with one more total-method call whose result is
   derived from the final state of some linearization witness. *)
let test_nonblocking_extension () =
  let h = figure2_history (Some 1) in
  match CQ.linearization Lin.Order.Weak h with
  | None -> Alcotest.fail "base history must be accepted"
  | Some order ->
      (* Replay the witness to find the final queue contents. *)
      let final =
        List.fold_left
          (fun state i ->
            match
              QSpec.apply state ~obj:0 h.(i).H.op
            with
            | Some s -> s
            | None -> Alcotest.fail "witness must replay")
          QSpec.initial order
      in
      let next_deq =
        match final with
        | [] -> QSpec.Deq None
        | (_, []) :: _ -> QSpec.Deq None
        | (_, v :: _) :: _ -> QSpec.Deq (Some v)
      in
      let extended =
        Array.append h
          [| entry next_deq ~c:(100, 101) ~e:(102, 103) () |]
      in
      Alcotest.(check bool) "extension accepted" true
        (CQ.check Lin.Order.Weak extended)

(* Two threads, one object, every creation overlapping every evaluation:
   the medium order is exactly "each thread's operations in program
   order", so the checker must agree with a brute-force search over all
   interleavings (merges) of the two scripts. *)
let prop_medium_equals_merge_bruteforce =
  QCheck_.Test.make ~name:"medium == brute-force merge search" ~count:200
    QCheck_.(
      pair
        (list_of_size Gen.(int_range 0 4) (pair bool (int_bound 2)))
        (list_of_size Gen.(int_range 0 4) (pair bool (int_bound 2))))
    (fun (script_a, script_b) ->
      let to_op (is_enq, r) =
        if is_enq then QSpec.Enq r
        else QSpec.Deq (if r = 0 then None else Some (r - 1))
      in
      let ops_a = List.map to_op script_a in
      let ops_b = List.map to_op script_b in
      (* Creations strictly ordered within each thread; evaluations all at
         the end, overlapping everything. *)
      let t = ref 0 in
      let mk thread op =
        incr t;
        let c0 = !t in
        incr t;
        let c1 = !t in
        entry ~thread op ~c:(c0, c1) ~e:(1000 + !t, 2000 + !t) ()
      in
      let h =
        Array.of_list
          (List.map (mk 0) ops_a @ List.map (mk 1) ops_b)
      in
      let rec merges xs ys =
        match (xs, ys) with
        | [], l | l, [] -> [ l ]
        | x :: xs', y :: ys' ->
            List.map (fun m -> x :: m) (merges xs' ys)
            @ List.map (fun m -> y :: m) (merges xs ys')
      in
      let legal seq =
        let rec go state = function
          | [] -> true
          | op :: rest -> (
              match QSpec.apply state ~obj:0 op with
              | Some s -> go s rest
              | None -> false)
        in
        go QSpec.initial seq
      in
      let brute = List.exists legal (merges ops_a ops_b) in
      CQ.check Lin.Order.Medium h = brute)

let () =
  Alcotest.run "lin"
    [
      ( "specs",
        [
          Alcotest.test_case "queue" `Quick test_queue_spec;
          Alcotest.test_case "stack" `Quick test_stack_spec;
          Alcotest.test_case "set" `Quick test_set_spec;
        ] );
      ( "history",
        [
          Alcotest.test_case "merge sorts" `Quick test_history_merge_sorted;
          Alcotest.test_case "clock distinct across domains" `Slow
            test_clock_monotone_across_domains;
        ] );
      ( "orders",
        [
          Alcotest.test_case "intervals" `Quick test_intervals;
          Alcotest.test_case "program-order edges" `Quick
            test_program_order_edges;
        ] );
      ( "figure2",
        [ Alcotest.test_case "admissible results" `Quick test_figure2;
          Alcotest.test_case "weak ordered by early eval" `Quick
            test_weak_sequentialized_by_eval;
        ] );
      ( "figure3",
        [
          Alcotest.test_case "medium accepts" `Quick
            test_figure3_medium_accepts;
          Alcotest.test_case "fsc rejects" `Quick test_figure3_fsc_rejects;
          Alcotest.test_case "fsc not compositional" `Quick
            test_figure3_fsc_not_compositional;
          Alcotest.test_case "weak accepts" `Quick test_figure3_weak_accepts;
          Alcotest.test_case "strong rejects" `Quick
            test_figure3_strong_rejects;
        ] );
      ( "nonblocking",
        [
          Alcotest.test_case "Theorem 6.2 extension" `Quick
            test_nonblocking_extension;
        ] );
      ( "pending",
        [
          Alcotest.test_case "unevaluated op linearizes late" `Quick
            test_unevaluated_op_linearizes_late;
          Alcotest.test_case "medium pins unevaluated by program order"
            `Quick test_unevaluated_medium_program_order;
        ] );
      ( "checker",
        [
          Alcotest.test_case "witness order" `Quick test_checker_witness_order;
          Alcotest.test_case "oversized history" `Quick
            test_checker_rejects_oversized;
          Alcotest.test_case "empty history" `Quick test_checker_empty_history;
          Alcotest.test_case "single pending op" `Quick
            test_checker_single_pending;
          Alcotest.test_case "max_segment boundary at 62" `Quick
            test_checker_max_segment_boundary;
          Alcotest.test_case "reachable states, all-concurrent" `Quick
            test_reachable_states_all_concurrent;
          QCheck_alcotest.to_alcotest prop_hierarchy;
          QCheck_alcotest.to_alcotest prop_weak_equals_bruteforce;
          QCheck_alcotest.to_alcotest prop_medium_equals_merge_bruteforce;
        ] );
    ]
