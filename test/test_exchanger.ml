(* Tests for the sharded elimination exchanger: single-thread offer
   mechanics, adaptive width bounds, cross-domain pairing, and the
   weak-stack cross-handle exchange built on it. *)

module E = Lockfree.Exchanger

let test_create () =
  let x : int E.t = E.create ~capacity:4 () in
  Alcotest.(check int) "capacity" 4 (E.capacity x);
  Alcotest.(check int) "initial width" 2 (E.width x);
  Alcotest.(check int) "no exchanges yet" 0 (E.exchanged x);
  Alcotest.(check bool) "no takers" false (E.takers_waiting x);
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Exchanger.create: capacity <= 0") (fun () ->
      ignore (E.create ~capacity:0 () : int E.t));
  let one : int E.t = E.create ~capacity:1 () in
  Alcotest.(check int) "width clamped to capacity" 1 (E.width one)

(* Alone, nothing pairs: try_* never park, give/take park then withdraw. *)
let test_solo_timeout () =
  let x : int E.t = E.create () in
  Alcotest.(check bool) "try_give alone" false (E.try_give x 1);
  Alcotest.(check (option int)) "try_take alone" None (E.try_take x);
  Alcotest.(check bool) "give times out" false (E.give ~patience:2 x 1);
  Alcotest.(check (option int)) "take times out" None (E.take ~patience:2 x);
  Alcotest.(check int) "still no exchanges" 0 (E.exchanged x)

(* Width one keeps give and take on the same slot, so a parked offer is
   always found by the opposite operation. *)
let test_parked_give_fed_by_take () =
  let x : int E.t = E.create ~capacity:1 () in
  let d =
    Domain.spawn (fun () ->
        (* Generous patience: the other domain will arrive. *)
        E.give ~patience:1_000_000 x 42)
  in
  let rec take_until n =
    if n = 0 then None
    else
      match E.take ~patience:10 x with
      | Some _ as r -> r
      | None -> take_until (n - 1)
  in
  let got = take_until 1_000_000 in
  Alcotest.(check bool) "give handed off" true (Domain.join d);
  Alcotest.(check (option int)) "take fed" (Some 42) got;
  Alcotest.(check int) "one exchange" 1 (E.exchanged x);
  Alcotest.(check bool) "no takers left" false (E.takers_waiting x)

let test_parked_take_fed_by_try_give () =
  let x : int E.t = E.create ~capacity:1 () in
  let d = Domain.spawn (fun () -> E.take ~patience:1_000_000 x) in
  (* Wait for the taker to park, as a producer polling takers_waiting. *)
  while not (E.takers_waiting x) do
    Domain.cpu_relax ()
  done;
  let rec feed n =
    if n = 0 then false
    else E.try_give x 7 || feed (n - 1)
  in
  Alcotest.(check bool) "try_give fed the taker" true (feed 1_000_000);
  Alcotest.(check (option int)) "taker got the value" (Some 7)
    (Domain.join d);
  Alcotest.(check int) "one exchange" 1 (E.exchanged x)

(* Values are conserved: under concurrent givers and takers, every value
   taken was given, no duplicates, and counts match [exchanged]. *)
let test_pairing_conservation () =
  let x : int E.t = E.create ~capacity:4 () in
  let per = 2_000 in
  let giver =
    Domain.spawn (fun () ->
        let given = ref [] in
        for i = 1 to per do
          if E.give ~patience:64 x i then given := i :: !given
        done;
        !given)
  in
  let taker =
    Domain.spawn (fun () ->
        let got = ref [] in
        for _ = 1 to per do
          match E.take ~patience:64 x with
          | Some v -> got := v :: !got
          | None -> ()
        done;
        !got)
  in
  let given = Domain.join giver and got = Domain.join taker in
  Alcotest.(check int) "every taken value was handed off"
    (List.length given) (List.length got);
  Alcotest.(check (list int)) "same multiset"
    (List.sort compare given) (List.sort compare got);
  Alcotest.(check int) "exchanged counter agrees" (List.length got)
    (E.exchanged x);
  Alcotest.(check bool) "width stays in bounds" true
    (E.width x >= 1 && E.width x <= E.capacity x)

(* ---------------------------- width bounds --------------------------- *)

(* The Tune controller's knob: [set_width_bounds] clamps each side to
   [1..capacity], drags the other side along rather than inverting, and
   pulls the current width into the new range. *)
let test_bounds_clamp_and_pull () =
  let x : int E.t = E.create ~capacity:8 () in
  Alcotest.(check (pair int int)) "initial bounds" (1, 8) (E.width_bounds x);
  E.set_width_bounds ~max:2 x;
  Alcotest.(check (pair int int)) "max lowered" (1, 2) (E.width_bounds x);
  Alcotest.(check bool) "width pulled under new max" true (E.width x <= 2);
  E.set_width_bounds ~min:4 x;
  (* min 4 over max 2: the side being set drags the other. *)
  Alcotest.(check (pair int int)) "min drags max" (4, 4) (E.width_bounds x);
  Alcotest.(check int) "width pulled up" 4 (E.width x);
  E.set_width_bounds ~min:0 ~max:100 x;
  Alcotest.(check (pair int int)) "both sides clamped to 1..capacity" (1, 8)
    (E.width_bounds x);
  Alcotest.check_raises "explicit inverted pair rejected"
    (Invalid_argument "Exchanger.set_width_bounds: min > max") (fun () ->
      E.set_width_bounds ~min:5 ~max:3 x)

let test_bounds_drag_down () =
  let x : int E.t = E.create ~capacity:8 () in
  E.set_width_bounds ~min:6 x;
  Alcotest.(check (pair int int)) "min raised" (6, 8) (E.width_bounds x);
  E.set_width_bounds ~max:3 x;
  (* max 3 under min 6: dragging works in the other direction too. *)
  Alcotest.(check (pair int int)) "max drags min" (3, 3) (E.width_bounds x);
  Alcotest.(check int) "width pinned" 3 (E.width x)

(* Bounds stay coherent under concurrent retuning and live traffic: the
   packed word can never show a torn pair, and a final settling call
   pulls the width into whatever range won. *)
let test_bounds_concurrent () =
  let x : int E.t = E.create ~capacity:8 () in
  let iters = 2_000 in
  let tuner seed () =
    let rng = Workload.Rng.create ~seed ~stream:0xb0 in
    for _ = 1 to iters do
      let lo = 1 + Workload.Rng.below rng 8 in
      let hi = lo + Workload.Rng.below rng (9 - lo) in
      E.set_width_bounds ~min:lo ~max:hi x;
      let l, h = E.width_bounds x in
      if l > h || l < 1 || h > 8 then
        Alcotest.failf "torn or inverted bounds observed: (%d, %d)" l h
    done
  in
  let traffic i () =
    for v = 1 to iters do
      if i = 0 then ignore (E.give ~patience:(v mod 4) x v : bool)
      else ignore (E.take ~patience:(v mod 4) x : int option)
    done
  in
  let ds =
    Domain.spawn (tuner 11) :: Domain.spawn (tuner 23)
    :: List.init 2 (fun i -> Domain.spawn (traffic i))
  in
  List.iter Domain.join ds;
  (* A widen/narrow racing the last reclamp can leave width one move
     outside the final range; a settling call pulls it in. *)
  E.set_width_bounds x;
  let l, h = E.width_bounds x in
  Alcotest.(check bool) "final bounds sane" true (1 <= l && l <= h && h <= 8);
  Alcotest.(check bool) "width inside final bounds" true
    (E.width x >= l && E.width x <= h)

(* ---------------------------- cancellation --------------------------- *)

(* A parked offer that times out is withdrawn through the same
   three-state protocol as a dead partner's: counted, slot cleared. *)
let test_timeout_counts_as_cancel () =
  let x : int E.t = E.create ~capacity:1 () in
  Alcotest.(check bool) "give times out" false (E.give ~patience:2 x 1);
  Alcotest.(check int) "give withdrawal counted" 1 (E.cancelled x);
  Alcotest.(check (option int)) "take times out" None (E.take ~patience:2 x);
  Alcotest.(check int) "take withdrawal counted" 2 (E.cancelled x);
  (* Withdrawn cleanly: the slot is free for a live pair. *)
  let d = Domain.spawn (fun () -> E.give ~patience:1_000_000 x 9) in
  let rec take_until n =
    if n = 0 then None
    else
      match E.take ~patience:10 x with
      | Some _ as r -> r
      | None -> take_until (n - 1)
  in
  Alcotest.(check (option int)) "slot still pairs" (Some 9)
    (take_until 1_000_000);
  Alcotest.(check bool) "give handed off" true (Domain.join d)

(* A giver killed while parked (injected [Faults.Killed] in the park
   loop) withdraws its offer on the way out: the value is never captured
   and the slot is left clean for live partners. *)
let test_kill_while_parked_withdraws () =
  let x : int E.t = E.create ~capacity:1 () in
  (* Unconditional: hit counters are global and process-wide, so under a
     seeded FLDS_FAULTS run earlier parks have already consumed the low
     hit indices. Only the victim parks while the script is installed. *)
  Faults.on "elim.park" (fun _ -> Faults.Kill);
  let victim =
    Domain.spawn (fun () ->
        match E.give ~patience:1_000_000 x 13 with
        | (_ : bool) -> `Survived
        | exception Faults.Killed _ -> `Killed)
  in
  let fate = Domain.join victim in
  Faults.clear "elim.park";
  Alcotest.(check bool) "giver died in the park loop" true (fate = `Killed);
  Alcotest.(check int) "offer withdrawn" 1 (E.cancelled x);
  Alcotest.(check bool) "dead value not capturable" true
    (E.try_take x = None);
  Alcotest.(check int) "nothing exchanged" 0 (E.exchanged x);
  (* The dead partner left no residue: a live pair still meets. *)
  let d = Domain.spawn (fun () -> E.give ~patience:1_000_000 x 21) in
  let rec take_until n =
    if n = 0 then None
    else
      match E.take ~patience:10 x with
      | Some _ as r -> r
      | None -> take_until (n - 1)
  in
  Alcotest.(check (option int)) "live pair unaffected" (Some 21)
    (take_until 1_000_000);
  Alcotest.(check bool) "live give handed off" true (Domain.join d)

(* Storm of impatient offers: cancellation and reclamation race claims
   constantly, yet values are conserved and every cancelled offer is
   withdrawn at most once (reclaimed never exceeds cancelled). *)
let test_cancel_reclaim_stress () =
  let x : int E.t = E.create ~capacity:2 () in
  let per = 5_000 in
  let giver =
    Domain.spawn (fun () ->
        let given = ref 0 in
        for i = 1 to per do
          if E.give ~patience:(i mod 3) x i then incr given
        done;
        !given)
  in
  let taker =
    Domain.spawn (fun () ->
        let got = ref 0 in
        for i = 1 to per do
          match E.take ~patience:(i mod 3) x with
          | Some _ -> incr got
          | None -> ()
        done;
        !got)
  in
  let given = Domain.join giver and got = Domain.join taker in
  Alcotest.(check int) "conservation" given got;
  Alcotest.(check int) "exchanged agrees" got (E.exchanged x);
  Alcotest.(check bool) "reclaimed bounded by cancelled" true
    (E.reclaimed x <= E.cancelled x);
  (* Drain: whatever the storm left parked is cancelled garbage at most;
     nothing live remains to pair with. *)
  Alcotest.(check (option int)) "no live residue" None (E.try_take x)

(* Cross-handle elimination on the weak stack: handle A's starving pops
   are fed by handle B's push flush through the shared exchanger. *)
let test_weak_stack_exchange () =
  let s = Fl.Weak_stack.create ~exchange:true () in
  let ha = Fl.Weak_stack.handle s in
  let consumer =
    Domain.spawn (fun () ->
        (* Pops on an empty shared stack: without exchange these all
           observe None; with a concurrent producer flushing, some are
           fed. Loop until one is. *)
        let fed = ref None in
        let tries = ref 0 in
        while !fed = None && !tries < 200 do
          incr tries;
          let fs = List.init 8 (fun _ -> Fl.Weak_stack.pop ha) in
          Fl.Weak_stack.flush ha;
          List.iter
            (fun f ->
              match Futures.Future.force f with
              | Some _ as r -> fed := r
              | None -> ())
            fs
        done;
        !fed)
  in
  let producer () =
    let hb = Fl.Weak_stack.handle s in
    let deadline = 200 in
    let rec go n =
      if n = 0 then ()
      else if Fl.Weak_stack.exchanged s > 0 then ()
      else begin
        let fs = List.init 8 (fun i -> Fl.Weak_stack.push hb (n + i)) in
        Fl.Weak_stack.flush hb;
        List.iter (fun f -> Futures.Future.force f) fs;
        go (n - 1)
      end
    in
    go deadline
  in
  producer ();
  let fed = Domain.join consumer in
  (* The producer keeps the shared stack non-empty too, so the consumer
     must have been satisfied one way or the other; if the exchanger
     engaged, the counter shows it. *)
  Alcotest.(check bool) "consumer satisfied" true (fed <> None);
  Alcotest.(check bool) "exchange count consistent" true
    (Fl.Weak_stack.exchanged s >= 0)

(* The elimination stack's adaptive array still yields a correct stack:
   conservation under concurrent push/pop mirrors the Treiber test. *)
let test_elim_stack_width_adapts () =
  let s = Lockfree.Elimination_stack.create ~slots:8 () in
  Alcotest.(check bool) "width within bounds" true
    (Lockfree.Elimination_stack.elimination_width s >= 1
    && Lockfree.Elimination_stack.elimination_width s <= 8);
  let domains = 4 and per = 2_000 in
  let popped = Array.make domains 0 and pushed = Array.make domains 0 in
  let worker i () =
    let rng = Workload.Rng.create ~seed:7 ~stream:i in
    for v = 1 to per do
      if Workload.Rng.bool rng then begin
        Lockfree.Elimination_stack.push s v;
        pushed.(i) <- pushed.(i) + 1
      end
      else
        match Lockfree.Elimination_stack.pop s with
        | Some _ -> popped.(i) <- popped.(i) + 1
        | None -> ()
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let total a = Array.fold_left ( + ) 0 a in
  Alcotest.(check int) "conservation"
    (total pushed - total popped)
    (Lockfree.Elimination_stack.length s);
  Alcotest.(check bool) "width still within bounds" true
    (Lockfree.Elimination_stack.elimination_width s >= 1
    && Lockfree.Elimination_stack.elimination_width s <= 8)

let () =
  Alcotest.run "exchanger"
    [
      ( "solo",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "solo timeout" `Quick test_solo_timeout;
        ] );
      ( "pairing",
        [
          Alcotest.test_case "parked give fed by take" `Quick
            test_parked_give_fed_by_take;
          Alcotest.test_case "parked take fed by try_give" `Quick
            test_parked_take_fed_by_try_give;
          Alcotest.test_case "conservation" `Quick test_pairing_conservation;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "clamp and pull" `Quick test_bounds_clamp_and_pull;
          Alcotest.test_case "drag down" `Quick test_bounds_drag_down;
          Alcotest.test_case "concurrent retuning" `Quick
            test_bounds_concurrent;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "timeout counts as cancel" `Quick
            test_timeout_counts_as_cancel;
          Alcotest.test_case "kill while parked withdraws" `Quick
            test_kill_while_parked_withdraws;
          Alcotest.test_case "cancel/reclaim stress" `Quick
            test_cancel_reclaim_stress;
        ] );
      ( "integration",
        [
          Alcotest.test_case "weak-stack cross-handle exchange" `Quick
            test_weak_stack_exchange;
          Alcotest.test_case "elimination stack width" `Quick
            test_elim_stack_width_adapts;
        ] );
    ]
