(* Tests for the conformance fuzzer: deterministic generation, repro
   round-trips, the segmented checker against the plain exact checker,
   the oracle targets, the kill-plan guard, and the end-to-end gauntlet
   the CI fuzz-smoke job relies on — the intentionally-too-strong check
   (weak stack against Medium) must fail, shrink small, and replay. *)

module P = Fuzz.Program
module Pl = Fuzz.Plan
module R = Fuzz.Repro
module E = Fuzz.Exec
module D = Fuzz.Driver
module H = Lin.History
module QSpec = Lin.Spec.Queue_spec
module CQ = Lin.Checker.Make (QSpec)

let kinds = [ P.Stack; P.Queue; P.Set; P.Map; P.Multi ]

(* ------------------------- generation ------------------------------- *)

let test_program_deterministic () =
  List.iter
    (fun kind ->
      let name = P.kind_name kind in
      let a = P.generate kind ~seed:42 and b = P.generate kind ~seed:42 in
      Alcotest.(check bool) (name ^ ": same seed, same program") true (a = b);
      let c = P.generate kind ~seed:43 in
      Alcotest.(check bool) (name ^ ": different seed differs") true (a <> c);
      Alcotest.(check bool)
        (name ^ ": records some ops")
        true
        (P.recorded_ops a > 0))
    kinds

let test_program_cap () =
  let huge = P.{ threads = 100; phases = 100; steps = 1000 } in
  let capped = P.cap huge in
  Alcotest.(check bool) "threads capped" true (capped.P.threads <= 8);
  Alcotest.(check bool) "phases capped" true (capped.P.phases <= 8);
  Alcotest.(check bool)
    "phase fits the exact-search bound" true
    (capped.P.threads * capped.P.steps <= 62);
  let p = P.generate ~size:huge P.Stack ~seed:1 in
  List.iter
    (fun phase ->
      let ops =
        Array.fold_left
          (fun acc steps ->
            acc
            + List.length (List.filter (fun s -> s.P.op <> P.Force) steps))
          0 phase
      in
      Alcotest.(check bool) "recorded ops per phase ≤ 62" true (ops <= 62))
    p.P.phases

let test_plan_deterministic () =
  let a = Pl.generate ~seed:7 () and b = Pl.generate ~seed:7 () in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  Alcotest.(check bool) "different seed differs" true
    (a <> Pl.generate ~seed:8 ());
  Alcotest.(check bool) "stall plans never kill" true (not (Pl.has_kills a));
  List.iter
    (fun (s : Faults.plan_step) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is a stall point" s.Faults.pt)
        true
        (List.mem s.Faults.pt Pl.stall_points))
    a

let test_plan_kills_confined () =
  (* Over many seeds, kill actions appear and only ever at the
     flat-combining lease points. *)
  let saw_kill = ref false in
  for seed = 1 to 40 do
    List.iter
      (fun (s : Faults.plan_step) ->
        if s.Faults.act = Faults.Kill then begin
          saw_kill := true;
          Alcotest.(check bool)
            (Printf.sprintf "kill confined to lease points (%s)" s.Faults.pt)
            true
            (List.mem s.Faults.pt Pl.kill_points)
        end)
      (Pl.generate ~kills:true ~seed ())
  done;
  Alcotest.(check bool) "kills do get generated" true !saw_kill

(* --------------------------- repro files ----------------------------- *)

let test_repro_roundtrip () =
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let r =
            {
              R.target = "roundtrip/" ^ P.kind_name kind;
              condition = Lin.Order.Medium;
              seed;
              program = P.generate kind ~seed;
              plan = Pl.generate ~intensity:20 ~seed ();
            }
          in
          let s = R.to_string r in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%d: of_string inverts to_string"
               (P.kind_name kind) seed)
            true
            (R.of_string s = r);
          Alcotest.(check string)
            (Printf.sprintf "%s/%d: canonical fixpoint" (P.kind_name kind)
               seed)
            s
            (R.to_string (R.of_string s)))
        [ 1; 2; 3 ])
    kinds

let test_repro_truncated () =
  let r =
    {
      R.target = "stack/weak";
      condition = Lin.Order.Weak;
      seed = 5;
      program = P.generate P.Stack ~seed:5;
      plan = Pl.generate ~seed:5 ();
    }
  in
  let s = R.to_string r in
  (* Drop the trailing "end" line: a truncated download must not load as
     a smaller-but-valid repro. *)
  let cut = String.length s - String.length "end\n" in
  let truncated = String.sub s 0 cut in
  match R.of_string truncated with
  | _ -> Alcotest.fail "truncated repro parsed"
  | exception Invalid_argument _ -> ()

(* --------------------- segmented exact checker ----------------------- *)

(* Random small queue histories with a mix of overlapping and quiescent
   intervals; the segmented search must agree with the plain exact one
   under every condition. *)
let random_history rng =
  let n = 2 + Workload.Rng.below rng 7 in
  let t = ref 0 in
  let fresh () =
    incr t;
    !t
  in
  let entries = ref [] in
  let pending = ref [] in
  for i = 0 to n - 1 do
    (* Occasionally let time pass with nothing open: a quiescent cut. *)
    if Workload.Rng.below rng 3 = 0 then t := !t + 5;
    let c_inv = fresh () in
    let c_res = fresh () in
    let e =
      if Workload.Rng.below rng 4 = 0 then None
      else begin
        let e_inv = fresh () in
        let e_res = fresh () in
        Some (e_inv, e_res)
      end
    in
    let op =
      if Workload.Rng.bool rng then QSpec.Enq i
      else if Workload.Rng.bool rng then QSpec.Deq None
      else QSpec.Deq (Some (Workload.Rng.below rng n))
    in
    pending := (Workload.Rng.below rng 3, op, c_inv, c_res, e) :: !pending;
    (* Close over the pending ops in random bursts so some intervals
       overlap. *)
    if Workload.Rng.below rng 2 = 0 then begin
      List.iter
        (fun (thread, op, c_inv, c_res, e) ->
          entries :=
            {
              H.thread;
              obj = 0;
              op;
              create_inv = c_inv;
              create_res = c_res;
              eval_inv = Option.map fst e;
              eval_res = Option.map snd e;
            }
            :: !entries)
        !pending;
      pending := []
    end
  done;
  List.iter
    (fun (thread, op, c_inv, c_res, e) ->
      entries :=
        {
          H.thread;
          obj = 0;
          op;
          create_inv = c_inv;
          create_res = c_res;
          eval_inv = Option.map fst e;
          eval_res = Option.map snd e;
        }
        :: !entries)
    !pending;
  Array.of_list (List.rev !entries)

let test_segmented_matches_check () =
  let rng = Workload.Rng.create ~seed:2014 ~stream:0 in
  let conditions =
    Lin.Order.[ Strong; Medium; Weak; Fsc ]
  in
  for trial = 1 to 150 do
    let h = random_history rng in
    List.iter
      (fun cond ->
        let plain = CQ.check cond h in
        let seg = CQ.check_segmented cond h in
        if plain <> seg then
          Alcotest.fail
            (Printf.sprintf
               "trial %d: check=%b but check_segmented=%b on %d ops" trial
               plain seg (Array.length h)))
      conditions
  done

let test_segmented_forces_cuts () =
  (* A long sequential history exceeds the per-segment cap only if the
     cuts are not taken; with max_segment:2 it must still be checked via
     its quiescent cuts. *)
  let t = ref 0 in
  let entry op =
    incr t;
    let c_inv = !t in
    incr t;
    let c_res = !t in
    {
      H.thread = 0;
      obj = 0;
      op;
      create_inv = c_inv;
      create_res = c_res;
      eval_inv = None;
      eval_res = None;
    }
  in
  let h =
    Array.init 30 (fun i ->
        if i mod 2 = 0 then entry (QSpec.Enq (i / 2))
        else entry (QSpec.Deq (Some (i / 2))))
  in
  Alcotest.(check bool)
    "sequential history accepted segment by segment" true
    (CQ.check_segmented ~max_segment:2 Lin.Order.Strong h);
  let bad =
    Array.map
      (fun (e : QSpec.op H.entry) ->
        match e.H.op with QSpec.Deq (Some v) -> { e with H.op = QSpec.Deq (Some (v + 100)) } | _ -> e)
      h
  in
  Alcotest.(check bool)
    "wrong values rejected segment by segment" false
    (CQ.check_segmented ~max_segment:2 Lin.Order.Strong bad)

let test_reachable_states_threading () =
  (* Splitting a history at a quiescent cut and threading the reachable
     state set through must agree with checking it whole. *)
  let mk ops ~base =
    let t = ref base in
    Array.of_list
      (List.map
         (fun op ->
           incr t;
           let c_inv = !t in
           incr t;
           {
             H.thread = 0;
             obj = 0;
             op;
             create_inv = c_inv;
             create_res = !t;
             eval_inv = None;
             eval_res = None;
           })
         ops)
  in
  let first = mk [ QSpec.Enq 1; QSpec.Enq 2 ] ~base:0 in
  let second = mk [ QSpec.Deq (Some 1); QSpec.Deq (Some 2) ] ~base:100 in
  let cond = Lin.Order.Strong in
  let after_first =
    CQ.reachable_states cond ~from:[ QSpec.initial ] first
  in
  Alcotest.(check bool) "first chunk legal" true (after_first <> []);
  let after_second = CQ.reachable_states cond ~from:after_first second in
  Alcotest.(check bool) "threaded chunks legal" true (after_second <> []);
  Alcotest.(check bool) "whole history agrees" true
    (CQ.check cond (Array.append first second));
  (* Empty history: the from set comes back deduplicated. *)
  let dedup =
    CQ.reachable_states cond
      ~from:[ QSpec.initial; QSpec.initial ]
      [||]
  in
  Alcotest.(check int) "empty history dedups from" 1 (List.length dedup)

(* ------------------------- execution -------------------------------- *)

let test_correct_targets_pass seed () =
  List.iter
    (fun name ->
      let t = E.find name in
      let prog = P.generate t.E.kind ~seed in
      let plan = Pl.generate ~seed () in
      let o = E.run t prog plan in
      match o.E.verdict with
      | E.Pass -> ()
      | E.Violation msg ->
          Alcotest.fail
            (Printf.sprintf "%s seed %d: unexpected violation: %s" name seed
               msg))
    [ "stack/strong"; "queue/medium"; "list/weak"; "map/weak"; "fig3"; "slack" ]

let test_run_rejects_kill_plan_on_checked () =
  let t = E.find "stack/weak" in
  let prog = P.generate t.E.kind ~seed:1 in
  let plan = [ { Faults.pt = "fc.pass"; at = 0; act = Faults.Kill } ] in
  match E.run t prog plan with
  | _ -> Alcotest.fail "kill plan accepted by a history-checked target"
  | exception Invalid_argument _ -> ()

let test_fclease_survives_kills seed () =
  let t = E.find "fclease" in
  Alcotest.(check bool) "fclease declares kill plans" true t.E.kill_plan;
  let prog = P.generate t.E.kind ~seed in
  let plan = Pl.generate ~kills:true ~seed () in
  let o = E.run t prog plan in
  match o.E.verdict with
  | E.Pass -> ()
  | E.Violation msg ->
      Alcotest.fail
        (Printf.sprintf "fclease seed %d: sum oracle violated: %s" seed msg)

(* The sharded store's oracle target: kill plans may murder workers at
   any transfer protocol step, and the oracle still demands liveness
   (every future settled within the bounded recovery drain) and
   refinement (no binding that was never proposed). *)
let test_shardmap_survives_kills seed () =
  let t = E.find "shardmap" in
  Alcotest.(check bool) "shardmap declares kill plans" true t.E.kill_plan;
  let prog = P.generate t.E.kind ~seed in
  let plan = Pl.generate ~kills:true ~seed () in
  let o = E.run t prog plan in
  match o.E.verdict with
  | E.Pass -> ()
  | E.Violation msg ->
      Alcotest.fail
        (Printf.sprintf "shardmap seed %d: oracle violated: %s" seed msg)

(* The admission-controlled session path: kill-free plans get the full
   FL-conformance check on the admitted subset; kill plans (workers and
   the controller itself murdered at the service.* and shard.* points)
   still demand liveness and shed exclusion. *)
let test_service_conformance seed () =
  let t = E.find "service" in
  let prog = P.generate t.E.kind ~seed in
  let plan = Pl.generate ~seed () in
  let o = E.run t prog plan in
  match o.E.verdict with
  | E.Pass -> ()
  | E.Violation msg ->
      Alcotest.fail
        (Printf.sprintf "service seed %d: admitted subset violated: %s" seed
           msg)

let test_service_survives_kills seed () =
  let t = E.find "service" in
  Alcotest.(check bool) "service declares kill plans" true t.E.kill_plan;
  let prog = P.generate t.E.kind ~seed in
  let plan = Pl.generate ~kills:true ~seed () in
  let o = E.run t prog plan in
  match o.E.verdict with
  | E.Pass -> ()
  | E.Violation msg ->
      Alcotest.fail
        (Printf.sprintf "service seed %d: oracle violated: %s" seed msg)

(* ------------------- the gauntlet, end to end ------------------------ *)

let test_buggy_target_shrinks_and_replays seed () =
  let out_dir = Filename.concat (Filename.get_temp_dir_name ()) "flds-fuzz" in
  let r =
    D.fuzz ~condition:Lin.Order.Medium ~iters:20 ~out_dir ~seed
      (E.find "stack/weak")
  in
  Alcotest.(check int) "violation found" 1 r.D.violations;
  (match r.D.shrunk_ops with
  | Some n -> Alcotest.(check bool) "shrunk to ≤ 8 ops" true (n <= 8)
  | None -> Alcotest.fail "no shrunk size reported");
  match r.D.repro_path with
  | None -> Alcotest.fail "no repro written"
  | Some path ->
      let repro, outcome = D.replay path in
      Alcotest.(check string) "repro names the target" "stack/weak"
        repro.R.target;
      (match outcome.E.verdict with
      | E.Violation _ -> ()
      | E.Pass -> Alcotest.fail "replay did not reproduce the violation");
      Sys.remove path

let test_campaign_deterministic seed () =
  let out_dir = Filename.concat (Filename.get_temp_dir_name ()) "flds-fuzz" in
  let run file =
    let r =
      D.fuzz ~condition:Lin.Order.Medium ~iters:20 ~out_dir ~file ~seed
        (E.find "stack/weak")
    in
    let path = Option.get r.D.repro_path in
    let contents = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    (r.D.iters, r.D.total_ops, contents)
  in
  let i1, o1, c1 = run "det-a.repro" in
  let i2, o2, c2 = run "det-b.repro" in
  Alcotest.(check int) "same iteration count" i1 i2;
  Alcotest.(check int) "same op count" o1 o2;
  Alcotest.(check string) "byte-identical repro" c1 c2

(* ------------------------------ mega -------------------------------- *)

module M = Fuzz.Mega

let test_mega_target_syntax () =
  let t = M.target_of_string "mega/queue/strong@0x2a" in
  Alcotest.(check string)
    "round-trips" "mega/queue/strong@0x2a" (M.target_to_string t);
  Alcotest.(check bool) "corrupt seed parsed" true (t.M.corrupt = Some 0x2a);
  let honest = M.target_of_string "mega/stack/weak-x" in
  Alcotest.(check bool) "no corruption" true (honest.M.corrupt = None);
  Alcotest.(check bool) "prefix predicate" true (M.is_mega_name "mega/x");
  Alcotest.(check bool) "prefix predicate" false (M.is_mega_name "stack/weak");
  List.iter
    (fun bad ->
      match M.target_of_string bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "parsed %S" bad)
    [ "mega/set/fine"; "mega/queue"; "queue/strong"; "mega/queue/strong@zz" ]

(* Honest mega run: a multi-thread history far beyond the exact
   checker's reach, certified by the streaming monitor. *)
let test_mega_certifies seed () =
  let t = M.target_of_string "mega/queue/strong" in
  let prog = P.generate_mega ~threads:3 P.Queue ~steps:2000 ~seed in
  let plan = Pl.generate ~kills:false ~intensity:4 ~seed () in
  let out = M.run t prog plan in
  Alcotest.(check bool) "well beyond 62 ops" true (out.M.ops > 4000);
  match out.M.verdict with
  | Lin.Stream.Accept -> ()
  | Lin.Stream.Reject { index; reason } ->
      Alcotest.failf "mega history rejected at %d: %s" index reason

(* S4: a corrupted mega campaign must fail, shrink through the twin
   program/plan shrinker, and leave a .repro that replays to the same
   violating index — single-threaded programs make the whole pipeline
   (recorded history, corruption, index) deterministic. *)
let test_mega_corruption_repro seed () =
  let out_dir = Filename.concat (Filename.get_temp_dir_name ()) "flds-fuzz" in
  let t = M.target_of_string "mega/queue/strong@0x2a" in
  let r =
    M.fuzz ~threads:1 ~steps:300 ~iters:3 ~out_dir
      ~file:(Printf.sprintf "mega-%d.repro" seed)
      ~seed t
  in
  (match r.M.first_failure with
  | Some _ -> ()
  | None -> Alcotest.fail "corrupted mega campaign found no violation");
  let index =
    match r.M.violating_index with
    | Some i -> i
    | None -> Alcotest.fail "no violating index reported"
  in
  (match r.M.shrunk_ops with
  | Some n ->
      Alcotest.(check bool)
        (Printf.sprintf "shrunk below the original 300 ops (got %d)" n)
        true (n < 300)
  | None -> Alcotest.fail "no shrunk size reported");
  match r.M.repro_path with
  | None -> Alcotest.fail "no repro written"
  | Some path ->
      let replay_index () =
        let repro, out = M.replay path in
        Alcotest.(check string)
          "repro round-trips the corruption seed" "mega/queue/strong@0x2a"
          repro.R.target;
        match out.M.verdict with
        | Lin.Stream.Reject { index; _ } -> index
        | Lin.Stream.Accept -> Alcotest.fail "replay did not reproduce"
      in
      let i1 = replay_index () in
      let i2 = replay_index () in
      Alcotest.(check int) "replay hits the campaign's violating index" index
        i1;
      Alcotest.(check int) "replay is deterministic" i1 i2;
      Sys.remove path

(* The seed lists below pick the campaigns each run exercises.
   FLDS_TEST_SEED=<n> replaces every list with just [n] so a failing
   campaign can be re-run in isolation; on failure each seeded case
   prints the rerun incantation for exactly that campaign. The same
   override drives test_faults' recorded schedules, so one variable
   reruns a whole failing seed across both suites. *)
let seeds_from_env default =
  match Sys.getenv_opt "FLDS_TEST_SEED" with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> [ n ]
      | None ->
          Printf.eprintf "FLDS_TEST_SEED=%S is not an integer; ignored\n%!" s;
          default)

let with_seed_reported seed f () =
  try f ()
  with e ->
    Printf.eprintf
      "seeded campaign failed — rerun just it with FLDS_TEST_SEED=%d\n%!" seed;
    raise e

let exec_seeds = seeds_from_env [ 1; 2 ]
let kill_seeds = seeds_from_env [ 1; 2; 3; 4 ]
let gauntlet_seeds = seeds_from_env [ 2014 ]
let determinism_seeds = seeds_from_env [ 99 ]
let mega_seeds = seeds_from_env [ 7 ]

let seeded name seeds test =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "%s, seed %d" name seed)
        `Slow
        (with_seed_reported seed (test seed)))
    seeds

let () =
  Alcotest.run "fuzz"
    [
      ( "generate",
        [
          Alcotest.test_case "programs deterministic" `Quick
            test_program_deterministic;
          Alcotest.test_case "size cap" `Quick test_program_cap;
          Alcotest.test_case "plans deterministic" `Quick
            test_plan_deterministic;
          Alcotest.test_case "kills confined to lease points" `Quick
            test_plan_kills_confined;
        ] );
      ( "repro",
        [
          Alcotest.test_case "round-trip" `Quick test_repro_roundtrip;
          Alcotest.test_case "truncated file rejected" `Quick
            test_repro_truncated;
        ] );
      ( "segmented",
        [
          Alcotest.test_case "agrees with exact check" `Quick
            test_segmented_matches_check;
          Alcotest.test_case "long history via cuts" `Quick
            test_segmented_forces_cuts;
          Alcotest.test_case "reachable-state threading" `Quick
            test_reachable_states_threading;
        ] );
      ( "exec",
        seeded "correct targets pass" exec_seeds test_correct_targets_pass
        @ [
            Alcotest.test_case "kill plan rejected when checked" `Quick
              test_run_rejects_kill_plan_on_checked;
          ]
        @ seeded "fclease sum oracle under kills" kill_seeds
            test_fclease_survives_kills
        @ seeded "shardmap oracle under kills" kill_seeds
            test_shardmap_survives_kills
        @ seeded "service admitted-subset conformance" kill_seeds
            test_service_conformance
        @ seeded "service oracle under kills" kill_seeds
            test_service_survives_kills );
      ( "gauntlet",
        seeded "buggy check shrinks and replays" gauntlet_seeds
          test_buggy_target_shrinks_and_replays
        @ seeded "campaign deterministic" determinism_seeds
            test_campaign_deterministic );
      ( "mega",
        [ Alcotest.test_case "target syntax" `Quick test_mega_target_syntax ]
        @ seeded "honest mega history certifies" mega_seeds
            test_mega_certifies
        @ seeded "corruption shrinks and replays to the same index"
            mega_seeds test_mega_corruption_repro );
    ]
