(* Tests for the key/value substrate (Harris_kv) and the weak-FL map
   extension, including checker-verified concurrent rounds. *)

module Future = Futures.Future

module Int_key = struct
  type t = int

  let compare = Int.compare
end

module KV = Lockfree.Harris_kv.Make (Int_key)
module WM = Fl.Weak_map.Make (Int_key)
module MSpec = Lin.Spec.Map_spec
module CM = Lin.Checker.Make (MSpec)
module H = Lin.History

let force = Future.force

(* ---------------------------- Harris_kv ----------------------------- *)

let test_kv_basics () =
  let m = KV.create () in
  Alcotest.(check bool) "empty" true (KV.is_empty m);
  Alcotest.(check bool) "insert 1" true (KV.insert m 1 "one");
  Alcotest.(check bool) "bind-once" false (KV.insert m 1 "uno");
  Alcotest.(check (option string)) "find keeps first" (Some "one")
    (KV.find m 1);
  Alcotest.(check (option string)) "find absent" None (KV.find m 2);
  Alcotest.(check bool) "insert 0" true (KV.insert m 0 "zero");
  Alcotest.(check bool) "insert 7" true (KV.insert m 7 "seven");
  Alcotest.(check (list (pair int string)))
    "sorted bindings"
    [ (0, "zero"); (1, "one"); (7, "seven") ]
    (KV.bindings m);
  Alcotest.(check (option string)) "remove" (Some "one") (KV.remove m 1);
  Alcotest.(check (option string)) "remove again" None (KV.remove m 1);
  Alcotest.(check int) "size" 2 (KV.size m)

let test_kv_positions () =
  let m = KV.create () in
  List.iter (fun k -> ignore (KV.insert m k (k * 10))) [ 1; 3; 5; 7 ];
  let pos = KV.head_position m in
  let r1, pos = KV.find_from m pos 1 in
  Alcotest.(check (option int)) "find 1" (Some 10) r1;
  let created, pos = KV.insert_from m pos 4 40 in
  Alcotest.(check bool) "insert 4" true created;
  let r2, pos = KV.remove_from m pos 5 in
  Alcotest.(check (option int)) "remove 5" (Some 50) r2;
  let r3, _ = KV.find_from m pos 7 in
  Alcotest.(check (option int)) "find 7" (Some 70) r3;
  Alcotest.(check (list (pair int int)))
    "final"
    [ (1, 10); (3, 30); (4, 40); (7, 70) ]
    (KV.bindings m)

let prop_kv_model =
  QCheck.Test.make ~name:"harris_kv matches Map model (sequential)"
    ~count:400
    QCheck.(list (pair (int_bound 2) (pair (int_bound 20) (int_bound 100))))
    (fun script ->
      let module IM = Map.Make (Int) in
      let m = KV.create () in
      let model = ref IM.empty in
      List.for_all
        (fun (kind, (k, v)) ->
          match kind with
          | 0 ->
              let fresh = not (IM.mem k !model) in
              if fresh then model := IM.add k v !model;
              KV.insert m k v = fresh
          | 1 ->
              let expected = IM.find_opt k !model in
              model := IM.remove k !model;
              KV.remove m k = expected
          | _ -> KV.find m k = IM.find_opt k !model)
        script
      && KV.bindings m = IM.bindings !model)

let test_kv_parallel_disjoint () =
  let m = KV.create () in
  let domains = 4 and range = 32 and ops = 3_000 in
  let finals = Array.make domains [] in
  let worker i () =
    let module IM = Map.Make (Int) in
    let rng = Workload.Rng.create ~seed:3 ~stream:i in
    let base = i * range in
    let model = ref IM.empty in
    for _ = 1 to ops do
      let k = base + Workload.Rng.below rng range in
      let v = Workload.Rng.below rng 1000 in
      match Workload.Rng.below rng 3 with
      | 0 ->
          let fresh = not (IM.mem k !model) in
          if fresh then model := IM.add k v !model;
          assert (KV.insert m k v = fresh)
      | 1 ->
          let expected = IM.find_opt k !model in
          model := IM.remove k !model;
          assert (KV.remove m k = expected)
      | _ -> assert (KV.find m k = IM.find_opt k !model)
    done;
    finals.(i) <- IM.bindings !model
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let all = KV.bindings m in
  for i = 0 to domains - 1 do
    let base = i * range in
    let mine =
      List.filter (fun (k, _) -> k >= base && k < base + range) all
    in
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "domain %d slice" i)
      finals.(i) mine
  done

(* ----------------------------- Weak_map ----------------------------- *)

let test_map_basic () =
  let m = WM.create () in
  let h = WM.handle m in
  let f1 = WM.insert h 5 50 in
  let f2 = WM.find h 5 in
  let f3 = WM.insert h 5 55 in
  let f4 = WM.remove h 5 in
  Alcotest.(check int) "pending" 4 (WM.pending_count h);
  Alcotest.(check bool) "created" true (force f1);
  Alcotest.(check (option int)) "found" (Some 50) (force f2);
  Alcotest.(check bool) "bind-once refused" false (force f3);
  Alcotest.(check (option int)) "removed original" (Some 50) (force f4);
  Alcotest.(check int) "drained" 0 (WM.pending_count h);
  Alcotest.(check bool) "shared empty" true (KV.is_empty (WM.shared m))

let test_map_bulk_sorted_application () =
  let m = WM.create () in
  let h = WM.handle m in
  let keys = [ 9; 1; 5; 3; 7 ] in
  let fs = List.map (fun k -> WM.insert h k (k * 100)) keys in
  WM.flush h;
  List.iter (fun f -> Alcotest.(check bool) "created" true (force f)) fs;
  Alcotest.(check (list (pair int int)))
    "ascending"
    [ (1, 100); (3, 300); (5, 500); (7, 700); (9, 900) ]
    (KV.bindings (WM.shared m))

let test_map_find_batch () =
  let m = WM.create () in
  ignore (KV.insert (WM.shared m) 2 20);
  ignore (KV.insert (WM.shared m) 4 40);
  let h = WM.handle m in
  let fs = List.map (fun k -> WM.find h k) [ 4; 1; 2 ] in
  WM.flush h;
  Alcotest.(check (list (option int)))
    "batched lookups"
    [ Some 40; None; Some 20 ]
    (List.map force fs)

let prop_map_model =
  QCheck.Test.make ~name:"weak map matches model with random slack"
    ~count:200
    QCheck.(
      pair
        (list (pair (int_bound 2) (pair (int_bound 15) (int_bound 50))))
        (int_bound 7))
    (fun (script, slack_minus_1) ->
      let module IM = Map.Make (Int) in
      let m = WM.create () in
      let h = WM.handle m in
      let sl = Fl.Slack.create (slack_minus_1 + 1) in
      let model = ref IM.empty in
      let ok = ref true in
      List.iter
        (fun (kind, (k, v)) ->
          match kind with
          | 0 ->
              let fresh = not (IM.mem k !model) in
              if fresh then model := IM.add k v !model;
              let f = WM.insert h k v in
              Fl.Slack.note sl (fun () ->
                  if Future.force f <> fresh then ok := false)
          | 1 ->
              let expected = IM.find_opt k !model in
              model := IM.remove k !model;
              let f = WM.remove h k in
              Fl.Slack.note sl (fun () ->
                  if Future.force f <> expected then ok := false)
          | _ ->
              let expected = IM.find_opt k !model in
              let f = WM.find h k in
              Fl.Slack.note sl (fun () ->
                  if Future.force f <> expected then ok := false))
        script;
      Fl.Slack.drain sl;
      WM.flush h;
      !ok && KV.bindings (WM.shared m) = IM.bindings !model)

(* Checker-verified concurrent rounds (weak-FL), in the style of the
   Conformance library but for the map's three operations. *)
let record_map_round ~seed =
  let threads = 3 and per_thread = 5 in
  let m = WM.create () in
  let clock = H.clock () in
  let logs = Array.init threads (fun _ -> H.log ()) in
  let barrier = Sync.Barrier.create threads in
  let worker i () =
    let h = WM.handle m in
    let rng = Workload.Rng.create ~seed ~stream:i in
    let pending = ref [] in
    let flush () =
      List.iter (fun k -> k ()) !pending;
      pending := []
    in
    Sync.Barrier.wait barrier;
    for _ = 1 to per_thread do
      let k = Workload.Rng.below rng 4 in
      (match Workload.Rng.below rng 3 with
      | 0 ->
          let v = Workload.Rng.below rng 100 in
          let _, c =
            H.recorded_call logs.(i) clock ~thread:i ~obj:0 (fun () ->
                WM.insert h k v)
          in
          pending :=
            (fun () -> ignore (c (fun r -> MSpec.Insert (k, v, r))))
            :: !pending
      | 1 ->
          let _, c =
            H.recorded_call logs.(i) clock ~thread:i ~obj:0 (fun () ->
                WM.remove h k)
          in
          pending :=
            (fun () -> ignore (c (fun r -> MSpec.Remove (k, r)))) :: !pending
      | _ ->
          let _, c =
            H.recorded_call logs.(i) clock ~thread:i ~obj:0 (fun () ->
                WM.find h k)
          in
          pending :=
            (fun () -> ignore (c (fun r -> MSpec.Find (k, r)))) :: !pending);
      if Workload.Rng.below rng 3 = 0 then flush ()
    done;
    flush ();
    WM.flush h
  in
  let ds = List.init threads (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  H.merge (Array.to_list logs)

let test_map_weak_fl_checked () =
  for seed = 1 to 8 do
    let h = record_map_round ~seed in
    if not (CM.check Lin.Order.Weak h) then begin
      Format.printf "%a" CM.pp_history h;
      Alcotest.fail (Printf.sprintf "map round %d not weak-FL" seed)
    end
  done

let test_map_conservation_parallel () =
  let m = WM.create () in
  let domains = 4 and ops = 1_500 in
  let created = Array.make domains 0 and removed = Array.make domains 0 in
  let worker i () =
    let h = WM.handle m in
    let rng = Workload.Rng.create ~seed:9 ~stream:i in
    let sl = Fl.Slack.create 10 in
    for n = 1 to ops do
      let k = Workload.Rng.below rng 64 in
      if Workload.Rng.bool rng then begin
        let f = WM.insert h k n in
        Fl.Slack.note sl (fun () ->
            if Future.force f then created.(i) <- created.(i) + 1)
      end
      else
        let f = WM.remove h k in
        Fl.Slack.note sl (fun () ->
            if Future.force f <> None then removed.(i) <- removed.(i) + 1)
    done;
    Fl.Slack.drain sl;
    WM.flush h
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let ins = Array.fold_left ( + ) 0 created in
  let rem = Array.fold_left ( + ) 0 removed in
  Alcotest.(check int) "created - removed = live bindings" (ins - rem)
    (KV.size (WM.shared m))

(* Two domains race to bind the same key. Bind-once means exactly one
   insert future resolves [true] per round, and once both flushes are
   done every lookup — including the loser's — observes the winner's
   value. The per-round fresh map keeps rounds independent, so a single
   lost race pins the failing round number. *)
let test_map_bind_once_race () =
  let rounds = 50 in
  for round = 1 to rounds do
    let m = WM.create () in
    let barrier = Sync.Barrier.create 2 in
    let racer i () =
      let h = WM.handle m in
      Sync.Barrier.wait barrier;
      let won = WM.insert h 7 (100 + i) in
      WM.flush h;
      let seen = WM.find h 7 in
      WM.flush h;
      (force won, force seen)
    in
    let d0 = Domain.spawn (racer 0) in
    let d1 = Domain.spawn (racer 1) in
    let won0, seen0 = Domain.join d0 in
    let won1, seen1 = Domain.join d1 in
    let tag msg = Printf.sprintf "round %d: %s" round msg in
    Alcotest.(check bool) (tag "exactly one bind wins") true (won0 <> won1);
    let winner = if won0 then 100 else 101 in
    Alcotest.(check (option int))
      (tag "domain 0 observes the winner")
      (Some winner) seen0;
    Alcotest.(check (option int))
      (tag "domain 1 observes the winner")
      (Some winner) seen1;
    Alcotest.(check (option int))
      (tag "shared store holds the winner")
      (Some winner)
      (KV.find (WM.shared m) 7)
  done

(* --------------------- abandon / orphan recovery --------------------- *)

(* A worker dies with inserts pending and its handle never flushed; its
   registered abandon hook (the handle's [abandon]) must poison exactly
   those futures with [Orphaned] — fail fast, never hang — and discard
   the window un-applied, so the dead worker's keys stay unbound and the
   bind-once invariant survives into post-recovery use. *)
let orphan_ops = 5

let test_map_abandon_under_kill () =
  Fun.protect ~finally:Faults.clear_all @@ fun () ->
  Faults.clear_all ();
  let m = WM.create () in
  let victim_futs = Array.make orphan_ops None in
  Faults.on "map.victim" (fun _ -> Faults.Kill);
  let worker () ~thread ~ops =
    let h = WM.handle m in
    Workload.Runner.set_abandon_hook (fun () -> WM.abandon h);
    if thread = 0 then begin
      for j = 0 to orphan_ops - 1 do
        victim_futs.(j) <- Some (WM.insert h (100 + j) j)
      done;
      Faults.point "map.victim";
      Alcotest.fail "victim survived its kill"
    end
    else begin
      for n = 1 to ops do
        Workload.Runner.heartbeat ();
        ignore (WM.insert h ((thread * 1000) + n) n : bool Future.t)
      done;
      WM.flush h
    end
  in
  let r =
    Workload.Runner.run ~threads:3 ~repeats:1 ~ops_per_thread:50
      ~setup:(fun () -> ())
      ~worker ~watchdog:0.002 ()
  in
  Alcotest.(check int) "victim killed" 1 r.Workload.Runner.killed;
  Alcotest.(check int) "no unexplained failures" 0
    r.Workload.Runner.suppressed_failures;
  Alcotest.(check bool) "runner recovered the dead worker" true
    (r.Workload.Runner.recovered >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "all %d orphans poisoned (got %d)" orphan_ops
       r.Workload.Runner.poisoned)
    true
    (r.Workload.Runner.poisoned >= orphan_ops);
  Array.iteri
    (fun j f ->
      match f with
      | None -> Alcotest.failf "victim future %d never published" j
      | Some f ->
          Alcotest.check_raises
            (Printf.sprintf "orphan %d raises" j)
            (Future.Broken Future.Orphaned)
            (fun () -> ignore (Future.force f : bool));
          Alcotest.(check bool)
            (Printf.sprintf "orphan %d poisoned" j)
            true (Future.is_poisoned f))
    victim_futs;
  (* The discarded window never touched the shared list: the victim's
     keys are unbound, and bind-once still works on them afterwards. *)
  for j = 0 to orphan_ops - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "victim key %d never bound" (100 + j))
      None
      (KV.find (WM.shared m) (100 + j))
  done;
  let h = WM.handle m in
  let fresh = WM.insert h 100 42 in
  let dup = WM.insert h 100 43 in
  WM.flush h;
  Alcotest.(check bool) "post-recovery bind succeeds" true (force fresh);
  Alcotest.(check bool) "bind-once refusal survives recovery" false
    (force dup);
  (* Survivors' batches all landed. *)
  Alcotest.(check int) "survivor bindings intact" (2 * 50)
    (List.length
       (List.filter (fun (k, _) -> k >= 1000) (KV.bindings (WM.shared m))))

let () =
  Alcotest.run "fl-map"
    [
      ( "harris-kv",
        [
          Alcotest.test_case "basics" `Quick test_kv_basics;
          Alcotest.test_case "positions" `Quick test_kv_positions;
          QCheck_alcotest.to_alcotest prop_kv_model;
          Alcotest.test_case "disjoint ranges (4 domains)" `Slow
            test_kv_parallel_disjoint;
        ] );
      ( "weak-map",
        [
          Alcotest.test_case "basic" `Quick test_map_basic;
          Alcotest.test_case "bulk sorted application" `Quick
            test_map_bulk_sorted_application;
          Alcotest.test_case "batched lookups" `Quick test_map_find_batch;
          QCheck_alcotest.to_alcotest prop_map_model;
          Alcotest.test_case "weak-FL (checked, 3 domains)" `Slow
            test_map_weak_fl_checked;
          Alcotest.test_case "conservation (4 domains)" `Slow
            test_map_conservation_parallel;
          Alcotest.test_case "bind-once race (2 domains)" `Slow
            test_map_bind_once_race;
          Alcotest.test_case "abandon under runner kill (3 domains)" `Slow
            test_map_abandon_under_kill;
        ] );
    ]
