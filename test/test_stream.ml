(* Differential battery for the streaming conformance monitor: on every
   history the exact checker can decide, the streaming verdict must
   agree; seeded corruptions must be rejected with the documented
   violation index. The generators simulate a legal sequential run,
   spread each operation's stamps around its linearization point (so
   unperturbed histories are legal by construction), then optionally
   corrupt values, results or stamps — corrupted histories land on
   either side of the legal/illegal line, which is exactly what a
   differential test wants. *)

module H = Lin.History
module QS = Lin.Spec.Queue_spec
module SS = Lin.Spec.Stack_spec
module MS = Lin.Spec.Map_spec
module CQ = Lin.Checker.Make (QS)
module CS = Lin.Checker.Make (SS)
module CM = Lin.Checker.Make (MS)
module Stream = Lin.Stream

let accepts = function Stream.Accept -> true | Stream.Reject _ -> false

let entry ?(thread = 0) ?(obj = 0) op ~c:(c_inv, c_res) ?e () =
  {
    H.thread;
    obj;
    op;
    create_inv = c_inv;
    create_res = c_res;
    eval_inv = Option.map fst e;
    eval_res = Option.map snd e;
  }

(* ---------------------------- generators ---------------------------- *)

type 'op fam = {
  fam_name : string;
  gen_ops : Random.State.t -> objs:int -> int -> (int * 'op) list;
      (* model-legal (obj, op) sequence *)
  get_v : 'op -> int option;
  set_v : 'op -> int -> 'op;
  flip : Random.State.t -> 'op -> 'op; (* corrupt the op's result shape *)
}

let queue_fam =
  let gen_ops st ~objs n =
    let models = Array.make objs [] in
    let uid = ref 0 in
    List.init n (fun _ ->
        let o = Random.State.int st objs in
        let roll = Random.State.int st 10 in
        match models.(o) with
        | [] ->
            if roll < 7 then begin
              incr uid;
              models.(o) <- [ !uid ];
              (o, QS.Enq !uid)
            end
            else (o, QS.Deq None)
        | oldest :: rest ->
            if roll < 5 then begin
              incr uid;
              models.(o) <- models.(o) @ [ !uid ];
              (o, QS.Enq !uid)
            end
            else begin
              models.(o) <- rest;
              (o, QS.Deq (Some oldest))
            end)
  in
  {
    fam_name = "queue";
    gen_ops;
    get_v = (function QS.Enq v | QS.Deq (Some v) -> Some v | QS.Deq None -> None);
    set_v =
      (fun op v ->
        match op with
        | QS.Enq _ -> QS.Enq v
        | QS.Deq (Some _) -> QS.Deq (Some v)
        | QS.Deq None -> QS.Deq None);
    flip =
      (fun st op ->
        match op with
        | QS.Deq (Some _) -> QS.Deq None
        | QS.Deq None -> QS.Deq (Some (9000 + Random.State.int st 100))
        | QS.Enq v -> QS.Enq v);
  }

let stack_fam =
  let gen_ops st ~objs n =
    let models = Array.make objs [] in
    let uid = ref 0 in
    List.init n (fun _ ->
        let o = Random.State.int st objs in
        let roll = Random.State.int st 10 in
        match models.(o) with
        | [] ->
            if roll < 7 then begin
              incr uid;
              models.(o) <- [ !uid ];
              (o, SS.Push !uid)
            end
            else (o, SS.Pop None)
        | top :: rest ->
            if roll < 5 then begin
              incr uid;
              models.(o) <- !uid :: models.(o);
              (o, SS.Push !uid)
            end
            else begin
              models.(o) <- rest;
              (o, SS.Pop (Some top))
            end)
  in
  {
    fam_name = "stack";
    gen_ops;
    get_v = (function SS.Push v | SS.Pop (Some v) -> Some v | SS.Pop None -> None);
    set_v =
      (fun op v ->
        match op with
        | SS.Push _ -> SS.Push v
        | SS.Pop (Some _) -> SS.Pop (Some v)
        | SS.Pop None -> SS.Pop None);
    flip =
      (fun st op ->
        match op with
        | SS.Pop (Some _) -> SS.Pop None
        | SS.Pop None -> SS.Pop (Some (9000 + Random.State.int st 100))
        | SS.Push v -> SS.Push v);
  }

let map_fam =
  let gen_ops st ~objs n =
    let models = Array.make objs [] in
    let uid = ref 0 in
    List.init n (fun _ ->
        let o = Random.State.int st objs in
        let k = Random.State.int st 4 in
        let bound = List.assoc_opt k models.(o) in
        match Random.State.int st 3 with
        | 0 ->
            incr uid;
            let created = bound = None in
            if created then models.(o) <- (k, !uid) :: models.(o);
            (* bind-once: an existing binding survives *)
            (o, MS.Insert (k, !uid, created))
        | 1 -> (o, MS.Find (k, bound))
        | _ ->
            models.(o) <- List.remove_assoc k models.(o);
            (o, MS.Remove (k, bound)))
  in
  {
    fam_name = "map";
    gen_ops;
    get_v =
      (function
      | MS.Insert (_, v, _) -> Some v
      | MS.Find (_, Some v) | MS.Remove (_, Some v) -> Some v
      | MS.Find (_, None) | MS.Remove (_, None) -> None);
    set_v =
      (fun op v ->
        match op with
        | MS.Insert (k, _, c) -> MS.Insert (k, v, c)
        | MS.Find (k, Some _) -> MS.Find (k, Some v)
        | MS.Remove (k, Some _) -> MS.Remove (k, Some v)
        | op -> op);
    flip =
      (fun st op ->
        match op with
        | MS.Insert (k, v, c) -> MS.Insert (k, v, not c)
        | MS.Find (k, Some _) -> MS.Find (k, None)
        | MS.Find (k, None) -> MS.Find (k, Some (9000 + Random.State.int st 100))
        | MS.Remove (k, Some _) -> MS.Remove (k, None)
        | MS.Remove (k, None) -> MS.Remove (k, Some (9000 + Random.State.int st 100)));
  }

(* Stamps around per-op linearization points, arranged in bursts: ops
   within a burst overlap heavily (their stamps share the burst's
   window), bursts are separated by wide quiescent gaps — so the exact
   checker's segments stay small by construction while the monitor still
   sees dense concurrency. Every interval covers its linearization point
   (under both the creation and the evaluation reading), so the
   unperturbed history is legal under every condition without program
   order; threads are distinct so Strong/Weak see the pure interval
   order. Pending (never-evaluated) ops are confined to the last burst:
   an interval open to +∞ would fuse every later burst into one
   segment. *)
let entries_of_ops st ~burst ~window ~pending_p ops =
  let n = List.length ops in
  let gap = 4 in
  let burst_span = (burst * gap) + (2 * window) + 8 in
  Array.of_list
    (List.mapi
       (fun i (obj, op) ->
         let b = i / burst and k = i mod burst in
         let base = b * (burst_span + 1000) in
         let lin = base + 500 + ((k + 1) * gap) in
         let ci = lin - 1 - Random.State.int st (window + 1) in
         let cr = lin + Random.State.int st (window + 1) in
         let er = cr + Random.State.int st (window + 1) in
         let last_burst = i / burst = (n - 1) / burst in
         let pending =
           last_burst && Random.State.float st 1.0 < pending_p
         in
         entry ~thread:i ~obj op ~c:(ci, cr)
           ?e:(if pending then None else Some (cr, er))
           ())
       ops)

let perturb st fam ~range h =
  let h = Array.copy h in
  let n = Array.length h in
  if n = 0 then h
  else begin
    for _ = 1 to 1 + Random.State.int st 2 do
      let i = Random.State.int st n in
      let e = h.(i) in
      match Random.State.int st 6 with
      | 0 ->
          (* swap payload values of two entries *)
          let j = Random.State.int st n in
          let f = h.(j) in
          (match (fam.get_v e.H.op, fam.get_v f.H.op) with
          | Some vi, Some vj ->
              h.(i) <- { e with H.op = fam.set_v e.H.op vj };
              h.(j) <- { f with H.op = fam.set_v f.H.op vi }
          | _ -> ())
      | 1 ->
          (* re-stamp with four fresh sorted stamps *)
          let s = Array.init 4 (fun _ -> Random.State.int st range) in
          Array.sort compare s;
          h.(i) <-
            {
              e with
              H.create_inv = s.(0);
              create_res = s.(1);
              eval_inv = Option.map (fun _ -> s.(2)) e.H.eval_inv;
              eval_res = Option.map (fun _ -> s.(3)) e.H.eval_res;
            }
      | 2 -> h.(i) <- { e with H.op = fam.flip st e.H.op }
      | 3 ->
          (* retarget to a fresh, unrelated value *)
          (match fam.get_v e.H.op with
          | Some _ ->
              h.(i) <-
                { e with H.op = fam.set_v e.H.op (5000 + Random.State.int st 50) }
          | None -> ())
      | 4 ->
          (* duplicate another entry's value *)
          let j = Random.State.int st n in
          (match (fam.get_v e.H.op, fam.get_v h.(j).H.op) with
          | Some _, Some vj -> h.(i) <- { e with H.op = fam.set_v e.H.op vj }
          | _ -> ())
      | _ ->
          (* toggle pendingness *)
          h.(i) <-
            (match e.H.eval_res with
            | Some _ -> { e with H.eval_inv = None; eval_res = None }
            | None ->
                let stop = e.H.create_res + Random.State.int st range in
                { e with H.eval_inv = Some e.H.create_res; eval_res = Some stop })
    done;
    if Random.State.int st 10 < 3 then begin
      (* drop one entry *)
      let i = Random.State.int st n in
      Array.of_list
        (List.filteri (fun j _ -> j <> i) (Array.to_list h))
    end
    else h
  end

(* (nops, burst, window): nops total, burst = max ops per quiescent
   segment, window = stamp jitter inside a burst. The jitter controls
   the width of concurrent antichains — it must stay small, because the
   exact checker's state sets grow factorially in the number of
   simultaneously-applicable enqueues. The last entry is one small
   all-concurrent burst; cheap configurations are repeated to weight the
   mix toward them. *)
let sizes =
  [|
    (12, 6, 8); (12, 6, 8); (12, 6, 8); (24, 8, 6); (24, 8, 6); (40, 10, 6);
    (60, 12, 4); (7, 7, 200); (7, 7, 200);
  |]

(* The exact checker is exponential; a perturbed history can be
   adversarial even within the segment-size guard. Budget it with a real
   alarm and skip what it cannot decide in time. *)
let with_alarm secs f =
  let old =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise_notrace Exit))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    (fun () -> try Some (f ()) with Exit -> None)

let battery ~count ~seed ~conds ~objs fam ~stream_check ~exact_check ~pp () =
  let st = Random.State.make [| seed |] in
  let decided = ref 0 in
  for iter = 1 to count do
    let nops, burst, window = sizes.(Random.State.int st (Array.length sizes)) in
    let ops = fam.gen_ops st ~objs nops in
    let h = entries_of_ops st ~burst ~window ~pending_p:0.2 ops in
    let range = 1000 * ((nops / burst) + 1) in
    let h = if Random.State.int st 10 < 7 then perturb st fam ~range h else h in
    let cond = conds.(Random.State.int st (Array.length conds)) in
    (* A perturbation can fuse segments past what the exact checker can
       decide cheaply, or craft a narrow-but-deep segment the search
       still chokes on; those histories are skipped (and counted — the
       skip rate must stay marginal or the battery loses its teeth). *)
    match
      with_alarm 1 (fun () ->
          try
            let e = exact_check ~max_segment:16 cond h in
            Some (e, accepts (stream_check cond h))
          with Invalid_argument _ -> None)
    with
    | None | Some None -> ()
    | Some (Some (e, s)) ->
        incr decided;
        if s <> e then
          Alcotest.failf
            "%s differential mismatch (iter %d, seed %d, %s): stream=%b \
             exact=%b@\n\
             %a"
            fam.fam_name iter seed
            (Lin.Order.condition_name cond)
            s e pp h
  done;
  Printf.printf "%s battery: %d/%d histories decided and agreed\n" fam.fam_name
    !decided count;
  if !decided * 10 < count * 8 then
    Alcotest.failf "%s battery: only %d/%d histories decided by the exact checker"
      fam.fam_name !decided count

let sw = [| Lin.Order.Strong; Lin.Order.Weak |]
let all_conds = [| Lin.Order.Strong; Lin.Order.Medium; Lin.Order.Weak |]
let exq ~max_segment cond h = CQ.check_segmented ~max_segment cond h
let exs ~max_segment cond h = CS.check_segmented ~max_segment cond h
let exm ~max_segment cond h = CM.check_segmented ~max_segment cond h

let test_battery_queue () =
  battery ~count:1300 ~seed:0xbeef ~conds:sw ~objs:1 queue_fam
    ~stream_check:Stream.check_queue_history ~exact_check:exq
    ~pp:CQ.pp_history ();
  battery ~count:700 ~seed:0xbee2 ~conds:sw ~objs:2 queue_fam
    ~stream_check:Stream.check_queue_history ~exact_check:exq
    ~pp:CQ.pp_history ()

let test_battery_queue_medium () =
  (* Medium routes to the exact fallback on the streaming side; agreement
     is then by construction, but the plumbing (condition dispatch,
     per-object split suppression) is what this exercises. *)
  battery ~count:500 ~seed:0xfeed ~conds:all_conds ~objs:1 queue_fam
    ~stream_check:Stream.check_queue_history ~exact_check:exq
    ~pp:CQ.pp_history ()

let test_battery_stack () =
  battery ~count:1300 ~seed:0xcafe ~conds:sw ~objs:1 stack_fam
    ~stream_check:Stream.check_stack_history ~exact_check:exs
    ~pp:CS.pp_history ();
  battery ~count:700 ~seed:0xcaf2 ~conds:sw ~objs:2 stack_fam
    ~stream_check:Stream.check_stack_history ~exact_check:exs
    ~pp:CS.pp_history ()

let test_battery_stack_medium () =
  battery ~count:450 ~seed:0xdead ~conds:all_conds ~objs:1 stack_fam
    ~stream_check:Stream.check_stack_history ~exact_check:exs
    ~pp:CS.pp_history ()

let test_battery_map () =
  battery ~count:550 ~seed:0x3a91 ~conds:sw ~objs:2 map_fam
    ~stream_check:Stream.check_map_history ~exact_check:exm
    ~pp:CM.pp_history ()

(* --------------------------- mutation tests --------------------------- *)

(* Sequential full-drain queue base: enq 1..4 then deq 1..4, disjoint
   stamp blocks — feed order is entry order, so expected indices are easy
   to read off. *)
let seq_queue_base () =
  let e k op = entry op ~c:((10 * k) + 10, (10 * k) + 15) ~e:((10 * k) + 16, (10 * k) + 18) () in
  [|
    e 0 (QS.Enq 1); e 1 (QS.Enq 2); e 2 (QS.Enq 3); e 3 (QS.Enq 4);
    e 4 (QS.Deq (Some 1)); e 5 (QS.Deq (Some 2)); e 6 (QS.Deq (Some 3));
    e 7 (QS.Deq (Some 4));
  |]

let contains s frag =
  let n = String.length s and m = String.length frag in
  let rec go i = i + m <= n && (String.sub s i m = frag || go (i + 1)) in
  go 0

let reject_at name cond check h ~index ~reason_frag =
  match check cond h with
  | Stream.Accept -> Alcotest.failf "%s: expected rejection" name
  | Stream.Reject { index = i; reason } ->
      Alcotest.(check int) (name ^ " index") index i;
      if not (contains reason reason_frag) then
        Alcotest.failf "%s: reason %S lacks %S" name reason reason_frag

let test_mutation_swap () =
  (* swap the values of deq(1) and deq(2): fifo crossing, completed when
     deq(1)'s pair completes at feed index 5 *)
  let h = seq_queue_base () in
  let swap i j =
    let vi = h.(i).H.op and vj = h.(j).H.op in
    h.(i) <- { (h.(i)) with H.op = vj };
    h.(j) <- { (h.(j)) with H.op = vi }
  in
  swap 4 5;
  Alcotest.(check bool) "exact rejects too" false (CQ.check_segmented Lin.Order.Weak h);
  reject_at "swap deqs" Lin.Order.Weak Stream.check_queue_history h ~index:5
    ~reason_frag:"fifo";
  reject_at "swap deqs (strong)" Lin.Order.Strong Stream.check_queue_history h
    ~index:5 ~reason_frag:"fifo"

let test_mutation_reorder () =
  (* move enq(3) after its own deq: the pair completes, eagerly, when the
     displaced enq arrives last in the feed (index 7) *)
  let h = seq_queue_base () in
  h.(2) <-
    { (h.(2)) with H.create_inv = 100; create_res = 105; eval_inv = Some 106; eval_res = Some 108 };
  Alcotest.(check bool) "exact rejects too" false (CQ.check_segmented Lin.Order.Weak h);
  reject_at "reorder pair" Lin.Order.Weak Stream.check_queue_history h ~index:7
    ~reason_frag:"completed before"

let test_mutation_drop () =
  (* drop deq(2): value 2 is stuck behind value 3's dequeue; the earliest
     complete witness is (2,3), final event deq(3) at feed index 5 *)
  let h0 = seq_queue_base () in
  let h = Array.of_list (List.filteri (fun i _ -> i <> 5) (Array.to_list h0)) in
  Alcotest.(check bool) "exact rejects too" false (CQ.check_segmented Lin.Order.Weak h);
  reject_at "drop deq" Lin.Order.Weak Stream.check_queue_history h ~index:5
    ~reason_frag:"never dequeued"

let test_mutation_empty () =
  let e k op = entry op ~c:((10 * k) + 10, (10 * k) + 15) ~e:((10 * k) + 16, (10 * k) + 18) () in
  let h = [| e 0 (QS.Enq 1); e 1 (QS.Deq None); e 2 (QS.Deq (Some 1)) |] in
  Alcotest.(check bool) "exact rejects too" false (CQ.check_segmented Lin.Order.Weak h);
  reject_at "empty deq" Lin.Order.Weak Stream.check_queue_history h ~index:2
    ~reason_frag:"empty"

let test_mutation_stack_swap () =
  (* nested push1 push2 pop2 pop1; swapping the pop values makes a lifo
     crossing completed at pop(2)'s new slot, feed index 3 *)
  let e k op = entry op ~c:((10 * k) + 10, (10 * k) + 15) ~e:((10 * k) + 16, (10 * k) + 18) () in
  let h =
    [| e 0 (SS.Push 1); e 1 (SS.Push 2); e 2 (SS.Pop (Some 1)); e 3 (SS.Pop (Some 2)) |]
  in
  Alcotest.(check bool) "exact rejects too" false (CS.check_segmented Lin.Order.Weak h);
  reject_at "swap pops" Lin.Order.Weak Stream.check_stack_history h ~index:3
    ~reason_frag:"lifo"

let test_mutation_double_deq () =
  let h = seq_queue_base () in
  h.(5) <- { (h.(5)) with H.op = QS.Deq (Some 1) };
  Alcotest.(check bool) "exact rejects too" false (CQ.check_segmented Lin.Order.Weak h);
  reject_at "double deq" Lin.Order.Weak Stream.check_queue_history h ~index:5
    ~reason_frag:"twice"

(* ------------------------- monitor API edges ------------------------- *)

let test_monitor_api () =
  let m = Stream.create Stream.Fifo in
  Alcotest.(check bool) "empty monitor accepts" true (accepts (Stream.finalize m));
  Alcotest.(check bool) "finalize idempotent" true (accepts (Stream.finalize m));
  (try
     Stream.feed m ~start:0 ~stop:1 (Stream.Add 1);
     Alcotest.fail "feed after finalize should raise"
   with Invalid_argument _ -> ());
  let m = Stream.create Stream.Fifo in
  Stream.feed m ~start:0 ~stop:10 (Stream.Add 1);
  (try
     Stream.feed m ~start:0 ~stop:5 (Stream.Add 2);
     Alcotest.fail "out-of-order feed should raise"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "events counted" 1 (Stream.events m)

let test_medium_needs_fallback () =
  (* legal under weak (the enq intervals overlap), illegal under medium
     (program order restores enq(1) ≺ enq(2)): documents why Medium
     cannot use the interval-order certificates *)
  let h =
    [|
      entry ~thread:0 (QS.Enq 1) ~c:(0, 1) ~e:(50, 60) ();
      entry ~thread:0 (QS.Enq 2) ~c:(2, 3) ~e:(4, 5) ();
      entry ~thread:1 (QS.Deq (Some 2)) ~c:(6, 7) ~e:(8, 9) ();
      entry ~thread:1 (QS.Deq (Some 1)) ~c:(10, 11) ~e:(12, 13) ();
    |]
  in
  Alcotest.(check bool) "weak exact accepts" true (CQ.check_segmented Lin.Order.Weak h);
  Alcotest.(check bool) "weak stream accepts" true
    (accepts (Stream.check_queue_history Lin.Order.Weak h));
  Alcotest.(check bool) "medium exact rejects" false
    (CQ.check_segmented Lin.Order.Medium h);
  Alcotest.(check bool) "medium stream rejects" false
    (accepts (Stream.check_queue_history Lin.Order.Medium h))

let test_duplicate_values_fall_back () =
  (* two enq(5) both dequeued — illegal for the certificate, legal for
     the structure; the front-end must route to the exact checker *)
  let e k op = entry op ~c:((10 * k) + 10, (10 * k) + 15) ~e:((10 * k) + 16, (10 * k) + 18) () in
  let h =
    [| e 0 (QS.Enq 5); e 1 (QS.Enq 5); e 2 (QS.Deq (Some 5)); e 3 (QS.Deq (Some 5)) |]
  in
  Alcotest.(check bool) "exact accepts" true (CQ.check_segmented Lin.Order.Weak h);
  Alcotest.(check bool) "stream accepts via fallback" true
    (accepts (Stream.check_queue_history Lin.Order.Weak h))

let () =
  Alcotest.run "stream"
    [
      ( "differential",
        [
          Alcotest.test_case "queue strong/weak" `Quick test_battery_queue;
          Alcotest.test_case "queue medium fallback" `Quick test_battery_queue_medium;
          Alcotest.test_case "stack strong/weak" `Quick test_battery_stack;
          Alcotest.test_case "stack medium fallback" `Quick test_battery_stack_medium;
          Alcotest.test_case "map fallback" `Quick test_battery_map;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "swap matched deqs" `Quick test_mutation_swap;
          Alcotest.test_case "reorder matched pair" `Quick test_mutation_reorder;
          Alcotest.test_case "drop a dequeue" `Quick test_mutation_drop;
          Alcotest.test_case "illegal empty deq" `Quick test_mutation_empty;
          Alcotest.test_case "stack pop swap" `Quick test_mutation_stack_swap;
          Alcotest.test_case "double dequeue" `Quick test_mutation_double_deq;
        ] );
      ( "api",
        [
          Alcotest.test_case "monitor edges" `Quick test_monitor_api;
          Alcotest.test_case "medium needs fallback" `Quick test_medium_needs_fallback;
          Alcotest.test_case "duplicate values fall back" `Quick
            test_duplicate_values_fall_back;
        ] );
    ]
