(* Tests for the sequential substrate: stack, queue, sorted list set.
   Unit tests plus qcheck model-based properties. *)

module IntList = Seqds.Seq_list.Make (struct
  type t = int

  let compare = Int.compare
end)

(* ---------------------------- Seq_stack ----------------------------- *)

let test_stack_lifo () =
  let s = Seqds.Seq_stack.create () in
  Alcotest.(check bool) "empty" true (Seqds.Seq_stack.is_empty s);
  Seqds.Seq_stack.push s 1;
  Seqds.Seq_stack.push s 2;
  Seqds.Seq_stack.push s 3;
  Alcotest.(check int) "length" 3 (Seqds.Seq_stack.length s);
  Alcotest.(check (option int)) "top" (Some 3) (Seqds.Seq_stack.top s);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Seqds.Seq_stack.pop s);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Seqds.Seq_stack.pop s);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Seqds.Seq_stack.pop s);
  Alcotest.(check (option int)) "pop empty" None (Seqds.Seq_stack.pop s)

let test_stack_push_list_order () =
  let s = Seqds.Seq_stack.create () in
  Seqds.Seq_stack.push_list s [ 1; 2; 3 ];
  (* 1 pushed first, 3 on top *)
  Alcotest.(check (list int)) "top-first" [ 3; 2; 1 ]
    (Seqds.Seq_stack.to_list s)

let test_stack_pop_many () =
  let s = Seqds.Seq_stack.create () in
  Seqds.Seq_stack.push_list s [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "pop 2" [ 4; 3 ] (Seqds.Seq_stack.pop_many s 2);
  Alcotest.(check (list int)) "pop beyond" [ 2; 1 ]
    (Seqds.Seq_stack.pop_many s 10);
  Alcotest.(check (list int)) "pop empty" [] (Seqds.Seq_stack.pop_many s 1);
  Alcotest.check_raises "negative"
    (Invalid_argument "Seq_stack.pop_many: negative count") (fun () ->
      ignore (Seqds.Seq_stack.pop_many s (-1)))

let prop_stack_model =
  QCheck.Test.make ~name:"seq_stack matches list model" ~count:500
    QCheck.(list (pair bool small_int))
    (fun script ->
      let s = Seqds.Seq_stack.create () in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Seqds.Seq_stack.push s v;
            model := v :: !model;
            true
          end
          else
            let expected =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            Seqds.Seq_stack.pop s = expected)
        script
      && Seqds.Seq_stack.to_list s = !model)

(* ---------------------------- Seq_queue ----------------------------- *)

let test_queue_fifo () =
  let q = Seqds.Seq_queue.create () in
  Alcotest.(check bool) "empty" true (Seqds.Seq_queue.is_empty q);
  Seqds.Seq_queue.enqueue q 1;
  Seqds.Seq_queue.enqueue q 2;
  Seqds.Seq_queue.enqueue q 3;
  Alcotest.(check (option int)) "peek" (Some 1) (Seqds.Seq_queue.peek q);
  Alcotest.(check (option int)) "deq 1" (Some 1) (Seqds.Seq_queue.dequeue q);
  Seqds.Seq_queue.enqueue q 4;
  Alcotest.(check (option int)) "deq 2" (Some 2) (Seqds.Seq_queue.dequeue q);
  Alcotest.(check (option int)) "deq 3" (Some 3) (Seqds.Seq_queue.dequeue q);
  Alcotest.(check (option int)) "deq 4" (Some 4) (Seqds.Seq_queue.dequeue q);
  Alcotest.(check (option int)) "deq empty" None (Seqds.Seq_queue.dequeue q)

let test_queue_bulk () =
  let q = Seqds.Seq_queue.create () in
  Seqds.Seq_queue.enqueue_list q [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "snapshot" [ 1; 2; 3; 4; 5 ]
    (Seqds.Seq_queue.to_list q);
  Alcotest.(check (list int)) "deq 3" [ 1; 2; 3 ]
    (Seqds.Seq_queue.dequeue_many q 3);
  Alcotest.(check (list int)) "deq beyond" [ 4; 5 ]
    (Seqds.Seq_queue.dequeue_many q 99);
  Alcotest.check_raises "negative"
    (Invalid_argument "Seq_queue.dequeue_many: negative count") (fun () ->
      ignore (Seqds.Seq_queue.dequeue_many q (-2)))

let prop_queue_model =
  QCheck.Test.make ~name:"seq_queue matches list model" ~count:500
    QCheck.(list (pair bool small_int))
    (fun script ->
      let q = Seqds.Seq_queue.create () in
      let model = ref [] in
      List.for_all
        (fun (is_enq, v) ->
          if is_enq then begin
            Seqds.Seq_queue.enqueue q v;
            model := !model @ [ v ];
            true
          end
          else
            let expected =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            Seqds.Seq_queue.dequeue q = expected)
        script
      && Seqds.Seq_queue.to_list q = !model)

(* ----------------------------- Seq_list ----------------------------- *)

let test_list_set_semantics () =
  let l = IntList.create () in
  Alcotest.(check bool) "empty" true (IntList.is_empty l);
  Alcotest.(check bool) "insert 5" true (IntList.insert l 5);
  Alcotest.(check bool) "insert 5 again" false (IntList.insert l 5);
  Alcotest.(check bool) "insert 3" true (IntList.insert l 3);
  Alcotest.(check bool) "insert 8" true (IntList.insert l 8);
  Alcotest.(check (list int)) "sorted" [ 3; 5; 8 ] (IntList.to_list l);
  Alcotest.(check bool) "contains 5" true (IntList.contains l 5);
  Alcotest.(check bool) "contains 4" false (IntList.contains l 4);
  Alcotest.(check bool) "remove 5" true (IntList.remove l 5);
  Alcotest.(check bool) "remove 5 again" false (IntList.remove l 5);
  Alcotest.(check (list int)) "after remove" [ 3; 8 ] (IntList.to_list l);
  Alcotest.(check int) "length" 2 (IntList.length l)

let test_list_cursor_single_traversal () =
  let l = IntList.create () in
  List.iter (fun k -> ignore (IntList.insert l k)) [ 10; 20; 30; 40 ];
  let c = IntList.cursor l in
  Alcotest.(check bool) "seek_contains 10" true (IntList.seek_contains c 10);
  Alcotest.(check bool) "seek_insert 25" true (IntList.seek_insert c 25);
  Alcotest.(check bool) "seek_remove 30" true (IntList.seek_remove c 30);
  Alcotest.(check bool) "seek_contains 35" false (IntList.seek_contains c 35);
  Alcotest.(check bool) "seek_insert 40 dup" false (IntList.seek_insert c 40);
  Alcotest.(check (list int)) "final" [ 10; 20; 25; 40 ] (IntList.to_list l)

let test_list_cursor_monotonicity () =
  let l = IntList.create () in
  ignore (IntList.insert l 10);
  let c = IntList.cursor l in
  ignore (IntList.seek_contains c 10);
  Alcotest.check_raises "backwards seek"
    (Invalid_argument "Seq_list: cursor keys must be non-decreasing")
    (fun () -> ignore (IntList.seek_contains c 5))

let test_list_cursor_equal_keys_ok () =
  let l = IntList.create () in
  let c = IntList.cursor l in
  Alcotest.(check bool) "insert 7" true (IntList.seek_insert c 7);
  Alcotest.(check bool) "remove 7" true (IntList.seek_remove c 7);
  Alcotest.(check bool) "insert 7 again" true (IntList.seek_insert c 7);
  Alcotest.(check (list int)) "content" [ 7 ] (IntList.to_list l)

let test_list_boundaries () =
  let l = IntList.create () in
  Alcotest.(check bool) "insert min_int" true (IntList.insert l min_int);
  Alcotest.(check bool) "insert max_int" true (IntList.insert l max_int);
  Alcotest.(check bool) "insert 0" true (IntList.insert l 0);
  Alcotest.(check (list int)) "sorted extremes" [ min_int; 0; max_int ]
    (IntList.to_list l);
  Alcotest.(check bool) "remove head" true (IntList.remove l min_int);
  Alcotest.(check (list int)) "head removed" [ 0; max_int ]
    (IntList.to_list l)

let prop_list_model =
  QCheck.Test.make ~name:"seq_list matches Set model" ~count:500
    QCheck.(list (pair (int_bound 2) (int_bound 30)))
    (fun script ->
      let module IS = Set.Make (Int) in
      let l = IntList.create () in
      let model = ref IS.empty in
      List.for_all
        (fun (kind, k) ->
          match kind with
          | 0 ->
              let expected = not (IS.mem k !model) in
              model := IS.add k !model;
              IntList.insert l k = expected
          | 1 ->
              let expected = IS.mem k !model in
              model := IS.remove k !model;
              IntList.remove l k = expected
          | _ -> IntList.contains l k = IS.mem k !model)
        script
      && IntList.to_list l = IS.elements !model)

let prop_list_sorted_batch_equals_individual =
  QCheck.Test.make
    ~name:"cursor batch application == individual operations" ~count:300
    QCheck.(pair (list (int_bound 30)) (list (pair (int_bound 2) (int_bound 30))))
    (fun (init, batch) ->
      (* Apply a key-sorted batch through one cursor vs. fresh searches. *)
      let build () =
        let l = IntList.create () in
        List.iter (fun k -> ignore (IntList.insert l k)) init;
        l
      in
      let sorted =
        List.stable_sort (fun (_, k1) (_, k2) -> compare k1 k2) batch
      in
      let l1 = build () and l2 = build () in
      let c = IntList.cursor l1 in
      let r1 =
        List.map
          (fun (kind, k) ->
            match kind with
            | 0 -> IntList.seek_insert c k
            | 1 -> IntList.seek_remove c k
            | _ -> IntList.seek_contains c k)
          sorted
      in
      let r2 =
        List.map
          (fun (kind, k) ->
            match kind with
            | 0 -> IntList.insert l2 k
            | 1 -> IntList.remove l2 k
            | _ -> IntList.contains l2 k)
          sorted
      in
      r1 = r2 && IntList.to_list l1 = IntList.to_list l2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "seqds"
    [
      ( "seq_stack",
        [
          Alcotest.test_case "lifo" `Quick test_stack_lifo;
          Alcotest.test_case "push_list order" `Quick
            test_stack_push_list_order;
          Alcotest.test_case "pop_many" `Quick test_stack_pop_many;
        ]
        @ qsuite [ prop_stack_model ] );
      ( "seq_queue",
        [
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "bulk ops" `Quick test_queue_bulk;
        ]
        @ qsuite [ prop_queue_model ] );
      ( "seq_list",
        [
          Alcotest.test_case "set semantics" `Quick test_list_set_semantics;
          Alcotest.test_case "cursor single traversal" `Quick
            test_list_cursor_single_traversal;
          Alcotest.test_case "cursor monotonicity" `Quick
            test_list_cursor_monotonicity;
          Alcotest.test_case "cursor equal keys" `Quick
            test_list_cursor_equal_keys_ok;
          Alcotest.test_case "boundary keys" `Quick test_list_boundaries;
        ]
        @ qsuite [ prop_list_model; prop_list_sorted_batch_equals_individual ]
      );
    ]
