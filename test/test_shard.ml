(* Tests for the sharded FL store: the Bucket single-CAS ownership state
   machine, the Shard_map operation surface, degraded reads and
   lease-expiry recovery, a live two-domain ownership transfer, scripted
   owner/requester kills at each protocol fault point (shard.grant,
   shard.ship, shard.ack) with a hard no-hang deadline, and the
   refinement check against the centralized map spec. *)

module Future = Futures.Future
module B = Fl.Bucket

module Int_key = struct
  type t = int

  let compare = Int.compare
  let hash x = x
end

module SM = Fl.Shard_map.Make (Int_key)

let force = Future.force

(* Every test leaves the global injection state clean, even on failure. *)
let with_clean_faults f () =
  Fun.protect ~finally:Faults.clear_all (fun () ->
      Faults.clear_all ();
      f ())

(* Recovery bugs present as hangs (a flush spinning on a transfer nobody
   will complete), so the kill schedules run under a hard deadline from a
   monitor domain: a hang fails the test instead of wedging the suite. *)
let with_timeout ?(seconds = 60.0) label f =
  let result = Atomic.make None in
  let d =
    Domain.spawn (fun () ->
        let r = match f () with v -> Ok v | exception e -> Error e in
        Atomic.set result (Some r))
  in
  let deadline = Sync.Mono.now () +. seconds in
  let rec poll () =
    match Atomic.get result with
    | Some r -> (
        Domain.join d;
        match r with Ok v -> v | Error e -> raise e)
    | None ->
        if Sync.Mono.now () > deadline then
          Alcotest.failf "%s: no recovery within %.0fs (transfer hang)" label
            seconds
        else begin
          Unix.sleepf 0.002;
          poll ()
        end
  in
  poll ()

(* ------------------------------ bucket ------------------------------- *)

(* The full transfer protocol, one CAS at a time: acquire → renew →
   request → grant → ship → ack, with every wrong-party step refused and
   the epoch bumped exactly on the change of ownership. *)
let test_bucket_protocol () =
  let b : string B.t = B.create ~id:0 in
  (match B.state b with
  | B.Free 0 -> ()
  | _ -> Alcotest.fail "fresh bucket not Free at epoch 0");
  Alcotest.(check bool) "acquire" true (B.try_acquire b ~me:1 ~lease:60.0);
  Alcotest.(check bool) "second acquire refused" false
    (B.try_acquire b ~me:2 ~lease:60.0);
  (match B.state b with
  | B.Owned { owner = 1; epoch = 0; _ } -> ()
  | _ -> Alcotest.fail "not owned by 1 at epoch 0");
  Alcotest.(check bool) "renew" true (B.try_renew b ~me:1 ~lease:60.0);
  Alcotest.(check bool) "renew by non-owner refused" false
    (B.try_renew b ~me:2 ~lease:60.0);
  Alcotest.(check bool) "request own bucket refused" false
    (B.try_request b ~me:1);
  Alcotest.(check bool) "request" true (B.try_request b ~me:2);
  Alcotest.(check bool) "in flight" true (B.in_flight (B.state b));
  Alcotest.(check bool) "second requester refused" false
    (B.try_request b ~me:3);
  (* An owner with a pending request must grant, not renew. *)
  Alcotest.(check bool) "renew while requested refused" false
    (B.try_renew b ~me:1 ~lease:60.0);
  Alcotest.(check bool) "grant by non-owner refused" false
    (B.try_grant b ~me:2 ~timeout:60.0);
  Alcotest.(check bool) "grant" true (B.try_grant b ~me:1 ~timeout:60.0);
  Alcotest.(check bool) "ship by non-granter refused" false
    (B.try_ship b ~me:2 ~pkg:"w");
  Alcotest.(check bool) "ship" true (B.try_ship b ~me:1 ~pkg:"w");
  Alcotest.(check bool) "ack by non-target refused" true
    (B.try_ack b ~me:1 ~lease:60.0 = None);
  (match B.try_ack b ~me:2 ~lease:60.0 with
  | Some "w" -> ()
  | _ -> Alcotest.fail "ack did not return the shipped package");
  Alcotest.(check bool) "package taken exactly once" true
    (B.try_ack b ~me:2 ~lease:60.0 = None);
  (match B.state b with
  | B.Owned { owner = 2; epoch = 1; _ } -> ()
  | _ -> Alcotest.fail "ack did not hand ownership to 2 at epoch 1");
  Alcotest.(check bool) "live state not recoverable" true
    (B.try_recover b ~me:3 ~lease:60.0 = None)

(* A dead owner stops renewing: once the deadline passes, any handle may
   usurp, and a package nobody acked comes back to the recoverer. *)
let test_bucket_expiry_recovery () =
  let b : int list B.t = B.create ~id:1 in
  Alcotest.(check bool) "acquire" true (B.try_acquire b ~me:1 ~lease:0.001);
  Unix.sleepf 0.01;
  Alcotest.(check bool) "lease expired" true
    (B.expired ~now:(Sync.Mono.now ()) (B.state b));
  (match B.try_recover b ~me:2 ~lease:60.0 with
  | Some { B.lost = None } -> ()
  | _ -> Alcotest.fail "recover of an expired lease must return no package");
  (match B.state b with
  | B.Owned { owner = 2; epoch = 1; _ } -> ()
  | _ -> Alcotest.fail "recovery did not take ownership at epoch 1");
  (* Shipped and lost: grant with a tiny transfer deadline, ship, let it
     expire, and recover as a third party — the in-flight window must be
     returned so its futures can be poisoned, never dropped. *)
  Alcotest.(check bool) "request" true (B.try_request b ~me:3);
  Alcotest.(check bool) "grant" true (B.try_grant b ~me:2 ~timeout:0.001);
  Alcotest.(check bool) "ship" true (B.try_ship b ~me:2 ~pkg:[ 7 ]);
  Unix.sleepf 0.01;
  (match B.try_recover b ~me:4 ~lease:60.0 with
  | Some { B.lost = Some [ 7 ] } -> ()
  | _ -> Alcotest.fail "recover of an expired ship must return the package");
  (match B.state b with
  | B.Owned { owner = 4; epoch = 2; _ } -> ()
  | _ -> Alcotest.fail "shipped recovery did not take ownership at epoch 2");
  Alcotest.(check bool) "settled" true (not (B.in_flight (B.state b)))

(* ----------------------------- shard map ----------------------------- *)

let test_shard_basic () =
  let m : int SM.t = SM.create ~buckets:4 () in
  let h = SM.handle m in
  let f1 = SM.insert h 5 50 in
  let f2 = SM.find h 5 in
  let f3 = SM.insert h 5 55 in
  let f4 = SM.remove h 5 in
  Alcotest.(check int) "pending" 4 (SM.pending_count h);
  Alcotest.(check bool) "created" true (force f1);
  Alcotest.(check (option int)) "found" (Some 50) (force f2);
  Alcotest.(check bool) "bind-once refused" false (force f3);
  Alcotest.(check (option int)) "removed original" (Some 50) (force f4);
  Alcotest.(check int) "drained" 0 (SM.pending_count h);
  Alcotest.(check int) "empty" 0 (SM.size m)

let test_shard_bindings () =
  let m : int SM.t = SM.create ~buckets:2 () in
  let h = SM.handle m in
  List.iter (fun k -> ignore (SM.insert h k (k * 10) : bool Future.t))
    [ 9; 1; 5; 3; 7 ];
  SM.flush h;
  Alcotest.(check (list (pair int int)))
    "ascending across buckets"
    [ (1, 10); (3, 30); (5, 50); (7, 70); (9, 90) ]
    (SM.bindings m);
  Alcotest.(check (option int)) "direct get" (Some 50) (SM.get m 5);
  Alcotest.(check int) "bucket count" 2 (SM.buckets m);
  Alcotest.(check int) "size" 5 (SM.size m)

(* One domain, two handles: A owns the only bucket and never services, so
   B's flush must serve its find in degraded read-only mode immediately,
   then wait out A's lease and recover — never hang, never lose its
   mutation. *)
let test_degraded_find_and_expiry_recovery () =
  let m : int SM.t =
    SM.create ~buckets:1 ~lease:0.02 ~grant_timeout:0.001 ()
  in
  let a = SM.handle m in
  ignore (SM.insert a 1 10 : bool Future.t);
  SM.flush a;
  let b = SM.handle m in
  let f_find = SM.find b 1 in
  let f_ins = SM.insert b 2 20 in
  with_timeout "degraded flush" (fun () -> SM.flush b);
  Alcotest.(check (option int)) "degraded find answered" (Some 10)
    (force f_find);
  Alcotest.(check bool) "mutation applied after recovery" true (force f_ins);
  Alcotest.(check (option int)) "segment untouched by recovery" (Some 10)
    (SM.get m 1);
  let s = SM.stats m in
  Alcotest.(check bool) "a request was issued" true (s.SM.requests >= 1);
  Alcotest.(check bool) "the find was served degraded" true
    (s.SM.degraded_finds >= 1);
  Alcotest.(check bool) "ownership recovered at lease expiry" true
    (s.SM.recovers >= 1)

(* Degraded reads during a shed window: with the overload controller at
   Shed and a bucket still owned by a handle that never services (in
   flight from the requester's point of view), finds that the admission
   gate lets through must be answered from the degraded read-only path —
   and both the store's stats and the global obs metrics must count
   them. *)
let test_degraded_find_during_shed_window () =
  let obs_was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled obs_was)
    (fun () ->
      let before = Obs.Metrics.snapshot () in
      let ov = Workload.Overload.create () in
      Workload.Overload.force_stage ov Workload.Overload.Shed;
      let m : int SM.t =
        SM.create ~buckets:1 ~lease:0.02 ~grant_timeout:0.001 ()
      in
      let a = SM.handle m in
      ignore (SM.insert a 1 10 : bool Future.t);
      SM.flush a;
      (* [a] owns the only bucket and goes quiet; [b]'s finds can only be
         answered degraded until the lease expires. *)
      let b = SM.handle m in
      let found = ref 0 in
      let shed = ref 0 in
      for _ = 1 to 100 do
        if Workload.Overload.admit ov then begin
          let f = SM.find b 1 in
          with_timeout "shed-window flush" (fun () -> SM.flush b);
          Alcotest.(check (option int)) "degraded find answered" (Some 10)
            (force f);
          incr found
        end
        else incr shed
      done;
      Alcotest.(check bool) "the window shed some arrivals" true (!shed > 0);
      Alcotest.(check bool) "admitted finds were served" true (!found > 0);
      (* Only finds inside the owner's lease are served degraded; once it
         expires, [b] recovers ownership and serves normally — so the
         counters need at least one degraded serve, not one per find. *)
      let s = SM.stats m in
      Alcotest.(check bool) "stats counted degraded serves" true
        (s.SM.degraded_finds >= 1);
      let d = Obs.Metrics.diff (Obs.Metrics.snapshot ()) before in
      Alcotest.(check bool) "obs counted degraded serves" true
        (d.Obs.Metrics.shard_degraded_finds >= 1);
      Alcotest.(check int) "obs and stats agree" s.SM.degraded_finds
        (d.Obs.Metrics.shard_degraded_finds);
      Alcotest.(check bool) "obs counted the sheds" true
        (d.Obs.Metrics.service_shed >= !shed))

(* Live transfer: the owner keeps servicing (flushing) while the second
   domain's flush routes request → grant → ship → ack; the transfer must
   complete by protocol, not by waiting out the lease. *)
let test_two_domain_transfer () =
  let m : int SM.t =
    SM.create ~buckets:2 ~lease:0.05 ~grant_timeout:0.001 ()
  in
  let owner_ready = Atomic.make false in
  let stop = Atomic.make false in
  let owner =
    Domain.spawn (fun () ->
        let h = SM.handle m in
        for k = 0 to 19 do
          ignore (SM.insert h k k : bool Future.t)
        done;
        SM.flush h;
        Atomic.set owner_ready true;
        while not (Atomic.get stop) do
          SM.flush h;
          Domain.cpu_relax ()
        done)
  in
  while not (Atomic.get owner_ready) do
    Domain.cpu_relax ()
  done;
  let b = SM.handle m in
  let f = SM.insert b 100 1000 in
  with_timeout "transfer flush" (fun () -> SM.flush b);
  Atomic.set stop true;
  Domain.join owner;
  Alcotest.(check bool) "cross-shard insert applied" true (force f);
  Alcotest.(check (option int)) "binding visible" (Some 1000) (SM.get m 100);
  let s = SM.stats m in
  Alcotest.(check bool) "transfer completed by ack" true (s.SM.acks >= 1);
  Alcotest.(check bool) "protocol counters monotone" true
    (s.SM.acks <= s.SM.ships
    && s.SM.ships <= s.SM.grants
    && s.SM.grants <= s.SM.requests);
  Alcotest.(check int) "nothing left in flight" 0 (SM.in_flight m)

(* ------------------------- kills per protocol step -------------------- *)

(* Owner killed at [shard.grant]: the request is never granted, the
   requester waits out the dead owner's lease and recovers, and its own
   operations still apply. The owner's segment data survives (transfers
   and recoveries move ownership only). *)
let test_kill_at_grant () =
  let m : int SM.t =
    SM.create ~buckets:1 ~lease:0.02 ~grant_timeout:0.001 ()
  in
  Faults.on "shard.grant" (fun k ->
      if k = 0 then Faults.Kill else Faults.Nothing);
  let owned = Atomic.make false in
  let stop = Atomic.make false in
  let victim_abandoned = Atomic.make (-1) in
  let victim =
    Domain.spawn (fun () ->
        let h = SM.handle m in
        ignore (SM.insert h 1 10 : bool Future.t);
        SM.flush h;
        Atomic.set owned true;
        try
          while not (Atomic.get stop) do
            SM.flush h;
            Domain.cpu_relax ()
          done
        with Faults.Killed _ -> Atomic.set victim_abandoned (SM.abandon h))
  in
  while not (Atomic.get owned) do
    Domain.cpu_relax ()
  done;
  let b = SM.handle m in
  let f = SM.insert b 2 20 in
  with_timeout "kill at grant" (fun () -> SM.flush b);
  Atomic.set stop true;
  Domain.join victim;
  Alcotest.(check bool) "victim was killed servicing the grant" true
    (Atomic.get victim_abandoned >= 0);
  Alcotest.(check bool) "requester's op applied after recovery" true (force f);
  Alcotest.(check (option int)) "owner's applied binding survives" (Some 10)
    (SM.get m 1);
  let s = SM.stats m in
  Alcotest.(check bool) "recovered by deadline" true (s.SM.recovers >= 1);
  Alcotest.(check int) "nothing left in flight" 0 (SM.in_flight m)

(* Owner killed at [shard.ship], with an un-applied window: the window
   stays with the dead owner (the fault point fires before the detach),
   so its abandon must poison the window's futures, and the requester
   recovers the expired Granted state and proceeds. *)
let test_kill_at_ship () =
  let m : int SM.t =
    SM.create ~buckets:1 ~lease:0.02 ~grant_timeout:0.001 ()
  in
  Faults.on "shard.ship" (fun k ->
      if k = 0 then Faults.Kill else Faults.Nothing);
  let owned = Atomic.make false in
  let stop = Atomic.make false in
  let victim_abandoned = Atomic.make (-1) in
  let last_fut : bool Future.t option Atomic.t = Atomic.make None in
  let victim =
    Domain.spawn (fun () ->
        let h = SM.handle m in
        ignore (SM.insert h 1 10 : bool Future.t);
        SM.flush h;
        Atomic.set owned true;
        try
          while not (Atomic.get stop) do
            (* Keep the window non-empty going into each flush, so a
               grant+ship services a real window, not an empty one. *)
            Atomic.set last_fut (Some (SM.insert h 1 10));
            SM.flush h;
            Domain.cpu_relax ()
          done
        with Faults.Killed _ -> Atomic.set victim_abandoned (SM.abandon h))
  in
  while not (Atomic.get owned) do
    Domain.cpu_relax ()
  done;
  let b = SM.handle m in
  let f = SM.insert b 2 20 in
  with_timeout "kill at ship" (fun () -> SM.flush b);
  Atomic.set stop true;
  Domain.join victim;
  Alcotest.(check bool) "abandon poisoned the un-shipped window" true
    (Atomic.get victim_abandoned >= 1);
  (match Atomic.get last_fut with
  | None -> Alcotest.fail "victim never issued its window op"
  | Some fo ->
      Alcotest.check_raises "window op raises Orphaned"
        (Future.Broken Future.Orphaned) (fun () -> ignore (force fo : bool));
      Alcotest.(check bool) "window op poisoned" true (Future.is_poisoned fo));
  Alcotest.(check bool) "requester's op applied after recovery" true (force f);
  let s = SM.stats m in
  Alcotest.(check bool) "grant happened before the kill" true
    (s.SM.grants >= 1);
  Alcotest.(check bool) "recovered by deadline" true (s.SM.recovers >= 1);
  Alcotest.(check int) "nothing left in flight" 0 (SM.in_flight m)

(* Requester killed at [shard.ack]: the package is stuck in Shipped with
   nobody to take it. The surviving owner (or any handle) must recover it
   by deadline and poison the lost window's futures — the exact
   lost-update the protocol exists to prevent. *)
let test_kill_at_ack () =
  let m : int SM.t =
    SM.create ~buckets:1 ~lease:0.02 ~grant_timeout:0.001 ()
  in
  Faults.on "shard.ack" (fun k ->
      if k = 0 then Faults.Kill else Faults.Nothing);
  let a = SM.handle m in
  ignore (SM.insert a 1 10 : bool Future.t);
  SM.flush a;
  let victim_done = Atomic.make false in
  let victim_fut : bool Future.t option Atomic.t = Atomic.make None in
  let victim =
    Domain.spawn (fun () ->
        let h = SM.handle m in
        (* A mutation: unlike a find (answerable degraded), it forces the
           victim to take ownership, so it must reach the ack step. *)
        let f = SM.insert h 2 20 in
        Atomic.set victim_fut (Some f);
        (try SM.flush h
         with Faults.Killed _ -> ignore (SM.abandon h : int));
        Atomic.set victim_done true)
  in
  (* Service the victim's request: keep the window non-empty so the ship
     carries real futures, which the recovery must poison. *)
  let deadline = Sync.Mono.now () +. 30.0 in
  while (not (Atomic.get victim_done)) && Sync.Mono.now () < deadline do
    ignore (SM.insert a 1 10 : bool Future.t);
    SM.flush a;
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "victim finished" true (Atomic.get victim_done);
  Domain.join victim;
  (* Drain whatever the kill left mid-transfer. *)
  let d = SM.handle m in
  let drain_deadline = Sync.Mono.now () +. 30.0 in
  while SM.in_flight m > 0 && Sync.Mono.now () < drain_deadline do
    ignore (SM.recover_all d : int);
    Unix.sleepf 0.0005
  done;
  Alcotest.(check int) "drained" 0 (SM.in_flight m);
  let s = SM.stats m in
  Alcotest.(check bool) "the window was shipped" true (s.SM.ships >= 1);
  Alcotest.(check bool) "recovery poisoned the lost window" true
    (s.SM.poisoned >= 1);
  Alcotest.(check bool) "recovered by deadline" true (s.SM.recovers >= 1);
  (match Atomic.get victim_fut with
  | None -> Alcotest.fail "victim never published its future"
  | Some f ->
      Alcotest.(check bool) "victim's orphaned op poisoned, not dropped" true
        (Future.is_poisoned f));
  Alcotest.(check (option int)) "victim's un-applied op never landed" None
    (SM.get m 2);
  Alcotest.(check (option int)) "applied data survives the lost window"
    (Some 10) (SM.get m 1)

(* ---------------------------- conformance ----------------------------- *)

(* Refinement: recorded multi-domain histories over the sharded store
   check against the centralized Map_spec — transfers, degraded reads and
   recoveries must all be invisible to the spec. *)
let test_shard_conformance () =
  let o = Conformance.check_shard_map ~rounds:6 () in
  (match o.Conformance.first_failure with
  | Some h -> Printf.eprintf "%s\n%!" h
  | None -> ());
  Alcotest.(check int) "refinement violations" 0 o.Conformance.violations

let () =
  Alcotest.run "shard"
    [
      ( "bucket",
        [
          Alcotest.test_case "transfer protocol, one CAS at a time" `Quick
            test_bucket_protocol;
          Alcotest.test_case "expiry recovery (lease and shipped)" `Quick
            test_bucket_expiry_recovery;
        ] );
      ( "shard-map",
        [
          Alcotest.test_case "basic ops" `Quick test_shard_basic;
          Alcotest.test_case "bindings across buckets" `Quick
            test_shard_bindings;
          Alcotest.test_case "degraded find + expiry recovery" `Quick
            test_degraded_find_and_expiry_recovery;
          Alcotest.test_case "degraded finds during a shed window" `Quick
            test_degraded_find_during_shed_window;
          Alcotest.test_case "two-domain transfer (2 domains)" `Slow
            test_two_domain_transfer;
        ] );
      ( "kills",
        [
          Alcotest.test_case "owner killed at shard.grant" `Slow
            (with_clean_faults test_kill_at_grant);
          Alcotest.test_case "owner killed at shard.ship" `Slow
            (with_clean_faults test_kill_at_ship);
          Alcotest.test_case "requester killed at shard.ack" `Slow
            (with_clean_faults test_kill_at_ack);
        ] );
      ( "conformance",
        [
          Alcotest.test_case "refines the centralized map spec" `Slow
            test_shard_conformance;
        ] );
    ]
