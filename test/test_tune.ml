(* Self-tuning runtime tests: the pure policy (per-kind lean rules, the
   hysteresis vote machine, clamping and the floor-at-one on halving) on
   synthetic observations, and the controller (telemetry-driven steps
   over real Obs metrics, kill tolerance at the "tune.epoch" fault
   point, idempotent stop). *)

module T = Fl.Tunable
module P = Tune.Policy
module C = Tune.Controller
module E = Obs.Event

let cfg = P.default (* min_ops = 64, hysteresis = 2 *)

let dir =
  Alcotest.testable
    (fun fmt d ->
      Format.pp_print_string fmt
        (match d with P.Up -> "Up" | P.Down -> "Down" | P.Hold -> "Hold"))
    ( = )

(* A synthetic observation: busy by default (past the idle gate),
   neutral on every signal unless overridden. *)
let obs ?(ops = 1_000) ?(slack_batch = 0.0) ?(force_p99_ns = 0)
    ?(pending_p50_ns = 0) ?(fc_batch = 0.0) ?(fc_passes = 0)
    ?(elim_attempts = 0) ?(elim_hit_rate = 0.0) ?(elim_wait_p99_ns = 0) () =
  {
    P.ops;
    slack_batch;
    force_p99_ns;
    pending_p50_ns;
    fc_batch;
    fc_passes;
    elim_attempts;
    elim_hit_rate;
    elim_wait_p99_ns;
  }

(* A dial over a plain ref cell, so tests watch exactly what the vote
   machine sets. *)
let cell_dial ?(kind = T.Slack_window) ?(lo = 1) ?(hi = 4096) init =
  let v = ref init in
  ( v,
    {
      T.kind;
      name = "test";
      lo;
      hi;
      get = (fun () -> !v);
      set = (fun n -> v := n);
    } )

(* ------------------------------ lean rules --------------------------- *)

let test_lean_slack () =
  let lean o = P.lean cfg T.Slack_window ~cur:8 ~hi:4096 o in
  Alcotest.check dir "idle epochs hold" P.Hold (lean (obs ~ops:10 ()));
  Alcotest.check dir "force latency over budget backs off" P.Down
    (lean (obs ~force_p99_ns:2_000_000 ~slack_batch:7.0 ()));
  Alcotest.check dir "pendingness over budget backs off full windows" P.Down
    (lean (obs ~pending_p50_ns:2_000_000 ~slack_batch:7.0 ()));
  Alcotest.check dir "windows draining full widen" P.Up
    (lean (obs ~slack_batch:7.0 ()));
  Alcotest.check dir "windows draining empty shrink" P.Down
    (lean (obs ~slack_batch:1.0 ()));
  Alcotest.check dir "mid fill holds" P.Hold (lean (obs ~slack_batch:4.0 ()))

let test_lean_fc () =
  let lean_budget o = P.lean cfg T.Fc_pass_budget ~cur:4 ~hi:64 o in
  Alcotest.check dir "no passes hold" P.Hold
    (lean_budget (obs ~fc_batch:9.0 ()));
  Alcotest.check dir "fat passes raise the budget" P.Up
    (lean_budget (obs ~fc_passes:10 ~fc_batch:3.0 ()));
  Alcotest.check dir "thin passes lower it" P.Down
    (lean_budget (obs ~fc_passes:10 ~fc_batch:1.0 ()));
  let lean_scan ~cur o = P.lean cfg T.Fc_scan_limit ~cur ~hi:1024 o in
  Alcotest.check dir "unlimited scan shrinks toward the batch" P.Down
    (lean_scan ~cur:0 (obs ~fc_passes:10 ~fc_batch:4.0 ()));
  Alcotest.check dir "scan limit under the batch grows" P.Up
    (lean_scan ~cur:8 (obs ~fc_passes:10 ~fc_batch:8.0 ()));
  Alcotest.check dir "scan limit near target holds" P.Hold
    (lean_scan ~cur:16 (obs ~fc_passes:10 ~fc_batch:4.0 ()));
  Alcotest.check dir "light combining climbs back toward unbounded" P.Up
    (lean_scan ~cur:16 (obs ~fc_passes:10 ~fc_batch:1.0 ()))

let test_lean_elim () =
  let lean_max o = P.lean cfg T.Elim_max_width ~cur:4 ~hi:16 o in
  Alcotest.check dir "few attempts hold" P.Hold
    (lean_max (obs ~elim_attempts:10 ~elim_hit_rate:0.9 ()));
  Alcotest.check dir "hot hit rate widens" P.Up
    (lean_max (obs ~elim_attempts:500 ~elim_hit_rate:0.5 ()));
  Alcotest.check dir "long parked waits veto widening" P.Hold
    (lean_max
       (obs ~elim_attempts:500 ~elim_hit_rate:0.5
          ~elim_wait_p99_ns:1_000_000 ()));
  Alcotest.check dir "cold hit rate narrows" P.Down
    (lean_max (obs ~elim_attempts:500 ~elim_hit_rate:0.01 ()));
  Alcotest.check dir "floor ignores the wait guard" P.Up
    (P.lean cfg T.Elim_min_width ~cur:2 ~hi:16
       (obs ~elim_attempts:500 ~elim_hit_rate:0.5 ~elim_wait_p99_ns:1_000_000
          ()))

(* --------------------------- vote machine ---------------------------- *)

let up_obs = obs ~slack_batch:100.0 ()
let down_obs = obs ~slack_batch:0.5 ()
let hold_obs = obs ~slack_batch:4.0 ()

let test_decide_step_up () =
  let v, dial = cell_dial 8 in
  let votes = P.new_votes () in
  Alcotest.(check (option int))
    "first leaning epoch only votes" None
    (P.decide cfg dial votes up_obs);
  Alcotest.(check (option int))
    "second consecutive epoch doubles" (Some 16)
    (P.decide cfg dial votes up_obs);
  v := 16;
  Alcotest.(check (option int))
    "streak restarts after a move" None
    (P.decide cfg dial votes up_obs)

let test_decide_step_down () =
  let v, dial = cell_dial 8 in
  let votes = P.new_votes () in
  Alcotest.(check (option int)) "vote" None (P.decide cfg dial votes down_obs);
  Alcotest.(check (option int))
    "second epoch halves" (Some 4)
    (P.decide cfg dial votes down_obs);
  ignore !v

let test_decide_no_flap () =
  let _, dial = cell_dial 8 in
  let votes = P.new_votes () in
  (* Alternating lean and neutral epochs: the streak keeps resetting, so
     the dial never moves. *)
  for _ = 1 to 4 do
    Alcotest.(check (option int))
      "leaning epoch alone never fires" None
      (P.decide cfg dial votes up_obs);
    Alcotest.(check (option int))
      "neutral epoch resets the streak" None
      (P.decide cfg dial votes hold_obs)
  done;
  (* An opposing epoch resets too: Up, Down, Down fires Down — the Up
     vote died the moment the evidence flipped. *)
  Alcotest.(check (option int)) "up vote" None (P.decide cfg dial votes up_obs);
  Alcotest.(check (option int))
    "opposing vote resets" None
    (P.decide cfg dial votes down_obs);
  Alcotest.(check (option int))
    "second down fires" (Some 4)
    (P.decide cfg dial votes down_obs)

let test_decide_clamps () =
  (* At the ceiling, a sustained Up streak is a no-op, not an overflow. *)
  let _, dial = cell_dial ~hi:8 8 in
  let votes = P.new_votes () in
  Alcotest.(check (option int)) "vote" None (P.decide cfg dial votes up_obs);
  Alcotest.(check (option int))
    "clamped at hi" None
    (P.decide cfg dial votes up_obs);
  (* Halving floors at 1 even when the dial's range includes 0: for the
     scan limit 0 means unlimited, a maximal setting. *)
  let _, dial = cell_dial ~kind:T.Fc_pass_budget ~lo:0 1 in
  let votes = P.new_votes () in
  let thin = obs ~fc_passes:10 ~fc_batch:1.0 () in
  Alcotest.(check (option int)) "vote" None (P.decide cfg dial votes thin);
  Alcotest.(check (option int))
    "halving never falls to 0" None
    (P.decide cfg dial votes thin)

(* ----------------------------- controller ---------------------------- *)

(* Leave the global recorder as found: same discipline as test_obs. *)
let fresh f () =
  let stride = Obs.sample_every () in
  let was = Obs.enabled () in
  Obs.set_sample_every 1;
  Obs.set_enabled true;
  Obs.Metrics.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.set_enabled was;
      Obs.set_sample_every stride;
      Obs.Metrics.reset ())

(* Manual stepping: synthesize combining telemetry between epochs and
   watch the controller double the pass budget off the live diff. *)
let test_controller_steps () =
  let ctl = C.create () in
  let v, dial = cell_dial ~kind:T.Fc_pass_budget ~lo:1 ~hi:64 1 in
  C.add_dial ctl dial;
  Alcotest.(check int) "dial registered" 1 (C.dial_count ctl);
  let emit () =
    for _ = 1 to 10 do
      Obs.splice ~kind:E.k_fc_pass ~n:8
    done
  in
  emit ();
  C.step ctl;
  Alcotest.(check int) "one leaning epoch: no move yet" 1 !v;
  emit ();
  C.step ctl;
  Alcotest.(check int) "second epoch: budget doubled" 2 !v;
  C.step ctl;
  Alcotest.(check int) "idle epoch: untouched" 2 !v;
  Alcotest.(check int) "epochs counted" 3 (C.epochs ctl);
  Alcotest.(check int) "decisions counted" 1 (C.decisions ctl);
  Alcotest.(check int) "no errors" 0 (C.errors ctl)

(* A dial whose setter raises must cost one error, not the epoch loop:
   the healthy dial beside it still moves. *)
let test_controller_bad_dial () =
  let ctl = C.create () in
  let v, good = cell_dial ~kind:T.Fc_pass_budget ~lo:1 ~hi:64 1 in
  let bad =
    {
      T.kind = T.Fc_pass_budget;
      name = "bad";
      lo = 1;
      hi = 64;
      get = (fun () -> failwith "torn down");
      set = (fun _ -> ());
    }
  in
  C.add_dials ctl [ bad; good ];
  let emit () =
    for _ = 1 to 10 do
      Obs.splice ~kind:E.k_fc_pass ~n:8
    done
  in
  emit ();
  C.step ctl;
  emit ();
  C.step ctl;
  Alcotest.(check int) "healthy dial still moved" 2 !v;
  Alcotest.(check int) "raises counted as errors" 2 (C.errors ctl)

(* Kill tolerance: an injected Faults.Killed at "tune.epoch" murders the
   controller domain; the dial keeps its last-good value, [stop] joins
   the corpse without raising, and stop is idempotent. *)
let test_controller_kill () =
  Faults.on "tune.epoch" (fun _ -> Faults.Kill);
  let v, dial = cell_dial ~kind:T.Fc_pass_budget ~lo:1 ~hi:64 3 in
  let ctl = C.create ~epoch:0.001 () in
  C.add_dial ctl dial;
  C.start ctl;
  let deadline = Sync.Mono.now () +. 5.0 in
  while C.errors ctl = 0 && Sync.Mono.now () < deadline do
    Unix.sleepf 0.001
  done;
  Faults.clear "tune.epoch";
  Alcotest.(check bool) "controller died" true (C.errors ctl > 0);
  Alcotest.(check int) "no epoch ran" 0 (C.epochs ctl);
  Alcotest.(check int) "last-good config intact" 3 !v;
  C.stop ctl;
  Alcotest.(check bool) "stopped" false (C.running ctl);
  C.stop ctl;
  (* A fresh start after the corpse was reaped works. *)
  C.start ctl;
  Alcotest.(check bool) "restarted" true (C.running ctl);
  C.stop ctl

(* Warm start: once the controller has moved a dial, a freshly-registered
   dial with the same (kind, name) identity inherits the learned value
   immediately — a dial with a new identity does not. *)
let test_controller_warm_start () =
  let ctl = C.create () in
  let v, dial = cell_dial ~kind:T.Fc_pass_budget ~lo:1 ~hi:64 1 in
  C.add_dial ctl dial;
  let emit () =
    for _ = 1 to 10 do
      Obs.splice ~kind:E.k_fc_pass ~n:8
    done
  in
  emit ();
  C.step ctl;
  emit ();
  C.step ctl;
  Alcotest.(check int) "first dial moved" 2 !v;
  let v2, late = cell_dial ~kind:T.Fc_pass_budget ~lo:1 ~hi:64 1 in
  C.add_dial ctl late;
  Alcotest.(check int) "same identity warm-starts to learned value" 2 !v2;
  ignore v;
  let v3, other = cell_dial ~kind:T.Slack_window ~lo:1 ~hi:4096 8 in
  C.add_dial ctl other;
  Alcotest.(check int) "unknown identity keeps its start" 8 !v3

let test_controller_start_stop () =
  let ctl = C.create ~epoch:0.001 () in
  C.start ctl;
  Alcotest.check_raises "double start rejected"
    (Invalid_argument "Controller.start: already running") (fun () ->
      C.start ctl);
  let deadline = Sync.Mono.now () +. 5.0 in
  while C.epochs ctl < 3 && Sync.Mono.now () < deadline do
    Unix.sleepf 0.001
  done;
  C.stop ctl;
  Alcotest.(check bool) "epochs advanced" true (C.epochs ctl >= 3);
  Alcotest.check_raises "bad epoch rejected"
    (Invalid_argument "Controller.create: epoch must be > 0") (fun () ->
      ignore (C.create ~epoch:0.0 ()))

let () =
  Alcotest.run "tune"
    [
      ( "policy",
        [
          Alcotest.test_case "slack lean" `Quick test_lean_slack;
          Alcotest.test_case "combining lean" `Quick test_lean_fc;
          Alcotest.test_case "elimination lean" `Quick test_lean_elim;
          Alcotest.test_case "step up" `Quick test_decide_step_up;
          Alcotest.test_case "step down" `Quick test_decide_step_down;
          Alcotest.test_case "hysteresis no-flap" `Quick test_decide_no_flap;
          Alcotest.test_case "clamping" `Quick test_decide_clamps;
        ] );
      ( "controller",
        [
          Alcotest.test_case "telemetry-driven steps" `Quick
            (fresh test_controller_steps);
          Alcotest.test_case "bad dial isolated" `Quick
            (fresh test_controller_bad_dial);
          Alcotest.test_case "kill leaves last-good config" `Quick
            (fresh test_controller_kill);
          Alcotest.test_case "warm start" `Quick
            (fresh test_controller_warm_start);
          Alcotest.test_case "start/stop" `Quick
            (fresh test_controller_start_stop);
        ] );
    ]
