(* Tests for the Treiber stack: sequential semantics, multi-node
   operations, multi-domain stress with conservation checks. *)

module T = Lockfree.Treiber_stack

let test_lifo () =
  let s = T.create () in
  Alcotest.(check bool) "empty" true (T.is_empty s);
  Alcotest.(check (option int)) "pop empty" None (T.pop s);
  T.push s 1;
  T.push s 2;
  Alcotest.(check (option int)) "peek" (Some 2) (T.peek s);
  Alcotest.(check (option int)) "pop 2" (Some 2) (T.pop s);
  Alcotest.(check (option int)) "pop 1" (Some 1) (T.pop s);
  Alcotest.(check bool) "empty again" true (T.is_empty s)

let test_push_list () =
  let s = T.create () in
  T.push_list s [];
  Alcotest.(check bool) "noop on []" true (T.is_empty s);
  T.push_list s [ 1; 2; 3 ];
  Alcotest.(check (list int)) "top-first" [ 3; 2; 1 ] (T.to_list s);
  T.push_list s [ 4; 5 ];
  Alcotest.(check (list int)) "appended" [ 5; 4; 3; 2; 1 ] (T.to_list s);
  Alcotest.(check int) "length" 5 (T.length s)

let test_pop_many () =
  let s = T.create () in
  T.push_list s [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "pop 0" [] (T.pop_many s 0);
  Alcotest.(check (list int)) "pop 2" [ 5; 4 ] (T.pop_many s 2);
  Alcotest.(check (list int)) "pop beyond" [ 3; 2; 1 ] (T.pop_many s 10);
  Alcotest.(check (list int)) "pop empty" [] (T.pop_many s 3);
  Alcotest.check_raises "negative"
    (Invalid_argument "Treiber_stack.pop_many: negative count") (fun () ->
      ignore (T.pop_many s (-1)))

let test_cas_counter_moves () =
  let s = T.create () in
  T.push s 1;
  Alcotest.(check bool) "counted" true (T.cas_count s >= 1);
  T.reset_cas_count s;
  Alcotest.(check int) "reset" 0 (T.cas_count s)

(* Conservation under concurrency: the multiset of values pushed equals
   the multiset popped plus what remains. *)
let test_parallel_conservation () =
  let s = T.create () in
  let domains = 4 and per_domain = 5_000 in
  let popped = Array.make domains [] in
  let worker i () =
    let rng = Workload.Rng.create ~seed:42 ~stream:i in
    let mine = ref [] in
    for op = 1 to per_domain do
      if Workload.Rng.bool rng then T.push s ((i * per_domain) + op)
      else
        match T.pop s with
        | Some v -> mine := v :: !mine
        | None -> ()
    done;
    popped.(i) <- !mine
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let all_popped = Array.to_list popped |> List.concat in
  let remaining = T.to_list s in
  (* Every popped/remaining value is distinct by construction, so a
     multiset check reduces to a set check plus cardinality. *)
  let module IS = Set.Make (Int) in
  let popped_set = IS.of_list all_popped in
  let remaining_set = IS.of_list remaining in
  Alcotest.(check int) "no duplicated pops"
    (List.length all_popped) (IS.cardinal popped_set);
  Alcotest.(check int) "no duplicated survivors"
    (List.length remaining) (IS.cardinal remaining_set);
  Alcotest.(check int) "popped/remaining disjoint" 0
    (IS.cardinal (IS.inter popped_set remaining_set))

(* Bulk operations race against single operations without losing nodes. *)
let test_parallel_bulk () =
  let s = T.create () in
  let domains = 4 and batches = 500 and batch_size = 8 in
  let popped_counts = Array.make domains 0 in
  let worker i () =
    let count = ref 0 in
    for b = 1 to batches do
      if i land 1 = 0 then
        T.push_list s (List.init batch_size (fun j -> (i * 1000000) + (b * 100) + j))
      else count := !count + List.length (T.pop_many s batch_size)
    done;
    popped_counts.(i) <- !count
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let pushed = 2 * batches * batch_size in
  let popped = Array.fold_left ( + ) 0 popped_counts in
  let remaining = T.length s in
  Alcotest.(check int) "pushed = popped + remaining" pushed
    (popped + remaining)

let prop_model =
  QCheck.Test.make ~name:"treiber matches list model (sequential)"
    ~count:300
    QCheck.(list (pair (int_bound 3) (list small_int)))
    (fun script ->
      let s = T.create () in
      let model = ref [] in
      List.for_all
        (fun (kind, args) ->
          match kind with
          | 0 ->
              let v = match args with v :: _ -> v | [] -> 0 in
              T.push s v;
              model := v :: !model;
              true
          | 1 ->
              let expected =
                match !model with
                | [] -> None
                | x :: rest ->
                    model := rest;
                    Some x
              in
              T.pop s = expected
          | 2 ->
              T.push_list s args;
              model := List.rev_append args !model;
              true
          | _ ->
              let n = List.length args in
              let expected =
                let rec take k l =
                  if k = 0 then []
                  else
                    match l with
                    | [] -> []
                    | x :: rest ->
                        model := rest;
                        x :: take (k - 1) rest
                in
                take n !model
              in
              T.pop_many s n = expected)
        script
      && T.to_list s = !model)

(* ----------------------- elimination stack -------------------------- *)

module E = Lockfree.Elimination_stack

let test_elim_sequential_semantics () =
  let s = E.create () in
  Alcotest.(check bool) "empty" true (E.is_empty s);
  Alcotest.(check (option int)) "pop empty" None (E.pop s);
  E.push s 1;
  E.push s 2;
  Alcotest.(check (list int)) "lifo" [ 2; 1 ] (E.to_list s);
  Alcotest.(check (option int)) "pop" (Some 2) (E.pop s);
  Alcotest.(check int) "length" 1 (E.length s);
  Alcotest.(check int) "no elimination when uncontended" 0
    (E.eliminated_pairs s);
  Alcotest.check_raises "bad slots"
    (Invalid_argument "Elimination_stack.create: slots <= 0") (fun () ->
      ignore (E.create ~slots:0 ()))

let test_elim_parallel_conservation () =
  let s = E.create ~slots:2 () in
  let domains = 4 and ops = 4_000 in
  let balance = Array.make domains 0 in
  let worker i () =
    let rng = Workload.Rng.create ~seed:13 ~stream:i in
    for n = 1 to ops do
      if Workload.Rng.bool rng then begin
        E.push s ((i * ops) + n);
        balance.(i) <- balance.(i) + 1
      end
      else
        match E.pop s with
        | Some _ -> balance.(i) <- balance.(i) - 1
        | None -> ()
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "pushes - pops = remaining"
    (Array.fold_left ( + ) 0 balance)
    (E.length s);
  (* The snapshot must also contain distinct values only. *)
  let contents = E.to_list s in
  Alcotest.(check int) "no duplicated nodes"
    (List.length contents)
    (List.length (List.sort_uniq compare contents))

(* Regression: a parked elimination offer must always be claimable or
   withdrawable. A physical-equality bug in the slot CAS once made
   withdrawal impossible, hanging one domain forever; heavy
   oversubscription (8 domains on few cores) reproduces it within a few
   thousand operations. The test simply has to terminate. *)
let test_elim_oversubscribed_terminates () =
  let s = E.create ~slots:2 () in
  let domains = 8 and ops = 10_000 in
  let ds =
    List.init domains (fun i ->
        Domain.spawn (fun () ->
            let rng = Workload.Rng.create ~seed:99 ~stream:i in
            for n = 1 to ops do
              if Workload.Rng.bool rng then E.push s n else ignore (E.pop s)
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check pass) "terminated" () ()

let test_elim_registry_strong_fl () =
  let outcome =
    Conformance.check_stack ~rounds:6 (Fl.Registry.find_stack "elim")
  in
  Alcotest.(check int) "elim stack strong-FL" 0
    outcome.Conformance.violations

let () =
  Alcotest.run "lockfree-stack"
    [
      ( "sequential",
        [
          Alcotest.test_case "lifo" `Quick test_lifo;
          Alcotest.test_case "push_list" `Quick test_push_list;
          Alcotest.test_case "pop_many" `Quick test_pop_many;
          Alcotest.test_case "cas counter" `Quick test_cas_counter_moves;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "conservation (4 domains)" `Slow
            test_parallel_conservation;
          Alcotest.test_case "bulk ops (4 domains)" `Slow test_parallel_bulk;
        ] );
      ( "elimination-stack",
        [
          Alcotest.test_case "sequential semantics" `Quick
            test_elim_sequential_semantics;
          Alcotest.test_case "conservation (4 domains)" `Slow
            test_elim_parallel_conservation;
          Alcotest.test_case "oversubscription terminates (8 domains)" `Slow
            test_elim_oversubscribed_terminates;
          Alcotest.test_case "strong-FL (checked)" `Slow
            test_elim_registry_strong_fl;
        ] );
    ]
