(* Tests for the Michael–Scott queue: FIFO semantics, batch splicing,
   multi-domain stress including per-producer order preservation. *)

module Q = Lockfree.Ms_queue

let test_fifo () =
  let q = Q.create () in
  Alcotest.(check bool) "empty" true (Q.is_empty q);
  Alcotest.(check (option int)) "deq empty" None (Q.dequeue q);
  Q.enqueue q 1;
  Q.enqueue q 2;
  Q.enqueue q 3;
  Alcotest.(check (option int)) "peek" (Some 1) (Q.peek q);
  Alcotest.(check (option int)) "deq 1" (Some 1) (Q.dequeue q);
  Alcotest.(check (option int)) "deq 2" (Some 2) (Q.dequeue q);
  Q.enqueue q 4;
  Alcotest.(check (option int)) "deq 3" (Some 3) (Q.dequeue q);
  Alcotest.(check (option int)) "deq 4" (Some 4) (Q.dequeue q);
  Alcotest.(check bool) "empty again" true (Q.is_empty q)

let test_enqueue_list () =
  let q = Q.create () in
  Q.enqueue_list q [];
  Alcotest.(check bool) "noop on []" true (Q.is_empty q);
  Q.enqueue_list q [ 1; 2; 3 ];
  Q.enqueue_list q [ 4; 5 ];
  Alcotest.(check (list int)) "oldest-first" [ 1; 2; 3; 4; 5 ] (Q.to_list q);
  Alcotest.(check int) "length" 5 (Q.length q)

let test_dequeue_many () =
  let q = Q.create () in
  Q.enqueue_list q [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "deq 0" [] (Q.dequeue_many q 0);
  Alcotest.(check (list int)) "deq 2" [ 1; 2 ] (Q.dequeue_many q 2);
  Alcotest.(check (list int)) "deq beyond" [ 3; 4; 5 ] (Q.dequeue_many q 10);
  Alcotest.(check (list int)) "deq empty" [] (Q.dequeue_many q 3);
  Alcotest.check_raises "negative"
    (Invalid_argument "Ms_queue.dequeue_many: negative count") (fun () ->
      ignore (Q.dequeue_many q (-1)))

let test_interleaved_batch_single () =
  let q = Q.create () in
  Q.enqueue q 1;
  Q.enqueue_list q [ 2; 3 ];
  Q.enqueue q 4;
  Alcotest.(check (list int)) "mixed" [ 1; 2; 3; 4 ] (Q.to_list q)

(* FIFO per producer: values from one producer must be dequeued in the
   order that producer enqueued them. *)
let test_parallel_per_producer_order () =
  let q = Q.create () in
  let producers = 3 and per_producer = 800 in
  let consumer_count = 2 in
  let produced = producers * per_producer in
  let taken = Atomic.make 0 in
  let consumed : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let consumed_lock = Sync.Spinlock.create () in
  let producer i () =
    for n = 1 to per_producer do
      (* encode producer in high bits, sequence in low bits *)
      Q.enqueue q ((i * 1_000_000) + n)
    done
  in
  let consumer () =
    let mine = ref [] in
    let rec loop () =
      if Atomic.get taken < produced then begin
        (match Q.dequeue q with
        | Some v ->
            Atomic.incr taken;
            mine := v :: !mine
        | None ->
            (* On a single-core host a pure spin starves the producers;
               sleep so they get the CPU. *)
            Unix.sleepf 1e-5);
        loop ()
      end
    in
    loop ();
    Sync.Spinlock.with_lock consumed_lock (fun () ->
        Hashtbl.add consumed (Hashtbl.length consumed) (List.rev !mine))
  in
  let ds =
    List.init producers (fun i -> Domain.spawn (producer i))
    @ List.init consumer_count (fun _ -> Domain.spawn consumer)
  in
  List.iter Domain.join ds;
  (* Within each consumer's log, each producer's values appear in
     increasing sequence order. *)
  let ok = ref true in
  Hashtbl.iter
    (fun _ log ->
      let last = Hashtbl.create 8 in
      List.iter
        (fun v ->
          let p = v / 1_000_000 and n = v mod 1_000_000 in
          (match Hashtbl.find_opt last p with
          | Some m when m >= n -> ok := false
          | _ -> ());
          Hashtbl.replace last p n)
        log)
    consumed;
  Alcotest.(check bool) "per-producer FIFO respected" true !ok;
  Alcotest.(check int) "all consumed" produced (Atomic.get taken);
  Alcotest.(check bool) "queue drained" true (Q.is_empty q)

let test_parallel_batch_conservation () =
  let q = Q.create () in
  let domains = 4 and batches = 400 and batch_size = 16 in
  let popped = Array.make domains 0 in
  let worker i () =
    let count = ref 0 in
    for b = 1 to batches do
      if i land 1 = 0 then
        Q.enqueue_list q
          (List.init batch_size (fun j -> (i * 1_000_000) + (b * 100) + j))
      else count := !count + List.length (Q.dequeue_many q batch_size)
    done;
    popped.(i) <- !count
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let enqueued = 2 * batches * batch_size in
  let dequeued = Array.fold_left ( + ) 0 popped in
  Alcotest.(check int) "enqueued = dequeued + remaining" enqueued
    (dequeued + Q.length q)

(* A batch spliced by enqueue_list must appear contiguously and in order:
   no other producer's elements can interleave inside it, because the
   whole chain is linked with one CAS. *)
let test_parallel_batch_contiguity () =
  let q = Q.create () in
  let producers = 3 and batches = 300 and batch_size = 5 in
  let producer i () =
    for b = 0 to batches - 1 do
      Q.enqueue_list q
        (List.init batch_size (fun j -> (i * 1_000_000) + (b * 100) + j))
    done
  in
  let ds = List.init producers (fun i -> Domain.spawn (producer i)) in
  List.iter Domain.join ds;
  (* Single-threaded drain; check every batch appears as a contiguous
     run. *)
  let all = Q.to_list q in
  Alcotest.(check int) "everything arrived"
    (producers * batches * batch_size)
    (List.length all);
  let rec check_runs = function
    | [] -> ()
    | v :: rest ->
        let j = v mod 100 in
        if j <> 0 then Alcotest.fail "batch does not start at its head";
        let rec eat expect rest =
          if expect = batch_size then rest
          else
            match rest with
            | w :: rest' when w = v + expect -> eat (expect + 1) rest'
            | _ -> Alcotest.fail "batch interleaved or out of order"
        in
        check_runs (eat 1 rest)
  in
  check_runs all

let prop_model =
  QCheck.Test.make ~name:"ms_queue matches list model (sequential)"
    ~count:300
    QCheck.(list (pair (int_bound 3) (list small_int)))
    (fun script ->
      let q = Q.create () in
      let model = ref [] in
      List.for_all
        (fun (kind, args) ->
          match kind with
          | 0 ->
              let v = match args with v :: _ -> v | [] -> 0 in
              Q.enqueue q v;
              model := !model @ [ v ];
              true
          | 1 ->
              let expected =
                match !model with
                | [] -> None
                | x :: rest ->
                    model := rest;
                    Some x
              in
              Q.dequeue q = expected
          | 2 ->
              Q.enqueue_list q args;
              model := !model @ args;
              true
          | _ ->
              let n = List.length args in
              let rec take k l =
                if k = 0 then ([], l)
                else
                  match l with
                  | [] -> ([], [])
                  | x :: rest ->
                      let t, l' = take (k - 1) rest in
                      (x :: t, l')
              in
              let expected, rest = take n !model in
              model := rest;
              Q.dequeue_many q n = expected)
        script
      && Q.to_list q = !model)

let () =
  Alcotest.run "lockfree-queue"
    [
      ( "sequential",
        [
          Alcotest.test_case "fifo" `Quick test_fifo;
          Alcotest.test_case "enqueue_list" `Quick test_enqueue_list;
          Alcotest.test_case "dequeue_many" `Quick test_dequeue_many;
          Alcotest.test_case "mixed batch/single" `Quick
            test_interleaved_batch_single;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "per-producer order (5 domains)" `Slow
            test_parallel_per_producer_order;
          Alcotest.test_case "batch conservation (4 domains)" `Slow
            test_parallel_batch_conservation;
          Alcotest.test_case "batch contiguity (3 domains)" `Slow
            test_parallel_batch_contiguity;
        ] );
    ]
