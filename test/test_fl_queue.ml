(* Tests for the three futures-based queues (weak/medium/strong FL). *)

module Future = Futures.Future
module Q = Lockfree.Ms_queue

let force = Future.force

(* ------------------------------ weak ------------------------------- *)

let test_weak_roundtrip () =
  let q = Fl.Weak_queue.create () in
  let h = Fl.Weak_queue.handle q in
  let f1 = Fl.Weak_queue.enqueue h 1 in
  let f2 = Fl.Weak_queue.enqueue h 2 in
  force f1;
  Alcotest.(check bool) "both enqueues flushed" true (Future.is_ready f2);
  Alcotest.(check (list int)) "fifo order" [ 1; 2 ]
    (Q.to_list (Fl.Weak_queue.shared q));
  let d1 = Fl.Weak_queue.dequeue h in
  let d2 = Fl.Weak_queue.dequeue h in
  Alcotest.(check (option int)) "deq 1" (Some 1) (force d1);
  Alcotest.(check bool) "deq 2 combined" true (Future.is_ready d2);
  Alcotest.(check (option int)) "deq 2" (Some 2) (force d2)

let test_weak_type_separation () =
  (* Forcing a dequeue must NOT flush pending enqueues (separate lists):
     the dequeue can overtake the thread's own earlier enqueue. *)
  let q = Fl.Weak_queue.create () in
  let h = Fl.Weak_queue.handle q in
  let fe = Fl.Weak_queue.enqueue h 5 in
  let fd = Fl.Weak_queue.dequeue h in
  Alcotest.(check (option int)) "deq sees empty (reordered)" None (force fd);
  Alcotest.(check bool) "enqueue still pending" false (Future.is_ready fe);
  force fe;
  Alcotest.(check (list int)) "value arrives later" [ 5 ]
    (Q.to_list (Fl.Weak_queue.shared q))

let test_weak_combining_cas_budget () =
  let q = Fl.Weak_queue.create () in
  let h = Fl.Weak_queue.handle q in
  let fs = List.init 16 (fun i -> Fl.Weak_queue.enqueue h i) in
  Fl.Weak_queue.flush_enqueues h;
  List.iter force fs;
  (* Uncontended combined enqueue: one CAS to link + one to swing tail. *)
  Alcotest.(check int) "two CAS" 2 (Q.cas_count (Fl.Weak_queue.shared q));
  Q.reset_cas_count (Fl.Weak_queue.shared q);
  let ds = List.init 16 (fun _ -> Fl.Weak_queue.dequeue h) in
  Fl.Weak_queue.flush_dequeues h;
  ignore (List.map force ds);
  (* Combined dequeue: one head CAS (+ possibly one tail help). *)
  Alcotest.(check bool) "at most two CAS"
    true
    (Q.cas_count (Fl.Weak_queue.shared q) <= 2)

let test_weak_excess_dequeues () =
  let q = Fl.Weak_queue.create () in
  let h = Fl.Weak_queue.handle q in
  ignore (Fl.Weak_queue.enqueue h 1);
  Fl.Weak_queue.flush h;
  let ds = List.init 3 (fun _ -> Fl.Weak_queue.dequeue h) in
  Fl.Weak_queue.flush h;
  Alcotest.(check (list (option int)))
    "one value, two empties"
    [ Some 1; None; None ]
    (List.map force ds)

(* ----------------------------- medium ------------------------------ *)

let test_medium_program_order () =
  let q = Fl.Medium_queue.create () in
  let h = Fl.Medium_queue.handle q in
  let fe1 = Fl.Medium_queue.enqueue h 1 in
  let fe2 = Fl.Medium_queue.enqueue h 2 in
  let fd = Fl.Medium_queue.dequeue h in
  (* The paper's Figure 2 under medium-FL: deq must yield the thread's
     first enqueue. *)
  Alcotest.(check (option int)) "deq is 1" (Some 1) (force fd);
  Alcotest.(check bool) "earlier enqueues were applied" true
    (Future.is_ready fe1 && Future.is_ready fe2);
  Alcotest.(check (list int)) "2 remains" [ 2 ]
    (Q.to_list (Fl.Medium_queue.shared q))

let test_medium_stops_at_target () =
  let q = Fl.Medium_queue.create () in
  let h = Fl.Medium_queue.handle q in
  let fe1 = Fl.Medium_queue.enqueue h 1 in
  let fd = Fl.Medium_queue.dequeue h in
  let fe2 = Fl.Medium_queue.enqueue h 2 in
  (* Forcing fd applies [enq 1] then [deq], but NOT the later [enq 2]. *)
  Alcotest.(check (option int)) "deq gets 1" (Some 1) (force fd);
  Alcotest.(check bool) "fe1 applied" true (Future.is_ready fe1);
  Alcotest.(check bool) "fe2 still pending" false (Future.is_ready fe2);
  Alcotest.(check int) "one pending op" 1 (Fl.Medium_queue.pending_count h);
  force fe2;
  Alcotest.(check int) "drained" 0 (Fl.Medium_queue.pending_count h)

let test_medium_runs_combined () =
  let q = Fl.Medium_queue.create () in
  let h = Fl.Medium_queue.handle q in
  let es = List.init 6 (fun i -> Fl.Medium_queue.enqueue h i) in
  let ds = List.init 6 (fun _ -> Fl.Medium_queue.dequeue h) in
  Fl.Medium_queue.flush h;
  List.iter force es;
  Alcotest.(check (list (option int)))
    "fifo results"
    [ Some 0; Some 1; Some 2; Some 3; Some 4; Some 5 ]
    (List.map force ds);
  Alcotest.(check bool) "queue empty" true
    (Q.is_empty (Fl.Medium_queue.shared q))

let test_medium_interleaved_runs () =
  let q = Fl.Medium_queue.create () in
  let h = Fl.Medium_queue.handle q in
  (* enq 1; deq(=1); enq 2; deq(=2) — four runs of length one. *)
  let e1 = Fl.Medium_queue.enqueue h 1 in
  let d1 = Fl.Medium_queue.dequeue h in
  let e2 = Fl.Medium_queue.enqueue h 2 in
  let d2 = Fl.Medium_queue.dequeue h in
  Fl.Medium_queue.flush h;
  force e1;
  force e2;
  Alcotest.(check (option int)) "d1" (Some 1) (force d1);
  Alcotest.(check (option int)) "d2" (Some 2) (force d2)

let test_medium_deq_empty_then_enq () =
  let q = Fl.Medium_queue.create () in
  let h = Fl.Medium_queue.handle q in
  let d = Fl.Medium_queue.dequeue h in
  let e = Fl.Medium_queue.enqueue h 9 in
  (* Program order: the dequeue precedes the enqueue, so it must see the
     empty queue even though the enqueue is pending behind it. *)
  Alcotest.(check (option int)) "deq empty" None (force d);
  force e;
  Alcotest.(check (list int)) "enq lands after" [ 9 ]
    (Q.to_list (Fl.Medium_queue.shared q))

(* ----------------------------- strong ------------------------------ *)

let test_strong_figure2 () =
  (* Figure 2 of the paper with a strong-FL queue: deq returns x. *)
  let q = Fl.Strong_queue.create () in
  let fx = Fl.Strong_queue.enqueue q 100 (* x *) in
  let fy = Fl.Strong_queue.enqueue q 200 (* y *) in
  let fz = Fl.Strong_queue.dequeue q in
  force fx;
  force fy;
  Alcotest.(check (option int)) "fz = x" (Some 100) (force fz);
  Fl.Strong_queue.drain q;
  Alcotest.(check (list int)) "y remains" [ 200 ] (Fl.Strong_queue.to_list q)

let test_strong_force_out_of_order () =
  let q = Fl.Strong_queue.create () in
  let _fx = Fl.Strong_queue.enqueue q 1 in
  let fz = Fl.Strong_queue.dequeue q in
  (* Forcing only the dequeue still sees the earlier enqueue. *)
  Alcotest.(check (option int)) "sees pending enqueue" (Some 1) (force fz)

let test_strong_empty_dequeue () =
  let q : int Fl.Strong_queue.t = Fl.Strong_queue.create () in
  Alcotest.(check (option int)) "empty" None (force (Fl.Strong_queue.dequeue q))

let test_strong_delegation () =
  let q = Fl.Strong_queue.create () in
  let submitted = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let f = Fl.Strong_queue.enqueue q 77 in
        Atomic.set submitted true;
        Future.await f)
  in
  let rec wait tries =
    if (not (Atomic.get submitted)) && tries > 0 then begin
      Unix.sleepf 0.001;
      wait (tries - 1)
    end
  in
  wait 5000;
  Alcotest.(check bool) "submitted" true (Atomic.get submitted);
  let v = force (Fl.Strong_queue.dequeue q) in
  Domain.join d;
  Alcotest.(check (option int)) "delegated" (Some 77) v

(* -------------------- conservation + FIFO checks -------------------- *)

let conservation_test (impl : Fl.Registry.queue_impl) =
  let inst = impl.q_make () in
  let domains = 4 and ops = 2_000 in
  let sums = Array.make domains 0 and enqueued = Array.make domains 0 in
  let worker i () =
    let o = inst.q_handle () in
    let rng = Workload.Rng.create ~seed:321 ~stream:i in
    let slack = Fl.Slack.create 20 in
    for n = 1 to ops do
      if Workload.Rng.bool rng then begin
        let v = (i * 1_000_000) + n in
        enqueued.(i) <- enqueued.(i) + v;
        let f = o.q_enq v in
        Fl.Slack.note slack (fun () -> Future.force f)
      end
      else
        let f = o.q_deq () in
        Fl.Slack.note slack (fun () ->
            match Future.force f with
            | Some v -> sums.(i) <- sums.(i) + v
            | None -> ())
    done;
    Fl.Slack.drain slack;
    o.q_flush ()
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  inst.q_drain ();
  let total_in = Array.fold_left ( + ) 0 enqueued in
  let total_out = Array.fold_left ( + ) 0 sums in
  let remaining = List.fold_left ( + ) 0 (inst.q_contents ()) in
  Alcotest.(check int)
    (impl.q_name ^ ": sum conservation")
    total_in (total_out + remaining)

let test_conservation_all () =
  List.iter conservation_test Fl.Registry.queue_impls

(* Single-thread model property: under program-order-preserving conditions
   the queue must match a plain FIFO model at any slack. The weak queue
   keeps separate enq/deq lists — its own dequeue may overtake its own
   pending enqueue — so it is exempt here (checked by the ≺-search). *)
let prop_program_order_model (impl : Fl.Registry.queue_impl) =
  QCheck.Test.make
    ~name:(impl.q_name ^ " queue == FIFO model at any slack")
    ~count:300
    QCheck.(pair (list (pair bool (int_bound 50))) (int_bound 9))
    (fun (script, slack_minus_1) ->
      let inst = impl.q_make () in
      let o = inst.q_handle () in
      let sl = Fl.Slack.create (slack_minus_1 + 1) in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_enq, v) ->
          if is_enq then begin
            model := !model @ [ v ];
            let f = o.q_enq v in
            Fl.Slack.note sl (fun () -> Future.force f)
          end
          else begin
            let expected =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            let f = o.q_deq () in
            Fl.Slack.note sl (fun () ->
                if Future.force f <> expected then ok := false)
          end)
        script;
      Fl.Slack.drain sl;
      o.q_flush ();
      inst.q_drain ();
      !ok && inst.q_contents () = !model)

let program_order_props =
  List.map
    (fun name ->
      QCheck_alcotest.to_alcotest
        (prop_program_order_model (Fl.Registry.find_queue name)))
    [ "lockfree"; "flatcomb"; "medium"; "strong" ]

let () =
  Alcotest.run "fl-queue"
    [
      ( "weak",
        [
          Alcotest.test_case "roundtrip" `Quick test_weak_roundtrip;
          Alcotest.test_case "enq/deq lists are separate" `Quick
            test_weak_type_separation;
          Alcotest.test_case "combining CAS budget" `Quick
            test_weak_combining_cas_budget;
          Alcotest.test_case "excess dequeues" `Quick
            test_weak_excess_dequeues;
        ] );
      ( "medium",
        [
          Alcotest.test_case "program order (Figure 2)" `Quick
            test_medium_program_order;
          Alcotest.test_case "evaluation stops at target" `Quick
            test_medium_stops_at_target;
          Alcotest.test_case "runs combined" `Quick test_medium_runs_combined;
          Alcotest.test_case "interleaved runs" `Quick
            test_medium_interleaved_runs;
          Alcotest.test_case "deq before enq sees empty" `Quick
            test_medium_deq_empty_then_enq;
        ] );
      ( "strong",
        [
          Alcotest.test_case "Figure 2 semantics" `Quick test_strong_figure2;
          Alcotest.test_case "force out of order" `Quick
            test_strong_force_out_of_order;
          Alcotest.test_case "empty dequeue" `Quick test_strong_empty_dequeue;
          Alcotest.test_case "delegation across domains" `Slow
            test_strong_delegation;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "all implementations (4 domains)" `Slow
            test_conservation_all;
        ] );
      ("model", program_order_props);
    ]
