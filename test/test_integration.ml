(* Integration tests: record real multi-domain executions of every
   implementation and verify them against the futures-linearizability
   condition each claims (Section 3 of the paper), via the checker. Also
   includes a deliberately broken implementation as a negative control and
   cross-structure composition scenarios. *)

module Future = Futures.Future
module H = Lin.History
module SSpec = Lin.Spec.Stack_spec
module QSpec = Lin.Spec.Queue_spec
module SetSpec = Lin.Spec.Set_spec
module CS = Lin.Checker.Make (SSpec)
module CQ = Lin.Checker.Make (QSpec)
module CSet = Lin.Checker.Make (SetSpec)

(* Conformance checks: the Conformance library runs recorded rounds and
   checks them against the condition each implementation claims. The
   lock-free baselines return pre-evaluated futures, so they are
   strong-FL. *)

let rounds = 8

let fail_outcome name (o : Conformance.outcome) =
  match o.first_failure with
  | None -> ()
  | Some history ->
      Format.printf "%s@." history;
      Alcotest.fail
        (Printf.sprintf "%s: %d/%d rounds violated the claimed condition"
           name o.violations o.rounds)

let test_stack_condition (impl : Fl.Registry.stack_impl) () =
  fail_outcome (impl.s_name ^ " stack")
    (Conformance.check_stack ~rounds impl)

let test_queue_condition (impl : Fl.Registry.queue_impl) () =
  fail_outcome (impl.q_name ^ " queue")
    (Conformance.check_queue ~rounds impl)

let test_set_condition (impl : Fl.Registry.set_impl) () =
  fail_outcome (impl.l_name ^ " list") (Conformance.check_set ~rounds impl)

(* The weak implementations must also pass the weaker checks trivially;
   more interestingly, medium implementations must pass the weak check and
   strong implementations all three (the conditions form a hierarchy). *)
let test_hierarchy_downgrades () =
  let strong_stack = Fl.Registry.find_stack "strong" in
  List.iter
    (fun condition ->
      fail_outcome "strong stack (downgraded)"
        (Conformance.check_stack ~rounds:3 ~condition strong_stack))
    [ Lin.Order.Strong; Lin.Order.Medium; Lin.Order.Weak ];
  let medium_queue = Fl.Registry.find_queue "medium" in
  List.iter
    (fun condition ->
      fail_outcome "medium queue (downgraded)"
        (Conformance.check_queue ~rounds:3 ~condition medium_queue))
    [ Lin.Order.Medium; Lin.Order.Weak ]

(* ------------------------- negative control ------------------------- *)

(* A deliberately broken "stack" backed by a FIFO queue: even the weak
   condition must reject it once the interleaving pins the order. *)
let test_negative_control () =
  let q = Seqds.Seq_queue.create () in
  let clock = H.clock () in
  let log = H.log () in
  let call op describe =
    let _, complete =
      H.recorded_call log clock ~thread:0 ~obj:0 (fun () ->
          Future.of_value (op ()))
    in
    ignore (complete describe)
  in
  call (fun () -> Seqds.Seq_queue.enqueue q 1) (fun () -> SSpec.Push 1);
  call (fun () -> Seqds.Seq_queue.enqueue q 2) (fun () -> SSpec.Push 2);
  call (fun () -> Seqds.Seq_queue.dequeue q) (fun r -> SSpec.Pop r);
  let h = H.merge [ log ] in
  Alcotest.(check bool) "weak rejects FIFO stack" false
    (CS.check Lin.Order.Weak h)

(* ------------------------ composition scenes ------------------------ *)

(* Items flow stack -> queue through futures; multiset is preserved.
   Exercises two FL structures driven by the same thread with interleaved
   pending operations (compositionality in practice). *)
let test_stack_to_queue_pipeline () =
  let s = Fl.Weak_stack.create () in
  let q = Fl.Medium_queue.create () in
  let n = 200 in
  let mover =
    Domain.spawn (fun () ->
        let sh = Fl.Weak_stack.handle s in
        let qh = Fl.Medium_queue.handle q in
        (* Fill the stack. *)
        let pushes = List.init n (fun i -> Fl.Weak_stack.push sh i) in
        Fl.Weak_stack.flush sh;
        List.iter Future.force pushes;
        (* Move every element to the queue in batches of 10. *)
        let moved = ref 0 in
        while !moved < n do
          let pops = List.init 10 (fun _ -> Fl.Weak_stack.pop sh) in
          Fl.Weak_stack.flush sh;
          List.iter
            (fun p ->
              match Future.force p with
              | Some v ->
                  ignore (Fl.Medium_queue.enqueue qh v);
                  incr moved
              | None -> ())
            pops;
          Fl.Medium_queue.flush qh
        done)
  in
  Domain.join mover;
  let contents = Lockfree.Ms_queue.to_list (Fl.Medium_queue.shared q) in
  Alcotest.(check int) "all moved" n (List.length contents);
  Alcotest.(check (list int)) "same multiset"
    (List.init n Fun.id)
    (List.sort compare contents)

(* Two threads, two strong queues, the Figure 3 access pattern — executed
   for real and recorded; must satisfy strong-FL per object. *)
let test_two_queues_strong_composition () =
  let p = Fl.Strong_queue.create () in
  let q = Fl.Strong_queue.create () in
  let clock = H.clock () in
  let log_a = H.log () and log_b = H.log () in
  let barrier = Sync.Barrier.create 2 in
  let thread_body tid log (first : int Fl.Strong_queue.t)
      (second : int Fl.Strong_queue.t) obj_first obj_second v =
    Sync.Barrier.wait barrier;
    let f1, c1 =
      H.recorded_call log clock ~thread:tid ~obj:obj_first (fun () ->
          Fl.Strong_queue.enqueue first v)
    in
    let f2, c2 =
      H.recorded_call log clock ~thread:tid ~obj:obj_second (fun () ->
          Fl.Strong_queue.enqueue second v)
    in
    ignore (f1, f2);
    ignore (c1 (fun () -> QSpec.Enq v));
    ignore (c2 (fun () -> QSpec.Enq v));
    let _, c3 =
      H.recorded_call log clock ~thread:tid ~obj:obj_first (fun () ->
          Fl.Strong_queue.dequeue first)
    in
    ignore (c3 (fun r -> QSpec.Deq r))
  in
  let da =
    Domain.spawn (fun () -> thread_body 0 log_a p q 0 1 100)
  in
  let db =
    Domain.spawn (fun () -> thread_body 1 log_b q p 1 0 200)
  in
  Domain.join da;
  Domain.join db;
  Fl.Strong_queue.drain p;
  Fl.Strong_queue.drain q;
  let h = H.merge [ log_a; log_b ] in
  Alcotest.(check bool) "strong-FL composition holds" true
    (CQ.check Lin.Order.Strong h)

(* Slack sweep: the observable final state of a weak stack must be a
   permutation-compatible outcome for every slack level. *)
let test_slack_levels_consistent_totals () =
  List.iter
    (fun slack ->
      let s = Fl.Weak_stack.create () in
      let h = Fl.Weak_stack.handle s in
      let sl = Fl.Slack.create slack in
      let popped = ref 0 and pushed = ref 0 in
      let rng = Workload.Rng.create ~seed:slack ~stream:0 in
      for n = 1 to 500 do
        if Workload.Rng.bool rng then begin
          incr pushed;
          let f = Fl.Weak_stack.push h n in
          Fl.Slack.note sl (fun () -> Future.force f)
        end
        else
          let f = Fl.Weak_stack.pop h in
          Fl.Slack.note sl (fun () ->
              match Future.force f with
              | Some _ -> incr popped
              | None -> ())
      done;
      Fl.Slack.drain sl;
      Fl.Weak_stack.flush h;
      let remaining =
        Lockfree.Treiber_stack.length (Fl.Weak_stack.shared s)
      in
      Alcotest.(check int)
        (Printf.sprintf "slack %d conserves" slack)
        !pushed
        (!popped + remaining))
    [ 1; 10; 20; 100 ]

let test_registry_lookups () =
  List.iter
    (fun name ->
      Alcotest.(check string) name name
        (Fl.Registry.find_stack name).Fl.Registry.s_name)
    [ "lockfree"; "elim"; "flatcomb"; "weak"; "medium"; "strong" ];
  List.iter
    (fun name ->
      Alcotest.(check string) name name
        (Fl.Registry.find_queue name).Fl.Registry.q_name)
    [ "lockfree"; "flatcomb"; "weak"; "medium"; "strong" ];
  List.iter
    (fun name ->
      Alcotest.(check string) name name
        (Fl.Registry.find_set name).Fl.Registry.l_name)
    [ "lockfree"; "flatcomb"; "weak"; "medium"; "strong"; "txn" ];
  (match Fl.Registry.find_stack "nope" with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ());
  (* Instances are independent. *)
  let a = (Fl.Registry.find_stack "weak").s_make () in
  let b = (Fl.Registry.find_stack "weak").s_make () in
  let oa = a.s_handle () in
  ignore (Futures.Future.force (oa.s_push 1));
  Alcotest.(check (list int)) "a has it" [ 1 ] (a.s_contents ());
  Alcotest.(check (list int)) "b untouched" [] (b.s_contents ())

(* Auto_handle: each domain transparently gets its own handle; values
   flow correctly and no handle is shared. *)
let test_auto_handle_per_domain () =
  let stack = Fl.Weak_stack.create () in
  let auto = Fl.Auto_handle.create stack ~make:Fl.Weak_stack.handle in
  let h_main = Fl.Auto_handle.get auto in
  Alcotest.(check bool) "same handle on repeat get" true
    (h_main == Fl.Auto_handle.get auto);
  let n = 4 and per = 500 in
  let ds =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            let h = Fl.Auto_handle.get auto in
            (* our domain's handle is stable *)
            assert (h == Fl.Auto_handle.get auto);
            let sl = Fl.Slack.create 10 in
            for j = 1 to per do
              let f = Fl.Weak_stack.push h ((i * per) + j) in
              Fl.Slack.note sl (fun () -> Future.force f)
            done;
            Fl.Slack.drain sl;
            Fl.Weak_stack.flush h))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "all values pushed" (n * per)
    (Lockfree.Treiber_stack.length (Fl.Weak_stack.shared stack));
  Alcotest.(check bool) "main handle distinct from workers" true
    (Fl.Weak_stack.pending_count h_main = 0)

let stack_cases =
  List.map
    (fun (impl : Fl.Registry.stack_impl) ->
      Alcotest.test_case
        (impl.s_name ^ " stack satisfies its condition")
        `Slow
        (test_stack_condition impl))
    Fl.Registry.stack_impls

let queue_cases =
  List.map
    (fun (impl : Fl.Registry.queue_impl) ->
      Alcotest.test_case
        (impl.q_name ^ " queue satisfies its condition")
        `Slow
        (test_queue_condition impl))
    Fl.Registry.queue_impls

let set_cases =
  List.map
    (fun (impl : Fl.Registry.set_impl) ->
      Alcotest.test_case
        (impl.l_name ^ " list satisfies its condition")
        `Slow
        (test_set_condition impl))
    Fl.Registry.set_impls

let () =
  Alcotest.run "integration"
    [
      ("checked-stack", stack_cases);
      ("checked-queue", queue_cases);
      ("checked-list", set_cases);
      ( "hierarchy",
        [
          Alcotest.test_case "conditions downgrade" `Slow
            test_hierarchy_downgrades;
        ] );
      ( "negative",
        [ Alcotest.test_case "FIFO stack rejected" `Quick test_negative_control ]
      );
      ( "registry",
        [ Alcotest.test_case "lookups and independence" `Quick
            test_registry_lookups ] );
      ( "auto-handle",
        [
          Alcotest.test_case "per-domain handles (4 domains)" `Slow
            test_auto_handle_per_domain;
        ] );
      ( "composition",
        [
          Alcotest.test_case "stack->queue pipeline" `Slow
            test_stack_to_queue_pipeline;
          Alcotest.test_case "two strong queues (Fig. 3 pattern)" `Slow
            test_two_queues_strong_composition;
          Alcotest.test_case "slack sweep conserves" `Quick
            test_slack_levels_consistent_totals;
        ] );
    ]
