(* Observability subsystem tests: histogram bucket math, the runtime
   switch's no-op guarantee, ring-buffer overwrite semantics, merged
   multi-domain export ordering, the future-lifecycle round trip
   (every terminal state emits exactly one terminal event), and the
   chaos integration (a scripted kill whose poison events precede the
   recovery event in the trace). *)

module H = Obs.Histogram
module E = Obs.Event
module T = Obs.Trace
module M = Obs.Metrics

(* Every test leaves the recorder exactly as it found it: switch off,
   rings empty, counters zeroed, capacity back to the default. Stride 1
   disables lifecycle sampling so exact-count assertions hold; the
   default stride is restored afterwards. *)
let fresh f () =
  let stride = Obs.sample_every () in
  let conf = Obs.conformance_stride () in
  Obs.set_enabled false;
  Obs.set_sample_every 1;
  Obs.set_conformance_stride 0;
  T.set_capacity T.default_capacity;
  T.clear ();
  M.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.set_sample_every stride;
      Obs.set_conformance_stride conf;
      T.set_capacity T.default_capacity;
      T.clear ();
      M.reset ())

(* ------------------------------ histogram ------------------------------ *)

(* Buckets must cover [0, max_int] monotonically, resolve small values
   exactly, and bound relative error: a value lands in a bucket whose
   lower bound is within one sub-bucket width below it. *)
let test_histogram_buckets () =
  for v = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "value %d is exact" v)
      v
      (H.value_of_bucket (H.bucket_of_value v))
  done;
  let samples =
    [ 8; 9; 15; 16; 17; 100; 1_000; 123_456; 1_000_000_000; max_int ]
  in
  List.iter
    (fun v ->
      let b = H.bucket_of_value v in
      Alcotest.(check bool)
        (Printf.sprintf "bucket of %d in range" v)
        true
        (b >= 0 && b < H.buckets);
      let lo = H.value_of_bucket b in
      Alcotest.(check bool)
        (Printf.sprintf "lower bound of %d's bucket is <= it" v)
        true (lo <= v);
      (* Four sub-buckets per power of two: the lower bound is within
         25% of the value (looser near the top where buckets saturate,
         so skip the bound for max_int). *)
      if v < max_int / 2 then
        Alcotest.(check bool)
          (Printf.sprintf "relative error for %d" v)
          true
          (float_of_int (v - lo) <= (0.25 *. float_of_int v) +. 1.))
    samples;
  (* Monotone: bucket index never decreases with value. *)
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let b = H.bucket_of_value v in
      Alcotest.(check bool)
        (Printf.sprintf "monotone at %d" v)
        true (b >= !prev);
      prev := b)
    [ 0; 1; 2; 3; 7; 8; 20; 63; 64; 1_000; 65_536; 1_000_000; max_int ]

let test_histogram_record_percentiles () =
  let h = H.create () in
  (* 100 exact small values: percentile math is transparent. *)
  for v = 1 to 100 do
    H.record h (v mod 8)
    (* values 0..7, exact buckets *)
  done;
  let s = H.snapshot h in
  Alcotest.(check int) "count" 100 (H.count s);
  let expected_sum = ref 0 in
  for v = 1 to 100 do
    expected_sum := !expected_sum + (v mod 8)
  done;
  Alcotest.(check int) "exact sum survives bucketing" !expected_sum s.H.sum;
  Alcotest.(check bool)
    "p50 is a small value" true
    (H.percentile_value s 50.0 <= 7);
  Alcotest.(check int) "p100 = max recorded" 7 (H.percentile_value s 100.0);
  (* diff isolates a window *)
  let before = H.snapshot h in
  for _ = 1 to 10 do
    H.record h 1_000
  done;
  let after = H.snapshot h in
  let d = H.diff after before in
  Alcotest.(check int) "diff count" 10 (H.count d);
  Alcotest.(check int) "diff sum" 10_000 d.H.sum;
  Alcotest.(check bool)
    "diff p50 lands in 1000's bucket" true
    (let p = H.percentile_value d 50.0 in
     p <= 1_000 && p > 750)

(* Stats is now a re-export of the shared percentile math. *)
let test_stats_delegates () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Workload.Stats.median xs);
  Alcotest.(check (float 1e-9))
    "same percentile function" (H.percentile xs 90.0)
    (Workload.Stats.percentile xs 90.0)

(* --------------------------- runtime switch --------------------------- *)

(* With the switch off, every wrapper is a no-op: counters unchanged,
   rings untouched, and stamps are 0 so downstream wrappers also bail. *)
let test_switch_off_is_noop () =
  let before = M.snapshot () in
  let born = Obs.future_created () in
  Alcotest.(check int) "birth stamp is 0 when off" 0 born;
  Obs.future_fulfilled ~born;
  Obs.future_cancelled ~born;
  Obs.future_poisoned ~born;
  let t0 = Obs.force_begin () in
  Alcotest.(check int) "force stamp is 0 when off" 0 t0;
  Obs.future_forced ~t0;
  Obs.splice ~kind:E.k_weak_stack_push ~n:7;
  Obs.elim_hit ~shard:0;
  Obs.elim_miss ~shard:0;
  Obs.combiner_acquire ();
  Obs.worker_killed ~worker:0;
  let after = M.snapshot () in
  let d = M.diff after before in
  Alcotest.(check int) "no futures counted" 0 d.M.futures_created;
  Alcotest.(check int) "no splices counted" 0 d.M.splices;
  Alcotest.(check int) "no elim hits counted" 0 d.M.elim_hits;
  Alcotest.(check int) "no kills counted" 0 d.M.workers_killed;
  Alcotest.(check (list reject)) "trace ring untouched" []
    (List.map (fun _ -> Alcotest.fail "event recorded while off")
       (T.events ()))

(* A structure exercised with the switch off leaves no trace at all —
   the instrumented hot paths really are dormant. *)
let test_structures_silent_when_off () =
  let s = Fl.Weak_stack.create () in
  let h = Fl.Weak_stack.handle s in
  let futs = List.init 32 (fun i -> Fl.Weak_stack.push h i) in
  Fl.Weak_stack.flush h;
  List.iter (fun f -> Futures.Future.force f) futs;
  Alcotest.(check int) "no trace events" 0 (List.length (T.events ()));
  let snap = M.snapshot () in
  Alcotest.(check int) "no futures counted" 0 snap.M.futures_created;
  Alcotest.(check int) "no splices counted" 0 snap.M.splices

(* ----------------------------- trace ring ----------------------------- *)

(* Overwrite-oldest: a ring of capacity [c] receiving [k > c] events
   keeps exactly the last [c], and [dropped] accounts for the rest.
   [set_capacity] only affects rings created from now on, so the
   emitting domain must be fresh. *)
let test_ring_overwrite () =
  T.set_capacity 64;
  let total = 200 in
  let dom =
    Domain.spawn (fun () ->
        for i = 1 to total do
          T.emit_at ~ts:i E.elim_miss i 0
        done;
        (Domain.self () :> int))
  in
  let dom_id = Domain.join dom in
  let evs =
    List.filter (fun e -> e.T.e_dom = dom_id) (T.events ())
  in
  Alcotest.(check int) "ring keeps exactly its capacity" 64
    (List.length evs);
  Alcotest.(check bool)
    (Printf.sprintf "dropped >= %d" (total - 64))
    true
    (T.dropped () >= total - 64);
  (* The survivors are the *last* 64, in order. *)
  List.iteri
    (fun i e ->
      Alcotest.(check int)
        (Printf.sprintf "survivor %d" i)
        (total - 64 + 1 + i) e.T.e_ts)
    evs;
  T.clear ();
  Alcotest.(check int) "clear empties rings" 0 (List.length (T.events ()));
  Alcotest.(check int) "clear resets dropped" 0 (T.dropped ())

(* Export merges per-domain rings sorted by timestamp, even when the
   domains' rings interleave arbitrarily. *)
let test_multi_domain_ordering () =
  let barrier = Atomic.make 0 in
  let emitter n () =
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do
      Domain.cpu_relax ()
    done;
    for i = 1 to n do
      T.emit E.elim_hit i 0;
      if i mod 8 = 0 then Domain.cpu_relax ()
    done;
    (Domain.self () :> int)
  in
  let d1 = Domain.spawn (emitter 300) in
  let d2 = Domain.spawn (emitter 300) in
  let id1 = Domain.join d1 and id2 = Domain.join d2 in
  let evs = T.events () in
  Alcotest.(check int) "all events survive" 600 (List.length evs);
  let doms =
    List.sort_uniq compare (List.map (fun e -> e.T.e_dom) evs)
  in
  Alcotest.(check (list int)) "both domains present"
    (List.sort compare [ id1; id2 ])
    doms;
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.T.e_ts <= b.T.e_ts && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "merged stream sorted by ts" true (sorted evs);
  (* And the JSON exporter agrees on the count. *)
  let file = Filename.temp_file "flds_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let n = T.export_file file in
      Alcotest.(check int) "exporter writes every event" 600 n;
      let body = In_channel.with_open_bin file In_channel.input_all in
      Alcotest.(check bool) "top-level traceEvents" true
        (String.length body > 0
        && body.[0] = '{'
        && (let found = ref false in
            String.iteri
              (fun i _ ->
                if
                  i + 13 <= String.length body
                  && String.sub body i 13 = "\"traceEvents\""
                then found := true)
              body;
            !found)))

(* ------------------------- conformance events ------------------------- *)

(* Completed-operation events for the online conformance monitor:
   [op_begin] stamps only when both the switch and a stride are armed,
   payloads pack [(value lsl 6) lor obj] with the duration in [e_b],
   value-residue sampling keeps matched add/remove pairs together (same
   value, same residue), and empty-returning ops — which carry no value
   to sample by — are recorded only at stride 1, the one stride that
   constrains every value. *)
let test_conformance_sampling () =
  (* Off by default, and off while the switch is off. *)
  Alcotest.(check int) "stride starts at 0" 0 (Obs.conformance_stride ());
  Obs.set_conformance_stride 8;
  Alcotest.(check int) "op stamp is 0 while the switch is off" 0
    (Obs.op_begin ());
  Obs.set_conformance_stride 0;
  Obs.set_enabled true;
  Alcotest.(check int) "op stamp is 0 when the stride is 0" 0
    (Obs.op_begin ());
  Obs.set_conformance_stride 8;
  Alcotest.(check int) "stride round-trips" 8 (Obs.conformance_stride ());
  let t0 = Obs.op_begin () in
  Alcotest.(check bool) "op stamp armed at stride 8" true (t0 > 0);
  (* A zero stamp (taken while the monitor was off) keeps the
     completion silent even now that the stride is armed. *)
  Obs.op_enq ~value:16 ~obj:3 ~t0:0;
  (* Value 16 is on-residue (16 mod 8 = 0): both halves of its pair
     record. Value 17 is off-residue: both halves stay silent, so the
     surviving history never has a remove without its add. *)
  Obs.op_enq ~value:16 ~obj:3 ~t0;
  Obs.op_deq ~value:16 ~obj:3 ~t0:(Obs.op_begin ());
  Obs.op_enq ~value:17 ~obj:3 ~t0:(Obs.op_begin ());
  Obs.op_deq ~value:17 ~obj:3 ~t0:(Obs.op_begin ());
  (* Empties can't be residue-sampled: dropped at stride 8... *)
  Obs.op_deq_empty ~obj:3 ~t0:(Obs.op_begin ());
  (* ...but kept at stride 1, where the full history is recorded. *)
  Obs.set_conformance_stride 1;
  Obs.op_pop_empty ~obj:5 ~t0:(Obs.op_begin ());
  Obs.set_enabled false;
  let evs = T.events () in
  let by tag = List.filter (fun e -> e.T.e_tag = tag) evs in
  let enqs = by E.op_enq and deqs = by E.op_deq in
  Alcotest.(check int) "exactly one enq recorded" 1 (List.length enqs);
  Alcotest.(check int) "exactly one deq recorded" 1 (List.length deqs);
  List.iter
    (fun e ->
      Alcotest.(check int) "payload object" 3 (e.T.e_a land 63);
      Alcotest.(check int) "payload value" 16 (e.T.e_a asr 6);
      Alcotest.(check bool) "duration non-negative" true (e.T.e_b >= 0))
    (enqs @ deqs);
  Alcotest.(check int) "no empty event at stride 8" 0
    (List.length (by E.op_deq_empty));
  let empties = by E.op_pop_empty in
  Alcotest.(check int) "empty event recorded at stride 1" 1
    (List.length empties);
  Alcotest.(check int) "empty payload is the object" 5
    ((List.hd empties).T.e_a land 63);
  Obs.set_conformance_stride (-3);
  Alcotest.(check int) "negative stride clamps to off" 0
    (Obs.conformance_stride ())

(* --------------------------- lifecycle trace --------------------------- *)

(* Every terminal state emits exactly one terminal event, tagged with
   the future's pendingness; forcing emits one forced event. *)
let test_lifecycle_roundtrip () =
  Obs.set_enabled true;
  let before = M.snapshot () in
  let f1 : int Futures.Future.t = Futures.Future.create () in
  let f2 : int Futures.Future.t = Futures.Future.create () in
  let f3 : int Futures.Future.t = Futures.Future.create () in
  Alcotest.(check bool) "fulfil" true (Futures.Future.try_fulfil f1 1);
  Alcotest.(check bool) "fulfil loses the second time" false
    (Futures.Future.try_fulfil f1 2);
  Alcotest.(check bool) "cancel" true (Futures.Future.cancel f2);
  Alcotest.(check bool) "cancel loses the second time" false
    (Futures.Future.cancel f2);
  Alcotest.(check bool) "poison" true
    (Futures.Future.poison f3 Futures.Future.Orphaned);
  (* Forcing a resolved future is not recorded (no wait to measure)… *)
  Alcotest.(check int) "force" 1 (Futures.Future.force f1);
  (* …but a force that finds the future unresolved is. *)
  let knot = ref None in
  let f4 : int Futures.Future.t =
    Futures.Future.create_with ~evaluator:(fun () ->
        match !knot with
        | Some f -> ignore (Futures.Future.try_fulfil f 42 : bool)
        | None -> ())
  in
  knot := Some f4;
  Alcotest.(check int) "lazy force" 42 (Futures.Future.force f4);
  Obs.set_enabled false;
  let d = M.diff (M.snapshot ()) before in
  Alcotest.(check int) "4 created" 4 d.M.futures_created;
  Alcotest.(check int) "2 fulfilled" 2 d.M.futures_fulfilled;
  Alcotest.(check int) "1 cancelled" 1 d.M.futures_cancelled;
  Alcotest.(check int) "1 poisoned" 1 d.M.futures_poisoned;
  Alcotest.(check int) "1 forced" 1 d.M.futures_forced;
  Alcotest.(check int) "2 pendingness samples" 2
    (H.count d.M.pendingness_ns);
  let count tag =
    List.length (List.filter (fun e -> e.T.e_tag = tag) (T.events ()))
  in
  Alcotest.(check int) "created events" 4 (count E.future_created);
  Alcotest.(check int) "one fulfilled event per fulfilment" 2
    (count E.future_fulfilled);
  Alcotest.(check int) "exactly one cancelled event" 1
    (count E.future_cancelled);
  Alcotest.(check int) "exactly one poisoned event" 1
    (count E.future_poisoned);
  Alcotest.(check int) "exactly one forced event" 1 (count E.future_forced)

(* A future born while the switch was off stays untracked even if the
   switch is on by the time it resolves: no spurious terminal events. *)
let test_untracked_future () =
  let f : int Futures.Future.t = Futures.Future.create () in
  Obs.set_enabled true;
  ignore (Futures.Future.try_fulfil f 1 : bool);
  Obs.set_enabled false;
  let terminal =
    List.filter (fun e -> E.is_terminal e.T.e_tag) (T.events ())
  in
  Alcotest.(check int) "no terminal event for an untracked future" 0
    (List.length terminal)

(* Splice events carry the window size; a full flush of a weak stack
   handle emits one splice for the whole batch. *)
let test_splice_batch () =
  Obs.set_enabled true;
  let before = M.snapshot () in
  let s = Fl.Weak_stack.create () in
  let h = Fl.Weak_stack.handle s in
  let n = 24 in
  let futs = List.init n (fun i -> Fl.Weak_stack.push h i) in
  Fl.Weak_stack.flush h;
  List.iter (fun f -> Futures.Future.force f) futs;
  Obs.set_enabled false;
  let d = M.diff (M.snapshot ()) before in
  Alcotest.(check bool) "splices happened" true (d.M.splices >= 1);
  Alcotest.(check int) "splice_ops covers the batch" n d.M.splice_ops;
  Alcotest.(check bool) "mean batch size > 1 (amortization visible)" true
    (M.mean_splice_batch d > 1.0);
  (* Splice events carry batch size in [e_a], window kind in [e_b]. *)
  let pushes =
    List.filter
      (fun e ->
        e.T.e_tag = E.window_splice && e.T.e_b = E.k_weak_stack_push)
      (T.events ())
  in
  Alcotest.(check bool) "a push splice event exists" true (pushes <> []);
  Alcotest.(check int) "splice event sizes sum to the batch" n
    (List.fold_left (fun acc e -> acc + e.T.e_a) 0 pushes)

(* ------------------------- allocation budget ------------------------- *)

(* The record path allocates nothing: fulfilling tracked futures with
   the switch on costs the same minor words as with it off. Timing
   assertions are flaky in CI; allocation is deterministic. *)
let test_record_path_no_alloc () =
  if Faults.enabled () then Alcotest.skip ();
  let rounds = 2_000 in
  let words_per_op enabled =
    Obs.set_enabled enabled;
    (* Warm up: materialize this domain's ring and any lazy state. *)
    for _ = 1 to 64 do
      let f : int Futures.Future.t = Futures.Future.create () in
      ignore (Futures.Future.try_fulfil f 1 : bool);
      ignore (Futures.Future.force f : int)
    done;
    Gc.full_major ();
    let before = Gc.minor_words () in
    for _ = 1 to rounds do
      let f : int Futures.Future.t = Futures.Future.create () in
      ignore (Futures.Future.try_fulfil f 1 : bool);
      ignore (Futures.Future.force f : int)
    done;
    let after = Gc.minor_words () in
    Obs.set_enabled false;
    (after -. before) /. float_of_int rounds
  in
  let off = words_per_op false in
  let on = words_per_op true in
  Alcotest.(check bool)
    (Printf.sprintf
       "recording allocates nothing (off %.2f, on %.2f words/op)" off on)
    true
    (on -. off <= 0.5)

(* --------------------------- chaos integration --------------------------- *)

let with_timeout ?(seconds = 60.0) label f =
  let result = Atomic.make None in
  let d =
    Domain.spawn (fun () ->
        let r = match f () with v -> Ok v | exception e -> Error e in
        Atomic.set result (Some r))
  in
  let deadline = Sync.Mono.now () +. seconds in
  let rec poll () =
    match Atomic.get result with
    | Some r -> (
        Domain.join d;
        match r with Ok v -> v | Error e -> raise e)
    | None ->
        if Sync.Mono.now () > deadline then
          Alcotest.failf "%s: no recovery within %.0fs (hang)" label seconds
        else begin
          Unix.sleepf 0.002;
          poll ()
        end
  in
  poll ()

(* Scripted kill schedule: thread 0 publishes futures into its window,
   registers its handle's abandon as recovery hook, and dies before
   flushing. The trace must show the kill, the poisons, and the
   recovery — and every poison timestamp must precede the recovery
   timestamp (the watchdog emits worker.recovered only after the
   abandon hook has poisoned the orphans). *)
let test_poison_precedes_recovery () =
  Obs.set_enabled true;
  Faults.on "lifecycle.victim" (fun _ -> Faults.Kill);
  let orphans = 5 in
  let s = Fl.Weak_stack.create () in
  let worker () ~thread ~ops =
    let h = Fl.Weak_stack.handle s in
    Workload.Runner.set_abandon_hook (fun () -> Fl.Weak_stack.abandon h);
    if thread = 0 then begin
      for j = 1 to orphans do
        ignore (Fl.Weak_stack.push h j : unit Futures.Future.t)
      done;
      Faults.point "lifecycle.victim";
      Alcotest.fail "victim survived its kill"
    end
    else
      for i = 1 to ops do
        Workload.Runner.heartbeat ();
        ignore (Fl.Weak_stack.push h (1_000 + i) : unit Futures.Future.t);
        if i mod 16 = 0 then Fl.Weak_stack.flush h
      done
  in
  let m =
    Fun.protect
      ~finally:(fun () -> Faults.clear_all ())
      (fun () ->
        with_timeout "poison-precedes-recovery" (fun () ->
            Workload.Runner.run ~threads:2 ~repeats:1 ~ops_per_thread:64
              ~setup:(fun () -> ())
              ~worker
              ~teardown:(fun () -> ())
              ~watchdog:0.002 ()))
  in
  Obs.set_enabled false;
  Alcotest.(check int) "victim killed" 1 m.Workload.Runner.killed;
  Alcotest.(check bool) "runner recovered" true
    (m.Workload.Runner.recovered >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "orphans poisoned (got %d)" m.Workload.Runner.poisoned)
    true
    (m.Workload.Runner.poisoned >= orphans);
  let evs = T.events () in
  let find tag = List.filter (fun e -> e.T.e_tag = tag) evs in
  let kills = find E.worker_killed in
  let poisons = find E.future_poisoned in
  let recoveries = find E.worker_recovered in
  Alcotest.(check int) "one worker.killed event" 1 (List.length kills);
  Alcotest.(check bool) "worker.recovered event present" true
    (recoveries <> []);
  Alcotest.(check bool)
    (Printf.sprintf "poison events present (got %d)" (List.length poisons))
    true
    (List.length poisons >= orphans);
  let first_recovery =
    List.fold_left
      (fun acc e -> min acc e.T.e_ts)
      max_int recoveries
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "every poison precedes the recovery event" true
        (p.T.e_ts <= first_recovery))
    poisons;
  let recovery = List.hd recoveries in
  Alcotest.(check bool) "recovery event reports the poison count" true
    (recovery.T.e_b >= orphans)

(* Snapshot/diff under concurrent recording: counters are monotone and
   snapshots read stripe-by-stripe, so successive diffs taken by one
   reader are non-negative and telescope — summing every epoch's diff
   (plus the final tail) must account for every recorded event exactly,
   no losses and no double counting. *)
let test_concurrent_snapshot_diff () =
  Obs.set_enabled true;
  let domains = 4 and per = 20_000 in
  let done_ = Atomic.make 0 in
  let worker () =
    for _ = 1 to per do
      let b = Obs.future_created () in
      Obs.future_fulfilled ~born:b
    done;
    Atomic.incr done_
  in
  let created = ref 0 and fulfilled = ref 0 in
  (* Baseline before any worker records, or head-of-run events would
     fall outside every diff. *)
  let last = ref (M.snapshot ()) in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  let absorb () =
    let now = M.snapshot () in
    let d = M.diff now !last in
    last := now;
    Alcotest.(check bool) "created delta non-negative" true
      (d.M.futures_created >= 0);
    Alcotest.(check bool) "fulfilled delta non-negative" true
      (d.M.futures_fulfilled >= 0);
    created := !created + d.M.futures_created;
    fulfilled := !fulfilled + d.M.futures_fulfilled
  in
  while Atomic.get done_ < domains do
    absorb ()
  done;
  List.iter Domain.join ds;
  absorb ();
  Alcotest.(check int) "every creation accounted across epochs"
    (domains * per) !created;
  Alcotest.(check int) "every fulfilment accounted across epochs"
    (domains * per) !fulfilled

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket math" `Quick
            (fresh test_histogram_buckets);
          Alcotest.test_case "record / percentiles / diff" `Quick
            (fresh test_histogram_record_percentiles);
          Alcotest.test_case "Stats delegates" `Quick
            (fresh test_stats_delegates);
        ] );
      ( "switch",
        [
          Alcotest.test_case "wrappers are no-ops when off" `Quick
            (fresh test_switch_off_is_noop);
          Alcotest.test_case "structures silent when off" `Quick
            (fresh test_structures_silent_when_off);
          Alcotest.test_case "record path allocates nothing" `Quick
            (fresh test_record_path_no_alloc);
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring overwrites oldest" `Quick
            (fresh test_ring_overwrite);
          Alcotest.test_case "multi-domain export sorted" `Quick
            (fresh test_multi_domain_ordering);
          Alcotest.test_case "conformance sampling keeps pairs" `Quick
            (fresh test_conformance_sampling);
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "terminal states emit exactly once" `Quick
            (fresh test_lifecycle_roundtrip);
          Alcotest.test_case "untracked futures stay silent" `Quick
            (fresh test_untracked_future);
          Alcotest.test_case "splice events carry batch size" `Quick
            (fresh test_splice_batch);
          Alcotest.test_case "snapshot/diff under concurrent recording"
            `Quick
            (fresh test_concurrent_snapshot_diff);
        ] );
      ( "chaos",
        [
          Alcotest.test_case "poison precedes recovery in trace" `Quick
            (fresh test_poison_precedes_recovery);
        ] );
    ]
