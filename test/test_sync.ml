(* Tests for the sync substrate: backoff, spin lock, barrier, counter. *)

let test_backoff_window_growth () =
  let b = Sync.Backoff.create ~min_wait:4 ~max_wait:64 () in
  Alcotest.(check int) "initial window" 4 (Sync.Backoff.current_window b);
  Sync.Backoff.once b;
  Alcotest.(check int) "doubled" 8 (Sync.Backoff.current_window b);
  Sync.Backoff.once b;
  Sync.Backoff.once b;
  Sync.Backoff.once b;
  Alcotest.(check int) "capped" 64 (Sync.Backoff.current_window b);
  Sync.Backoff.once b;
  Alcotest.(check int) "stays capped" 64 (Sync.Backoff.current_window b)

let test_backoff_reset () =
  let b = Sync.Backoff.create ~min_wait:2 ~max_wait:32 () in
  Sync.Backoff.once b;
  Sync.Backoff.once b;
  Sync.Backoff.reset b;
  Alcotest.(check int) "reset to min" 2 (Sync.Backoff.current_window b)

let test_backoff_budget () =
  let b = Sync.Backoff.create ~min_wait:2 ~max_wait:8 ~budget:3 () in
  Alcotest.(check bool) "fresh streak" false (Sync.Backoff.give_up b);
  Sync.Backoff.once b;
  Sync.Backoff.once b;
  Alcotest.(check int) "rounds counted" 2 (Sync.Backoff.rounds b);
  Alcotest.(check bool) "under budget" false (Sync.Backoff.give_up b);
  Sync.Backoff.once b;
  Alcotest.(check bool) "budget exhausted" true (Sync.Backoff.give_up b);
  (* give_up never blocks and never resets by itself. *)
  Alcotest.(check bool) "still exhausted" true (Sync.Backoff.give_up b);
  (* A reset starts a new streak: the budget applies per streak, so a
     waiter that observes progress can keep waiting indefinitely. *)
  Sync.Backoff.reset b;
  Alcotest.(check int) "rounds zeroed" 0 (Sync.Backoff.rounds b);
  Alcotest.(check bool) "patience restored" false (Sync.Backoff.give_up b)

let test_backoff_no_budget () =
  let b = Sync.Backoff.create ~min_wait:2 ~max_wait:8 () in
  for _ = 1 to 100 do
    Sync.Backoff.once b
  done;
  Alcotest.(check bool) "never gives up without a budget" false
    (Sync.Backoff.give_up b)

let test_backoff_yields () =
  (* Past the yield threshold, rounds sleep instead of pure-spinning —
     that is what keeps waits live when domains outnumber cores. *)
  let b = Sync.Backoff.create ~min_wait:2 ~max_wait:8 () in
  for _ = 1 to 4 do
    Sync.Backoff.once b
  done;
  Alcotest.(check int) "no yields up to the threshold" 0
    (Sync.Backoff.yields b);
  Sync.Backoff.once b;
  Sync.Backoff.once b;
  Alcotest.(check int) "every later round yields" 2 (Sync.Backoff.yields b);
  (* reset starts a new streak but keeps the lifetime yield count. *)
  Sync.Backoff.reset b;
  Alcotest.(check int) "yields survive reset" 2 (Sync.Backoff.yields b)

let test_backoff_invalid_args () =
  Alcotest.check_raises "min_wait 0" (Invalid_argument
      "Backoff.create: min_wait must be positive") (fun () ->
      ignore (Sync.Backoff.create ~min_wait:0 ()));
  Alcotest.check_raises "max < min" (Invalid_argument
      "Backoff.create: max_wait must be >= min_wait") (fun () ->
      ignore (Sync.Backoff.create ~min_wait:10 ~max_wait:5 ()));
  Alcotest.check_raises "budget 0" (Invalid_argument
      "Backoff.create: budget must be positive") (fun () ->
      ignore (Sync.Backoff.create ~budget:0 ()))

let test_spinlock_basic () =
  let l = Sync.Spinlock.create () in
  Alcotest.(check bool) "initially unlocked" false (Sync.Spinlock.is_locked l);
  Alcotest.(check bool) "try_acquire" true (Sync.Spinlock.try_acquire l);
  Alcotest.(check bool) "locked" true (Sync.Spinlock.is_locked l);
  Alcotest.(check bool) "second try fails" false (Sync.Spinlock.try_acquire l);
  Sync.Spinlock.release l;
  Alcotest.(check bool) "released" false (Sync.Spinlock.is_locked l)

let test_spinlock_release_unheld () =
  let l = Sync.Spinlock.create () in
  Alcotest.check_raises "release unheld"
    (Invalid_argument "Spinlock.release: lock is not held") (fun () ->
      Sync.Spinlock.release l)

let test_spinlock_with_lock_exception () =
  let l = Sync.Spinlock.create () in
  (try Sync.Spinlock.with_lock l (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check bool) "released after exception" false
    (Sync.Spinlock.is_locked l)

let test_spinlock_acquire_until_ready () =
  let l = Sync.Spinlock.create () in
  Sync.Spinlock.acquire l;
  (* stop immediately: cannot acquire, should bail out *)
  let got = Sync.Spinlock.acquire_until l (fun () -> true) in
  Alcotest.(check bool) "bailed out" false got;
  Sync.Spinlock.release l;
  let got = Sync.Spinlock.acquire_until l (fun () -> false) in
  Alcotest.(check bool) "acquired free lock" true got;
  Sync.Spinlock.release l

(* Mutual exclusion: domains increment a plain (non-atomic) counter under
   the lock; races would lose increments. *)
let test_spinlock_try_acquire_for () =
  let l = Sync.Spinlock.create () in
  Alcotest.(check bool) "free lock, immediate" true
    (Sync.Spinlock.try_acquire_for l ~seconds:0.05);
  (* Now held: a short deadline must expire without acquiring. *)
  let dt =
    Workload.Runner.time (fun () ->
        Alcotest.(check bool) "held lock, deadline expires" false
          (Sync.Spinlock.try_acquire_for l ~seconds:0.002))
  in
  Alcotest.(check bool) "waited at least the deadline" true (dt >= 0.002);
  Alcotest.(check bool) "still locked" true (Sync.Spinlock.is_locked l);
  Sync.Spinlock.release l;
  Alcotest.(check bool) "acquired once free again" true
    (Sync.Spinlock.try_acquire_for l ~seconds:0.05);
  Sync.Spinlock.release l

let test_spinlock_mutual_exclusion () =
  let l = Sync.Spinlock.create () in
  let counter = ref 0 in
  let domains = 4 and per_domain = 2_000 in
  let worker () =
    for _ = 1 to per_domain do
      Sync.Spinlock.with_lock l (fun () -> incr counter)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (domains * per_domain) !counter

let test_barrier_invalid () =
  Alcotest.check_raises "zero parties"
    (Invalid_argument "Barrier.create: parties must be positive") (fun () ->
      ignore (Sync.Barrier.create 0))

let test_barrier_single_party () =
  let b = Sync.Barrier.create 1 in
  (* must not block *)
  Sync.Barrier.wait b;
  Sync.Barrier.wait b;
  Alcotest.(check int) "parties" 1 (Sync.Barrier.parties b)

(* All domains must observe every phase: each phase, every domain writes
   its slot, then after the barrier checks everyone's slot from the
   previous phase. *)
let test_barrier_phases () =
  let domains = 4 and phases = 20 in
  let b = Sync.Barrier.create domains in
  let slots = Array.init domains (fun _ -> Atomic.make (-1)) in
  let failures = Atomic.make 0 in
  let worker i () =
    for phase = 0 to phases - 1 do
      Atomic.set slots.(i) phase;
      Sync.Barrier.wait b;
      (* Everyone must have reached [phase] by now. *)
      Array.iter
        (fun s -> if Atomic.get s < phase then Atomic.incr failures)
        slots;
      Sync.Barrier.wait b (* second barrier so nobody races ahead *)
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no stragglers seen" 0 (Atomic.get failures)

let test_cas_counter_single () =
  let c = Sync.Cas_counter.create () in
  Alcotest.(check int) "zero" 0 (Sync.Cas_counter.total c);
  Sync.Cas_counter.incr c;
  Sync.Cas_counter.incr c;
  Sync.Cas_counter.add c 5;
  Alcotest.(check int) "seven" 7 (Sync.Cas_counter.total c);
  Sync.Cas_counter.reset c;
  Alcotest.(check int) "reset" 0 (Sync.Cas_counter.total c)

let test_cas_counter_parallel () =
  let c = Sync.Cas_counter.create () in
  let domains = 4 and per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Sync.Cas_counter.incr c
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "all counted" (domains * per_domain)
    (Sync.Cas_counter.total c)

let () =
  Alcotest.run "sync"
    [
      ( "backoff",
        [
          Alcotest.test_case "window growth" `Quick test_backoff_window_growth;
          Alcotest.test_case "reset" `Quick test_backoff_reset;
          Alcotest.test_case "budget and give_up" `Quick test_backoff_budget;
          Alcotest.test_case "no budget never gives up" `Quick
            test_backoff_no_budget;
          Alcotest.test_case "yield threshold" `Quick test_backoff_yields;
          Alcotest.test_case "invalid args" `Quick test_backoff_invalid_args;
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "basic" `Quick test_spinlock_basic;
          Alcotest.test_case "release unheld" `Quick
            test_spinlock_release_unheld;
          Alcotest.test_case "with_lock releases on exception" `Quick
            test_spinlock_with_lock_exception;
          Alcotest.test_case "acquire_until" `Quick
            test_spinlock_acquire_until_ready;
          Alcotest.test_case "try_acquire_for" `Quick
            test_spinlock_try_acquire_for;
          Alcotest.test_case "mutual exclusion (4 domains)" `Slow
            test_spinlock_mutual_exclusion;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "invalid parties" `Quick test_barrier_invalid;
          Alcotest.test_case "single party" `Quick test_barrier_single_party;
          Alcotest.test_case "phases (4 domains)" `Slow test_barrier_phases;
        ] );
      ( "cas-counter",
        [
          Alcotest.test_case "single thread" `Quick test_cas_counter_single;
          Alcotest.test_case "parallel (4 domains)" `Slow
            test_cas_counter_parallel;
        ] );
    ]
