(* Tests for the three futures-based stacks (weak/medium/strong FL):
   sequential semantics, elimination and combining behaviour, pending
   bookkeeping, and multi-domain conservation. Linearizability of recorded
   concurrent histories is checked in test_integration.ml. *)

module Future = Futures.Future
module T = Lockfree.Treiber_stack

let force = Future.force

(* ------------------------------ weak ------------------------------- *)

let test_weak_push_pop_roundtrip () =
  let s = Fl.Weak_stack.create () in
  let h = Fl.Weak_stack.handle s in
  let f1 = Fl.Weak_stack.push h 1 in
  let f2 = Fl.Weak_stack.push h 2 in
  (* Forcing any future flushes the whole pending list. *)
  force f1;
  Alcotest.(check bool) "f2 flushed too" true (Future.is_ready f2);
  Alcotest.(check (list int)) "shared contents" [ 2; 1 ]
    (T.to_list (Fl.Weak_stack.shared s));
  let p = Fl.Weak_stack.pop h in
  Alcotest.(check (option int)) "pop top" (Some 2) (force p)

let test_weak_elimination_no_shared_access () =
  let s = Fl.Weak_stack.create () in
  let h = Fl.Weak_stack.handle s in
  let fpop = Fl.Weak_stack.pop h in
  Alcotest.(check int) "one pending" 1 (Fl.Weak_stack.pending_count h);
  (* A push must eliminate against the pending pop: both become ready
     without touching the shared stack. *)
  let fpush = Fl.Weak_stack.push h 7 in
  Alcotest.(check bool) "pop ready" true (Future.is_ready fpop);
  Alcotest.(check bool) "push ready" true (Future.is_ready fpush);
  Alcotest.(check (option int)) "pop got value" (Some 7) (force fpop);
  Alcotest.(check int) "nothing pending" 0 (Fl.Weak_stack.pending_count h);
  Alcotest.(check int) "zero CAS on shared stack" 0
    (T.cas_count (Fl.Weak_stack.shared s));
  Alcotest.(check bool) "shared untouched" true
    (T.is_empty (Fl.Weak_stack.shared s))

let test_weak_elimination_reorders () =
  (* pop before push on an empty stack: under weak-FL the pop may take
     effect after the push and return its value rather than None. *)
  let s = Fl.Weak_stack.create () in
  let h = Fl.Weak_stack.handle s in
  let fpop = Fl.Weak_stack.pop h in
  let _ = Fl.Weak_stack.push h 5 in
  Alcotest.(check (option int)) "reordered" (Some 5) (force fpop)

let test_weak_combining_single_cas () =
  let s = Fl.Weak_stack.create () in
  let h = Fl.Weak_stack.handle s in
  let fs = List.init 10 (fun i -> Fl.Weak_stack.push h i) in
  Alcotest.(check int) "ten pending" 10 (Fl.Weak_stack.pending_count h);
  Fl.Weak_stack.flush h;
  List.iter force fs;
  (* One multi-node push = exactly one CAS attempt (uncontended). *)
  Alcotest.(check int) "single CAS" 1 (T.cas_count (Fl.Weak_stack.shared s));
  Alcotest.(check int) "all present" 10 (T.length (Fl.Weak_stack.shared s))

let test_weak_excess_pops_empty () =
  let s = Fl.Weak_stack.create () in
  let h = Fl.Weak_stack.handle s in
  let f1 = Fl.Weak_stack.push h 1 in
  let f2 = Fl.Weak_stack.push h 2 in
  Fl.Weak_stack.flush h;
  force f1;
  force f2;
  let pops = List.init 4 (fun _ -> Fl.Weak_stack.pop h) in
  Fl.Weak_stack.flush h;
  let results = List.map force pops in
  Alcotest.(check (list (option int)))
    "two values then empties"
    [ Some 2; Some 1; None; None ]
    results

let test_weak_no_elimination_flag () =
  let s = Fl.Weak_stack.create ~elimination:false () in
  let h = Fl.Weak_stack.handle s in
  let fpop = Fl.Weak_stack.pop h in
  let fpush = Fl.Weak_stack.push h 3 in
  (* Without elimination both stay pending. *)
  Alcotest.(check bool) "pop pending" false (Future.is_ready fpop);
  Alcotest.(check bool) "push pending" false (Future.is_ready fpush);
  Alcotest.(check int) "two pending" 2 (Fl.Weak_stack.pending_count h);
  Fl.Weak_stack.flush h;
  (* Flush applies pops before pushes: the pop sees the empty stack. *)
  Alcotest.(check (option int)) "pop empty" None (force fpop);
  Alcotest.(check unit) "push applied" () (force fpush);
  Alcotest.(check (list int)) "value landed" [ 3 ]
    (T.to_list (Fl.Weak_stack.shared s))

(* ----------------------------- medium ------------------------------ *)

let test_medium_program_order () =
  let s = Fl.Medium_stack.create () in
  let h = Fl.Medium_stack.handle s in
  let f1 = Fl.Medium_stack.push h 1 in
  let f2 = Fl.Medium_stack.push h 2 in
  let fp = Fl.Medium_stack.pop h in
  (* pop eliminates with the most recent push (2). *)
  Alcotest.(check (option int)) "pop gets 2" (Some 2) (force fp);
  force f1;
  force f2;
  Alcotest.(check (list int)) "1 remains" [ 1 ]
    (T.to_list (Fl.Medium_stack.shared s))

let test_medium_pop_then_push_no_elimination () =
  (* A pop invoked before any pending push cannot be eliminated by a later
     push (that would reorder the thread's operations). *)
  let s = Fl.Medium_stack.create () in
  let h = Fl.Medium_stack.handle s in
  let fpop = Fl.Medium_stack.pop h in
  let fpush = Fl.Medium_stack.push h 9 in
  Alcotest.(check bool) "pop still pending" false (Future.is_ready fpop);
  (* On flush, the pop (older) must see the empty stack, then the push
     takes effect. *)
  Alcotest.(check (option int)) "pop sees empty" None (force fpop);
  Alcotest.(check unit) "push lands" () (force fpush);
  Alcotest.(check (list int)) "after flush" [ 9 ]
    (T.to_list (Fl.Medium_stack.shared s))

let test_medium_alternation_collapses () =
  let s = Fl.Medium_stack.create () in
  let h = Fl.Medium_stack.handle s in
  (* push 1; push 2; pop (=2); push 3; pop (=3); pop (=1) *)
  let fa = Fl.Medium_stack.push h 1 in
  let fb = Fl.Medium_stack.push h 2 in
  let p1 = Fl.Medium_stack.pop h in
  let fc = Fl.Medium_stack.push h 3 in
  let p2 = Fl.Medium_stack.pop h in
  let p3 = Fl.Medium_stack.pop h in
  Alcotest.(check (option int)) "p1" (Some 2) (force p1);
  Alcotest.(check (option int)) "p2" (Some 3) (force p2);
  Alcotest.(check (option int)) "p3" (Some 1) (force p3);
  force fa;
  force fb;
  force fc;
  Alcotest.(check bool) "stack empty" true
    (T.is_empty (Fl.Medium_stack.shared s))

let test_medium_combining_cas_count () =
  let s = Fl.Medium_stack.create () in
  let h = Fl.Medium_stack.handle s in
  let pushes = List.init 8 (fun i -> Fl.Medium_stack.push h i) in
  Fl.Medium_stack.flush h;
  List.iter force pushes;
  let pops = List.init 8 (fun _ -> Fl.Medium_stack.pop h) in
  Fl.Medium_stack.flush h;
  ignore (List.map force pops);
  (* One CAS for the combined push, one for the combined pop. *)
  Alcotest.(check int) "two CAS total" 2
    (T.cas_count (Fl.Medium_stack.shared s))

let test_medium_pop_order_lifo () =
  let s = Fl.Medium_stack.create () in
  let h = Fl.Medium_stack.handle s in
  List.iter (fun i -> ignore (Fl.Medium_stack.push h i)) [ 1; 2; 3 ];
  Fl.Medium_stack.flush h;
  let p1 = Fl.Medium_stack.pop h in
  let p2 = Fl.Medium_stack.pop h in
  Fl.Medium_stack.flush h;
  (* Older pop takes effect first: gets the top (3), then 2. *)
  Alcotest.(check (option int)) "first pop" (Some 3) (force p1);
  Alcotest.(check (option int)) "second pop" (Some 2) (force p2)

(* The schedule that makes eager (invocation-time) elimination unsound
   under medium-FL, recorded and checked: thread A leaves pop1 pending,
   then push1, then pop2 (which pairs with push1); if pop2's future were
   fulfilled eagerly, a push by thread B issued strictly AFTER pop2's
   evaluation and popped by A's still-pending pop1 would create the cycle
   pop1 ≺ push1 ≺ pop2 ≺ pushB ≺ pop1. The flush-time pairing must keep
   the recorded history medium-FL. *)
let test_medium_no_eager_elimination_cycle () =
  let module H = Lin.History in
  let module SSpec = Lin.Spec.Stack_spec in
  let module CS = Lin.Checker.Make (SSpec) in
  let s = Fl.Medium_stack.create () in
  let clock = H.clock () in
  let log_a = H.log () and log_b = H.log () in
  let ha = Fl.Medium_stack.handle s in
  (* A: pop1 pending; push1; pop2; evaluate ONLY pop2. *)
  let _f_pop1, c_pop1 =
    H.recorded_call log_a clock ~thread:0 ~obj:0 (fun () ->
        Fl.Medium_stack.pop ha)
  in
  let _f_push1, c_push1 =
    H.recorded_call log_a clock ~thread:0 ~obj:0 (fun () ->
        Fl.Medium_stack.push ha 5)
  in
  let _f_pop2, c_pop2 =
    H.recorded_call log_a clock ~thread:0 ~obj:0 (fun () ->
        Fl.Medium_stack.pop ha)
  in
  let pop2_result = c_pop2 (fun r -> SSpec.Pop r) in
  (* B: push 7 strictly after pop2's evaluation completed, from another
     domain with its own handle, fully evaluated. *)
  let b =
    Domain.spawn (fun () ->
        let hb = Fl.Medium_stack.handle s in
        let _f, c =
          H.recorded_call log_b clock ~thread:1 ~obj:0 (fun () ->
              Fl.Medium_stack.push hb 7)
        in
        ignore (c (fun () -> SSpec.Push 7)))
  in
  Domain.join b;
  (* A: now evaluate pop1 and push1. *)
  let pop1_result = c_pop1 (fun r -> SSpec.Pop r) in
  ignore (c_push1 (fun () -> SSpec.Push 5));
  let history = H.merge [ log_a; log_b ] in
  if not (CS.check Lin.Order.Medium history) then begin
    Format.printf "%a" CS.pp_history history;
    Alcotest.fail "medium stack produced a non-medium-FL history"
  end;
  (* With flush-time pairing, pop2 still pairs with push1 and pop1 was
     applied first (against the then-empty shared stack). *)
  Alcotest.(check (option int)) "pop2 paired with push1" (Some 5) pop2_result;
  Alcotest.(check (option int)) "pop1 saw the pre-push state" None
    pop1_result

(* ----------------------------- strong ------------------------------ *)

let test_strong_immediate_order () =
  let s = Fl.Strong_stack.create () in
  let f1 = Fl.Strong_stack.push s 1 in
  let f2 = Fl.Strong_stack.push s 2 in
  let p = Fl.Strong_stack.pop s in
  (* Strong-FL: effects follow invocation order regardless of forcing
     order — force the pop first. *)
  Alcotest.(check (option int)) "pop is 2" (Some 2) (force p);
  force f1;
  force f2;
  Fl.Strong_stack.drain s;
  Alcotest.(check (list int)) "remaining" [ 1 ] (Fl.Strong_stack.to_list s)

let test_strong_pop_empty () =
  let s : int Fl.Strong_stack.t = Fl.Strong_stack.create () in
  let p = Fl.Strong_stack.pop s in
  Alcotest.(check (option int)) "empty" None (force p)

let test_strong_batch_elimination () =
  let s = Fl.Strong_stack.create () in
  (* A balanced batch: all pops are eliminated by preceding pushes and the
     sequential stack is never touched. *)
  let fs = List.init 6 (fun i -> Fl.Strong_stack.push s i) in
  let ps = List.init 6 (fun _ -> Fl.Strong_stack.pop s) in
  List.iter force fs;
  let vs = List.map force ps in
  Alcotest.(check (list (option int)))
    "LIFO within batch"
    [ Some 5; Some 4; Some 3; Some 2; Some 1; Some 0 ]
    vs;
  Alcotest.(check int) "sequential instance untouched" 0
    (Fl.Strong_stack.length s)

let test_strong_delegation () =
  (* One domain forces; the other's futures get fulfilled by delegation. *)
  let s = Fl.Strong_stack.create () in
  let submitted = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let f = Fl.Strong_stack.push s 42 in
        Atomic.set submitted true;
        (* Wait until someone else evaluates our pending push. *)
        Future.await f)
  in
  let rec wait_for_submit tries =
    if (not (Atomic.get submitted)) && tries > 0 then begin
      Unix.sleepf 0.001;
      wait_for_submit (tries - 1)
    end
  in
  wait_for_submit 5000;
  Alcotest.(check bool) "producer submitted" true (Atomic.get submitted);
  let p = Fl.Strong_stack.pop s in
  let v = force p in
  Domain.join d;
  (* Our pop was submitted after their push, so it must return 42. *)
  Alcotest.(check (option int)) "delegated value" (Some 42) v

(* -------------------- cross-version conservation -------------------- *)

let conservation_test (impl : Fl.Registry.stack_impl) =
  let inst = impl.s_make () in
  let domains = 4 and ops = 2_000 in
  let sums = Array.make domains 0 and pushed = Array.make domains 0 in
  let worker i () =
    let o = inst.s_handle () in
    let rng = Workload.Rng.create ~seed:123 ~stream:i in
    let slack = Fl.Slack.create 10 in
    for n = 1 to ops do
      if Workload.Rng.bool rng then begin
        let v = (i * 1_000_000) + n in
        pushed.(i) <- pushed.(i) + v;
        let f = o.s_push v in
        Fl.Slack.note slack (fun () -> Future.force f)
      end
      else
        let f = o.s_pop () in
        Fl.Slack.note slack (fun () ->
            match Future.force f with
            | Some v -> sums.(i) <- sums.(i) + v
            | None -> ())
    done;
    Fl.Slack.drain slack;
    o.s_flush ()
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  inst.s_drain ();
  let total_pushed = Array.fold_left ( + ) 0 pushed in
  let total_popped = Array.fold_left ( + ) 0 sums in
  let remaining = List.fold_left ( + ) 0 (inst.s_contents ()) in
  Alcotest.(check int)
    (impl.s_name ^ ": sum conservation")
    total_pushed (total_popped + remaining)

let test_conservation_all () =
  List.iter conservation_test Fl.Registry.stack_impls

(* Single-thread model property. Under medium- and strong-FL a thread's
   operations take effect in program order, so regardless of slack the
   results must match a plain LIFO model replayed in invocation order.
   (Weak-FL deliberately violates this — elimination reorders pop before
   push — so it is checked against the ≺-search in the integration suite
   instead.) *)
let prop_program_order_model (impl : Fl.Registry.stack_impl) =
  QCheck.Test.make
    ~name:(impl.s_name ^ " stack == LIFO model at any slack")
    ~count:300
    QCheck.(pair (list (pair bool (int_bound 50))) (int_bound 9))
    (fun (script, slack_minus_1) ->
      let inst = impl.s_make () in
      let o = inst.s_handle () in
      let sl = Fl.Slack.create (slack_minus_1 + 1) in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_push, v) ->
          if is_push then begin
            model := v :: !model;
            let f = o.s_push v in
            Fl.Slack.note sl (fun () -> Future.force f)
          end
          else begin
            let expected =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            let f = o.s_pop () in
            Fl.Slack.note sl (fun () ->
                if Future.force f <> expected then ok := false)
          end)
        script;
      Fl.Slack.drain sl;
      o.s_flush ();
      inst.s_drain ();
      !ok && inst.s_contents () = !model)

let program_order_props =
  List.map
    (fun name ->
      QCheck_alcotest.to_alcotest
        (prop_program_order_model (Fl.Registry.find_stack name)))
    [ "lockfree"; "flatcomb"; "medium"; "strong" ]

let () =
  Alcotest.run "fl-stack"
    [
      ( "weak",
        [
          Alcotest.test_case "push/pop roundtrip" `Quick
            test_weak_push_pop_roundtrip;
          Alcotest.test_case "elimination avoids shared stack" `Quick
            test_weak_elimination_no_shared_access;
          Alcotest.test_case "elimination reorders pop/push" `Quick
            test_weak_elimination_reorders;
          Alcotest.test_case "combining is one CAS" `Quick
            test_weak_combining_single_cas;
          Alcotest.test_case "excess pops see empty" `Quick
            test_weak_excess_pops_empty;
          Alcotest.test_case "elimination can be disabled" `Quick
            test_weak_no_elimination_flag;
        ] );
      ( "medium",
        [
          Alcotest.test_case "pop pairs with latest push" `Quick
            test_medium_program_order;
          Alcotest.test_case "earlier pop not eliminated" `Quick
            test_medium_pop_then_push_no_elimination;
          Alcotest.test_case "alternation collapses" `Quick
            test_medium_alternation_collapses;
          Alcotest.test_case "combining CAS count" `Quick
            test_medium_combining_cas_count;
          Alcotest.test_case "pop order is LIFO" `Quick
            test_medium_pop_order_lifo;
          Alcotest.test_case "no eager-elimination cycle (checked)" `Quick
            test_medium_no_eager_elimination_cycle;
        ] );
      ( "strong",
        [
          Alcotest.test_case "invocation order respected" `Quick
            test_strong_immediate_order;
          Alcotest.test_case "pop empty" `Quick test_strong_pop_empty;
          Alcotest.test_case "batch elimination" `Quick
            test_strong_batch_elimination;
          Alcotest.test_case "delegation across domains" `Slow
            test_strong_delegation;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "all implementations (4 domains)" `Slow
            test_conservation_all;
        ] );
      ("model", program_order_props);
    ]
