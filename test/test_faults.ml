(* Fault-injection tests: the Faults subsystem itself, the combiner-lease
   takeover protocol under recorded stall schedules, bounded waits
   (Future timeouts, Spinlock deadlines) under stalled producers, and
   runner chaos mode (killed/stalled workers) against the strong, medium
   and weak queues and stacks — with conformance re-checks after every
   provoked failure. *)

module Future = Futures.Future
module FC = Combining.Flat_combining
module R = Fl.Registry

(* Every test leaves the global injection state clean, even on failure. *)
let with_clean_faults f () =
  Fun.protect ~finally:Faults.clear_all (fun () ->
      Faults.clear_all ();
      f ())

(* ----------------------------- faults ------------------------------- *)

let test_point_disabled_noop () =
  Faults.clear_all ();
  (* Must not raise, delay, or count. *)
  Faults.point "nosuch";
  Alcotest.(check int) "no hits counted when disabled" 0 (Faults.hits "nosuch")

let test_scripted_actions () =
  let log = ref [] in
  Faults.on "t.p" (fun k ->
      log := k :: !log;
      if k = 2 then Faults.Kill else Faults.Nothing);
  Faults.point "t.p";
  Faults.point "t.p";
  Alcotest.check_raises "third hit killed" (Faults.Killed "t.p") (fun () ->
      Faults.point "t.p");
  Alcotest.(check (list int)) "hit indices in order" [ 0; 1; 2 ]
    (List.rev !log);
  Alcotest.(check int) "hits counted" 3 (Faults.hits "t.p");
  Faults.clear "t.p";
  Faults.point "t.p";
  Alcotest.(check int) "cleared script no longer counts" 3 (Faults.hits "t.p")

let test_scripted_delay_and_sleep () =
  (* Delay and Sleep must perturb, not fail. *)
  Faults.on "t.d" (fun _ -> Faults.Delay 100);
  Faults.on "t.s" (fun _ -> Faults.Sleep 1e-4);
  Faults.point "t.d";
  let dt = Workload.Runner.time (fun () -> Faults.point "t.s") in
  Alcotest.(check bool) "sleep actually slept" true (dt >= 5e-5)

let test_seeded_mode_deterministic () =
  Faults.enable ~prob:0.5 ~seed:7 ();
  Alcotest.(check bool) "enabled" true (Faults.enabled ());
  (* Same seed, same domain, same hit sequence => same perturbations: we
     can only observe the absence of kills (kill is off) and that
     counters advance. *)
  for _ = 1 to 50 do
    Faults.point "t.seeded"
  done;
  Alcotest.(check int) "all hits counted" 50 (Faults.hits "t.seeded");
  Faults.disable ();
  Alcotest.(check bool) "disabled" false (Faults.enabled ());
  Faults.point "t.seeded";
  Alcotest.(check int) "fast path stops counting" 50 (Faults.hits "t.seeded")

let test_reset_counters () =
  Faults.on "t.r" (fun _ -> Faults.Nothing);
  Faults.point "t.r";
  Faults.point "t.r";
  Faults.reset_counters ();
  Alcotest.(check int) "zeroed" 0 (Faults.hits "t.r")

(* ------------------------ combiner takeover -------------------------- *)

(* One recorded schedule per seed: the seed fixes how many fault-free
   warm-up passes precede the stall, and how long the stalled combiner
   sleeps. Two domains then contend; whichever one holds the combiner
   term when the scripted pass fires goes to sleep mid-pass, and the
   other must usurp the lease within its takeover budget instead of
   spinning for the whole stall. *)
let takeover_schedule seed =
  let rng = Workload.Rng.create ~seed ~stream:0 in
  let warmup = Workload.Rng.below rng 3 in
  let stall = 0.01 +. (0.02 *. Workload.Rng.float rng) in
  (warmup, stall)

let test_takeover seed () =
  let warmup, stall = takeover_schedule seed in
  let sum = ref 0 in
  let t =
    FC.create ~takeover_budget:8
      ~apply:(fun op ->
        sum := !sum + op;
        !sum)
      ()
  in
  Faults.on "fc.pass" (fun k ->
      if k = warmup then Faults.Sleep stall else Faults.Nothing);
  let gate = Atomic.make false in
  let d1 =
    Domain.spawn (fun () ->
        let h = FC.handle t in
        for i = 1 to warmup do
          ignore (FC.apply h i)
        done;
        Atomic.set gate true;
        ignore (FC.apply h 1000))
  in
  let d2 =
    Domain.spawn (fun () ->
        let h = FC.handle t in
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        ignore (FC.apply h 2000))
  in
  let elapsed =
    Workload.Runner.time (fun () ->
        Domain.join d1;
        Domain.join d2)
  in
  ignore elapsed;
  Alcotest.(check int) "every op applied exactly once"
    ((warmup * (warmup + 1) / 2) + 3000)
    !sum;
  Alcotest.(check bool) "a waiter usurped the stalled combiner" true
    (FC.combiner_takeovers t >= 1);
  (* The same recorded schedule must also leave bounded waits bounded:
     forcing a future nobody will fulfil times out rather than spinning. *)
  let fut : int Future.t = Future.create () in
  Alcotest.check_raises "force_until times out" Future.Timeout (fun () ->
      ignore
        (Future.force_until fut ~deadline:(Unix.gettimeofday () +. 0.003)));
  (* Structure-level invariants after the provoked stall: the
     flat-combining implementations still pass their conformance
     condition. *)
  let outcome = Conformance.check_stack ~rounds:2 (R.find_stack "flatcomb") in
  Alcotest.(check int) "flatcomb stack conformance clean" 0
    outcome.Conformance.violations;
  let outcome = Conformance.check_queue ~rounds:2 (R.find_queue "flatcomb") in
  Alcotest.(check int) "flatcomb queue conformance clean" 0
    outcome.Conformance.violations

(* A combiner killed mid-pass leaves the lease held forever (a dead
   thread releases nothing); the next applier must usurp it. *)
let test_takeover_after_death () =
  let sum = ref 0 in
  let t =
    FC.create ~takeover_budget:8
      ~apply:(fun op ->
        sum := !sum + op;
        !sum)
      ()
  in
  Faults.on "fc.pass" (fun k -> if k = 0 then Faults.Kill else Faults.Nothing);
  let victim =
    Domain.spawn (fun () ->
        let h = FC.handle t in
        match FC.apply h 7 with
        | _ -> Alcotest.fail "victim survived its kill"
        | exception Faults.Killed _ -> ())
  in
  Domain.join victim;
  (* The victim died as combiner, before answering anyone (including
     itself). A later thread must take the orphaned lease over; its scan
     starts at its own (newest) record, so it sees its own result first,
     and also answers the victim's still-published request. *)
  let h = FC.handle t in
  Alcotest.(check int) "applied past the dead combiner" 5 (FC.apply h 5);
  Alcotest.(check int) "victim's orphaned op applied too" (5 + 7) !sum;
  Alcotest.(check bool) "lease was usurped" true (FC.combiner_takeovers t >= 1)

(* Exceptions raised by the wrapped operation must answer every record:
   the raiser gets the exception re-raised, everyone else their result. *)
let test_apply_op_exception_answers_all () =
  let t =
    FC.create
      ~apply:(fun op -> if op < 0 then failwith "bad op" else op * 10)
      ()
  in
  let n = 4 and per = 500 in
  let errors = Array.make n 0 in
  let oks = Array.make n 0 in
  let ds =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            let h = FC.handle t in
            for j = 1 to per do
              (* Thread 0 keeps throwing bad ops into the mix. *)
              if i = 0 && j mod 3 = 0 then
                match FC.apply h (-j) with
                | _ -> Alcotest.fail "negative op must raise"
                | exception Failure _ -> errors.(i) <- errors.(i) + 1
              else
                let v = FC.apply h j in
                if v = j * 10 then oks.(i) <- oks.(i) + 1
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "raiser saw every exception" (per / 3) errors.(0);
  List.iteri
    (fun i expected ->
      Alcotest.(check int)
        (Printf.sprintf "thread %d answered" i)
        expected oks.(i))
    (per - (per / 3) :: List.init (n - 1) (fun _ -> per))

(* ------------------------- bounded waits ----------------------------- *)

let test_await_for_timeout_and_recovery seed () =
  (* Recorded schedule: the producer stalls (via the future.fulfil
     injection point) longer than the consumer's patience; the consumer
     times out, then recovers the value with an unbounded await. *)
  let rng = Workload.Rng.create ~seed ~stream:1 in
  let stall = 0.01 +. (0.01 *. Workload.Rng.float rng) in
  Faults.on "future.fulfil" (fun _ -> Faults.Sleep stall);
  let fut = Future.create () in
  let producer = Domain.spawn (fun () -> Future.fulfil fut 42) in
  Alcotest.check_raises "await_for gives up first" Future.Timeout (fun () ->
      ignore (Future.await_for fut ~seconds:(stall /. 8.)));
  Alcotest.(check int) "value still arrives" 42 (Future.await fut);
  Domain.join producer

let test_force_until_ready_and_evaluator () =
  let f = Future.of_value 3 in
  Alcotest.(check int) "ready future ignores deadline" 3
    (Future.force_until f ~deadline:0.0);
  let g = Future.create () in
  Future.set_evaluator g (fun () -> Future.fulfil g 9);
  Alcotest.(check int) "evaluator runs regardless of deadline" 9
    (Future.force_until g ~deadline:0.0)

let test_spinlock_try_acquire_for () =
  let l = Sync.Spinlock.create () in
  Alcotest.(check bool) "free lock acquired" true
    (Sync.Spinlock.try_acquire_for l ~seconds:0.01);
  (* Held elsewhere: a short deadline must expire, a longer one must win
     once the holder releases. *)
  let release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Sync.Spinlock.release l)
  in
  Alcotest.(check bool) "deadline expires while held" false
    (Sync.Spinlock.try_acquire_for l ~seconds:0.005);
  Atomic.set release true;
  Alcotest.(check bool) "acquired after release" true
    (Sync.Spinlock.try_acquire_for l ~seconds:1.0);
  Sync.Spinlock.release l;
  Domain.join holder

(* --------------------------- runner chaos ---------------------------- *)

(* Chaos workloads: tagged, globally unique values so that whatever
   subset of operations survives a worker's death, the drained structure
   must contain no duplicates and nothing it was never given. A scripted
   kill at the per-op injection point additionally murders one worker
   mid-loop — futures pending, handle never flushed. *)

let tag thread uid = (thread * 1_000_000) + uid

let check_contents ~threads ~label contents =
  let sorted = List.sort_uniq compare contents in
  Alcotest.(check int)
    (label ^ ": no element duplicated by recovery")
    (List.length contents) (List.length sorted);
  List.iter
    (fun v ->
      if v < 0 || v / 1_000_000 >= threads then
        Alcotest.fail (label ^ ": fabricated element"))
    contents

(* Survivor order per producer (valid for strong and medium, whose
   program-order guarantees survive partial application; weak makes no
   such promise). *)
let check_queue_order ~label contents =
  let last = Hashtbl.create 4 in
  List.iter
    (fun v ->
      let p = v / 1_000_000 and n = v mod 1_000_000 in
      (match Hashtbl.find_opt last p with
      | Some m when m >= n ->
          Alcotest.fail (label ^ ": per-producer order broken")
      | _ -> ());
      Hashtbl.replace last p n)
    contents

let threads = 3
let ops = 200

let chaos_schedule seed =
  let rng = Workload.Rng.create ~seed ~stream:9 in
  (* Where in the run the scripted mid-loop kill lands. *)
  100 + Workload.Rng.below rng 300

let run_stack_chaos name seed =
  let impl = R.find_stack name in
  let kill_at = chaos_schedule seed in
  Faults.on "chaos.op" (fun k ->
      if k = kill_at then Faults.Kill else Faults.Nothing);
  let uid = Atomic.make 0 in
  let worker inst ~thread ~ops =
    let o = inst.R.s_handle () in
    let rng = Workload.Rng.create ~seed ~stream:thread in
    let sl = Fl.Slack.create 5 in
    for _ = 1 to ops do
      Faults.point "chaos.op";
      if Workload.Rng.bool rng then begin
        let f = o.R.s_push (tag thread (Atomic.fetch_and_add uid 1)) in
        Fl.Slack.note sl (fun () -> Future.force f)
      end
      else
        let f = o.R.s_pop () in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
    done;
    Fl.Slack.drain sl;
    o.R.s_flush ()
  in
  Workload.Runner.run ~threads ~repeats:2 ~ops_per_thread:ops
    ~setup:impl.R.s_make ~worker
    ~teardown:(fun inst ->
      inst.R.s_drain ();
      check_contents ~threads ~label:(name ^ " stack") (inst.R.s_contents ()))
    ~chaos:(Workload.Runner.chaos ~seed ())
    ()

let run_queue_chaos name seed =
  let impl = R.find_queue name in
  let kill_at = chaos_schedule (seed + 1) in
  Faults.on "chaos.op" (fun k ->
      if k = kill_at then Faults.Kill else Faults.Nothing);
  let uid = Atomic.make 0 in
  let worker inst ~thread ~ops =
    let o = inst.R.q_handle () in
    let rng = Workload.Rng.create ~seed ~stream:thread in
    let sl = Fl.Slack.create 5 in
    for _ = 1 to ops do
      Faults.point "chaos.op";
      if Workload.Rng.bool rng then begin
        let f = o.R.q_enq (tag thread (Atomic.fetch_and_add uid 1)) in
        Fl.Slack.note sl (fun () -> Future.force f)
      end
      else
        let f = o.R.q_deq () in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
    done;
    Fl.Slack.drain sl;
    o.R.q_flush ()
  in
  Workload.Runner.run ~threads ~repeats:2 ~ops_per_thread:ops
    ~setup:impl.R.q_make ~worker
    ~teardown:(fun inst ->
      inst.R.q_drain ();
      let contents = inst.R.q_contents () in
      check_contents ~threads ~label:(name ^ " queue") contents;
      if name <> "weak" then
        check_queue_order ~label:(name ^ " queue") contents)
    ~chaos:(Workload.Runner.chaos ~seed ())
    ()

let test_stack_chaos name seed () =
  let m = run_stack_chaos name seed in
  (* The scripted mid-loop kill always lands: kill_at < the minimum
     number of per-repeat op hits, so at least one worker dies with
     futures pending and its handle unflushed. *)
  Alcotest.(check bool) "at least one worker was killed" true
    (m.Workload.Runner.killed >= 1);
  Alcotest.(check int) "no unexplained failures" 0
    m.Workload.Runner.suppressed_failures;
  (* The implementation class still satisfies its claimed condition. *)
  let outcome = Conformance.check_stack ~rounds:2 (R.find_stack name) in
  Alcotest.(check int) "conformance clean after chaos" 0
    outcome.Conformance.violations

let test_queue_chaos name seed () =
  let m = run_queue_chaos name seed in
  Alcotest.(check bool) "at least one worker was killed" true
    (m.Workload.Runner.killed >= 1);
  Alcotest.(check int) "no unexplained failures" 0
    m.Workload.Runner.suppressed_failures;
  let outcome = Conformance.check_queue ~rounds:2 (R.find_queue name) in
  Alcotest.(check int) "conformance clean after chaos" 0
    outcome.Conformance.violations

(* ------------------------------ suite -------------------------------- *)

let takeover_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
let chaos_seeds = [ 41; 42 ]

let () =
  Alcotest.run "faults"
    [
      ( "points",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            (with_clean_faults test_point_disabled_noop);
          Alcotest.test_case "scripted actions" `Quick
            (with_clean_faults test_scripted_actions);
          Alcotest.test_case "delay and sleep" `Quick
            (with_clean_faults test_scripted_delay_and_sleep);
          Alcotest.test_case "seeded mode" `Quick
            (with_clean_faults test_seeded_mode_deterministic);
          Alcotest.test_case "reset counters" `Quick
            (with_clean_faults test_reset_counters);
        ] );
      ( "takeover",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "stalled combiner, schedule %d" seed)
              `Slow
              (with_clean_faults (test_takeover seed)))
          takeover_seeds
        @ [
            Alcotest.test_case "dead combiner leaves lease held" `Slow
              (with_clean_faults test_takeover_after_death);
            Alcotest.test_case "apply_op exception answers all" `Slow
              (with_clean_faults test_apply_op_exception_answers_all);
          ] );
      ( "bounded-waits",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "stalled fulfiller, schedule %d" seed)
              `Slow
              (with_clean_faults (test_await_for_timeout_and_recovery seed)))
          [ 21; 22; 23 ]
        @ [
            Alcotest.test_case "force_until ready/evaluator" `Quick
              (with_clean_faults test_force_until_ready_and_evaluator);
            Alcotest.test_case "spinlock try_acquire_for" `Slow
              (with_clean_faults test_spinlock_try_acquire_for);
          ] );
      ( "chaos",
        List.concat_map
          (fun seed ->
            List.concat_map
              (fun name ->
                [
                  Alcotest.test_case
                    (Printf.sprintf "%s stack, chaos seed %d" name seed)
                    `Slow
                    (with_clean_faults (test_stack_chaos name seed));
                  Alcotest.test_case
                    (Printf.sprintf "%s queue, chaos seed %d" name seed)
                    `Slow
                    (with_clean_faults (test_queue_chaos name seed));
                ])
              [ "strong"; "medium"; "weak" ])
          chaos_seeds );
    ]
