(* Fault-injection tests: the Faults subsystem itself, the combiner-lease
   takeover protocol under recorded stall schedules, bounded waits
   (Future timeouts, Spinlock deadlines) under stalled producers, and
   runner chaos mode (killed/stalled workers) against the strong, medium
   and weak queues and stacks — with conformance re-checks after every
   provoked failure. *)

module Future = Futures.Future
module FC = Combining.Flat_combining
module R = Fl.Registry

(* Every test leaves the global injection state clean, even on failure. *)
let with_clean_faults f () =
  Fun.protect ~finally:Faults.clear_all (fun () ->
      Faults.clear_all ();
      f ())

(* ----------------------------- faults ------------------------------- *)

let test_point_disabled_noop () =
  Faults.clear_all ();
  (* Must not raise, delay, or count. *)
  Faults.point "nosuch";
  Alcotest.(check int) "no hits counted when disabled" 0 (Faults.hits "nosuch")

let test_scripted_actions () =
  let log = ref [] in
  Faults.on "t.p" (fun k ->
      log := k :: !log;
      if k = 2 then Faults.Kill else Faults.Nothing);
  Faults.point "t.p";
  Faults.point "t.p";
  Alcotest.check_raises "third hit killed" (Faults.Killed "t.p") (fun () ->
      Faults.point "t.p");
  Alcotest.(check (list int)) "hit indices in order" [ 0; 1; 2 ]
    (List.rev !log);
  Alcotest.(check int) "hits counted" 3 (Faults.hits "t.p");
  Faults.clear "t.p";
  Faults.point "t.p";
  Alcotest.(check int) "cleared script no longer counts" 3 (Faults.hits "t.p")

let test_scripted_delay_and_sleep () =
  (* Delay and Sleep must perturb, not fail. *)
  Faults.on "t.d" (fun _ -> Faults.Delay 100);
  Faults.on "t.s" (fun _ -> Faults.Sleep 1e-4);
  Faults.point "t.d";
  let dt = Workload.Runner.time (fun () -> Faults.point "t.s") in
  Alcotest.(check bool) "sleep actually slept" true (dt >= 5e-5)

let test_seeded_mode_deterministic () =
  Faults.enable ~prob:0.5 ~seed:7 ();
  Alcotest.(check bool) "enabled" true (Faults.enabled ());
  (* Same seed, same domain, same hit sequence => same perturbations: we
     can only observe the absence of kills (kill is off) and that
     counters advance. *)
  for _ = 1 to 50 do
    Faults.point "t.seeded"
  done;
  Alcotest.(check int) "all hits counted" 50 (Faults.hits "t.seeded");
  Faults.disable ();
  Alcotest.(check bool) "disabled" false (Faults.enabled ());
  Faults.point "t.seeded";
  Alcotest.(check int) "fast path stops counting" 50 (Faults.hits "t.seeded")

let test_reset_counters () =
  Faults.on "t.r" (fun _ -> Faults.Nothing);
  Faults.point "t.r";
  Faults.point "t.r";
  Faults.reset_counters ();
  Alcotest.(check int) "zeroed" 0 (Faults.hits "t.r")

(* ------------------------ combiner takeover -------------------------- *)

(* One recorded schedule per seed: the seed fixes how many fault-free
   warm-up passes precede the stall, and how long the stalled combiner
   sleeps. Two domains then contend; whichever one holds the combiner
   term when the scripted pass fires goes to sleep mid-pass, and the
   other must usurp the lease within its takeover budget instead of
   spinning for the whole stall. *)
let takeover_schedule seed =
  let rng = Workload.Rng.create ~seed ~stream:0 in
  let warmup = Workload.Rng.below rng 3 in
  let stall = 0.01 +. (0.02 *. Workload.Rng.float rng) in
  (warmup, stall)

let test_takeover seed () =
  let warmup, stall = takeover_schedule seed in
  let sum = ref 0 in
  let t =
    FC.create ~takeover_budget:8
      ~apply:(fun op ->
        sum := !sum + op;
        !sum)
      ()
  in
  Faults.on "fc.pass" (fun k ->
      if k = warmup then Faults.Sleep stall else Faults.Nothing);
  let gate = Atomic.make false in
  let d1 =
    Domain.spawn (fun () ->
        let h = FC.handle t in
        for i = 1 to warmup do
          ignore (FC.apply h i)
        done;
        Atomic.set gate true;
        ignore (FC.apply h 1000))
  in
  let d2 =
    Domain.spawn (fun () ->
        let h = FC.handle t in
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        ignore (FC.apply h 2000))
  in
  let elapsed =
    Workload.Runner.time (fun () ->
        Domain.join d1;
        Domain.join d2)
  in
  ignore elapsed;
  Alcotest.(check int) "every op applied exactly once"
    ((warmup * (warmup + 1) / 2) + 3000)
    !sum;
  Alcotest.(check bool) "a waiter usurped the stalled combiner" true
    (FC.combiner_takeovers t >= 1);
  (* The same recorded schedule must also leave bounded waits bounded:
     forcing a future nobody will fulfil times out rather than spinning. *)
  let fut : int Future.t = Future.create () in
  Alcotest.check_raises "force_until times out" Future.Timeout (fun () ->
      ignore (Future.force_until fut ~deadline:(Sync.Mono.now () +. 0.003)));
  (* Structure-level invariants after the provoked stall: the
     flat-combining implementations still pass their conformance
     condition. *)
  let outcome = Conformance.check_stack ~rounds:2 (R.find_stack "flatcomb") in
  Alcotest.(check int) "flatcomb stack conformance clean" 0
    outcome.Conformance.violations;
  let outcome = Conformance.check_queue ~rounds:2 (R.find_queue "flatcomb") in
  Alcotest.(check int) "flatcomb queue conformance clean" 0
    outcome.Conformance.violations

(* A combiner killed mid-pass leaves the lease held forever (a dead
   thread releases nothing); the next applier must usurp it. *)
let test_takeover_after_death () =
  let sum = ref 0 in
  let t =
    FC.create ~takeover_budget:8
      ~apply:(fun op ->
        sum := !sum + op;
        !sum)
      ()
  in
  Faults.on "fc.pass" (fun k -> if k = 0 then Faults.Kill else Faults.Nothing);
  let victim =
    Domain.spawn (fun () ->
        let h = FC.handle t in
        match FC.apply h 7 with
        | _ -> Alcotest.fail "victim survived its kill"
        | exception Faults.Killed _ -> ())
  in
  Domain.join victim;
  (* The victim died as combiner before applying anything; its own
     published request was retired on the way out of [apply], so no
     later combiner applies the dead owner's op with nobody to consume
     the response. A later thread usurps the orphaned lease and is
     answered normally. *)
  let h = FC.handle t in
  Alcotest.(check int) "applied past the dead combiner" 5 (FC.apply h 5);
  Alcotest.(check int) "dead owner's op withdrawn, not applied" 5 !sum;
  Alcotest.(check bool) "lease was usurped" true
    (FC.combiner_takeovers t >= 1);
  Alcotest.(check bool) "request retired" true (FC.retired_records t >= 1)

(* Exceptions raised by the wrapped operation must answer every record:
   the raiser gets the exception re-raised, everyone else their result. *)
let test_apply_op_exception_answers_all () =
  let t =
    FC.create
      ~apply:(fun op -> if op < 0 then failwith "bad op" else op * 10)
      ()
  in
  let n = 4 and per = 500 in
  let errors = Array.make n 0 in
  let oks = Array.make n 0 in
  let ds =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            let h = FC.handle t in
            for j = 1 to per do
              (* Thread 0 keeps throwing bad ops into the mix. *)
              if i = 0 && j mod 3 = 0 then
                match FC.apply h (-j) with
                | _ -> Alcotest.fail "negative op must raise"
                | exception Failure _ -> errors.(i) <- errors.(i) + 1
              else
                let v = FC.apply h j in
                if v = j * 10 then oks.(i) <- oks.(i) + 1
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "raiser saw every exception" (per / 3) errors.(0);
  List.iteri
    (fun i expected ->
      Alcotest.(check int)
        (Printf.sprintf "thread %d answered" i)
        expected oks.(i))
    (per - (per / 3) :: List.init (n - 1) (fun _ -> per))

(* ------------------------- bounded waits ----------------------------- *)

let test_await_for_timeout_and_recovery seed () =
  (* Recorded schedule: the producer stalls (via the future.fulfil
     injection point) longer than the consumer's patience; the consumer
     times out, then recovers the value with an unbounded await. *)
  let rng = Workload.Rng.create ~seed ~stream:1 in
  let stall = 0.01 +. (0.01 *. Workload.Rng.float rng) in
  Faults.on "future.fulfil" (fun _ -> Faults.Sleep stall);
  let fut = Future.create () in
  let producer = Domain.spawn (fun () -> Future.fulfil fut 42) in
  Alcotest.check_raises "await_for gives up first" Future.Timeout (fun () ->
      ignore (Future.await_for fut ~seconds:(stall /. 8.)));
  Alcotest.(check int) "value still arrives" 42 (Future.await fut);
  Domain.join producer

let test_force_until_ready_and_evaluator () =
  let f = Future.of_value 3 in
  Alcotest.(check int) "ready future ignores deadline" 3
    (Future.force_until f ~deadline:0.0);
  let g = Future.create () in
  Future.set_evaluator g (fun () -> Future.fulfil g 9);
  Alcotest.(check int) "evaluator runs regardless of deadline" 9
    (Future.force_until g ~deadline:0.0)

let test_spinlock_try_acquire_for () =
  let l = Sync.Spinlock.create () in
  Alcotest.(check bool) "free lock acquired" true
    (Sync.Spinlock.try_acquire_for l ~seconds:0.01);
  (* Held elsewhere: a short deadline must expire, a longer one must win
     once the holder releases. *)
  let release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Sync.Spinlock.release l)
  in
  Alcotest.(check bool) "deadline expires while held" false
    (Sync.Spinlock.try_acquire_for l ~seconds:0.005);
  Atomic.set release true;
  Alcotest.(check bool) "acquired after release" true
    (Sync.Spinlock.try_acquire_for l ~seconds:1.0);
  Sync.Spinlock.release l;
  Domain.join holder

(* --------------------------- runner chaos ---------------------------- *)

(* Chaos workloads: tagged, globally unique values so that whatever
   subset of operations survives a worker's death, the drained structure
   must contain no duplicates and nothing it was never given. A scripted
   kill at the per-op injection point additionally murders one worker
   mid-loop — futures pending, handle never flushed. *)

let tag thread uid = (thread * 1_000_000) + uid

let check_contents ~threads ~label contents =
  let sorted = List.sort_uniq compare contents in
  Alcotest.(check int)
    (label ^ ": no element duplicated by recovery")
    (List.length contents) (List.length sorted);
  List.iter
    (fun v ->
      if v < 0 || v / 1_000_000 >= threads then
        Alcotest.fail (label ^ ": fabricated element"))
    contents

(* Survivor order per producer (valid for strong and medium, whose
   program-order guarantees survive partial application; weak makes no
   such promise). *)
let check_queue_order ~label contents =
  let last = Hashtbl.create 4 in
  List.iter
    (fun v ->
      let p = v / 1_000_000 and n = v mod 1_000_000 in
      (match Hashtbl.find_opt last p with
      | Some m when m >= n ->
          Alcotest.fail (label ^ ": per-producer order broken")
      | _ -> ());
      Hashtbl.replace last p n)
    contents

let threads = 3
let ops = 200

let chaos_schedule seed =
  let rng = Workload.Rng.create ~seed ~stream:9 in
  (* Where in the run the scripted mid-loop kill lands. *)
  100 + Workload.Rng.below rng 300

let run_stack_chaos name seed =
  let impl = R.find_stack name in
  let kill_at = chaos_schedule seed in
  Faults.on "chaos.op" (fun k ->
      if k = kill_at then Faults.Kill else Faults.Nothing);
  let uid = Atomic.make 0 in
  let worker inst ~thread ~ops =
    let o = inst.R.s_handle () in
    let rng = Workload.Rng.create ~seed ~stream:thread in
    let sl = Fl.Slack.create 5 in
    for _ = 1 to ops do
      Faults.point "chaos.op";
      if Workload.Rng.bool rng then begin
        let f = o.R.s_push (tag thread (Atomic.fetch_and_add uid 1)) in
        Fl.Slack.note sl (fun () -> Future.force f)
      end
      else
        let f = o.R.s_pop () in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
    done;
    Fl.Slack.drain sl;
    o.R.s_flush ()
  in
  Workload.Runner.run ~threads ~repeats:2 ~ops_per_thread:ops
    ~setup:impl.R.s_make ~worker
    ~teardown:(fun inst ->
      inst.R.s_drain ();
      check_contents ~threads ~label:(name ^ " stack") (inst.R.s_contents ()))
    ~chaos:(Workload.Runner.chaos ~seed ())
    ()

let run_queue_chaos name seed =
  let impl = R.find_queue name in
  let kill_at = chaos_schedule (seed + 1) in
  Faults.on "chaos.op" (fun k ->
      if k = kill_at then Faults.Kill else Faults.Nothing);
  let uid = Atomic.make 0 in
  let worker inst ~thread ~ops =
    let o = inst.R.q_handle () in
    let rng = Workload.Rng.create ~seed ~stream:thread in
    let sl = Fl.Slack.create 5 in
    for _ = 1 to ops do
      Faults.point "chaos.op";
      if Workload.Rng.bool rng then begin
        let f = o.R.q_enq (tag thread (Atomic.fetch_and_add uid 1)) in
        Fl.Slack.note sl (fun () -> Future.force f)
      end
      else
        let f = o.R.q_deq () in
        Fl.Slack.note sl (fun () -> ignore (Future.force f))
    done;
    Fl.Slack.drain sl;
    o.R.q_flush ()
  in
  Workload.Runner.run ~threads ~repeats:2 ~ops_per_thread:ops
    ~setup:impl.R.q_make ~worker
    ~teardown:(fun inst ->
      inst.R.q_drain ();
      let contents = inst.R.q_contents () in
      check_contents ~threads ~label:(name ^ " queue") contents;
      if name <> "weak" then
        check_queue_order ~label:(name ^ " queue") contents)
    ~chaos:(Workload.Runner.chaos ~seed ())
    ()

let test_stack_chaos name seed () =
  let m = run_stack_chaos name seed in
  (* The scripted mid-loop kill always lands: kill_at < the minimum
     number of per-repeat op hits, so at least one worker dies with
     futures pending and its handle unflushed. *)
  Alcotest.(check bool) "at least one worker was killed" true
    (m.Workload.Runner.killed >= 1);
  Alcotest.(check int) "no unexplained failures" 0
    m.Workload.Runner.suppressed_failures;
  (* The implementation class still satisfies its claimed condition. *)
  let outcome = Conformance.check_stack ~rounds:2 (R.find_stack name) in
  Alcotest.(check int) "conformance clean after chaos" 0
    outcome.Conformance.violations

let test_queue_chaos name seed () =
  let m = run_queue_chaos name seed in
  Alcotest.(check bool) "at least one worker was killed" true
    (m.Workload.Runner.killed >= 1);
  Alcotest.(check int) "no unexplained failures" 0
    m.Workload.Runner.suppressed_failures;
  let outcome = Conformance.check_queue ~rounds:2 (R.find_queue name) in
  Alcotest.(check int) "conformance clean after chaos" 0
    outcome.Conformance.violations

(* -------------------------- orphan recovery -------------------------- *)

(* Recovery bugs present as hangs (a waiter spinning on a future nobody
   will ever fulfil), so every kill schedule runs under a hard deadline
   enforced from a monitor domain: a hang fails the test instead of
   wedging the suite. *)
let with_timeout ?(seconds = 60.0) label f =
  let result = Atomic.make None in
  let d =
    Domain.spawn (fun () ->
        let r = match f () with v -> Ok v | exception e -> Error e in
        Atomic.set result (Some r))
  in
  let deadline = Sync.Mono.now () +. seconds in
  let rec poll () =
    match Atomic.get result with
    | Some r -> (
        Domain.join d;
        match r with Ok v -> v | Error e -> raise e)
    | None ->
        if Sync.Mono.now () > deadline then
          Alcotest.failf "%s: no recovery within %.0fs (orphan hang)" label
            seconds
        else begin
          Unix.sleepf 0.002;
          poll ()
        end
  in
  poll ()

let orphan_ops = 5

(* The flagship schedule: thread 0 publishes [orphan_ops] operations
   into its window, exposes their futures, registers its handle's
   [abandon] as recovery hook, and is killed before flushing. The
   watchdog (or the post-join sweep) must poison exactly those futures,
   the window must be discarded un-spliced, and the structure must come
   out clean. *)
let run_orphan ~label ~handle_ops ~contents ~drain seed =
  let victim_futs = Array.make orphan_ops None in
  Faults.on "lifecycle.victim" (fun _ -> Faults.Kill);
  let worker () ~thread ~ops =
    let issue, force_tail, abandon = handle_ops () in
    Workload.Runner.set_abandon_hook abandon;
    if thread = 0 then begin
      for j = 0 to orphan_ops - 1 do
        victim_futs.(j) <- Some (issue (tag 0 j))
      done;
      Faults.point "lifecycle.victim";
      Alcotest.fail "victim survived its kill"
    end
    else begin
      let rng = Workload.Rng.create ~seed ~stream:thread in
      let uid = ref 0 in
      for _ = 1 to ops do
        Workload.Runner.heartbeat ();
        incr uid;
        ignore (Workload.Rng.bool rng);
        ignore (issue (tag thread !uid) : unit Future.t)
      done;
      force_tail ()
    end
  in
  let m =
    with_timeout label (fun () ->
        Workload.Runner.run ~threads:3 ~repeats:1 ~ops_per_thread:50
          ~setup:(fun () -> ())
          ~worker
          ~teardown:(fun () -> drain ())
          ~watchdog:0.002 ())
  in
  Alcotest.(check int) (label ^ ": victim killed") 1 m.Workload.Runner.killed;
  Alcotest.(check int)
    (label ^ ": no unexplained failures")
    0 m.Workload.Runner.suppressed_failures;
  Alcotest.(check bool) (label ^ ": runner recovered the dead worker") true
    (m.Workload.Runner.recovered >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "%s: all %d orphans poisoned (got %d)" label orphan_ops
       m.Workload.Runner.poisoned)
    true
    (m.Workload.Runner.poisoned >= orphan_ops);
  (* Every future the victim left behind raises [Broken Orphaned] —
     immediately, not after a timeout. *)
  Array.iteri
    (fun j f ->
      match f with
      | None -> Alcotest.failf "%s: victim future %d never published" label j
      | Some f ->
          (* Force first: a derived future (the set wrapper maps over
             the handle's future) only learns its parent's terminal
             state when forced. *)
          Alcotest.check_raises
            (Printf.sprintf "%s: orphan %d raises" label j)
            (Future.Broken Future.Orphaned)
            (fun () -> ignore (Future.force f : unit));
          Alcotest.(check bool)
            (Printf.sprintf "%s: orphan %d poisoned" label j)
            true (Future.is_poisoned f))
    victim_futs;
  (* The victim died before flushing: its window was tombstoned and
     discarded, so none of its values may have reached the structure. *)
  let cs = contents () in
  check_contents ~threads:3 ~label cs;
  List.iter
    (fun v ->
      if v / 1_000_000 = 0 then
        Alcotest.failf "%s: dead worker's value %d was applied" label v)
    cs

let test_orphan_stack name seed () =
  let impl = R.find_stack name in
  let inst = impl.R.s_make () in
  run_orphan
    ~label:(Printf.sprintf "%s stack/%d" name seed)
    ~handle_ops:(fun () ->
      let o = inst.R.s_handle () in
      ((fun v -> o.R.s_push v), o.R.s_flush, o.R.s_abandon))
    ~contents:inst.R.s_contents ~drain:inst.R.s_drain seed;
  let outcome = Conformance.check_stack ~rounds:2 (R.find_stack name) in
  Alcotest.(check int) "conformance clean after orphan recovery" 0
    outcome.Conformance.violations

let test_orphan_queue name seed () =
  let impl = R.find_queue name in
  let inst = impl.R.q_make () in
  run_orphan
    ~label:(Printf.sprintf "%s queue/%d" name seed)
    ~handle_ops:(fun () ->
      let o = inst.R.q_handle () in
      ((fun v -> o.R.q_enq v), o.R.q_flush, o.R.q_abandon))
    ~contents:inst.R.q_contents ~drain:inst.R.q_drain seed;
  let outcome = Conformance.check_queue ~rounds:2 (R.find_queue name) in
  Alcotest.(check int) "conformance clean after orphan recovery" 0
    outcome.Conformance.violations

let test_orphan_set name seed () =
  let impl = R.find_set name in
  let inst = impl.R.l_make () in
  run_orphan
    ~label:(Printf.sprintf "%s set/%d" name seed)
    ~handle_ops:(fun () ->
      let o = inst.R.l_handle () in
      ((fun v -> Future.map ignore (o.R.l_insert v)), o.R.l_flush,
       o.R.l_abandon))
    ~contents:inst.R.l_contents ~drain:inst.R.l_drain seed;
  let outcome = Conformance.check_set ~rounds:2 (R.find_set name) in
  Alcotest.(check int) "conformance clean after orphan recovery" 0
    outcome.Conformance.violations

(* A waiter blocked in an {e unbounded} [await] on the victim's future
   can only be released by mid-run recovery: the post-join sweep never
   runs while the waiter's own domain is still waiting. This is the
   schedule that requires the watchdog, not just the sweep. *)
let test_await_released_by_watchdog () =
  let published : int Future.t option Atomic.t = Atomic.make None in
  Faults.on "lifecycle.victim" (fun _ -> Faults.Kill);
  let worker () ~thread ~ops:_ =
    if thread = 0 then begin
      let f : int Future.t = Future.create () in
      Workload.Runner.set_abandon_hook (fun () ->
          if Future.poison f Future.Orphaned then 1 else 0);
      Atomic.set published (Some f);
      Faults.point "lifecycle.victim"
    end
    else begin
      let rec get () =
        match Atomic.get published with
        | Some f -> f
        | None ->
            Domain.cpu_relax ();
            get ()
      in
      match Future.await (get ()) with
      | _ -> Alcotest.fail "orphan was somehow fulfilled"
      | exception Future.Broken Future.Orphaned -> ()
    end
  in
  let m =
    with_timeout "await released by watchdog" (fun () ->
        Workload.Runner.run ~threads:2 ~repeats:1 ~ops_per_thread:1
          ~setup:(fun () -> ())
          ~worker ~watchdog:0.002 ())
  in
  Alcotest.(check int) "victim killed" 1 m.Workload.Runner.killed;
  Alcotest.(check bool) "watchdog recovered it" true
    (m.Workload.Runner.recovered >= 1);
  Alcotest.(check bool) "orphan poisoned" true
    (m.Workload.Runner.poisoned >= 1)

(* ------------------------- plan teardown ----------------------------- *)

(* Runner [?plan] owns its fault script's lifetime: installed at each
   repeat's start, uninstalled (script cleared, counters reset) on every
   exit path — normal completion, scripted kills, and a worker's genuine
   failure re-raised to the caller — so a failing repeat never leaks its
   script into later runs. *)

let test_runner_plan_uninstalled_after_kills () =
  let plan = [ { Faults.pt = "plan.t"; at = 0; act = Faults.Kill } ] in
  let worker () ~thread:_ ~ops:_ = Faults.point "plan.t" in
  let m =
    Workload.Runner.run ~threads:2 ~repeats:2 ~ops_per_thread:1
      ~setup:(fun () -> ())
      ~worker ~plan ()
  in
  (* [at = 0] kills the first hit of each repeat: reinstallation per
     repeat resets the hit indices, so exactly one worker dies per
     repeat, not just in the first. *)
  Alcotest.(check int) "one scripted kill per repeat" 2
    m.Workload.Runner.killed;
  Alcotest.(check int) "counters reset by uninstall" 0 (Faults.hits "plan.t");
  Faults.point "plan.t";
  Alcotest.(check int) "script cleared: the point is inert" 0
    (Faults.hits "plan.t")

let test_runner_plan_uninstalled_on_failure () =
  let plan = [ { Faults.pt = "plan.f"; at = 0; act = Faults.Delay 1 } ] in
  let worker () ~thread:_ ~ops:_ =
    Faults.point "plan.f";
    failwith "genuine worker failure"
  in
  (match
     Workload.Runner.run ~threads:1 ~repeats:1 ~ops_per_thread:1
       ~setup:(fun () -> ())
       ~worker ~plan ()
   with
  | _ -> Alcotest.fail "genuine failure was not re-raised"
  | exception Failure _ -> ());
  Faults.point "plan.f";
  Alcotest.(check int) "script cleared on the failure path" 0
    (Faults.hits "plan.f");
  (* The slate is clean for whoever installs next: a fresh script on the
     same point sees hit indices from zero. *)
  let seen = ref [] in
  Faults.on "plan.f" (fun k ->
      seen := k :: !seen;
      Faults.Nothing);
  Faults.point "plan.f";
  Alcotest.(check (list int)) "fresh script counts from zero" [ 0 ] !seen

let test_runner_plan_uninstalled_with_watchdog_recovery () =
  (* The uninstall must also cover the watchdog-recovery path: the
     victim dies at the scripted point, its abandon hook runs from the
     watchdog, and the plan still comes down with the repeat. *)
  let plan = [ { Faults.pt = "plan.w"; at = 0; act = Faults.Kill } ] in
  let poisoned = ref 0 in
  let worker () ~thread ~ops:_ =
    let f : int Future.t = Future.create () in
    Workload.Runner.set_abandon_hook (fun () ->
        if Future.poison f Future.Orphaned then 1 else 0);
    if thread = 0 then Faults.point "plan.w"
    else Unix.sleepf 0.01
  in
  let m =
    Workload.Runner.run ~threads:2 ~repeats:1 ~ops_per_thread:1
      ~setup:(fun () -> ())
      ~worker ~plan ~watchdog:0.002 ()
  in
  poisoned := m.Workload.Runner.poisoned;
  Alcotest.(check int) "victim killed" 1 m.Workload.Runner.killed;
  Alcotest.(check bool) "victim recovered" true
    (m.Workload.Runner.recovered >= 1);
  Alcotest.(check bool) "orphan poisoned" true (!poisoned >= 1);
  Faults.point "plan.w";
  Alcotest.(check int) "script cleared after watchdog recovery" 0
    (Faults.hits "plan.w")

(* ------------------------ cancellation windows ------------------------ *)

let test_weak_stack_cancel_in_window () =
  let s = Fl.Weak_stack.create ~elimination:false () in
  let h = Fl.Weak_stack.handle s in
  let f1 = Fl.Weak_stack.push h 1 in
  let f2 = Fl.Weak_stack.push h 2 in
  Alcotest.(check bool) "cancel wins" true (Future.cancel f2);
  Fl.Weak_stack.flush h;
  Alcotest.(check unit) "survivor applied" () (Future.force f1);
  Alcotest.check_raises "cancelled op raises" Future.Cancelled (fun () ->
      Future.force f2);
  Alcotest.(check (list int)) "cancelled value never spliced" [ 1 ]
    (Lockfree.Treiber_stack.to_list (Fl.Weak_stack.shared s))

let test_weak_stack_cancelled_pop_not_eliminated () =
  let s = Fl.Weak_stack.create ~elimination:true () in
  let h = Fl.Weak_stack.handle s in
  let fp = Fl.Weak_stack.pop h in
  Alcotest.(check bool) "pop cancelled" true (Future.cancel fp);
  (* The push must skip the cancelled pop's corpse, not hand it the
     value: elimination pairs only live partners. *)
  let fpush = Fl.Weak_stack.push h 5 in
  Fl.Weak_stack.flush h;
  Alcotest.(check unit) "push applied" () (Future.force fpush);
  Alcotest.(check (list int)) "value reached the stack, not the corpse"
    [ 5 ]
    (Lockfree.Treiber_stack.to_list (Fl.Weak_stack.shared s));
  Alcotest.check_raises "cancelled pop raises" Future.Cancelled (fun () ->
      ignore (Future.force fp))

let test_medium_queue_cancel_in_window () =
  let q = Fl.Medium_queue.create () in
  let h = Fl.Medium_queue.handle q in
  let f1 = Fl.Medium_queue.enqueue h 1 in
  let f2 = Fl.Medium_queue.enqueue h 2 in
  let f3 = Fl.Medium_queue.enqueue h 3 in
  Alcotest.(check bool) "cancel middle op" true (Future.cancel f2);
  Fl.Medium_queue.flush h;
  Alcotest.(check unit) "older survivor applied" () (Future.force f1);
  Alcotest.(check unit) "younger survivor applied" () (Future.force f3);
  Alcotest.(check (list int)) "cancelled op skipped by the replay"
    [ 1; 3 ]
    (Lockfree.Ms_queue.to_list (Fl.Medium_queue.shared q))

let test_slack_abandon_drops_thunks () =
  let sl = Fl.Slack.create 8 in
  let ran = ref 0 in
  for _ = 1 to 3 do
    Fl.Slack.note sl (fun () -> incr ran)
  done;
  Alcotest.(check int) "all thunks dropped" 3 (Fl.Slack.abandon sl);
  Alcotest.(check int) "none executed" 0 !ran;
  Alcotest.(check int) "window empty" 0 (Fl.Slack.pending sl)

(* ------------------------------ suite -------------------------------- *)

(* The seed lists below pick the recorded schedules each run exercises.
   FLDS_TEST_SEED=<n> replaces every list with just [n] so a failing
   schedule can be re-run in isolation; on failure each seeded case
   prints the rerun incantation for exactly that schedule. *)
let seeds_from_env default =
  match Sys.getenv_opt "FLDS_TEST_SEED" with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> [ n ]
      | None ->
          Printf.eprintf "FLDS_TEST_SEED=%S is not an integer; ignored\n%!" s;
          default)

let with_seed_reported seed f () =
  try f ()
  with e ->
    Printf.eprintf
      "seeded schedule failed — rerun just it with FLDS_TEST_SEED=%d\n%!" seed;
    raise e

let takeover_seeds = seeds_from_env [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
let bounded_wait_seeds = seeds_from_env [ 21; 22; 23 ]
let chaos_seeds = seeds_from_env [ 41; 42 ]

let () =
  Alcotest.run "faults"
    [
      ( "points",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            (with_clean_faults test_point_disabled_noop);
          Alcotest.test_case "scripted actions" `Quick
            (with_clean_faults test_scripted_actions);
          Alcotest.test_case "delay and sleep" `Quick
            (with_clean_faults test_scripted_delay_and_sleep);
          Alcotest.test_case "seeded mode" `Quick
            (with_clean_faults test_seeded_mode_deterministic);
          Alcotest.test_case "reset counters" `Quick
            (with_clean_faults test_reset_counters);
        ] );
      ( "takeover",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "stalled combiner, schedule %d" seed)
              `Slow
              (with_clean_faults (with_seed_reported seed (test_takeover seed))))
          takeover_seeds
        @ [
            Alcotest.test_case "dead combiner leaves lease held" `Slow
              (with_clean_faults test_takeover_after_death);
            Alcotest.test_case "apply_op exception answers all" `Slow
              (with_clean_faults test_apply_op_exception_answers_all);
          ] );
      ( "bounded-waits",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "stalled fulfiller, schedule %d" seed)
              `Slow
              (with_clean_faults
                 (with_seed_reported seed
                    (test_await_for_timeout_and_recovery seed))))
          bounded_wait_seeds
        @ [
            Alcotest.test_case "force_until ready/evaluator" `Quick
              (with_clean_faults test_force_until_ready_and_evaluator);
            Alcotest.test_case "spinlock try_acquire_for" `Slow
              (with_clean_faults test_spinlock_try_acquire_for);
          ] );
      ( "chaos",
        List.concat_map
          (fun seed ->
            List.concat_map
              (fun name ->
                [
                  Alcotest.test_case
                    (Printf.sprintf "%s stack, chaos seed %d" name seed)
                    `Slow
                    (with_clean_faults
                       (with_seed_reported seed (test_stack_chaos name seed)));
                  Alcotest.test_case
                    (Printf.sprintf "%s queue, chaos seed %d" name seed)
                    `Slow
                    (with_clean_faults
                       (with_seed_reported seed (test_queue_chaos name seed)));
                ])
              [ "strong"; "medium"; "weak" ])
          chaos_seeds );
      ( "lifecycle",
        [
          Alcotest.test_case "weak stack orphan, schedule 51" `Slow
            (with_clean_faults (test_orphan_stack "weak" 51));
          Alcotest.test_case "weak stack orphan, schedule 52" `Slow
            (with_clean_faults (test_orphan_stack "weak" 52));
          Alcotest.test_case "medium stack orphan, schedule 53" `Slow
            (with_clean_faults (test_orphan_stack "medium" 53));
          Alcotest.test_case "weak queue orphan, schedule 54" `Slow
            (with_clean_faults (test_orphan_queue "weak" 54));
          Alcotest.test_case "medium queue orphan, schedule 55" `Slow
            (with_clean_faults (test_orphan_queue "medium" 55));
          Alcotest.test_case "weak set orphan, schedule 56" `Slow
            (with_clean_faults (test_orphan_set "weak" 56));
          Alcotest.test_case "medium set orphan, schedule 57" `Slow
            (with_clean_faults (test_orphan_set "medium" 57));
          Alcotest.test_case "txn set orphan, schedule 58" `Slow
            (with_clean_faults (test_orphan_set "txn" 58));
          Alcotest.test_case "await released by watchdog" `Slow
            (with_clean_faults test_await_released_by_watchdog);
          Alcotest.test_case "runner plan uninstalled after kills" `Quick
            (with_clean_faults test_runner_plan_uninstalled_after_kills);
          Alcotest.test_case "runner plan uninstalled on failure" `Quick
            (with_clean_faults test_runner_plan_uninstalled_on_failure);
          Alcotest.test_case "runner plan uninstalled after watchdog recovery"
            `Slow
            (with_clean_faults
               test_runner_plan_uninstalled_with_watchdog_recovery);
          Alcotest.test_case "weak stack cancel in window" `Quick
            (with_clean_faults test_weak_stack_cancel_in_window);
          Alcotest.test_case "cancelled pop not eliminated" `Quick
            (with_clean_faults test_weak_stack_cancelled_pop_not_eliminated);
          Alcotest.test_case "medium queue cancel in window" `Quick
            (with_clean_faults test_medium_queue_cancel_in_window);
          Alcotest.test_case "slack abandon drops thunks" `Quick
            (with_clean_faults test_slack_abandon_drops_thunks);
        ] );
    ]
