# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

bench-quick:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- all --ops 20000 --repeats 3

# Machine-readable benchmark records (ops/s, CAS/op, minor words/op)
# under results/, stamped with the git revision. micro runs with --obs
# so the record gains the telemetry block (pendingness percentiles,
# mean splice batch, elimination hit rate).
bench-json:
	mkdir -p results
	dune exec bench/main.exe -- micro --obs --json results/BENCH_micro.json
	dune exec bench/main.exe -- fig4 --quick --json results/BENCH_fig4.json

# Machine-readable self-tuning run: the controller against hand-tuned
# statics over (threads x steady/bursty) contention regimes. The
# --assert-tolerance gate makes the run's exit status the claim itself:
# adaptive within 5% of the best static on every regime, and strictly
# beating the default pass budget on queue-flatcomb totals. The records
# are then schema-checked (which re-verifies both gates offline).
bench-adapt-json:
	mkdir -p results
	dune exec bench/main.exe -- adapt --ops 100000 --repeats 5 \
		--threads 1,2 --json results/BENCH_adapt.json \
		--assert-tolerance 5 --assert-beats
	dune exec bin/validate_bench.exe -- results/BENCH_adapt.json \
		--bench adapt --min-records 20 --max-rel 1.05 --require-beats

# Flight-recorder capture: run the trace probe with the recorder on and
# export a Chrome trace_event file (load in ui.perfetto.dev), then
# schema-check it.
bench-trace:
	mkdir -p results
	dune exec bench/main.exe -- trace --trace results/TRACE_probe.json
	dune exec bin/validate_trace.exe -- results/TRACE_probe.json \
		--min-domains 2 --require future.created --require splice. \
		--require elim. --require combiner.

# Chaos suite: the whole test tree under seeded schedule perturbation
# (FLDS_FAULTS arms every injection point with delays/yields — never
# kills — so the suite must still be green), then the chaos benchmark
# reporting worker kills and combiner-lease takeovers.
CHAOS_SEED ?= 2014
chaos:
	FLDS_FAULTS=$(CHAOS_SEED) dune runtest --force --no-buffer
	dune exec bench/main.exe -- chaos --quick --seed $(CHAOS_SEED)

# Machine-readable chaos run: kill-enabled seeded faults, watchdog on,
# recording killed / takeovers / retired / poisoned / recovered per
# (impl, threads) cell under results/.
bench-chaos-json:
	mkdir -p results
	dune exec bench/main.exe -- chaos --ops 2000 --repeats 4 \
		--threads 1,2,4 --seed $(CHAOS_SEED) \
		--json results/BENCH_chaos.json

# Machine-readable sharded-store run: the perf panel (centralized weak
# map vs the sharded store) plus scripted owner kills at each transfer
# protocol step (shard.grant / shard.ship / shard.ack), recording the
# transfer counters (requests/ships/acks/recovers/poisoned) per cell.
bench-shard-json:
	mkdir -p results
	dune exec bench/main.exe -- shard --ops 2000 --repeats 2 \
		--threads 1,2,4 --seed $(CHAOS_SEED) \
		--json results/BENCH_shard.json

# Machine-readable open-loop service run: the saturation sweep (offered
# load x backend, Poisson arrivals, admission controller live) plus the
# bursty chaos panel with scripted controller/owner kills. The
# --assert-service gate makes the exit status the claim: books balance,
# zero sheds below the knee, admitted-op sojourn p999 bounded even past
# it. validate_bench re-verifies those gates offline on the records.
bench-service-json:
	mkdir -p results
	dune exec bench/main.exe -- service --ops 8000 --seed $(CHAOS_SEED) \
		--assert-service --json results/BENCH_service.json
	dune exec bin/validate_bench.exe -- results/BENCH_service.json \
		--bench service --min-records 11 \
		--service-p999-budget 60000000000 --service-knee 20000

# Conformance smoke: the service sweep with sampled completed-operation
# events on (1-in-8 by value residue) and the trace exported, then the
# offline monitor certifying the capture — schema, shard pairing, and
# FL-conformance of the job queue's enqueue/dequeue events; then the
# conformance panel (monitor throughput + sampling overhead, 10% gate).
conformance-smoke:
	mkdir -p results
	dune exec bench/main.exe -- service --ops 2000 --repeats 1 \
		--threads 1,2,4 --conformance-stride 8 \
		--trace results/TRACE_conformance.json
	dune exec bin/validate_trace.exe -- results/TRACE_conformance.json \
		--conformance --min-domains 2 --require op.enq --require op.deq
	dune exec bench/main.exe -- conformance --quick --assert-service

# Mega-history fuzz: one uncapped single-phase program (about 100k
# recorded ops at the default 2000 steps x 3 threads x ~17 ops/step)
# certified by the streaming checker, then a seeded-corruption campaign
# that must find, shrink and replay a violation. The `!` inverts the
# exit status: rejecting the corrupted history is the pass.
fuzz-mega:
	mkdir -p results/fuzz
	dune exec bin/flbench.exe -- fuzz --target mega/queue/strong \
		--seed $(FUZZ_SEED) --iters 2 --out results/fuzz
	! dune exec bin/flbench.exe -- fuzz --target mega/queue/strong@0x2a \
		--threads 1 --mega 400 --seed $(FUZZ_SEED) --iters 3 \
		--out results/fuzz
	dune exec bin/flbench.exe -- \
		fuzz --replay results/fuzz/$(FUZZ_SEED)-mega.repro

# Fuzz gauntlet, PR-sized: a short campaign over every target, then the
# intentionally-too-strong check (weak stack against Medium) which must
# fail, shrink to a tiny program, and replay byte-for-byte. The `!`
# inverts flbench's exit status: finding that violation is the pass.
FUZZ_SEED ?= 2014
fuzz-smoke:
	mkdir -p results/fuzz
	dune exec bin/flbench.exe -- fuzz --seed $(FUZZ_SEED) --iters 5 \
		--out results/fuzz
	dune exec bin/flbench.exe -- fuzz --target tuned \
		--seed $(FUZZ_SEED) --iters 5 --out results/fuzz
	! dune exec bin/flbench.exe -- fuzz --target stack/weak \
		--condition medium --seed $(FUZZ_SEED) --iters 20 \
		--out results/fuzz
	dune exec bin/flbench.exe -- \
		fuzz --replay results/fuzz/$(FUZZ_SEED).repro

# Nightly-depth campaign: more iterations and a wall-clock budget per
# target so the whole sweep stays bounded. Any .repro left in
# results/fuzz is a real counterexample to triage.
FUZZ_BUDGET ?= 300
fuzz-soak:
	mkdir -p results/fuzz
	dune exec bin/flbench.exe -- fuzz --seed $(FUZZ_SEED) --iters 400 \
		--budget $(FUZZ_BUDGET) --out results/fuzz

doc:
	dune build @doc

clean:
	dune clean

.PHONY: all test test-force bench-quick bench-full bench-json bench-adapt-json bench-trace chaos bench-chaos-json bench-shard-json bench-service-json conformance-smoke fuzz-mega fuzz-smoke fuzz-soak doc clean
