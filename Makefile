# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

bench-quick:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- all --ops 20000 --repeats 3

doc:
	dune build @doc

clean:
	dune clean

.PHONY: all test test-force bench-quick bench-full doc clean
