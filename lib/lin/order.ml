type condition = Strong | Medium | Weak | Fsc

let condition_name = function
  | Strong -> "strong"
  | Medium -> "medium"
  | Weak -> "weak"
  | Fsc -> "futures-sequential-consistency"

let interval cond (e : 'o History.entry) =
  match cond with
  | Strong -> (e.History.create_inv, e.History.create_res)
  | Medium | Weak | Fsc -> (
      match e.History.eval_res with
      | Some r -> (e.History.create_inv, r)
      | None -> (e.History.create_inv, max_int))

(* Program order: threads are sequential with respect to creation calls,
   so creation intervals of one thread never overlap and create_res <
   create_inv is the thread's issue order. *)
let program_order_applies cond (a : 'o History.entry) (b : 'o History.entry)
    =
  a.History.thread = b.History.thread
  && a.History.create_res < b.History.create_inv
  &&
  match cond with
  | Strong | Weak -> false
  | Medium -> a.History.obj = b.History.obj
  | Fsc -> true

let edges cond h =
  let n = Array.length h in
  let iv = Array.map (interval cond) h in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let _, i_end = iv.(i) in
        let j_start, _ = iv.(j) in
        if i_end < j_start || program_order_applies cond h.(i) h.(j) then
          acc := (i, j) :: !acc
      end
    done
  done;
  List.rev !acc
