type timestamp = int

type 'o entry = {
  thread : int;
  obj : int;
  op : 'o;
  create_inv : timestamp;
  create_res : timestamp;
  eval_inv : timestamp option;
  eval_res : timestamp option;
}

type clock = int Atomic.t

let clock () = Atomic.make 0
let now c = Atomic.fetch_and_add c 1

type 'o log = { mutable entries : 'o entry list (* newest first *) }

let log () = { entries = [] }
let add l e = l.entries <- e :: l.entries

let recorded_call l c ~thread ~obj create =
  let create_inv = now c in
  let future = create () in
  let create_res = now c in
  let complete describe =
    let eval_inv = now c in
    let value = Futures.Future.force future in
    let eval_res = now c in
    add l
      {
        thread;
        obj;
        op = describe value;
        create_inv;
        create_res;
        eval_inv = Some eval_inv;
        eval_res = Some eval_res;
      };
    value
  in
  (future, complete)

let entries l = List.rev l.entries

let merge logs =
  let all = List.concat_map entries logs in
  let arr = Array.of_list all in
  Array.sort (fun a b -> compare a.create_inv b.create_inv) arr;
  arr
