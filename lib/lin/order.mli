(** The ≺ precedence orders of the futures-linearizability conditions
    (Kogan & Herlihy §3, §6.3).

    Each condition assigns every operation an {e effect interval} and adds
    condition-specific program-order edges; [m0 ≺ m1] whenever m0's
    interval ends before m1's begins, or a program-order rule applies.

    - {b Strong}: interval = the future-creation call ([create_inv],
      [create_res]); futures are benign, this is classic linearizability.
    - {b Weak}: interval = [create_inv] to [eval_res] (the rewritten call
      m~ of §6.3); nothing else.
    - {b Medium}: weak's intervals, plus: calls by the same thread on the
      same object are ordered by their creation order.
    - {b Fsc} ({e futures sequential consistency}): medium with the
      program-order rule applied across {e all} objects — included because
      the paper's Figure 3 shows it is not compositional; it is {e not}
      one of the proposed conditions. *)

type condition = Strong | Medium | Weak | Fsc

val condition_name : condition -> string

val interval : condition -> 'o History.entry -> int * int
(** Effect interval under the condition. For Weak/Medium/Fsc an
    unevaluated operation's interval extends to infinity
    ([max_int]). *)

val edges : condition -> 'o History.entry array -> (int * int) list
(** [edges cond h] lists all pairs [(i, j)] with [h.(i) ≺ h.(j)]
    (irreflexive; not transitively closed). *)
