(** Streaming FL-conformance monitor.

    The exact checker ({!Checker}) decides any history but is bounded at
    62 ops per quiescent segment; this module checks {e millions} of
    completed-operation events online. For FIFO (queue) and LIFO (stack)
    families under the Strong and Weak conditions it maintains
    order-respecting certificates in the style of Khyzha et al.
    (arXiv 1701.05463) and the bad-pattern characterizations of
    Bouajjani et al. (arXiv 1702.02705): a history with pairwise-distinct
    added values violates the specification iff one of a fixed set of
    {e bad patterns} occurs between at most two value lifetimes (plus an
    empty-removal certificate), so conformance is decided by near-linear
    sweeps over per-value summaries instead of a reachable-state search.

    Conditions whose precedence is not an interval order (Medium adds
    cross-interval program-order edges; Fsc is global) fall back to the
    exact segmented checker — see {!Generic} — as does any history that
    adds the same value twice (the certificates require distinct
    values, which the fuzz generators and the service layer's tickets
    guarantee).

    Soundness and completeness are enforced empirically: the
    differential battery in [test/test_stream.ml] requires the streaming
    verdict to equal the exact checker's on every history the exact
    checker can decide, and every seeded corruption to be rejected. *)

type verdict =
  | Accept
  | Reject of { index : int; reason : string }
      (** [index] is the feed index of the event that completed the
          violation witness (the latest-fed event among the witness's
          operations); for multiple finalize-time violations the one
          with the smallest such index is reported. Deterministic for a
          given event stream. *)

type family = Fifo | Lifo

type event =
  | Add of int  (** enqueue / push of a value *)
  | Remove of int  (** dequeue / pop returning a value *)
  | Remove_empty  (** dequeue / pop observing emptiness *)

type t
(** A monitor for one structure instance (one object). *)

val create : family -> t

val feed : t -> ?index:int -> start:int -> stop:int -> event -> unit
(** Feed one completed operation with effect interval [\[start, stop\]].
    Events must arrive in nondecreasing [stop] order (completion order —
    how both the trace exporter and {!feed_order} deliver them); raises
    [Invalid_argument] otherwise. [stop = max_int] encodes an operation
    that never evaluated (its interval extends to infinity); such events
    sort last. [index] defaults to the monitor's internal event counter;
    pass an explicit stream-global index when multiplexing several
    monitors over one feed. Cheap: integrity patterns (duplicate add,
    duplicate remove, remove completing before its add began) reject
    eagerly; order and emptiness certificates are settled by
    {!finalize}. *)

val events : t -> int
(** Events fed so far. *)

val finalize : t -> verdict
(** Settle the remaining certificates (order-respecting matching,
    unmatched removes, empty-removal coverage) with O(n log n) sweeps
    over per-value summaries and return the verdict. Idempotent; feeding
    after [finalize] raises. *)

(** {2 History front-ends}

    Check a recorded {!History} the same way {!Checker.check_segmented}
    would, but via the streaming certificates when they apply
    (Strong/Weak on queue/stack with distinct added values) and via the
    exact segmented checker otherwise. The differential battery pins
    these to agree with the exact checker wherever it can decide. *)

val feed_order : 'o History.entry array -> Order.condition -> int array
(** Indices of [h] in feed order: sorted by interval stop (never-
    evaluated last), then start, then index — the completion order the
    monitor requires. Exposed for tests and witness bookkeeping. *)

val check_queue_history :
  Order.condition -> Spec.Queue_spec.op History.entry array -> verdict

val check_stack_history :
  Order.condition -> Spec.Stack_spec.op History.entry array -> verdict

val check_map_history :
  Order.condition -> Spec.Map_spec.op History.entry array -> verdict
(** Maps have no specialized certificate; this is the {!Generic}
    fallback, wrapped for symmetry. *)

(** The windowed fallback: verdict-shaped [check_segmented]. Exact; the
    reject index is the last event's feed index (the exact checker
    yields no witness). Raises like [check_segmented] if some segment
    exceeds [max_segment]. *)
module Generic (S : Spec.S) : sig
  val check :
    ?max_segment:int -> Order.condition -> S.op History.entry array -> verdict
end
