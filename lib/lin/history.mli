(** Histories of future-returning method calls (Kogan & Herlihy §6).

    Every operation in a history carries up to four timestamps, drawn from
    one global atomic clock: the invocation and response of the future
    {e creation} call, and the invocation and response of the future's
    {e evaluation}. The three futures-linearizability conditions are
    expressed as different interval orders over these timestamps (see
    {!Order}).

    Recording is designed for concurrent use: each domain draws timestamps
    from the shared clock but accumulates its entries locally, and the
    test merges the logs afterwards. *)

type timestamp = int

type 'o entry = {
  thread : int;
  obj : int; (** object identity, for per-object orders and composition *)
  op : 'o; (** operation descriptor including its (evaluated) result *)
  create_inv : timestamp;
  create_res : timestamp;
  eval_inv : timestamp option;
  eval_res : timestamp option;
      (** [None] when the future was never evaluated. *)
}

type clock

val clock : unit -> clock
(** A fresh global clock starting at 0. Thread-safe. *)

val now : clock -> timestamp
(** Strictly increasing across all domains. *)

type 'o log
(** A single domain's private event log. *)

val log : unit -> 'o log

val add : 'o log -> 'o entry -> unit

(** [recorded_call log clock ~thread ~obj create] runs [create ()] between
    two clock ticks and returns the future paired with a completion
    function; calling the completion with the operation descriptor (known
    once the result is) forces the future between two more ticks and files
    the entry. *)
val recorded_call :
  'o log ->
  clock ->
  thread:int ->
  obj:int ->
  (unit -> 'a Futures.Future.t) ->
  'a Futures.Future.t * (('a -> 'o) -> 'a)

val entries : 'o log -> 'o entry list
(** In recording order. *)

val merge : 'o log list -> 'o entry array
(** All entries of all logs, sorted by [create_inv]. *)
