module Make (S : Spec.S) = struct
  (* Memoization table: a (applied-set bitmask, state) pair that failed
     once will fail again; states are canonical so structural equality and
     hashing suffice. *)
  module Memo = Hashtbl.Make (struct
    type t = int * S.state

    let equal (m1, s1) (m2, s2) = m1 = m2 && s1 = s2
    let hash (m, s) = (m * 31) + Hashtbl.hash s
  end)

  let linearization cond h =
    let n = Array.length h in
    if n > 62 then
      invalid_arg "Checker.linearization: history too large (> 62 ops)";
    let full = (1 lsl n) - 1 in
    let preds = Array.make n 0 in
    List.iter
      (fun (i, j) -> preds.(j) <- preds.(j) lor (1 lsl i))
      (Order.edges cond h);
    let memo = Memo.create 1024 in
    (* DFS for a completion of [mask] from [state]; returns the remaining
       order, newest decisions accumulated by the caller. *)
    let rec go mask state =
      if mask = full then Some []
      else if Memo.mem memo (mask, state) then None
      else begin
        let result = ref None in
        let j = ref 0 in
        while !result = None && !j < n do
          let bit = 1 lsl !j in
          if mask land bit = 0 && preds.(!j) land mask = preds.(!j) then begin
            match S.apply state ~obj:h.(!j).History.obj h.(!j).History.op with
            | Some state' -> (
                match go (mask lor bit) state' with
                | Some rest -> result := Some (!j :: rest)
                | None -> ())
            | None -> ()
          end;
          incr j
        done;
        if !result = None then Memo.add memo (mask, state) ();
        !result
      end
    in
    go 0 S.initial

  let check_global cond h = linearization cond h <> None

  let split_per_object h =
    let objs =
      Array.fold_left
        (fun acc e ->
          if List.mem e.History.obj acc then acc else e.History.obj :: acc)
        [] h
    in
    List.map
      (fun obj ->
        Array.of_list
          (List.filter (fun e -> e.History.obj = obj) (Array.to_list h)))
      objs

  let check cond h =
    match cond with
    | Order.Fsc -> check_global cond h
    | Order.Strong | Order.Medium | Order.Weak ->
        (* Compositionality (Theorem 6.3): split per object. *)
        List.for_all (check_global cond) (split_per_object h)

  let reachable_states cond ~from h =
    let n = Array.length h in
    if n > 62 then
      invalid_arg "Checker.reachable_states: history too large (> 62 ops)";
    let full = (1 lsl n) - 1 in
    let preds = Array.make n 0 in
    List.iter
      (fun (i, j) -> preds.(j) <- preds.(j) lor (1 lsl i))
      (Order.edges cond h);
    (* Exhaustive variant of [linearization]'s DFS: every (mask, state)
       pair is expanded at most once, and the states reached with the
       full mask are collected instead of stopping at the first. *)
    let visited = Memo.create 1024 in
    let finals = ref [] in
    let rec go mask state =
      if not (Memo.mem visited (mask, state)) then begin
        Memo.add visited (mask, state) ();
        if mask = full then begin
          if not (List.mem state !finals) then finals := state :: !finals
        end
        else
          for j = 0 to n - 1 do
            let bit = 1 lsl j in
            if mask land bit = 0 && preds.(j) land mask = preds.(j) then
              match S.apply state ~obj:h.(j).History.obj h.(j).History.op with
              | Some state' -> go (mask lor bit) state'
              | None -> ()
          done
      end
    in
    List.iter (fun s -> go 0 s) (List.sort_uniq compare from);
    !finals

  (* Quiescent cuts: with operations taken in interval-start order, a cut
     is legal before index [k] when every earlier operation's interval has
     closed strictly before h.(k)'s opens — then every earlier operation
     ≺-precedes every later one, so any ≺-extending total order of the
     whole history is a concatenation of per-segment orders, and threading
     the set of reachable end states through the segments loses nothing.
     Program-order edges never cross a cut backwards: they require
     a.create_res < b.create_inv, and every interval starts at
     create_inv. *)
  let segments cond h =
    let n = Array.length h in
    let iv = Array.map (Order.interval cond) h in
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> compare (fst iv.(a), a) (fst iv.(b), b)) order;
    let segs = ref [] and cur = ref [] and max_end = ref min_int in
    Array.iter
      (fun idx ->
        if !cur <> [] && !max_end < fst iv.(idx) then begin
          segs := List.rev !cur :: !segs;
          cur := []
        end;
        cur := idx :: !cur;
        if snd iv.(idx) > !max_end then max_end := snd iv.(idx))
      order;
    if !cur <> [] then segs := List.rev !cur :: !segs;
    List.rev_map
      (fun ids -> Array.of_list (List.map (fun i -> h.(i)) ids))
      !segs

  let check_segmented ?(max_segment = 62) cond h =
    if max_segment < 1 || max_segment > 62 then
      invalid_arg "Checker.check_segmented: max_segment must be in [1, 62]";
    let check_one sub =
      List.fold_left
        (fun states seg ->
          match states with
          | [] -> []
          | _ ->
              if Array.length seg > max_segment then
                invalid_arg
                  (Printf.sprintf
                     "Checker.check_segmented: segment of %d ops exceeds \
                      the %d-op search bound (no quiescent cut)"
                     (Array.length seg) max_segment);
              reachable_states cond ~from:states seg)
        [ S.initial ] (segments cond sub)
      <> []
    in
    match cond with
    | Order.Fsc -> check_one h
    | Order.Strong | Order.Medium | Order.Weak ->
        List.for_all check_one (split_per_object h)

  let pp_history ppf h =
    Array.iteri
      (fun i e ->
        let pp_ts ppf = function
          | Some t -> Format.fprintf ppf "%d" t
          | None -> Format.fprintf ppf "-"
        in
        Format.fprintf ppf "@[%2d: T%d obj%d %a create[%d,%d] eval[%a,%a]@]@."
          i e.History.thread e.History.obj S.pp_op e.History.op
          e.History.create_inv e.History.create_res pp_ts e.History.eval_inv
          pp_ts e.History.eval_res)
      h
end
