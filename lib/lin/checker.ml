module Make (S : Spec.S) = struct
  (* Memoization table: a (applied-set bitmask, state) pair that failed
     once will fail again; states are canonical so structural equality and
     hashing suffice. *)
  module Memo = Hashtbl.Make (struct
    type t = int * S.state

    let equal (m1, s1) (m2, s2) = m1 = m2 && s1 = s2
    let hash (m, s) = (m * 31) + Hashtbl.hash s
  end)

  let linearization cond h =
    let n = Array.length h in
    if n > 62 then
      invalid_arg "Checker.linearization: history too large (> 62 ops)";
    let full = (1 lsl n) - 1 in
    let preds = Array.make n 0 in
    List.iter
      (fun (i, j) -> preds.(j) <- preds.(j) lor (1 lsl i))
      (Order.edges cond h);
    let memo = Memo.create 1024 in
    (* DFS for a completion of [mask] from [state]; returns the remaining
       order, newest decisions accumulated by the caller. *)
    let rec go mask state =
      if mask = full then Some []
      else if Memo.mem memo (mask, state) then None
      else begin
        let result = ref None in
        let j = ref 0 in
        while !result = None && !j < n do
          let bit = 1 lsl !j in
          if mask land bit = 0 && preds.(!j) land mask = preds.(!j) then begin
            match S.apply state ~obj:h.(!j).History.obj h.(!j).History.op with
            | Some state' -> (
                match go (mask lor bit) state' with
                | Some rest -> result := Some (!j :: rest)
                | None -> ())
            | None -> ()
          end;
          incr j
        done;
        if !result = None then Memo.add memo (mask, state) ();
        !result
      end
    in
    go 0 S.initial

  let check_global cond h = linearization cond h <> None

  let check cond h =
    match cond with
    | Order.Fsc -> check_global cond h
    | Order.Strong | Order.Medium | Order.Weak ->
        (* Compositionality (Theorem 6.3): split per object. *)
        let objs =
          Array.fold_left
            (fun acc e ->
              if List.mem e.History.obj acc then acc else e.History.obj :: acc)
            [] h
        in
        List.for_all
          (fun obj ->
            let sub =
              Array.of_list
                (List.filter
                   (fun e -> e.History.obj = obj)
                   (Array.to_list h))
            in
            check_global cond sub)
          objs

  let pp_history ppf h =
    Array.iteri
      (fun i e ->
        let pp_ts ppf = function
          | Some t -> Format.fprintf ppf "%d" t
          | None -> Format.fprintf ppf "-"
        in
        Format.fprintf ppf "@[%2d: T%d obj%d %a create[%d,%d] eval[%a,%a]@]@."
          i e.History.thread e.History.obj S.pp_op e.History.op
          e.History.create_inv e.History.create_res pp_ts e.History.eval_inv
          pp_ts e.History.eval_res)
      h
end
