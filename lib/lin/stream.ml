(* Streaming conformance: order-respecting certificates instead of
   reachable-state search. A monitor keeps one summary record per value
   (the four stamps of its add/remove lifetimes plus feed indices) and a
   list of empty-removals; integrity violations reject at feed time and
   the order/emptiness certificates are settled by O(n log n) sweeps at
   finalize. The bad patterns checked are the classical complete set for
   differentiated (distinct-value) histories whose precedence is an
   interval order — which FL Strong and Weak precedence is, being defined
   by stamp intervals. Conditions with cross-interval program-order
   edges (Medium, Fsc) are not interval orders, so the history front-ends
   route them to the exact segmented checker.

   Bad patterns, with X ≺ Y meaning X.stop < Y.start:
   - remove of a value never added (settled at finalize: the add may
     complete later in the stream);
   - a value added or removed twice (feed time; a duplicate add makes
     the certificate unsound, so it is rejected rather than guessed at —
     the history front-ends fall back to the exact checker instead);
   - remove(v) ≺ add(v) (feed time, when the pair completes);
   - Fifo crossing: add(v1) ≺ add(v2) ∧ remove(v2) ≺ remove(v1), where a
     missing remove(v1) sits at +∞ (so an unmatched older value also
     trips it);
   - Lifo crossing: add(v1) ≺ add(v2) ≺ remove(v1) ∧
     remove(v1) ≺ remove(v2), a missing remove(v2) again at +∞;
   - empty-removal coverage (both families): remove-empty d with some v
     such that add(v) ≺ d and d ≺ remove(v) (or v never removed) — v is
     provably inside the structure for every admissible point of d. *)

type verdict = Accept | Reject of { index : int; reason : string }
type family = Fifo | Lifo
type event = Add of int | Remove of int | Remove_empty

let add_name = function Fifo -> "enq" | Lifo -> "push"
let remove_name = function Fifo -> "deq" | Lifo -> "pop"

(* Per-value lifetime summary. max_int stands for "not (yet) observed":
   comparisons below are all strict, so +∞ never satisfies a ≺. *)
type vrec = {
  v : int;
  mutable a_seen : bool;
  mutable a_start : int;
  mutable a_stop : int;
  mutable a_idx : int;
  mutable r_seen : bool;
  mutable r_start : int;
  mutable r_stop : int;
  mutable r_idx : int;
}

type t = {
  family : family;
  tbl : (int, vrec) Hashtbl.t;
  mutable empties : (int * int * int) list; (* start, stop, idx *)
  mutable count : int;
  mutable last_stop : int;
  mutable eager : (int * string) option; (* first feed-time rejection *)
  mutable settled : verdict option;
}

let create family =
  {
    family;
    tbl = Hashtbl.create 1024;
    empties = [];
    count = 0;
    last_stop = min_int;
    eager = None;
    settled = None;
  }

let events t = t.count

let vrec t v =
  match Hashtbl.find_opt t.tbl v with
  | Some r -> r
  | None ->
      let r =
        {
          v;
          a_seen = false;
          a_start = max_int;
          a_stop = max_int;
          a_idx = -1;
          r_seen = false;
          r_start = max_int;
          r_stop = max_int;
          r_idx = -1;
        }
      in
      Hashtbl.add t.tbl v r;
      r

(* Feeds arrive in stop order, so the first eager rejection is the
   earliest one; later feeds cannot produce a smaller index. *)
let reject_eager t index reason =
  if t.eager = None then t.eager <- Some (index, reason)

let feed t ?index ~start ~stop ev =
  if t.settled <> None then invalid_arg "Stream.feed: monitor is finalized";
  if stop < t.last_stop then
    invalid_arg "Stream.feed: events must arrive in completion (stop) order";
  t.last_stop <- stop;
  let index = match index with Some i -> i | None -> t.count in
  t.count <- t.count + 1;
  match ev with
  | Add v ->
      let r = vrec t v in
      if r.a_seen then
        reject_eager t index
          (Printf.sprintf
             "duplicate %s(%d) (events %d and %d): certificates require \
              distinct values"
             (add_name t.family) v r.a_idx index)
      else begin
        r.a_seen <- true;
        r.a_start <- start;
        r.a_stop <- stop;
        r.a_idx <- index;
        if r.r_seen && r.r_stop < start then
          reject_eager t index
            (Printf.sprintf "%s(%d) completed before %s(%d) began"
               (remove_name t.family) v (add_name t.family) v)
      end
  | Remove v ->
      let r = vrec t v in
      if r.r_seen then
        reject_eager t index
          (Printf.sprintf "value %d %sped twice (events %d and %d)"
             v
             (match t.family with Fifo -> "dequeue" | Lifo -> "pop")
             r.r_idx index)
      else begin
        r.r_seen <- true;
        r.r_start <- start;
        r.r_stop <- stop;
        r.r_idx <- index;
        if r.a_seen && stop < r.a_start then
          reject_eager t index
            (Printf.sprintf "%s(%d) completed before %s(%d) began"
               (remove_name t.family) v (add_name t.family) v)
      end
  | Remove_empty -> t.empties <- (start, stop, index) :: t.empties

(* ------------------------------ finalize ------------------------------ *)

(* Witness index of a violation: the latest-fed event among its
   operations — the stream position at which the violation became
   checkable. Candidates across all sweeps race for the smallest one. *)

let pair_idx r = Stdlib.max r.a_idx r.r_idx

(* Witness index contributed by a record: where its last constraint-
   bearing event sits in the feed. *)
let wit_idx r = if r.r_seen then pair_idx r else r.a_idx

(* Fenwick tree over positions 1..m keeping a running max with a witness;
   negate keys for a running min. Positions are reversed coordinate
   ranks, so a prefix query answers "over all coordinates > x". *)
module Fen = struct
  type 'w t = { key : int array; wit : 'w option array }

  let create m = { key = Array.make (m + 1) min_int; wit = Array.make (m + 1) None }

  let update t i k w =
    let i = ref i in
    let m = Array.length t.key - 1 in
    while !i <= m do
      if k > t.key.(!i) then begin
        t.key.(!i) <- k;
        t.wit.(!i) <- Some w
      end;
      i := !i + (!i land - !i)
    done

  let query t i =
    let best = ref min_int and w = ref None in
    let i = ref i in
    while !i > 0 do
      if t.key.(!i) > !best then begin
        best := t.key.(!i);
        w := t.wit.(!i)
      end;
      i := !i - (!i land - !i)
    done;
    (!best, !w)
end

(* Reversed-rank index over a multiset of coordinates: [pos x] is the
   Fenwick position of coordinate [x] (largest coordinate = position 1),
   [rank_gt x] the prefix length covering all coordinates > [x]. *)
let coord_index coords =
  Array.sort compare coords;
  let m = Array.length coords in
  let search pred x =
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if pred coords.(mid) x then lo := mid + 1 else hi := mid
    done;
    m - !lo
  in
  let pos x = search (fun c x -> c < x) x in
  let rank_gt x = search (fun c x -> c <= x) x in
  (m, pos, rank_gt)

let finalize t =
  match t.settled with
  | Some v -> v
  | None ->
      let verdict =
        match t.eager with
        | Some (index, reason) -> Reject { index; reason }
        | None ->
            let best : (int * string) option ref = ref None in
            let candidate index reason =
              match !best with
              | Some (i, _) when i <= index -> ()
              | _ -> best := Some (index, reason)
            in
            (* Canonical order for deterministic sweeps regardless of
               hash-table iteration. *)
            let recs =
              Hashtbl.fold (fun _ r acc -> r :: acc) t.tbl []
              |> List.sort (fun a b -> compare a.v b.v)
              |> Array.of_list
            in
            (* Unmatched removes. *)
            Array.iter
              (fun r ->
                if r.r_seen && not r.a_seen then
                  candidate r.r_idx
                    (Printf.sprintf "%s(%d) without a matching %s"
                       (remove_name t.family) r.v (add_name t.family)))
              recs;
            (* Order certificate. *)
            (match t.family with
            | Fifo ->
                (* enq(v1) ≺ enq(v2) ∧ deq(v2) ≺ deq(v1), scanning each
                   candidate older value v1 (possibly never removed,
                   remove at +∞) against the pool of removed values v2.
                   Sweep queries v1 by remove start: the pool admitted so
                   far is exactly { v2 | remove(v2) ≺ remove(v1) }, and a
                   Fenwick min over add-start picks, among the admissible
                   v2 with add(v1) ≺ add(v2), the one whose pair
                   completed earliest in the feed. *)
                let inserts =
                  Array.of_list
                    (Array.to_list recs
                    |> List.filter (fun r -> r.a_seen && r.r_seen))
                in
                Array.sort
                  (fun a b -> compare (a.r_stop, a.v) (b.r_stop, b.v))
                  inserts;
                let m, pos, rank_gt =
                  coord_index (Array.map (fun r -> r.a_start) inserts)
                in
                let flag q w =
                  let idx = Stdlib.max (wit_idx q) (pair_idx w) in
                  candidate idx
                    (Printf.sprintf
                       "fifo violation: enq(%d) precedes enq(%d) but \
                        deq(%d) precedes %s"
                       q.v w.v w.v
                       (if q.r_seen then Printf.sprintf "deq(%d)" q.v
                        else
                          Printf.sprintf "any deq(%d) (never dequeued)" q.v))
                in
                (* Matched (or pending-removed) older values: the strict
                   deq(w) ≺ deq(q) admission. *)
                let fen = Fen.create m in
                let queries =
                  Array.of_list
                    (Array.to_list recs
                    |> List.filter (fun r -> r.a_seen && r.r_seen))
                in
                Array.sort
                  (fun a b -> compare (a.r_start, a.v) (b.r_start, b.v))
                  queries;
                let j = ref 0 in
                Array.iter
                  (fun q ->
                    while
                      !j < Array.length inserts
                      && inserts.(!j).r_stop < q.r_start
                    do
                      let w = inserts.(!j) in
                      Fen.update fen (pos w.a_start) (-pair_idx w) w;
                      incr j
                    done;
                    match Fen.query fen (rank_gt q.a_stop) with
                    | _, Some w -> flag q w
                    | _, None -> ())
                  queries;
                (* A never-dequeued older value is overtaken by any
                   dequeue of a later-enqueued one — even a pending
                   dequeue, which must still linearize somewhere after
                   its enqueue, where the older value provably sits
                   ahead. No temporal admission at all. *)
                let fen_any = Fen.create m in
                Array.iter
                  (fun w -> Fen.update fen_any (pos w.a_start) (-pair_idx w) w)
                  inserts;
                Array.iter
                  (fun q ->
                    if q.a_seen && not q.r_seen then
                      match Fen.query fen_any (rank_gt q.a_stop) with
                      | _, Some w -> flag q w
                      | _, None -> ())
                  recs
            | Lifo ->
                (* push(v1) ≺ push(v2) ≺ pop(v1) ∧ pop(v1) ≺ pop(v2),
                   pop(v2) possibly at +∞. Queries are popped values v1 in
                   pop-start order; the pool admitted so far is
                   { v2 | push(v2) ≺ pop(v1) }. Violation iff the pool
                   holds some v2 with push-start after push-stop(v1) and
                   pop-start after pop-stop(v1): a 2-d dominance query,
                   answered by a Fenwick max of pop-start over compressed
                   push-start, suffix-queried via reversed positions. *)
                let pool =
                  Array.of_list
                    (Array.to_list recs |> List.filter (fun r -> r.a_seen))
                in
                let m, pos, rank_gt =
                  coord_index (Array.map (fun r -> r.a_start) pool)
                in
                let fen = Fen.create m in
                (* Never-popped v2 blocks v1 even when pop(v1) is itself
                   pending (+∞ ≺ +∞ never holds, but a value that never
                   leaves sits on top of v1 forever) — tracked in a
                   second Fenwick keyed the same way, min feed index. *)
                let fen_nr = Fen.create m in
                let by_a_stop = Array.copy pool in
                Array.sort
                  (fun a b -> compare (a.a_stop, a.v) (b.a_stop, b.v))
                  by_a_stop;
                let queries =
                  Array.of_list
                    (Array.to_list recs
                    |> List.filter (fun r -> r.a_seen && r.r_seen))
                in
                Array.sort
                  (fun a b -> compare (a.r_start, a.v) (b.r_start, b.v))
                  queries;
                let j = ref 0 in
                Array.iter
                  (fun q ->
                    while
                      !j < Array.length by_a_stop
                      && by_a_stop.(!j).a_stop < q.r_start
                    do
                      let c = by_a_stop.(!j) in
                      Fen.update fen (pos c.a_start) c.r_start c;
                      if not c.r_seen then
                        Fen.update fen_nr (pos c.a_start) (-wit_idx c) c;
                      incr j
                    done;
                    if q.a_stop < max_int then begin
                      let flag w =
                        let idx = Stdlib.max (pair_idx q) (wit_idx w) in
                        candidate idx
                          (Printf.sprintf
                             "lifo violation: push(%d) precedes push(%d) \
                              which precedes pop(%d), yet pop(%d) \
                              precedes %s"
                             q.v w.v q.v q.v
                             (if w.r_seen then Printf.sprintf "pop(%d)" w.v
                              else
                                Printf.sprintf "any pop(%d) (never popped)"
                                  w.v))
                      in
                      let k, w = Fen.query fen (rank_gt q.a_stop) in
                      (if k > q.r_stop then
                         match w with Some w when w != q -> flag w | _ -> ());
                      match Fen.query fen_nr (rank_gt q.a_stop) with
                      | _, Some w when w != q -> flag w
                      | _ -> ()
                    end)
                  queries);
            (* Empty-removal coverage: d with some v, add(v) ≺ d and
               d ≺ remove(v) (missing remove at +∞). Sweep empties by
               start; admitted blockers are { v | add(v) ≺ d }, of which
               only the max remove-start matters. *)
            (match t.empties with
            | [] -> ()
            | es ->
                (* d with some v: add(v) ≺ d ∧ d ≺ remove(v) (missing
                   remove at +∞) — v occupies the structure across every
                   admissible point of d. Sweep empties by start; the
                   admitted blockers are { v | add(v) ≺ d }, and the
                   Fenwick min over remove-start picks the earliest-fed
                   one among those with remove-start > d.stop. *)
                let empties = Array.of_list es in
                Array.sort compare empties;
                let blockers =
                  Array.of_list
                    (Array.to_list recs |> List.filter (fun r -> r.a_seen))
                in
                Array.sort
                  (fun a b -> compare (a.a_stop, a.v) (b.a_stop, b.v))
                  blockers;
                let m, pos, rank_gt =
                  coord_index
                    (Array.map
                       (fun r -> r.r_start)
                       (Array.of_list
                          (Array.to_list blockers
                          |> List.filter (fun r -> r.r_seen))))
                in
                let fen = Fen.create m in
                (* A never-removed value blocks unconditionally once its
                   add precedes the empty — even an empty whose own stop
                   is +∞ (a pending op) can never linearize past it, so
                   the strict d.stop < r_start comparison cannot encode
                   it. Scalar min-index over admitted never-removed
                   blockers instead. *)
                let nr : vrec option ref = ref None in
                let j = ref 0 in
                Array.iter
                  (fun (e_start, e_stop, e_idx) ->
                    while
                      !j < Array.length blockers
                      && blockers.(!j).a_stop < e_start
                    do
                      let b = blockers.(!j) in
                      if b.r_seen then
                        Fen.update fen (pos b.r_start) (-wit_idx b) b
                      else begin
                        match !nr with
                        | Some w when wit_idx w <= wit_idx b -> ()
                        | _ -> nr := Some b
                      end;
                      incr j
                    done;
                    let flag w =
                      let idx = Stdlib.max e_idx (wit_idx w) in
                      candidate idx
                        (Printf.sprintf
                           "%s-empty while value %d was provably inside \
                            (%s completed before it, %s %s)"
                           (remove_name t.family) w.v (add_name t.family)
                           (remove_name t.family)
                           (if w.r_seen then "began after it"
                            else "never happened"))
                    in
                    (match !nr with Some w -> flag w | None -> ());
                    match Fen.query fen (rank_gt e_stop) with
                    | _, Some w -> flag w
                    | _, None -> ())
                  empties);
            (match !best with
            | Some (index, reason) -> Reject { index; reason }
            | None -> Accept)
      in
      t.settled <- Some verdict;
      verdict

(* -------------------------- history front-ends -------------------------- *)

module H = History

let feed_order (h : 'o H.entry array) cond =
  let n = Array.length h in
  let key =
    Array.init n (fun i ->
        let start, stop = Order.interval cond h.(i) in
        (stop, start, i))
  in
  Array.sort compare key;
  Array.map (fun (_, _, i) -> i) key

module Generic (S : Spec.S) = struct
  module C = Checker.Make (S)

  let check ?max_segment cond h =
    if C.check_segmented ?max_segment cond h then Accept
    else
      Reject
        {
          index = Stdlib.max 0 (Array.length h - 1);
          reason =
            Printf.sprintf "history is not %s-FL (exact segmented check)"
              (Order.condition_name cond);
        }
end

module GQ = Generic (Spec.Queue_spec)
module GS = Generic (Spec.Stack_spec)
module GM = Generic (Spec.Map_spec)

(* Certificates apply when precedence is the pure interval order (no
   program-order edges: Strong, Weak) and added values are distinct per
   object. Everything else goes to the exact fallback. *)
let certifiable cond ~added h =
  (match cond with Order.Strong | Order.Weak -> true | Order.Medium | Order.Fsc -> false)
  &&
  let seen = Hashtbl.create 64 in
  Array.for_all
    (fun e ->
      match added e.H.op with
      | None -> true
      | Some v ->
          let k = (e.H.obj, v) in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
    h

let check_with ~family ~to_event ~fallback cond (h : 'o H.entry array) =
  let added op = match to_event op with Add v -> Some v | _ -> None in
  if not (certifiable cond ~added h) then fallback cond h
  else begin
    let monitors = Hashtbl.create 8 in
    let monitor obj =
      match Hashtbl.find_opt monitors obj with
      | Some m -> m
      | None ->
          let m = create family in
          Hashtbl.add monitors obj m;
          m
    in
    let order = feed_order h cond in
    Array.iteri
      (fun fi i ->
        let e = h.(i) in
        let start, stop = Order.interval cond e in
        feed (monitor e.H.obj) ~index:fi ~start ~stop (to_event e.H.op))
      order;
    let best = ref Accept in
    Hashtbl.iter
      (fun _ m ->
        match (finalize m, !best) with
        | Accept, _ -> ()
        | (Reject _ as r), Accept -> best := r
        | Reject { index; _ }, Reject { index = i0; _ } when index < i0 ->
            best := finalize m
        | Reject _, Reject _ -> ())
      monitors;
    !best
  end

let check_queue_history cond h =
  check_with ~family:Fifo
    ~to_event:(function
      | Spec.Queue_spec.Enq v -> Add v
      | Spec.Queue_spec.Deq (Some v) -> Remove v
      | Spec.Queue_spec.Deq None -> Remove_empty)
    ~fallback:GQ.check cond h

let check_stack_history cond h =
  check_with ~family:Lifo
    ~to_event:(function
      | Spec.Stack_spec.Push v -> Add v
      | Spec.Stack_spec.Pop (Some v) -> Remove v
      | Spec.Stack_spec.Pop None -> Remove_empty)
    ~fallback:GS.check cond h

let check_map_history cond h = GM.check cond h
