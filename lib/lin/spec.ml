module type S = sig
  type op
  type state

  val initial : state
  val apply : state -> obj:int -> op -> state option
  val pp_op : Format.formatter -> op -> unit
end

(* Object states are kept in an association list sorted by object id so
   that structurally equal states are canonical — the checker memoizes on
   structural equality. An absent binding means "initial object state". *)
let rec get_obj obj = function
  | [] -> None
  | (o, s) :: rest ->
      if o = obj then Some s else if o > obj then None else get_obj obj rest

let rec set_obj obj s = function
  | [] -> [ (obj, s) ]
  | ((o, _) as b) :: rest ->
      if o = obj then (obj, s) :: rest
      else if o > obj then (obj, s) :: b :: rest
      else b :: set_obj obj s rest

module Stack_spec = struct
  type op = Push of int | Pop of int option

  type state = (int * int list) list

  let initial = []

  let apply state ~obj op =
    let stack = Option.value ~default:[] (get_obj obj state) in
    match op with
    | Push v -> Some (set_obj obj (v :: stack) state)
    | Pop None -> if stack = [] then Some state else None
    | Pop (Some v) -> (
        match stack with
        | top :: rest when top = v -> Some (set_obj obj rest state)
        | _ -> None)

  let pp_op ppf = function
    | Push v -> Format.fprintf ppf "push(%d)" v
    | Pop None -> Format.fprintf ppf "pop()=empty"
    | Pop (Some v) -> Format.fprintf ppf "pop()=%d" v
end

module Queue_spec = struct
  type op = Enq of int | Deq of int option

  type state = (int * int list) list
  (* Each queue is a list, oldest first. *)

  let initial = []

  let apply state ~obj op =
    let queue = Option.value ~default:[] (get_obj obj state) in
    match op with
    | Enq v -> Some (set_obj obj (queue @ [ v ]) state)
    | Deq None -> if queue = [] then Some state else None
    | Deq (Some v) -> (
        match queue with
        | oldest :: rest when oldest = v -> Some (set_obj obj rest state)
        | _ -> None)

  let pp_op ppf = function
    | Enq v -> Format.fprintf ppf "enq(%d)" v
    | Deq None -> Format.fprintf ppf "deq()=empty"
    | Deq (Some v) -> Format.fprintf ppf "deq()=%d" v
end

module Set_spec = struct
  type op = Insert of int * bool | Remove of int * bool | Contains of int * bool

  type state = (int * int list) list
  (* Each set is a sorted list of members. *)

  let initial = []

  let rec mem k = function
    | [] -> false
    | x :: rest -> if x = k then true else if x > k then false else mem k rest

  let rec add k = function
    | [] -> [ k ]
    | x :: rest as l ->
        if x = k then l else if x > k then k :: l else x :: add k rest

  let rec del k = function
    | [] -> []
    | x :: rest -> if x = k then rest else if x > k then x :: rest else x :: del k rest

  let apply state ~obj op =
    let set = Option.value ~default:[] (get_obj obj state) in
    match op with
    | Insert (k, changed) ->
        if changed = not (mem k set) then
          Some (set_obj obj (add k set) state)
        else None
    | Remove (k, changed) ->
        if changed = mem k set then Some (set_obj obj (del k set) state)
        else None
    | Contains (k, present) ->
        if present = mem k set then Some state else None

  let pp_op ppf = function
    | Insert (k, r) -> Format.fprintf ppf "insert(%d)=%b" k r
    | Remove (k, r) -> Format.fprintf ppf "remove(%d)=%b" k r
    | Contains (k, r) -> Format.fprintf ppf "contains(%d)=%b" k r
end

module Map_spec = struct
  type op =
    | Insert of int * int * bool
    | Find of int * int option
    | Remove of int * int option

  type state = (int * (int * int) list) list
  (* Each map is a sorted association list of bindings. *)

  let initial = []

  let rec lookup k = function
    | [] -> None
    | (k', v) :: rest ->
        if k' = k then Some v else if k' > k then None else lookup k rest

  let rec bind k v = function
    | [] -> [ (k, v) ]
    | ((k', _) as b) :: rest as l ->
        if k' = k then l (* bind-once: existing binding wins *)
        else if k' > k then (k, v) :: l
        else b :: bind k v rest

  let rec unbind k = function
    | [] -> []
    | ((k', _) as b) :: rest ->
        if k' = k then rest else if k' > k then b :: rest else b :: unbind k rest

  let apply state ~obj op =
    let map = Option.value ~default:[] (get_obj obj state) in
    match op with
    | Insert (k, v, created) ->
        if created = (lookup k map = None) then
          Some (set_obj obj (bind k v map) state)
        else None
    | Find (k, r) -> if r = lookup k map then Some state else None
    | Remove (k, r) ->
        if r = lookup k map then Some (set_obj obj (unbind k map) state)
        else None

  let pp_op ppf = function
    | Insert (k, v, r) -> Format.fprintf ppf "insert(%d->%d)=%b" k v r
    | Find (k, None) -> Format.fprintf ppf "find(%d)=absent" k
    | Find (k, Some v) -> Format.fprintf ppf "find(%d)=%d" k v
    | Remove (k, None) -> Format.fprintf ppf "remove(%d)=absent" k
    | Remove (k, Some v) -> Format.fprintf ppf "remove(%d)=%d" k v
end
