(** Sequential specifications for the three data types of the paper.

    A specification is a deterministic transition system over the states
    of {e all} objects in the history (keyed by object id), so the same
    machinery checks single-object histories, compositional per-object
    checks, and global multi-object checks (needed to exhibit Figure 3's
    non-compositionality of futures sequential consistency).

    An operation descriptor records the argument {e and} the result that
    the implementation actually returned; [apply] both validates the
    result against the current state and computes the successor state. *)

module type S = sig
  type op

  type state

  val initial : state

  val apply : state -> obj:int -> op -> state option
  (** [apply s ~obj op] is [Some s'] when [op] (with its recorded result)
      is legal for object [obj] in state [s], and the state becomes [s'];
      [None] when the recorded result is impossible. *)

  val pp_op : Format.formatter -> op -> unit
end

(** LIFO stacks of integers. *)
module Stack_spec : sig
  type op =
    | Push of int  (** [push v] returning unit *)
    | Pop of int option  (** [pop] and the value it returned *)

  include S with type op := op and type state = (int * int list) list
end

(** FIFO queues of integers. *)
module Queue_spec : sig
  type op = Enq of int | Deq of int option

  include S with type op := op and type state = (int * int list) list
end

(** Integer sets (the linked-list benchmark's abstract type). Every
    operation records the boolean the implementation returned: for
    [Insert]/[Remove] whether the set changed, for [Contains] membership. *)
module Set_spec : sig
  type op = Insert of int * bool | Remove of int * bool | Contains of int * bool

  include S with type op := op and type state = (int * int list) list
end

(** Bind-once int→int maps (the {!Fl.Weak_map} extension): [Insert]
    records whether the binding was created; [Find] and [Remove] record
    the value observed / removed. *)
module Map_spec : sig
  type op =
    | Insert of int * int * bool
    | Find of int * int option
    | Remove of int * int option

  include S with type op := op and type state = (int * (int * int) list) list
end
