(** ≺-linearizability checker (Definition 6.1 of Kogan & Herlihy).

    Given a history and a precedence relation ≺ extending the interval
    order, the checker searches for a legal sequential history — a total
    order of the operations that extends ≺ and is accepted by the
    sequential specification — using a Wing–Gong-style depth-first search
    memoized on (set of applied operations, abstract state).

    Complexity is exponential in the worst case; intended for the test
    suite's small histories (the memoized search handles a few dozen
    concurrent operations comfortably).

    By Theorem 6.3 (compositionality), strong/medium/weak checks split the
    history per object; the Fsc pseudo-condition must be checked globally
    (that is the point of Figure 3). [check] handles this automatically. *)

module Make (S : Spec.S) : sig
  val linearization :
    Order.condition -> S.op History.entry array -> int list option
  (** A witness: operation indices in a legal ≺-extending total order, or
      [None]. Checks the history {e globally} (all objects in one search).
      Raises [Invalid_argument] if the history has more than 62
      operations. *)

  val check : Order.condition -> S.op History.entry array -> bool
  (** Is the history ≺-linearizable under the condition? For Strong,
      Medium and Weak the check is split per object (valid by
      compositionality); for Fsc it is global. *)

  val pp_history : Format.formatter -> S.op History.entry array -> unit
  (** Render a history for failure diagnostics. *)
end
