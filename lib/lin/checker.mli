(** ≺-linearizability checker (Definition 6.1 of Kogan & Herlihy).

    Given a history and a precedence relation ≺ extending the interval
    order, the checker searches for a legal sequential history — a total
    order of the operations that extends ≺ and is accepted by the
    sequential specification — using a Wing–Gong-style depth-first search
    memoized on (set of applied operations, abstract state).

    Complexity is exponential in the worst case; intended for the test
    suite's small histories (the memoized search handles a few dozen
    concurrent operations comfortably).

    By Theorem 6.3 (compositionality), strong/medium/weak checks split the
    history per object; the Fsc pseudo-condition must be checked globally
    (that is the point of Figure 3). [check] handles this automatically. *)

module Make (S : Spec.S) : sig
  val linearization :
    Order.condition -> S.op History.entry array -> int list option
  (** A witness: operation indices in a legal ≺-extending total order, or
      [None]. Checks the history {e globally} (all objects in one search).
      Raises [Invalid_argument] if the history has more than 62
      operations. *)

  val check : Order.condition -> S.op History.entry array -> bool
  (** Is the history ≺-linearizable under the condition? For Strong,
      Medium and Weak the check is split per object (valid by
      compositionality); for Fsc it is global. *)

  val reachable_states :
    Order.condition ->
    from:S.state list ->
    S.op History.entry array ->
    S.state list
  (** All distinct abstract states some ≺-extending legal total order of
      the history can end in, starting from any of the [from] states
      (duplicates in [from] are ignored). [[]] means no legal order
      exists from any start state; an empty history returns [from]
      deduplicated. Checks the history {e globally}; raises
      [Invalid_argument] beyond 62 operations. The entry point for
      incremental checking: feed one quiescent chunk at a time, threading
      the returned state set into the next call's [from]. *)

  val check_segmented :
    ?max_segment:int -> Order.condition -> S.op History.entry array -> bool
  (** [check] for histories larger than the 62-op exact-search bound: the
      (per-object, except under Fsc) history is split at {e quiescent
      cuts} — points where every earlier operation's effect interval
      closes strictly before any later one opens, so every prefix
      operation ≺-precedes every suffix operation — and the sets of
      reachable end states are threaded through the segments with
      {!reachable_states}. Exact, not an approximation: accepts iff
      [check] would. Raises [Invalid_argument] if some segment exceeds
      [max_segment] (default, and capped at, 62) operations — i.e. the
      history has too few quiescent points for exact search. *)

  val pp_history : Format.formatter -> S.op History.entry array -> unit
  (** Render a history for failure diagnostics. *)
end
