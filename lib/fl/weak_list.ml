module Future = Futures.Future

module Make (K : Lockfree.Harris_list.KEY) = struct
  module L = Lockfree.Harris_list.Make (K)

  type kind = Insert | Remove | Contains

  type op = { key : K.t; kind : kind; future : bool Future.t }

  type t = { list : L.t }

  type handle = {
    owner : t;
    ops : op Opbuf.t; (* invocation order *)
    (* Swapped in at flush time so reentrant operations land in a fresh
       window. *)
    work : op Opbuf.t;
  }

  let create () = { list = L.create () }
  let shared t = t.list

  let handle owner = { owner; ops = Opbuf.create (); work = Opbuf.create () }

  let pending_count h = Opbuf.length h.ops

  (* The whole window is flushed with one list traversal: an index
     permutation is stable-sorted by key, so each key's operations appear
     consecutively and still in invocation order, and successive groups
     have ascending keys — each physical operation resumes the traversal
     from the previous group's position. *)
  let flush h =
    let n = Opbuf.length h.ops in
    if n > 0 then begin
      Opbuf.swap h.ops h.work;
      (* Withdraw cancelled ops before sorting: they contribute neither a
         physical operation nor a replay step. *)
      let n =
        let any = ref false in
        for i = 0 to n - 1 do
          if not (Future.is_pending (Opbuf.get h.work i).future) then begin
            Opbuf.delete h.work i;
            any := true
          end
        done;
        if !any then Opbuf.compact h.work else n
      in
      let idx = Array.init n (fun i -> i) in
      Array.stable_sort
        (fun a b -> K.compare (Opbuf.get h.work a).key (Opbuf.get h.work b).key)
        idx;
      let pos = ref (L.head_position h.owner.list) in
      let i = ref 0 in
      while !i < n do
        let j0 = !i in
        let key = (Opbuf.get h.work idx.(j0)).key in
        let j = ref (j0 + 1) in
        while
          !j < n && K.compare (Opbuf.get h.work idx.(!j)).key key = 0
        do
          incr j
        done;
        (* The last insert/remove in the group determines the net effect
           on the shared list, independent of the initial presence. *)
        let net = ref None in
        for g = j0 to !j - 1 do
          match (Opbuf.get h.work idx.(g)).kind with
          | (Insert | Remove) as k -> net := Some k
          | Contains -> ()
        done;
        (* Perform the single physical operation (or probe) and deduce
           the presence at its linearization point from its result. *)
        let presence, pos' =
          match !net with
          | None -> L.contains_from h.owner.list !pos key
          | Some Insert ->
              let changed, p = L.insert_from h.owner.list !pos key in
              (not changed, p)
          | Some Remove -> L.remove_from h.owner.list !pos key
          | Some Contains -> assert false
        in
        (* Replay the group in invocation order from the presence
           observed at its common linearization instant. *)
        let s = ref presence in
        for g = j0 to !j - 1 do
          let op = Opbuf.get h.work idx.(g) in
          match op.kind with
          | Insert ->
              Future.fulfil op.future (not !s);
              s := true
          | Remove ->
              Future.fulfil op.future !s;
              s := false
          | Contains -> Future.fulfil op.future !s
        done;
        pos := pos';
        i := !j
      done;
      (* One list traversal resolved the whole sorted window. *)
      Obs.splice ~kind:Obs.Event.k_weak_list ~n;
      Opbuf.clear h.work
    end

  let abandon h =
    let n = ref 0 in
    let poison op =
      if Future.poison op.future Future.Orphaned then incr n
    in
    Opbuf.iter poison h.ops;
    Opbuf.iter poison h.work;
    Opbuf.clear h.ops;
    Opbuf.clear h.work;
    !n

  let add h key kind =
    let future = Future.create () in
    Future.set_evaluator future (fun () -> flush h);
    Opbuf.push h.ops { key; kind; future };
    future

  let insert h key = add h key Insert
  let remove h key = add h key Remove
  let contains h key = add h key Contains
end
