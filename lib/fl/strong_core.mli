(** The strong-FL evaluation engine, shared by the strong stack, queue and
    list (Kogan & Herlihy §4).

    Strong futures linearizability requires every operation to appear to
    take effect between its invocation and the moment its future is
    returned. The paper's construction achieves this with (1) a shared
    lock-free queue of pending operation descriptors, whose FIFO order
    fixes the linearization order at invocation time, and (2) a lock that
    serializes {e evaluation}: the lock holder drains a bounded prefix of
    the queue, applies it — with type-specific optimizations — to a
    sequential instance of the data structure, and fulfils the futures.

    This module packages the queue + lock + drain protocol; each structure
    supplies only [apply_batch]. *)

type 'a t
(** An engine whose pending operations have type ['a]. *)

val create : apply_batch:('a list -> unit) -> 'a t
(** [apply_batch ops] is called with the drained prefix, oldest first,
    while the evaluation lock is held; it must apply the operations to the
    sequential instance and fulfil every future they carry. *)

val submit : 'a t -> 'a -> unit
(** Lock-free: record a pending operation. Called at invocation time,
    before returning the operation's future. *)

val eval : 'a t -> is_ready:(unit -> bool) -> unit
(** The evaluation protocol for forcing one future: spin for the lock
    while periodically checking [is_ready] (another evaluator may fulfil
    our future first); once acquired, if the future is still pending,
    drain and apply the current batch — which necessarily contains our
    operation — then release. Postcondition: [is_ready ()] is true. *)

val drain_now : 'a t -> unit
(** Acquire the lock unconditionally and evaluate everything currently
    pending. Used to settle an object at a quiescent point. *)

val pending_cas_count : 'a t -> int
(** CAS attempts on the shared pending queue (diagnostics). *)
