module Future = Futures.Future

module Make (K : Lockfree.Harris_list.KEY) = struct
  module S = Seqds.Seq_list.Make (K)

  type kind = Insert | Remove | Contains

  type op = { key : K.t; kind : kind; future : bool Future.t }

  type t = { seq : S.t; core : op Strong_core.t }

  let apply_op_at cursor op =
    let result =
      match op.kind with
      | Insert -> S.seek_insert cursor op.key
      | Remove -> S.seek_remove cursor op.key
      | Contains -> S.seek_contains cursor op.key
    in
    Future.fulfil op.future result

  let apply_batch seq ~sort_batch ops =
    if sort_batch then begin
      (* Stable by key: operations on equal keys keep their linearization
         order; distinct keys commute, so sorting is unobservable. One
         monotone cursor applies the whole batch in a single traversal. *)
      let sorted =
        List.stable_sort (fun a b -> K.compare a.key b.key) ops
      in
      let cursor = S.cursor seq in
      List.iter (apply_op_at cursor) sorted
    end
    else
      (* Ablation: temporal order, each operation pays a full search. *)
      List.iter (fun op -> apply_op_at (S.cursor seq) op) ops

  let create ?(sort_batch = true) () =
    let seq = S.create () in
    { seq; core = Strong_core.create ~apply_batch:(apply_batch seq ~sort_batch) }

  let submit t key kind =
    let future = Future.create () in
    Strong_core.submit t.core { key; kind; future };
    Future.set_evaluator future (fun () ->
        Strong_core.eval t.core ~is_ready:(fun () -> Future.is_ready future));
    future

  let insert t key = submit t key Insert
  let remove t key = submit t key Remove
  let contains t key = submit t key Contains

  let drain t = Strong_core.drain_now t.core
  let length t = S.length t.seq
  let to_list t = S.to_list t.seq
  let pending_cas_count t = Strong_core.pending_cas_count t.core
end
