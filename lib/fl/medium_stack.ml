module Future = Futures.Future

type 'a op = Push of 'a * unit Future.t | Pop of 'a option Future.t

type 'a t = { stack : 'a Lockfree.Treiber_stack.t }

(* Pending operations are kept in invocation order and elimination is
   decided at FLUSH time, not eagerly at invocation. Eager pairing would
   fulfil the pop's future immediately, closing its effect window while an
   older pop is still pending; another thread could then issue and
   evaluate a push strictly after that window and before the older pop's
   flush, forcing the cycle
     pop_old ≺ push ≺ pop_new ≺ other_push ≺ pop_old
   (program order + interval order + the values observed) — a medium-FL
   violation. Deferring the pairing to the flush keeps every window open
   until all of the thread's earlier operations have taken effect. *)
type 'a handle = {
  owner : 'a t;
  mutable ops : 'a op list; (* newest first *)
  mutable n_ops : int;
}

let create () = { stack = Lockfree.Treiber_stack.create () }
let shared t = t.stack

let handle owner = { owner; ops = []; n_ops = 0 }

let pending_count h = h.n_ops

(* Replay the pending list against a buffer of not-yet-applied pushes:
   a pop cancels the newest buffered push (the adjacent push/pop pair is
   a no-op on the stack); a pop with no buffered push must read the
   shared stack — and since its buffer was empty, every surviving push is
   younger than it, so all shared pops precede all surviving pushes in
   invocation order. One combined pop and one combined push suffice. *)
let flush h =
  match h.ops with
  | [] -> ()
  | newest_first ->
      let ops = List.rev newest_first in
      h.ops <- [];
      h.n_ops <- 0;
      let buffer = ref [] (* unmatched pushes, newest first *) in
      let shared_pops = ref [] (* newest first *) in
      List.iter
        (fun op ->
          match op with
          | Push (v, f) -> buffer := (v, f) :: !buffer
          | Pop f -> (
              match !buffer with
              | (v, fp) :: rest ->
                  buffer := rest;
                  Future.fulfil fp ();
                  Future.fulfil f (Some v)
              | [] -> shared_pops := f :: !shared_pops))
        ops;
      (match List.rev !shared_pops with
      | [] -> ()
      | oldest_first ->
          let values =
            Lockfree.Treiber_stack.pop_many h.owner.stack
              (List.length oldest_first)
          in
          let rec assign pops values =
            match (pops, values) with
            | [], _ -> ()
            | f :: pops', v :: values' ->
                Future.fulfil f (Some v);
                assign pops' values'
            | f :: pops', [] ->
                Future.fulfil f None;
                assign pops' []
          in
          assign oldest_first values);
      match List.rev !buffer with
      | [] -> ()
      | oldest_first ->
          Lockfree.Treiber_stack.push_list h.owner.stack
            (List.map fst oldest_first);
          List.iter (fun (_, f) -> Future.fulfil f ()) oldest_first

let push h x =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush h);
  h.ops <- Push (x, f) :: h.ops;
  h.n_ops <- h.n_ops + 1;
  f

let pop h =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush h);
  h.ops <- Pop f :: h.ops;
  h.n_ops <- h.n_ops + 1;
  f
