module Future = Futures.Future

type 'a op = Push of 'a * unit Future.t | Pop of 'a option Future.t

type 'a t = { stack : 'a Lockfree.Treiber_stack.t }

(* Pending operations are kept in invocation order and elimination is
   decided at FLUSH time, not eagerly at invocation. Eager pairing would
   fulfil the pop's future immediately, closing its effect window while an
   older pop is still pending; another thread could then issue and
   evaluate a push strictly after that window and before the older pop's
   flush, forcing the cycle
     pop_old ≺ push ≺ pop_new ≺ other_push ≺ pop_old
   (program order + interval order + the values observed) — a medium-FL
   violation. Deferring the pairing to the flush keeps every window open
   until all of the thread's earlier operations have taken effect. *)
type 'a handle = {
  owner : 'a t;
  ops : 'a op Opbuf.t; (* oldest first *)
  (* Flush-time working state: [ops] is swapped into [work] before any
     future is fulfilled, so reentrant operations land in a fresh window;
     [buf_*] holds unmatched pushes (a LIFO via push/pop_back) and
     [shared_pops] the pops that must read the shared stack. *)
  work : 'a op Opbuf.t;
  buf_vals : 'a Opbuf.t;
  buf_futs : unit Future.t Opbuf.t;
  shared_pops : 'a option Future.t Opbuf.t;
}

let create () = { stack = Lockfree.Treiber_stack.create () }
let shared t = t.stack

let handle owner =
  {
    owner;
    ops = Opbuf.create ();
    work = Opbuf.create ();
    buf_vals = Opbuf.create ();
    buf_futs = Opbuf.create ();
    shared_pops = Opbuf.create ();
  }

let pending_count h = Opbuf.length h.ops

let op_pending = function
  | Push (_, f) -> Future.is_pending f
  | Pop f -> Future.is_pending f

(* Replay the pending window against a buffer of not-yet-applied pushes:
   a pop cancels the newest buffered push (the adjacent push/pop pair is
   a no-op on the stack); a pop with no buffered push must read the
   shared stack — and since its buffer was empty, every surviving push is
   younger than it, so all shared pops precede all surviving pushes in
   invocation order. One combined pop and one combined push suffice. *)
let flush h =
  let n = Opbuf.length h.ops in
  if n > 0 then begin
    Opbuf.swap h.ops h.work;
    for i = 0 to n - 1 do
      let op = Opbuf.get h.work i in
      (* A cancelled op is a no-op: a withdrawn push contributes no value
         and a withdrawn pop consumes none. *)
      if op_pending op then
        match op with
        | Push (v, f) ->
            Opbuf.push h.buf_vals v;
            Opbuf.push h.buf_futs f
        | Pop f ->
            if Opbuf.length h.buf_vals > 0 then begin
              let v = Opbuf.pop_back h.buf_vals in
              Future.fulfil (Opbuf.pop_back h.buf_futs) ();
              Future.fulfil f (Some v)
            end
            else Opbuf.push h.shared_pops f
    done;
    Opbuf.clear h.work;
    let np = Opbuf.length h.shared_pops in
    if np > 0 then begin
      (* Oldest surviving pop receives the value that was on top. *)
      let k =
        Lockfree.Treiber_stack.pop_seg h.owner.stack ~n:np ~f:(fun i v ->
            Future.fulfil (Opbuf.get h.shared_pops i) (Some v))
      in
      Obs.splice ~kind:Obs.Event.k_medium_stack_pop ~n:k;
      for i = k to np - 1 do
        Future.fulfil (Opbuf.get h.shared_pops i) None
      done;
      Opbuf.clear h.shared_pops
    end;
    let nb = Opbuf.length h.buf_vals in
    if nb > 0 then begin
      (* Oldest surviving push deepest: one CAS splices the window. *)
      Lockfree.Treiber_stack.push_seg h.owner.stack ~n:nb ~get:(fun i ->
          Opbuf.get h.buf_vals i);
      Obs.splice ~kind:Obs.Event.k_medium_stack_push ~n:nb;
      for i = 0 to nb - 1 do
        Future.fulfil (Opbuf.get h.buf_futs i) ()
      done;
      Opbuf.clear h.buf_vals;
      Opbuf.clear h.buf_futs
    end
  end

let abandon h =
  let n = ref 0 in
  let poison : type x. x Future.t -> unit =
   fun f -> if Future.poison f Future.Orphaned then incr n
  in
  let op_poison = function Push (_, f) -> poison f | Pop f -> poison f in
  Opbuf.iter op_poison h.ops;
  Opbuf.iter op_poison h.work;
  Opbuf.iter poison h.buf_futs;
  Opbuf.iter poison h.shared_pops;
  Opbuf.clear h.ops;
  Opbuf.clear h.work;
  Opbuf.clear h.buf_vals;
  Opbuf.clear h.buf_futs;
  Opbuf.clear h.shared_pops;
  !n

let push h x =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush h);
  Opbuf.push h.ops (Push (x, f));
  f

let pop h =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush h);
  Opbuf.push h.ops (Pop f);
  f
