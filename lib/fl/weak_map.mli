(** Weak-FL map (extension).

    The paper's §2 motivates futures with map operations ("binding a key
    to a value", "the result of a map look-up") but evaluates only
    list-based sets; this module carries the weak-FL list design over to
    a key/value map on the {!Lockfree.Harris_kv} substrate.

    Bindings are bind-once: [insert] on a present key leaves the existing
    binding (and its future yields [false]); replace = remove + insert.

    Pending operations are kept sorted by key and applied oldest-first
    per key; forcing any future flushes the whole pending batch in one
    ascending traversal of the shared list (each operation pays its own
    physical list operation, but the search resumes from the previous
    position — the combining that makes bulk lookups and loads cheap). *)

module Make (K : Lockfree.Harris_list.KEY) : sig
  type 'v t
  type 'v handle

  val create : unit -> 'v t
  val handle : 'v t -> 'v handle

  val insert : 'v handle -> K.t -> 'v -> bool Futures.Future.t
  (** Future yields [true] iff the binding was created. *)

  val find : 'v handle -> K.t -> 'v option Futures.Future.t

  val remove : 'v handle -> K.t -> 'v option Futures.Future.t
  (** Future yields the removed value. *)

  val flush : 'v handle -> unit
  val pending_count : 'v handle -> int

  val abandon : 'v handle -> int
  (** Poison every pending future with [Future.Orphaned] and empty the
      window; returns the number poisoned. The recovery hook for a dead
      owner's handle (see {!Workload}'s abandon machinery): orphaned
      operations fail fast instead of hanging their waiters, and the
      shared list is untouched — un-applied operations are lost, never
      half-applied. *)

  val shared : 'v t -> 'v Lockfree.Harris_kv.Make(K).t
end
