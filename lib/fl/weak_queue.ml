module Future = Futures.Future

type 'a t = { queue : 'a Lockfree.Ms_queue.t }

type 'a handle = {
  owner : 'a t;
  mutable enqs : ('a * unit Future.t) list; (* newest first *)
  mutable n_enqs : int;
  mutable deqs : 'a option Future.t list; (* newest first *)
  mutable n_deqs : int;
}

let create () = { queue = Lockfree.Ms_queue.create () }
let shared t = t.queue

let handle owner = { owner; enqs = []; n_enqs = 0; deqs = []; n_deqs = 0 }

let pending_count h = h.n_enqs + h.n_deqs

let flush_enqueues h =
  match h.enqs with
  | [] -> ()
  | newest_first ->
      let oldest_first = List.rev newest_first in
      Lockfree.Ms_queue.enqueue_list h.owner.queue (List.map fst oldest_first);
      List.iter (fun (_, f) -> Future.fulfil f ()) oldest_first;
      h.enqs <- [];
      h.n_enqs <- 0

let flush_dequeues h =
  match h.deqs with
  | [] -> ()
  | newest_first ->
      let oldest_first = List.rev newest_first in
      let values = Lockfree.Ms_queue.dequeue_many h.owner.queue h.n_deqs in
      let rec assign deqs values =
        match (deqs, values) with
        | [], _ -> ()
        | f :: deqs', v :: values' ->
            Future.fulfil f (Some v);
            assign deqs' values'
        | f :: deqs', [] ->
            Future.fulfil f None;
            assign deqs' []
      in
      assign oldest_first values;
      h.deqs <- [];
      h.n_deqs <- 0

let flush h =
  flush_enqueues h;
  flush_dequeues h

let enqueue h x =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush_enqueues h);
  h.enqs <- (x, f) :: h.enqs;
  h.n_enqs <- h.n_enqs + 1;
  f

let dequeue h =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush_dequeues h);
  h.deqs <- f :: h.deqs;
  h.n_deqs <- h.n_deqs + 1;
  f
