module Future = Futures.Future

type 'a t = { queue : 'a Lockfree.Ms_queue.t }

type 'a handle = {
  owner : 'a t;
  (* Pending operations, oldest first. Enqueue values and futures live in
     parallel rings so an enqueue allocates nothing beyond its future. *)
  enq_vals : 'a Opbuf.t;
  enq_futs : unit Future.t Opbuf.t;
  deqs : 'a option Future.t Opbuf.t;
  (* Scratch rings swapped in at flush time so reentrant operations land
     in a fresh window. *)
  scratch_vals : 'a Opbuf.t;
  scratch_futs : unit Future.t Opbuf.t;
  scratch_deqs : 'a option Future.t Opbuf.t;
}

let create () = { queue = Lockfree.Ms_queue.create () }
let shared t = t.queue

let handle owner =
  {
    owner;
    enq_vals = Opbuf.create ();
    enq_futs = Opbuf.create ();
    deqs = Opbuf.create ();
    scratch_vals = Opbuf.create ();
    scratch_futs = Opbuf.create ();
    scratch_deqs = Opbuf.create ();
  }

let pending_count h = Opbuf.length h.enq_vals + Opbuf.length h.deqs

(* Withdraw cancelled ops from a detached window before it is spliced:
   tombstone their slots (both rings at the same index, keeping the
   parallel rings aligned), then compact. Returns the live size. *)
let drop_cancelled_pairs vals futs n =
  let any = ref false in
  for i = 0 to n - 1 do
    if not (Future.is_pending (Opbuf.get futs i)) then begin
      Opbuf.delete futs i;
      Opbuf.delete vals i;
      any := true
    end
  done;
  if !any then begin
    ignore (Opbuf.compact vals : int);
    Opbuf.compact futs
  end
  else n

let drop_cancelled futs n =
  let any = ref false in
  for i = 0 to n - 1 do
    if not (Future.is_pending (Opbuf.get futs i)) then begin
      Opbuf.delete futs i;
      any := true
    end
  done;
  if !any then Opbuf.compact futs else n

let flush_enqueues h =
  let n = Opbuf.length h.enq_vals in
  if n > 0 then begin
    Opbuf.swap h.enq_vals h.scratch_vals;
    Opbuf.swap h.enq_futs h.scratch_futs;
    let n = drop_cancelled_pairs h.scratch_vals h.scratch_futs n in
    Lockfree.Ms_queue.enqueue_seg h.owner.queue ~n ~get:(fun i ->
        Opbuf.get h.scratch_vals i);
    Obs.splice ~kind:Obs.Event.k_weak_queue_enq ~n;
    for i = 0 to n - 1 do
      Future.fulfil (Opbuf.get h.scratch_futs i) ()
    done;
    Opbuf.clear h.scratch_vals;
    Opbuf.clear h.scratch_futs
  end

let flush_dequeues h =
  let n = Opbuf.length h.deqs in
  if n > 0 then begin
    Opbuf.swap h.deqs h.scratch_deqs;
    let n = drop_cancelled h.scratch_deqs n in
    (* Oldest pending dequeue receives the oldest element; dequeues in
       excess of the queue's size observe "empty". *)
    let k =
      Lockfree.Ms_queue.dequeue_seg h.owner.queue ~n ~f:(fun i v ->
          Future.fulfil (Opbuf.get h.scratch_deqs i) (Some v))
    in
    Obs.splice ~kind:Obs.Event.k_weak_queue_deq ~n:k;
    for i = k to n - 1 do
      Future.fulfil (Opbuf.get h.scratch_deqs i) None
    done;
    Opbuf.clear h.scratch_deqs
  end

let flush h =
  flush_enqueues h;
  flush_dequeues h

let abandon h =
  let n = ref 0 in
  let poison : type x. x Future.t -> unit =
   fun f -> if Future.poison f Future.Orphaned then incr n
  in
  Opbuf.iter poison h.enq_futs;
  Opbuf.iter poison h.scratch_futs;
  Opbuf.iter poison h.deqs;
  Opbuf.iter poison h.scratch_deqs;
  Opbuf.clear h.enq_vals;
  Opbuf.clear h.enq_futs;
  Opbuf.clear h.deqs;
  Opbuf.clear h.scratch_vals;
  Opbuf.clear h.scratch_futs;
  Opbuf.clear h.scratch_deqs;
  !n

let enqueue h x =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush_enqueues h);
  Opbuf.push h.enq_vals x;
  Opbuf.push h.enq_futs f;
  f

let dequeue h =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush_dequeues h);
  Opbuf.push h.deqs f;
  f
