(** Weak-FL queue (Kogan & Herlihy §4.2).

    FIFO semantics rules out elimination, but combining is effective: each
    thread keeps two local pending lists — one of enqueues, one of
    dequeues. Forcing a future flushes {e all pending operations of the
    same type}: a chain of nodes is spliced into the shared Michael–Scott
    queue with two CASes, or multiple nodes are removed with one CAS.
    Under the weak condition the two lists need not be ordered against
    each other, which is what permits keeping them separate. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val handle : 'a t -> 'a handle

val enqueue : 'a handle -> 'a -> unit Futures.Future.t
val dequeue : 'a handle -> 'a option Futures.Future.t
(** The future yields [None] when the dequeue finds the shared queue
    empty at flush time. *)

val flush_enqueues : 'a handle -> unit
val flush_dequeues : 'a handle -> unit

val flush : 'a handle -> unit
(** Both kinds; enqueues first. *)

val abandon : 'a handle -> int
(** Recovery hook: poison every un-applied future in this handle's
    pending windows with [Future.Orphaned] and drop the windows. For use
    (by any thread) only once the owner is known dead — waiters then
    raise [Broken Orphaned] instead of spinning forever. Returns the
    number of futures poisoned. *)

val pending_count : 'a handle -> int
val shared : 'a t -> 'a Lockfree.Ms_queue.t
