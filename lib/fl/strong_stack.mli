(** Strong-FL stack (Kogan & Herlihy §4.1).

    Every operation appears to take effect before its future is returned:
    invocation enqueues an operation descriptor on the shared lock-free
    pending queue (fixing the linearization order), and evaluation —
    serialized by a lock — drains a bounded batch, {e eliminates} each pop
    against the nearest preceding unmatched push in the batch, and applies
    the few surviving operations to a sequential stack instance.

    No handles: the per-invocation state is global, so any thread may use
    the structure directly, and any thread's evaluation may fulfil another
    thread's futures ({e delegation}). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit Futures.Future.t
val pop : 'a t -> 'a option Futures.Future.t

val drain : 'a t -> unit
(** Evaluate all currently pending operations (for quiescent inspection). *)

val length : 'a t -> int
(** Length of the sequential instance; meaningful when quiescent and
    drained. *)

val to_list : 'a t -> 'a list
(** Top-first contents; meaningful when quiescent and drained. *)

val pending_cas_count : 'a t -> int
(** CAS attempts on the shared pending-operations queue. *)
