(** Transactional medium-FL linked-list set — the future-work design
    sketched in the paper's discussion (§8).

    The regular medium-FL list ({!Medium_list}) must apply a thread's
    pending operations strictly in invocation order: if it reordered
    "insert 3; insert 2" by key, another thread could observe 2 without 3,
    violating the condition. The paper suggests this "danger could be
    averted, and the operations reordered, if the thread were to lock the
    shared list and apply multiple operations in a kind of atomic
    transaction".

    This module implements that design: the shared list is paired with a
    lock; a flush acquires it, applies the whole pending batch in
    ascending key order — one traversal, at most one physical modification
    per key, exactly like the weak-FL list — and releases. Because the
    batch takes effect atomically, no other thread can observe an
    intermediate state, so the key-order reordering is unobservable and
    medium futures linearizability is preserved: results are computed by
    replaying each key's operations in invocation order, and operations on
    distinct keys commute.

    The trade-off probed by the paper's question ("whether such
    transaction-based approaches are scalable") is measurable with the
    ablation benchmark: traversal sharing like the weak list, but flushes
    serialize on the lock. *)

module Make (K : Lockfree.Harris_list.KEY) : sig
  type t
  type handle

  val create : unit -> t
  val handle : t -> handle

  val insert : handle -> K.t -> bool Futures.Future.t
  val remove : handle -> K.t -> bool Futures.Future.t
  val contains : handle -> K.t -> bool Futures.Future.t

  val flush : handle -> unit
  (** Apply all pending operations as one atomic transaction. *)

  val abandon : handle -> int
  (** Recovery hook: poison every un-applied future in this handle's
      pending windows with [Future.Orphaned] and drop the windows. For use
      (by any thread) only once the owner is known dead — waiters then
      raise [Broken Orphaned] instead of spinning forever. Returns the
      number of futures poisoned. *)

  val pending_count : handle -> int

  val shared : t -> Lockfree.Harris_list.Make(K).t
  (** The underlying list. Reads are safe at quiescence; mutating it
      directly bypasses the transaction lock. *)
end
