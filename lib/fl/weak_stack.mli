(** Weak-FL stack (Kogan & Herlihy §4.1).

    Weak futures linearizability lets every operation take effect anywhere
    between its invocation and its future's evaluation, so pending push and
    pop operations of the same thread may be freely reordered — maximizing
    {e elimination}: a new push is paired immediately with a pending pop
    (and vice versa), fulfilling both futures without touching the shared
    stack. Consequently a thread's local pending list only ever holds
    operations of one type. Forcing any future flushes the whole local
    list: all pending pushes (or pops) are applied to the shared Treiber
    stack with a single CAS via the multi-node extension ({e combining}).

    Shared-state is the lock-free stack; the per-thread pending state lives
    in a {!handle}, which must not be shared between domains. *)

type 'a t
type 'a handle

val create : ?elimination:bool -> ?exchange:bool -> unit -> 'a t
(** [elimination] defaults to [true]; [false] disables invocation-time
    push/pop pairing (ablation A in DESIGN.md) so both kinds of operations
    accumulate and are only combined, not eliminated.

    [exchange] (default [false]) additionally routes flush-time leftovers
    through a shared sharded {!Lockfree.Exchanger}: pops that found the
    shared stack empty park a take offer there, and any handle flushing
    pushes first feeds waiting takers before splicing the remainder. The
    exchange point lies within both operations' windows, so weak-FL is
    preserved; a fed pop returns [Some v] where a plain flush would have
    returned [None]. *)

val handle : 'a t -> 'a handle
(** A per-thread handle; create one per domain. *)

val push : 'a handle -> 'a -> unit Futures.Future.t
val pop : 'a handle -> 'a option Futures.Future.t
(** The future yields [None] when the pop hits an empty shared stack. *)

val flush : 'a handle -> unit
(** Apply all of this handle's pending operations now. *)

val abandon : 'a handle -> int
(** Recovery hook: poison every un-applied future in this handle's
    pending windows with [Future.Orphaned] and drop the windows. For use
    (by any thread) only once the owner is known dead — waiters then
    raise [Broken Orphaned] instead of spinning forever. Returns the
    number of futures poisoned. *)

val pending_count : 'a handle -> int

val shared : 'a t -> 'a Lockfree.Treiber_stack.t
(** The underlying shared instance (benchmarks read its CAS counter and
    tests inspect quiescent contents). *)

val exchanged : 'a t -> int
(** Completed cross-handle exchanges; [0] unless [~exchange:true]. *)

val exchanger : 'a t -> 'a Lockfree.Exchanger.t option
(** The cross-handle exchange array, when this stack was created with
    [~exchange:true] — exposed so the Tune controller can retune its
    width bounds ({!Lockfree.Exchanger.set_width_bounds}). *)
