module Future = Futures.Future

module Make (K : Lockfree.Harris_list.KEY) = struct
  module M = Lockfree.Harris_kv.Make (K)
  module KMap = Map.Make (K)

  type 'v op =
    | Insert of 'v * bool Future.t
    | Find of 'v option Future.t
    | Remove of 'v option Future.t

  type 'v t = { map : 'v M.t }

  type 'v handle = {
    owner : 'v t;
    mutable pending : 'v op list KMap.t; (* per key, newest first *)
    mutable count : int;
  }

  let create () = { map = M.create () }
  let shared t = t.map

  let handle owner = { owner; pending = KMap.empty; count = 0 }

  let pending_count h = h.count

  (* Apply one key's pending operations in invocation order, reusing the
     traversal position. Each op performs its own (position-resumed)
     physical operation, so the results always reflect the shared list —
     no speculation about initial presence is needed. *)
  let apply_group map pos key ops =
    List.fold_left
      (fun pos op ->
        match op with
        | Insert (v, f) ->
            let created, pos = M.insert_from map pos key v in
            Future.fulfil f created;
            pos
        | Find f ->
            let r, pos = M.find_from map pos key in
            Future.fulfil f r;
            pos
        | Remove f ->
            let r, pos = M.remove_from map pos key in
            Future.fulfil f r;
            pos)
      pos ops

  let flush h =
    let groups = KMap.bindings h.pending in
    h.pending <- KMap.empty;
    h.count <- 0;
    ignore
      (List.fold_left
         (fun pos (key, newest_first) ->
           apply_group h.owner.map pos key (List.rev newest_first))
         (M.head_position h.owner.map)
         groups)

  let add h key op =
    h.pending <-
      KMap.update key
        (function None -> Some [ op ] | Some ops -> Some (op :: ops))
        h.pending;
    h.count <- h.count + 1

  (* Owner-death recovery: poison every un-applied future so waiters see
     [Broken Orphaned] instead of hanging, and detach the window. Safe to
     call from the watchdog/sweep of a dead owner's handle. *)
  let abandon h =
    let n = ref 0 in
    let poison : 'a. 'a Future.t -> unit =
     fun f -> if Future.poison f Future.Orphaned then incr n
    in
    KMap.iter
      (fun _ ops ->
        List.iter
          (function
            | Insert (_, f) -> poison f
            | Find f -> poison f
            | Remove f -> poison f)
          ops)
      h.pending;
    h.pending <- KMap.empty;
    h.count <- 0;
    !n

  let insert h key v =
    let f = Future.create () in
    Future.set_evaluator f (fun () -> flush h);
    add h key (Insert (v, f));
    f

  let find h key =
    let f = Future.create () in
    Future.set_evaluator f (fun () -> flush h);
    add h key (Find f);
    f

  let remove h key =
    let f = Future.create () in
    Future.set_evaluator f (fun () -> flush h);
    add h key (Remove f);
    f
end
