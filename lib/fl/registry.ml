module Future = Futures.Future

module Int_key = struct
  type t = int

  let compare = Int.compare
end

module Harris = Lockfree.Harris_list.Make (Int_key)
module WL = Weak_list.Make (Int_key)
module ML = Medium_list.Make (Int_key)
module SL = Strong_list.Make (Int_key)
module TL = Txn_list.Make (Int_key)
module FCSet = Combining.Fc_set.Make (Int_key)

(* -------------------------------------------------------------------- *)
(* Stacks                                                               *)

type stack_ops = {
  s_push : int -> unit Future.t;
  s_pop : unit -> int option Future.t;
  s_flush : unit -> unit;
  s_abandon : unit -> int;
}

type stack_instance = {
  s_handle : unit -> stack_ops;
  s_drain : unit -> unit;
  s_cas_count : unit -> int;
  s_contents : unit -> int list;
  s_dials : unit -> Tunable.dial list;
}

type stack_impl = { s_name : string; s_make : unit -> stack_instance }

let lockfree_stack () =
  let s = Lockfree.Treiber_stack.create () in
  {
    s_handle =
      (fun () ->
        {
          s_push =
            (fun x ->
              Lockfree.Treiber_stack.push s x;
              Future.of_value ());
          s_pop = (fun () -> Future.of_value (Lockfree.Treiber_stack.pop s));
          s_flush = ignore;
          s_abandon = (fun () -> 0);
        });
    s_drain = ignore;
    s_cas_count = (fun () -> Lockfree.Treiber_stack.cas_count s);
    s_contents = (fun () -> Lockfree.Treiber_stack.to_list s);
    s_dials = (fun () -> []);
  }

let weak_stack_with ?(exchange = false) ~elimination () =
  let s = Weak_stack.create ~elimination ~exchange () in
  {
    s_handle =
      (fun () ->
        let h = Weak_stack.handle s in
        {
          s_push = (fun x -> Weak_stack.push h x);
          s_pop = (fun () -> Weak_stack.pop h);
          s_flush = (fun () -> Weak_stack.flush h);
          s_abandon = (fun () -> Weak_stack.abandon h);
        });
    s_drain = ignore;
    s_cas_count =
      (fun () -> Lockfree.Treiber_stack.cas_count (Weak_stack.shared s));
    s_contents =
      (fun () -> Lockfree.Treiber_stack.to_list (Weak_stack.shared s));
    s_dials =
      (fun () ->
        match Weak_stack.exchanger s with
        | Some ex -> Tunable.of_exchanger ~name:"weak-stack.elim" ex
        | None -> []);
  }

let weak_stack () = weak_stack_with ~elimination:true ()

let weak_exchange_stack () = weak_stack_with ~exchange:true ~elimination:true ()

let medium_stack () =
  let s = Medium_stack.create () in
  {
    s_handle =
      (fun () ->
        let h = Medium_stack.handle s in
        {
          s_push = (fun x -> Medium_stack.push h x);
          s_pop = (fun () -> Medium_stack.pop h);
          s_flush = (fun () -> Medium_stack.flush h);
          s_abandon = (fun () -> Medium_stack.abandon h);
        });
    s_drain = ignore;
    s_cas_count =
      (fun () -> Lockfree.Treiber_stack.cas_count (Medium_stack.shared s));
    s_contents =
      (fun () -> Lockfree.Treiber_stack.to_list (Medium_stack.shared s));
    s_dials = (fun () -> []);
  }

let strong_stack () =
  let s = Strong_stack.create () in
  {
    s_handle =
      (fun () ->
        {
          s_push = (fun x -> Strong_stack.push s x);
          s_pop = (fun () -> Strong_stack.pop s);
          s_flush = ignore;
          s_abandon = (fun () -> 0);
        });
    s_drain = (fun () -> Strong_stack.drain s);
    s_cas_count = (fun () -> Strong_stack.pending_cas_count s);
    s_contents = (fun () -> Strong_stack.to_list s);
    s_dials = (fun () -> []);
  }

let fc_stack () =
  let s = Combining.Fc_stack.create () in
  {
    s_handle =
      (fun () ->
        let h = Combining.Fc_stack.handle s in
        {
          s_push =
            (fun x ->
              Combining.Fc_stack.push h x;
              Future.of_value ());
          s_pop = (fun () -> Future.of_value (Combining.Fc_stack.pop h));
          s_flush = ignore;
          s_abandon = (fun () -> 0);
        });
    s_drain = ignore;
    (* Flat combining synchronizes through its lock and publication list,
       not CAS on the structure; report 0. *)
    s_cas_count = (fun () -> 0);
    s_contents = (fun () -> Combining.Fc_stack.to_list s);
    s_dials =
      (fun () ->
        Tunable.of_fc ~name:"fc-stack"
          ~pass_budget:(fun () -> Combining.Fc_stack.pass_budget s)
          ~set_pass_budget:(Combining.Fc_stack.set_pass_budget s)
          ~scan_limit:(fun () -> Combining.Fc_stack.scan_limit s)
          ~set_scan_limit:(Combining.Fc_stack.set_scan_limit s)
          ());
  }

let elim_stack () =
  let s = Lockfree.Elimination_stack.create () in
  {
    s_handle =
      (fun () ->
        {
          s_push =
            (fun x ->
              Lockfree.Elimination_stack.push s x;
              Future.of_value ());
          s_pop =
            (fun () -> Future.of_value (Lockfree.Elimination_stack.pop s));
          s_flush = ignore;
          s_abandon = (fun () -> 0);
        });
    s_drain = ignore;
    s_cas_count = (fun () -> Lockfree.Elimination_stack.cas_count s);
    s_contents = (fun () -> Lockfree.Elimination_stack.to_list s);
    s_dials = (fun () -> []);
  }

let stack_impls =
  [
    { s_name = "lockfree"; s_make = lockfree_stack };
    { s_name = "elim"; s_make = elim_stack };
    { s_name = "flatcomb"; s_make = fc_stack };
    { s_name = "weak"; s_make = weak_stack };
    { s_name = "weak-x"; s_make = weak_exchange_stack };
    { s_name = "medium"; s_make = medium_stack };
    { s_name = "strong"; s_make = strong_stack };
  ]

(* -------------------------------------------------------------------- *)
(* Queues                                                               *)

type queue_ops = {
  q_enq : int -> unit Future.t;
  q_deq : unit -> int option Future.t;
  q_flush : unit -> unit;
  q_abandon : unit -> int;
}

type queue_instance = {
  q_handle : unit -> queue_ops;
  q_drain : unit -> unit;
  q_cas_count : unit -> int;
  q_contents : unit -> int list;
  q_dials : unit -> Tunable.dial list;
}

type queue_impl = { q_name : string; q_make : unit -> queue_instance }

let lockfree_queue () =
  let q = Lockfree.Ms_queue.create () in
  {
    q_handle =
      (fun () ->
        {
          q_enq =
            (fun x ->
              Lockfree.Ms_queue.enqueue q x;
              Future.of_value ());
          q_deq = (fun () -> Future.of_value (Lockfree.Ms_queue.dequeue q));
          q_flush = ignore;
          q_abandon = (fun () -> 0);
        });
    q_drain = ignore;
    q_cas_count = (fun () -> Lockfree.Ms_queue.cas_count q);
    q_contents = (fun () -> Lockfree.Ms_queue.to_list q);
    q_dials = (fun () -> []);
  }

let weak_queue () =
  let q = Weak_queue.create () in
  {
    q_handle =
      (fun () ->
        let h = Weak_queue.handle q in
        {
          q_enq = (fun x -> Weak_queue.enqueue h x);
          q_deq = (fun () -> Weak_queue.dequeue h);
          q_flush = (fun () -> Weak_queue.flush h);
          q_abandon = (fun () -> Weak_queue.abandon h);
        });
    q_drain = ignore;
    q_cas_count =
      (fun () -> Lockfree.Ms_queue.cas_count (Weak_queue.shared q));
    q_contents = (fun () -> Lockfree.Ms_queue.to_list (Weak_queue.shared q));
    q_dials = (fun () -> []);
  }

let medium_queue () =
  let q = Medium_queue.create () in
  {
    q_handle =
      (fun () ->
        let h = Medium_queue.handle q in
        {
          q_enq = (fun x -> Medium_queue.enqueue h x);
          q_deq = (fun () -> Medium_queue.dequeue h);
          q_flush = (fun () -> Medium_queue.flush h);
          q_abandon = (fun () -> Medium_queue.abandon h);
        });
    q_drain = ignore;
    q_cas_count =
      (fun () -> Lockfree.Ms_queue.cas_count (Medium_queue.shared q));
    q_contents =
      (fun () -> Lockfree.Ms_queue.to_list (Medium_queue.shared q));
    q_dials = (fun () -> []);
  }

let strong_queue () =
  let q = Strong_queue.create () in
  {
    q_handle =
      (fun () ->
        {
          q_enq = (fun x -> Strong_queue.enqueue q x);
          q_deq = (fun () -> Strong_queue.dequeue q);
          q_flush = ignore;
          q_abandon = (fun () -> 0);
        });
    q_drain = (fun () -> Strong_queue.drain q);
    q_cas_count = (fun () -> Strong_queue.pending_cas_count q);
    q_contents = (fun () -> Strong_queue.to_list q);
    q_dials = (fun () -> []);
  }

let fc_queue () =
  let q = Combining.Fc_queue.create () in
  {
    q_handle =
      (fun () ->
        let h = Combining.Fc_queue.handle q in
        {
          q_enq =
            (fun x ->
              Combining.Fc_queue.enqueue h x;
              Future.of_value ());
          q_deq = (fun () -> Future.of_value (Combining.Fc_queue.dequeue h));
          q_flush = ignore;
          q_abandon = (fun () -> 0);
        });
    q_drain = ignore;
    q_cas_count = (fun () -> 0);
    q_contents = (fun () -> Combining.Fc_queue.to_list q);
    q_dials =
      (fun () ->
        Tunable.of_fc ~name:"fc-queue"
          ~pass_budget:(fun () -> Combining.Fc_queue.pass_budget q)
          ~set_pass_budget:(Combining.Fc_queue.set_pass_budget q)
          ~scan_limit:(fun () -> Combining.Fc_queue.scan_limit q)
          ~set_scan_limit:(Combining.Fc_queue.set_scan_limit q)
          ());
  }

let queue_impls =
  [
    { q_name = "lockfree"; q_make = lockfree_queue };
    { q_name = "flatcomb"; q_make = fc_queue };
    { q_name = "weak"; q_make = weak_queue };
    { q_name = "medium"; q_make = medium_queue };
    { q_name = "strong"; q_make = strong_queue };
  ]

(* -------------------------------------------------------------------- *)
(* Linked-list sets                                                     *)

type set_ops = {
  l_insert : int -> bool Future.t;
  l_remove : int -> bool Future.t;
  l_contains : int -> bool Future.t;
  l_flush : unit -> unit;
  l_abandon : unit -> int;
}

type set_instance = {
  l_handle : unit -> set_ops;
  l_drain : unit -> unit;
  l_cas_count : unit -> int;
  l_contents : unit -> int list;
  l_dials : unit -> Tunable.dial list;
}

type set_impl = { l_name : string; l_make : unit -> set_instance }

let lockfree_set () =
  let l = Harris.create () in
  {
    l_handle =
      (fun () ->
        {
          l_insert = (fun k -> Future.of_value (Harris.insert l k));
          l_remove = (fun k -> Future.of_value (Harris.remove l k));
          l_contains = (fun k -> Future.of_value (Harris.contains l k));
          l_flush = ignore;
          l_abandon = (fun () -> 0);
        });
    l_drain = ignore;
    l_cas_count = (fun () -> Harris.cas_count l);
    l_contents = (fun () -> Harris.to_list l);
    l_dials = (fun () -> []);
  }

let weak_set () =
  let l = WL.create () in
  {
    l_handle =
      (fun () ->
        let h = WL.handle l in
        {
          l_insert = (fun k -> WL.insert h k);
          l_remove = (fun k -> WL.remove h k);
          l_contains = (fun k -> WL.contains h k);
          l_flush = (fun () -> WL.flush h);
          l_abandon = (fun () -> WL.abandon h);
        });
    l_drain = ignore;
    l_cas_count = (fun () -> Harris.cas_count (WL.shared l));
    l_contents = (fun () -> Harris.to_list (WL.shared l));
    l_dials = (fun () -> []);
  }

let medium_set_with ~resume_hint =
  let l = ML.create ~resume_hint () in
  {
    l_handle =
      (fun () ->
        let h = ML.handle l in
        {
          l_insert = (fun k -> ML.insert h k);
          l_remove = (fun k -> ML.remove h k);
          l_contains = (fun k -> ML.contains h k);
          l_flush = (fun () -> ML.flush h);
          l_abandon = (fun () -> ML.abandon h);
        });
    l_drain = ignore;
    l_cas_count = (fun () -> Harris.cas_count (ML.shared l));
    l_contents = (fun () -> Harris.to_list (ML.shared l));
    l_dials = (fun () -> []);
  }

let medium_set () = medium_set_with ~resume_hint:true

let strong_set_with ~sort_batch =
  let l = SL.create ~sort_batch () in
  {
    l_handle =
      (fun () ->
        {
          l_insert = (fun k -> SL.insert l k);
          l_remove = (fun k -> SL.remove l k);
          l_contains = (fun k -> SL.contains l k);
          l_flush = ignore;
          l_abandon = (fun () -> 0);
        });
    l_drain = (fun () -> SL.drain l);
    l_cas_count = (fun () -> SL.pending_cas_count l);
    l_contents = (fun () -> SL.to_list l);
    l_dials = (fun () -> []);
  }

let strong_set () = strong_set_with ~sort_batch:true

let txn_set () =
  let l = TL.create () in
  {
    l_handle =
      (fun () ->
        let h = TL.handle l in
        {
          l_insert = (fun k -> TL.insert h k);
          l_remove = (fun k -> TL.remove h k);
          l_contains = (fun k -> TL.contains h k);
          l_flush = (fun () -> TL.flush h);
          l_abandon = (fun () -> TL.abandon h);
        });
    l_drain = ignore;
    l_cas_count = (fun () -> Harris.cas_count (TL.shared l));
    l_contents = (fun () -> Harris.to_list (TL.shared l));
    l_dials = (fun () -> []);
  }

let fc_set () =
  let l = FCSet.create () in
  {
    l_handle =
      (fun () ->
        let h = FCSet.handle l in
        {
          l_insert = (fun k -> Future.of_value (FCSet.insert h k));
          l_remove = (fun k -> Future.of_value (FCSet.remove h k));
          l_contains = (fun k -> Future.of_value (FCSet.contains h k));
          l_flush = ignore;
          l_abandon = (fun () -> 0);
        });
    l_drain = ignore;
    l_cas_count = (fun () -> 0);
    l_contents = (fun () -> FCSet.to_list l);
    l_dials =
      (fun () ->
        Tunable.of_fc ~name:"fc-set"
          ~pass_budget:(fun () -> FCSet.pass_budget l)
          ~set_pass_budget:(FCSet.set_pass_budget l)
          ~scan_limit:(fun () -> FCSet.scan_limit l)
          ~set_scan_limit:(FCSet.set_scan_limit l)
          ());
  }

let set_impls =
  [
    { l_name = "lockfree"; l_make = lockfree_set };
    { l_name = "flatcomb"; l_make = fc_set };
    { l_name = "weak"; l_make = weak_set };
    { l_name = "medium"; l_make = medium_set };
    { l_name = "strong"; l_make = strong_set };
    { l_name = "txn"; l_make = txn_set };
  ]

let find_stack name = List.find (fun i -> i.s_name = name) stack_impls
let find_queue name = List.find (fun i -> i.q_name = name) queue_impls
let find_set name = List.find (fun i -> i.l_name = name) set_impls
