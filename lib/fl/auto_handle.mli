(** Per-domain handles without plumbing.

    The weak/medium-FL structures require one handle per domain (the
    paper's thread-local pending lists). When threading a handle through
    the code is inconvenient — e.g. operations issued from arbitrary
    library callbacks — this wrapper lazily creates and caches one handle
    per domain in domain-local storage.

    {[
      let stack = Fl.Weak_stack.create ()
      let auto = Fl.Auto_handle.create stack ~make:Fl.Weak_stack.handle

      (* from any domain: *)
      let f = Fl.Weak_stack.push (Fl.Auto_handle.get auto) 42
    ]}

    Note: handles cache pending operations, so a domain that stops using
    the structure should [Fl.*.flush] its handle first (or force its
    futures); this wrapper cannot do that for domains it no longer sees. *)

type ('s, 'h) t

val create : 's -> make:('s -> 'h) -> ('s, 'h) t
(** [create s ~make] wraps structure [s]; [make s] is called at most once
    per domain, on first [get] from that domain. *)

val get : ('s, 'h) t -> 'h
(** The calling domain's handle (created on first use). *)

val structure : ('s, 'h) t -> 's
