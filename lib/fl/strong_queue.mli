(** Strong-FL queue (Kogan & Herlihy §4.2).

    Invocation enqueues an operation descriptor on the shared pending
    queue; the evaluation lock holder drains a bounded batch and applies
    it, in order, to a sequential queue instance. FIFO semantics permits
    no elimination, so the batch is applied directly (runs of equal-type
    operations are applied with the sequential bulk primitives). The paper
    notes this version has an inherent bottleneck — all threads contend on
    the pending queue's tail — which is exactly the behaviour Figure 5
    shows. *)

type 'a t

val create : unit -> 'a t

val enqueue : 'a t -> 'a -> unit Futures.Future.t
val dequeue : 'a t -> 'a option Futures.Future.t

val drain : 'a t -> unit
val length : 'a t -> int
val to_list : 'a t -> 'a list
(** Oldest-first; meaningful when quiescent and drained. *)

val pending_cas_count : 'a t -> int
