(* The controller-facing face of a runtime knob. Each tunable structure
   exposes its knobs as [dial]s — a clamped integer range plus get/set
   closures — so the Tune controller can steer any structure without
   depending on its module (and [Combining], which sits below [Fl] in
   the dependency order, contributes dials through plain closures). *)

type kind =
  | Slack_window (* Slack.set_slack: ops left pending before a drain *)
  | Fc_pass_budget (* Flat_combining.set_pass_budget *)
  | Fc_scan_limit (* Flat_combining.set_scan_limit (0 = unlimited) *)
  | Elim_min_width (* Exchanger.set_width_bounds ~min *)
  | Elim_max_width (* Exchanger.set_width_bounds ~max *)

let kind_name = function
  | Slack_window -> "slack-window"
  | Fc_pass_budget -> "fc-pass-budget"
  | Fc_scan_limit -> "fc-scan-limit"
  | Elim_min_width -> "elim-min-width"
  | Elim_max_width -> "elim-max-width"

type dial = {
  kind : kind;
  name : string;
  lo : int; (* inclusive bound the controller must respect *)
  hi : int;
  get : unit -> int;
  set : int -> unit; (* implementations clamp again defensively *)
}

(* Ceiling on slack: beyond a few thousand pending ops the window's
   drain cost dwarfs any further amortization win. *)
let slack_hi = 4096
let fc_pass_budget_hi = 64
let fc_scan_limit_hi = 1024

let of_slack ?(name = "slack") s =
  {
    kind = Slack_window;
    name;
    lo = 1;
    hi = slack_hi;
    get = (fun () -> Slack.slack s);
    set = (fun n -> Slack.set_slack s n);
  }

let of_exchanger ?(name = "elim") ex =
  let cap = Lockfree.Exchanger.capacity ex in
  [
    {
      kind = Elim_min_width;
      name = name ^ ".min-width";
      lo = 1;
      hi = cap;
      get = (fun () -> fst (Lockfree.Exchanger.width_bounds ex));
      set = (fun n -> Lockfree.Exchanger.set_width_bounds ~min:n ex);
    };
    {
      kind = Elim_max_width;
      name = name ^ ".max-width";
      lo = 1;
      hi = cap;
      get = (fun () -> snd (Lockfree.Exchanger.width_bounds ex));
      set = (fun n -> Lockfree.Exchanger.set_width_bounds ~max:n ex);
    };
  ]

let of_fc ?(name = "fc") ~pass_budget ~set_pass_budget ~scan_limit
    ~set_scan_limit () =
  [
    {
      kind = Fc_pass_budget;
      name = name ^ ".pass-budget";
      lo = 1;
      hi = fc_pass_budget_hi;
      get = pass_budget;
      set = set_pass_budget;
    };
    (* The dial's top of range means "unbounded": the structure's 0
       (scan limit off, no cursor bookkeeping at all) is surfaced as
       [hi], so hill-climbing Up past every bounded setting lands back
       on the zero-overhead full scan instead of a large-but-still-
       bounded one. The controller never sees the raw 0. *)
    {
      kind = Fc_scan_limit;
      name = name ^ ".scan-limit";
      lo = 8;
      hi = fc_scan_limit_hi;
      get =
        (fun () ->
          let v = scan_limit () in
          if v = 0 then fc_scan_limit_hi else v);
      set =
        (fun n -> set_scan_limit (if n >= fc_scan_limit_hi then 0 else n));
    };
  ]
