(** Shared queue of pending operations for strong-FL structures
    (Kogan & Herlihy §4).

    Invoking an operation on a strong-FL object enqueues a descriptor here
    in a lock-free manner (Michael–Scott protocol) and immediately returns
    the future. Evaluation is serialized by the structure's lock: the lock
    holder calls [drain], which records the current last completely
    enqueued operation, returns every operation from the head up to it
    (oldest first), and swings the head past them — so the time the lock
    is held is bounded even while other threads keep enqueueing.

    Concurrency contract: [enqueue] from any thread; [drain] only while
    holding the structure's evaluation lock. *)

type 'a t

val create : unit -> 'a t

val enqueue : 'a t -> 'a -> unit
(** Lock-free; when [enqueue] returns, the element is guaranteed to be
    covered by any subsequent [drain]. *)

val drain : 'a t -> 'a list
(** All operations enqueued so far, oldest first; removes them. Must be
    called with the evaluation lock held (single drainer). *)

val is_empty : 'a t -> bool
(** Snapshot; exact only in quiescent states. *)

val cas_count : 'a t -> int
val reset_cas_count : 'a t -> unit
