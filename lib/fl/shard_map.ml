module Future = Futures.Future

module type KEY = sig
  type t

  val compare : t -> t -> int
  val hash : t -> int
end

module Make (K : KEY) = struct
  module M = Lockfree.Harris_kv.Make (K)

  type 'v op =
    | Insert of K.t * 'v * bool Future.t
    | Find of K.t * 'v option Future.t
    | Remove of K.t * 'v option Future.t

  (* A sealed pending window in flight between owners. Once shipped, the
     buffer belongs to whoever wins the ack/recover CAS — exactly one
     handle ever touches it again. *)
  type 'v pkg = 'v op Opbuf.t

  type 'v shard = { b : 'v pkg Bucket.t; kv : 'v M.t }

  type 'v t = {
    shards : 'v shard array;
    lease : float;
    grant_timeout : float;
    next_id : int Atomic.t;
    (* Low-rate protocol statistics; padded so a transfer storm on one
       counter never bounces the others' cache lines. *)
    c_requests : int Atomic.t;
    c_grants : int Atomic.t;
    c_ships : int Atomic.t;
    c_acks : int Atomic.t;
    c_recovers : int Atomic.t;
    c_retries : int Atomic.t;
    c_degraded : int Atomic.t;
    c_poisoned : int Atomic.t;
  }

  type 'v handle = {
    t : 'v t;
    me : int;  (* unique lease-owner identity, never reused *)
    wins : 'v op Opbuf.t array;  (* one pending window per bucket *)
  }

  type stats = {
    requests : int;
    grants : int;
    ships : int;
    acks : int;
    recovers : int;
    retries : int;
    degraded_finds : int;
    poisoned : int;
  }

  let create ?(buckets = 8) ?(lease = 0.05) ?(grant_timeout = 0.002) () =
    if buckets < 1 then invalid_arg "Shard_map.create: buckets < 1";
    if lease <= 0.0 then invalid_arg "Shard_map.create: lease <= 0";
    if grant_timeout <= 0.0 then invalid_arg "Shard_map.create: grant_timeout <= 0";
    {
      shards =
        Array.init buckets (fun id -> { b = Bucket.create ~id; kv = M.create () });
      lease;
      grant_timeout;
      next_id = Atomic.make 0;
      c_requests = Sync.Padded.atomic 0;
      c_grants = Sync.Padded.atomic 0;
      c_ships = Sync.Padded.atomic 0;
      c_acks = Sync.Padded.atomic 0;
      c_recovers = Sync.Padded.atomic 0;
      c_retries = Sync.Padded.atomic 0;
      c_degraded = Sync.Padded.atomic 0;
      c_poisoned = Sync.Padded.atomic 0;
    }

  let handle t =
    {
      t;
      me = Atomic.fetch_and_add t.next_id 1;
      wins = Array.init (Array.length t.shards) (fun _ -> Opbuf.create ());
    }

  let buckets t = Array.length t.shards

  let bucket_of_key t k = (K.hash k land max_int) mod Array.length t.shards

  let stats t =
    {
      requests = Atomic.get t.c_requests;
      grants = Atomic.get t.c_grants;
      ships = Atomic.get t.c_ships;
      acks = Atomic.get t.c_acks;
      recovers = Atomic.get t.c_recovers;
      retries = Atomic.get t.c_retries;
      degraded_finds = Atomic.get t.c_degraded;
      poisoned = Atomic.get t.c_poisoned;
    }

  let in_flight t =
    Array.fold_left
      (fun n sh -> if Bucket.in_flight (Bucket.state sh.b) then n + 1 else n)
      0 t.shards

  let get t k = M.find (t.shards.(bucket_of_key t k)).kv k

  let size t = Array.fold_left (fun n sh -> n + M.size sh.kv) 0 t.shards

  let bindings t =
    Array.fold_left (fun acc sh -> acc @ M.bindings sh.kv) [] t.shards
    |> List.sort (fun (a, _) (b, _) -> K.compare a b)

  (* ------------------------- op plumbing --------------------------- *)

  let key_of = function Insert (k, _, _) | Find (k, _) | Remove (k, _) -> k

  let op_pending = function
    | Insert (_, _, f) -> Future.is_pending f
    | Find (_, f) -> Future.is_pending f
    | Remove (_, f) -> Future.is_pending f

  let poison_op = function
    | Insert (_, _, f) -> Future.poison f Future.Orphaned
    | Find (_, f) -> Future.poison f Future.Orphaned
    | Remove (_, f) -> Future.poison f Future.Orphaned

  let poison_buf w =
    let n = ref 0 in
    Opbuf.iter (fun op -> if poison_op op then incr n) w;
    Opbuf.clear w;
    !n

  (* Settle a successful recovery: poison the lost window, if any, and
     return the number of futures poisoned. *)
  let recovered t ~bucket (r : 'v pkg Bucket.recovery) =
    let k = match r.Bucket.lost with None -> 0 | Some pkg -> poison_buf pkg in
    Atomic.incr t.c_recovers;
    if k > 0 then ignore (Atomic.fetch_and_add t.c_poisoned k);
    Obs.shard_recover ~bucket ~poisoned:k;
    k

  (* Apply a window against a bucket segment: one traversal, ops sorted
     by key (stable, so per-key invocation order is kept), position
     resumed between keys — the same combining as Weak_map.flush.
     Cancelled/poisoned ops are skipped; fulfilment is try_fulfil, since
     the window may have been shipped here and a racing abandon of the
     issuing handle must not turn into Already_fulfilled. *)
  let apply_window kv w =
    let ops = Array.of_list (Opbuf.to_list w) in
    Array.stable_sort (fun a b -> K.compare (key_of a) (key_of b)) ops;
    let pos = ref (M.head_position kv) in
    let applied = ref 0 in
    Array.iter
      (fun op ->
        if op_pending op then begin
          incr applied;
          match op with
          | Insert (k, v, f) ->
              let r, p = M.insert_from kv !pos k v in
              pos := p;
              ignore (Future.try_fulfil f r)
          | Find (k, f) ->
              let r, p = M.find_from kv !pos k in
              pos := p;
              ignore (Future.try_fulfil f r)
          | Remove (k, f) ->
              let r, p = M.remove_from kv !pos k in
              pos := p;
              ignore (Future.try_fulfil f r)
        end)
      ops;
    !applied

  (* A shipped package is owned by nobody's handle, so if its application
     dies mid-way (a kill at a fulfil point under whole-process chaos)
     the survivors must not hang: poison the un-applied remainder before
     re-raising. *)
  let apply_pkg t kv pkg =
    match apply_window kv pkg with
    | n ->
        Opbuf.clear pkg;
        Obs.splice ~kind:Obs.Event.k_shard ~n
    | exception e ->
        let k = poison_buf pkg in
        if k > 0 then ignore (Atomic.fetch_and_add t.c_poisoned k);
        raise e

  (* --------------------- degraded read-only mode -------------------- *)

  (* While a bucket is owned elsewhere or in flight, pending finds whose
     key has no earlier pending mutation in this window may be answered
     directly against the segment — a legal weak-FL linearization point
     inside their pending window — leaving only mutations to wait for
     the transfer. *)
  let degraded_serve h i =
    let t = h.t in
    let sh = t.shards.(i) in
    let w = h.wins.(i) in
    let mutation_on k =
      let found = ref false in
      Opbuf.iter
        (fun op ->
          match op with
          | Insert (k', _, f) when Future.is_pending f && K.compare k k' = 0 ->
              found := true
          | Remove (k', f) when Future.is_pending f && K.compare k k' = 0 ->
              found := true
          | _ -> ())
        w;
      !found
    in
    for idx = 0 to Opbuf.length w - 1 do
      if not (Opbuf.deleted w idx) then
        match Opbuf.get w idx with
        | Find (k, f) when Future.is_pending f && not (mutation_on k) ->
            let r = M.find sh.kv k in
            if Future.try_fulfil f r then begin
              Atomic.incr t.c_degraded;
              Obs.shard_degraded ~bucket:i
            end;
            Opbuf.delete w idx
        | _ -> ()
    done

  (* ------------------------ owner-side pump ------------------------- *)

  (* Grant and seal-and-ship every bucket another handle requested from
     us, and renew leases nearing expiry. The [shard.ship] fault point
     fires *before* the window is detached, so a kill there leaves the
     window in this handle where [abandon] can poison it; after a
     successful grant the window rides in the Shipped state and exactly
     one taker (acker or recoverer) settles it. *)
  let service h =
    let t = h.t in
    Array.iteri
      (fun i sh ->
        match Bucket.state sh.b with
        | Bucket.Requested { owner; _ } when owner = h.me ->
            Faults.point "shard.grant";
            if Bucket.try_grant sh.b ~me:h.me ~timeout:t.lease then begin
              Atomic.incr t.c_grants;
              Obs.shard_grant ~bucket:i;
              Faults.point "shard.ship";
              let pkg = Opbuf.create () in
              Opbuf.swap pkg h.wins.(i);
              let n = Opbuf.live pkg in
              (* Stamp before the publishing CAS: the requester acks as
                 soon as Shipped is visible, and its ack must not sort
                 before this ship in the exported trace. *)
              let ship_ts = Obs.now_ns () in
              if Bucket.try_ship sh.b ~me:h.me ~pkg then begin
                Atomic.incr t.c_ships;
                Obs.shard_ship ~ts:ship_ts ~bucket:i ~n
              end
              else
                (* The transfer expired under us and a recoverer owns the
                   bucket: keep our window and re-route it normally. *)
                Opbuf.swap pkg h.wins.(i)
            end
        | Bucket.Owned { owner; until; _ } when owner = h.me ->
            if until -. Sync.Mono.now () < t.lease /. 2.0 then
              ignore (Bucket.try_renew sh.b ~me:h.me ~lease:t.lease)
        | _ -> ())
      t.shards

  (* ------------------------- the flush loop ------------------------- *)

  (* Apply bucket [i]'s window, acquiring/transferring ownership as
     needed. Terminates: every wait is bounded by a lease or transfer
     deadline, after which try_recover succeeds (or another handle's did,
     changing the state we re-read). [service] runs inside the wait so
     two handles requesting each other's buckets cannot deadlock. *)
  let flush_bucket h i =
    let t = h.t in
    let sh = t.shards.(i) in
    let w = h.wins.(i) in
    if Opbuf.length w > 0 then begin
      let bo = Sync.Backoff.create () in
      let attempt = ref 0 in
      let req_deadline = ref infinity in
      let t0 = ref 0 in
      let rec loop () =
        if Opbuf.live w = 0 then Opbuf.clear w
        else begin
          let now = Sync.Mono.now () in
          match Bucket.state sh.b with
          | Bucket.Owned { owner; until; _ } when owner = h.me && now < until ->
              if until -. now < t.lease /. 2.0 then begin
                if Bucket.try_renew sh.b ~me:h.me ~lease:t.lease then apply ()
                else wait ()
              end
              else apply ()
          | Bucket.Free _ ->
              if Bucket.try_acquire sh.b ~me:h.me ~lease:t.lease then apply ()
              else wait ()
          | st when Bucket.expired ~now st ->
              (match Bucket.try_recover sh.b ~me:h.me ~lease:t.lease with
              | Some r -> ignore (recovered t ~bucket:i r)
              | None -> ());
              loop ()
          | Bucket.Owned _ ->
              (* live foreign lease: read-only service, then request *)
              degraded_serve h i;
              if Opbuf.live w = 0 then Opbuf.clear w
              else begin
                if Bucket.try_request sh.b ~me:h.me then begin
                  Atomic.incr t.c_requests;
                  let s = Obs.shard_request ~bucket:i in
                  if !t0 = 0 then t0 := s;
                  req_deadline :=
                    Sync.Mono.now ()
                    +. (t.grant_timeout *. float_of_int (1 lsl min !attempt 8))
                end;
                wait ()
              end
          | Bucket.Requested { to_; _ } when to_ = h.me ->
              if now > !req_deadline then begin
                (* the grant did not come in time: back off exponentially
                   (the lease deadline still bounds the total wait) *)
                Atomic.incr t.c_retries;
                incr attempt;
                req_deadline :=
                  now +. (t.grant_timeout *. float_of_int (1 lsl min !attempt 8))
              end;
              wait ()
          | Bucket.Shipped { to_; _ } when to_ = h.me -> (
              Faults.point "shard.ack";
              match Bucket.try_ack sh.b ~me:h.me ~lease:t.lease with
              | Some pkg ->
                  Atomic.incr t.c_acks;
                  Obs.shard_ack ~bucket:i ~t0:!t0;
                  apply_pkg t sh.kv pkg;
                  loop ()
              | None -> wait ())
          | Bucket.Granted { to_; _ } when to_ = h.me -> wait ()
          | Bucket.Requested _ | Bucket.Granted _ | Bucket.Shipped _ ->
              (* a transfer between other handles: degraded reads only *)
              degraded_serve h i;
              if Opbuf.live w = 0 then Opbuf.clear w else wait ()
        end
      and apply () =
        (* Applied in place: if this domain dies mid-apply, the window is
           still attached and [abandon] poisons the remainder. *)
        let n = apply_window sh.kv w in
        Opbuf.clear w;
        Obs.splice ~kind:Obs.Event.k_shard ~n
      and wait () =
        service h;
        Sync.Backoff.once bo;
        loop ()
      in
      loop ()
    end

  let flush h =
    service h;
    for i = 0 to Array.length h.wins - 1 do
      flush_bucket h i
    done

  (* After a flush, a future of ours can still be pending only because
     its window was sealed-and-shipped to another handle. Wait for the
     receiver to apply it, pumping deadline recovery (and servicing our
     own incoming requests) so a dead receiver poisons rather than
     hangs us. *)
  let settle h i f_pending =
    if f_pending () then begin
      let t = h.t in
      let sh = t.shards.(i) in
      let bo = Sync.Backoff.create () in
      while f_pending () do
        let now = Sync.Mono.now () in
        (match Bucket.state sh.b with
        | st when Bucket.expired ~now st -> (
            match Bucket.try_recover sh.b ~me:h.me ~lease:t.lease with
            | Some r -> ignore (recovered t ~bucket:i r)
            | None -> ())
        | _ -> ());
        service h;
        Sync.Backoff.once bo
      done
    end

  let add h k op f =
    let i = bucket_of_key h.t k in
    Opbuf.push h.wins.(i) op;
    Future.set_evaluator f (fun () ->
        flush h;
        settle h i (fun () -> Future.is_pending f))

  let insert h k v =
    let f = Future.create () in
    add h k (Insert (k, v, f)) f;
    f

  let find h k =
    let f = Future.create () in
    add h k (Find (k, f)) f;
    f

  let remove h k =
    let f = Future.create () in
    add h k (Remove (k, f)) f;
    f

  let pending_count h =
    Array.fold_left
      (fun n w ->
        let k = ref 0 in
        Opbuf.iter (fun op -> if op_pending op then incr k) w;
        n + !k)
      0 h.wins

  let abandon h =
    let t = h.t in
    let n = ref 0 in
    Array.iter (fun w -> n := !n + poison_buf w) h.wins;
    if !n > 0 then ignore (Atomic.fetch_and_add t.c_poisoned !n);
    !n

  let recover_all h =
    let t = h.t in
    let n = ref 0 in
    Array.iteri
      (fun i sh ->
        let now = Sync.Mono.now () in
        if Bucket.expired ~now (Bucket.state sh.b) then
          match Bucket.try_recover sh.b ~me:h.me ~lease:t.lease with
          | Some r -> n := !n + recovered t ~bucket:i r
          | None -> ())
      t.shards;
    !n
end
