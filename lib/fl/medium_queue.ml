module Future = Futures.Future

type 'a op = Enq of 'a * unit Future.t | Deq of 'a option Future.t

type 'a t = { queue : 'a Lockfree.Ms_queue.t }

type 'a handle = {
  owner : 'a t;
  ops : 'a op Opbuf.t; (* oldest first *)
}

let create () = { queue = Lockfree.Ms_queue.create () }
let shared t = t.queue

let handle owner = { owner; ops = Opbuf.create () }

let pending_count h = Opbuf.length h.ops

let same_kind a b =
  match (a, b) with
  | Enq _, Enq _ | Deq _, Deq _ -> true
  | Enq _, Deq _ | Deq _, Enq _ -> false

let enq_value = function Enq (x, _) -> x | Deq _ -> assert false
let enq_future = function Enq (_, f) -> f | Deq _ -> assert false
let deq_future = function Deq f -> f | Enq _ -> assert false

let op_pending = function
  | Enq (_, f) -> Future.is_pending f
  | Deq f -> Future.is_pending f

(* Tombstone cancelled ops and compact, so the prefix runs below only
   ever see live operations. Cancellation is owner-only, so no new
   tombstones can appear while a flush is in progress. *)
let withdraw_cancelled h =
  let len = Opbuf.length h.ops in
  let any = ref false in
  for i = 0 to len - 1 do
    if not (op_pending (Opbuf.get h.ops i)) then begin
      Opbuf.delete h.ops i;
      any := true
    end
  done;
  if !any then ignore (Opbuf.compact h.ops : int)

(* Apply maximal prefix runs of same-type operations until [stop]
   (checked between runs) or exhaustion. Each run is spliced straight out
   of the ring — one combined enqueue or dequeue per run — and dropped
   from the front only once fully applied, so operations appended by
   reentrant invocations simply extend the tail of the window. *)
let flush_until h stop =
  withdraw_cancelled h;
  let rec go () =
    let len = Opbuf.length h.ops in
    if len > 0 && not (stop ()) then begin
      let first = Opbuf.get h.ops 0 in
      let n = ref 1 in
      while !n < len && same_kind (Opbuf.get h.ops !n) first do incr n done;
      let n = !n in
      (match first with
      | Enq _ ->
          Lockfree.Ms_queue.enqueue_seg h.owner.queue ~n ~get:(fun i ->
              enq_value (Opbuf.get h.ops i));
          Obs.splice ~kind:Obs.Event.k_medium_queue_enq ~n;
          for i = 0 to n - 1 do
            Future.fulfil (enq_future (Opbuf.get h.ops i)) ()
          done
      | Deq _ ->
          let k =
            Lockfree.Ms_queue.dequeue_seg h.owner.queue ~n ~f:(fun i v ->
                Future.fulfil (deq_future (Opbuf.get h.ops i)) (Some v))
          in
          Obs.splice ~kind:Obs.Event.k_medium_queue_deq ~n:k;
          for i = k to n - 1 do
            Future.fulfil (deq_future (Opbuf.get h.ops i)) None
          done);
      Opbuf.drop_front h.ops n;
      go ()
    end
  in
  go ()

let flush h = flush_until h (fun () -> false)

let abandon h =
  let n = ref 0 in
  let poison : type x. x Future.t -> unit =
   fun f -> if Future.poison f Future.Orphaned then incr n
  in
  let op_poison = function Enq (_, f) -> poison f | Deq f -> poison f in
  Opbuf.iter op_poison h.ops;
  Opbuf.clear h.ops;
  !n

let enqueue h x =
  let f = Future.create () in
  Future.set_evaluator f (fun () ->
      flush_until h (fun () -> Future.is_ready f));
  Opbuf.push h.ops (Enq (x, f));
  f

let dequeue h =
  let f = Future.create () in
  Future.set_evaluator f (fun () ->
      flush_until h (fun () -> Future.is_ready f));
  Opbuf.push h.ops (Deq f);
  f
