module Future = Futures.Future

type 'a op = Enq of 'a * unit Future.t | Deq of 'a option Future.t

type 'a t = { queue : 'a Lockfree.Ms_queue.t }

type 'a handle = {
  owner : 'a t;
  mutable ops : 'a op list; (* newest first *)
  mutable n_ops : int;
}

let create () = { queue = Lockfree.Ms_queue.create () }
let shared t = t.queue

let handle owner = { owner; ops = []; n_ops = 0 }

let pending_count h = h.n_ops

let same_kind a b =
  match (a, b) with
  | Enq _, Enq _ | Deq _, Deq _ -> true
  | Enq _, Deq _ | Deq _, Enq _ -> false

(* Split the maximal prefix run of same-type operations. *)
let split_run = function
  | [] -> ([], [])
  | first :: _ as ops ->
      let rec loop acc = function
        | op :: rest when same_kind op first -> loop (op :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      loop [] ops

let apply_run owner run =
  match run with
  | [] -> ()
  | Enq _ :: _ ->
      let pairs =
        List.map (function Enq (x, f) -> (x, f) | Deq _ -> assert false) run
      in
      Lockfree.Ms_queue.enqueue_list owner.queue (List.map fst pairs);
      List.iter (fun (_, f) -> Future.fulfil f ()) pairs
  | Deq _ :: _ ->
      let futures =
        List.map (function Deq f -> f | Enq _ -> assert false) run
      in
      let values =
        Lockfree.Ms_queue.dequeue_many owner.queue (List.length futures)
      in
      let rec assign fs vs =
        match (fs, vs) with
        | [], _ -> ()
        | f :: fs', v :: vs' ->
            Future.fulfil f (Some v);
            assign fs' vs'
        | f :: fs', [] ->
            Future.fulfil f None;
            assign fs' []
      in
      assign futures values

(* Apply prefix runs until [stop] (checked between runs) or exhaustion. *)
let flush_until h stop =
  let rec go ops =
    if stop () then ops
    else
      match split_run ops with
      | [], _ -> []
      | run, rest ->
          apply_run h.owner run;
          go rest
  in
  let remaining = go (List.rev h.ops) in
  h.ops <- List.rev remaining;
  h.n_ops <- List.length remaining

let flush h = flush_until h (fun () -> false)

let enqueue h x =
  let f = Future.create () in
  Future.set_evaluator f (fun () ->
      flush_until h (fun () -> Future.is_ready f));
  h.ops <- Enq (x, f) :: h.ops;
  h.n_ops <- h.n_ops + 1;
  f

let dequeue h =
  let f = Future.create () in
  Future.set_evaluator f (fun () ->
      flush_until h (fun () -> Future.is_ready f));
  h.ops <- Deq f :: h.ops;
  h.n_ops <- h.n_ops + 1;
  f
