(** Slack policy: how many operations may be left pending before a thread
    evaluates their futures (Kogan & Herlihy §5).

    The paper's benchmark issues operations returning futures and, after
    every [X] (= slack) of them, forces all outstanding futures before
    continuing. This helper encapsulates that policy for benchmarks and
    applications: register each returned future (as a force thunk) with
    [note]; every [slack]-th registration forces the whole batch, oldest
    first. A [t] is owned by a single thread. *)

type t

type order = Newest_first | Oldest_first

val create : ?order:order -> int -> t
(** [create slack]. Raises [Invalid_argument] if [slack < 1].

    [order] (default [Newest_first]) is the order in which a full window
    is forced. Newest-first means the very first force reaches the most
    recent future, so implementations that evaluate "until F is ready"
    (the medium-FL queue and list) resolve the whole window in one
    combined flush. Oldest-first degrades every evaluation to a single
    operation — it exists as ablation D in DESIGN.md, quantifying how
    much the evaluation schedule the paper leaves implicit matters. *)

val slack : t -> int

val set_slack : t -> int -> unit
(** Retune the window bound (clamped to [>= 1]); safe to call from any
    domain — the owner picks the new bound up at its next {!note}. A
    bound below the current fill simply drains at that next [note]. *)

val note : t -> (unit -> unit) -> unit
(** [note t force] registers an outstanding future's force thunk. When the
    number of outstanding futures reaches the slack bound, all of them are
    forced — newest first, so that the very first force flushes the whole
    window and the medium-FL structures' evaluate-until-ready combining
    engages — and the window restarts. With slack 1 this degenerates to
    forcing every future immediately, the paper's direct overhead
    comparison against lock-free structures. *)

val pending : t -> int
(** Number of currently outstanding futures. *)

val drain : t -> unit
(** Force all outstanding futures now (newest first, see {!note}). *)

val abandon : t -> int
(** Recovery hook: drop every registered force thunk without running it
    and return how many were dropped. For use (by any thread) only once
    the owner is known dead — the thunks would re-enter the dead owner's
    handle, whose futures are poisoned by the handle's own [abandon]. *)
