(** Medium-FL stack (Kogan & Herlihy §4.1).

    Medium futures linearizability adds to the weak condition that a
    thread's operations on the same object take effect in invocation
    order. Elimination must therefore respect ordering: a [push] can never
    be paired with an {e earlier} pending [pop] (that pop must see the
    state before the push), but a [pop] {e can} be paired with the most
    recent prior unmatched [push] — the adjacent push/pop pair is a no-op
    on the stack.

    The pairing is decided (and the paired futures fulfilled) at {e flush}
    time, not eagerly at invocation: fulfilling the pop immediately would
    close its effect window while the thread's older pops are still
    pending, and an operation by another thread issued strictly after that
    window could then be forced between them — an ordering cycle the
    medium condition forbids (see the implementation comment). At flush,
    the pops that survive pairing are combined into one multi-node CAS,
    and the surviving pushes — all younger than every surviving pop —
    into another. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val handle : 'a t -> 'a handle

val push : 'a handle -> 'a -> unit Futures.Future.t
val pop : 'a handle -> 'a option Futures.Future.t

val flush : 'a handle -> unit
val abandon : 'a handle -> int
(** Recovery hook: poison every un-applied future in this handle's
    pending windows with [Future.Orphaned] and drop the windows. For use
    (by any thread) only once the owner is known dead — waiters then
    raise [Broken Orphaned] instead of spinning forever. Returns the
    number of futures poisoned. *)

val pending_count : 'a handle -> int
val shared : 'a t -> 'a Lockfree.Treiber_stack.t
