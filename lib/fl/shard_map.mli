(** Sharded bind-once FL map with bucket ownership transfer.

    The fault-tolerant, sharded counterpart of {!Weak_map}: keys hash to
    [buckets] buckets, each a {!Lockfree.Harris_kv} segment guarded by an
    epoch-numbered lease ({!Bucket}). A handle's operations accumulate in
    per-bucket {!Opbuf} pending windows and return futures; a flush
    applies each window in one sorted position-resumed traversal of the
    bucket's segment — but only while holding that bucket's lease.

    {b Cross-shard operations} route through the transfer protocol:
    request, bounded-wait grant ({!Sync.Mono} deadlines, exponential
    backoff on retry), seal-and-ship of the owner's un-applied pending
    window, ack. While a bucket is in flight it is in {e degraded
    read-only mode}: pending [find]s (on keys with no earlier pending
    mutation in the same window) are answered directly against the
    segment — a legal weak-FL linearization — and mutations wait.

    {b Crash recovery.} A dead owner stops renewing, its leases expire,
    and any handle recovers its buckets ({!Bucket.try_recover}) —
    including buckets mid-transfer: a window lost in flight is returned
    to the recoverer and every un-applied future in it is poisoned
    {!Futures.Future.Orphaned}, never silently dropped. A dead handle's
    un-shipped windows are poisoned by {!abandon} (the PR-3 runner
    abandon/orphan machinery). Fault points [shard.grant], [shard.ship]
    and [shard.ack] fire before the corresponding protocol CAS, so chaos
    can kill either endpoint at every step and the survivor recovers by
    deadline.

    Refinement: transfers move only {e ownership}; the segments and the
    pending windows are untouched, so every transfer is a no-op against
    the centralized map spec — checked by [Conformance.check_shard_map]. *)

module type KEY = sig
  type t

  val compare : t -> t -> int

  val hash : t -> int
  (** Only [hash k land max_int] is used; equal keys must hash equal. *)
end

module Make (K : KEY) : sig
  type 'v t
  type 'v handle

  val create :
    ?buckets:int -> ?lease:float -> ?grant_timeout:float -> unit -> 'v t
  (** [buckets] (default 8) segments; [lease] (default 0.05 s) is both
      the ownership lease and the transfer deadline — the bound on every
      wait in the protocol; [grant_timeout] (default 0.002 s) is the
      initial patience for a grant, doubled on each retry. Raises
      [Invalid_argument] on non-positive arguments. *)

  val handle : 'v t -> 'v handle
  (** A per-thread handle with its own pending windows and a unique
      lease-owner identity. Handles must not be shared between
      domains. *)

  val insert : 'v handle -> K.t -> 'v -> bool Futures.Future.t
  (** Bind-once: the future resolves [true] iff this op created the
      binding. *)

  val find : 'v handle -> K.t -> 'v option Futures.Future.t
  val remove : 'v handle -> K.t -> 'v option Futures.Future.t

  val flush : 'v handle -> unit
  (** Service incoming transfer requests (grant + seal-and-ship), then
      apply every pending window, acquiring or transferring bucket
      ownership as needed. Futures shipped to another handle are settled
      by waiting for the receiver (or recovering it by deadline), so
      after [flush] returns, forcing any previously pending future of
      this handle cannot hang. *)

  val abandon : 'v handle -> int
  (** Poison every un-applied future in the handle's windows
      ([Future.Orphaned]) and empty them; returns the number poisoned.
      The owner-death recovery hook ({!Workload} runner abandon
      machinery). Leases the handle held are left to expire and be
      recovered by survivors. *)

  val recover_all : 'v handle -> int
  (** One recovery sweep: usurp every bucket whose deadline expired,
      poisoning windows lost in flight; returns futures poisoned. Call
      in a loop (leases must first expire) to drain a torn-down map —
      {!in_flight} reaching 0 is the fixpoint. *)

  val pending_count : 'v handle -> int
  (** Live (un-applied, un-cancelled) ops across the handle's windows. *)

  val buckets : 'v t -> int

  val in_flight : 'v t -> int
  (** Buckets currently in a transfer state (requested/granted/shipped). *)

  val get : 'v t -> K.t -> 'v option
  (** Direct wait-free lookup, bypassing windows (drain/oracle use). *)

  val size : 'v t -> int

  val bindings : 'v t -> (K.t * 'v) list
  (** Ascending by key; quiescent snapshot. *)

  type stats = {
    requests : int;  (** transfer requests issued *)
    grants : int;  (** requests granted by owners *)
    ships : int;  (** sealed windows shipped *)
    acks : int;  (** transfers completed by the requester *)
    recovers : int;  (** expired buckets usurped *)
    retries : int;  (** grant waits that timed out and backed off *)
    degraded_finds : int;  (** finds served read-only while in flight *)
    poisoned : int;
        (** futures poisoned out of lost or interrupted windows *)
  }

  val stats : 'v t -> stats
end
