(** Medium-FL queue (Kogan & Herlihy §4.2).

    The thread's pending operations live in a single local list in
    invocation order. Forcing a future [F] repeatedly removes the maximal
    prefix run of same-type operations, applies the run to the shared
    Michael–Scott queue as one combined operation (two CASes for an
    enqueue run, one for a dequeue run), and stops as soon as [F] is
    fulfilled — later pending operations stay pending, preserving the
    per-thread, per-object effect order the medium condition demands. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val handle : 'a t -> 'a handle

val enqueue : 'a handle -> 'a -> unit Futures.Future.t
val dequeue : 'a handle -> 'a option Futures.Future.t

val flush : 'a handle -> unit
(** Apply {e all} pending operations (not just up to one future). *)

val abandon : 'a handle -> int
(** Recovery hook: poison every un-applied future in this handle's
    pending windows with [Future.Orphaned] and drop the windows. For use
    (by any thread) only once the owner is known dead — waiters then
    raise [Broken Orphaned] instead of spinning forever. Returns the
    number of futures poisoned. *)

val pending_count : 'a handle -> int
val shared : 'a t -> 'a Lockfree.Ms_queue.t
