(* Michael–Scott queue where removal is exclusive to the lock holder.
   [head] points to a dummy node; the logical content is the chain after
   it, up to the [tail] snapshot taken by [drain]. Because a completed
   [enqueue] always leaves [tail] at or past its node (it swings the tail
   itself or a helper already has), the snapshot covers every completed
   enqueue. *)

type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  head : 'a node Atomic.t; (* written only by the drainer *)
  tail : 'a node Atomic.t;
  casc : Sync.Cas_counter.t;
}

let make_node v = { value = v; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  {
    head = Sync.Padded.atomic dummy;
    tail = Sync.Padded.atomic dummy;
    casc = Sync.Cas_counter.create ();
  }

let counted_cas t cell expected desired =
  Sync.Cas_counter.incr t.casc;
  Atomic.compare_and_set cell expected desired

let enqueue t x =
  let n = make_node (Some x) in
  let b = Sync.Backoff.create () in
  let rec loop () =
    let tl = Atomic.get t.tail in
    match Atomic.get tl.next with
    | None ->
        if counted_cas t tl.next None (Some n) then
          ignore (counted_cas t t.tail tl n)
        else begin
          Sync.Backoff.once b;
          loop ()
        end
    | Some nxt ->
        ignore (counted_cas t t.tail tl nxt);
        loop ()
  in
  loop ()

let drain t =
  let hd = Atomic.get t.head in
  let last = Atomic.get t.tail in
  if hd == last then []
  else begin
    let rec collect node acc =
      let next =
        match Atomic.get node.next with
        | Some n -> n
        | None ->
            (* Unreachable: [last] is linked after [hd]. *)
            assert false
      in
      let acc =
        match next.value with Some v -> v :: acc | None -> assert false
      in
      next.value <- None;
      if next == last then acc else collect next acc
    in
    let rev_ops = collect hd [] in
    (* Only the drainer writes [head]; enqueuers never read it. *)
    Atomic.set t.head last;
    List.rev rev_ops
  end

let is_empty t =
  let hd = Atomic.get t.head in
  Atomic.get hd.next = None

let cas_count t = Sync.Cas_counter.total t.casc
let reset_cas_count t = Sync.Cas_counter.reset t.casc
