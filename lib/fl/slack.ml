type order = Newest_first | Oldest_first

type t = {
  slack : int;
  order : order;
  mutable thunks : (unit -> unit) list; (* newest first *)
  mutable count : int;
}

let create ?(order = Newest_first) slack =
  if slack < 1 then invalid_arg "Slack.create: slack must be >= 1";
  { slack; order; thunks = []; count = 0 }

let slack t = t.slack
let pending t = t.count

(* Forcing newest first, the first force reaches the deepest pending
   operation, so implementations that evaluate "until F is ready" (the
   medium-FL queue and list) resolve the whole window in one combined
   flush — the remaining forces find their futures already fulfilled.
   Forcing oldest-first degrades every evaluation to a single operation
   and disables the intra-evaluation optimizations of §4 (ablation D). *)
let drain t =
  let thunks =
    match t.order with
    | Newest_first -> t.thunks
    | Oldest_first -> List.rev t.thunks
  in
  t.thunks <- [];
  t.count <- 0;
  List.iter (fun force -> force ()) thunks

let note t force =
  t.thunks <- force :: t.thunks;
  t.count <- t.count + 1;
  if t.count >= t.slack then drain t
