type order = Newest_first | Oldest_first

type t = {
  mutable slack : int;
  order : order;
  window : (unit -> unit) Opbuf.t; (* oldest first *)
  (* Spare ring the window is detached into before any thunk runs: a
     force thunk may reentrantly [note] (an evaluator issuing follow-up
     operations), and those registrations must land in the fresh window,
     not in the half-iterated one. *)
  free : (unit -> unit) Opbuf.t;
  mutable draining : bool;
}

let create ?(order = Newest_first) slack =
  if slack < 1 then invalid_arg "Slack.create: slack must be >= 1";
  {
    slack;
    order;
    window = Opbuf.create ();
    free = Opbuf.create ();
    draining = false;
  }

let slack t = t.slack

(* Retuning entry point (Tune controller). A [t] is owned by one thread,
   but the controller writes from its own domain: a single immediate-int
   store is atomic in OCaml, and the owner merely drains earlier or
   later by one window — both orders are FL-correct, so no fence is
   needed. Shrinking below the current fill takes effect at the owner's
   next [note]. *)
let set_slack t n = t.slack <- (if n < 1 then 1 else n)

let pending t = Opbuf.length t.window

(* Forcing newest first, the first force reaches the deepest pending
   operation, so implementations that evaluate "until F is ready" (the
   medium-FL queue and list) resolve the whole window in one combined
   flush — the remaining forces find their futures already fulfilled.
   Forcing oldest-first degrades every evaluation to a single operation
   and disables the intra-evaluation optimizations of §4 (ablation D). *)
let drain t =
  if not t.draining then begin
    t.draining <- true;
    (* Loop: thunks registered reentrantly while draining fill the live
       window and are drained too before we return. *)
    Fun.protect
      ~finally:(fun () -> t.draining <- false)
      (fun () ->
        while not (Opbuf.is_empty t.window) do
          Opbuf.swap t.window t.free;
          Obs.splice ~kind:Obs.Event.k_slack_drain ~n:(Opbuf.length t.free);
          let run force = force () in
          (match t.order with
          | Newest_first -> Opbuf.rev_iter run t.free
          | Oldest_first -> Opbuf.iter run t.free);
          Opbuf.clear t.free
        done)
  end

let abandon t =
  (* Recovery path: the owner is dead, so the registered force thunks
     must never run (each would re-enter the dead owner's handle). The
     futures they would have forced are poisoned by the handle's own
     [abandon]; here we just drop the thunks. *)
  let n = Opbuf.length t.window + Opbuf.length t.free in
  Opbuf.clear t.window;
  Opbuf.clear t.free;
  n

let note t force =
  Opbuf.push t.window force;
  if Opbuf.length t.window >= t.slack then drain t
