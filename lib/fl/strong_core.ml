type 'a t = {
  queue : 'a Pending_queue.t;
  lock : Sync.Spinlock.t;
  apply_batch : 'a list -> unit;
}

let create ~apply_batch =
  {
    queue = Pending_queue.create ();
    lock = Sync.Spinlock.create ();
    apply_batch;
  }

let submit t op = Pending_queue.enqueue t.queue op

let drain_locked t =
  match Pending_queue.drain t.queue with
  | [] -> ()
  | ops -> t.apply_batch ops

let eval t ~is_ready =
  let rec loop () =
    if not (is_ready ()) then
      if Sync.Spinlock.acquire_until t.lock is_ready then begin
        (* We hold the lock. Our operation was submitted before eval
           started, so the drain covers it — unless a previous lock holder
           already fulfilled our future, in which case nothing is owed. *)
        Fun.protect
          ~finally:(fun () -> Sync.Spinlock.release t.lock)
          (fun () -> if not (is_ready ()) then drain_locked t);
        loop ()
      end
    (* else: is_ready became true while we waited for the lock. *)
  in
  loop ();
  assert (is_ready ())

let drain_now t =
  Sync.Spinlock.acquire t.lock;
  Fun.protect
    ~finally:(fun () -> Sync.Spinlock.release t.lock)
    (fun () -> drain_locked t)

let pending_cas_count t = Pending_queue.cas_count t.queue
