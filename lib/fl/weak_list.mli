(** Weak-FL linked-list set (Kogan & Herlihy §4.3).

    Each thread's pending operations are kept {e sorted by key}; forcing
    any future traverses the shared Harris list once, in ascending key
    order, applying every pending operation. Multiple pending operations
    on the same key are {e combined}: their results are computed by
    running the key's operation sequence against the presence observed at
    the (single) linearization instant, and at most one physical
    modification per key reaches the shared list — a legal weak-FL
    behaviour because every one of those operations is still pending.

    The single traversal is realized with the Harris list's position API:
    because keys are visited in ascending order, each search resumes from
    the previous operation's position. *)

module Make (K : Lockfree.Harris_list.KEY) : sig
  type t
  type handle

  val create : unit -> t
  val handle : t -> handle

  val insert : handle -> K.t -> bool Futures.Future.t
  (** Future yields [true] iff the insert changed the set. *)

  val remove : handle -> K.t -> bool Futures.Future.t
  (** Future yields [true] iff the key was present. *)

  val contains : handle -> K.t -> bool Futures.Future.t

  val flush : handle -> unit
  val abandon : handle -> int
  (** Recovery hook: poison every un-applied future in this handle's
      pending windows with [Future.Orphaned] and drop the windows. For use
      (by any thread) only once the owner is known dead — waiters then
      raise [Broken Orphaned] instead of spinning forever. Returns the
      number of futures poisoned. *)

  val pending_count : handle -> int
  val shared : t -> Lockfree.Harris_list.Make(K).t
end
