module Future = Futures.Future

module Make (K : Lockfree.Harris_list.KEY) = struct
  module L = Lockfree.Harris_list.Make (K)

  type kind = Insert | Remove | Contains

  type op = { key : K.t; kind : kind; future : bool Future.t }

  type t = { list : L.t; resume_hint : bool }

  type handle = {
    owner : t;
    mutable ops : op list; (* newest first *)
    mutable n_ops : int;
  }

  let create ?(resume_hint = true) () =
    { list = L.create (); resume_hint }

  let shared t = t.list

  let handle owner = { owner; ops = []; n_ops = 0 }

  let pending_count h = h.n_ops

  let apply_one list pos op =
    let result, pos' =
      match op.kind with
      | Insert -> L.insert_from list pos op.key
      | Remove -> L.remove_from list pos op.key
      | Contains -> L.contains_from list pos op.key
    in
    Future.fulfil op.future result;
    pos'

  (* Apply pending operations oldest-first until [stop] holds, resuming
     each search from the previous position when keys are non-decreasing. *)
  let flush_until h stop =
    let list = h.owner.list in
    let rec go pos last_key ops =
      if stop () then ops
      else
        match ops with
        | [] -> []
        | op :: rest when not (Future.is_pending op.future) ->
            (* Cancelled: the op is withdrawn without touching the list. *)
            go pos last_key rest
        | op :: rest ->
            let start =
              match last_key with
              | Some k' when h.owner.resume_hint && K.compare op.key k' >= 0
                ->
                  pos
              | _ -> L.head_position list
            in
            let pos' = apply_one list start op in
            go pos' (Some op.key) rest
    in
    let remaining = go (L.head_position list) None (List.rev h.ops) in
    h.ops <- List.rev remaining;
    h.n_ops <- List.length remaining

  let flush h = flush_until h (fun () -> false)

  let abandon h =
    let n = ref 0 in
    List.iter
      (fun op -> if Future.poison op.future Future.Orphaned then incr n)
      h.ops;
    h.ops <- [];
    h.n_ops <- 0;
    !n

  let add h key kind =
    let future = Future.create () in
    Future.set_evaluator future (fun () ->
        flush_until h (fun () -> Future.is_ready future));
    h.ops <- { key; kind; future } :: h.ops;
    h.n_ops <- h.n_ops + 1;
    future

  let insert h key = add h key Insert
  let remove h key = add h key Remove
  let contains h key = add h key Contains
end
