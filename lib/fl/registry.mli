(** Uniform, first-class view of every implementation in the evaluation
    (§5): the lock-free baselines and the weak/medium/strong-FL versions
    of each data type, over [int] elements/keys.

    The benchmark harness and the integration tests iterate over these
    records so that every experiment runs the exact same workload against
    every implementation. Baselines return already-fulfilled futures
    ("non-future return values can be treated as futures that are
    evaluated immediately", §4).

    Per-thread protocol: call [*_handle] once in each domain, use the
    returned operations record there, and call its [flush] before the
    domain finishes so no futures are left pending. [*_drain] settles
    whole-structure state (strong-FL pending queues) at quiescence.

    [*_abandon] is the recovery hook ({!Fl_intf}): when the handle's
    owner dies, it poisons every un-applied future with
    [Future.Orphaned] and returns the count. Handle-free implementations
    (baselines and strong-FL, whose pending state is shared and settled
    by [drain]) report 0. *)

type stack_ops = {
  s_push : int -> unit Futures.Future.t;
  s_pop : unit -> int option Futures.Future.t;
  s_flush : unit -> unit;
  s_abandon : unit -> int;
}

type stack_instance = {
  s_handle : unit -> stack_ops;
  s_drain : unit -> unit;
  s_cas_count : unit -> int;
  s_contents : unit -> int list;  (** top-first; quiescent + drained *)
  s_dials : unit -> Tunable.dial list;
      (** Structure-level tuning dials (empty when nothing is tunable);
          per-handle slack dials are the caller's, not the registry's. *)
}

type stack_impl = { s_name : string; s_make : unit -> stack_instance }

val stack_impls : stack_impl list
(** [lockfree; elim; flatcomb; weak; weak-x; medium; strong] — [elim] is
    the elimination-backoff stack (the paper's reference [8]), [flatcomb]
    the flat-combining baseline (its §7 comparison point), and [weak-x]
    the weak-FL stack with cross-handle elimination through a shared
    sharded {!Lockfree.Exchanger}. *)

type queue_ops = {
  q_enq : int -> unit Futures.Future.t;
  q_deq : unit -> int option Futures.Future.t;
  q_flush : unit -> unit;
  q_abandon : unit -> int;
}

type queue_instance = {
  q_handle : unit -> queue_ops;
  q_drain : unit -> unit;
  q_cas_count : unit -> int;
  q_contents : unit -> int list;  (** oldest-first *)
  q_dials : unit -> Tunable.dial list;
}

type queue_impl = { q_name : string; q_make : unit -> queue_instance }

val queue_impls : queue_impl list

type set_ops = {
  l_insert : int -> bool Futures.Future.t;
  l_remove : int -> bool Futures.Future.t;
  l_contains : int -> bool Futures.Future.t;
  l_flush : unit -> unit;
  l_abandon : unit -> int;
}

type set_instance = {
  l_handle : unit -> set_ops;
  l_drain : unit -> unit;
  l_cas_count : unit -> int;
  l_contents : unit -> int list;  (** ascending *)
  l_dials : unit -> Tunable.dial list;
}

type set_impl = { l_name : string; l_make : unit -> set_instance }

val set_impls : set_impl list
(** [lockfree; flatcomb; weak; medium; strong; txn] — [txn] is the
    transactional medium-FL list of {!Txn_list}, the paper's §8
    future-work design. *)

val find_stack : string -> stack_impl
val find_queue : string -> queue_impl

val find_set : string -> set_impl
(** Lookup by name. Raises [Not_found]. *)

(** Ablation variants (DESIGN.md ablations A–C): the same wrappers with an
    optimization disabled, for the ablation benchmarks. *)

val weak_stack_with : ?exchange:bool -> elimination:bool -> unit -> stack_instance
val medium_set_with : resume_hint:bool -> set_instance
val strong_set_with : sort_batch:bool -> set_instance
