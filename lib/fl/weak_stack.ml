module Future = Futures.Future

type 'a t = { stack : 'a Lockfree.Treiber_stack.t; elimination : bool }

type 'a handle = {
  owner : 'a t;
  (* Pending operations, newest first. With elimination enabled at most one
     of the two lists is non-empty (a new operation of the opposite type
     pairs off instead of accumulating). *)
  mutable pushes : ('a * unit Future.t) list;
  mutable n_pushes : int;
  mutable pops : 'a option Future.t list;
  mutable n_pops : int;
}

let create ?(elimination = true) () =
  { stack = Lockfree.Treiber_stack.create (); elimination }

let shared t = t.stack

let handle owner = { owner; pushes = []; n_pushes = 0; pops = []; n_pops = 0 }

let pending_count h = h.n_pushes + h.n_pops

let flush_pushes h =
  match h.pushes with
  | [] -> ()
  | newest_first ->
      let oldest_first = List.rev newest_first in
      (* Oldest push deepest: one CAS splices the whole chain. *)
      Lockfree.Treiber_stack.push_list h.owner.stack
        (List.map fst oldest_first);
      List.iter (fun (_, f) -> Future.fulfil f ()) oldest_first;
      h.pushes <- [];
      h.n_pushes <- 0

let flush_pops h =
  match h.pops with
  | [] -> ()
  | newest_first ->
      let oldest_first = List.rev newest_first in
      let values = Lockfree.Treiber_stack.pop_many h.owner.stack h.n_pops in
      (* Oldest pending pop receives the value that was on top; pops in
         excess of the stack's size observe "empty". *)
      let rec assign pops values =
        match (pops, values) with
        | [], _ -> ()
        | f :: pops', v :: values' ->
            Future.fulfil f (Some v);
            assign pops' values'
        | f :: pops', [] ->
            Future.fulfil f None;
            assign pops' []
      in
      assign oldest_first values;
      h.pops <- [];
      h.n_pops <- 0

let flush h =
  flush_pops h;
  flush_pushes h

let push h x =
  match h.pops with
  | f :: rest when h.owner.elimination ->
      (* Elimination: this push hands its value to a pending pop; neither
         operation ever reaches the shared stack. *)
      Future.fulfil f (Some x);
      h.pops <- rest;
      h.n_pops <- h.n_pops - 1;
      Future.of_value ()
  | _ ->
      let f = Future.create () in
      Future.set_evaluator f (fun () -> flush h);
      h.pushes <- (x, f) :: h.pushes;
      h.n_pushes <- h.n_pushes + 1;
      f

let pop h =
  match h.pushes with
  | (x, f) :: rest when h.owner.elimination ->
      Future.fulfil f ();
      h.pushes <- rest;
      h.n_pushes <- h.n_pushes - 1;
      Future.of_value (Some x)
  | _ ->
      let f = Future.create () in
      Future.set_evaluator f (fun () -> flush h);
      h.pops <- f :: h.pops;
      h.n_pops <- h.n_pops + 1;
      f
