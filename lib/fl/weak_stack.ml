module Future = Futures.Future

type 'a t = {
  stack : 'a Lockfree.Treiber_stack.t;
  elimination : bool;
  exchange : 'a Lockfree.Exchanger.t option;
      (* cross-handle elimination array, shared by all handles *)
}

type 'a handle = {
  owner : 'a t;
  (* Pending operations, oldest first. With elimination enabled at most one
     of the two windows is non-empty (a new operation of the opposite type
     pairs off instead of accumulating). Push values and futures live in
     parallel rings so a push allocates nothing beyond its future. *)
  push_vals : 'a Opbuf.t;
  push_futs : unit Future.t Opbuf.t;
  pops : 'a option Future.t Opbuf.t;
  (* Scratch rings the live windows are swapped into at flush time, so a
     reentrant push/pop fired from a fulfilled future lands in a fresh
     window instead of a half-processed one. *)
  scratch_vals : 'a Opbuf.t;
  scratch_futs : unit Future.t Opbuf.t;
  scratch_pops : 'a option Future.t Opbuf.t;
}

let create ?(elimination = true) ?(exchange = false) () =
  {
    stack = Lockfree.Treiber_stack.create ();
    elimination;
    exchange = (if exchange then Some (Lockfree.Exchanger.create ()) else None);
  }

let shared t = t.stack

let exchanged t =
  match t.exchange with None -> 0 | Some ex -> Lockfree.Exchanger.exchanged ex

let handle owner =
  {
    owner;
    push_vals = Opbuf.create ();
    push_futs = Opbuf.create ();
    pops = Opbuf.create ();
    scratch_vals = Opbuf.create ();
    scratch_futs = Opbuf.create ();
    scratch_pops = Opbuf.create ();
  }

let pending_count h = Opbuf.length h.push_vals + Opbuf.length h.pops

(* How long a leftover pop waits in the exchange array for a producer. *)
let exchange_patience = 64

let flush_pushes h =
  let n = Opbuf.length h.push_vals in
  if n > 0 then begin
    Opbuf.swap h.push_vals h.scratch_vals;
    Opbuf.swap h.push_futs h.scratch_futs;
    (* Cross-handle elimination: hand values to takers parked by other
       handles' starving pops. Producers only ever [try_give] — they never
       park — so the fast path costs one read-only scan when nobody
       waits. Survivors are compacted in place and spliced below. *)
    let n =
      match h.owner.exchange with
      | Some ex when Lockfree.Exchanger.takers_waiting ex ->
          let kept = ref 0 in
          for i = 0 to n - 1 do
            let v = Opbuf.get h.scratch_vals i in
            if Lockfree.Exchanger.try_give ex v then
              Future.fulfil (Opbuf.get h.scratch_futs i) ()
            else begin
              Opbuf.set h.scratch_vals !kept v;
              Opbuf.set h.scratch_futs !kept (Opbuf.get h.scratch_futs i);
              incr kept
            end
          done;
          !kept
      | _ -> n
    in
    (* Oldest push deepest: one CAS splices the whole window. *)
    Lockfree.Treiber_stack.push_seg h.owner.stack ~n ~get:(fun i ->
        Opbuf.get h.scratch_vals i);
    for i = 0 to n - 1 do
      Future.fulfil (Opbuf.get h.scratch_futs i) ()
    done;
    Opbuf.clear h.scratch_vals;
    Opbuf.clear h.scratch_futs
  end

let flush_pops h =
  let n = Opbuf.length h.pops in
  if n > 0 then begin
    Opbuf.swap h.pops h.scratch_pops;
    (* Oldest pending pop receives the value that was on top. *)
    let k =
      Lockfree.Treiber_stack.pop_seg h.owner.stack ~n ~f:(fun i v ->
          Future.fulfil (Opbuf.get h.scratch_pops i) (Some v))
    in
    (* Pops in excess of the stack's size try the exchange array — some
       other handle may be flushing pushes right now — and only then
       observe "empty". *)
    for i = k to n - 1 do
      let fed =
        match h.owner.exchange with
        | Some ex -> Lockfree.Exchanger.take ~patience:exchange_patience ex
        | None -> None
      in
      Future.fulfil (Opbuf.get h.scratch_pops i) fed
    done;
    Opbuf.clear h.scratch_pops
  end

let flush h =
  flush_pops h;
  flush_pushes h

let push h x =
  if h.owner.elimination && Opbuf.length h.pops > 0 then begin
    (* Elimination: this push hands its value to the newest pending pop;
       neither operation ever reaches the shared stack. *)
    Future.fulfil (Opbuf.pop_back h.pops) (Some x);
    Future.of_value ()
  end
  else begin
    let f = Future.create () in
    Future.set_evaluator f (fun () -> flush h);
    Opbuf.push h.push_vals x;
    Opbuf.push h.push_futs f;
    f
  end

let pop h =
  if h.owner.elimination && Opbuf.length h.push_vals > 0 then begin
    let x = Opbuf.pop_back h.push_vals in
    Future.fulfil (Opbuf.pop_back h.push_futs) ();
    Future.of_value (Some x)
  end
  else begin
    let f = Future.create () in
    Future.set_evaluator f (fun () -> flush h);
    Opbuf.push h.pops f;
    f
  end
