module Future = Futures.Future

type 'a t = {
  stack : 'a Lockfree.Treiber_stack.t;
  elimination : bool;
  exchange : 'a Lockfree.Exchanger.t option;
      (* cross-handle elimination array, shared by all handles *)
}

type 'a handle = {
  owner : 'a t;
  (* Pending operations, oldest first. With elimination enabled at most one
     of the two windows is non-empty (a new operation of the opposite type
     pairs off instead of accumulating). Push values and futures live in
     parallel rings so a push allocates nothing beyond its future. *)
  push_vals : 'a Opbuf.t;
  push_futs : unit Future.t Opbuf.t;
  pops : 'a option Future.t Opbuf.t;
  (* Scratch rings the live windows are swapped into at flush time, so a
     reentrant push/pop fired from a fulfilled future lands in a fresh
     window instead of a half-processed one. *)
  scratch_vals : 'a Opbuf.t;
  scratch_futs : unit Future.t Opbuf.t;
  scratch_pops : 'a option Future.t Opbuf.t;
}

let create ?(elimination = true) ?(exchange = false) () =
  {
    stack = Lockfree.Treiber_stack.create ();
    elimination;
    exchange = (if exchange then Some (Lockfree.Exchanger.create ()) else None);
  }

let shared t = t.stack

let exchanged t =
  match t.exchange with None -> 0 | Some ex -> Lockfree.Exchanger.exchanged ex

let exchanger t = t.exchange

let handle owner =
  {
    owner;
    push_vals = Opbuf.create ();
    push_futs = Opbuf.create ();
    pops = Opbuf.create ();
    scratch_vals = Opbuf.create ();
    scratch_futs = Opbuf.create ();
    scratch_pops = Opbuf.create ();
  }

let pending_count h = Opbuf.length h.push_vals + Opbuf.length h.pops

(* How long a leftover pop waits in the exchange array for a producer. *)
let exchange_patience = 64

(* Withdraw cancelled ops from a detached window before it is spliced:
   tombstone their slots — both rings at the same index, so the parallel
   rings stay aligned — then compact. Returns the live size. *)
let drop_cancelled_pairs vals futs n =
  let any = ref false in
  for i = 0 to n - 1 do
    if not (Future.is_pending (Opbuf.get futs i)) then begin
      Opbuf.delete futs i;
      Opbuf.delete vals i;
      any := true
    end
  done;
  if !any then begin
    ignore (Opbuf.compact vals : int);
    Opbuf.compact futs
  end
  else n

let drop_cancelled futs n =
  let any = ref false in
  for i = 0 to n - 1 do
    if not (Future.is_pending (Opbuf.get futs i)) then begin
      Opbuf.delete futs i;
      any := true
    end
  done;
  if !any then Opbuf.compact futs else n

let flush_pushes h =
  let n = Opbuf.length h.push_vals in
  if n > 0 then begin
    Opbuf.swap h.push_vals h.scratch_vals;
    Opbuf.swap h.push_futs h.scratch_futs;
    let n = drop_cancelled_pairs h.scratch_vals h.scratch_futs n in
    (* Cross-handle elimination: hand values to takers parked by other
       handles' starving pops. Producers only ever [try_give] — they never
       park — so the fast path costs one read-only scan when nobody
       waits. Survivors are compacted in place and spliced below. *)
    let n =
      match h.owner.exchange with
      | Some ex when Lockfree.Exchanger.takers_waiting ex ->
          let kept = ref 0 in
          for i = 0 to n - 1 do
            let v = Opbuf.get h.scratch_vals i in
            if Lockfree.Exchanger.try_give ex v then
              Future.fulfil (Opbuf.get h.scratch_futs i) ()
            else begin
              Opbuf.set h.scratch_vals !kept v;
              Opbuf.set h.scratch_futs !kept (Opbuf.get h.scratch_futs i);
              incr kept
            end
          done;
          !kept
      | _ -> n
    in
    (* Oldest push deepest: one CAS splices the whole window. *)
    Lockfree.Treiber_stack.push_seg h.owner.stack ~n ~get:(fun i ->
        Opbuf.get h.scratch_vals i);
    Obs.splice ~kind:Obs.Event.k_weak_stack_push ~n;
    for i = 0 to n - 1 do
      Future.fulfil (Opbuf.get h.scratch_futs i) ()
    done;
    Opbuf.clear h.scratch_vals;
    Opbuf.clear h.scratch_futs
  end

let flush_pops h =
  let n = Opbuf.length h.pops in
  if n > 0 then begin
    Opbuf.swap h.pops h.scratch_pops;
    let n = drop_cancelled h.scratch_pops n in
    (* Oldest pending pop receives the value that was on top. *)
    let k =
      Lockfree.Treiber_stack.pop_seg h.owner.stack ~n ~f:(fun i v ->
          Future.fulfil (Opbuf.get h.scratch_pops i) (Some v))
    in
    Obs.splice ~kind:Obs.Event.k_weak_stack_pop ~n:k;
    (* Pops in excess of the stack's size try the exchange array — some
       other handle may be flushing pushes right now — and only then
       observe "empty". *)
    for i = k to n - 1 do
      let fed =
        match h.owner.exchange with
        | Some ex -> Lockfree.Exchanger.take ~patience:exchange_patience ex
        | None -> None
      in
      Future.fulfil (Opbuf.get h.scratch_pops i) fed
    done;
    Opbuf.clear h.scratch_pops
  end

let flush h =
  flush_pops h;
  flush_pushes h

let abandon h =
  let n = ref 0 in
  let poison : type x. x Future.t -> unit =
   fun f -> if Future.poison f Future.Orphaned then incr n
  in
  Opbuf.iter poison h.push_futs;
  Opbuf.iter poison h.scratch_futs;
  Opbuf.iter poison h.pops;
  Opbuf.iter poison h.scratch_pops;
  Opbuf.clear h.push_vals;
  Opbuf.clear h.push_futs;
  Opbuf.clear h.pops;
  Opbuf.clear h.scratch_vals;
  Opbuf.clear h.scratch_futs;
  Opbuf.clear h.scratch_pops;
  !n

(* Elimination: a push hands its value to the newest pending pop (and
   vice versa); neither operation ever reaches the shared stack. A
   partner whose future was cancelled no longer wants the pairing: drop
   it and pair with the next. Top-level (not closures) so the window
   fast path below allocates nothing beyond the future. *)
let rec eliminate_push h x =
  if Opbuf.length h.pops > 0 then
    if Future.try_fulfil (Opbuf.pop_back h.pops) (Some x) then
      Some (Future.of_value ())
    else eliminate_push h x
  else None

let rec eliminate_pop h =
  if Opbuf.length h.push_vals > 0 then begin
    let x = Opbuf.pop_back h.push_vals in
    if Future.try_fulfil (Opbuf.pop_back h.push_futs) () then
      Some (Future.of_value (Some x))
    else
      (* Cancelled push: its value was withdrawn, not transferred. *)
      eliminate_pop h
  end
  else None

let window_push h x =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush h);
  Opbuf.push h.push_vals x;
  Opbuf.push h.push_futs f;
  f

let window_pop h =
  let f = Future.create () in
  Future.set_evaluator f (fun () -> flush h);
  Opbuf.push h.pops f;
  f

let push h x =
  if h.owner.elimination && Opbuf.length h.pops > 0 then
    match eliminate_push h x with Some f -> f | None -> window_push h x
  else window_push h x

let pop h =
  if h.owner.elimination && Opbuf.length h.push_vals > 0 then
    match eliminate_pop h with Some f -> f | None -> window_pop h
  else window_pop h
