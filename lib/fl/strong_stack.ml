module Future = Futures.Future

type 'a op = Push of 'a * unit Future.t | Pop of 'a option Future.t

type 'a t = { seq : 'a Seqds.Seq_stack.t; core : 'a op Strong_core.t }

(* Apply a drained batch in its queue (= linearization) order. Pushes are
   buffered in a virtual stack; a pop takes the newest buffered value when
   one exists (elimination with the nearest preceding unmatched push —
   net effect on the stack is nil) and otherwise pops the sequential
   instance. The surviving buffered pushes are applied at the end with one
   bulk operation. The observable results are exactly those of applying
   the batch one by one. *)
let apply_batch seq ops =
  let buffered = ref [] (* newest first *) in
  let apply = function
    | Push (x, f) ->
        buffered := x :: !buffered;
        Future.fulfil f ()
    | Pop f -> (
        match !buffered with
        | x :: rest ->
            buffered := rest;
            Future.fulfil f (Some x)
        | [] -> Future.fulfil f (Seqds.Seq_stack.pop seq))
  in
  List.iter apply ops;
  Seqds.Seq_stack.push_list seq (List.rev !buffered)

let create () =
  let seq = Seqds.Seq_stack.create () in
  { seq; core = Strong_core.create ~apply_batch:(apply_batch seq) }

let push t x =
  let f = Future.create () in
  Strong_core.submit t.core (Push (x, f));
  Future.set_evaluator f (fun () ->
      Strong_core.eval t.core ~is_ready:(fun () -> Future.is_ready f));
  f

let pop t =
  let f = Future.create () in
  Strong_core.submit t.core (Pop f);
  Future.set_evaluator f (fun () ->
      Strong_core.eval t.core ~is_ready:(fun () -> Future.is_ready f));
  f

let drain t = Strong_core.drain_now t.core
let length t = Seqds.Seq_stack.length t.seq
let to_list t = Seqds.Seq_stack.to_list t.seq
let pending_cas_count t = Strong_core.pending_cas_count t.core
