(** Dials: the controller-facing face of the runtime knobs.

    Each tunable structure exposes its knobs as {!dial}s — a [kind]
    identifying which control policy applies, a clamped integer range,
    and get/set closures — so the Tune controller can steer any
    structure without depending on its module. The set closures are the
    concurrent-safe setters ({!Slack.set_slack},
    {!Combining.Flat_combining.set_pass_budget} / [set_scan_limit],
    {!Lockfree.Exchanger.set_width_bounds}), each of which clamps again
    defensively. *)

type kind =
  | Slack_window
  | Fc_pass_budget
  | Fc_scan_limit
  | Elim_min_width
  | Elim_max_width

val kind_name : kind -> string

type dial = {
  kind : kind;
  name : string;
  lo : int;
  hi : int;
  get : unit -> int;
  set : int -> unit;
}

val of_slack : ?name:string -> Slack.t -> dial

val of_exchanger : ?name:string -> 'a Lockfree.Exchanger.t -> dial list
(** Two dials: min and max adaptive-width bounds, both in
    [1..capacity]. *)

val of_fc :
  ?name:string ->
  pass_budget:(unit -> int) ->
  set_pass_budget:(int -> unit) ->
  scan_limit:(unit -> int) ->
  set_scan_limit:(int -> unit) ->
  unit ->
  dial list
(** Two dials over a flat-combining engine, passed as closures because
    [Combining] sits below [Fl] in the dependency order. The scan-limit
    dial surfaces the structure's 0 ("no limit, no cursor bookkeeping")
    as its top of range, so climbing Up past every bounded setting
    restores the zero-overhead full scan. *)
