(** Preallocated, growable ring buffer for pending-operation windows.

    The weak/medium-FL handles and the {!Slack} policy used to keep their
    pending windows as ['a list]s: every invocation consed a cell and
    every flush paid a [List.rev] (and usually a [List.map]) before the
    window could be spliced into the shared structure. An [Opbuf] stores
    the window in a circular array instead: appending is a store, a flush
    walks the ring in invocation order in place, and the buffer is reused
    window after window — the hot path allocates nothing once the ring
    has grown to the steady-state window size.

    Orientation: index 0 is the {e oldest} element (first pushed);
    {!push} appends at the newest end, {!pop_back} removes the newest
    (the handle-local elimination case), {!drop_front} retires the oldest
    (the prefix-run flush case). A buffer is owned by a single thread —
    no operation synchronizes.

    Vacated slots are overwritten with a dummy so the buffer never
    retains references to flushed elements.

    {b Tombstones.} A slot can be {!delete}d in place — e.g. when the op
    it holds was cancelled. The tombstone keeps its logical index (so
    parallel rings — values in one, futures in another — stay aligned)
    but is invisible to {!iter}/{!rev_iter}/{!to_list}, discarded by
    {!pop_back}, and removed by {!compact} before a window is spliced
    into the shared structure with the [*_seg] operations. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** A fresh empty buffer. [capacity] (default 8) is the initial
    allocation, rounded up to a power of two; the buffer grows by
    doubling whenever full. Raises [Invalid_argument] if
    [capacity < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current allocated size (for tests; never shrinks). *)

val push : 'a t -> 'a -> unit
(** Append at the newest end, growing if full. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th oldest element, [0 <= i < length t]. Raises
    [Invalid_argument] out of range or if the slot is tombstoned. *)

val set : 'a t -> int -> 'a -> unit
(** Replace the [i]-th oldest element (used to compact a window in
    place); overwriting a tombstone revives the slot. Raises
    [Invalid_argument] out of range. *)

val delete : 'a t -> int -> unit
(** Tombstone the [i]-th slot in place: the cancelled-op case. [length]
    is unchanged — the slot still counts — but the element is gone.
    Raises [Invalid_argument] out of range. *)

val deleted : 'a t -> int -> bool
(** Is the [i]-th slot tombstoned? Raises [Invalid_argument] out of
    range. *)

val live : 'a t -> int
(** Number of non-tombstoned slots ([length t] minus tombstones). *)

val compact : 'a t -> int
(** Remove tombstoned slots, preserving the order of the survivors, and
    return the new length. Applying [compact] to index-aligned parallel
    rings with identical tombstone positions keeps them aligned. *)

val pop_back : 'a t -> 'a
(** Remove and return the newest element, discarding any tombstoned
    slots in the way. Raises [Invalid_argument] if no element remains. *)

val drop_front : 'a t -> int -> unit
(** Retire the [n] oldest elements. Raises [Invalid_argument] if
    [n < 0] or [n > length t]. *)

val truncate : 'a t -> int -> unit
(** Keep only the [n] oldest elements, dropping the newest ones (used
    after in-place compaction). Raises [Invalid_argument] if [n < 0] or
    [n > length t]. *)

val clear : 'a t -> unit
(** Empty the buffer (capacity is retained). *)

val swap : 'a t -> 'a t -> unit
(** Exchange the contents of two buffers in O(1) — detaching a window
    for processing while the handle keeps an empty buffer to accumulate
    into. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. The buffer must not be mutated during iteration. *)

val rev_iter : ('a -> unit) -> 'a t -> unit
(** Newest first. *)

val to_list : 'a t -> 'a list
(** Oldest first; for tests. *)
