(** Shared signatures of the handle-based (weak/medium) futures
    structures.

    The weak and medium implementations of each data type expose the same
    interface; these module types state that fact once, and the test
    suite contains compile-time ascriptions ([module _ : ... = ...])
    keeping the implementations in sync with them. (The strong-FL
    versions differ: they are handle-free, since their per-invocation
    state is the shared pending queue.)

    [abandon] is the recovery hook: called (by any thread) when the
    handle's owner is known to be dead, it detaches the pending windows
    and poisons every un-applied future with [Future.Orphaned], returning
    how many were poisoned, so waiters raise [Broken] instead of spinning
    on an op that will never be applied. *)

module type HANDLE_STACK = sig
  type 'a t

  type 'a handle

  val handle : 'a t -> 'a handle
  val push : 'a handle -> 'a -> unit Futures.Future.t
  val pop : 'a handle -> 'a option Futures.Future.t
  val flush : 'a handle -> unit
  val abandon : 'a handle -> int
  val pending_count : 'a handle -> int
  val shared : 'a t -> 'a Lockfree.Treiber_stack.t
end

module type HANDLE_QUEUE = sig
  type 'a t

  type 'a handle

  val handle : 'a t -> 'a handle
  val enqueue : 'a handle -> 'a -> unit Futures.Future.t
  val dequeue : 'a handle -> 'a option Futures.Future.t
  val flush : 'a handle -> unit
  val abandon : 'a handle -> int
  val pending_count : 'a handle -> int
  val shared : 'a t -> 'a Lockfree.Ms_queue.t
end

module type HANDLE_SET = sig
  module Key : sig
    type t
  end

  type t

  type handle

  val handle : t -> handle
  val insert : handle -> Key.t -> bool Futures.Future.t
  val remove : handle -> Key.t -> bool Futures.Future.t
  val contains : handle -> Key.t -> bool Futures.Future.t
  val flush : handle -> unit
  val abandon : handle -> int
  val pending_count : handle -> int
end
