(** Epoch-numbered bucket ownership for the sharded FL map.

    A bucket is the unit of ownership transfer in {!Shard_map}: keys hash
    to buckets, and at any moment at most one handle holds a bucket's
    {e lease} and may apply pending windows to its key-value segment. The
    whole ownership/transfer state lives in a {e single CAS word} (one
    {!Sync.Padded.atomic}), so every protocol step — acquire, renew,
    request, grant, ship, ack, recover — is one compare-and-set and the
    state machine can never be observed mid-transition.

    Leases are {e epoch-numbered} and {e deadline-bounded}
    ({!Sync.Mono}): the epoch increments on every change of ownership
    (acquire from [Free], ack, recover), so a handle that lost its lease
    can never mistake a successor's state for its own; the deadline makes
    a dead owner's bucket recoverable — once [until] passes, {e any}
    handle may usurp via {!try_recover}, and a window lost in flight (a
    [Shipped] package nobody acked) is returned to the recoverer so its
    futures can be poisoned rather than silently dropped.

    Transfer protocol (requester [B], owner [A]):
    + [B]: {!try_request} — [Owned A → Requested A→B]; [B] then waits,
      bounded by [A]'s lease deadline;
    + [A]: {!try_grant} — [Requested → Granted], stamping a transfer
      deadline;
    + [A]: {!try_ship} — [Granted → Shipped pkg], publishing the sealed
      pending window;
    + [B]: {!try_ack} — [Shipped → Owned B] (epoch+1), taking the
      package.

    This module is the pure state machine: fault injection
    ([shard.grant]/[shard.ship]/[shard.ack]) and observability events are
    emitted by {!Shard_map} at the call sites, so a kill at a protocol
    point always lands {e between} CAS transitions, never inside one. *)

type 'pkg state =
  | Free of int  (** unowned; the int is the epoch the next owner takes *)
  | Owned of { owner : int; epoch : int; until : float }
      (** [owner] holds the lease until [until] (monotonic seconds). *)
  | Requested of { owner : int; epoch : int; until : float; to_ : int }
      (** [to_] asked for the bucket; [owner]'s lease keeps its original
          deadline, so an owner that never grants is recoverable. *)
  | Granted of { from_ : int; to_ : int; epoch : int; until : float }
      (** transfer accepted; [until] is the transfer deadline. *)
  | Shipped of { from_ : int; to_ : int; epoch : int; until : float; pkg : 'pkg }
      (** the sealed pending window is in flight; [to_] must ack before
          [until] or the package is recoverable (and poisoned). *)

type 'pkg t

val create : id:int -> 'pkg t
(** A fresh bucket in [Free 0], its state word alone on a cache line. *)

val id : _ t -> int
val state : 'pkg t -> 'pkg state

val epoch : _ state -> int
(** The epoch carried by any state. *)

val expired : now:float -> _ state -> bool
(** Whether the state's deadline has passed ([Free] never expires). *)

val in_flight : _ state -> bool
(** [Requested | Granted | Shipped] — a transfer is in progress and the
    bucket is in degraded (read-only) mode. *)

val try_acquire : _ t -> me:int -> lease:float -> bool
(** [Free e → Owned {me; e; now+lease}]. *)

val try_renew : _ t -> me:int -> lease:float -> bool
(** Extend my lease; fails unless the state is [Owned] by [me] (an owner
    with a pending request must grant, not renew). *)

val try_request : _ t -> me:int -> bool
(** [Owned other → Requested other→me]. Fails if the bucket is free,
    mine, or already in flight. *)

val try_grant : _ t -> me:int -> timeout:float -> bool
(** [Requested me→B → Granted me→B] with transfer deadline
    [now+timeout]. *)

val try_ship : 'pkg t -> me:int -> pkg:'pkg -> bool
(** [Granted me→B → Shipped me→B pkg]. On failure the caller keeps the
    window (the transfer expired under it and someone recovered). *)

val try_ack : 'pkg t -> me:int -> lease:float -> 'pkg option
(** [Shipped A→me → Owned {me; epoch+1; now+lease}]; returns the shipped
    package exactly once (the CAS decides the unique taker between an
    acker and a recoverer). *)

type 'pkg recovery = { lost : 'pkg option }
(** [lost] is the in-flight package of a recovered [Shipped] bucket —
    the un-applied window whose futures the recoverer must poison. *)

val try_recover : 'pkg t -> me:int -> lease:float -> 'pkg recovery option
(** Usurp any {e expired} state: [→ Owned {me; epoch+1; now+lease}].
    [None] if the state is live or the CAS lost. *)
