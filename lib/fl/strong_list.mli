(** Strong-FL linked-list set (Kogan & Herlihy §4.3).

    Invocations enqueue descriptors on the shared pending queue; the
    evaluation lock holder drains a batch, {e stable-sorts} it by key —
    preserving the linearization (queue) order of operations on equal keys
    while letting operations on distinct keys, which commute, be reordered
    — and applies the whole batch to a sequential sorted list in one
    traversal via a monotone cursor. This is the {e delegation} pattern:
    one thread combines operations produced by many, who meanwhile keep
    producing; Figure 6 shows it beating the lock-free list once slack
    grows. *)

module Make (K : Lockfree.Harris_list.KEY) : sig
  type t

  val create : ?sort_batch:bool -> unit -> t
  (** [sort_batch] (default [true]): [false] applies batches in temporal
      order, one full search each (ablation C in DESIGN.md). *)

  val insert : t -> K.t -> bool Futures.Future.t
  val remove : t -> K.t -> bool Futures.Future.t
  val contains : t -> K.t -> bool Futures.Future.t

  val drain : t -> unit
  val length : t -> int

  val to_list : t -> K.t list
  (** Ascending; meaningful when quiescent and drained. *)

  val pending_cas_count : t -> int
end
