(** Medium-FL linked-list set (Kogan & Herlihy §4.3).

    The medium condition forces a thread's operations on the list to take
    effect in invocation order, so the local pending list is kept in
    temporal order and applied oldest-first. The optimization is in the
    search: Harris-list operations search from the head, but when the next
    pending operation's key is [>=] the previous one's, the search resumes
    from the position where the previous operation was applied; otherwise
    it restarts from the head. Forcing a future [F] applies pending
    operations until [F] is fulfilled; later operations stay pending. *)

module Make (K : Lockfree.Harris_list.KEY) : sig
  type t
  type handle

  val create : ?resume_hint:bool -> unit -> t
  (** [resume_hint] (default [true]) enables the search-resume
      optimization; [false] always searches from the head (ablation B in
      DESIGN.md). *)

  val handle : t -> handle

  val insert : handle -> K.t -> bool Futures.Future.t
  val remove : handle -> K.t -> bool Futures.Future.t
  val contains : handle -> K.t -> bool Futures.Future.t

  val flush : handle -> unit
  (** Apply {e all} pending operations, oldest first. *)

  val abandon : handle -> int
  (** Recovery hook: poison every un-applied future in this handle's
      pending windows with [Future.Orphaned] and drop the windows. For use
      (by any thread) only once the owner is known dead — waiters then
      raise [Broken Orphaned] instead of spinning forever. Returns the
      number of futures poisoned. *)

  val pending_count : handle -> int
  val shared : t -> Lockfree.Harris_list.Make(K).t
end
