(* Each wrapper owns a DLS key holding this domain's handle for this
   particular wrapper. Different wrappers get different keys, so several
   structures can be wrapped independently. *)
type ('s, 'h) t = {
  structure : 's;
  make : 's -> 'h;
  key : 'h option Domain.DLS.key;
}

let create structure ~make =
  { structure; make; key = Domain.DLS.new_key (fun () -> None) }

let get t =
  match Domain.DLS.get t.key with
  | Some h -> h
  | None ->
      let h = t.make t.structure in
      Domain.DLS.set t.key (Some h);
      h

let structure t = t.structure
