type 'a t = {
  mutable buf : 'a array;
  mutable head : int; (* physical index of the oldest element *)
  mutable len : int;
}

(* Vacated and never-filled slots hold this immediate. It is never
   returned: every read is bounds-checked against [len] first. Using an
   immediate (rather than demanding a dummy from the caller) keeps the
   API monomorphic-dummy-free; [Array.make] with an immediate always
   builds a uniform (non-float) array, so subsequent polymorphic
   reads/writes are representation-correct for every ['a]. *)
let nil : 'a. 'a = Obj.magic 0

(* Tombstone for cancelled ops: a unique heap block no caller value can
   alias, recognized by physical equality. A tombstoned slot still
   occupies its logical index (so parallel rings stay index-aligned) but
   is skipped by iteration and removed by [compact]. *)
let tomb : Obj.t = Obj.repr (ref (-1))

let is_tomb (x : 'a) = Obj.repr x == tomb

let round_pow2 n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 1

let create ?(capacity = 8) () =
  if capacity < 1 then invalid_arg "Opbuf.create: capacity < 1";
  { buf = Array.make (round_pow2 capacity) nil; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.buf

(* Capacity is a power of two; masking wraps physical indices. *)
let mask t = Array.length t.buf - 1
let phys t i = (t.head + i) land mask t

let grow t =
  let old = t.buf in
  let b = Array.make (Array.length old * 2) nil in
  (* Unroll the ring to the base of the new array. *)
  for i = 0 to t.len - 1 do
    b.(i) <- old.((t.head + i) land (Array.length old - 1))
  done;
  t.buf <- b;
  t.head <- 0

let push t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.(phys t t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Opbuf.get: index out of range";
  let x = t.buf.(phys t i) in
  if is_tomb x then invalid_arg "Opbuf.get: deleted slot";
  x

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Opbuf.set: index out of range";
  t.buf.(phys t i) <- x

let delete t i =
  if i < 0 || i >= t.len then invalid_arg "Opbuf.delete: index out of range";
  t.buf.(phys t i) <- Obj.magic tomb

let deleted t i =
  if i < 0 || i >= t.len then invalid_arg "Opbuf.deleted: index out of range";
  is_tomb t.buf.(phys t i)

let live t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if not (is_tomb t.buf.(phys t i)) then incr n
  done;
  !n

let compact t =
  let k = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.buf.(phys t i) in
    if not (is_tomb x) then begin
      if !k <> i then t.buf.(phys t !k) <- x;
      incr k
    end
  done;
  for i = !k to t.len - 1 do
    t.buf.(phys t i) <- nil
  done;
  t.len <- !k;
  !k

let rec pop_back t =
  if t.len = 0 then invalid_arg "Opbuf.pop_back: empty";
  t.len <- t.len - 1;
  let j = phys t t.len in
  let x = t.buf.(j) in
  t.buf.(j) <- nil;
  (* Tombstoned slots are not elements: discard and keep looking. *)
  if is_tomb x then pop_back t else x

let drop_front t n =
  if n < 0 || n > t.len then invalid_arg "Opbuf.drop_front: bad count";
  for i = 0 to n - 1 do
    t.buf.(phys t i) <- nil
  done;
  t.head <- phys t n;
  t.len <- t.len - n

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Opbuf.truncate: bad count";
  for i = n to t.len - 1 do
    t.buf.(phys t i) <- nil
  done;
  t.len <- n

let clear t = truncate t 0

let swap a b =
  let buf = a.buf and head = a.head and len = a.len in
  a.buf <- b.buf;
  a.head <- b.head;
  a.len <- b.len;
  b.buf <- buf;
  b.head <- head;
  b.len <- len

let iter f t =
  for i = 0 to t.len - 1 do
    let x = t.buf.(phys t i) in
    if not (is_tomb x) then f x
  done

let rev_iter f t =
  for i = t.len - 1 downto 0 do
    let x = t.buf.(phys t i) in
    if not (is_tomb x) then f x
  done

let to_list t =
  List.filter (fun x -> not (is_tomb x)) (List.init t.len (fun i -> t.buf.(phys t i)))
