module Future = Futures.Future

type 'a op = Enq of 'a * unit Future.t | Deq of 'a option Future.t

type 'a t = { seq : 'a Seqds.Seq_queue.t; core : 'a op Strong_core.t }

let apply_batch seq ops =
  let apply = function
    | Enq (x, f) ->
        Seqds.Seq_queue.enqueue seq x;
        Future.fulfil f ()
    | Deq f -> Future.fulfil f (Seqds.Seq_queue.dequeue seq)
  in
  List.iter apply ops

let create () =
  let seq = Seqds.Seq_queue.create () in
  { seq; core = Strong_core.create ~apply_batch:(apply_batch seq) }

let submit_op t op f =
  Strong_core.submit t.core op;
  Future.set_evaluator f (fun () ->
      Strong_core.eval t.core ~is_ready:(fun () -> Future.is_ready f))

let enqueue t x =
  let f = Future.create () in
  submit_op t (Enq (x, f)) f;
  f

let dequeue t =
  let f = Future.create () in
  submit_op t (Deq f) f;
  f

let drain t = Strong_core.drain_now t.core
let length t = Seqds.Seq_queue.length t.seq
let to_list t = Seqds.Seq_queue.to_list t.seq
let pending_cas_count t = Strong_core.pending_cas_count t.core
