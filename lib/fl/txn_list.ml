module Future = Futures.Future

module Make (K : Lockfree.Harris_list.KEY) = struct
  module L = Lockfree.Harris_list.Make (K)
  module KMap = Map.Make (K)

  type kind = Insert | Remove | Contains

  type op = { kind : kind; future : bool Future.t }

  type t = { list : L.t; lock : Sync.Spinlock.t }

  type handle = {
    owner : t;
    (* Per key, newest first; like the weak list, but the atomic
       application is what makes the reordering legal under medium-FL. *)
    mutable pending : op list KMap.t;
    mutable count : int;
  }

  let create () = { list = L.create (); lock = Sync.Spinlock.create () }

  let shared t = t.list

  let handle owner = { owner; pending = KMap.empty; count = 0 }

  let pending_count h = h.count

  let simulate p ops =
    let step s op =
      match op.kind with
      | Insert ->
          Future.fulfil op.future (not s);
          true
      | Remove ->
          Future.fulfil op.future s;
          false
      | Contains ->
          Future.fulfil op.future s;
          s
    in
    ignore (List.fold_left step p ops)

  let net_effect ops =
    List.fold_left
      (fun acc op ->
        match op.kind with Insert | Remove -> Some op.kind | Contains -> acc)
      None ops

  let flush h =
    match KMap.bindings h.pending with
    | [] -> ()
    | groups ->
        h.pending <- KMap.empty;
        h.count <- 0;
        let apply_group pos (key, newest_first) =
          (* Cancelled ops are withdrawn from the batch before it takes
             effect; a group left empty performs no physical op. *)
          let ops =
            List.rev
              (List.filter (fun op -> Future.is_pending op.future) newest_first)
          in
          if ops = [] then pos
          else
          let presence, pos' =
            match net_effect ops with
            | None -> L.contains_from h.owner.list pos key
            | Some Insert ->
                let changed, pos' = L.insert_from h.owner.list pos key in
                (not changed, pos')
            | Some Remove -> L.remove_from h.owner.list pos key
            | Some Contains -> assert false
          in
          simulate presence ops;
          pos'
        in
        (* The lock is what distinguishes this from the weak list: the
           whole batch takes effect atomically, so applying it in key
           order is unobservable and medium-FL is preserved. *)
        Sync.Spinlock.with_lock h.owner.lock (fun () ->
            ignore
              (List.fold_left apply_group
                 (L.head_position h.owner.list)
                 groups))

  let abandon h =
    let n = ref 0 in
    KMap.iter
      (fun _ ops ->
        List.iter
          (fun op -> if Future.poison op.future Future.Orphaned then incr n)
          ops)
      h.pending;
    h.pending <- KMap.empty;
    h.count <- 0;
    !n

  let add h key kind =
    let future = Future.create () in
    Future.set_evaluator future (fun () -> flush h);
    let op = { kind; future } in
    h.pending <-
      KMap.update key
        (function None -> Some [ op ] | Some ops -> Some (op :: ops))
        h.pending;
    h.count <- h.count + 1;
    future

  let insert h key = add h key Insert
  let remove h key = add h key Remove
  let contains h key = add h key Contains
end
