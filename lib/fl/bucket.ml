(* The bucket ownership word. Every transition is a single CAS on one
   padded atomic; records are freshly allocated per transition, so CAS on
   physical equality can never confuse two logically distinct states
   (no ABA). Deadlines are monotonic seconds (Sync.Mono). *)

type 'pkg state =
  | Free of int
  | Owned of { owner : int; epoch : int; until : float }
  | Requested of { owner : int; epoch : int; until : float; to_ : int }
  | Granted of { from_ : int; to_ : int; epoch : int; until : float }
  | Shipped of { from_ : int; to_ : int; epoch : int; until : float; pkg : 'pkg }

type 'pkg t = { id : int; word : 'pkg state Atomic.t }

let create ~id = { id; word = Sync.Padded.atomic (Free 0) }
let id t = t.id
let state t = Atomic.get t.word

let epoch = function
  | Free e -> e
  | Owned { epoch; _ }
  | Requested { epoch; _ }
  | Granted { epoch; _ }
  | Shipped { epoch; _ } ->
      epoch

let expired ~now = function
  | Free _ -> false
  | Owned { until; _ }
  | Requested { until; _ }
  | Granted { until; _ }
  | Shipped { until; _ } ->
      now >= until

let in_flight = function
  | Requested _ | Granted _ | Shipped _ -> true
  | Free _ | Owned _ -> false

let cas t old next = Atomic.compare_and_set t.word old next

let try_acquire t ~me ~lease =
  match Atomic.get t.word with
  | Free e as old ->
      cas t old (Owned { owner = me; epoch = e; until = Sync.Mono.now () +. lease })
  | _ -> false

let try_renew t ~me ~lease =
  match Atomic.get t.word with
  | Owned { owner; epoch; _ } as old when owner = me ->
      cas t old (Owned { owner; epoch; until = Sync.Mono.now () +. lease })
  | _ -> false

let try_request t ~me =
  match Atomic.get t.word with
  | Owned { owner; epoch; until } as old when owner <> me ->
      cas t old (Requested { owner; epoch; until; to_ = me })
  | _ -> false

let try_grant t ~me ~timeout =
  match Atomic.get t.word with
  | Requested { owner; epoch; to_; _ } as old when owner = me ->
      cas t old
        (Granted { from_ = owner; to_; epoch; until = Sync.Mono.now () +. timeout })
  | _ -> false

let try_ship t ~me ~pkg =
  match Atomic.get t.word with
  | Granted { from_; to_; epoch; until } as old when from_ = me ->
      cas t old (Shipped { from_; to_; epoch; until; pkg })
  | _ -> false

let try_ack t ~me ~lease =
  match Atomic.get t.word with
  | Shipped { to_; epoch; pkg; _ } as old when to_ = me ->
      if
        cas t old
          (Owned { owner = me; epoch = epoch + 1; until = Sync.Mono.now () +. lease })
      then Some pkg
      else None
  | _ -> None

type 'pkg recovery = { lost : 'pkg option }

let try_recover t ~me ~lease =
  let now = Sync.Mono.now () in
  match Atomic.get t.word with
  | (Owned { epoch; _ } | Requested { epoch; _ } | Granted { epoch; _ }) as old
    when expired ~now old ->
      if cas t old (Owned { owner = me; epoch = epoch + 1; until = now +. lease })
      then Some { lost = None }
      else None
  | Shipped { epoch; pkg; _ } as old when expired ~now old ->
      if cas t old (Owned { owner = me; epoch = epoch + 1; until = now +. lease })
      then Some { lost = Some pkg }
      else None
  | _ -> None
