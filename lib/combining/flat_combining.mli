(** Flat combining (Hendler, Incze, Shavit & Tzafrir, SPAA 2010) with a
    combiner {e lease}.

    The closest published relative of the paper's futures approach (cited
    in its §7): threads {e publish} operation requests in per-thread
    records linked into a shared publication list; whichever thread
    acquires the combiner role scans the list and applies {e everyone's}
    pending requests to a sequential structure, writing results back.
    Like the strong-FL engine this serializes evaluation behind one role
    and gets delegation for free; unlike futures there is no slack — every
    caller blocks until its own request is answered, so combining happens
    across threads, never across one thread's consecutive operations.

    Delegation is also the failure mode: if the combiner stalls or dies
    mid-pass, every waiter's request is orphaned. The combiner role is
    therefore held under a monotonically increasing {e term} (a lease): a
    waiter that observes no per-record progress for a whole spin budget
    usurps the term and combines in the stalled combiner's place, and a
    deposed combiner abandons its scan at the next record boundary. Under
    that protocol [apply] stays responsive when a combiner is lost — the
    hazard the fault-injection points ([fc.apply], [fc.pass],
    [fc.record]) exist to provoke.

    Limit of the lease (documented, not defended): takeover is only safe
    when the stalled combiner is between records — a combiner preempted
    {e inside} a single [apply] of the sequential structure that later
    resumes concurrently with the usurper races on that structure. The
    budget (hundreds of backoff rounds, i.e. orders of magnitude longer
    than one sequential operation) makes that window negligible, and the
    injected stalls land on record boundaries where takeover is exact.

    Operations are linearizable (they take effect between invocation and
    return, under the current combiner's term). If [apply]'s underlying
    operation raises, the exception is captured in the record and
    re-raised in the owner; all other records in the pass are still
    answered.

    One {!handle} per domain; a handle has at most one request in flight. *)

type ('op, 'res) t

val create : ?takeover_budget:int -> apply:('op -> 'res) -> unit -> ('op, 'res) t
(** [create ~apply] wraps a sequential structure: [apply] is executed only
    by the current-term combiner, so it needs no synchronization of its
    own. [takeover_budget] is the number of backoff rounds a waiter
    tolerates without observing combiner progress before usurping the
    lease (default 64). Raises [Invalid_argument] if it is not positive. *)

type ('op, 'res) handle

val handle : ('op, 'res) t -> ('op, 'res) handle
(** Registers a publication record; call once per domain. *)

val apply : ('op, 'res) handle -> 'op -> 'res
(** Publish the request and wait: either some combiner answers it, or
    this thread wins (or usurps) the combiner term and combines
    everybody's requests itself. Re-raises the underlying operation's
    exception if it raised for this request.

    Exception-safe against protocol failure: if the wait itself dies
    (e.g. an injected [Faults.Killed] while this thread held the
    combiner lease), the published request is {!retire}d on the way out,
    so no later combiner applies an op whose owner is gone. *)

val retire : ('op, 'res) handle -> unit
(** Withdraw the handle's in-flight request, if any: the recovery hook
    for a record whose owner died mid-publish. If no combiner has
    claimed the request yet it is un-published (counted by
    {!retired_records}) and will never be applied; if one has, the
    stale response is drained (bounded wait) so a reused record cannot
    answer a later op with it. Callers fulfil the op's future from
    [apply]'s return value, so a retired op's future is simply never
    fulfilled — the owner's recovery layer poisons it. Safe to call from
    any thread once the owner is known dead, and idempotent. *)

(** {2 Runtime-tunable knobs (the Tune controller's handles)} *)

val pass_budget : ('op, 'res) t -> int

val set_pass_budget : ('op, 'res) t -> int -> unit
(** Consecutive passes one lease holder runs before releasing (clamped
    to [>= 1]; default 1 — release after every pass, the classic
    behavior). A holder stops early when a pass answers no requests or
    its lease is usurped. Raising it under sustained traffic keeps the
    combiner role, and the sequential structure's cache lines, on one
    domain. Safe to call from any domain at any time. *)

val scan_limit : ('op, 'res) t -> int

val set_scan_limit : ('op, 'res) t -> int -> unit
(** Max publication records visited per pass ([0] = unlimited, the
    default; negative clamps to 0). Bounded passes rotate through the
    list from a cursor, so a long prefix of retained idle records no
    longer taxes every pass and no record starves. Safe to call from any
    domain at any time. *)

val combiner_passes : ('op, 'res) t -> int
(** Number of combining passes executed (diagnostics). *)

val combiner_takeovers : ('op, 'res) t -> int
(** Number of times a waiter usurped a stalled combiner's lease
    (diagnostics; 0 in fault-free runs). *)

val retired_records : ('op, 'res) t -> int
(** Number of requests withdrawn unapplied by {!retire} (diagnostics;
    0 in fault-free runs). *)
