(** Flat combining (Hendler, Incze, Shavit & Tzafrir, SPAA 2010).

    The closest published relative of the paper's futures approach (cited
    in its §7): threads {e publish} operation requests in per-thread
    records linked into a shared publication list; whichever thread
    acquires the combiner lock scans the list and applies {e everyone's}
    pending requests to a sequential structure, writing results back.
    Like the strong-FL engine this serializes evaluation behind one lock
    and gets delegation for free; unlike futures there is no slack — every
    caller blocks until its own request is answered, so combining happens
    across threads, never across one thread's consecutive operations.

    Implemented as an additional baseline so the futures structures can be
    benchmarked against the technique the paper positions itself next to.
    Operations are linearizable (they take effect between invocation and
    return, under the combiner lock).

    One {!handle} per domain; a handle has at most one request in flight. *)

type ('op, 'res) t

val create : apply:('op -> 'res) -> ('op, 'res) t
(** [create ~apply] wraps a sequential structure: [apply] is executed only
    by the lock-holding combiner, so it needs no synchronization of its
    own. *)

type ('op, 'res) handle

val handle : ('op, 'res) t -> ('op, 'res) handle
(** Registers a publication record; call once per domain. *)

val apply : ('op, 'res) handle -> 'op -> 'res
(** Publish the request and wait: either some combiner answers it, or
    this thread wins the lock and combines everybody's requests itself. *)

val combiner_passes : ('op, 'res) t -> int
(** Number of combining passes executed (diagnostics). *)
