(** Flat-combining sorted-list set: a sequential sorted linked list behind
    the {!Flat_combining} engine. Linearizable; extra baseline for the
    Figure 6 benchmark. One handle per domain. *)

module Make (K : Seqds.Seq_list.KEY) : sig
  type t

  val create : unit -> t

  type handle

  val handle : t -> handle
  val insert : handle -> K.t -> bool
  val remove : handle -> K.t -> bool
  val contains : handle -> K.t -> bool
  val length : t -> int

  val to_list : t -> K.t list
  (** Ascending; quiescent snapshot. *)

  val pass_budget : t -> int
  val set_pass_budget : t -> int -> unit
  val scan_limit : t -> int

  val set_scan_limit : t -> int -> unit
  (** Engine knobs, delegated to {!Flat_combining}. *)

  val combiner_passes : t -> int

  val combiner_takeovers : t -> int
  (** Stalled-combiner lease takeovers (see {!Flat_combining}). *)
end
