type 'a op = Push of 'a | Pop

type 'a res = Done | Popped of 'a option

type 'a t = {
  seq : 'a Seqds.Seq_stack.t;
  fc : ('a op, 'a res) Flat_combining.t;
}

type 'a handle = ('a op, 'a res) Flat_combining.handle

let create () =
  let seq = Seqds.Seq_stack.create () in
  let apply = function
    | Push v ->
        Seqds.Seq_stack.push seq v;
        Done
    | Pop -> Popped (Seqds.Seq_stack.pop seq)
  in
  { seq; fc = Flat_combining.create ~apply () }

let handle t = Flat_combining.handle t.fc

let push h v =
  match Flat_combining.apply h (Push v) with
  | Done -> ()
  | Popped _ -> assert false

let pop h =
  match Flat_combining.apply h Pop with
  | Popped r -> r
  | Done -> assert false

let length t = Seqds.Seq_stack.length t.seq
let to_list t = Seqds.Seq_stack.to_list t.seq
let pass_budget t = Flat_combining.pass_budget t.fc
let set_pass_budget t n = Flat_combining.set_pass_budget t.fc n
let scan_limit t = Flat_combining.scan_limit t.fc
let set_scan_limit t n = Flat_combining.set_scan_limit t.fc n
let combiner_passes t = Flat_combining.combiner_passes t.fc
let combiner_takeovers t = Flat_combining.combiner_takeovers t.fc
let retired_records t = Flat_combining.retired_records t.fc
