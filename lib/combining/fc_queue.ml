type 'a op = Enq of 'a | Deq

type 'a res = Done | Dequeued of 'a option

type 'a t = {
  seq : 'a Seqds.Seq_queue.t;
  fc : ('a op, 'a res) Flat_combining.t;
}

type 'a handle = ('a op, 'a res) Flat_combining.handle

let create () =
  let seq = Seqds.Seq_queue.create () in
  let apply = function
    | Enq v ->
        Seqds.Seq_queue.enqueue seq v;
        Done
    | Deq -> Dequeued (Seqds.Seq_queue.dequeue seq)
  in
  { seq; fc = Flat_combining.create ~apply () }

let handle t = Flat_combining.handle t.fc

let enqueue h v =
  match Flat_combining.apply h (Enq v) with
  | Done -> ()
  | Dequeued _ -> assert false

let dequeue h =
  match Flat_combining.apply h Deq with
  | Dequeued r -> r
  | Done -> assert false

let length t = Seqds.Seq_queue.length t.seq
let to_list t = Seqds.Seq_queue.to_list t.seq
let pass_budget t = Flat_combining.pass_budget t.fc
let set_pass_budget t n = Flat_combining.set_pass_budget t.fc n
let scan_limit t = Flat_combining.scan_limit t.fc
let set_scan_limit t n = Flat_combining.set_scan_limit t.fc n
let combiner_passes t = Flat_combining.combiner_passes t.fc
let combiner_takeovers t = Flat_combining.combiner_takeovers t.fc
let retired_records t = Flat_combining.retired_records t.fc
