(** Flat-combining FIFO queue: a sequential queue behind the
    {!Flat_combining} engine. Linearizable; extra baseline for the
    Figure 5 benchmark. One handle per domain. *)

type 'a t

val create : unit -> 'a t

type 'a handle

val handle : 'a t -> 'a handle
val enqueue : 'a handle -> 'a -> unit
val dequeue : 'a handle -> 'a option
val length : 'a t -> int

val to_list : 'a t -> 'a list
(** Oldest-first; quiescent snapshot. *)

val pass_budget : 'a t -> int
val set_pass_budget : 'a t -> int -> unit
val scan_limit : 'a t -> int

val set_scan_limit : 'a t -> int -> unit
(** Engine knobs, delegated to {!Flat_combining}. *)

val combiner_passes : 'a t -> int

val combiner_takeovers : 'a t -> int
(** Stalled-combiner lease takeovers (see {!Flat_combining}). *)

val retired_records : 'a t -> int
(** Records retired by the takeover protocol after their owner died
    mid-publish (see {!Flat_combining.retired_records}). *)
