module Make (K : Seqds.Seq_list.KEY) = struct
  module S = Seqds.Seq_list.Make (K)

  type op = Insert of K.t | Remove of K.t | Contains of K.t

  type t = { seq : S.t; fc : (op, bool) Flat_combining.t }

  type handle = (op, bool) Flat_combining.handle

  let create () =
    let seq = S.create () in
    let apply = function
      | Insert k -> S.insert seq k
      | Remove k -> S.remove seq k
      | Contains k -> S.contains seq k
    in
    { seq; fc = Flat_combining.create ~apply () }

  let handle t = Flat_combining.handle t.fc
  let insert h k = Flat_combining.apply h (Insert k)
  let remove h k = Flat_combining.apply h (Remove k)
  let contains h k = Flat_combining.apply h (Contains k)
  let length t = S.length t.seq
  let to_list t = S.to_list t.seq
  let pass_budget t = Flat_combining.pass_budget t.fc
  let set_pass_budget t n = Flat_combining.set_pass_budget t.fc n
  let scan_limit t = Flat_combining.scan_limit t.fc
  let set_scan_limit t n = Flat_combining.set_scan_limit t.fc n
  let combiner_passes t = Flat_combining.combiner_passes t.fc
  let combiner_takeovers t = Flat_combining.combiner_takeovers t.fc
end
