(* A publication record. [request] is written by the owner and consumed
   (reset to None) by the combiner; [response] is written by the combiner
   and consumed by the owner. The owner publishes a new request only
   after consuming the previous response, so a record holds at most one
   in-flight operation. *)
type ('op, 'res) record = {
  request : 'op option Atomic.t;
  response : 'res option Atomic.t;
  mutable next : ('op, 'res) record option; (* immutable once published *)
}

type ('op, 'res) t = {
  apply_op : 'op -> 'res;
  lock : Sync.Spinlock.t;
  publication : ('op, 'res) record option Atomic.t;
  passes : int Atomic.t;
}

type ('op, 'res) handle = { owner : ('op, 'res) t; record : ('op, 'res) record }

let create ~apply =
  {
    apply_op = apply;
    lock = Sync.Spinlock.create ();
    publication = Atomic.make None;
    passes = Atomic.make 0;
  }

let handle owner =
  let record =
    { request = Atomic.make None; response = Atomic.make None; next = None }
  in
  let rec link () =
    let head = Atomic.get owner.publication in
    record.next <- head;
    if not (Atomic.compare_and_set owner.publication head (Some record)) then
      link ()
  in
  link ();
  { owner; record }

(* Scan the whole publication list, answering every pending request. Runs
   with the combiner lock held. *)
let combine t =
  Atomic.incr t.passes;
  let rec scan = function
    | None -> ()
    | Some r ->
        (match Atomic.get r.request with
        | Some op ->
            let result = t.apply_op op in
            Atomic.set r.request None;
            Atomic.set r.response (Some result)
        | None -> ());
        scan r.next
  in
  scan (Atomic.get t.publication)

let apply h op =
  let t = h.owner in
  Atomic.set h.record.request (Some op);
  let b = Sync.Backoff.create () in
  let rec wait () =
    match Atomic.get h.record.response with
    | Some result ->
        Atomic.set h.record.response None;
        result
    | None ->
        if Sync.Spinlock.try_acquire t.lock then begin
          (* We are the combiner: everybody's requests, including our own
             (published above, before the lock attempt), are answered in
             this pass. *)
          Fun.protect
            ~finally:(fun () -> Sync.Spinlock.release t.lock)
            (fun () -> combine t);
          wait ()
        end
        else begin
          Sync.Backoff.once b;
          wait ()
        end
  in
  wait ()

let combiner_passes t = Atomic.get t.passes
