(* A publication record. [request] is written by the owner and consumed
   (reset to None) by the combiner; [response] is written by the combiner
   and consumed by the owner. The owner publishes a new request only
   after consuming the previous response, so a record holds at most one
   in-flight operation. Responses carry [('res, exn) result] so that an
   [apply_op] that raises still answers its record — the exception
   travels back to the owner and is re-raised there, and every other
   record in the pass is answered normally. *)
type ('op, 'res) record = {
  request : 'op option Atomic.t;
  response : ('res, exn) result option Atomic.t;
  mutable next : ('op, 'res) record option; (* immutable once published *)
}

(* Combining is guarded by a lease, not a plain lock: [term] is even when
   no combiner is active and odd while one holds the role, and it only
   ever grows. Becoming the combiner is CAS [even -> even+1] (acquire) or
   CAS [odd -> odd+2] (takeover of a stalled combiner's lease); release
   is CAS [odd -> odd+1]. A combiner re-reads [term] at every record
   boundary and abandons the scan the moment its term is stale, so a
   deposed (stalled, now awake) combiner stops touching the sequential
   structure; its release CAS then fails harmlessly. [progress] ticks at
   every record boundary, giving waiters a liveness signal that is fine
   grained even during one long pass. *)
type ('op, 'res) t = {
  apply_op : 'op -> 'res;
  term : int Atomic.t;
  publication : ('op, 'res) record option Atomic.t;
  passes : int Atomic.t;
  progress : int Atomic.t;
  takeovers : int Atomic.t;
  retired : int Atomic.t;
  takeover_budget : int;
  (* Runtime-tunable knobs (the Tune controller's handles on this
     engine). [pass_budget] = consecutive passes one lease holder runs
     before releasing, so under sustained traffic the role — and the
     structure's cache lines — stay put instead of bouncing per pass.
     [scan_limit] = max records visited per pass (0 = unlimited);
     bounded passes resume from [cursor], rotating through the
     publication list so no record starves behind a long prefix of
     retained idle records. *)
  pass_budget : int Atomic.t;
  scan_limit : int Atomic.t;
  cursor : ('op, 'res) record option Atomic.t;
}

type ('op, 'res) handle = { owner : ('op, 'res) t; record : ('op, 'res) record }

let default_takeover_budget = 64

let create ?(takeover_budget = default_takeover_budget) ~apply () =
  if takeover_budget <= 0 then
    invalid_arg "Flat_combining.create: takeover_budget must be positive";
  (* [term] and [progress] are polled by every waiter on every spin while
     the combiner stores to them at every record boundary; [publication]
     is CASed by every joining thread. Each gets its own cache line so
     the pollers' read traffic and the combiner's writes don't collide. *)
  {
    apply_op = apply;
    term = Sync.Padded.atomic 0;
    publication = Sync.Padded.atomic None;
    passes = Sync.Padded.atomic 0;
    progress = Sync.Padded.atomic 0;
    takeovers = Sync.Padded.atomic 0;
    retired = Sync.Padded.atomic 0;
    takeover_budget;
    pass_budget = Sync.Padded.atomic 1;
    scan_limit = Sync.Padded.atomic 0;
    cursor = Sync.Padded.atomic None;
  }

let pass_budget t = Atomic.get t.pass_budget
let set_pass_budget t n = Atomic.set t.pass_budget (if n < 1 then 1 else n)
let scan_limit t = Atomic.get t.scan_limit
let set_scan_limit t n = Atomic.set t.scan_limit (if n < 0 then 0 else n)

let handle owner =
  (* A record's [request] is written by its owner and consumed by the
     combiner while [response] flows the other way; padding both keeps
     the two parties' cache lines disjoint (and keeps one thread's
     publication record from false-sharing with its neighbour's in the
     list). *)
  let record =
    {
      request = Sync.Padded.atomic None;
      response = Sync.Padded.atomic None;
      next = None;
    }
  in
  let rec link () =
    let head = Atomic.get owner.publication in
    record.next <- head;
    if not (Atomic.compare_and_set owner.publication head (Some record)) then
      link ()
  in
  link ();
  { owner; record }

(* One combining pass, answering pending requests; returns how many it
   answered. Runs as the holder of lease [my_term]; stops (without
   error) as soon as the lease is observed stale.

   With [scan_limit = 0] the pass covers the whole publication list from
   the head. A bounded pass visits at most [scan_limit] records,
   resuming where the previous bounded pass left off ([cursor]) and
   wrapping past the tail back through the head — records are never
   unlinked (the list only grows at its head), so the cursor node is
   always still reachable and physical-equality comparison is exact. *)
let combine t my_term =
  Atomic.incr t.passes;
  Faults.point "fc.pass";
  let limit = Atomic.get t.scan_limit in
  let budget = ref (if limit <= 0 then max_int else limit) in
  let answered = ref 0 in
  let stopped = ref None in
  let deposed = ref false in
  (* Walk [node] towards the tail, stopping at [stop] (exclusive), the
     list end, lease loss, or budget exhaustion (recording where). *)
  let rec walk node stop =
    match node with
    | None -> ()
    | Some r ->
        if match stop with Some s -> r == s | None -> false then ()
        else if !budget <= 0 then stopped := node
        else begin
          Faults.point "fc.record";
          if Atomic.get t.term <> my_term then deposed := true
          else begin
            decr budget;
            (match Atomic.get r.request with
            | Some op as stored ->
                (* Claim before applying: [retire] (the owner withdrawing
                   a request it failed mid-publish) CASes the same cell,
                   so exactly one side wins — a withdrawn op is never
                   applied and an applied op is never withdrawn. *)
                if Atomic.compare_and_set r.request stored None then begin
                  let result =
                    match t.apply_op op with v -> Ok v | exception e -> Error e
                  in
                  Atomic.set r.response (Some result);
                  Atomic.incr t.progress;
                  incr answered
                end
            | None -> ());
            walk r.next stop
          end
        end
  in
  let head = Atomic.get t.publication in
  let start = if limit <= 0 then head else
    match Atomic.get t.cursor with Some _ as c -> c | None -> head
  in
  walk start None;
  (* Wrap: head → start covers the records published since the cursor
     node (and any prefix a previous bounded pass skipped). *)
  if limit > 0 && !stopped = None && not !deposed then
    (match (head, start) with
    | Some h, Some s when h != s -> walk head start
    | _ -> ());
  (* Only the live lease holder rotates the cursor — a deposed combiner
     racing the usurper here could otherwise skew fairness (never
     correctness: the cursor only chooses where the next pass begins). *)
  if limit > 0 && not !deposed then Atomic.set t.cursor !stopped;
  (* One lease-guarded pass amortized [answered] ops — the combining
     analogue of a window splice. *)
  Obs.splice ~kind:Obs.Event.k_fc_pass ~n:!answered;
  !answered

let try_release t my_term =
  ignore (Atomic.compare_and_set t.term my_term (my_term + 1))

(* Run up to [pass_budget] passes as the holder of [my_term] — stopping
   early once a pass answers nothing or the lease is lost — then release.
   A simulated thread death ([Faults.Killed]) deliberately leaves the
   lease held — a dead combiner releases nothing — so recovery must come
   from a waiter's takeover; any other exception releases normally. *)
let run_as_combiner t my_term =
  let rec go n =
    let answered = combine t my_term in
    if n > 1 && answered > 0 && Atomic.get t.term = my_term then go (n - 1)
  in
  match go (Atomic.get t.pass_budget) with
  | () -> try_release t my_term
  | exception e ->
      (match e with Faults.Killed _ -> () | _ -> try_release t my_term);
      raise e

(* Withdraw a record's in-flight request after its owner failed (e.g.
   raised [Faults.Killed]) between publishing and consuming the
   response. Either the request is still unclaimed — un-publish it, so
   no combiner ever applies the dead owner's half-initialized op — or a
   combiner claimed it first, in which case the response it is writing
   is drained (bounded) so the record is clean for reuse instead of
   answering some later op with a stale result. *)
let retire h =
  let t = h.owner in
  let r = h.record in
  let drain_stale_response () =
    let b = Sync.Backoff.create () in
    let rec loop rounds =
      match Atomic.get r.response with
      | Some _ -> Atomic.set r.response None
      | None ->
          (* If the claiming combiner itself died before answering, give
             up: the record stays claimed-and-unanswered, which every
             later pass skips. *)
          if rounds > 0 then begin
            Sync.Backoff.once b;
            loop (rounds - 1)
          end
    in
    loop 128
  in
  match Atomic.get r.request with
  | Some _ as stored ->
      if Atomic.compare_and_set r.request stored None then begin
        Atomic.incr t.retired;
        Obs.combiner_retire ()
      end
      else drain_stale_response ()
  | None -> drain_stale_response ()

let apply h op =
  let t = h.owner in
  Faults.point "fc.apply";
  Atomic.set h.record.request (Some op);
  let b = Sync.Backoff.create ~budget:t.takeover_budget () in
  let rec wait last_term last_progress =
    match Atomic.get h.record.response with
    | Some result ->
        Atomic.set h.record.response None;
        result
    | None ->
        let term = Atomic.get t.term in
        if term land 1 = 0 then
          if Atomic.compare_and_set t.term term (term + 1) then begin
            (* We are the combiner: everybody's requests, including our
               own (published above, before the lease attempt), are
               answered in this pass. *)
            Obs.combiner_acquire ();
            run_as_combiner t (term + 1);
            Sync.Backoff.reset b;
            wait (Atomic.get t.term) (Atomic.get t.progress)
          end
          else wait last_term last_progress
        else begin
          let progress = Atomic.get t.progress in
          if term <> last_term || progress <> last_progress then begin
            (* The combiner moved between records (or changed identity)
               since we last looked: it is alive, keep waiting. *)
            Sync.Backoff.reset b;
            Sync.Backoff.once b;
            wait term progress
          end
          else if Sync.Backoff.give_up b then begin
            (* No record boundary crossed for a whole spin budget: the
               lease holder is stalled or dead. Usurp its term and
               combine ourselves rather than spinning forever.
               ([Backoff] lives below [Obs] in the dependency order, so
               exhaustion is reported here, at the consumption site.) *)
            Obs.backoff_exhausted ();
            if Atomic.compare_and_set t.term term (term + 2) then begin
              Atomic.incr t.takeovers;
              Obs.combiner_takeover ();
              run_as_combiner t (term + 2);
              Sync.Backoff.reset b;
              wait (Atomic.get t.term) (Atomic.get t.progress)
            end
            else begin
              Sync.Backoff.reset b;
              wait (Atomic.get t.term) (Atomic.get t.progress)
            end
          end
          else begin
            Sync.Backoff.once b;
            wait term progress
          end
        end
  in
  (* [wait] only raises on protocol failure (an injected kill while we
     held the combiner lease, never an [apply_op] exception — those
     travel through the response). Retire our published request on the
     way out so no later combiner applies an op whose owner is gone. *)
  let result =
    try wait (Atomic.get t.term) (Atomic.get t.progress)
    with e ->
      retire h;
      raise e
  in
  match result with Ok v -> v | Error e -> raise e

let combiner_passes t = Atomic.get t.passes
let combiner_takeovers t = Atomic.get t.takeovers
let retired_records t = Atomic.get t.retired
