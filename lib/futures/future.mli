(** Futures for operations on long-lived shared data structures
    (Kogan & Herlihy §2, §4).

    A future is a promise for the result of a {e pending} operation: one
    whose invocation has occurred but which has not yet been applied to its
    object. The paper's prototype realizes a future as an object with
    [opCode]/[value]/[result]/[resultReady] fields; here the operation
    descriptor (opCode/value) lives in the data structure's own pending
    lists, and the future is the result cell plus an {e evaluator} — the
    hook a data structure installs so that forcing the future flushes the
    pending operations that must take effect for the result to exist.

    Concurrency contract (paper §6 model): a future is created and forced
    by one owner thread, but may be {e fulfilled} by any thread (e.g. a
    strong-FL evaluator draining the shared pending queue, or elimination
    pairing a pop with another pending push). [fulfil] vs [is_ready]/[get]
    synchronize through an atomic cell. *)

type 'a t

val create : unit -> 'a t
(** A pending future with no evaluator ([force] on it spin-waits). *)

val create_with : evaluator:(unit -> unit) -> 'a t
(** A pending future whose [force] runs [evaluator] to make the result
    ready. The evaluator must cause [fulfil] (directly or transitively);
    [force] verifies this and raises [Stuck] otherwise. *)

val of_value : 'a -> 'a t
(** An already-fulfilled future — used for operations that are eliminated
    or combined at invocation time, and for treating non-future return
    values as "futures that are evaluated immediately" (§4). *)

exception Already_fulfilled

val fulfil : 'a t -> 'a -> unit
(** Write the result and set it ready. Any thread may call this, once.
    @raise Already_fulfilled on a second fulfilment. *)

val try_fulfil : 'a t -> 'a -> bool
(** Like [fulfil] but returns [false] instead of raising. *)

val is_ready : 'a t -> bool
(** The paper's [resultReady] test: does a result exist yet? *)

val peek : 'a t -> 'a option
(** The result if ready, without forcing. *)

exception Stuck
(** Raised by [force] when a future has no evaluator installed, is not
    being fulfilled by anyone, and would therefore wait forever. *)

val force : 'a t -> 'a
(** Evaluate ("touch") the future: if pending, run its evaluator, then
    return the result. Idempotent; subsequent calls return the cached
    result. Must only be called by the owner thread.
    @raise Stuck if no evaluator is installed and the result does not
    become ready after a bounded wait. *)

val await : 'a t -> 'a
(** Spin (with backoff) until some other thread fulfils the future, then
    return the result. Unlike [force], never runs the evaluator — for
    consumers that know a producer will fulfil. *)

exception Timeout
(** Raised by the bounded waits below when their deadline passes while
    the future is still pending. The future itself is untouched: it may
    still be fulfilled later, and the owner may retry or switch to the
    unbounded wait. *)

val force_until : 'a t -> deadline:float -> 'a
(** [force_until t ~deadline] is [force t], except that the
    no-evaluator wait for a concurrent fulfiller is bounded by the
    absolute wall-clock time [deadline] (as returned by
    [Unix.gettimeofday]) instead of a fixed round count.
    @raise Timeout if the deadline passes first — the graceful
    alternative to spinning on a fulfiller that died.
    @raise Stuck if an installed evaluator returns without fulfilling
    (evaluators run to completion; the deadline does not abort them). *)

val await_for : 'a t -> seconds:float -> 'a
(** [await_for t ~seconds] is [await t] bounded by a relative timeout.
    @raise Timeout if no thread fulfils the future within [seconds]. *)

val set_evaluator : 'a t -> (unit -> unit) -> unit
(** Install or replace the evaluator. Owner thread only. *)

(** {2 Combinators}

    Derived futures for composing pending operations; forcing the derived
    future forces its parents. They share the owner's thread, so the
    at-most-once / owner-only discipline extends to them. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** [map f fut] is a future for [f] applied to [fut]'s result; forcing it
    forces [fut]. [f] runs at most once, at forcing time. *)

val both : 'a t -> 'b t -> ('a * 'b) t
(** [both a b] forces [a] then [b] when forced. *)

val all : 'a t list -> 'a list t
(** [all fs] forces every future in order when forced; useful for
    treating a slack window as a single batch result. *)
