(** Futures for operations on long-lived shared data structures
    (Kogan & Herlihy §2, §4).

    A future is a promise for the result of a {e pending} operation: one
    whose invocation has occurred but which has not yet been applied to its
    object. The paper's prototype realizes a future as an object with
    [opCode]/[value]/[result]/[resultReady] fields; here the operation
    descriptor (opCode/value) lives in the data structure's own pending
    lists, and the future is the result cell plus an {e evaluator} — the
    hook a data structure installs so that forcing the future flushes the
    pending operations that must take effect for the result to exist.

    Concurrency contract (paper §6 model): a future is created and forced
    by one owner thread, but may be {e fulfilled} by any thread (e.g. a
    strong-FL evaluator draining the shared pending queue, or elimination
    pairing a pop with another pending push). [fulfil] vs [is_ready]/[get]
    synchronize through an atomic cell.

    {b Lifecycle.} A future has exactly one of four terminal fates, decided
    by a single atomic transition out of the pending state:

    {v
              +----------- fulfil ----------> applied   (Ready v)
      pending +----------- cancel ----------> cancelled (raises Cancelled)
              +----------- poison ----------> poisoned  (raises Broken e)
              +----------- reject ----------> rejected  (raises Rejected)
    v}

    [fulfil], [cancel], [poison] and [reject] race cleanly: exactly one
    wins, the losers observe [false]. Every wait ([force]/[await]/
    [await_for]/[force_until]) on a terminated future raises its terminal
    exception instead of spinning, so no waiter ever hangs on an op that
    will never be applied. *)

type 'a t

val create : unit -> 'a t
(** A pending future with no evaluator ([force] on it spin-waits). *)

val create_with : evaluator:(unit -> unit) -> 'a t
(** A pending future whose [force] runs [evaluator] to make the result
    ready. The evaluator must cause [fulfil] (directly or transitively);
    [force] verifies this and raises [Stuck] otherwise. *)

val of_value : 'a -> 'a t
(** An already-fulfilled future — used for operations that are eliminated
    or combined at invocation time, and for treating non-future return
    values as "futures that are evaluated immediately" (§4). *)

exception Already_fulfilled

val fulfil : 'a t -> 'a -> unit
(** Write the result and set it ready. Any thread may call this, once.
    @raise Already_fulfilled on a second fulfilment, or if the future was
    cancelled or poisoned first. *)

val try_fulfil : 'a t -> 'a -> bool
(** Like [fulfil] but returns [false] instead of raising. *)

exception Cancelled
(** Terminal state of a future whose owner withdrew the pending op with
    [cancel] before it was applied. Raised by every wait on it. *)

exception Broken of exn
(** Terminal state of a future marked unfulfillable by [poison]; carries
    the poisoner's reason. Raised by every wait on it. *)

exception Orphaned
(** The canonical [Broken] payload used by the recovery layer: the op's
    owner died before the op could be applied, and a recovery hook
    ([abandon] on the owner's handle) poisoned the future. *)

exception Rejected
(** Terminal state of a future refused by admission control before its
    op was ever accepted into a pending window. Distinct from
    [Cancelled] (the owner withdrew an accepted op) and [Broken] (an
    accepted op was lost): a rejected op left no trace in any structure,
    so resubmitting it — see {!retry} — is always safe. *)

val cancel : 'a t -> bool
(** [cancel t] withdraws the pending operation: CAS pending → cancelled.
    Returns [false] if the future was already applied, cancelled or
    poisoned — losing the race to a concurrent [fulfil] is clean, the
    fulfilled value stands. Owner thread only (the owner is the only
    thread entitled to withdraw its own op); the data structure skips
    cancelled ops at flush time via their tombstoned window slots. *)

val poison : 'a t -> exn -> bool
(** [poison t e] marks an orphan: CAS pending → [Broken e]. Any thread
    may call it (unlike [cancel] it does not withdraw a live owner's op —
    it marks an op whose owner is gone so waiters stop spinning).
    Returns [false] if the future already reached a terminal state. *)

val reject : 'a t -> bool
(** [reject t] refuses the op at admission: CAS pending → rejected.
    Called by the overload-control layer on a future whose op it never
    admitted; waiters raise [Rejected]. Returns [false] if the future
    already reached a terminal state. *)

val rejected : unit -> 'a t
(** A born-rejected future — what an admission gate hands back when it
    sheds a request before any structure saw the op. *)

val is_ready : 'a t -> bool
(** The paper's [resultReady] test: does a result exist yet? Cancelled
    and poisoned futures are not ready. *)

val is_pending : 'a t -> bool
(** Still awaiting its fate: not applied, cancelled or poisoned. *)

val is_cancelled : 'a t -> bool
val is_poisoned : 'a t -> bool
val is_rejected : 'a t -> bool

val peek : 'a t -> 'a option
(** The result if ready, without forcing. *)

exception Stuck
(** Raised by [force] when a future has no evaluator installed, is not
    being fulfilled by anyone, and would therefore wait forever. *)

val force : 'a t -> 'a
(** Evaluate ("touch") the future: if pending, run its evaluator, then
    return the result. Idempotent; subsequent calls return the cached
    result. Must only be called by the owner thread.
    @raise Stuck if no evaluator is installed and the result does not
    become ready after a bounded wait.
    @raise Cancelled / [Broken _] if the future reached that terminal
    state (the evaluator is not run). *)

val await : 'a t -> 'a
(** Spin (with backoff) until some other thread fulfils the future, then
    return the result. Unlike [force], never runs the evaluator — for
    consumers that know a producer will fulfil.
    @raise Cancelled / [Broken _] if the future is terminated instead of
    fulfilled — e.g. the producer died and recovery poisoned the op. *)

exception Timeout
(** Raised by the bounded waits below when their deadline passes while
    the future is still pending. The future itself is untouched: it may
    still be fulfilled later, and the owner may retry or switch to the
    unbounded wait. *)

val force_until : 'a t -> deadline:float -> 'a
(** [force_until t ~deadline] is [force t], except that the
    no-evaluator wait for a concurrent fulfiller is bounded by the
    absolute monotonic time [deadline] (as returned by [Sync.Mono.now];
    immune to wall-clock jumps) instead of a fixed round count.
    @raise Timeout if the deadline passes first — the graceful
    alternative to spinning on a fulfiller that died.
    @raise Stuck if an installed evaluator returns without fulfilling
    (evaluators run to completion; the deadline does not abort them). *)

val await_for : 'a t -> seconds:float -> 'a
(** [await_for t ~seconds] is [await t] bounded by a relative timeout
    measured on the monotonic clock.
    @raise Timeout if no thread fulfils the future within [seconds]. *)

val set_evaluator : 'a t -> (unit -> unit) -> unit
(** Install or replace the evaluator. Owner thread only. *)

val retry : ?attempts:int -> (unit -> 'a t) -> 'a t
(** [retry ~attempts f] is the bounded-resubmission path for [Rejected]
    — and only [Rejected]: cancelled and poisoned futures name ops that
    were accepted, where blind resubmission could double-apply. [f] is
    called up to [attempts] (default 3) times; after each future that
    comes back already rejected the caller backs off (yielding, so a
    shedding service is not hammered by its own clients) and resubmits.
    The last attempt's future is returned as-is — still rejected if the
    admission gate never relented. Raises [Invalid_argument] if
    [attempts < 1]. *)

(** {2 Combinators}

    Derived futures for composing pending operations; forcing the derived
    future forces its parents. They share the owner's thread, so the
    at-most-once / owner-only discipline extends to them. Terminal states
    propagate: forcing a derived future whose parent was cancelled or
    poisoned raises the parent's exception (not [Stuck]) and terminates
    the derived future the same way, so later forces short-circuit. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** [map f fut] is a future for [f] applied to [fut]'s result; forcing it
    forces [fut]. [f] runs at most once, at forcing time. *)

val both : 'a t -> 'b t -> ('a * 'b) t
(** [both a b] forces [a] then [b] when forced. *)

val all : 'a t list -> 'a list t
(** [all fs] forces every future in order when forced; useful for
    treating a slack window as a single batch result. *)
