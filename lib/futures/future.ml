type 'a state =
  | Pending
  | Ready of 'a
  | Terminated of exn
      (* Terminal failure: the exception every wait on this future raises.
         [Cancelled] when the owner withdrew the pending op, [Broken e]
         when another thread poisoned an orphan. *)

type 'a t = {
  state : 'a state Atomic.t;
  (* Owner-private: written at creation / by set_evaluator, read by force,
     all on the owner thread, so no atomicity is needed. *)
  mutable evaluator : (unit -> unit) option;
  (* Obs birth stamp (monotonic ns); 0 = created while obs was off, so
     terminal transitions never report a garbage pendingness. *)
  born : int;
}

exception Already_fulfilled
exception Stuck
exception Timeout
exception Cancelled
exception Broken of exn
exception Orphaned
exception Rejected

let create () =
  { state = Atomic.make Pending; evaluator = None; born = Obs.future_created () }

let create_with ~evaluator =
  {
    state = Atomic.make Pending;
    evaluator = Some evaluator;
    born = Obs.future_created ();
  }

(* Born fulfilled: no pending window, so nothing to observe. *)
let of_value v = { state = Atomic.make (Ready v); evaluator = None; born = 0 }

let try_fulfil t v =
  Faults.point "future.fulfil";
  let won = Atomic.compare_and_set t.state Pending (Ready v) in
  if won then Obs.future_fulfilled ~born:t.born;
  won

let fulfil t v = if not (try_fulfil t v) then raise Already_fulfilled

let cancel t =
  let won = Atomic.compare_and_set t.state Pending (Terminated Cancelled) in
  if won then Obs.future_cancelled ~born:t.born;
  won

let poison t e =
  let won = Atomic.compare_and_set t.state Pending (Terminated (Broken e)) in
  if won then Obs.future_poisoned ~born:t.born;
  won

(* Admission control's terminal fate: the op was never accepted, so
   unlike [cancel] (owner withdrew) and [poison] (owner died) there is
   nothing to withdraw or recover — the caller may resubmit. *)
let reject t =
  let won = Atomic.compare_and_set t.state Pending (Terminated Rejected) in
  if won then Obs.future_rejected ~born:t.born;
  won

let rejected () =
  { state = Atomic.make (Terminated Rejected); evaluator = None; born = 0 }

let is_ready t =
  match Atomic.get t.state with Ready _ -> true | Pending | Terminated _ -> false

let is_pending t =
  match Atomic.get t.state with Pending -> true | Ready _ | Terminated _ -> false

let is_cancelled t =
  match Atomic.get t.state with
  | Terminated Cancelled -> true
  | Pending | Ready _ | Terminated _ -> false

let is_poisoned t =
  match Atomic.get t.state with
  | Terminated (Broken _) -> true
  | Pending | Ready _ | Terminated _ -> false

let is_rejected t =
  match Atomic.get t.state with
  | Terminated Rejected -> true
  | Pending | Ready _ | Terminated _ -> false

let peek t =
  match Atomic.get t.state with Ready v -> Some v | Pending | Terminated _ -> None

let set_evaluator t f = t.evaluator <- Some f

(* How many backoff rounds [force] waits for an evaluator-less future
   before concluding nobody will ever fulfil it. [await] has no such bound:
   it is specified as "a producer will fulfil". *)
let stuck_rounds = 1000

let await t =
  Faults.point "future.await";
  let b = Sync.Backoff.create () in
  let rec loop () =
    match Atomic.get t.state with
    | Ready v -> v
    | Terminated e -> raise e
    | Pending ->
        Sync.Backoff.once b;
        loop ()
  in
  loop ()

let await_for t ~seconds =
  Faults.point "future.await";
  match Atomic.get t.state with
  | Ready v -> v
  | Terminated e -> raise e
  | Pending ->
      let deadline = Sync.Mono.now () +. seconds in
      let b = Sync.Backoff.create () in
      let rec loop () =
        match Atomic.get t.state with
        | Ready v -> v
        | Terminated e -> raise e
        | Pending ->
            if Sync.Mono.now () >= deadline then raise Timeout;
            Sync.Backoff.once b;
            loop ()
      in
      loop ()

let rec force t =
  Faults.point "future.force";
  (* Only a force that finds the future unresolved is timed: the force
     histogram then measures actual waiting/helping, and the common
     force-after-flush of an already-fulfilled future costs no clock
     reads. *)
  match Atomic.get t.state with
  | Ready v -> v
  | Terminated e -> raise e
  | Pending ->
      let t0 = Obs.force_begin () in
      let v = force_body t in
      Obs.future_forced ~t0;
      v

and force_body t =
  match Atomic.get t.state with
  | Ready v -> v
  | Terminated e -> raise e
  | Pending -> (
      match t.evaluator with
      | Some eval -> (
          eval ();
          match Atomic.get t.state with
          | Ready v -> v
          | Terminated e -> raise e
          | Pending -> raise Stuck)
      | None ->
          (* No evaluator: give concurrent fulfillers a bounded chance. *)
          let b = Sync.Backoff.create () in
          let rec wait rounds =
            match Atomic.get t.state with
            | Ready v -> v
            | Terminated e -> raise e
            | Pending ->
                if rounds = 0 then raise Stuck;
                Sync.Backoff.once b;
                wait (rounds - 1)
          in
          wait stuck_rounds)

let rec force_until t ~deadline =
  Faults.point "future.force";
  match Atomic.get t.state with
  | Ready v -> v
  | Terminated e -> raise e
  | Pending ->
      let t0 = Obs.force_begin () in
      let v = force_until_body t ~deadline in
      Obs.future_forced ~t0;
      v

and force_until_body t ~deadline =
  match Atomic.get t.state with
  | Ready v -> v
  | Terminated e -> raise e
  | Pending -> (
      match t.evaluator with
      | Some eval -> (
          (* The evaluator is the owner's own code: run it to completion
             (aborting it midway could leave the structure's pending
             lists half-applied); the deadline bounds only the wait on
             other threads. *)
          eval ();
          match Atomic.get t.state with
          | Ready v -> v
          | Terminated e -> raise e
          | Pending -> raise Stuck)
      | None ->
          let b = Sync.Backoff.create () in
          let rec wait () =
            match Atomic.get t.state with
            | Ready v -> v
            | Terminated e -> raise e
            | Pending ->
                if Sync.Mono.now () >= deadline then raise Timeout;
                Sync.Backoff.once b;
                wait ()
          in
          wait ())

(* A derived future inherits its parent's terminal state: forcing it
   raises the parent's [Cancelled]/[Broken] rather than [Stuck], and the
   derived future itself terminates so later forces short-circuit. *)
let terminate t e =
  if Atomic.compare_and_set t.state Pending (Terminated e) then
    match e with
    | Broken _ -> Obs.future_poisoned ~born:t.born
    | Rejected -> Obs.future_rejected ~born:t.born
    | _ -> Obs.future_cancelled ~born:t.born

let map f fut =
  let t = create () in
  set_evaluator t (fun () ->
      match force fut with
      | v -> fulfil t (f v)
      | exception ((Cancelled | Broken _ | Rejected) as e) ->
          terminate t e;
          raise e);
  t

let both a b =
  let t = create () in
  set_evaluator t (fun () ->
      match
        let va = force a in
        let vb = force b in
        (va, vb)
      with
      | pair -> fulfil t pair
      | exception ((Cancelled | Broken _ | Rejected) as e) ->
          terminate t e;
          raise e);
  t

let all fs =
  let t = create () in
  set_evaluator t (fun () ->
      match List.map force fs with
      | vs -> fulfil t vs
      | exception ((Cancelled | Broken _ | Rejected) as e) ->
          terminate t e;
          raise e);
  t

(* ------------------------ bounded resubmission ----------------------- *)

(* The retry path for [Rejected] — and only [Rejected]: a cancelled or
   poisoned future names an op that was accepted and then withdrawn or
   lost, where blind resubmission could double-apply it; a rejected one
   was never accepted, so resubmitting is always safe. Each attempt that
   comes back already-rejected backs off (with the yielding Backoff, so
   a shedding service is not hammered by its own clients) and tries
   again; the last attempt's future is returned as-is, rejected or not. *)
let retry ?(attempts = 3) f =
  if attempts < 1 then invalid_arg "Future.retry: attempts must be >= 1";
  let b = Sync.Backoff.create () in
  let rec go n =
    let t = f () in
    if n > 1 && is_rejected t then begin
      Sync.Backoff.once b;
      go (n - 1)
    end
    else t
  in
  go attempts
