type 'a state = Pending | Ready of 'a

type 'a t = {
  state : 'a state Atomic.t;
  (* Owner-private: written at creation / by set_evaluator, read by force,
     all on the owner thread, so no atomicity is needed. *)
  mutable evaluator : (unit -> unit) option;
}

exception Already_fulfilled
exception Stuck
exception Timeout

let create () = { state = Atomic.make Pending; evaluator = None }

let create_with ~evaluator =
  { state = Atomic.make Pending; evaluator = Some evaluator }

let of_value v = { state = Atomic.make (Ready v); evaluator = None }

let try_fulfil t v =
  Faults.point "future.fulfil";
  Atomic.compare_and_set t.state Pending (Ready v)

let fulfil t v = if not (try_fulfil t v) then raise Already_fulfilled

let is_ready t =
  match Atomic.get t.state with Ready _ -> true | Pending -> false

let peek t = match Atomic.get t.state with Ready v -> Some v | Pending -> None

let set_evaluator t f = t.evaluator <- Some f

(* How many backoff rounds [force] waits for an evaluator-less future
   before concluding nobody will ever fulfil it. [await] has no such bound:
   it is specified as "a producer will fulfil". *)
let stuck_rounds = 1000

let await t =
  Faults.point "future.await";
  let b = Sync.Backoff.create () in
  let rec loop () =
    match Atomic.get t.state with
    | Ready v -> v
    | Pending ->
        Sync.Backoff.once b;
        loop ()
  in
  loop ()

let await_for t ~seconds =
  Faults.point "future.await";
  match Atomic.get t.state with
  | Ready v -> v
  | Pending ->
      let deadline = Unix.gettimeofday () +. seconds in
      let b = Sync.Backoff.create () in
      let rec loop () =
        match Atomic.get t.state with
        | Ready v -> v
        | Pending ->
            if Unix.gettimeofday () >= deadline then raise Timeout;
            Sync.Backoff.once b;
            loop ()
      in
      loop ()

let force t =
  Faults.point "future.force";
  match Atomic.get t.state with
  | Ready v -> v
  | Pending -> (
      match t.evaluator with
      | Some eval -> (
          eval ();
          match Atomic.get t.state with
          | Ready v -> v
          | Pending -> raise Stuck)
      | None ->
          (* No evaluator: give concurrent fulfillers a bounded chance. *)
          let b = Sync.Backoff.create () in
          let rec wait rounds =
            match Atomic.get t.state with
            | Ready v -> v
            | Pending ->
                if rounds = 0 then raise Stuck;
                Sync.Backoff.once b;
                wait (rounds - 1)
          in
          wait stuck_rounds)

let force_until t ~deadline =
  Faults.point "future.force";
  match Atomic.get t.state with
  | Ready v -> v
  | Pending -> (
      match t.evaluator with
      | Some eval -> (
          (* The evaluator is the owner's own code: run it to completion
             (aborting it midway could leave the structure's pending
             lists half-applied); the deadline bounds only the wait on
             other threads. *)
          eval ();
          match Atomic.get t.state with
          | Ready v -> v
          | Pending -> raise Stuck)
      | None ->
          let b = Sync.Backoff.create () in
          let rec wait () =
            match Atomic.get t.state with
            | Ready v -> v
            | Pending ->
                if Unix.gettimeofday () >= deadline then raise Timeout;
                Sync.Backoff.once b;
                wait ()
          in
          wait ())

let map f fut =
  let t = create () in
  set_evaluator t (fun () -> fulfil t (f (force fut)));
  t

let both a b =
  let t = create () in
  set_evaluator t (fun () ->
      let va = force a in
      let vb = force b in
      fulfil t (va, vb));
  t

let all fs =
  let t = create () in
  set_evaluator t (fun () -> fulfil t (List.map force fs));
  t
