(** Deterministic splitmix64 pseudo-random numbers.

    Lives at the bottom of the library stack so that both workload
    generation ({!Workload.Rng} re-exports this module) and fault
    schedules draw from the same generator. Every thread derives its own
    stream from (seed, stream id), so runs are reproducible regardless of
    interleaving and no two threads share generator state. *)

type t

val create : seed:int -> stream:int -> t
(** A generator for logical stream [stream] (e.g. the thread index) of the
    experiment [seed]. *)

val next : t -> int
(** Next raw 62-bit non-negative value. *)

val below : t -> int -> int
(** [below t n] is uniform in [0, n). Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
