(** Deterministic fault injection for helper-based concurrency.

    The paper's designs (futures with slack, flat combining, strong-FL
    evaluation) all let one thread apply {e another} thread's pending
    operations. That delegation is exactly what makes them fragile: a
    slow or dead helper turns every waiter's spin loop into a hang. This
    module plants named {e injection points} on those hot paths so a
    seeded schedule can provoke the bad interleavings on demand —
    delays, [Domain.cpu_relax] storms, forced yields, or simulated
    thread death — while costing a single atomic load when disabled.

    Two modes, composable:

    - {e Seeded chaos} ([enable ~seed], or the [FLDS_FAULTS=<seed>]
      environment variable at program start): every point hit draws from
      a per-domain splitmix stream and, with small probability, perturbs
      the schedule. Kill actions are opt-in ([~kill:true]); the
      environment variable never kills, so [FLDS_FAULTS=n dune runtest]
      is a pure schedule-perturbation run.
    - {e Scripts} ([on point f]): the [k]-th hit of a named point
      performs [f k]. Scripts override the seeded draw for their point
      and are how tests record exact fault schedules (stall the combiner
      on pass 2 for 30 ms, kill the third fulfil, …).

    Current points: [backoff.once], [spinlock.acquire], [future.fulfil],
    [future.force], [future.await], [fc.apply], [fc.pass], [fc.record],
    [elim.exchange], [elim.offer], [elim.park], [conformance.round],
    [bench.op], [fuzz.step], [tune.epoch], the sharded-map transfer
    protocol's [shard.grant], [shard.ship], [shard.ack] (each fired
    immediately before the corresponding ownership CAS, so a kill there
    is a death {e between} protocol states and the surviving endpoint
    recovers by lease deadline), and the service layer's
    [service.admit] (every admission decision), [service.shed] (every
    refusal), [service.degrade] (the transition into read-only degraded
    service) and [service.epoch] (top of each admission-controller
    epoch — a kill there strands the last-good overload stage, which
    the service must survive). *)

exception Killed of string
(** Simulated thread death, carrying the injection-point name. Raised
    out of [point]; never caught by this module — the victim's domain
    unwinds exactly as if the thread had been lost. *)

type action =
  | Nothing
  | Delay of int  (** spin [Domain.cpu_relax] this many times *)
  | Sleep of float  (** forced yield: sleep this many seconds *)
  | Kill  (** raise {!Killed} at the point *)

val point : string -> unit
(** [point name] is the hook compiled into hot paths. A no-op (one
    atomic load, no allocation) unless faults are enabled or a script is
    installed for any point. May raise {!Killed}. *)

(** {2 Seeded chaos} *)

val enable : ?kill:bool -> ?prob:float -> seed:int -> unit -> unit
(** Turn every point hit into a seeded draw: with probability [prob]
    (default [0.02]) the hit performs a random delay, storm or yield —
    and, when [kill] is [true] (default [false]), occasionally raises
    {!Killed}. Each domain draws from its own [Rng] stream derived from
    [seed], so a single-domain schedule is exactly reproducible and a
    multi-domain one is reproducible per domain. *)

val disable : unit -> unit
(** Stop seeded chaos. Scripts installed with {!on} keep firing. *)

val enabled : unit -> bool
(** Whether seeded chaos is active (scripts do not count). *)

(** {2 Scripted schedules} *)

val on : string -> (int -> action) -> unit
(** [on name f] makes the [k]-th hit (0-based, counted from the last
    {!reset_counters}) of point [name] perform [f k], overriding any
    seeded draw for that point. Replaces a previous script for [name]. *)

val clear : string -> unit
(** Remove the script for [name], if any. *)

type plan_step = { pt : string; at : int; act : action }
(** One step of a scripted perturbation plan: the [at]-th hit (0-based)
    of point [pt] performs [act]. *)

val install_plan : plan_step list -> unit
(** Install a whole perturbation plan at once: zero the hit counters
    (so [at] indices count from now) and script every point named in the
    list; hits not named perform nothing. Later steps for the same
    [(pt, at)] pair override earlier ones. Replaces any existing script
    for the named points, leaves other points' scripts alone; remove
    with {!clear_all}. This is the replayable-schedule driver used by
    the fuzzer: a plan is pure data, so the same plan produces the same
    injected schedule. *)

val uninstall_plan : plan_step list -> unit
(** Undo {!install_plan} for the same plan: clear the scripts of exactly
    the points the plan named (unrelated scripts keep firing) and zero
    the hit counters. Every installer must pair [install_plan] with
    [uninstall_plan] on all exit paths — the fuzzer's executor and the
    {!Workload} runner do this under [Fun.protect]. *)

val clear_all : unit -> unit
(** Remove every script, disable seeded chaos, and zero hit counters:
    back to the no-fault state. Call between recorded schedules. *)

(** {2 Diagnostics} *)

val hits : string -> int
(** Number of times [point name] was reached while injection was active
    (hits are not counted on the disabled fast path). *)

val reset_counters : unit -> unit
(** Zero all hit counters (script indices restart at 0). *)

module Rng = Rng
(** The deterministic splitmix generator, re-exported for schedule
    construction; {!Workload.Rng} is the same module. *)
