module Rng = Rng

exception Killed of string

type action = Nothing | Delay of int | Sleep of float | Kill

type config = { seed : int; prob : float; kill : bool }

(* [active] is the one word the disabled fast path reads: true iff seeded
   chaos is on or at least one script is installed. Everything else is
   reached only on the slow path. *)
let active = Atomic.make false
let config : config option Atomic.t = Atomic.make None
let scripts : (string * (int -> action)) list Atomic.t = Atomic.make []

let refresh_active () =
  Atomic.set active (Atomic.get config <> None || Atomic.get scripts <> [])

(* Per-point hit counters, published as an immutable association list so
   concurrent domains can read while another registers a new point. *)
let counters : (string * int Atomic.t) list Atomic.t = Atomic.make []

let rec counter name =
  match List.assoc_opt name (Atomic.get counters) with
  | Some c -> c
  | None ->
      let cur = Atomic.get counters in
      (match List.assoc_opt name cur with
      | Some c -> c
      | None ->
          let c = Atomic.make 0 in
          if Atomic.compare_and_set counters cur ((name, c) :: cur) then c
          else counter name)

let hits name =
  match List.assoc_opt name (Atomic.get counters) with
  | Some c -> Atomic.get c
  | None -> 0

let reset_counters () =
  List.iter (fun (_, c) -> Atomic.set c 0) (Atomic.get counters)

(* Each domain draws from its own stream of the configured seed, so the
   schedule a domain experiences is a deterministic function of
   (seed, domain id, hit sequence). *)
let rng_key : (int * Rng.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let domain_rng cfg =
  let slot = Domain.DLS.get rng_key in
  match !slot with
  | Some (seed, rng) when seed = cfg.seed -> rng
  | _ ->
      let rng = Rng.create ~seed:cfg.seed ~stream:(Domain.self () :> int) in
      slot := Some (cfg.seed, rng);
      rng

let draw cfg =
  let rng = domain_rng cfg in
  if Rng.float rng >= cfg.prob then Nothing
  else
    match Rng.below rng (if cfg.kill then 16 else 15) with
    | 0 | 1 | 2 | 3 | 4 | 5 -> Delay (1 + Rng.below rng 512)
    | 6 | 7 | 8 -> Delay (1 + Rng.below rng 16_384) (* cpu_relax storm *)
    | 9 | 10 | 11 | 12 | 13 ->
        Sleep (1e-6 *. float_of_int (1 + Rng.below rng 50))
    | 14 -> Sleep (1e-4 *. float_of_int (1 + Rng.below rng 10)) (* long stall *)
    | _ -> Kill

let perform name = function
  | Nothing -> ()
  | Delay n ->
      for _ = 1 to n do
        Domain.cpu_relax ()
      done
  | Sleep s -> Unix.sleepf s
  | Kill -> raise (Killed name)

let hit name =
  let k = Atomic.fetch_and_add (counter name) 1 in
  match List.assoc_opt name (Atomic.get scripts) with
  | Some f -> perform name (f k)
  | None -> (
      match Atomic.get config with
      | Some cfg -> perform name (draw cfg)
      | None -> ())

let point name = if Atomic.get active then hit name

let enable ?(kill = false) ?(prob = 0.02) ~seed () =
  if prob < 0.0 || prob > 1.0 then
    invalid_arg "Faults.enable: prob must be in [0, 1]";
  Atomic.set config (Some { seed; prob; kill });
  refresh_active ()

let disable () =
  Atomic.set config None;
  refresh_active ()

let enabled () = Atomic.get config <> None

let on name f =
  let rec update () =
    let cur = Atomic.get scripts in
    let next = (name, f) :: List.remove_assoc name cur in
    if not (Atomic.compare_and_set scripts cur next) then update ()
  in
  update ();
  refresh_active ()

let clear name =
  let rec update () =
    let cur = Atomic.get scripts in
    let next = List.remove_assoc name cur in
    if not (Atomic.compare_and_set scripts cur next) then update ()
  in
  update ();
  refresh_active ()

let clear_all () =
  Atomic.set scripts [];
  Atomic.set config None;
  refresh_active ();
  reset_counters ()

type plan_step = { pt : string; at : int; act : action }

(* A plan compiles to one script per named point, backed by a hit→action
   table. The tables are frozen before the script is installed, so
   concurrent domains only ever read them. *)
let install_plan steps =
  let tbl : (string, (int, action) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let sub =
        match Hashtbl.find_opt tbl s.pt with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 4 in
            Hashtbl.add tbl s.pt t;
            t
      in
      Hashtbl.replace sub s.at s.act)
    steps;
  reset_counters ();
  Hashtbl.iter
    (fun pt sub ->
      on pt (fun k ->
          match Hashtbl.find_opt sub k with Some a -> a | None -> Nothing))
    tbl

(* Inverse of [install_plan] for the same plan: clear exactly the points
   the plan scripted (leaving unrelated scripts alone) and zero the
   counters so the next plan's [at] indices count from a clean slate. *)
let uninstall_plan steps =
  List.iter clear (List.sort_uniq compare (List.map (fun s -> s.pt) steps));
  reset_counters ()

(* [FLDS_FAULTS=<seed>] arms schedule perturbation (never kills) for the
   whole process — the `make chaos` entry point. *)
let () =
  match Sys.getenv_opt "FLDS_FAULTS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some seed -> enable ~seed ()
      | None -> ())
  | None -> ()
