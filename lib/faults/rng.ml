(* splitmix64-style generator (Steele, Lea & Flood 2014) adapted to
   OCaml's 63-bit ints: the multiplicative constants are the originals
   truncated to 62 bits, and overflow wraps modulo 2^63. The statistical
   quality is below the genuine 64-bit splitmix but far more than adequate
   for workload generation. *)

type t = { mutable state : int }

let golden_gamma = 0x1e3779b97f4a7c15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let create ~seed ~stream =
  (* Decorrelate streams by mixing the stream id into the seed. *)
  { state = mix (seed + ((stream + 1) * golden_gamma)) }

let next t =
  t.state <- t.state + golden_gamma;
  mix t.state land max_int

let below t n =
  if n <= 0 then invalid_arg "Rng.below: bound must be positive";
  next t mod n

let float t = Stdlib.float_of_int (next t) /. Stdlib.float_of_int max_int

let bool t = next t land 1 = 1
