module type KEY = sig
  type t

  val compare : t -> t -> int
end

module Make (K : KEY) = struct
  (* A link both points to the next node and carries this node's deletion
     mark ([Dead]). Marking freezes the link: a [Dead] link is never CASed
     again, so chains out of deleted nodes always lead forward into the
     live list. CAS compares links by physical equality. *)
  type node = { key : K.t; next : link Atomic.t }
  and link = Live of node option | Dead of node option

  type t = {
    head : link Atomic.t; (* always Live: the pseudo-node before the list *)
    casc : Sync.Cas_counter.t;
  }

  type place = Root | At of node

  type position = place

  let create () =
    { head = Sync.Padded.atomic (Live None); casc = Sync.Cas_counter.create () }

  let head_position _t = Root

  let cell t = function Root -> t.head | At n -> n.next

  let target = function Live x | Dead x -> x

  let same_node a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> x == y
    | None, Some _ | Some _, None -> false

  let counted_cas t c expected desired =
    Sync.Cas_counter.incr t.casc;
    Atomic.compare_and_set c expected desired

  let is_dead n = match Atomic.get n.next with Dead _ -> true | Live _ -> false

  (* Find (left, left_link, right): [right] is the first node with
     key >= k reachable from [start]; [left] is the last node before it
     that was live when passed, and [left_link] is the Live link observed
     at [left] whose target is exactly [right] (dead nodes in between have
     been snipped). [right] was unmarked when checked. *)
  let rec search t start k =
    let restart () = search t Root k in
    match Atomic.get (cell t start) with
    | Dead _ -> restart () (* the start node itself was deleted *)
    | Live first as start_link ->
        let rec walk left left_link curr =
          match curr with
          | None -> finish left left_link None
          | Some n -> (
              match Atomic.get n.next with
              | Dead succ -> walk left left_link succ (* skip marked node *)
              | Live succ as lk ->
                  if K.compare n.key k >= 0 then finish left left_link curr
                  else walk (At n) lk succ)
        and finish left left_link right =
          let ok_link =
            if same_node (target left_link) right then Some left_link
            else begin
              (* Physically unlink the marked nodes between left and right. *)
              let fresh = Live right in
              if counted_cas t (cell t left) left_link fresh then Some fresh
              else None
            end
          in
          match ok_link with
          | None -> restart ()
          | Some link -> (
              (* Harris's re-check: right must still be unmarked, so the
                 caller may decide presence/absence at this instant. *)
              match right with
              | Some r when is_dead r -> restart ()
              | _ -> (left, link, right))
        in
        walk start start_link first

  (* Positions handed back to callers: the node may die later; operations
     re-validate. [start_of] falls back to Root when the position's node is
     already marked (a stale position could hide newly inserted keys). *)
  let start_of pos =
    match pos with
    | Root -> Root
    | At n -> if is_dead n then Root else pos

  let rec insert_loop t start k =
    let left, left_link, right = search t start k in
    match right with
    | Some r when K.compare r.key k = 0 -> (false, left)
    | _ ->
        let n = { key = k; next = Atomic.make (Live right) } in
        if counted_cas t (cell t left) left_link (Live (Some n)) then
          (true, left)
        else insert_loop t Root k

  let rec remove_loop t start k =
    let left, left_link, right = search t start k in
    match right with
    | Some r when K.compare r.key k = 0 -> (
        match Atomic.get r.next with
        | Dead _ ->
            (* Concurrently deleted; search again so we either fail to find
               the key or find a fresh live node with the same key. *)
            remove_loop t Root k
        | Live succ as lk ->
            if counted_cas t r.next lk (Dead succ) then begin
              (* Best-effort physical unlink; a failure leaves it to the
                 next traversal. *)
              ignore (counted_cas t (cell t left) left_link (Live succ));
              (true, left)
            end
            else remove_loop t Root k)
    | _ -> (false, left)

  (* Wait-free read-only membership: walk skipping marked nodes, no CAS. *)
  let contains_walk t start k =
    let first =
      match Atomic.get (cell t start) with Live x | Dead x -> x
    in
    let rec loop last_live curr =
      match curr with
      | None -> (false, last_live)
      | Some n -> (
          match Atomic.get n.next with
          | Dead succ -> loop last_live succ
          | Live succ ->
              let c = K.compare n.key k in
              if c < 0 then loop (At n) succ else ((c = 0), last_live))
    in
    loop start first

  let insert t k = fst (insert_loop t Root k)
  let remove t k = fst (remove_loop t Root k)
  let contains t k = fst (contains_walk t Root k)

  let insert_from t pos k = insert_loop t (start_of pos) k
  let remove_from t pos k = remove_loop t (start_of pos) k
  let contains_from t pos k = contains_walk t (start_of pos) k

  let to_list t =
    let rec loop acc curr =
      match curr with
      | None -> List.rev acc
      | Some n -> (
          match Atomic.get n.next with
          | Dead succ -> loop acc succ
          | Live succ -> loop (n.key :: acc) succ)
    in
    loop [] (target (Atomic.get t.head))

  let is_empty t = to_list t = []
  let length t = List.length (to_list t)

  let cas_count t = Sync.Cas_counter.total t.casc
  let reset_cas_count t = Sync.Cas_counter.reset t.casc
end
