(** Michael & Scott's lock-free FIFO queue (PODC 1996), extended with
    combining-friendly batch operations.

    [enqueue_list] splices a locally built chain after the current last
    node with one successful CAS (plus one CAS to swing the tail), and
    [dequeue_many] advances the head pointer over up to [n] nodes with one
    successful CAS — the two-CAS insertion / one-CAS removal primitive the
    weak- and medium-FL queues rely on (Kogan & Herlihy §4.2).

    The queue tolerates a lagging tail: any operation that passes the tail
    helps swing it forward first, so the standard invariants hold. *)

type 'a t

val create : unit -> 'a t

val enqueue : 'a t -> 'a -> unit

val dequeue : 'a t -> 'a option
(** [dequeue t] removes and returns the oldest element, or [None]. *)

val peek : 'a t -> 'a option

val enqueue_list : 'a t -> 'a list -> unit
(** [enqueue_list t [x1; ...; xn]] atomically appends the whole chain;
    [x1] becomes the oldest of the new elements. No-op on []. *)

val dequeue_many : 'a t -> int -> 'a list
(** [dequeue_many t n] atomically removes up to [n] elements, returned
    oldest-first; fewer when the queue runs out.
    Raises [Invalid_argument] if [n < 0]. *)

val enqueue_seg : 'a t -> n:int -> get:(int -> 'a) -> unit
(** [enqueue_seg t ~n ~get] is [enqueue_list] over the indexed segment
    [get 0 .. get (n-1)] ([get 0] becomes the oldest); allocates only
    the [n] spliced nodes — the zero-copy path for ring-buffer flushes.
    Raises [Invalid_argument] if [n < 0]. *)

val dequeue_seg : 'a t -> n:int -> f:(int -> 'a -> unit) -> int
(** [dequeue_seg t ~n ~f] is [dequeue_many] without the result list: up
    to [n] elements are removed with one successful head CAS and handed
    to [f i v] oldest-first (i = 0). Returns the count actually
    dequeued. [f] runs after the CAS, on a detached chain.
    Raises [Invalid_argument] if [n < 0]. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** O(n) snapshot; exact only in quiescent states. *)

val to_list : 'a t -> 'a list
(** Oldest-first snapshot; consistent only in quiescent states. *)

val cas_count : 'a t -> int
(** Total CAS attempts issued against this queue. *)

val reset_cas_count : 'a t -> unit
