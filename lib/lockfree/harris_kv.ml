module Make (K : Harris_list.KEY) = struct
  (* Structure and invariants are identical to Harris_list; nodes carry an
     immutable value, so the marking/unlinking arguments are unchanged. *)
  type 'v node = { key : K.t; value : 'v; next : 'v link Atomic.t }
  and 'v link = Live of 'v node option | Dead of 'v node option

  type 'v t = { head : 'v link Atomic.t; casc : Sync.Cas_counter.t }

  type 'v place = Root | At of 'v node

  type 'v position = 'v place

  let create () =
    { head = Atomic.make (Live None); casc = Sync.Cas_counter.create () }

  let head_position _t = Root

  let cell t = function Root -> t.head | At n -> n.next

  let target = function Live x | Dead x -> x

  let same_node a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> x == y
    | None, Some _ | Some _, None -> false

  let counted_cas t c expected desired =
    Sync.Cas_counter.incr t.casc;
    Atomic.compare_and_set c expected desired

  let is_dead n =
    match Atomic.get n.next with Dead _ -> true | Live _ -> false

  let rec search t start k =
    let restart () = search t Root k in
    match Atomic.get (cell t start) with
    | Dead _ -> restart ()
    | Live first as start_link ->
        let rec walk left left_link curr =
          match curr with
          | None -> finish left left_link None
          | Some n -> (
              match Atomic.get n.next with
              | Dead succ -> walk left left_link succ
              | Live succ as lk ->
                  if K.compare n.key k >= 0 then finish left left_link curr
                  else walk (At n) lk succ)
        and finish left left_link right =
          let ok_link =
            if same_node (target left_link) right then Some left_link
            else begin
              let fresh = Live right in
              if counted_cas t (cell t left) left_link fresh then Some fresh
              else None
            end
          in
          match ok_link with
          | None -> restart ()
          | Some link -> (
              match right with
              | Some r when is_dead r -> restart ()
              | _ -> (left, link, right))
        in
        walk start start_link first

  (* A stale position (dead node) could hide newly inserted keys; fall
     back to the head. *)
  let start_of = function
    | Root -> Root
    | At n as pos -> if is_dead n then Root else pos

  let rec insert_loop t start k v =
    let left, left_link, right = search t start k in
    match right with
    | Some r when K.compare r.key k = 0 -> (false, left)
    | _ ->
        let n = { key = k; value = v; next = Atomic.make (Live right) } in
        if counted_cas t (cell t left) left_link (Live (Some n)) then
          (true, left)
        else insert_loop t Root k v

  let rec remove_loop t start k =
    let left, left_link, right = search t start k in
    match right with
    | Some r when K.compare r.key k = 0 -> (
        match Atomic.get r.next with
        | Dead _ -> remove_loop t Root k
        | Live succ as lk ->
            if counted_cas t r.next lk (Dead succ) then begin
              ignore (counted_cas t (cell t left) left_link (Live succ));
              (Some r.value, left)
            end
            else remove_loop t Root k)
    | _ -> (None, left)

  (* Wait-free read-only lookup: walk skipping marked nodes, no CAS. *)
  let find_walk t start k =
    let first = match Atomic.get (cell t start) with Live x | Dead x -> x in
    let rec loop last_live curr =
      match curr with
      | None -> (None, last_live)
      | Some n -> (
          match Atomic.get n.next with
          | Dead succ -> loop last_live succ
          | Live succ ->
              let c = K.compare n.key k in
              if c < 0 then loop (At n) succ
              else ((if c = 0 then Some n.value else None), last_live))
    in
    loop start first

  let insert t k v = fst (insert_loop t Root k v)
  let remove t k = fst (remove_loop t Root k)
  let find t k = fst (find_walk t Root k)

  let insert_from t pos k v = insert_loop t (start_of pos) k v
  let remove_from t pos k = remove_loop t (start_of pos) k
  let find_from t pos k = find_walk t (start_of pos) k

  let bindings t =
    let rec loop acc curr =
      match curr with
      | None -> List.rev acc
      | Some n -> (
          match Atomic.get n.next with
          | Dead succ -> loop acc succ
          | Live succ -> loop ((n.key, n.value) :: acc) succ)
    in
    loop [] (target (Atomic.get t.head))

  let is_empty t = bindings t = []
  let size t = List.length (bindings t)
  let cas_count t = Sync.Cas_counter.total t.casc
end
