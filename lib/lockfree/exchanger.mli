(** Sharded elimination array: a set of cache-line-padded exchange slots
    through which a value producer ("give") and a value consumer
    ("take") pair off without touching any shared structure.

    This factors the exchange machinery of the elimination-backoff stack
    (Hendler, Shavit & Yerushalmi) out of {!Elimination_stack} so the
    futures-based weak stack can eliminate {e across handles} through
    the same array, following the sharded-elimination direction of
    Singh, Metaxakis & Fatourou (see PAPERS.md): one slot saturates
    quickly, so the array is sharded and its {e active width} adapts to
    the collision rate — widening when offers collide in a slot,
    narrowing when parked offers time out unmatched, so lone threads pay
    a single-slot probe while storms spread across the whole array.

    Offers are fresh heap values, never reused, so physical-equality CAS
    on slots is ABA-free. An exchange delivers the given value to
    exactly one taker.

    Every offer carries a three-state cell — waiting, taken/fed,
    cancelled — and claiming races against cancellation on that cell, so
    an offer whose owner withdrew (timed out, or died: an exception
    unwinding through the park loop cancels the offer on the way out)
    can never capture a live partner's value, and a cancelled offer
    found parked in a slot is reclaimed by the next prober.
    Fault-injection points: ["elim.offer"] before an offer is parked,
    ["elim.exchange"] before a parked offer is claimed, ["elim.park"]
    on every round of a parked wait. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 8) is the number of slots; the active width
    starts at [min 2 capacity] and adapts within [1..capacity]. Raises
    [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int

val width : 'a t -> int
(** Current adaptive width (slots actually probed). *)

val width_bounds : 'a t -> int * int
(** [(min, max)] range the adaptive width is confined to; initially
    [(1, capacity)]. *)

val set_width_bounds : ?min:int -> ?max:int -> 'a t -> unit
(** Retune the adaptive-width range (the Tune controller's knob). Each
    given side is clamped to [1..capacity]; when the pair would invert,
    the side being set drags the other along. The current width is
    pulled into the new range. Concurrent-safe: the pair lives in one
    atomic word, so probers never observe a torn min/max. Raises
    [Invalid_argument] only when both sides are given with
    [min > max]. *)

val exchanged : 'a t -> int
(** Number of completed give/take pairs. *)

val cancelled : 'a t -> int
(** Number of offers withdrawn by their owner — parked waits that timed
    out plus offers cancelled by an exception (e.g. an injected kill)
    unwinding through the park loop. *)

val reclaimed : 'a t -> int
(** Number of cancelled offers removed from slots by a later prober (or
    by a claimant that lost the state race) — dead partners cleaned out
    of the array. *)

val try_give : 'a t -> 'a -> bool
(** One probe: if the chosen slot holds a waiting taker, hand it the
    value and return [true]; never parks, never waits. *)

val try_take : 'a t -> 'a option
(** One probe: claim a waiting give offer if the chosen slot holds one;
    never parks. *)

val give : ?patience:int -> 'a t -> 'a -> bool
(** [give t v] probes once and otherwise parks a give offer, waiting up
    to [patience] (default 64) spin rounds for a taker before
    withdrawing. [true] iff the value was handed to a taker. *)

val take : ?patience:int -> 'a t -> 'a option
(** Symmetric to {!give}: claims a parked give immediately, or parks a
    take offer and waits up to [patience] rounds to be fed. *)

val takers_waiting : 'a t -> bool
(** Whether some slot currently holds a parked take offer — a cheap
    read-only scan letting producers skip the exchange path entirely
    when nobody is waiting. *)
