(** Harris's lock-free sorted linked list implementing a set
    (Harris, DISC 2001), with a position-resume extension.

    Deletion is two-phase: a node is first logically deleted by {e marking}
    its outgoing link, then physically unlinked by any traversal that
    encounters it. OCaml cannot tag pointer bits, so a link is a boxed
    variant ([Live]/[Dead]) compared by physical equality in CAS — the
    standard encoding under a GC, which also provides safe memory
    reclamation (no ABA).

    The {e position} API supports the paper's medium- and weak-FL list
    optimization (§4.3): when successive operations use non-decreasing
    keys, the search can resume from where the previous operation was
    applied rather than from the head, so a whole sorted batch costs a
    single traversal. Positions never compromise safety: a stale position
    (its node was deleted) still leads forward into the live list, and the
    operations re-validate with CAS as usual. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
end

module Make (K : KEY) : sig
  type t

  val create : unit -> t

  val insert : t -> K.t -> bool
  (** [insert t k] adds [k]; [false] if already present. Lock-free. *)

  val remove : t -> K.t -> bool
  (** [remove t k] logically deletes [k] (then attempts physical unlink);
      [false] if absent. Lock-free. *)

  val contains : t -> K.t -> bool
  (** Wait-free read-only search. *)

  type position
  (** A resumption point strictly below some key. *)

  val head_position : t -> position
  (** The position before the first element. *)

  val insert_from : t -> position -> K.t -> bool * position
  val remove_from : t -> position -> K.t -> bool * position

  val contains_from : t -> position -> K.t -> bool * position
  (** Like the plain operations but starting the search at [position]
      and returning the position just before the affected key. The caller
      must only pass a position obtained for a key [<=] the new key;
      with a stale or unsuitable position the operation falls back to a
      search from the head, so results are always correct. *)

  val is_empty : t -> bool

  val length : t -> int
  (** O(n); exact only in quiescent states. *)

  val to_list : t -> K.t list
  (** Ascending snapshot of the unmarked nodes. *)

  val cas_count : t -> int
  val reset_cas_count : t -> unit
end
