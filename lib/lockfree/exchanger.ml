(* An offer parked in a slot. Offers are fresh heap values, never
   reused, so physical-equality CAS on slots is ABA-free.

   Each offer carries a three-state cell deciding its fate exactly once:
   waiting -> taken/fed (a partner claimed it) or waiting -> cancelled
   (its owner withdrew — timeout, or an exception such as an injected
   kill unwinding through the park loop). A claimant first removes the
   offer from its slot, then CASes the state cell; the owner's cancel
   CASes the same cell, so the claim/cancel race has exactly one winner
   and a dead partner can never capture a live one's value. *)
type give_state = Gwaiting | Gtaken | Gcancelled
type 'a take_state = Tempty | Tfed of 'a | Tcancelled

type 'a offer =
  | Give of { value : 'a; state : give_state Atomic.t }
  | Take of { state : 'a take_state Atomic.t }

type 'a t = {
  slots : 'a offer option Atomic.t array; (* each on its own cache line *)
  width : int Atomic.t; (* active prefix of [slots], in bounds *)
  (* Both width bounds packed into one atomic word, [(min lsl 32) lor
     max], so a reader never observes a min/max pair from two different
     [set_width_bounds] calls (which could transiently invert). *)
  bounds : int Atomic.t;
  exchanged : int Atomic.t;
  cancels : int Atomic.t; (* offers withdrawn by their owner *)
  reclaimed : int Atomic.t; (* cancelled offers removed from slots *)
  seeds : Sync.Padded.Int_array.t; (* per-domain-stripe PRNG states *)
}

let seed_stripes = 16
let pack ~lo ~hi = (lo lsl 32) lor hi
let unpack b = (b lsr 32, b land 0xFFFFFFFF)

let create ?(capacity = 8) () =
  if capacity <= 0 then invalid_arg "Exchanger.create: capacity <= 0";
  {
    slots = Sync.Padded.atomic_array capacity None;
    width = Sync.Padded.atomic (min 2 capacity);
    bounds = Sync.Padded.atomic (pack ~lo:1 ~hi:capacity);
    exchanged = Sync.Padded.atomic 0;
    cancels = Sync.Padded.atomic 0;
    reclaimed = Sync.Padded.atomic 0;
    seeds = Sync.Padded.Int_array.make seed_stripes;
  }

let capacity t = Array.length t.slots
let width t = Atomic.get t.width
let exchanged t = Atomic.get t.exchanged
let cancelled t = Atomic.get t.cancels
let reclaimed t = Atomic.get t.reclaimed
let width_bounds t = unpack (Atomic.get t.bounds)

(* Controller entry point: clamp the adaptive-width range. Each given
   side is clamped to [1..capacity] and drags the other side along when
   they would cross; giving both with [min > max] is the caller's error.
   After publishing new bounds, the current width is pulled into range
   (CAS loop — a concurrent widen/narrow just re-clamps on its own next
   step, see below). *)
let set_width_bounds ?min:lo ?max:hi t =
  let cap = Array.length t.slots in
  let clamp v = if v < 1 then 1 else if v > cap then cap else v in
  (match (lo, hi) with
  | Some l, Some h when l > h ->
      invalid_arg "Exchanger.set_width_bounds: min > max"
  | _ -> ());
  let rec publish () =
    let b = Atomic.get t.bounds in
    let cur_lo, cur_hi = unpack b in
    let new_lo = match lo with Some l -> clamp l | None -> cur_lo in
    let new_hi = match hi with Some h -> clamp h | None -> cur_hi in
    (* Drag the unspecified (or stale) side so the pair stays ordered. *)
    let new_lo, new_hi =
      match (lo, hi) with
      | Some _, None when new_lo > new_hi -> (new_lo, new_lo)
      | None, Some _ when new_lo > new_hi -> (new_hi, new_hi)
      | _ -> (new_lo, new_hi)
    in
    if not (Atomic.compare_and_set t.bounds b (pack ~lo:new_lo ~hi:new_hi))
    then publish ()
  in
  publish ();
  let rec reclamp () =
    let lo, hi = unpack (Atomic.get t.bounds) in
    let w = Atomic.get t.width in
    let w' = if w < lo then lo else if w > hi then hi else w in
    if w' <> w && not (Atomic.compare_and_set t.width w w') then reclamp ()
  in
  reclamp ()

(* Cheap per-domain randomness: a striped splitmix-style counter, one
   padded cell per domain stripe so slot choice never bounces a line
   between domains (a lost race on a PRNG state is harmless). *)
let random_index t =
  let stripe = (Domain.self () :> int) land (seed_stripes - 1) in
  let s = Sync.Padded.Int_array.get t.seeds stripe + 0x9E3779B9 in
  Sync.Padded.Int_array.set t.seeds stripe s;
  let s = s lxor (s lsr 16) in
  let s = s * 0x45d9f3b in
  let s = s lxor (s lsr 16) in
  (s land max_int) mod Atomic.get t.width

(* Width policy: a collision (two offers racing for one slot) means the
   active shard set is too narrow for the traffic — double it; a parked
   offer that times out unmatched means it is too wide for partners to
   find each other — step it back down. Plain CAS, losers just retry on
   their next probe. *)
let widen t =
  let _, hi = unpack (Atomic.get t.bounds) in
  let w = Atomic.get t.width in
  if w < hi then ignore (Atomic.compare_and_set t.width w (min hi (2 * w)))
  else if w > hi then
    (* Bounds were tightened under us: fall back into range. *)
    ignore (Atomic.compare_and_set t.width w hi)

let narrow t =
  let lo, _ = unpack (Atomic.get t.bounds) in
  let w = Atomic.get t.width in
  if w > lo then ignore (Atomic.compare_and_set t.width w (max lo (w - 1)))
  else if w < lo then ignore (Atomic.compare_and_set t.width w lo)

let default_patience = 64

(* CAS on slots compares the option box physically, so every
   compare_and_set must use the exact value read (or installed) —
   rebuilding [Some _] would never match. *)

(* Claim a parked take offer for value [v]: remove it from its slot,
   then win its state cell. [false] means the value is still ours —
   either somebody else got the slot first, or the taker cancelled. *)
let claim_take t ~shard slot stored state v =
  Faults.point "elim.exchange";
  match Atomic.get state with
  | Tcancelled ->
      (* Dead partner still parked: reclaim the slot so it cannot sit in
         the way (or capture anyone) forever. *)
      if Atomic.compare_and_set slot stored None then Atomic.incr t.reclaimed;
      Obs.elim_miss ~shard;
      false
  | Tfed _ | Tempty ->
      if Atomic.compare_and_set slot stored None then
        if Atomic.compare_and_set state Tempty (Tfed v) then begin
          Atomic.incr t.exchanged;
          (* Hits are counted once per pair, on the claimant side. *)
          Obs.elim_hit ~shard;
          true
        end
        else begin
          (* Cancelled as we claimed: we removed the corpse, keep [v]. *)
          Atomic.incr t.reclaimed;
          Obs.elim_miss ~shard;
          false
        end
      else begin
        widen t;
        Obs.elim_miss ~shard;
        false
      end

(* Claim a parked give offer: symmetric to [claim_take]. *)
let claim_give t ~shard slot stored (value : 'a) state =
  Faults.point "elim.exchange";
  match Atomic.get state with
  | Gcancelled ->
      if Atomic.compare_and_set slot stored None then Atomic.incr t.reclaimed;
      Obs.elim_miss ~shard;
      None
  | Gtaken | Gwaiting ->
      if Atomic.compare_and_set slot stored None then
        if Atomic.compare_and_set state Gwaiting Gtaken then begin
          Atomic.incr t.exchanged;
          Obs.elim_hit ~shard;
          Some value
        end
        else begin
          Atomic.incr t.reclaimed;
          Obs.elim_miss ~shard;
          None
        end
      else begin
        widen t;
        Obs.elim_miss ~shard;
        None
      end

let try_give t v =
  let shard = random_index t in
  let slot = t.slots.(shard) in
  match Atomic.get slot with
  | Some (Take p) as stored -> claim_take t ~shard slot stored p.state v
  | Some (Give _) ->
      widen t;
      Obs.elim_miss ~shard;
      false
  | None ->
      Obs.elim_miss ~shard;
      false

let try_take t =
  let shard = random_index t in
  let slot = t.slots.(shard) in
  match Atomic.get slot with
  | Some (Give p) as stored -> claim_give t ~shard slot stored p.value p.state
  | Some (Take _) ->
      widen t;
      Obs.elim_miss ~shard;
      None
  | None ->
      Obs.elim_miss ~shard;
      None

let give ?(patience = default_patience) t v =
  let shard = random_index t in
  let slot = t.slots.(shard) in
  match Atomic.get slot with
  | Some (Take p) as stored -> claim_take t ~shard slot stored p.state v
  | Some (Give _) ->
      widen t;
      Obs.elim_miss ~shard;
      false
  | None ->
      let state = Atomic.make Gwaiting in
      let boxed = Some (Give { value = v; state }) in
      Faults.point "elim.offer";
      if Atomic.compare_and_set slot None boxed then begin
        let t0 = Obs.elim_wait_begin () in
        (* Park and wait for a taker. [cancel] decides the race against a
           claimant on the state cell: if it wins, the value was never
           handed over (and the slot is cleared best-effort — a failed
           slot CAS means a claimant already removed us and its state CAS
           will now fail); if it loses, the exchange completed. *)
        let cancel () =
          if Atomic.compare_and_set state Gwaiting Gcancelled then begin
            Atomic.incr t.cancels;
            ignore (Atomic.compare_and_set slot boxed None);
            narrow t;
            (* A parked offer nobody matched is the miss; a matched one is
               the hit already counted on the claimant's side. *)
            Obs.elim_miss ~shard;
            false
          end
          else true
        in
        let rec wait n =
          Faults.point "elim.park";
          match Atomic.get state with
          | Gtaken -> true
          | Gcancelled -> false
          | Gwaiting ->
              if n = 0 then cancel ()
              else begin
                Domain.cpu_relax ();
                wait (n - 1)
              end
        in
        (* A kill injected while parked must not leave a live offer for a
           partner to capture: withdraw it, then let the exception go. *)
        match wait patience with
        | matched ->
            Obs.elim_wait_end ~t0;
            matched
        | exception e ->
            ignore (cancel () : bool);
            Obs.elim_wait_end ~t0;
            raise e
      end
      else begin
        widen t;
        Obs.elim_miss ~shard;
        false
      end

let take ?(patience = default_patience) t =
  let shard = random_index t in
  let slot = t.slots.(shard) in
  match Atomic.get slot with
  | Some (Give p) as stored -> claim_give t ~shard slot stored p.value p.state
  | Some (Take _) ->
      widen t;
      Obs.elim_miss ~shard;
      None
  | None ->
      let state = Atomic.make Tempty in
      let boxed = Some (Take { state }) in
      Faults.point "elim.offer";
      if Atomic.compare_and_set slot None boxed then begin
        let t0 = Obs.elim_wait_begin () in
        let cancel () =
          if Atomic.compare_and_set state Tempty Tcancelled then begin
            Atomic.incr t.cancels;
            ignore (Atomic.compare_and_set slot boxed None);
            narrow t;
            Obs.elim_miss ~shard;
            None
          end
          else
            (* Fed just as we gave up: the claim's state CAS already
               published the value. *)
            match Atomic.get state with Tfed v -> Some v | _ -> None
        in
        let rec wait n =
          Faults.point "elim.park";
          match Atomic.get state with
          | Tfed v -> Some v
          | Tcancelled -> None
          | Tempty ->
              if n = 0 then cancel ()
              else begin
                Domain.cpu_relax ();
                wait (n - 1)
              end
        in
        match wait patience with
        | outcome ->
            Obs.elim_wait_end ~t0;
            outcome
        | exception e ->
            ignore (cancel () : 'a option);
            Obs.elim_wait_end ~t0;
            raise e
      end
      else begin
        widen t;
        Obs.elim_miss ~shard;
        None
      end

let takers_waiting t =
  let w = Atomic.get t.width in
  let rec scan i =
    i < w
    &&
    match Atomic.get t.slots.(i) with
    | Some (Take p) -> (
        match Atomic.get p.state with
        | Tempty -> true
        | Tfed _ | Tcancelled -> scan (i + 1))
    | Some (Give _) | None -> scan (i + 1)
  in
  scan 0
