(* An offer parked in a slot. Offers are fresh heap values, never
   reused, so physical-equality CAS on slots is ABA-free. *)
type 'a offer =
  | Give of { value : 'a; taken : bool Atomic.t }
  | Take of { result : 'a option Atomic.t }
      (* [result] is None while pending; an exchange always delivers a
         value, so [Some v] unambiguously means "fed by a give of v". *)

type 'a t = {
  slots : 'a offer option Atomic.t array; (* each on its own cache line *)
  width : int Atomic.t; (* active prefix of [slots], in [1..capacity] *)
  exchanged : int Atomic.t;
  seeds : Sync.Padded.Int_array.t; (* per-domain-stripe PRNG states *)
}

let seed_stripes = 16

let create ?(capacity = 8) () =
  if capacity <= 0 then invalid_arg "Exchanger.create: capacity <= 0";
  {
    slots = Sync.Padded.atomic_array capacity None;
    width = Sync.Padded.atomic (min 2 capacity);
    exchanged = Sync.Padded.atomic 0;
    seeds = Sync.Padded.Int_array.make seed_stripes;
  }

let capacity t = Array.length t.slots
let width t = Atomic.get t.width
let exchanged t = Atomic.get t.exchanged

(* Cheap per-domain randomness: a striped splitmix-style counter, one
   padded cell per domain stripe so slot choice never bounces a line
   between domains (a lost race on a PRNG state is harmless). *)
let random_slot t =
  let stripe = (Domain.self () :> int) land (seed_stripes - 1) in
  let s = Sync.Padded.Int_array.get t.seeds stripe + 0x9E3779B9 in
  Sync.Padded.Int_array.set t.seeds stripe s;
  let s = s lxor (s lsr 16) in
  let s = s * 0x45d9f3b in
  let s = s lxor (s lsr 16) in
  t.slots.((s land max_int) mod Atomic.get t.width)

(* Width policy: a collision (two offers racing for one slot) means the
   active shard set is too narrow for the traffic — double it; a parked
   offer that times out unmatched means it is too wide for partners to
   find each other — step it back down. Plain CAS, losers just retry on
   their next probe. *)
let widen t =
  let w = Atomic.get t.width in
  if w < Array.length t.slots then
    ignore (Atomic.compare_and_set t.width w (min (Array.length t.slots) (2 * w)))

let narrow t =
  let w = Atomic.get t.width in
  if w > 1 then ignore (Atomic.compare_and_set t.width w (w - 1))

let default_patience = 64

(* CAS on slots compares the option box physically, so every
   compare_and_set must use the exact value read (or installed) —
   rebuilding [Some _] would never match. *)

let try_give t v =
  let slot = random_slot t in
  match Atomic.get slot with
  | Some (Take p) as stored ->
      Faults.point "elim.exchange";
      if Atomic.compare_and_set slot stored None then begin
        Atomic.set p.result (Some v);
        Atomic.incr t.exchanged;
        true
      end
      else begin
        widen t;
        false
      end
  | Some (Give _) ->
      widen t;
      false
  | None -> false

let try_take t =
  let slot = random_slot t in
  match Atomic.get slot with
  | Some (Give p) as stored ->
      Faults.point "elim.exchange";
      if Atomic.compare_and_set slot stored None then begin
        Atomic.set p.taken true;
        Atomic.incr t.exchanged;
        Some p.value
      end
      else begin
        widen t;
        None
      end
  | Some (Take _) ->
      widen t;
      None
  | None -> None

let give ?(patience = default_patience) t v =
  let slot = random_slot t in
  match Atomic.get slot with
  | Some (Take p) as stored ->
      Faults.point "elim.exchange";
      if Atomic.compare_and_set slot stored None then begin
        Atomic.set p.result (Some v);
        Atomic.incr t.exchanged;
        true
      end
      else begin
        widen t;
        false
      end
  | Some (Give _) ->
      widen t;
      false
  | None ->
      let taken = Atomic.make false in
      let boxed = Some (Give { value = v; taken }) in
      Faults.point "elim.offer";
      if Atomic.compare_and_set slot None boxed then begin
        (* Park and wait for a taker. *)
        let rec wait n =
          if Atomic.get taken then true
          else if n = 0 then
            if Atomic.compare_and_set slot boxed None then begin
              narrow t;
              false
            end
            else begin
              (* Someone is claiming us right now; the exchange is
                 guaranteed to complete. *)
              let b = Sync.Backoff.create () in
              while not (Atomic.get taken) do
                Sync.Backoff.once b
              done;
              true
            end
          else begin
            Domain.cpu_relax ();
            wait (n - 1)
          end
        in
        wait patience
      end
      else begin
        widen t;
        false
      end

let take ?(patience = default_patience) t =
  let slot = random_slot t in
  match Atomic.get slot with
  | Some (Give p) as stored ->
      Faults.point "elim.exchange";
      if Atomic.compare_and_set slot stored None then begin
        Atomic.set p.taken true;
        Atomic.incr t.exchanged;
        Some p.value
      end
      else begin
        widen t;
        None
      end
  | Some (Take _) ->
      widen t;
      None
  | None ->
      let result = Atomic.make None in
      let boxed = Some (Take { result }) in
      Faults.point "elim.offer";
      if Atomic.compare_and_set slot None boxed then begin
        let rec wait n =
          match Atomic.get result with
          | Some _ as r -> r
          | None ->
              if n = 0 then
                if Atomic.compare_and_set slot boxed None then begin
                  narrow t;
                  None
                end
                else begin
                  let b = Sync.Backoff.create () in
                  let rec settle () =
                    match Atomic.get result with
                    | Some _ as r -> r
                    | None ->
                        Sync.Backoff.once b;
                        settle ()
                  in
                  settle ()
                end
              else begin
                Domain.cpu_relax ();
                wait (n - 1)
              end
        in
        wait patience
      end
      else begin
        widen t;
        None
      end

let takers_waiting t =
  let w = Atomic.get t.width in
  let rec scan i =
    i < w
    &&
    match Atomic.get t.slots.(i) with
    | Some (Take _) -> true
    | Some (Give _) | None -> scan (i + 1)
  in
  scan 0
