type 'a node = { value : 'a; mutable next : 'a node option }

(* An offer parked in the elimination array. Offers are fresh heap values,
   never reused, so physical-equality CAS on slots is ABA-free. *)
type 'a offer =
  | Push_offer of { value : 'a; taken : bool Atomic.t }
  | Pop_offer of { result : 'a option Atomic.t }
      (* [result] is None while pending; elimination always delivers a
         value, so Some v unambiguously means "matched with push of v". *)

type 'a slot = 'a offer option Atomic.t

type 'a t = {
  head : 'a node option Atomic.t;
  slots : 'a slot array;
  eliminated : int Atomic.t;
  casc : Sync.Cas_counter.t;
  seed : int Atomic.t; (* cheap per-call randomness for slot choice *)
}

let create ?(slots = 8) () =
  if slots <= 0 then invalid_arg "Elimination_stack.create: slots <= 0";
  {
    head = Atomic.make None;
    slots = Array.init slots (fun _ -> Atomic.make None);
    eliminated = Atomic.make 0;
    casc = Sync.Cas_counter.create ();
    seed = Atomic.make 0x2545f49;
  }

let head_cas t expected desired =
  Sync.Cas_counter.incr t.casc;
  Atomic.compare_and_set t.head expected desired

let random_slot t =
  let s = Atomic.fetch_and_add t.seed 0x61c88647 in
  let s = s lxor (s lsr 16) in
  t.slots.((s land max_int) mod Array.length t.slots)

(* How long an offer waits in the array before withdrawing. *)
let patience = 64

(* Try to eliminate a push through the array. true = exchanged. *)
let try_eliminate_push t v =
  let slot = random_slot t in
  (* CAS on slots compares the option box physically, so every
     compare_and_set must use the exact value read (or installed) —
     rebuilding [Some _] would never match. *)
  match Atomic.get slot with
  | Some (Pop_offer p) as stored ->
      (* A pop is waiting: claim it and hand over our value. *)
      if Atomic.compare_and_set slot stored None then begin
        Atomic.set p.result (Some v);
        Atomic.incr t.eliminated;
        true
      end
      else false
  | Some (Push_offer _) | None -> (
      match Atomic.get slot with
      | None ->
          let taken = Atomic.make false in
          let boxed = Some (Push_offer { value = v; taken }) in
          if Atomic.compare_and_set slot None boxed then begin
            (* Park and wait for a pop to take the value. *)
            let rec wait n =
              if Atomic.get taken then true
              else if n = 0 then
                if Atomic.compare_and_set slot boxed None then false
                else begin
                  (* Someone is claiming us right now; the exchange is
                     guaranteed to complete. *)
                  let b = Sync.Backoff.create () in
                  while not (Atomic.get taken) do
                    Sync.Backoff.once b
                  done;
                  true
                end
              else begin
                Domain.cpu_relax ();
                wait (n - 1)
              end
            in
            wait patience
          end
          else false
      | Some _ -> false)

(* Try to eliminate a pop; Some v = exchanged with a push of v. *)
let try_eliminate_pop t =
  let slot = random_slot t in
  match Atomic.get slot with
  | Some (Push_offer p) as stored ->
      if Atomic.compare_and_set slot stored None then begin
        Atomic.set p.taken true;
        Atomic.incr t.eliminated;
        Some p.value
      end
      else None
  | Some (Pop_offer _) | None -> (
      match Atomic.get slot with
      | None ->
          let result = Atomic.make None in
          let boxed = Some (Pop_offer { result }) in
          if Atomic.compare_and_set slot None boxed then begin
            let rec wait n =
              match Atomic.get result with
              | Some _ as r -> r
              | None ->
                  if n = 0 then
                    if Atomic.compare_and_set slot boxed None then None
                    else begin
                      let b = Sync.Backoff.create () in
                      let rec settle () =
                        match Atomic.get result with
                        | Some _ as r -> r
                        | None ->
                            Sync.Backoff.once b;
                            settle ()
                      in
                      settle ()
                    end
                  else begin
                    Domain.cpu_relax ();
                    wait (n - 1)
                  end
            in
            wait patience
          end
          else None
      | Some _ -> None)

let push t v =
  let node = { value = v; next = None } in
  let rec loop () =
    let head = Atomic.get t.head in
    node.next <- head;
    if not (head_cas t head (Some node)) then
      if not (try_eliminate_push t v) then loop ()
  in
  loop ()

let pop t =
  let rec loop () =
    match Atomic.get t.head with
    | None -> None (* genuinely observed empty *)
    | Some node as head ->
        if head_cas t head node.next then Some node.value
        else
          match try_eliminate_pop t with
          | Some _ as r -> r
          | None -> loop ()
  in
  loop ()

let is_empty t = Atomic.get t.head = None

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.value :: acc) n.next
  in
  walk [] (Atomic.get t.head)

let length t = List.length (to_list t)
let eliminated_pairs t = Atomic.get t.eliminated
let cas_count t = Sync.Cas_counter.total t.casc
