type 'a node = { value : 'a; mutable next : 'a node option }

type 'a t = {
  head : 'a node option Atomic.t;
  exchanger : 'a Exchanger.t;
  casc : Sync.Cas_counter.t;
}

let create ?(slots = 8) () =
  if slots <= 0 then invalid_arg "Elimination_stack.create: slots <= 0";
  {
    head = Sync.Padded.atomic None;
    exchanger = Exchanger.create ~capacity:slots ();
    casc = Sync.Cas_counter.create ();
  }

let head_cas t expected desired =
  Sync.Cas_counter.incr t.casc;
  Atomic.compare_and_set t.head expected desired

(* How long an offer waits in the array before withdrawing. *)
let patience = 64

let push t v =
  let node = { value = v; next = None } in
  let rec loop () =
    let head = Atomic.get t.head in
    node.next <- head;
    if not (head_cas t head (Some node)) then
      if not (Exchanger.give ~patience t.exchanger v) then loop ()
  in
  loop ()

let pop t =
  let rec loop () =
    match Atomic.get t.head with
    | None -> None (* genuinely observed empty *)
    | Some node as head ->
        if head_cas t head node.next then Some node.value
        else
          match Exchanger.take ~patience t.exchanger with
          | Some _ as r -> r
          | None -> loop ()
  in
  loop ()

let is_empty t = Atomic.get t.head = None

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.value :: acc) n.next
  in
  walk [] (Atomic.get t.head)

let length t = List.length (to_list t)
let eliminated_pairs t = Exchanger.exchanged t.exchanger
let elimination_width t = Exchanger.width t.exchanger
let cas_count t = Sync.Cas_counter.total t.casc
