(** Treiber's lock-free stack (Treiber 1986), extended with single-CAS
    multi-node push and pop.

    The multi-node operations are the combining primitive of the weak- and
    medium-FL stacks (Kogan & Herlihy §4): a chain of nodes is prepared
    locally, its last node is linked to the current top, and one CAS swings
    the top pointer; symmetrically, [pop_many] removes a whole prefix with
    one CAS. All operations are lock-free and linearizable. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
(** [pop t] removes and returns the top element, or [None] when empty. *)

val peek : 'a t -> 'a option

val push_list : 'a t -> 'a list -> unit
(** [push_list t [x1; ...; xn]] atomically pushes the whole chain with a
    single successful CAS; [x1] is pushed first, so [xn] ends on top.
    [push_list t []] is a no-op. *)

val pop_many : 'a t -> int -> 'a list
(** [pop_many t n] atomically (one successful CAS) removes up to [n]
    elements and returns them top-first; fewer when the stack runs out.
    Raises [Invalid_argument] if [n < 0]. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** O(n) snapshot; exact only in quiescent states. *)

val to_list : 'a t -> 'a list
(** Top-first snapshot of one consistent head reading. *)

val cas_count : 'a t -> int
(** Total CAS attempts issued against this stack (see {!Sync.Cas_counter}). *)

val reset_cas_count : 'a t -> unit
