(** Treiber's lock-free stack (Treiber 1986), extended with single-CAS
    multi-node push and pop.

    The multi-node operations are the combining primitive of the weak- and
    medium-FL stacks (Kogan & Herlihy §4): a chain of nodes is prepared
    locally, its last node is linked to the current top, and one CAS swings
    the top pointer; symmetrically, [pop_many] removes a whole prefix with
    one CAS. All operations are lock-free and linearizable. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
(** [pop t] removes and returns the top element, or [None] when empty. *)

val peek : 'a t -> 'a option

val push_list : 'a t -> 'a list -> unit
(** [push_list t [x1; ...; xn]] atomically pushes the whole chain with a
    single successful CAS; [x1] is pushed first, so [xn] ends on top.
    [push_list t []] is a no-op. *)

val pop_many : 'a t -> int -> 'a list
(** [pop_many t n] atomically (one successful CAS) removes up to [n]
    elements and returns them top-first; fewer when the stack runs out.
    Raises [Invalid_argument] if [n < 0]. *)

val push_seg : 'a t -> n:int -> get:(int -> 'a) -> unit
(** [push_seg t ~n ~get] is [push_list] over the indexed segment
    [get 0 .. get (n-1)]: [get 0] is pushed deepest, [get (n-1)] ends on
    top, one successful CAS for the whole segment. Allocates only the
    [n] spliced nodes — the zero-copy path for ring-buffer flushes.
    Raises [Invalid_argument] if [n < 0]. *)

val pop_seg : 'a t -> n:int -> f:(int -> 'a -> unit) -> int
(** [pop_seg t ~n ~f] is [pop_many] without the result list: up to [n]
    elements are removed with one successful CAS and handed to [f i v]
    in top-first order (i = 0 for the old top). Returns the number
    actually popped. [f] runs after the CAS, on a detached chain.
    Raises [Invalid_argument] if [n < 0]. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** O(n) snapshot; exact only in quiescent states. *)

val to_list : 'a t -> 'a list
(** Top-first snapshot of one consistent head reading. *)

val cas_count : 'a t -> int
(** Total CAS attempts issued against this stack (see {!Sync.Cas_counter}). *)

val reset_cas_count : 'a t -> unit
