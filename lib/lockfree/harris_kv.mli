(** Harris-style lock-free sorted linked list storing key/value bindings.

    The paper motivates future-returning operations with maps — "binding
    a key to a value", "the result of a map look-up" (§2) — but only
    evaluates sets; this module provides the map substrate for the
    {!Fl.Weak_map} extension. It is {!Harris_list} with a value payload:
    bindings are {e bind-once} (an insert on a present key does not
    replace the value — a live node's value is immutable, keeping every
    linearization argument of the underlying list intact; replace =
    remove + insert, two operations).

    Same position-resume extension as {!Harris_list}, for single-traversal
    batch application. *)

module Make (K : Harris_list.KEY) : sig
  type 'v t

  val create : unit -> 'v t

  val insert : 'v t -> K.t -> 'v -> bool
  (** [insert t k v] binds [k] to [v] if absent; [false] (and no change)
      if [k] is already bound. *)

  val find : 'v t -> K.t -> 'v option
  (** Wait-free lookup. *)

  val remove : 'v t -> K.t -> 'v option
  (** [remove t k] deletes the binding, returning its value. *)

  type 'v position

  val head_position : 'v t -> 'v position
  val insert_from : 'v t -> 'v position -> K.t -> 'v -> bool * 'v position
  val find_from : 'v t -> 'v position -> K.t -> 'v option * 'v position

  val remove_from : 'v t -> 'v position -> K.t -> 'v option * 'v position
  (** As in {!Harris_list}: resume the search from a position obtained
      for a key [<=] the new key; stale positions fall back to a search
      from the head, so results are always correct. *)

  val is_empty : 'v t -> bool
  val size : 'v t -> int

  val bindings : 'v t -> (K.t * 'v) list
  (** Ascending by key; quiescent snapshot. *)

  val cas_count : 'v t -> int
end
