(* The node pointed to by [head] is a dummy; the logical queue content is
   the chain strictly after it. [value] is mutable only so a dequeued
   element can be dropped from the new dummy, avoiding a space leak. *)
type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  head : 'a node Atomic.t;
  tail : 'a node Atomic.t;
  casc : Sync.Cas_counter.t;
}

let make_node v = { value = v; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  (* Head and tail are attacked by disjoint parties (dequeuers vs
     enqueuers); padding keeps either side's CAS traffic off the other's
     line. *)
  {
    head = Sync.Padded.atomic dummy;
    tail = Sync.Padded.atomic dummy;
    casc = Sync.Cas_counter.create ();
  }

let counted_cas t cell expected desired =
  Sync.Cas_counter.incr t.casc;
  Atomic.compare_and_set cell expected desired

(* Splice the pre-linked chain [first .. last] after the current last node,
   then swing the tail to [last]. *)
let enqueue_chain t first last =
  let b = Sync.Backoff.create () in
  let rec loop () =
    let tl = Atomic.get t.tail in
    match Atomic.get tl.next with
    | None ->
        if counted_cas t tl.next None (Some first) then
          (* Lag repair is best-effort: a failure means someone helped. *)
          ignore (counted_cas t t.tail tl last)
        else begin
          Sync.Backoff.once b;
          loop ()
        end
    | Some nxt ->
        (* Tail is lagging; help swing it and retry. *)
        ignore (counted_cas t t.tail tl nxt);
        loop ()
  in
  loop ()

let enqueue t x =
  let n = make_node (Some x) in
  enqueue_chain t n n

let enqueue_list t xs =
  match xs with
  | [] -> ()
  | x1 :: rest ->
      let first = make_node (Some x1) in
      let last =
        List.fold_left
          (fun prev x ->
            let n = make_node (Some x) in
            Atomic.set prev.next (Some n);
            n)
          first rest
      in
      enqueue_chain t first last

(* Indexed-segment variants of [enqueue_list]/[dequeue_many] for the FL
   flush paths: the whole window is spliced from / delivered to a ring
   buffer without building an intermediate list. *)

let enqueue_seg t ~n ~get =
  if n < 0 then invalid_arg "Ms_queue.enqueue_seg: negative count";
  if n > 0 then begin
    let first = make_node (Some (get 0)) in
    let last = ref first in
    for i = 1 to n - 1 do
      let nd = make_node (Some (get i)) in
      Atomic.set !last.next (Some nd);
      last := nd
    done;
    enqueue_chain t first !last
  end

let dequeue_seg t ~n ~f =
  if n < 0 then invalid_arg "Ms_queue.dequeue_seg: negative count";
  if n = 0 then 0
  else
    let b = Sync.Backoff.create () in
    let rec attempt () =
      let hd = Atomic.get t.head in
      (* Find the up-to-[n]-th node after the dummy (helping the tail
         forward as in [dequeue_many]), CAS the head past it, then walk
         the detached chain handing values to [f] in FIFO order. *)
      let rec probe node count =
        if count = n then (node, count)
        else
          match Atomic.get node.next with
          | None -> (node, count)
          | Some nxt ->
              let tl = Atomic.get t.tail in
              if tl == node then ignore (counted_cas t t.tail tl nxt);
              probe nxt (count + 1)
      in
      let last, count = probe hd 0 in
      if last == hd then 0
      else if counted_cas t t.head hd last then begin
        let rec deliver node i =
          match Atomic.get node.next with
          | None -> assert false
          | Some nxt ->
              (match nxt.value with
              | Some v -> f i v
              | None -> assert false);
              (* Drop the reference: [last] is the new dummy and must not
                 pin the value it handed out; the others are garbage
                 anyway. *)
              nxt.value <- None;
              if nxt != last then deliver nxt (i + 1)
        in
        deliver hd 0;
        count
      end
      else begin
        Sync.Backoff.once b;
        attempt ()
      end
    in
    attempt ()

let dequeue_many t n =
  if n < 0 then invalid_arg "Ms_queue.dequeue_many: negative count";
  if n = 0 then []
  else
    let b = Sync.Backoff.create () in
    let rec attempt () =
      let hd = Atomic.get t.head in
      (* Collect up to [n] nodes after the dummy, helping the tail forward
         whenever we are about to pass it so it never ends up behind the
         head. *)
      let rec collect node count acc =
        if count = n then (node, acc)
        else
          match Atomic.get node.next with
          | None -> (node, acc)
          | Some nxt ->
              let tl = Atomic.get t.tail in
              if tl == node then ignore (counted_cas t t.tail tl nxt);
              collect nxt (count + 1) (nxt.value :: acc)
      in
      let last, rev_values = collect hd 0 [] in
      if last == hd then [] (* empty *)
      else if counted_cas t t.head hd last then begin
        (* [last] is the new dummy; its value was just handed out. *)
        last.value <- None;
        List.rev_map (function Some v -> v | None -> assert false) rev_values
      end
      else begin
        Sync.Backoff.once b;
        attempt ()
      end
    in
    attempt ()

let dequeue t = match dequeue_many t 1 with [] -> None | [ v ] -> Some v | _ -> assert false

let peek t =
  let hd = Atomic.get t.head in
  match Atomic.get hd.next with
  | None -> None
  | Some n -> n.value

let is_empty t =
  let hd = Atomic.get t.head in
  Atomic.get hd.next = None

let to_list t =
  let rec loop acc node =
    match Atomic.get node.next with
    | None -> List.rev acc
    | Some n ->
        let acc = match n.value with Some v -> v :: acc | None -> acc in
        loop acc n
  in
  loop [] (Atomic.get t.head)

let length t = List.length (to_list t)

let cas_count t = Sync.Cas_counter.total t.casc
let reset_cas_count t = Sync.Cas_counter.reset t.casc
