type 'a node = { value : 'a; mutable next : 'a node option }

type 'a t = { head : 'a node option Atomic.t; casc : Sync.Cas_counter.t }

let create () =
  { head = Sync.Padded.atomic None; casc = Sync.Cas_counter.create () }

let cas t expected desired =
  Sync.Cas_counter.incr t.casc;
  Atomic.compare_and_set t.head expected desired

let push t x =
  let node = { value = x; next = None } in
  let b = Sync.Backoff.create () in
  let rec loop () =
    let head = Atomic.get t.head in
    node.next <- head;
    if not (cas t head (Some node)) then begin
      Sync.Backoff.once b;
      loop ()
    end
  in
  loop ()

let pop t =
  let b = Sync.Backoff.create () in
  let rec loop () =
    match Atomic.get t.head with
    | None -> None
    | Some node as head ->
        if cas t head node.next then Some node.value
        else begin
          Sync.Backoff.once b;
          loop ()
        end
  in
  loop ()

let peek t =
  match Atomic.get t.head with None -> None | Some n -> Some n.value

(* Build the chain [xn -> ... -> x1] once; only the bottom link is patched
   on each retry. Returns (top, bottom). *)
let chain_of_list xs =
  match xs with
  | [] -> None
  | x1 :: rest ->
      let bottom = { value = x1; next = None } in
      let top = List.fold_left (fun below x -> { value = x; next = Some below }) bottom rest in
      Some (top, bottom)

let push_list t xs =
  match chain_of_list xs with
  | None -> ()
  | Some (top, bottom) ->
      let b = Sync.Backoff.create () in
      let rec loop () =
        let head = Atomic.get t.head in
        bottom.next <- head;
        if not (cas t head (Some top)) then begin
          Sync.Backoff.once b;
          loop ()
        end
      in
      loop ()

(* Indexed-segment variants of [push_list]/[pop_many]: the FL flush
   paths feed them straight from a ring buffer, so a whole pending
   window is spliced with one CAS and no transient list. *)

let push_seg t ~n ~get =
  if n < 0 then invalid_arg "Treiber_stack.push_seg: negative count";
  if n > 0 then begin
    (* Index 0 is pushed deepest (the oldest pending push); only the
       bottom link is patched on each retry. *)
    let bottom = { value = get 0; next = None } in
    let top = ref bottom in
    for i = 1 to n - 1 do
      top := { value = get i; next = Some !top }
    done;
    let top = !top in
    let b = Sync.Backoff.create () in
    let rec loop () =
      let head = Atomic.get t.head in
      bottom.next <- head;
      if not (cas t head (Some top)) then begin
        Sync.Backoff.once b;
        loop ()
      end
    in
    loop ()
  end

let pop_seg t ~n ~f =
  if n < 0 then invalid_arg "Treiber_stack.pop_seg: negative count";
  if n = 0 then 0
  else
    let b = Sync.Backoff.create () in
    let rec loop () =
      match Atomic.get t.head with
      | None -> 0
      | Some first as head ->
          (* Find the split point, detach with one CAS, then hand out the
             values of the now-private chain: [f i v] with i = 0 for the
             value that was on top. *)
          let rec walk node k =
            if k = n then (k, node.next)
            else
              match node.next with
              | None -> (k, None)
              | Some nxt -> walk nxt (k + 1)
          in
          let k, rest = walk first 1 in
          if cas t head rest then begin
            let rec deliver node i =
              f i node.value;
              if i + 1 < k then
                match node.next with
                | Some nxt -> deliver nxt (i + 1)
                | None -> assert false
            in
            deliver first 0;
            k
          end
          else begin
            Sync.Backoff.once b;
            loop ()
          end
    in
    loop ()

let pop_many t n =
  if n < 0 then invalid_arg "Treiber_stack.pop_many: negative count";
  if n = 0 then []
  else
    let b = Sync.Backoff.create () in
    let rec loop () =
      match Atomic.get t.head with
      | None -> []
      | Some first as head ->
          (* Walk up to [n] nodes to find the remainder, collecting values
             top-first. *)
          let rec walk node k acc =
            if k = n then (acc, node.next)
            else
              match node.next with
              | None -> (acc, None)
              | Some nxt -> walk nxt (k + 1) (nxt.value :: acc)
          in
          let rev_values, rest = walk first 1 [ first.value ] in
          if cas t head rest then List.rev rev_values
          else begin
            Sync.Backoff.once b;
            loop ()
          end
    in
    loop ()

let is_empty t = Atomic.get t.head = None

let to_list t =
  let rec loop acc = function
    | None -> List.rev acc
    | Some n -> loop (n.value :: acc) n.next
  in
  loop [] (Atomic.get t.head)

let length t = List.length (to_list t)

let cas_count t = Sync.Cas_counter.total t.casc
let reset_cas_count t = Sync.Cas_counter.reset t.casc
