(** Elimination-backoff stack (Hendler, Shavit & Yerushalmi, JPDC 2010 —
    the paper's reference [8]).

    A Treiber stack whose backoff path is a sharded {!Exchanger}: when a
    push or pop loses its CAS, instead of merely waiting it parks an offer
    in a random slot of the exchange array; a concurrent operation of the
    opposite kind that finds the offer exchanges values with it directly,
    so the colliding pair completes without ever touching the stack — the
    same elimination idea the futures-based weak stack applies to a
    thread's {e own} pending operations, here applied {e across} threads
    at collision time. The array's active width adapts to the collision
    rate (see {!Exchanger}).

    Linearizable; the matched pair linearizes at the moment of the
    exchange, which lies within both operations' intervals. Included as an
    extra Figure 4 baseline. *)

type 'a t

val create : ?slots:int -> unit -> 'a t
(** [slots] is the elimination array width (default 8). Raises
    [Invalid_argument] if [slots <= 0]. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
(** [pop t] returns [None] only when the stack itself is observed empty
    (elimination never invents emptiness). *)

val is_empty : 'a t -> bool
val length : 'a t -> int
val to_list : 'a t -> 'a list
(** Top-first; quiescent snapshots. *)

val eliminated_pairs : 'a t -> int
(** Number of push/pop pairs that exchanged through the array. *)

val elimination_width : 'a t -> int
(** Current adaptive width of the elimination array. *)

val cas_count : 'a t -> int
(** CAS attempts against the stack head (the array's CASes excluded, for
    comparability with {!Treiber_stack}). *)
