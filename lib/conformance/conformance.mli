(** Recorded-execution conformance testing.

    Runs a small randomized multi-domain workload against a registry
    implementation, recording every operation's four timestamps
    ({!Lin.History}), then checks the merged history against a
    futures-linearizability condition with the {!Lin.Checker} search.

    Histories are kept small (a few operations per thread) so the checker
    is exact; violations come with a printable history. Used by the
    integration test suite and by [flbench check]. *)

type outcome = {
  rounds : int;
  violations : int;
  first_failure : string option;
      (** Pretty-printed history of the first failing round, if any. *)
}

val claimed_condition : string -> Lin.Order.condition
(** The condition each registry implementation claims: [lockfree],
    [flatcomb] and [strong] are strong-FL, [medium] and [txn] are
    medium-FL, [weak] is weak-FL. Raises [Invalid_argument] for unknown
    names. *)

val check_stack :
  ?threads:int ->
  ?ops_per_thread:int ->
  ?condition:Lin.Order.condition ->
  rounds:int ->
  Fl.Registry.stack_impl ->
  outcome

val check_queue :
  ?threads:int ->
  ?ops_per_thread:int ->
  ?condition:Lin.Order.condition ->
  rounds:int ->
  Fl.Registry.queue_impl ->
  outcome

val check_set :
  ?threads:int ->
  ?ops_per_thread:int ->
  ?key_range:int ->
  ?condition:Lin.Order.condition ->
  rounds:int ->
  Fl.Registry.set_impl ->
  outcome
(** Each round spawns [threads] domains (default 3) performing
    [ops_per_thread] operations (default 5) with randomized slack, records
    the execution, and checks it against [condition] (default: the
    implementation's claimed condition). [key_range] (default 4) keeps set
    operations conflicting. *)

val check_map :
  ?threads:int ->
  ?ops_per_thread:int ->
  ?key_range:int ->
  ?condition:Lin.Order.condition ->
  rounds:int ->
  unit ->
  outcome
(** Same harness for the bind-once {!Fl.Weak_map} (int keys and values)
    against {!Lin.Spec.Map_spec}; default condition Weak, the condition
    the map claims. *)

val check_shard_map :
  ?threads:int ->
  ?ops_per_thread:int ->
  ?key_range:int ->
  ?buckets:int ->
  ?lease:float ->
  ?condition:Lin.Order.condition ->
  rounds:int ->
  unit ->
  outcome
(** The {!check_map} harness against the sharded store
    ({!Fl.Shard_map}). The recorded history is checked against the
    {e centralized} [Map_spec], so a pass certifies refinement: bucket
    ownership transfers, degraded reads and deadline recoveries are all
    no-ops in the spec. [buckets] defaults to 2 and [lease] to 0.02 s,
    small enough that every round drives the request/grant/ship/ack
    transfer path. *)
