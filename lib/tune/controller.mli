(** The online self-tuning controller.

    A background domain wakes every [epoch] seconds, diffs the global
    {!Obs.Metrics} against the previous epoch, and feeds the diff
    through {!Policy.decide} for every registered dial — setting a dial
    (through its own concurrent-safe, clamping setter) when the
    hysteresis vote fires. One snapshot diff per epoch; nothing runs on
    a structure hot path.

    Kill-tolerant by construction: the knobs live in the structures, so
    a controller that dies (e.g. an injected [Faults.Killed] at the
    ["tune.epoch"] fault point) leaves the last-good configuration in
    place and the structures running. *)

type t

val default_epoch : float
(** 5 ms. *)

val create : ?cfg:Policy.config -> ?epoch:float -> unit -> t
(** Raises [Invalid_argument] if [epoch <= 0]. *)

val add_dial : t -> Fl.Tunable.dial -> unit
val add_dials : t -> Fl.Tunable.dial list -> unit
(** Register dials to steer; safe from any domain, including while the
    controller runs (it picks new dials up next epoch). Warm start: a
    dial whose (kind, name) identity this controller has steered before
    is immediately set to the last value it chose for that identity, so
    newly-arriving workers inherit the converged configuration instead
    of re-paying the search ramp. *)

val dial_count : t -> int

val start : t -> unit
(** Spawn the controller domain. Turns the obs switch on if it was off
    ({!stop} restores it). Raises [Invalid_argument] if already
    running. *)

val stop : t -> unit
(** Flag the loop, join the domain (a no-op if the controller already
    died), restore the obs switch. Idempotent. *)

val running : t -> bool

val step : t -> unit
(** Run one control epoch synchronously — what the background domain
    calls; exposed so tests drive the loop deterministically. Do not mix
    manual [step]s with a running controller. *)

(** {2 Counters (diagnostics)} *)

val epochs : t -> int
val decisions : t -> int

val errors : t -> int
(** Dial closures that raised plus controller-domain deaths; the loop
    (or what remains of it) never propagates these. *)
