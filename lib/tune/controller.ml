(* The online controller: a background domain that, every [epoch]
   seconds, diffs the global Obs.Metrics against the previous epoch's
   snapshot, distills the diff into a Policy.observation, and runs each
   registered dial's vote machine — setting the dial through its own
   concurrent-safe setter when a move fires.

   Failure semantics are deliberately one-sided: every knob setter
   clamps, every epoch is wrapped so one bad dial cannot kill the loop,
   and a controller death (an injected Faults.Killed at "tune.epoch", or
   anything else) simply ends the loop — the structures keep running
   with the last-good configuration, because the knobs live in the
   structures, not in the controller. Nothing here runs on a structure
   hot path. *)

type target = { dial : Fl.Tunable.dial; votes : Policy.votes }

type t = {
  cfg : Policy.config;
  epoch : float;
  targets : target list Atomic.t; (* CAS-push; never removed *)
  (* Warm-start memory: the last value this controller set for each
     (kind, name) dial identity. A freshly-registered dial with a known
     identity is initialized to that remembered value, so short-lived
     workers (or per-repeat structures in a benchmark) inherit the
     converged configuration instead of re-paying the search ramp. *)
  remembered : (Fl.Tunable.kind * string, int) Hashtbl.t;
  mem_lock : Mutex.t;
  (* Epoch bookkeeping below is touched only by whoever calls [step] —
     the controller domain once [start]ed, or a test driving epochs by
     hand (never both). *)
  mutable last : Obs.Metrics.snapshot;
  epochs : int Atomic.t;
  decisions : int Atomic.t;
  errors : int Atomic.t;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  mutable obs_was_enabled : bool;
}

let default_epoch = 0.005

let create ?(cfg = Policy.default) ?(epoch = default_epoch) () =
  if epoch <= 0.0 then invalid_arg "Controller.create: epoch must be > 0";
  {
    cfg;
    epoch;
    targets = Atomic.make [];
    remembered = Hashtbl.create 8;
    mem_lock = Mutex.create ();
    last = Obs.Metrics.snapshot ();
    epochs = Atomic.make 0;
    decisions = Atomic.make 0;
    errors = Atomic.make 0;
    stop_flag = Atomic.make false;
    domain = None;
    obs_was_enabled = true;
  }

let remember t (dial : Fl.Tunable.dial) v =
  Mutex.lock t.mem_lock;
  Hashtbl.replace t.remembered (dial.kind, dial.name) v;
  Mutex.unlock t.mem_lock

let recall t (dial : Fl.Tunable.dial) =
  Mutex.lock t.mem_lock;
  let v = Hashtbl.find_opt t.remembered (dial.kind, dial.name) in
  Mutex.unlock t.mem_lock;
  v

let add_dial t dial =
  let tgt = { dial; votes = Policy.new_votes () } in
  let rec push () =
    let cur = Atomic.get t.targets in
    if not (Atomic.compare_and_set t.targets cur (tgt :: cur)) then push ()
  in
  push ();
  (* Warm start: a dial identity the controller has already steered jumps
     straight to the last value set for it (the setter clamps). *)
  match recall t dial with
  | Some v -> ( try dial.set v with _ -> Atomic.incr t.errors)
  | None -> ()

let add_dials t dials = List.iter (add_dial t) dials
let dial_count t = List.length (Atomic.get t.targets)
let epochs t = Atomic.get t.epochs
let decisions t = Atomic.get t.decisions
let errors t = Atomic.get t.errors

(* One control epoch. Public so tests (and the fuzzer's synthetic
   schedules) can drive the loop without the background domain. *)
let step t =
  let now = Obs.Metrics.snapshot () in
  let d = Obs.Metrics.diff now t.last in
  t.last <- now;
  let o = Policy.observe d in
  List.iter
    (fun tgt ->
      (* A dial whose closures raise (a structure torn down under the
         controller) must not take the whole loop down with it. *)
      match Policy.decide t.cfg tgt.dial tgt.votes o with
      | Some v ->
          tgt.dial.set v;
          remember t tgt.dial v;
          Atomic.incr t.decisions
      | None -> ()
      | exception _ -> Atomic.incr t.errors)
    (Atomic.get t.targets);
  Atomic.incr t.epochs

let running t = match t.domain with Some _ -> true | None -> false

let start t =
  if running t then invalid_arg "Controller.start: already running";
  (* The controller is the telemetry's consumer: observing requires the
     switch on. Remember the prior state so [stop] restores it. *)
  t.obs_was_enabled <- Obs.enabled ();
  if not t.obs_was_enabled then Obs.set_enabled true;
  Atomic.set t.stop_flag false;
  t.last <- Obs.Metrics.snapshot ();
  t.domain <-
    Some
      (Domain.spawn (fun () ->
           try
             while not (Atomic.get t.stop_flag) do
               (* Kill point: a Faults plan can murder the controller
                  here. The exception ends this domain only — the
                  last-good configuration stays in the structures. *)
               Faults.point "tune.epoch";
               step t;
               Unix.sleepf t.epoch
             done
           with _ -> Atomic.incr t.errors))

let stop t =
  match t.domain with
  | None -> ()
  | Some d ->
      Atomic.set t.stop_flag true;
      Domain.join d;
      t.domain <- None;
      if not t.obs_was_enabled then Obs.set_enabled false
