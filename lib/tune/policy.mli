(** Decision rules of the self-tuning runtime (pure; unit-testable on
    synthetic observations).

    Hill climbing by doubling/halving with hysteresis: {!lean} maps one
    epoch's {!observation} to a per-dial direction, and {!decide} only
    moves a dial after [hysteresis] consecutive epochs lean the same way
    — a neutral or opposing epoch resets the streak, so noise cannot
    flap a knob. Moves are clamped to the dial's [lo..hi] range. *)

type observation = {
  ops : int;  (** futures created this epoch (sampling-weighted) *)
  slack_batch : float;
      (** mean batch of the slack-drain splice kind alone — the one kind
          a [Slack_window] dial's own window drains through *)
  force_p99_ns : int;
  pending_p50_ns : int;
      (** create→fulfil median — the latency cost batching is paying
          (median rather than tail so scheduler noise cannot masquerade
          as window pressure) *)
  fc_batch : float;  (** mean requests answered per combining pass *)
  fc_passes : int;
  elim_attempts : int;
  elim_hit_rate : float;
  elim_wait_p99_ns : int;
}

val observe : Obs.Metrics.snapshot -> observation
(** Distill one epoch's telemetry diff (pass {!Obs.Metrics.diff} of two
    snapshots, not a raw snapshot, for a scoped epoch). *)

type config = {
  min_ops : int;
  hysteresis : int;
  force_budget_ns : int;
  fill_hi : float;
  fill_lo : float;
  fc_batch_up : float;
  fc_batch_down : float;
  elim_hit_up : float;
  elim_hit_down : float;
  elim_wait_budget_ns : int;
}

val default : config

type direction = Up | Down | Hold

val lean :
  config -> Fl.Tunable.kind -> cur:int -> hi:int -> observation -> direction
(** The per-kind rule: where one epoch's evidence points for a dial
    currently at [cur] (with range ceiling [hi] — used by
    [Fc_scan_limit], where [cur = 0] means unlimited and reads as
    [hi]). *)

type votes = { mutable up : int; mutable down : int }
(** Hysteresis state, one per controlled dial; owned by whoever calls
    {!decide} (the controller domain). *)

val new_votes : unit -> votes

val decide : config -> Fl.Tunable.dial -> votes -> observation -> int option
(** Feed one epoch through a dial's vote machine: [Some v] = set the
    dial to [v] now, [None] = leave it alone this epoch. *)
