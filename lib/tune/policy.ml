(* Decision rules of the self-tuning runtime: pure functions from one
   epoch's telemetry diff to per-dial lean directions, plus the
   hysteresis vote machine that turns leans into actual moves.

   The shape is AIMD-by-doubling hill climbing: a dial moves by a factor
   of two (clamped to its [lo..hi] range) only after [hysteresis]
   consecutive epochs lean the same way, and any disagreeing or neutral
   epoch resets the streak — so one noisy epoch can neither flap a knob
   nor stall a sustained trend for long. All decisions read one
   Metrics diff; nothing here touches a structure hot path. *)

type observation = {
  ops : int; (* futures created this epoch (sampling-weighted) *)
  slack_batch : float; (* mean batch over the slack-drain splice kind *)
  force_p99_ns : int;
  pending_p50_ns : int; (* create->fulfil median: the latency batching
                           spends. Median, not tail: on an oversubscribed
                           host the p99 is owned by scheduler preemption,
                           the median by the window size. *)
  fc_batch : float; (* mean requests answered per combining pass *)
  fc_passes : int;
  elim_attempts : int;
  elim_hit_rate : float;
  elim_wait_p99_ns : int;
}

(* Build an observation from a Metrics diff. The slack signal reads the
   slack-drain splice kind ALONE: a Slack_window dial steers a [Slack]
   window, and those drain through exactly that kind — mixing in the
   per-structure opbuf window kinds (whose bounds no slack dial
   controls, and whose batches run small under light load) would dilute
   the fill signal into the hold band and pin the dial wherever it
   started. Combining passes are their own kind too, so no knob ever
   reads another knob's batches. *)
let observe (d : Obs.Metrics.snapshot) =
  let module E = Obs.Event in
  {
    ops = d.futures_created;
    slack_batch = Obs.Metrics.kind_mean_batch d E.k_slack_drain;
    force_p99_ns = Obs.Metrics.force_p99 d;
    pending_p50_ns = Obs.Metrics.pendingness_p50 d;
    fc_batch = Obs.Metrics.kind_mean_batch d E.k_fc_pass;
    fc_passes = d.splice_kind_splices.(E.k_fc_pass);
    elim_attempts = d.elim_hits + d.elim_misses;
    elim_hit_rate = Obs.Metrics.elim_hit_rate d;
    elim_wait_p99_ns = Obs.Metrics.elim_wait_p99 d;
  }

type config = {
  min_ops : int; (* idle gate: epochs below this hold every dial *)
  hysteresis : int; (* consecutive same-direction epochs before a move *)
  force_budget_ns : int; (* latency budget: slack backs off when either
                            force p99 or pendingness p99 exceeds this *)
  fill_hi : float; (* windows filling past this fraction widen slack *)
  fill_lo : float; (* windows under this fraction shrink slack *)
  fc_batch_up : float; (* passes answering >= this raise the budget *)
  fc_batch_down : float; (* passes answering <= this lower it *)
  elim_hit_up : float; (* hit rate >= this widens the elimination array *)
  elim_hit_down : float; (* hit rate <= this narrows it *)
  elim_wait_budget_ns : int; (* widening stops once parked waits hit this *)
}

let default =
  {
    min_ops = 64;
    hysteresis = 2;
    force_budget_ns = 100_000;
    fill_hi = 0.75;
    fill_lo = 0.25;
    (* A combining pass pays for itself only when it answers several
       requests: near-single-request passes (batch below ~1.75) mean the
       budget is buying latency, not batching, so the budget shrinks
       unless passes are genuinely fat. *)
    fc_batch_up = 3.0;
    fc_batch_down = 1.75;
    elim_hit_up = 0.4;
    elim_hit_down = 0.05;
    elim_wait_budget_ns = 200_000;
  }

type direction = Up | Down | Hold

(* The per-kind lean rules. [cur] is the dial's current value (for
   Fc_scan_limit, 0 means unlimited and reads as [hi]). *)
let lean cfg (kind : Fl.Tunable.kind) ~cur ~hi (o : observation) =
  match kind with
  | Fl.Tunable.Slack_window ->
      if o.ops < cfg.min_ops then Hold
      else if
        o.force_p99_ns > cfg.force_budget_ns
        || o.pending_p50_ns > cfg.force_budget_ns
      then
        (* Over the latency budget: forces are stalling, or futures sit
           pending so long that a wider window is buying nothing callers
           can feel. Trade batching for latency before anything else —
           this is also what stops the fill rule's climb, since under
           saturation a window of any size drains full. *)
        Down
      else if o.slack_batch >= cfg.fill_hi *. float_of_int cur then
        (* Windows drain nearly full — traffic would fill a bigger one. *)
        Up
      else if o.slack_batch < cfg.fill_lo *. float_of_int cur then Down
      else Hold
  | Fl.Tunable.Fc_pass_budget ->
      if o.fc_passes = 0 then Hold
      else if o.fc_batch >= cfg.fc_batch_up then Up
      else if o.fc_batch <= cfg.fc_batch_down then Down
      else Hold
  | Fl.Tunable.Fc_scan_limit ->
      if o.fc_passes = 0 then Hold
      else if o.fc_batch < cfg.fc_batch_up then
        (* Light combining: passes answer ~one request each, so a scan
           bound saves nothing and its cursor bookkeeping is pure
           per-pass overhead — climb back toward the dial's top, which
           the fc dial maps to the zero-overhead unbounded scan. *)
        Up
      else begin
        (* Real combining pressure: aim the bound at a small multiple of
           the observed batch — enough headroom to answer everyone, not
           enough to pay for a long tail of retained idle records. *)
        let cur = if cur <= 0 then hi else cur in
        let desired = max 8 (4 * int_of_float (ceil o.fc_batch)) in
        if desired >= 2 * cur then Up
        else if 2 * desired <= cur then Down
        else Hold
      end
  | Fl.Tunable.Elim_max_width ->
      if o.elim_attempts < cfg.min_ops then Hold
      else if
        o.elim_hit_rate >= cfg.elim_hit_up
        && o.elim_wait_p99_ns <= cfg.elim_wait_budget_ns
      then Up
      else if o.elim_hit_rate <= cfg.elim_hit_down then Down
      else Hold
  | Fl.Tunable.Elim_min_width ->
      (* The floor follows the same signal as the ceiling but without
         the wait guard: a high hit rate keeps the array from collapsing
         to width 1 between bursts. *)
      if o.elim_attempts < cfg.min_ops then Hold
      else if o.elim_hit_rate >= cfg.elim_hit_up then Up
      else if o.elim_hit_rate <= cfg.elim_hit_down then Down
      else Hold

(* Hysteresis vote state, one per controlled dial. *)
type votes = { mutable up : int; mutable down : int }

let new_votes () = { up = 0; down = 0 }

(* Feed one epoch's observation through a dial's vote machine. Returns
   the value to set, or [None] to leave the dial alone this epoch. *)
let decide cfg (dial : Fl.Tunable.dial) votes o =
  let cur = dial.get () in
  match lean cfg dial.kind ~cur ~hi:dial.hi o with
  | Hold ->
      votes.up <- 0;
      votes.down <- 0;
      None
  | Up ->
      votes.down <- 0;
      votes.up <- votes.up + 1;
      if votes.up < cfg.hysteresis then None
      else begin
        votes.up <- 0;
        let cur = if cur <= 0 then dial.hi else cur in
        let next = min dial.hi (2 * cur) in
        if next <> dial.get () then Some next else None
      end
  | Down ->
      votes.up <- 0;
      votes.down <- votes.down + 1;
      if votes.down < cfg.hysteresis then None
      else begin
        votes.down <- 0;
        let cur = if cur <= 0 then dial.hi else cur in
        (* Floor at 1 even when [lo = 0]: for the scan limit, 0 means
           unlimited — a maximal setting, not a minimal one — so halving
           must never fall through to it. *)
        let next = max dial.lo (max 1 (cur / 2)) in
        if next <> cur then Some next else None
      end
