type 'a t = { mutable items : 'a list; mutable length : int }

let create () = { items = []; length = 0 }

let push t x =
  t.items <- x :: t.items;
  t.length <- t.length + 1

let pop t =
  match t.items with
  | [] -> None
  | x :: rest ->
      t.items <- rest;
      t.length <- t.length - 1;
      Some x

let top t = match t.items with [] -> None | x :: _ -> Some x
let is_empty t = t.length = 0
let length t = t.length

let push_list t xs = List.iter (push t) xs

let pop_many t n =
  if n < 0 then invalid_arg "Seq_stack.pop_many: negative count";
  let rec loop k acc =
    if k = 0 then List.rev acc
    else
      match pop t with
      | None -> List.rev acc
      | Some x -> loop (k - 1) (x :: acc)
  in
  loop n []

let to_list t = t.items
