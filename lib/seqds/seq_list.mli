(** Sequential sorted singly-linked list implementing a set.

    This deliberately mirrors the cost model of the Harris lock-free list
    (linear search from the head) because the strong-FL list applies
    batches of operations to it under a lock, and the paper's Figure 6
    comparison depends on list traversal being the dominant cost.

    A {e cursor} exposes the single-traversal batch application used by the
    strong-FL list: after sorting pending operations by key, successive
    [seek_*] calls walk the list monotonically, so a whole batch costs one
    traversal. Not thread-safe. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
end

module Make (K : KEY) : sig
  type t

  val create : unit -> t

  val insert : t -> K.t -> bool
  (** [insert t k] adds [k]; [false] if already present. *)

  val remove : t -> K.t -> bool
  (** [remove t k] deletes [k]; [false] if absent. *)

  val contains : t -> K.t -> bool
  val is_empty : t -> bool
  val length : t -> int

  val to_list : t -> K.t list
  (** Ascending snapshot. *)

  type cursor
  (** Monotone position in the list. Keys passed to successive [seek_*]
      calls on one cursor must be non-decreasing; otherwise
      [Invalid_argument] is raised. A cursor is invalidated by direct
      [insert]/[remove] calls on the underlying list. *)

  val cursor : t -> cursor
  (** A fresh cursor positioned before the first element. *)

  val seek_insert : cursor -> K.t -> bool
  val seek_remove : cursor -> K.t -> bool

  val seek_contains : cursor -> K.t -> bool
  (** Like [insert]/[remove]/[contains] but searching from the cursor's
      position and leaving the cursor just before the affected position,
      so the next non-decreasing key resumes the same traversal. *)
end
