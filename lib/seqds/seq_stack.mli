(** Sequential LIFO stack on a singly-linked list.

    The strong-FL stack applies (possibly combined) batches of operations
    to a sequential instance while holding the evaluation lock (Kogan &
    Herlihy §4), so no synchronization is needed here. Not thread-safe. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** [pop t] removes and returns the top element, or [None] when empty. *)

val top : 'a t -> 'a option
val is_empty : 'a t -> bool
val length : 'a t -> int

val push_list : 'a t -> 'a list -> unit
(** [push_list t [x1; ...; xn]] pushes [x1] first, so [xn] ends on top. *)

val pop_many : 'a t -> int -> 'a list
(** [pop_many t n] pops up to [n] elements, top first. Returns fewer than
    [n] when the stack runs out. Raises [Invalid_argument] if [n < 0]. *)

val to_list : 'a t -> 'a list
(** Top-first snapshot. *)
