module type KEY = sig
  type t

  val compare : t -> t -> int
end

module Make (K : KEY) = struct
  (* A sentinel head node carries no key; [next] of the last node is None.
     Keys are strictly increasing along the list. *)
  type node = { key : K.t; mutable next : node option }

  type t = {
    mutable first : node option; (* smallest key *)
    mutable length : int;
  }

  let create () = { first = None; length = 0 }
  let is_empty t = t.length = 0
  let length t = t.length

  let to_list t =
    let rec loop acc = function
      | None -> List.rev acc
      | Some n -> loop (n.key :: acc) n.next
    in
    loop [] t.first

  (* A cursor remembers the last node strictly before the current search
     window: [pred = None] means the window starts at [t.first]. [last_key]
     enforces the monotonicity contract. *)
  type cursor = {
    list : t;
    mutable pred : node option;
    mutable last_key : K.t option;
  }

  let cursor t = { list = t; pred = None; last_key = None }

  let check_monotone c k =
    match c.last_key with
    | Some k' when K.compare k k' < 0 ->
        invalid_arg "Seq_list: cursor keys must be non-decreasing"
    | _ -> c.last_key <- Some k

  (* Advance [c.pred] until the node after it has key >= k (or is None).
     Returns that node. *)
  let seek c k =
    let after = function
      | None -> c.list.first
      | Some n -> n.next
    in
    let rec loop () =
      match after c.pred with
      | Some n when K.compare n.key k < 0 ->
          c.pred <- Some n;
          loop ()
      | found -> found
    in
    loop ()

  let seek_contains c k =
    check_monotone c k;
    match seek c k with
    | Some n -> K.compare n.key k = 0
    | None -> false

  let seek_insert c k =
    check_monotone c k;
    match seek c k with
    | Some n when K.compare n.key k = 0 -> false
    | tail ->
        let node = { key = k; next = tail } in
        (match c.pred with
        | None -> c.list.first <- Some node
        | Some p -> p.next <- Some node);
        c.list.length <- c.list.length + 1;
        true

  let seek_remove c k =
    check_monotone c k;
    match seek c k with
    | Some n when K.compare n.key k = 0 ->
        (match c.pred with
        | None -> c.list.first <- n.next
        | Some p -> p.next <- n.next);
        c.list.length <- c.list.length - 1;
        true
    | _ -> false

  let insert t k = seek_insert (cursor t) k
  let remove t k = seek_remove (cursor t) k
  let contains t k = seek_contains (cursor t) k
end
