(** Sequential FIFO queue (two-list / banker's queue with amortized O(1)
    operations).

    Used by the strong-FL queue as the instance that batches of pending
    operations are applied to under the evaluation lock. Not thread-safe. *)

type 'a t

val create : unit -> 'a t
val enqueue : 'a t -> 'a -> unit

val dequeue : 'a t -> 'a option
(** [dequeue t] removes and returns the oldest element, or [None]. *)

val peek : 'a t -> 'a option
val is_empty : 'a t -> bool
val length : 'a t -> int

val enqueue_list : 'a t -> 'a list -> unit
(** [enqueue_list t [x1; ...; xn]] enqueues [x1] first. *)

val dequeue_many : 'a t -> int -> 'a list
(** [dequeue_many t n] dequeues up to [n] elements, oldest first.
    Raises [Invalid_argument] if [n < 0]. *)

val to_list : 'a t -> 'a list
(** Oldest-first snapshot. *)
