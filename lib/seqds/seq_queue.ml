type 'a t = {
  mutable front : 'a list; (* oldest first *)
  mutable back : 'a list; (* newest first *)
  mutable length : int;
}

let create () = { front = []; back = []; length = 0 }

let enqueue t x =
  t.back <- x :: t.back;
  t.length <- t.length + 1

let normalize t =
  if t.front = [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let dequeue t =
  normalize t;
  match t.front with
  | [] -> None
  | x :: rest ->
      t.front <- rest;
      t.length <- t.length - 1;
      Some x

let peek t =
  normalize t;
  match t.front with [] -> None | x :: _ -> Some x

let is_empty t = t.length = 0
let length t = t.length

let enqueue_list t xs = List.iter (enqueue t) xs

let dequeue_many t n =
  if n < 0 then invalid_arg "Seq_queue.dequeue_many: negative count";
  let rec loop k acc =
    if k = 0 then List.rev acc
    else
      match dequeue t with
      | None -> List.rev acc
      | Some x -> loop (k - 1) (x :: acc)
  in
  loop n []

let to_list t = t.front @ List.rev t.back
