(* The single home for the repo's percentile math. Two halves:

   - Exact statistics over sample arrays (mean/std_dev/min/max/
     percentile/median), used by the benchmark reports.
     [Workload.Stats] re-exports these, so bench tables and the obs
     subsystem share one definition of p50/p99 (nearest-rank).
   - A log-bucketed (HDR-style) concurrent histogram for hot-path
     latencies and batch sizes: recording is two atomic bumps with no
     allocation, buckets give ≤ 25% relative error (4 sub-buckets per
     power of two), and reported percentiles use the same nearest-rank
     convention as the exact half. *)

(* ------------------------ exact sample stats ------------------------- *)

let check_non_empty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample array")

let mean xs =
  check_non_empty "Histogram.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let std_dev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let sum_sq =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    in
    sqrt (sum_sq /. float_of_int (n - 1))
  end

let min xs =
  check_non_empty "Histogram.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_non_empty "Histogram.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let percentile xs p =
  check_non_empty "Histogram.percentile" xs;
  if p < 0.0 || p > 100.0 then
    invalid_arg "Histogram.percentile: p out of [0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))

let median xs = percentile xs 50.0

(* ------------------------ log-bucketed histogram --------------------- *)

(* Buckets 0..7 hold the values 0..7 exactly; beyond that each power of
   two is split into 4 sub-buckets (top two bits below the MSB). OCaml
   ints have a 62-bit magnitude, so the largest MSB position is 61 and
   the index space is 8 + (61-3+1)*4 = 244 buckets. *)
let buckets = 244

let bucket_of_value v =
  if v <= 0 then 0
  else if v < 8 then v
  else begin
    (* Highest set bit by binary search — six branches instead of one
       shift per bit (latencies are ~2^30 ns, so the loop form costs
       ~30 iterations right on the record path). *)
    let e = ref 3 and x = ref (v lsr 3) in
    if !x >= 1 lsl 32 then begin
      e := !e + 32;
      x := !x lsr 32
    end;
    if !x >= 1 lsl 16 then begin
      e := !e + 16;
      x := !x lsr 16
    end;
    if !x >= 1 lsl 8 then begin
      e := !e + 8;
      x := !x lsr 8
    end;
    if !x >= 1 lsl 4 then begin
      e := !e + 4;
      x := !x lsr 4
    end;
    if !x >= 1 lsl 2 then begin
      e := !e + 2;
      x := !x lsr 2
    end;
    if !x >= 2 then incr e;
    let sub = (v lsr (!e - 2)) land 3 in
    let idx = 8 + ((!e - 3) * 4) + sub in
    if idx >= buckets then buckets - 1 else idx
  end

(* Lower bound of the bucket's value range — what reported percentiles
   quote, biasing them down by at most one sub-bucket width. *)
let value_of_bucket idx =
  if idx < 0 || idx >= buckets then
    invalid_arg "Histogram.value_of_bucket: index out of range";
  if idx < 8 then idx
  else begin
    let k = idx - 8 in
    let e = 3 + (k / 4) and sub = k mod 4 in
    (1 lsl e) + (sub lsl (e - 2))
  end

type t = {
  counts : int Atomic.t array;
  sum : Sync.Cas_counter.t; (* exact sum of recorded values *)
}

let create () = { counts = Array.init buckets (fun _ -> Atomic.make 0); sum = Sync.Cas_counter.create () }

(* Weighted record: one sampled observation standing for [w] real ones.
   The bucket gains [w] and the sum gains [v * w], so counts, means and
   percentiles over a snapshot stay unbiased estimates of the unsampled
   stream. [w = 1] is the exact (unsampled) path. *)
let record_n t v ~w =
  if w > 0 then begin
    let v = if v < 0 then 0 else v in
    ignore (Atomic.fetch_and_add t.counts.(bucket_of_value v) w);
    Sync.Cas_counter.add t.sum (v * w)
  end

let record t v = record_n t v ~w:1

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Sync.Cas_counter.reset t.sum

(* A snapshot is plain data: diffable, and safe to read at leisure while
   recording continues (each bucket is read atomically; cross-bucket skew
   during a concurrent snapshot is bounded by in-flight recordings). *)
type s = { counts : int array; sum : int }

let snapshot (t : t) =
  { counts = Array.map Atomic.get t.counts; sum = Sync.Cas_counter.total t.sum }

let diff later earlier =
  {
    counts = Array.init buckets (fun i -> later.counts.(i) - earlier.counts.(i));
    sum = later.sum - earlier.sum;
  }

let count s = Array.fold_left ( + ) 0 s.counts

let mean_value s =
  let n = count s in
  if n = 0 then 0.0 else float_of_int s.sum /. float_of_int n

(* Nearest-rank percentile over the bucket counts, quoting the containing
   bucket's lower bound — the same rank convention as [percentile]. *)
let percentile_value s p =
  if p < 0.0 || p > 100.0 then
    invalid_arg "Histogram.percentile_value: p out of [0, 100]";
  let n = count s in
  if n = 0 then 0
  else begin
    let rank =
      Stdlib.max 1
        (Stdlib.min n (int_of_float (ceil (p /. 100.0 *. float_of_int n))))
    in
    let acc = ref 0 and idx = ref 0 and found = ref (-1) in
    while !found < 0 && !idx < buckets do
      acc := !acc + s.counts.(!idx);
      if !acc >= rank then found := !idx;
      incr idx
    done;
    value_of_bucket (Stdlib.max 0 !found)
  end
