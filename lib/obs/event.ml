(* The event taxonomy of the flight recorder. Tags and splice kinds are
   small ints so the record path stores them into preallocated int arrays
   without boxing; the string names exist only for the post-run exporter
   and for tests. Keep [name]/[kind_name] in sync with the tag lists —
   DESIGN.md §10 documents the taxonomy. *)

(* Operation lifecycle. [a] carries the pending/force latency in ns. *)
let future_created = 0
let future_fulfilled = 1
let future_forced = 2
let future_cancelled = 3
let future_poisoned = 4

(* Optimization layers. window_splice: [a] = batch size, [b] = kind.
   elim_hit/elim_miss: [a] = shard index. *)
let window_splice = 5
let elim_hit = 6
let elim_miss = 7
let combiner_acquire = 8
let combiner_takeover = 9
let combiner_retire = 10
let backoff_exhausted = 11

(* Chaos / recovery (Workload.Runner). [a] = worker index;
   worker_recovered's [b] = futures poisoned by the abandon hook. *)
let worker_killed = 12
let worker_recovered = 13
let worker_stalled = 14

(* Sharded-map bucket transfers (Fl.Shard_map). [a] = bucket id.
   shard_ship's [b] = shipped window size; shard_ack's [b] = transfer
   latency (request -> ack) in ns; shard_recover's [b] = futures
   poisoned out of the lost window. *)
let shard_request = 15
let shard_grant = 16
let shard_ship = 17
let shard_ack = 18
let shard_recover = 19

(* Service layer (Workload.Service / Workload.Overload). future_rejected
   is the fourth terminal future fate: admission control refused the op.
   service_shed's [a] = overload stage at shed time; service_stage's
   [a]/[b] = old/new stage; service_complete's [a] = request sojourn
   (intended arrival -> result forced) in ns — the coordinated-omission-
   safe latency. shard_degraded's [a] = bucket id answering a read-only
   find while the bucket is in flight. *)
let future_rejected = 20
let service_admit = 21
let service_shed = 22
let service_stage = 23
let service_complete = 24
let shard_degraded = 25

(* Completed-operation events for the online conformance monitor
   (Lin.Stream). One event per sampled completed structure operation:
   [a] = (value lsl 6) lor obj (obj = structure id, 0..63), [b] = the
   operation's duration in ns, so the op's interval is [ts - b, ts].
   Empty removals carry no value ([a] = obj) and are only meaningful at
   sampling stride 1 — an empty verdict constrains *every* value, so a
   sampled subset cannot certify it. *)
let op_enq = 26
let op_deq = 27
let op_deq_empty = 28
let op_push = 29
let op_pop = 30
let op_pop_empty = 31

let tag_count = 32

let name = function
  | 0 -> "future.created"
  | 1 -> "future.fulfilled"
  | 2 -> "future.forced"
  | 3 -> "future.cancelled"
  | 4 -> "future.poisoned"
  | 5 -> "splice"
  | 6 -> "elim.hit"
  | 7 -> "elim.miss"
  | 8 -> "combiner.acquire"
  | 9 -> "combiner.takeover"
  | 10 -> "combiner.retire"
  | 11 -> "backoff.exhausted"
  | 12 -> "worker.killed"
  | 13 -> "worker.recovered"
  | 14 -> "worker.stalled"
  | 15 -> "shard.request"
  | 16 -> "shard.grant"
  | 17 -> "shard.ship"
  | 18 -> "shard.ack"
  | 19 -> "shard.recover"
  | 20 -> "future.rejected"
  | 21 -> "service.admit"
  | 22 -> "service.shed"
  | 23 -> "service.stage"
  | 24 -> "service.complete"
  | 25 -> "shard.degraded"
  | 26 -> "op.enq"
  | 27 -> "op.deq"
  | 28 -> "op.deq.empty"
  | 29 -> "op.push"
  | 30 -> "op.pop"
  | 31 -> "op.pop.empty"
  | t -> "unknown." ^ string_of_int t

let is_terminal t =
  t = future_fulfilled || t = future_cancelled || t = future_poisoned
  || t = future_rejected

(* Splice kinds: which pending window a batch was spliced out of. *)
let k_weak_stack_push = 0
let k_weak_stack_pop = 1
let k_weak_queue_enq = 2
let k_weak_queue_deq = 3
let k_medium_stack_push = 4
let k_medium_stack_pop = 5
let k_medium_queue_enq = 6
let k_medium_queue_deq = 7
let k_weak_list = 8
let k_slack_drain = 9
let k_fc_pass = 10
let k_shard = 11
let kind_count = 12

let kind_name = function
  | 0 -> "weak-stack-push"
  | 1 -> "weak-stack-pop"
  | 2 -> "weak-queue-enq"
  | 3 -> "weak-queue-deq"
  | 4 -> "medium-stack-push"
  | 5 -> "medium-stack-pop"
  | 6 -> "medium-queue-enq"
  | 7 -> "medium-queue-deq"
  | 8 -> "weak-list"
  | 9 -> "slack-drain"
  | 10 -> "fc-pass"
  | 11 -> "shard-window"
  | k -> "kind-" ^ string_of_int k
