(* Optimization telemetry: striped counters (Sync.Cas_counter — one
   padded stripe per domain hash, so bumping a counter never bounces a
   cache line between domains) plus log-bucketed histograms for the four
   quantities that explain the paper's optimizations:

   - pendingness: future creation -> fulfilment, the window the paper's
     whole design keeps open;
   - force latency: force -> return, what the caller actually waits;
   - splice batch size: ops amortized by each single-CAS window splice
     (and each flat-combining pass);
   - elimination wait: how long a parked offer sits in its shard.

   One process-global instance: the instrumentation points live in
   library code that has no handle to thread a metrics object through.
   Scope a measurement by diffing two snapshots. *)

module C = Sync.Cas_counter

type t = {
  futures_created : C.t;
  futures_fulfilled : C.t;
  futures_forced : C.t;
  futures_cancelled : C.t;
  futures_poisoned : C.t;
  futures_rejected : C.t;
  splices : C.t;
  splice_ops : C.t;
  (* Per-splice-kind counters, indexed by Event.k_* (length
     Event.kind_count). The controller needs to attribute batch sizes to
     the knob that produced them — slack drains vs combining passes —
     which the aggregate splice histogram cannot do. *)
  splice_kind_splices : C.t array;
  splice_kind_ops : C.t array;
  elim_hits : C.t;
  elim_misses : C.t;
  combiner_acquires : C.t;
  combiner_takeovers : C.t;
  combiner_retires : C.t;
  backoff_exhausted : C.t;
  workers_killed : C.t;
  workers_recovered : C.t;
  workers_stalled : C.t;
  shard_requests : C.t;
  shard_grants : C.t;
  shard_ships : C.t;
  shard_acks : C.t;
  shard_recovers : C.t;
  shard_degraded_finds : C.t;
  service_admitted : C.t;
  service_shed : C.t;
  service_degrades : C.t;
  pendingness_ns : Histogram.t;
  force_ns : Histogram.t;
  splice_batch : Histogram.t;
  elim_wait_ns : Histogram.t;
  transfer_ns : Histogram.t;
  service_ns : Histogram.t;
}

let create () =
  {
    futures_created = C.create ();
    futures_fulfilled = C.create ();
    futures_forced = C.create ();
    futures_cancelled = C.create ();
    futures_poisoned = C.create ();
    futures_rejected = C.create ();
    splices = C.create ();
    splice_ops = C.create ();
    splice_kind_splices = Array.init Event.kind_count (fun _ -> C.create ());
    splice_kind_ops = Array.init Event.kind_count (fun _ -> C.create ());
    elim_hits = C.create ();
    elim_misses = C.create ();
    combiner_acquires = C.create ();
    combiner_takeovers = C.create ();
    combiner_retires = C.create ();
    backoff_exhausted = C.create ();
    workers_killed = C.create ();
    workers_recovered = C.create ();
    workers_stalled = C.create ();
    shard_requests = C.create ();
    shard_grants = C.create ();
    shard_ships = C.create ();
    shard_acks = C.create ();
    shard_recovers = C.create ();
    shard_degraded_finds = C.create ();
    service_admitted = C.create ();
    service_shed = C.create ();
    service_degrades = C.create ();
    pendingness_ns = Histogram.create ();
    force_ns = Histogram.create ();
    splice_batch = Histogram.create ();
    elim_wait_ns = Histogram.create ();
    transfer_ns = Histogram.create ();
    service_ns = Histogram.create ();
  }

let global = create ()

let reset () =
  let g = global in
  List.iter C.reset
    [
      g.futures_created; g.futures_fulfilled; g.futures_forced;
      g.futures_cancelled; g.futures_poisoned; g.futures_rejected;
      g.splices; g.splice_ops;
      g.elim_hits; g.elim_misses; g.combiner_acquires; g.combiner_takeovers;
      g.combiner_retires; g.backoff_exhausted; g.workers_killed;
      g.workers_recovered; g.workers_stalled; g.shard_requests;
      g.shard_grants; g.shard_ships; g.shard_acks; g.shard_recovers;
      g.shard_degraded_finds; g.service_admitted; g.service_shed;
      g.service_degrades;
    ];
  Array.iter C.reset g.splice_kind_splices;
  Array.iter C.reset g.splice_kind_ops;
  List.iter Histogram.reset
    [ g.pendingness_ns; g.force_ns; g.splice_batch; g.elim_wait_ns;
      g.transfer_ns; g.service_ns ]

(* ------------------------- recording hooks -------------------------- *)
(* Called by the Obs wrappers with the switch already checked. *)

(* The future-lifecycle hooks carry a sampling weight [w] (the Obs
   sampler's stride): one recorded lifecycle stands for [w] real ones,
   so counters gain [w] and histograms use the weighted record. Every
   other hook is unsampled ([w] would always be 1). *)

let on_future_created w = C.add global.futures_created w

let on_future_fulfilled ~w d =
  C.add global.futures_fulfilled w;
  Histogram.record_n global.pendingness_ns d ~w

let on_future_forced ~w d =
  C.add global.futures_forced w;
  Histogram.record_n global.force_ns d ~w

let on_future_cancelled w = C.add global.futures_cancelled w
let on_future_poisoned w = C.add global.futures_poisoned w
let on_future_rejected w = C.add global.futures_rejected w

let on_splice ~kind n =
  C.incr global.splices;
  C.add global.splice_ops n;
  let k = if kind < 0 || kind >= Event.kind_count then 0 else kind in
  C.incr global.splice_kind_splices.(k);
  C.add global.splice_kind_ops.(k) n;
  Histogram.record global.splice_batch n

let on_elim_hit () = C.incr global.elim_hits
let on_elim_miss () = C.incr global.elim_misses
let on_elim_wait d = Histogram.record global.elim_wait_ns d
let on_combiner_acquire () = C.incr global.combiner_acquires
let on_combiner_takeover () = C.incr global.combiner_takeovers
let on_combiner_retire () = C.incr global.combiner_retires
let on_backoff_exhausted () = C.incr global.backoff_exhausted
let on_worker_killed () = C.incr global.workers_killed
let on_worker_recovered () = C.incr global.workers_recovered
let on_worker_stalled () = C.incr global.workers_stalled
let on_shard_request () = C.incr global.shard_requests
let on_shard_grant () = C.incr global.shard_grants
let on_shard_ship () = C.incr global.shard_ships

let on_shard_ack d =
  C.incr global.shard_acks;
  if d > 0 then Histogram.record global.transfer_ns d

let on_shard_recover () = C.incr global.shard_recovers
let on_shard_degraded () = C.incr global.shard_degraded_finds
let on_service_admit () = C.incr global.service_admitted
let on_service_shed () = C.incr global.service_shed
let on_service_degrade () = C.incr global.service_degrades

(* Request sojourn: intended arrival -> result forced, ns. Unsampled —
   the service layer records one per admitted request it completes, and
   the tail (p999) is exactly what sampling would erase. *)
let on_service_complete d = Histogram.record global.service_ns d

(* ---------------------------- snapshots ------------------------------ *)

type snapshot = {
  futures_created : int;
  futures_fulfilled : int;
  futures_forced : int;
  futures_cancelled : int;
  futures_poisoned : int;
  futures_rejected : int;
  splices : int;
  splice_ops : int;
  splice_kind_splices : int array;
  splice_kind_ops : int array;
  elim_hits : int;
  elim_misses : int;
  combiner_acquires : int;
  combiner_takeovers : int;
  combiner_retires : int;
  backoff_exhausted : int;
  workers_killed : int;
  workers_recovered : int;
  workers_stalled : int;
  shard_requests : int;
  shard_grants : int;
  shard_ships : int;
  shard_acks : int;
  shard_recovers : int;
  shard_degraded_finds : int;
  service_admitted : int;
  service_shed : int;
  service_degrades : int;
  pendingness_ns : Histogram.s;
  force_ns : Histogram.s;
  splice_batch : Histogram.s;
  elim_wait_ns : Histogram.s;
  transfer_ns : Histogram.s;
  service_ns : Histogram.s;
}

let snapshot () =
  let g = global in
  {
    futures_created = C.total g.futures_created;
    futures_fulfilled = C.total g.futures_fulfilled;
    futures_forced = C.total g.futures_forced;
    futures_cancelled = C.total g.futures_cancelled;
    futures_poisoned = C.total g.futures_poisoned;
    futures_rejected = C.total g.futures_rejected;
    splices = C.total g.splices;
    splice_ops = C.total g.splice_ops;
    splice_kind_splices = Array.map C.total g.splice_kind_splices;
    splice_kind_ops = Array.map C.total g.splice_kind_ops;
    elim_hits = C.total g.elim_hits;
    elim_misses = C.total g.elim_misses;
    combiner_acquires = C.total g.combiner_acquires;
    combiner_takeovers = C.total g.combiner_takeovers;
    combiner_retires = C.total g.combiner_retires;
    backoff_exhausted = C.total g.backoff_exhausted;
    workers_killed = C.total g.workers_killed;
    workers_recovered = C.total g.workers_recovered;
    workers_stalled = C.total g.workers_stalled;
    shard_requests = C.total g.shard_requests;
    shard_grants = C.total g.shard_grants;
    shard_ships = C.total g.shard_ships;
    shard_acks = C.total g.shard_acks;
    shard_recovers = C.total g.shard_recovers;
    shard_degraded_finds = C.total g.shard_degraded_finds;
    service_admitted = C.total g.service_admitted;
    service_shed = C.total g.service_shed;
    service_degrades = C.total g.service_degrades;
    pendingness_ns = Histogram.snapshot g.pendingness_ns;
    force_ns = Histogram.snapshot g.force_ns;
    splice_batch = Histogram.snapshot g.splice_batch;
    elim_wait_ns = Histogram.snapshot g.elim_wait_ns;
    transfer_ns = Histogram.snapshot g.transfer_ns;
    service_ns = Histogram.snapshot g.service_ns;
  }

let diff (later : snapshot) (earlier : snapshot) =
  {
    futures_created = later.futures_created - earlier.futures_created;
    futures_fulfilled = later.futures_fulfilled - earlier.futures_fulfilled;
    futures_forced = later.futures_forced - earlier.futures_forced;
    futures_cancelled = later.futures_cancelled - earlier.futures_cancelled;
    futures_poisoned = later.futures_poisoned - earlier.futures_poisoned;
    futures_rejected = later.futures_rejected - earlier.futures_rejected;
    splices = later.splices - earlier.splices;
    splice_ops = later.splice_ops - earlier.splice_ops;
    splice_kind_splices =
      Array.init Event.kind_count (fun i ->
          later.splice_kind_splices.(i) - earlier.splice_kind_splices.(i));
    splice_kind_ops =
      Array.init Event.kind_count (fun i ->
          later.splice_kind_ops.(i) - earlier.splice_kind_ops.(i));
    elim_hits = later.elim_hits - earlier.elim_hits;
    elim_misses = later.elim_misses - earlier.elim_misses;
    combiner_acquires = later.combiner_acquires - earlier.combiner_acquires;
    combiner_takeovers = later.combiner_takeovers - earlier.combiner_takeovers;
    combiner_retires = later.combiner_retires - earlier.combiner_retires;
    backoff_exhausted = later.backoff_exhausted - earlier.backoff_exhausted;
    workers_killed = later.workers_killed - earlier.workers_killed;
    workers_recovered = later.workers_recovered - earlier.workers_recovered;
    workers_stalled = later.workers_stalled - earlier.workers_stalled;
    shard_requests = later.shard_requests - earlier.shard_requests;
    shard_grants = later.shard_grants - earlier.shard_grants;
    shard_ships = later.shard_ships - earlier.shard_ships;
    shard_acks = later.shard_acks - earlier.shard_acks;
    shard_recovers = later.shard_recovers - earlier.shard_recovers;
    shard_degraded_finds =
      later.shard_degraded_finds - earlier.shard_degraded_finds;
    service_admitted = later.service_admitted - earlier.service_admitted;
    service_shed = later.service_shed - earlier.service_shed;
    service_degrades = later.service_degrades - earlier.service_degrades;
    pendingness_ns = Histogram.diff later.pendingness_ns earlier.pendingness_ns;
    force_ns = Histogram.diff later.force_ns earlier.force_ns;
    splice_batch = Histogram.diff later.splice_batch earlier.splice_batch;
    elim_wait_ns = Histogram.diff later.elim_wait_ns earlier.elim_wait_ns;
    transfer_ns = Histogram.diff later.transfer_ns earlier.transfer_ns;
    service_ns = Histogram.diff later.service_ns earlier.service_ns;
  }

(* --------------------------- derived views --------------------------- *)

let pendingness_p50 s = Histogram.percentile_value s.pendingness_ns 50.0
let pendingness_p99 s = Histogram.percentile_value s.pendingness_ns 99.0
let pendingness_p999 s = Histogram.percentile_value s.pendingness_ns 99.9
let force_p50 s = Histogram.percentile_value s.force_ns 50.0
let force_p99 s = Histogram.percentile_value s.force_ns 99.0
let force_p999 s = Histogram.percentile_value s.force_ns 99.9
let mean_splice_batch s = Histogram.mean_value s.splice_batch
let elim_wait_p99 s = Histogram.percentile_value s.elim_wait_ns 99.0
let elim_wait_p999 s = Histogram.percentile_value s.elim_wait_ns 99.9

let transfer_p50 s = Histogram.percentile_value s.transfer_ns 50.0
let transfer_p99 s = Histogram.percentile_value s.transfer_ns 99.0
let transfer_p999 s = Histogram.percentile_value s.transfer_ns 99.9

let service_p50 s = Histogram.percentile_value s.service_ns 50.0
let service_p99 s = Histogram.percentile_value s.service_ns 99.0
let service_p999 s = Histogram.percentile_value s.service_ns 99.9

let elim_hit_rate s =
  let attempts = s.elim_hits + s.elim_misses in
  if attempts = 0 then 0.0
  else float_of_int s.elim_hits /. float_of_int attempts

(* Mean batch size attributed to one splice kind (an [Event.kind_name]
   constant); [0.] when that kind recorded no splices. *)
let kind_mean_batch s k =
  if k < 0 || k >= Event.kind_count then
    invalid_arg "Metrics.kind_mean_batch: kind out of range";
  let n = s.splice_kind_splices.(k) in
  if n = 0 then 0.0 else float_of_int s.splice_kind_ops.(k) /. float_of_int n
