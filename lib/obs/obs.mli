(** Observability: flight recorder + optimization telemetry.

    Three layers behind one runtime switch:

    - {!Trace} — per-domain lock-free ring-buffer flight recorder with a
      Chrome trace_event exporter (Perfetto / about:tracing);
    - {!Metrics} — striped counters and log-bucketed histograms for
      pendingness, force latency, splice batch size and elimination
      wait, with a snapshot/diff API;
    - the wrappers below — what instrumented hot paths actually call.
      Each is a no-op behind a {e single atomic load} when the switch is
      off, so instrumented code is indistinguishable from uninstrumented
      code in both time and allocation.

    The switch starts from the [FLDS_OBS] environment variable (unset,
    empty or ["0"] = off) and can be flipped at runtime. *)

module Histogram = Histogram
module Event = Event
module Trace = Trace
module Metrics = Metrics

val enabled : unit -> bool
val set_enabled : bool -> unit

val now_ns : unit -> int
(** Monotonic nanoseconds ({!Sync.Mono}), the subsystem's time base. *)

(** {2 Sampling}

    The future-lifecycle wrappers (the only per-operation recording
    sites) sample one in [sample_every] lifecycles per domain, weighting
    each recorded one by the stride so {!Metrics} totals remain unbiased
    estimates. Structural events (splices, elimination, combining,
    chaos, transfers) fire per batch and are always exact. Initial
    stride from [FLDS_OBS_SAMPLE] (default 8); stride 1 records
    everything — the exact pre-sampling semantics. *)

val sample_every : unit -> int
val set_sample_every : int -> unit
(** Set the lifecycle sampling stride (clamped to [>= 1]). Takes effect
    immediately on the calling domain, within one old stride elsewhere. *)

(** {2 Future lifecycle} *)

val future_created : unit -> int
(** Record a creation and return the birth stamp the future should carry
    ([0] when off or sampled out — terminal wrappers ignore untracked
    futures). *)

val future_fulfilled : born:int -> unit
val future_cancelled : born:int -> unit
val future_poisoned : born:int -> unit
val future_rejected : born:int -> unit
(** Record a terminal transition; the pendingness (now − [born]) goes to
    the trace and, for fulfilment, the pendingness histogram. No-ops
    when [born = 0]. *)

val force_begin : unit -> int
(** Stamp the start of a force ([0] when off or sampled out). Callers
    only stamp forces that find the future unresolved: the force
    histogram measures actual waiting/helping, and the common force of
    an already-fulfilled future costs no clock reads. *)

val future_forced : t0:int -> unit
(** Record a force completion with latency now − [t0]; no-op when
    [t0 = 0]. *)

(** {2 Optimization layers} *)

val splice : kind:int -> n:int -> unit
(** A single-CAS window splice (or combining pass) that amortized [n]
    ops; [kind] is an {!Event.kind_name} constant. No-op when [n = 0]. *)

val elim_hit : shard:int -> unit
val elim_miss : shard:int -> unit

val elim_wait_begin : unit -> int
val elim_wait_end : t0:int -> unit
(** Histogram the time a parked elimination offer waited. *)

val combiner_acquire : unit -> unit
val combiner_takeover : unit -> unit
val combiner_retire : unit -> unit
val backoff_exhausted : unit -> unit

(** {2 Chaos / recovery} *)

val worker_killed : worker:int -> unit
val worker_recovered : worker:int -> poisoned:int -> unit
val worker_stalled : worker:int -> unit

(** {2 Bucket transfers (sharded map)} *)

val shard_request : bucket:int -> int
(** Record a transfer request and return the stamp to pass to
    {!shard_ack} ([0] when off), so the transfer-latency histogram spans
    request → ack. *)

val shard_grant : bucket:int -> unit

val shard_ship : ts:int -> bucket:int -> n:int -> unit
(** [n] = ops in the sealed window being shipped. [ts] (from {!now_ns})
    must be read before the CAS that publishes the window, so the
    requester's ack — fired the moment the new state is visible — never
    timestamps before its ship in the merged trace. *)

val shard_ack : bucket:int -> t0:int -> unit
(** Transfer completed; latency now − [t0] goes to the transfer
    histogram (skipped when [t0 = 0]). *)

val shard_recover : bucket:int -> poisoned:int -> unit
(** An expired bucket was usurped; [poisoned] = futures poisoned out of
    a window lost in flight (0 when no window was in flight). *)

val shard_degraded : bucket:int -> unit
(** A pending find answered read-only against the local segment while
    its bucket was owned elsewhere or in flight. *)

(** {2 Service layer (open-loop workload)} *)

val service_admit : unit -> unit
(** An offered request passed admission control. Unsampled: shed-rate
    arithmetic must balance exactly. *)

val service_shed : stage:int -> unit
(** An offered request was refused; [stage] is the overload stage the
    controller was in ({!Workload.Overload} encoding). *)

val service_stage : from:int -> to_:int -> unit
(** The admission controller moved between overload stages; escalations
    ([to_ > from]) bump the degrade counter. *)

val service_complete : sojourn_ns:int -> unit
(** An admitted request's result was forced; [sojourn_ns] is measured
    from the request's {e intended} arrival time, so queueing delay the
    generator could not issue through is charged to the system
    (coordinated-omission-safe). Negative values are dropped. *)

(** {2 Conformance events (online FL-linearizability monitoring)}

    Completed-operation events feeding {!Lin.Stream} — offline via
    [validate_trace --conformance], or sampled online. Each event's
    trace payload is [a = (value lsl 6) lor obj] (obj = structure id,
    0..63) and [b] = duration in ns, so the operation's interval is
    [ts - b, ts].

    Sampling is by {e value residue}: an op is recorded iff
    [value mod stride = 0], so a matched add/remove pair is kept or
    dropped {e together} — the property the order-respecting
    certificates need. Empty removals constrain every value and are
    only emitted at stride 1 (complete trace). Stride comes from
    [FLDS_OBS_CONFORMANCE] (["N"] or ["1/N"]; unset, empty or ["0"] =
    off). *)

val conformance_stride : unit -> int
(** Current stride; [0] = conformance recording off. *)

val set_conformance_stride : int -> unit
(** [0] turns conformance recording off; [n >= 1] records values with
    residue [0 mod n]. *)

val op_begin : unit -> int
(** Stamp an operation's start ([0] when obs or conformance is off —
    the completion wrappers below are single-branch no-ops then). *)

val op_enq : value:int -> obj:int -> t0:int -> unit
val op_deq : value:int -> obj:int -> t0:int -> unit
val op_push : value:int -> obj:int -> t0:int -> unit
val op_pop : value:int -> obj:int -> t0:int -> unit
(** A value-carrying structure operation completed; no-ops when
    [t0 = 0] or the value misses the sampling residue. *)

val op_deq_empty : obj:int -> t0:int -> unit
val op_pop_empty : obj:int -> t0:int -> unit
(** An empty removal completed. Emitted only at stride 1 — a sampled
    trace cannot certify emptiness. *)
