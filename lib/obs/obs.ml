(* Root of the observability subsystem. The wrappers below are the only
   functions instrumented hot paths call: each is a no-op behind a single
   atomic load when the subsystem is off (env FLDS_OBS, or
   [set_enabled]), and when on records both a flight-recorder event
   (Trace) and the matching counters/histograms (Metrics). *)

module Histogram = Histogram
module Event = Event
module Trace = Trace
module Metrics = Metrics

let enabled = Switch.enabled
let set_enabled = Switch.set_enabled
let now_ns = Trace.now_ns

(* ------------------------- future lifecycle -------------------------- *)

(* [future_created] returns the birth stamp the future carries (0 when
   off — the terminal wrappers treat 0 as "untracked", so a future
   created while obs was off never reports a garbage latency). *)
let future_created () =
  if Switch.enabled () then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts Event.future_created 0 0;
    Metrics.on_future_created ();
    ts
  end
  else 0

let future_fulfilled ~born =
  if born <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    let d = ts - born in
    Trace.emit_at ~ts Event.future_fulfilled d 0;
    Metrics.on_future_fulfilled d
  end

let future_cancelled ~born =
  if born <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts Event.future_cancelled (ts - born) 0;
    Metrics.on_future_cancelled ()
  end

let future_poisoned ~born =
  if born <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts Event.future_poisoned (ts - born) 0;
    Metrics.on_future_poisoned ()
  end

let force_begin () = if Switch.enabled () then Trace.now_ns () else 0

let future_forced ~t0 =
  if t0 <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    let d = ts - t0 in
    Trace.emit_at ~ts Event.future_forced d 0;
    Metrics.on_future_forced d
  end

(* --------------------------- window splices -------------------------- *)

let splice ~kind ~n =
  if n > 0 && Switch.enabled () then begin
    Trace.emit Event.window_splice n kind;
    Metrics.on_splice n
  end

(* ---------------------------- elimination ---------------------------- *)

let elim_hit ~shard =
  if Switch.enabled () then begin
    Trace.emit Event.elim_hit shard 0;
    Metrics.on_elim_hit ()
  end

let elim_miss ~shard =
  if Switch.enabled () then begin
    Trace.emit Event.elim_miss shard 0;
    Metrics.on_elim_miss ()
  end

let elim_wait_begin = force_begin

let elim_wait_end ~t0 =
  if t0 <> 0 && Switch.enabled () then
    Metrics.on_elim_wait (Trace.now_ns () - t0)

(* ----------------------------- combining ----------------------------- *)

let combiner_acquire () =
  if Switch.enabled () then begin
    Trace.emit Event.combiner_acquire 0 0;
    Metrics.on_combiner_acquire ()
  end

let combiner_takeover () =
  if Switch.enabled () then begin
    Trace.emit Event.combiner_takeover 0 0;
    Metrics.on_combiner_takeover ()
  end

let combiner_retire () =
  if Switch.enabled () then begin
    Trace.emit Event.combiner_retire 0 0;
    Metrics.on_combiner_retire ()
  end

let backoff_exhausted () =
  if Switch.enabled () then begin
    Trace.emit Event.backoff_exhausted 0 0;
    Metrics.on_backoff_exhausted ()
  end

(* -------------------------- chaos / recovery ------------------------- *)

let worker_killed ~worker =
  if Switch.enabled () then begin
    Trace.emit Event.worker_killed worker 0;
    Metrics.on_worker_killed ()
  end

let worker_recovered ~worker ~poisoned =
  if Switch.enabled () then begin
    Trace.emit Event.worker_recovered worker poisoned;
    Metrics.on_worker_recovered ()
  end

let worker_stalled ~worker =
  if Switch.enabled () then begin
    Trace.emit Event.worker_stalled worker 0;
    Metrics.on_worker_stalled ()
  end

(* ------------------------- bucket transfers -------------------------- *)

(* [shard_request] returns the stamp the requester carries to [shard_ack]
   so the transfer-latency histogram spans the whole protocol (0 when
   off or when the transfer completed via a path that never stamped). *)
let shard_request ~bucket =
  if Switch.enabled () then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts Event.shard_request bucket 0;
    Metrics.on_shard_request ();
    ts
  end
  else 0

let shard_grant ~bucket =
  if Switch.enabled () then begin
    Trace.emit Event.shard_grant bucket 0;
    Metrics.on_shard_grant ()
  end

let shard_ship ~bucket ~n =
  if Switch.enabled () then begin
    Trace.emit Event.shard_ship bucket n;
    Metrics.on_shard_ship ()
  end

let shard_ack ~bucket ~t0 =
  if Switch.enabled () then begin
    let ts = Trace.now_ns () in
    let d = if t0 = 0 then 0 else ts - t0 in
    Trace.emit_at ~ts Event.shard_ack bucket d;
    Metrics.on_shard_ack d
  end

let shard_recover ~bucket ~poisoned =
  if Switch.enabled () then begin
    Trace.emit Event.shard_recover bucket poisoned;
    Metrics.on_shard_recover ()
  end
