(* Root of the observability subsystem. The wrappers below are the only
   functions instrumented hot paths call: each is a no-op behind a single
   atomic load when the subsystem is off (env FLDS_OBS, or
   [set_enabled]), and when on records both a flight-recorder event
   (Trace) and the matching counters/histograms (Metrics). *)

module Histogram = Histogram
module Event = Event
module Trace = Trace
module Metrics = Metrics

let enabled = Switch.enabled
let set_enabled = Switch.set_enabled
let now_ns = Trace.now_ns

(* ------------------------------ sampling ------------------------------ *)

(* Per-domain countdown sampler over the future-lifecycle wrappers — the
   only wrappers that fire once per operation and so dominate recording
   cost. One in [sample_every] created futures (and one in
   [sample_every] slow-path forces) is recorded; its counter and
   histogram contributions carry the stride as a weight, keeping every
   Metrics total an unbiased estimate. Unsampled futures reuse the
   born = 0 "untracked" convention, so their terminal wrappers cost a
   single branch. Structural events — splices, elimination, combining,
   chaos, transfers — fire once per batch, not per op, and stay exact.
   Stride 1 restores the exact PR-4 semantics. *)

let sample_stride =
  let v =
    match Sys.getenv_opt "FLDS_OBS_SAMPLE" with
    | None | Some "" -> 8
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> 8)
  in
  Atomic.make v

let sample_every () = Atomic.get sample_stride

type sampler = { mutable countdown : int }

(* countdown = 1 so a fresh domain's first lifecycle is sampled — short
   single-domain measurement windows see data immediately. *)
let sampler_key = Domain.DLS.new_key (fun () -> { countdown = 1 })

(* Weight this event carries: the stride on sampled ticks, 0 otherwise. *)
let sample () =
  let s = Domain.DLS.get sampler_key in
  let c = s.countdown - 1 in
  if c > 0 then begin
    s.countdown <- c;
    0
  end
  else begin
    let stride = Atomic.get sample_stride in
    s.countdown <- stride;
    stride
  end

let set_sample_every n =
  Atomic.set sample_stride (if n < 1 then 1 else n);
  (* Re-arm the calling domain so the new stride takes effect on its
     next lifecycle (other domains converge within one old stride). *)
  (Domain.DLS.get sampler_key).countdown <- 1

(* ------------------------- future lifecycle -------------------------- *)

(* [future_created] returns the birth stamp the future carries (0 when
   off or sampled out — the terminal wrappers treat 0 as "untracked", so
   a future created while obs was off never reports a garbage latency). *)
let future_created () =
  if Switch.enabled () then begin
    let w = sample () in
    if w = 0 then 0
    else begin
      let ts = Trace.now_ns () in
      Trace.emit_at ~ts Event.future_created 0 0;
      Metrics.on_future_created w;
      ts
    end
  end
  else 0

let future_fulfilled ~born =
  if born <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    let d = ts - born in
    Trace.emit_at ~ts Event.future_fulfilled d 0;
    Metrics.on_future_fulfilled ~w:(Atomic.get sample_stride) d
  end

let future_cancelled ~born =
  if born <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts Event.future_cancelled (ts - born) 0;
    Metrics.on_future_cancelled (Atomic.get sample_stride)
  end

let future_poisoned ~born =
  if born <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts Event.future_poisoned (ts - born) 0;
    Metrics.on_future_poisoned (Atomic.get sample_stride)
  end

let future_rejected ~born =
  if born <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts Event.future_rejected (ts - born) 0;
    Metrics.on_future_rejected (Atomic.get sample_stride)
  end

let force_begin () =
  if Switch.enabled () && sample () <> 0 then Trace.now_ns () else 0

let future_forced ~t0 =
  if t0 <> 0 && Switch.enabled () then begin
    let ts = Trace.now_ns () in
    let d = ts - t0 in
    Trace.emit_at ~ts Event.future_forced d 0;
    Metrics.on_future_forced ~w:(Atomic.get sample_stride) d
  end

(* --------------------------- window splices -------------------------- *)

let splice ~kind ~n =
  if n > 0 && Switch.enabled () then begin
    Trace.emit Event.window_splice n kind;
    Metrics.on_splice ~kind n
  end

(* ---------------------------- elimination ---------------------------- *)

let elim_hit ~shard =
  if Switch.enabled () then begin
    Trace.emit Event.elim_hit shard 0;
    Metrics.on_elim_hit ()
  end

let elim_miss ~shard =
  if Switch.enabled () then begin
    Trace.emit Event.elim_miss shard 0;
    Metrics.on_elim_miss ()
  end

(* Parked-offer waits are rare (one per park, not per op): unsampled. *)
let elim_wait_begin () = if Switch.enabled () then Trace.now_ns () else 0

let elim_wait_end ~t0 =
  if t0 <> 0 && Switch.enabled () then
    Metrics.on_elim_wait (Trace.now_ns () - t0)

(* ----------------------------- combining ----------------------------- *)

let combiner_acquire () =
  if Switch.enabled () then begin
    Trace.emit Event.combiner_acquire 0 0;
    Metrics.on_combiner_acquire ()
  end

let combiner_takeover () =
  if Switch.enabled () then begin
    Trace.emit Event.combiner_takeover 0 0;
    Metrics.on_combiner_takeover ()
  end

let combiner_retire () =
  if Switch.enabled () then begin
    Trace.emit Event.combiner_retire 0 0;
    Metrics.on_combiner_retire ()
  end

let backoff_exhausted () =
  if Switch.enabled () then begin
    Trace.emit Event.backoff_exhausted 0 0;
    Metrics.on_backoff_exhausted ()
  end

(* -------------------------- chaos / recovery ------------------------- *)

let worker_killed ~worker =
  if Switch.enabled () then begin
    Trace.emit Event.worker_killed worker 0;
    Metrics.on_worker_killed ()
  end

let worker_recovered ~worker ~poisoned =
  if Switch.enabled () then begin
    Trace.emit Event.worker_recovered worker poisoned;
    Metrics.on_worker_recovered ()
  end

let worker_stalled ~worker =
  if Switch.enabled () then begin
    Trace.emit Event.worker_stalled worker 0;
    Metrics.on_worker_stalled ()
  end

(* ------------------------- bucket transfers -------------------------- *)

(* [shard_request] returns the stamp the requester carries to [shard_ack]
   so the transfer-latency histogram spans the whole protocol (0 when
   off or when the transfer completed via a path that never stamped). *)
let shard_request ~bucket =
  if Switch.enabled () then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts Event.shard_request bucket 0;
    Metrics.on_shard_request ();
    ts
  end
  else 0

let shard_grant ~bucket =
  if Switch.enabled () then begin
    Trace.emit Event.shard_grant bucket 0;
    Metrics.on_shard_grant ()
  end

(* [~ts] lets the granter stamp the ship {e before} the CAS that
   publishes the shipped window: the requester's ack fires the instant
   the state is visible, and an ack timestamped before its ship would
   read as a phantom ack in the exported trace. *)
let shard_ship ~ts ~bucket ~n =
  if Switch.enabled () then begin
    Trace.emit_at ~ts Event.shard_ship bucket n;
    Metrics.on_shard_ship ()
  end

let shard_ack ~bucket ~t0 =
  if Switch.enabled () then begin
    let ts = Trace.now_ns () in
    let d = if t0 = 0 then 0 else ts - t0 in
    Trace.emit_at ~ts Event.shard_ack bucket d;
    Metrics.on_shard_ack d
  end

let shard_recover ~bucket ~poisoned =
  if Switch.enabled () then begin
    Trace.emit Event.shard_recover bucket poisoned;
    Metrics.on_shard_recover ()
  end

let shard_degraded ~bucket =
  if Switch.enabled () then begin
    Trace.emit Event.shard_degraded bucket 0;
    Metrics.on_shard_degraded ()
  end

(* --------------------------- service layer --------------------------- *)

(* Admission decisions fire once per offered request; they are counted
   exactly (no sampling) because the shed-rate arithmetic — sheds over
   offered — must balance against the service layer's own bookkeeping. *)
let service_admit () =
  if Switch.enabled () then begin
    Trace.emit Event.service_admit 0 0;
    Metrics.on_service_admit ()
  end

let service_shed ~stage =
  if Switch.enabled () then begin
    Trace.emit Event.service_shed stage 0;
    Metrics.on_service_shed ()
  end

let service_stage ~from ~to_ =
  if Switch.enabled () then begin
    Trace.emit Event.service_stage from to_;
    if to_ > from then Metrics.on_service_degrade ()
  end

let service_complete ~sojourn_ns =
  if sojourn_ns >= 0 && Switch.enabled () then begin
    Trace.emit Event.service_complete sojourn_ns 0;
    Metrics.on_service_complete sojourn_ns
  end

(* ------------------------- conformance events ------------------------ *)

(* Completed-operation events feeding the online FL-conformance monitor
   (Lin.Stream, validate_trace --conformance). Sampling is by *value
   residue* — record the op iff value mod stride = 0 — not by the
   countdown sampler: the certificates need matched add/remove pairs to
   survive sampling together, and two ops carrying the same value agree
   on the residue no matter which domain records them. Empty removals
   constrain every value, so they are emitted only at stride 1, where
   the trace is complete. Stride 0 = conformance off (the default). *)

let conformance =
  let v =
    match Sys.getenv_opt "FLDS_OBS_CONFORMANCE" with
    | None | Some "" | Some "0" -> 0
    | Some s -> (
        (* "N" or "1/N", both meaning: record values with residue 0 mod
           N. *)
        let s = String.trim s in
        let s =
          if String.length s > 2 && String.sub s 0 2 = "1/" then
            String.sub s 2 (String.length s - 2)
          else s
        in
        match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 0)
  in
  Atomic.make v

let conformance_stride () = Atomic.get conformance
let set_conformance_stride n = Atomic.set conformance (if n < 0 then 0 else n)

(* Stamp an operation's start; 0 means "don't record this op" and makes
   every completion wrapper below a single-branch no-op. *)
let op_begin () =
  if Switch.enabled () && Atomic.get conformance > 0 then Trace.now_ns ()
  else 0

let op_completed tag ~value ~obj ~t0 =
  if t0 <> 0 && Switch.enabled () then begin
    let stride = Atomic.get conformance in
    if stride > 0 && value mod stride = 0 then begin
      let ts = Trace.now_ns () in
      Trace.emit_at ~ts tag ((value lsl 6) lor (obj land 63)) (ts - t0)
    end
  end

let op_completed_empty tag ~obj ~t0 =
  if t0 <> 0 && Switch.enabled () && Atomic.get conformance = 1 then begin
    let ts = Trace.now_ns () in
    Trace.emit_at ~ts tag (obj land 63) (ts - t0)
  end

let op_enq ~value ~obj ~t0 = op_completed Event.op_enq ~value ~obj ~t0
let op_deq ~value ~obj ~t0 = op_completed Event.op_deq ~value ~obj ~t0
let op_deq_empty ~obj ~t0 = op_completed_empty Event.op_deq_empty ~obj ~t0
let op_push ~value ~obj ~t0 = op_completed Event.op_push ~value ~obj ~t0
let op_pop ~value ~obj ~t0 = op_completed Event.op_pop ~value ~obj ~t0
let op_pop_empty ~obj ~t0 = op_completed_empty Event.op_pop_empty ~obj ~t0
