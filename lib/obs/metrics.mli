(** Optimization telemetry: striped counters plus log-bucketed histograms
    for pendingness (create→fulfil), force latency, splice batch size and
    elimination wait. One process-global instance; scope a measurement by
    diffing two {!snapshot}s. The [on_*] hooks are called by the {!Obs}
    wrappers with the runtime switch already checked. *)

val reset : unit -> unit

(** {2 Recording hooks (switch pre-checked by [Obs])} *)

val on_future_created : int -> unit
(** Argument: sampling weight — how many real lifecycles this recorded
    one stands for (the {!Obs} sampler's stride; [1] = unsampled). *)

val on_future_fulfilled : w:int -> int -> unit
(** Argument: pendingness (create→fulfil) in ns, weighted by [w]. *)

val on_future_forced : w:int -> int -> unit
(** Argument: force→return latency in ns, weighted by [w]. *)

val on_future_cancelled : int -> unit
val on_future_poisoned : int -> unit
val on_future_rejected : int -> unit
(** Argument: sampling weight. *)

val on_splice : kind:int -> int -> unit
(** Argument: ops amortized by this single-CAS splice (or combining
    pass); [kind] an {!Event.kind_name} constant attributing the batch
    to the layer that produced it. *)

val on_elim_hit : unit -> unit
val on_elim_miss : unit -> unit
val on_elim_wait : int -> unit
(** Argument: time a parked offer waited in its shard, ns. *)

val on_combiner_acquire : unit -> unit
val on_combiner_takeover : unit -> unit
val on_combiner_retire : unit -> unit
val on_backoff_exhausted : unit -> unit
val on_worker_killed : unit -> unit
val on_worker_recovered : unit -> unit
val on_worker_stalled : unit -> unit
val on_shard_request : unit -> unit
val on_shard_grant : unit -> unit
val on_shard_ship : unit -> unit

val on_shard_ack : int -> unit
(** Argument: transfer latency (request → ack) in ns; [0] = untracked
    (counted, not histogrammed). *)

val on_shard_recover : unit -> unit
val on_shard_degraded : unit -> unit
(** A read-only find answered while its bucket was in flight. *)

val on_service_admit : unit -> unit
val on_service_shed : unit -> unit

val on_service_degrade : unit -> unit
(** An overload-stage escalation (admission controller moved one stage
    toward degraded service). *)

val on_service_complete : int -> unit
(** Argument: request sojourn (intended arrival → result forced) in ns.
    Unsampled — the tail is the point. *)

(** {2 Snapshots} *)

type snapshot = {
  futures_created : int;
  futures_fulfilled : int;
  futures_forced : int;
  futures_cancelled : int;
  futures_poisoned : int;
  futures_rejected : int;
  splices : int;
  splice_ops : int;
  splice_kind_splices : int array;
  splice_kind_ops : int array;
  elim_hits : int;
  elim_misses : int;
  combiner_acquires : int;
  combiner_takeovers : int;
  combiner_retires : int;
  backoff_exhausted : int;
  workers_killed : int;
  workers_recovered : int;
  workers_stalled : int;
  shard_requests : int;
  shard_grants : int;
  shard_ships : int;
  shard_acks : int;
  shard_recovers : int;
  shard_degraded_finds : int;
  service_admitted : int;
  service_shed : int;
  service_degrades : int;
  pendingness_ns : Histogram.s;
  force_ns : Histogram.s;
  splice_batch : Histogram.s;
  elim_wait_ns : Histogram.s;
  transfer_ns : Histogram.s;
  service_ns : Histogram.s;
}

val snapshot : unit -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]. *)

(** {2 Derived views (on a snapshot or diff)} *)

val pendingness_p50 : snapshot -> int
val pendingness_p99 : snapshot -> int
val pendingness_p999 : snapshot -> int
val force_p50 : snapshot -> int
val force_p99 : snapshot -> int
val force_p999 : snapshot -> int
val mean_splice_batch : snapshot -> float
val elim_wait_p99 : snapshot -> int
val elim_wait_p999 : snapshot -> int

val transfer_p50 : snapshot -> int
val transfer_p99 : snapshot -> int
val transfer_p999 : snapshot -> int
(** Bucket-transfer latency (request → ack), ns. *)

val service_p50 : snapshot -> int
val service_p99 : snapshot -> int
val service_p999 : snapshot -> int
(** Request sojourn (intended arrival → result forced), ns — the
    coordinated-omission-safe service latency. *)

val elim_hit_rate : snapshot -> float
(** hits / (hits + misses); [0.] with no attempts. *)

val kind_mean_batch : snapshot -> int -> float
(** Mean batch size of the splices attributed to one {!Event} splice
    kind; [0.] when that kind recorded none. Raises [Invalid_argument]
    out of range. *)
