(* The single runtime switch for the whole observability subsystem.
   Reading it is one atomic load — the only cost instrumentation adds to
   a hot path when observability is off. Separate from obs.ml so that
   trace.ml and metrics.ml (which the root module re-exports) can consult
   it without a dependency cycle. *)

let initially =
  match Sys.getenv_opt "FLDS_OBS" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let on = Atomic.make initially

let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b
