(* Per-domain flight recorder. Each domain owns a fixed-capacity ring of
   four parallel int arrays (timestamp, tag, two args), reached through
   domain-local storage — so the record path is: one DLS read, four array
   stores, one increment. No CAS, no allocation, no sharing with other
   domains' write paths. The ring overwrites its oldest entries, keeping
   the most recent [capacity] events per domain: a flight recorder, not a
   log. Export (post-run, quiescent) merges every domain's surviving
   events sorted by monotonic timestamp and renders Chrome trace_event
   JSON loadable in about:tracing / Perfetto. *)

let now_ns () = Sync.Mono.now_ns_int ()

type ring = {
  dom : int;
  cap : int; (* power of two *)
  ts : int array;
  tag : int array;
  a : int array;
  b : int array;
  mutable pos : int; (* total writes, monotonic; slot = pos land (cap-1) *)
}

let default_capacity = 16_384

let rec round_pow2 c n = if c >= n then c else round_pow2 (c * 2) n

(* Capacity for rings created from now on; existing rings keep theirs.
   Tests shrink it and emit from a fresh domain. *)
let capacity = Atomic.make default_capacity

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity < 1";
  Atomic.set capacity (round_pow2 1 n)

(* Every ring ever created, so export sees events from domains that have
   since terminated (a killed chaos worker's last moments are exactly
   what the trace is for). *)
let rings : ring list Atomic.t = Atomic.make []

let rec register r =
  let rs = Atomic.get rings in
  if not (Atomic.compare_and_set rings rs (r :: rs)) then register r

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let cap = Atomic.get capacity in
      let r =
        {
          dom = (Domain.self () :> int);
          cap;
          ts = Array.make cap 0;
          tag = Array.make cap 0;
          a = Array.make cap 0;
          b = Array.make cap 0;
          pos = 0;
        }
      in
      register r;
      r)

(* Unconditional record — the [Obs] wrappers consult the switch first.
   Zero allocation after the domain's ring exists. *)
let emit_at ~ts tag a b =
  let r = Domain.DLS.get ring_key in
  let i = r.pos land (r.cap - 1) in
  r.ts.(i) <- ts;
  r.tag.(i) <- tag;
  r.a.(i) <- a;
  r.b.(i) <- b;
  r.pos <- r.pos + 1

let emit tag a b = emit_at ~ts:(now_ns ()) tag a b

let clear () = List.iter (fun r -> r.pos <- 0) (Atomic.get rings)

(* Events overwritten and lost to the ring, across all domains — exported
   so a truncated trace never silently reads as complete. *)
let dropped () =
  List.fold_left
    (fun acc r -> acc + Stdlib.max 0 (r.pos - r.cap))
    0 (Atomic.get rings)

type event = { e_ts : int; e_dom : int; e_tag : int; e_a : int; e_b : int }

let events () =
  let decode r acc =
    let valid = Stdlib.min r.pos r.cap in
    let rec go k acc =
      if k >= r.pos then acc
      else begin
        let i = k land (r.cap - 1) in
        go (k + 1)
          ({ e_ts = r.ts.(i); e_dom = r.dom; e_tag = r.tag.(i); e_a = r.a.(i); e_b = r.b.(i) }
          :: acc)
      end
    in
    go (r.pos - valid) acc
  in
  let all = List.fold_left (fun acc r -> decode r acc) [] (Atomic.get rings) in
  List.stable_sort (fun x y -> compare x.e_ts y.e_ts) all

(* ------------------------ Chrome trace export ------------------------ *)

(* One instant event ("ph":"i", thread scope) per recorded entry: name
   from the tag (splices carry their window kind in the name so Perfetto
   groups them), tid = domain id, ts in microseconds with ns precision
   kept in the fraction. *)

let event_name e =
  if e.e_tag = Event.window_splice then "splice." ^ Event.kind_name e.e_b
  else Event.name e.e_tag

let event_args e =
  let t = e.e_tag in
  if t = Event.window_splice then [ ("batch", e.e_a) ]
  else if t = Event.elim_hit || t = Event.elim_miss then [ ("shard", e.e_a) ]
  else if t = Event.future_fulfilled then [ ("pending_ns", e.e_a) ]
  else if t = Event.future_forced then [ ("force_ns", e.e_a) ]
  else if t = Event.future_cancelled || t = Event.future_poisoned then
    [ ("pending_ns", e.e_a) ]
  else if t = Event.worker_killed || t = Event.worker_stalled then
    [ ("worker", e.e_a) ]
  else if t = Event.worker_recovered then
    [ ("worker", e.e_a); ("poisoned", e.e_b) ]
  else if t = Event.shard_request || t = Event.shard_grant then
    [ ("bucket", e.e_a) ]
  else if t = Event.shard_ship then [ ("bucket", e.e_a); ("window", e.e_b) ]
  else if t = Event.shard_ack then
    [ ("bucket", e.e_a); ("transfer_ns", e.e_b) ]
  else if t = Event.shard_recover then
    [ ("bucket", e.e_a); ("poisoned", e.e_b) ]
  else if t = Event.op_enq || t = Event.op_deq || t = Event.op_push
          || t = Event.op_pop then
    [ ("obj", e.e_a land 63); ("value", e.e_a asr 6); ("dur_ns", e.e_b) ]
  else if t = Event.op_deq_empty || t = Event.op_pop_empty then
    [ ("obj", e.e_a land 63); ("dur_ns", e.e_b) ]
  else []

let export oc =
  let evs = events () in
  (* [fldsDropped] lets a consumer (validate_trace) distinguish a
     complete trace from one the rings truncated — a truncated trace can
     still be *checked* but never *certified*. *)
  Printf.fprintf oc
    "{\n\"displayTimeUnit\": \"ns\",\n\"fldsDropped\": %d,\n\"traceEvents\": [\n"
    (dropped ());
  let first = ref true in
  List.iter
    (fun e ->
      if !first then first := false else output_string oc ",\n";
      let args =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v)
             (event_args e))
      in
      Printf.fprintf oc
        "{\"name\":\"%s\",\"cat\":\"flds\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d.%03d,\"pid\":0,\"tid\":%d,\"args\":{%s}}"
        (event_name e) (e.e_ts / 1000) (e.e_ts mod 1000) e.e_dom args)
    evs;
  output_string oc "\n]\n}\n";
  List.length evs

let export_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export oc)
