(** Per-domain lock-free flight recorder.

    Each domain owns a fixed-capacity ring (overwrite-oldest) of typed
    events stamped with {!Sync.Mono} nanoseconds. Recording is a DLS
    read plus four int-array stores — no CAS, no allocation. Export is a
    quiescent-time merge of every domain's surviving events, sorted by
    timestamp, rendered as Chrome [trace_event] JSON (load in
    about:tracing or {{:https://ui.perfetto.dev}Perfetto}).

    [emit]/[emit_at] are unconditional: the {!Obs} wrappers consult
    {!Obs.enabled} before calling them. *)

val now_ns : unit -> int
(** Monotonic nanoseconds as an int (the ring's timestamp domain). *)

val default_capacity : int

val set_capacity : int -> unit
(** Events kept per domain for rings created {e from now on} (rounded up
    to a power of two); existing rings keep their capacity. *)

val emit : int -> int -> int -> unit
(** [emit tag a b] records an event stamped now into the calling
    domain's ring. Tags and args are {!Event} ints. *)

val emit_at : ts:int -> int -> int -> int -> unit
(** [emit] with an explicit timestamp — for deterministic tests. *)

val clear : unit -> unit
(** Empty every ring. Quiescent-time only. *)

val dropped : unit -> int
(** Events overwritten (lost to ring capacity) across all domains since
    the last [clear]. *)

type event = { e_ts : int; e_dom : int; e_tag : int; e_a : int; e_b : int }

val events : unit -> event list
(** All surviving events from every domain (including terminated ones),
    sorted by timestamp. Quiescent-time only. *)

val export : out_channel -> int
(** Write Chrome trace_event JSON; returns the number of events. *)

val export_file : string -> int

val event_name : event -> string
(** The exported name — splice events carry their window kind
    (["splice.weak-stack-push"]). *)
