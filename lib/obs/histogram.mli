(** Percentile math and latency histograms — the one module where p50/p99
    are defined. [Workload.Stats] re-exports the exact sample half, the
    metrics layer uses the log-bucketed half; both quote nearest-rank
    percentiles. *)

(** {2 Exact statistics over sample arrays} *)

val mean : float array -> float
(** Raises [Invalid_argument] on an empty array. *)

val std_dev : float array -> float
(** Sample standard deviation (n-1 denominator); [0.] for fewer than two
    samples. *)

val min : float array -> float
val max : float array -> float

val median : float array -> float
(** Does not modify its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], nearest-rank on the sorted
    samples. Raises [Invalid_argument] if [p] is out of range or [xs] is
    empty. *)

(** {2 Log-bucketed concurrent histogram}

    Fixed 244 buckets: values 0..7 exact, then 4 sub-buckets per power of
    two (≤ 25% relative error). Recording is two atomic increments —
    no allocation, safe from any domain. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** [record t v] files [v] (clamped at 0) into its bucket and adds it to
    the exact running sum. *)

val record_n : t -> int -> w:int -> unit
(** [record_n t v ~w] files one sampled observation of [v] standing for
    [w] real ones: the bucket gains [w], the sum gains [v * w]. No-op
    when [w <= 0]; [w = 1] is {!record}. *)

val reset : t -> unit

type s = { counts : int array; sum : int }
(** A snapshot: per-bucket counts plus the exact value sum. Plain data —
    diff two snapshots to scope a measurement interval. *)

val snapshot : t -> s
val diff : s -> s -> s
(** [diff later earlier] — per-bucket and sum subtraction. *)

val count : s -> int
val mean_value : s -> float
(** Exact mean of recorded values (sum is tracked exactly). [0.] when
    empty. *)

val percentile_value : s -> float -> int
(** Nearest-rank percentile over the buckets, quoting the containing
    bucket's {e lower bound}. [0] when empty. Raises [Invalid_argument]
    if [p] is out of [0, 100]. *)

(** {2 Bucket geometry (exposed for tests)} *)

val buckets : int
val bucket_of_value : int -> int
val value_of_bucket : int -> int
(** Lower bound of bucket [i]'s value range; raises [Invalid_argument]
    out of range. *)
