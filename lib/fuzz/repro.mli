(** Self-contained counterexample files.

    A repro bundles everything needed to re-execute a failing fuzz case
    byte-for-byte: the target name, the condition it was checked
    against, the campaign seed, the (shrunk) op program and the (shrunk)
    perturbation plan. The format is a canonical line-based text file —
    [to_string] and [of_string] are exact inverses on canonical files,
    so replaying a saved repro runs exactly the recorded case. *)

type t = {
  target : string;
  condition : Lin.Order.condition;
  seed : int;
  program : Program.t;
  plan : Plan.t;
}

val condition_to_string : Lin.Order.condition -> string
(** [strong] / [medium] / [weak] / [fsc]. *)

val condition_of_string : string -> Lin.Order.condition
(** Raises [Invalid_argument]. *)

val to_string : t -> string
(** Canonical rendering (ends with an [end] line). *)

val of_string : string -> t
(** Raises [Invalid_argument] with a diagnostic on malformed input,
    including truncated files (missing [end]). *)

val save : path:string -> t -> unit
(** Write [to_string], creating parent directories as needed. *)

val load : string -> t
