module Future = Futures.Future
module H = Lin.History
module R = Fl.Registry
module P = Program
module FC = Combining.Flat_combining
module CS = Lin.Checker.Make (Lin.Spec.Stack_spec)
module CQ = Lin.Checker.Make (Lin.Spec.Queue_spec)
module CL = Lin.Checker.Make (Lin.Spec.Set_spec)
module CM = Lin.Checker.Make (Lin.Spec.Map_spec)

module IntKey = struct
  type t = int

  let compare = Int.compare
end

module WM = Fl.Weak_map.Make (IntKey)

module IntKeyH = struct
  type t = int

  let compare = Int.compare
  let hash x = x
end

module SM = Fl.Shard_map.Make (IntKeyH)

type verdict = Pass | Violation of string

type outcome = { verdict : verdict; ops : int; fsc_witness : bool }

type runner =
  | RStack of R.stack_impl
  | RQueue of R.queue_impl
  | RSet of R.set_impl
  | RMap
  | RMulti
  | RSlack
  | RFclease
  | RShard
  | RTuned
  | RService

type target = {
  name : string;
  kind : P.kind;
  condition : Lin.Order.condition;
  kill_plan : bool;
  runner : runner;
}

let targets =
  List.map
    (fun (i : R.stack_impl) ->
      {
        name = "stack/" ^ i.R.s_name;
        kind = P.Stack;
        condition = Conformance.claimed_condition i.R.s_name;
        kill_plan = false;
        runner = RStack i;
      })
    R.stack_impls
  @ List.map
      (fun (i : R.queue_impl) ->
        {
          name = "queue/" ^ i.R.q_name;
          kind = P.Queue;
          condition = Conformance.claimed_condition i.R.q_name;
          kill_plan = false;
          runner = RQueue i;
        })
      R.queue_impls
  @ List.map
      (fun (i : R.set_impl) ->
        {
          name = "list/" ^ i.R.l_name;
          kind = P.Set;
          condition = Conformance.claimed_condition i.R.l_name;
          kill_plan = false;
          runner = RSet i;
        })
      R.set_impls
  @ [
      {
        name = "map/weak";
        kind = P.Map;
        condition = Lin.Order.Weak;
        kill_plan = false;
        runner = RMap;
      };
      (* Figure 3: two strong queues, checked per object (Strong) with
         the global Fsc verdict kept as the negative oracle — per-object
         Strong implies global Fsc here never *fails* the target, a
         global-Fsc pass/violation is only recorded as a witness. *)
      {
        name = "fig3";
        kind = P.Multi;
        condition = Lin.Order.Strong;
        kill_plan = false;
        runner = RMulti;
      };
      (* Oracle targets: no recorded history. [slack] checks the
         evaluation-policy helper fires every noted thunk exactly once;
         [fclease] drives combiner kills (the one place plans may kill)
         against a sum oracle on the flat-combining lease. *)
      {
        name = "slack";
        kind = P.Stack;
        condition = Lin.Order.Strong;
        kill_plan = false;
        runner = RSlack;
      };
      {
        name = "fclease";
        kind = P.Stack;
        condition = Lin.Order.Strong;
        kill_plan = true;
        runner = RFclease;
      };
      (* Sharded-map liveness/refinement oracle: map programs against a
         2-bucket store with short leases (so transfers actually occur);
         plans may kill at any transfer protocol step. *)
      {
        name = "shardmap";
        kind = P.Map;
        condition = Lin.Order.Weak;
        kill_plan = true;
        runner = RShard;
      };
      (* History-checked conformance under a live self-tuning
         controller; kill plans can only reach the controller's
         "tune.epoch" point (see [tuned_run]). *)
      {
        name = "tuned";
        kind = P.Stack;
        condition = Conformance.claimed_condition "weak-x";
        kill_plan = true;
        runner = RTuned;
      };
      (* Admission-controlled session path: every map op passes an
         Overload gate held in the shedding regime; admitted ops are
         history-checked (kill-free plans) and shed ops must leave no
         trace in the surviving store. Plans may kill at the service
         points (admit/shed/degrade/epoch) and the transfer protocol. *)
      {
        name = "service";
        kind = P.Map;
        condition = Lin.Order.Weak;
        kill_plan = true;
        runner = RService;
      };
    ]

let find name =
  match List.find_opt (fun t -> t.name = name) targets with
  | Some t -> t
  | None -> invalid_arg ("Fuzz.Exec.find: unknown target " ^ name)

(* ------------------------ recorded execution ---------------------- *)

(* One phase: [threads] fresh domains run their step lists from a
   barrier. Completions are deferred newest-first (the Slack policy) and
   flushed at Force steps and at the end; [handler] supplies the
   per-domain step interpreter and an end-of-phase flush. *)
let run_phase ~threads ~handler phase =
  let logs = Array.init threads (fun _ -> H.log ()) in
  let barrier = Sync.Barrier.create threads in
  let worker i () =
    let step_fn, finish = handler ~thread:i ~log:logs.(i) in
    let pending = ref [] in
    let flush () =
      List.iter (fun k -> k ()) !pending;
      pending := []
    in
    Sync.Barrier.wait barrier;
    List.iter
      (fun (st : P.step) ->
        Faults.point "fuzz.step";
        match st.P.op with
        | P.Force -> flush ()
        | _ -> (
            match step_fn st with
            | Some c -> pending := c :: !pending
            | None -> ()))
      phase.(i);
    flush ();
    finish ()
  in
  let ds = List.init threads (fun i -> Domain.spawn (worker i)) in
  let exns =
    List.filter_map
      (fun d ->
        match Domain.join d with () -> None | exception e -> Some e)
      ds
  in
  (match exns with e :: _ -> raise e | [] -> ());
  Array.to_list logs

let recorded (prog : P.t) ~handler ~drain ~check =
  let clock = H.clock () in
  let logs =
    List.concat_map
      (fun phase ->
        run_phase ~threads:prog.P.threads ~handler:(handler ~clock) phase)
      prog.P.phases
  in
  drain ();
  check (H.merge logs)

let violation fmt = Format.kasprintf (fun s -> Violation s) fmt

let checked ~check_segmented ~pp_history ~name cond h =
  let verdict =
    if check_segmented cond h then Pass
    else
      violation "%s: history is not %s:@.%a" name
        (Lin.Order.condition_name cond)
        pp_history h
  in
  { verdict; ops = Array.length h; fsc_witness = false }

let stack_record_inst (inst : R.stack_instance) prog =
  let handler ~clock ~thread ~log =
    let o = inst.R.s_handle () in
    let step (st : P.step) =
      match st.P.op with
      | P.Push v ->
          let _, c =
            H.recorded_call log clock ~thread ~obj:st.P.obj (fun () ->
                o.R.s_push v)
          in
          Some (fun () -> ignore (c (fun () -> Lin.Spec.Stack_spec.Push v)))
      | P.Pop ->
          let _, c =
            H.recorded_call log clock ~thread ~obj:st.P.obj (fun () ->
                o.R.s_pop ())
          in
          Some (fun () -> ignore (c (fun r -> Lin.Spec.Stack_spec.Pop r)))
      | _ -> None
    in
    (step, fun () -> o.R.s_flush ())
  in
  recorded prog ~handler
    ~drain:(fun () -> inst.R.s_drain ())
    ~check:(fun h -> h)

let stack_run_inst (inst : R.stack_instance) ~name cond prog =
  checked
    ~check_segmented:(fun c h -> CS.check_segmented c h)
    ~pp_history:CS.pp_history ~name cond
    (stack_record_inst inst prog)

let stack_run (impl : R.stack_impl) cond prog =
  stack_run_inst (impl.R.s_make ()) ~name:("stack/" ^ impl.R.s_name) cond prog

(* Live-retuning target: the weak exchanger stack runs an ordinary
   history-checked program while a [Tune.Controller] on a fast epoch
   retunes the structure's dials (elimination width bounds, plus a slack
   window so every policy family is exercised) from live telemetry. The
   one history-checked target that accepts kill plans: its operations
   never pass a kill point — the only reachable one is the controller's
   ["tune.epoch"] — so a kill murders the tuner, never an operation, and
   the history must stay conformant with the last-good configuration
   frozen in place. *)
let tuned_run cond prog =
  let inst = (R.find_stack "weak-x").R.s_make () in
  let sl = Fl.Slack.create 8 in
  let ctl = Tune.Controller.create ~epoch:0.0005 () in
  Tune.Controller.add_dials ctl (inst.R.s_dials ());
  Tune.Controller.add_dial ctl (Fl.Tunable.of_slack ~name:"tuned.slack" sl);
  Tune.Controller.start ctl;
  Fun.protect
    ~finally:(fun () -> Tune.Controller.stop ctl)
    (fun () -> stack_run_inst inst ~name:"tuned" cond prog)

let queue_handler (o : R.queue_ops) ~clock ~thread =
  fun log (st : P.step) ->
   match st.P.op with
   | P.Enq v ->
       let _, c =
         H.recorded_call log clock ~thread ~obj:st.P.obj (fun () ->
             o.R.q_enq v)
       in
       Some (fun () -> ignore (c (fun () -> Lin.Spec.Queue_spec.Enq v)))
   | P.Deq ->
       let _, c =
         H.recorded_call log clock ~thread ~obj:st.P.obj (fun () ->
             o.R.q_deq ())
       in
       Some (fun () -> ignore (c (fun r -> Lin.Spec.Queue_spec.Deq r)))
   | _ -> None

let queue_record_inst (inst : R.queue_instance) prog =
  let handler ~clock ~thread ~log =
    let o = inst.R.q_handle () in
    let step st = queue_handler o ~clock ~thread log st in
    (step, fun () -> o.R.q_flush ())
  in
  recorded prog ~handler
    ~drain:(fun () -> inst.R.q_drain ())
    ~check:(fun h -> h)

let queue_run (impl : R.queue_impl) cond prog =
  checked
    ~check_segmented:(fun c h -> CQ.check_segmented c h)
    ~pp_history:CQ.pp_history
    ~name:("queue/" ^ impl.R.q_name) cond
    (queue_record_inst (impl.R.q_make ()) prog)

(* Raw recorded histories for the mega-history mode: run the program
   against a registry implementation and hand back the merged history
   instead of judging it — {!Mega} checks it with the streaming
   monitor. *)
let record_stack ~impl prog =
  stack_record_inst ((R.find_stack impl).R.s_make ()) prog

let record_queue ~impl prog = queue_record_inst ((R.find_queue impl).R.q_make ()) prog

let set_run (impl : R.set_impl) cond prog =
  let inst = impl.R.l_make () in
  let handler ~clock ~thread ~log =
    let o = inst.R.l_handle () in
    let step (st : P.step) =
      let call mk f =
        let _, c =
          H.recorded_call log clock ~thread ~obj:st.P.obj f
        in
        Some (fun () -> ignore (c mk))
      in
      match st.P.op with
      | P.Add k ->
          call (fun r -> Lin.Spec.Set_spec.Insert (k, r)) (fun () ->
              o.R.l_insert k)
      | P.Del k ->
          call (fun r -> Lin.Spec.Set_spec.Remove (k, r)) (fun () ->
              o.R.l_remove k)
      | P.Mem k ->
          call (fun r -> Lin.Spec.Set_spec.Contains (k, r)) (fun () ->
              o.R.l_contains k)
      | _ -> None
    in
    (step, fun () -> o.R.l_flush ())
  in
  recorded prog ~handler
    ~drain:(fun () -> inst.R.l_drain ())
    ~check:
      (checked
         ~check_segmented:(fun c h -> CL.check_segmented c h)
         ~pp_history:CL.pp_history
         ~name:("list/" ^ impl.R.l_name) cond)

let map_run cond prog =
  let m : int WM.t = WM.create () in
  let handler ~clock ~thread ~log =
    let h = WM.handle m in
    let step (st : P.step) =
      let call mk f =
        let _, c = H.recorded_call log clock ~thread ~obj:st.P.obj f in
        Some (fun () -> ignore (c mk))
      in
      match st.P.op with
      | P.Bind (k, v) ->
          call (fun r -> Lin.Spec.Map_spec.Insert (k, v, r)) (fun () ->
              WM.insert h k v)
      | P.Lookup k ->
          call (fun r -> Lin.Spec.Map_spec.Find (k, r)) (fun () ->
              WM.find h k)
      | P.Unbind k ->
          call (fun r -> Lin.Spec.Map_spec.Remove (k, r)) (fun () ->
              WM.remove h k)
      | _ -> None
    in
    (step, fun () -> WM.flush h)
  in
  recorded prog ~handler
    ~drain:(fun () -> ())
    ~check:
      (checked
         ~check_segmented:(fun c h -> CM.check_segmented c h)
         ~pp_history:CM.pp_history ~name:"map/weak" cond)

let multi_run cond prog =
  let impl = R.find_queue "strong" in
  let insts = Array.init (P.objects P.Multi) (fun _ -> impl.R.q_make ()) in
  let handler ~clock ~thread ~log =
    let os = Array.map (fun inst -> inst.R.q_handle ()) insts in
    let step (st : P.step) =
      queue_handler os.(st.P.obj) ~clock ~thread log st
    in
    (step, fun () -> Array.iter (fun o -> o.R.q_flush ()) os)
  in
  recorded prog ~handler
    ~drain:(fun () -> Array.iter (fun i -> i.R.q_drain ()) insts)
    ~check:(fun h ->
      let out =
        checked
          ~check_segmented:(fun c h -> CQ.check_segmented c h)
          ~pp_history:CQ.pp_history ~name:"fig3" cond h
      in
      (* The Fsc negative oracle (Figure 3): futures sequential
         consistency is not compositional, so a global-Fsc failure over
         per-object-correct queues is the interesting witness, never a
         target failure. *)
      let fsc_witness =
        out.verdict = Pass && not (CQ.check_segmented Lin.Order.Fsc h)
      in
      { out with fsc_witness })

(* -------------------------- oracle targets ------------------------ *)

(* Exactly-once oracle on the Slack evaluation-policy helper: every
   noted thunk must run exactly once, and nothing may remain pending
   after drain — under any stall plan. *)
let slack_run (prog : P.t) =
  let errors = Atomic.make [] in
  let report msg =
    let rec add () =
      let cur = Atomic.get errors in
      if not (Atomic.compare_and_set errors cur (msg :: cur)) then add ()
    in
    add ()
  in
  let ops = ref 0 in
  List.iter
    (fun phase ->
      let threads = prog.P.threads in
      let barrier = Sync.Barrier.create threads in
      let worker i () =
        let sl = Fl.Slack.create 3 in
        let n = List.length (List.filter (fun s -> s.P.op <> P.Force) phase.(i)) in
        let runs = Array.make (max 1 n) 0 in
        let next = ref 0 in
        Sync.Barrier.wait barrier;
        List.iter
          (fun (st : P.step) ->
            Faults.point "fuzz.step";
            match st.P.op with
            | P.Force -> Fl.Slack.drain sl
            | _ ->
                let id = !next in
                incr next;
                Fl.Slack.note sl (fun () -> runs.(id) <- runs.(id) + 1))
          phase.(i);
        Fl.Slack.drain sl;
        if Fl.Slack.pending sl <> 0 then
          report
            (Printf.sprintf "slack: thread %d: %d thunks still pending" i
               (Fl.Slack.pending sl));
        Array.iteri
          (fun id k ->
            if id < n && k <> 1 then
              report
                (Printf.sprintf "slack: thread %d: thunk %d ran %d times" i
                   id k))
          runs
      in
      let ds = List.init threads (fun i -> Domain.spawn (worker i)) in
      List.iter Domain.join ds;
      ops :=
        !ops
        + Array.fold_left
            (fun acc steps ->
              acc + List.length (List.filter (fun s -> s.P.op <> P.Force) steps))
            0 phase)
    prog.P.phases;
  let verdict =
    match Atomic.get errors with
    | [] -> Pass
    | msgs -> Violation (String.concat "\n" (List.rev msgs))
  in
  { verdict; ops = !ops; fsc_witness = false }

(* Combiner-lease oracle: every step applies +1 through flat combining;
   plans may kill the combiner mid-pass ([fc.pass]/[fc.record]). An op
   that returned normally must be counted exactly once; a killed op may
   or may not have been applied before the kill (that ambiguity is why
   history-checked targets never see kills), so the final sum must land
   in [normal, normal + killed]. *)
let fclease_run (prog : P.t) =
  let sum = ref 0 in
  let fc = FC.create ~apply:(fun n -> sum := !sum + n; !sum) () in
  let normal = Atomic.make 0 and killed = Atomic.make 0 in
  List.iter
    (fun phase ->
      let threads = prog.P.threads in
      let barrier = Sync.Barrier.create threads in
      let worker i () =
        let h = FC.handle fc in
        Sync.Barrier.wait barrier;
        List.iter
          (fun (st : P.step) ->
            match st.P.op with
            | P.Force -> ()
            | _ -> (
                try
                  ignore (FC.apply h 1);
                  ignore (Atomic.fetch_and_add normal 1)
                with Faults.Killed _ ->
                  ignore (Atomic.fetch_and_add killed 1)))
          phase.(i)
      in
      let ds = List.init threads (fun i -> Domain.spawn (worker i)) in
      List.iter Domain.join ds)
    prog.P.phases;
  let n = Atomic.get normal and k = Atomic.get killed in
  let verdict =
    if !sum >= n && !sum <= n + k then Pass
    else
      violation
        "fclease: %d ops returned, %d killed, but the structure counted %d \
         (expected in [%d, %d])"
        n k !sum n (n + k)
  in
  { verdict; ops = n + k; fsc_witness = false }

(* Sharded-map oracle: Bind/Lookup/Unbind run against a 2-bucket store
   with leases short enough that ownership transfers happen constantly;
   plans may kill at [shard.grant]/[shard.ship]/[shard.ack] (and the
   flat-combining points, which simply never fire here). A killed worker
   abandons its handle — the domain is "dead", its windows poisoned, its
   leases left to expire — and the drain below plays the surviving
   process. Two properties, under any plan:

   - liveness: after a bounded recovery drain, no tracked future is
     still pending — every operation was applied, cancelled or poisoned;
   - refinement: every binding in the surviving store was proposed by
     some Bind of that exact (key, value) — transfers and recoveries
     never invent or corrupt state. *)
let shardmap_run (prog : P.t) =
  let m : int SM.t =
    SM.create ~buckets:2 ~lease:0.01 ~grant_timeout:0.0005 ()
  in
  let push cell x =
    let rec go () =
      let cur = Atomic.get cell in
      if not (Atomic.compare_and_set cell cur (x :: cur)) then go ()
    in
    go ()
  in
  let proposed : (int * int) list Atomic.t = Atomic.make [] in
  let pending : (unit -> bool) list Atomic.t = Atomic.make [] in
  let ops = Atomic.make 0 in
  List.iter
    (fun phase ->
      let threads = prog.P.threads in
      let barrier = Sync.Barrier.create threads in
      let worker i () =
        let h = SM.handle m in
        let track f = push pending (fun () -> Future.is_pending f) in
        Sync.Barrier.wait barrier;
        try
          List.iter
            (fun (st : P.step) ->
              Faults.point "fuzz.step";
              ignore (Atomic.fetch_and_add ops 1);
              match st.P.op with
              | P.Force -> SM.flush h
              | P.Bind (k, v) ->
                  push proposed (k, v);
                  track (SM.insert h k v)
              | P.Lookup k -> track (SM.find h k)
              | P.Unbind k -> track (SM.remove h k)
              | _ -> ())
            phase.(i);
          SM.flush h
        with Faults.Killed _ -> ignore (SM.abandon h)
      in
      let ds = List.init threads (fun i -> Domain.spawn (worker i)) in
      List.iter Domain.join ds)
    prog.P.phases;
  (* Recovery drain: windows shipped to (or granted by) dead handles sit
     in transfer states until their deadline; sweep from a fresh handle
     until every tracked future is terminal. Bounded, so a protocol hang
     becomes a violation here instead of hanging the fuzzer. *)
  let dh = SM.handle m in
  let deadline = Sync.Mono.now () +. 5.0 in
  let still () =
    List.exists (fun is_pending -> is_pending ()) (Atomic.get pending)
  in
  let hung = ref false in
  while still () && not !hung do
    ignore (SM.recover_all dh);
    if Sync.Mono.now () > deadline then hung := true else Unix.sleepf 0.0005
  done;
  let props = Atomic.get proposed in
  let alien =
    List.filter (fun (k, v) -> not (List.mem (k, v) props)) (SM.bindings m)
  in
  let verdict =
    if !hung then
      let n =
        List.length
          (List.filter (fun is_pending -> is_pending ()) (Atomic.get pending))
      in
      violation
        "shardmap: %d future(s) still pending after the recovery drain \
         deadline (stats: %d req / %d ship / %d ack / %d recover)"
        n (SM.stats m).SM.requests (SM.stats m).SM.ships (SM.stats m).SM.acks
        (SM.stats m).SM.recovers
    else if alien <> [] then
      violation "shardmap: %d surviving binding(s) never proposed by any Bind"
        (List.length alien)
    else Pass
  in
  { verdict; ops = Atomic.get ops; fsc_witness = false }

(* Service oracle: the admission-controlled session path. Map programs
   run against a 2-bucket sharded store behind a live [Overload]
   controller forced into the shedding regime (hysteresis effectively
   infinite, so chaos cannot quietly recover it): every Bind/Lookup/
   Unbind first asks [Overload.admit] — and mutations additionally
   respect [writes_degraded] — so each op is either {e admitted}
   (executed and recorded) or {e shed} (refused before any structure
   call: no future, no history entry, no store effect). Plans may kill
   at the service points ([service.admit]/[service.shed]/
   [service.degrade]/[service.epoch]) and at the shard transfer points;
   a killed worker abandons its handle like a real dead domain.

   Properties, under any plan:

   - liveness: after a bounded recovery drain, no tracked future of an
     admitted op is still pending — shed or not, nothing hangs;
   - shed exclusion: every binding in the surviving store was proposed
     by an {e admitted} Bind — shed ops leave no trace;
   - conformance (kill-free plans only): the recorded history of the
     admitted subset is FL-conformant against the map spec. A killed
     worker's recorded entries are ambiguous (applied or not), so kill
     plans rest on the two oracle properties, like [fclease]/[shardmap]. *)
let service_run cond (prog : P.t) ~with_kills =
  let m : int SM.t =
    SM.create ~buckets:2 ~lease:0.01 ~grant_timeout:0.0005 ()
  in
  let ov =
    Workload.Overload.create
      ~cfg:{ Workload.Overload.default with hysteresis = max_int }
      ~epoch:0.001 ()
  in
  Workload.Overload.force_stage ov Workload.Overload.Shed;
  let push cell x =
    let rec go () =
      let cur = Atomic.get cell in
      if not (Atomic.compare_and_set cell cur (x :: cur)) then go ()
    in
    go ()
  in
  let admitted_binds : (int * int) list Atomic.t = Atomic.make [] in
  let pending : (unit -> bool) list Atomic.t = Atomic.make [] in
  let logs = Atomic.make [] in
  let admitted = Atomic.make 0 in
  let shed = Atomic.make 0 in
  let clock = H.clock () in
  Workload.Overload.start ov;
  Fun.protect
    ~finally:(fun () -> Workload.Overload.stop ov)
    (fun () ->
      List.iter
        (fun phase ->
          let threads = prog.P.threads in
          let barrier = Sync.Barrier.create threads in
          let worker i () =
            let h = SM.handle m in
            let log = H.log () in
            push logs log;
            let completions = ref [] in
            let flush () =
              SM.flush h;
              List.iter (fun k -> k ()) !completions;
              completions := []
            in
            (* Gate one op. Refusal happens before any structure call, so
               a shed op cannot appear in the history or the store. *)
            let gate ~write =
              if write && Workload.Overload.writes_degraded ov then begin
                ignore (Atomic.fetch_and_add shed 1);
                false
              end
              else if Workload.Overload.admit ov then begin
                ignore (Atomic.fetch_and_add admitted 1);
                true
              end
              else begin
                ignore (Atomic.fetch_and_add shed 1);
                false
              end
            in
            let call st mk f =
              let fut, c =
                H.recorded_call log clock ~thread:i ~obj:st.P.obj f
              in
              push pending (fun () -> Future.is_pending fut);
              completions :=
                (fun () ->
                  try ignore (c mk)
                  with Future.Cancelled | Future.Broken _ | Future.Rejected ->
                    (* Collateral of a kill elsewhere: the entry stays
                       unfiled; kill plans skip the history check. *)
                    ())
                :: !completions
            in
            Sync.Barrier.wait barrier;
            try
              List.iter
                (fun (st : P.step) ->
                  Faults.point "fuzz.step";
                  match st.P.op with
                  | P.Force -> flush ()
                  | P.Bind (k, v) ->
                      if gate ~write:true then begin
                        push admitted_binds (k, v);
                        call st
                          (fun r -> Lin.Spec.Map_spec.Insert (k, v, r))
                          (fun () -> SM.insert h k v)
                      end
                  | P.Lookup k ->
                      if gate ~write:false then
                        call st
                          (fun r -> Lin.Spec.Map_spec.Find (k, r))
                          (fun () -> SM.find h k)
                  | P.Unbind k ->
                      if gate ~write:true then
                        call st
                          (fun r -> Lin.Spec.Map_spec.Remove (k, r))
                          (fun () -> SM.remove h k)
                  | _ -> ())
                phase.(i);
              flush ()
            with Faults.Killed _ -> ignore (SM.abandon h)
          in
          let ds = List.init threads (fun i -> Domain.spawn (worker i)) in
          List.iter Domain.join ds)
        prog.P.phases;
      (* Liveness: sweep expired buckets from a fresh handle until every
         tracked future is terminal, under a hard deadline. *)
      let dh = SM.handle m in
      let deadline = Sync.Mono.now () +. 5.0 in
      let still () =
        List.exists (fun is_pending -> is_pending ()) (Atomic.get pending)
      in
      let hung = ref false in
      while still () && not !hung do
        ignore (SM.recover_all dh);
        if Sync.Mono.now () > deadline then hung := true
        else Unix.sleepf 0.0005
      done;
      let binds = Atomic.get admitted_binds in
      let alien =
        List.filter (fun (k, v) -> not (List.mem (k, v) binds)) (SM.bindings m)
      in
      let verdict =
        if !hung then
          let n =
            List.length
              (List.filter
                 (fun is_pending -> is_pending ())
                 (Atomic.get pending))
          in
          violation
            "service: %d admitted future(s) still pending after the recovery \
             drain deadline (stage %s, %d admitted / %d shed)"
            n
            (Workload.Overload.stage_name (Workload.Overload.stage ov))
            (Atomic.get admitted) (Atomic.get shed)
        else if alien <> [] then
          violation
            "service: %d surviving binding(s) never proposed by an admitted \
             Bind — shed ops must leave no trace"
            (List.length alien)
        else if not with_kills then begin
          let h = H.merge (Atomic.get logs) in
          if CM.check_segmented cond h then Pass
          else
            violation "service: admitted-op history is not %s:@.%a"
              (Lin.Order.condition_name cond)
              CM.pp_history h
        end
        else Pass
      in
      {
        verdict;
        ops = Atomic.get admitted + Atomic.get shed;
        fsc_witness = false;
      })

(* ------------------------------ run ------------------------------- *)

let run ?condition (t : target) (prog : P.t) (plan : Plan.t) =
  if Plan.has_kills plan && not t.kill_plan then
    invalid_arg
      ("Fuzz.Exec.run: kill plan against history-checked target " ^ t.name);
  let cond = Option.value condition ~default:t.condition in
  Faults.install_plan plan;
  Fun.protect
    ~finally:(fun () -> Faults.uninstall_plan plan)
    (fun () ->
      match t.runner with
      | RStack i -> stack_run i cond prog
      | RQueue i -> queue_run i cond prog
      | RSet i -> set_run i cond prog
      | RMap -> map_run cond prog
      | RMulti -> multi_run cond prog
      | RSlack -> slack_run prog
      | RFclease -> fclease_run prog
      | RShard -> shardmap_run prog
      | RTuned -> tuned_run cond prog
      | RService -> service_run cond prog ~with_kills:(Plan.has_kills plan))
