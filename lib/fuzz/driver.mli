(** Fuzz campaigns: generate, execute, shrink, save, replay.

    One campaign fuzzes one target. Iteration [i] derives a program seed
    and a plan seed from [(seed, i)] through dedicated rng streams, so
    the whole campaign — programs, plans, and (for deterministic
    failures) verdicts — is a pure function of the campaign seed. The
    campaign stops at the first violation: the counterexample is shrunk
    (program first, then plan) and written as
    [<out_dir>/<seed>.repro]. *)

type report = {
  target : string;
  condition : Lin.Order.condition;
  iters : int;  (** iterations executed (≤ requested; stops at failure) *)
  total_ops : int;
  violations : int;  (** 0 or 1 — the campaign stops at the first *)
  fsc_witnesses : int;
      (** iterations where [fig3] exhibited the Figure-3 global-Fsc
          failure over per-object-correct queues *)
  repro_path : string option;
  shrunk_ops : int option;  (** recorded ops in the shrunk program *)
  shrunk_plan : int option;  (** steps in the shrunk plan *)
  first_failure : string option;
}

val default_out_dir : string
(** [results/fuzz]. *)

val fuzz :
  ?size:Program.size ->
  ?condition:Lin.Order.condition ->
  ?iters:int ->
  ?budget:float ->
  ?plan_intensity:int ->
  ?shrink_tries:int ->
  ?max_shrink_evals:int ->
  ?out_dir:string ->
  ?file:string ->
  seed:int ->
  Exec.target ->
  report
(** [condition] overrides the target's claimed condition (the
    intentionally-too-strong checks). [iters] (default 20) caps
    iterations; [budget] (seconds, default unlimited) additionally stops
    the loop on a deadline. [shrink_tries] (default 2) is how many times
    a shrink candidate is re-executed before it is declared passing
    (schedule-dependent failures need > 1); [max_shrink_evals] bounds
    the whole shrink search. [file] overrides the repro file name
    (default [<seed>.repro]). *)

val replay : string -> Repro.t * Exec.outcome
(** Load a repro file and re-execute its exact program and plan against
    its recorded target and condition. *)
