type t = {
  target : string;
  condition : Lin.Order.condition;
  seed : int;
  program : Program.t;
  plan : Plan.t;
}

let magic = "flds-fuzz-repro 1"

let condition_to_string = function
  | Lin.Order.Strong -> "strong"
  | Lin.Order.Medium -> "medium"
  | Lin.Order.Weak -> "weak"
  | Lin.Order.Fsc -> "fsc"

let condition_of_string = function
  | "strong" -> Lin.Order.Strong
  | "medium" -> Lin.Order.Medium
  | "weak" -> Lin.Order.Weak
  | "fsc" -> Lin.Order.Fsc
  | s -> invalid_arg ("Fuzz.Repro: unknown condition " ^ s)

let to_string r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "target %s" r.target;
  line "condition %s" (condition_to_string r.condition);
  line "seed %d" r.seed;
  line "kind %s" (Program.kind_name r.program.Program.kind);
  line "threads %d" r.program.Program.threads;
  List.iter
    (fun phase ->
      line "phase";
      Array.iteri
        (fun ti steps ->
          List.iter
            (fun (st : Program.step) ->
              line "t %d %d %s" ti st.Program.obj
                (Program.op_to_string st.Program.op))
            steps)
        phase)
    r.program.Program.phases;
  List.iter (fun s -> line "plan %s" (Plan.step_to_string s)) r.plan;
  line "end";
  Buffer.contents b

let of_string s =
  let fail fmt = Printf.ksprintf invalid_arg ("Fuzz.Repro.of_string: " ^^ fmt) in
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  let header = Hashtbl.create 8 in
  let phases = ref [] and cur_phase = ref None and plan = ref [] in
  let threads () =
    match Hashtbl.find_opt header "threads" with
    | Some n -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> n
        | _ -> fail "bad threads %s" n)
    | None -> fail "missing threads line"
  in
  let close_phase () =
    match !cur_phase with
    | Some ph ->
        phases := Array.map List.rev ph :: !phases;
        cur_phase := None
    | None -> ()
  in
  let seen_end = ref false in
  (match lines with
  | m :: _ when m = magic -> ()
  | m :: _ -> fail "bad magic %S" m
  | [] -> fail "empty file");
  List.iteri
    (fun i line ->
      if i > 0 && not !seen_end then
        match String.split_on_char ' ' line with
        | [ "end" ] ->
            close_phase ();
            seen_end := true
        | [ "phase" ] ->
            close_phase ();
            cur_phase := Some (Array.make (threads ()) [])
        | "t" :: ti :: obj :: rest -> (
            match !cur_phase with
            | None -> fail "step outside a phase: %s" line
            | Some ph -> (
                match (int_of_string_opt ti, int_of_string_opt obj) with
                | Some ti, Some obj when ti >= 0 && ti < Array.length ph ->
                    let op = Program.op_of_string (String.concat " " rest) in
                    ph.(ti) <- { Program.obj; op } :: ph.(ti)
                | _ -> fail "bad step: %s" line))
        | "plan" :: rest ->
            close_phase ();
            plan := Plan.step_of_string (String.concat " " rest) :: !plan
        | [ key; value ] when !cur_phase = None && !plan = [] ->
            Hashtbl.replace header key value
        | _ -> fail "unparseable line: %s" line)
    lines;
  if not !seen_end then fail "missing end line (truncated file?)";
  let get key =
    match Hashtbl.find_opt header key with
    | Some v -> v
    | None -> fail "missing %s line" key
  in
  let seed =
    match int_of_string_opt (get "seed") with
    | Some n -> n
    | None -> fail "bad seed %s" (get "seed")
  in
  let kind = Program.kind_of_name (get "kind") in
  let phases = List.rev !phases in
  if phases = [] then fail "no phases";
  {
    target = get "target";
    condition = condition_of_string (get "condition");
    seed;
    program = { Program.kind; threads = threads (); phases };
    plan = List.rev !plan;
  }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~path r =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string r))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
  |> of_string
