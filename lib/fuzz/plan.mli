(** Seeded schedule-perturbation plans.

    A plan is a pure list of {!Faults.plan_step}s — "the [at]-th hit of
    point [pt] performs [act]" — generated deterministically from a seed
    and installed with {!Faults.install_plan} for the duration of one
    program execution. Because a plan is data, the schedule it injects is
    replayable: the same plan stalls the same hits of the same points.

    Stall plans use only [Delay]/[Sleep]. [Kill] actions are generated
    only when [kills] is set: a killed operation may or may not have
    taken effect, which a recorded-history checker cannot tell apart, so
    history-checked targets never see kills — except [tuned], whose
    operations never pass a kill point (the only reachable kill point is
    the controller's ["tune.epoch"]). *)

type t = Faults.plan_step list

val stall_points : string list
(** Injection points stall plans draw from (includes [fuzz.step], hit
    before every program step). *)

val kill_points : string list
(** Points kill actions are restricted to: the flat-combining and shard
    transfer protocol points, plus the self-tuning controller's
    ["tune.epoch"]. *)

val generate :
  ?intensity:int -> ?horizon:int -> ?kills:bool -> seed:int -> unit -> t
(** [intensity] steps (default 12), hit indices uniform in
    [0, horizon) (default 160). Deterministic in [(intensity, horizon,
    kills, seed)]. *)

val has_kills : t -> bool

val step_to_string : Faults.plan_step -> string
(** Canonical one-line form; [Sleep] durations print as [%h] hex floats
    so the round-trip is bit-exact. *)

val step_of_string : string -> Faults.plan_step
(** Inverse of {!step_to_string}; raises [Invalid_argument]. *)

val shrink_candidates : t -> t list
(** Strictly smaller plans, the empty plan first. *)
