(* Twin greedy shrinker: minimize the op program first (the plan, still
   full, keeps the failure schedule alive while the program shrinks),
   then minimize the plan against the shrunk program. Each stage is a
   greedy fixpoint — restart from the first candidate that still fails —
   bounded by a total evaluation budget so a flaky counterexample cannot
   stall the campaign. *)

type stats = { evals : int; exhausted : bool }

let minimize ~fails ?(max_evals = 400) prog plan =
  let evals = ref 0 in
  let exhausted = ref false in
  let try_fail p pl =
    if !evals >= max_evals then begin
      exhausted := true;
      false
    end
    else begin
      incr evals;
      fails p pl
    end
  in
  let rec fix_prog p =
    match
      List.find_opt (fun cand -> try_fail cand plan) (Program.shrink_candidates p)
    with
    | Some cand -> fix_prog cand
    | None -> p
  in
  let prog = fix_prog prog in
  let rec fix_plan pl =
    match
      List.find_opt (fun cand -> try_fail prog cand) (Plan.shrink_candidates pl)
    with
    | Some cand -> fix_plan cand
    | None -> pl
  in
  let plan = fix_plan plan in
  (prog, plan, { evals = !evals; exhausted = !exhausted })
