module Rng = Faults.Rng

type t = Faults.plan_step list

let init_list n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

(* Points a perturbation plan may stall at. Kill actions are excluded
   from history-checked targets: a killed operation may or may not have
   taken effect, so its recorded entry would poison the checker with
   false violations. Kills are exercised by the dedicated lease target
   (Exec's [fclease]), whose oracle tolerates the ambiguity. *)
let stall_points =
  [
    "fuzz.step";
    "future.fulfil";
    "future.force";
    "future.await";
    "fc.apply";
    "fc.pass";
    "fc.record";
    "elim.exchange";
    "elim.offer";
    "elim.park";
    "spinlock.acquire";
    "backoff.once";
    "shard.grant";
    "shard.ship";
    "shard.ack";
    "tune.epoch";
    "service.admit";
    "service.shed";
    "service.epoch";
  ]

(* Kill points fire only in kill-plan targets' code paths: the fc.*
   points in [fclease], the shard.* points in [shardmap], "tune.epoch"
   — the self-tuning controller's heartbeat — in [tuned] (the one
   history-checked target that accepts kills: its operations never pass
   a kill point, so a kill can only murder the controller), and the
   service.* points in [service] (admit/shed kill a worker mid-request,
   degrade/epoch kill the admission controller). A kill step whose
   point the target never reaches is simply inert. *)
let kill_points =
  [
    "fc.pass";
    "fc.record";
    "shard.grant";
    "shard.ship";
    "shard.ack";
    "tune.epoch";
    "service.admit";
    "service.shed";
    "service.degrade";
    "service.epoch";
  ]

let pick rng l = List.nth l (Rng.below rng (List.length l))

let generate ?(intensity = 12) ?(horizon = 160) ?(kills = false) ~seed () =
  let rng = Rng.create ~seed ~stream:0x504c in
  init_list intensity (fun _ ->
      let kill = kills && Rng.below rng 4 = 0 in
      let pt = if kill then pick rng kill_points else pick rng stall_points in
      let at = Rng.below rng horizon in
      let act =
        if kill then Faults.Kill
        else
          match Rng.below rng 4 with
          | 0 | 1 -> Faults.Delay (1 + Rng.below rng 2048)
          | 2 -> Faults.Delay (1 + Rng.below rng 16_384)
          | _ -> Faults.Sleep (1e-6 *. float_of_int (1 + Rng.below rng 200))
      in
      { Faults.pt; at; act })

let has_kills (p : t) = List.exists (fun s -> s.Faults.act = Faults.Kill) p

(* ------------------------- serialization -------------------------- *)

(* Floats print as %h hex literals so parsing reproduces the exact bit
   pattern (byte-for-byte replay). *)
let action_to_string = function
  | Faults.Nothing -> "nothing"
  | Faults.Delay n -> "delay " ^ string_of_int n
  | Faults.Sleep s -> Printf.sprintf "sleep %h" s
  | Faults.Kill -> "kill"

let action_of_string s =
  match String.split_on_char ' ' s with
  | [ "nothing" ] -> Faults.Nothing
  | [ "delay"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Faults.Delay n
      | None -> invalid_arg ("Fuzz.Plan.action_of_string: " ^ s))
  | [ "sleep"; f ] -> (
      match float_of_string_opt f with
      | Some f -> Faults.Sleep f
      | None -> invalid_arg ("Fuzz.Plan.action_of_string: " ^ s))
  | [ "kill" ] -> Faults.Kill
  | _ -> invalid_arg ("Fuzz.Plan.action_of_string: " ^ s)

let step_to_string (s : Faults.plan_step) =
  Printf.sprintf "%s %d %s" s.Faults.pt s.Faults.at
    (action_to_string s.Faults.act)

let step_of_string line =
  match String.index_opt line ' ' with
  | None -> invalid_arg ("Fuzz.Plan.step_of_string: " ^ line)
  | Some i -> (
      let pt = String.sub line 0 i in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match String.index_opt rest ' ' with
      | None -> invalid_arg ("Fuzz.Plan.step_of_string: " ^ line)
      | Some j ->
          let at =
            match int_of_string_opt (String.sub rest 0 j) with
            | Some n -> n
            | None -> invalid_arg ("Fuzz.Plan.step_of_string: " ^ line)
          in
          let act =
            action_of_string
              (String.sub rest (j + 1) (String.length rest - j - 1))
          in
          { Faults.pt; at; act })

(* --------------------------- shrinking ---------------------------- *)

let shrink_candidates (p : t) =
  let n = List.length p in
  if n = 0 then []
  else
    (* The empty plan first: many counterexamples are pure program bugs
       that need no schedule perturbation at all. *)
    [ [] ]
    @ (if n <= 1 then []
       else
         [
           List.filteri (fun i _ -> i >= n / 2) p;
           List.filteri (fun i _ -> i < n / 2) p;
         ])
    @ init_list n (fun i -> List.filteri (fun j _ -> j <> i) p)
