(** Random operation programs for the conformance fuzzer.

    A program is pure data: [threads] per-thread step lists, grouped into
    {e phases}. Each phase spawns fresh domains that run their step lists
    concurrently from a barrier and are joined before the next phase
    starts — so phase boundaries are quiescent cuts, which keeps
    arbitrarily long programs within reach of the exact
    {!Lin.Checker.Make.check_segmented} search.

    Within a thread, non-[Force] steps issue future-returning operations
    whose completions are deferred (newest-first, the {!Fl.Slack} policy);
    a [Force] step flushes the thread's pending window. Generation is a
    pure function of [(kind, size, seed)]. *)

type kind =
  | Stack
  | Queue
  | Set
  | Map  (** the bind-once {!Fl.Weak_map} *)
  | Multi  (** two objects — the Figure-3 compositionality shape *)

val kind_name : kind -> string

val kind_of_name : string -> kind
(** Raises [Invalid_argument] for unknown names. *)

type op =
  | Push of int
  | Pop
  | Enq of int
  | Deq
  | Add of int
  | Del of int
  | Mem of int
  | Bind of int * int
  | Lookup of int
  | Unbind of int
  | Force  (** flush the thread's pending futures *)

type step = { obj : int; op : op }

type t = { kind : kind; threads : int; phases : step list array list }

type size = { threads : int; phases : int; steps : int }

val default_size : size
(** 3 threads × 2 phases × 5 steps. *)

val cap : size -> size
(** Clamp a size so every phase's recorded operations fit the checker's
    62-op exact-search bound (threads ≤ 8, phases ≤ 8,
    steps ≤ 62/threads). [generate] applies this automatically. *)

val objects : kind -> int
(** Distinct object ids the kind's programs address (2 for [Multi]). *)

val generate : ?size:size -> kind -> seed:int -> t
(** Deterministic: same [(size, kind, seed)], same program. Pushed,
    enqueued and bound values are unique within the program so the
    checker cannot credit a result to the wrong operation. *)

val generate_mega : ?threads:int -> kind -> steps:int -> seed:int -> t
(** One phase, [steps] per thread, {e no} 62-op cap: histories only the
    streaming monitor ({!Lin.Stream}) can certify. Deterministic in
    [(threads, kind, steps, seed)]; values are unique as in
    {!generate}. [threads] defaults to 3 (clamped to [1, 8]). *)

val recorded_ops : t -> int
(** Number of non-[Force] steps — the operations the history records. *)

val op_to_string : op -> string

val op_of_string : string -> op
(** Inverse of {!op_to_string}; raises [Invalid_argument]. *)

val shrink_candidates : t -> t list
(** Strictly smaller variants, most aggressive first: dropped phases,
    dropped threads, halved and single-step-reduced step lists. *)
