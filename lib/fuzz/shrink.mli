(** Twin counterexample shrinker.

    [minimize ~fails prog plan] assumes [(prog, plan)] fails and returns
    a (weakly) smaller failing pair: first the program is reduced to a
    greedy fixpoint of {!Program.shrink_candidates} under the original
    plan, then the plan is reduced against the shrunk program. [fails]
    should re-execute a candidate (several times if the failure is
    schedule-dependent) and return whether it still fails.

    At most [max_evals] (default 400) calls to [fails] are made in
    total; [stats.exhausted] reports whether the budget cut the search
    short. *)

type stats = { evals : int; exhausted : bool }

val minimize :
  fails:(Program.t -> Plan.t -> bool) ->
  ?max_evals:int ->
  Program.t ->
  Plan.t ->
  Program.t * Plan.t * stats
