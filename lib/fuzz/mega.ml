module Rng = Faults.Rng
module H = Lin.History
module P = Program

type target = { family : P.kind; impl : string; corrupt : int option }

let target_to_string t =
  Printf.sprintf "mega/%s/%s%s" (P.kind_name t.family) t.impl
    (match t.corrupt with Some s -> Printf.sprintf "@0x%x" s | None -> "")

let is_mega_name s =
  String.length s >= 5 && String.sub s 0 5 = "mega/"

let target_of_string s =
  let fail () = invalid_arg ("Fuzz.Mega.target_of_string: " ^ s) in
  match String.split_on_char '/' s with
  | [ "mega"; fam; rest ] ->
      let impl, corrupt =
        match String.index_opt rest '@' with
        | None -> (rest, None)
        | Some i -> (
            let impl = String.sub rest 0 i in
            let cs = String.sub rest (i + 1) (String.length rest - i - 1) in
            match int_of_string_opt cs with
            | Some n -> (impl, Some n)
            | None -> fail ())
      in
      let family =
        match fam with
        | "stack" -> P.Stack
        | "queue" -> P.Queue
        | _ -> fail ()
      in
      if impl = "" then fail ();
      { family; impl; corrupt }
  | _ -> fail ()

type outcome = { verdict : Lin.Stream.verdict; ops : int }

(* --------------------------- corruption --------------------------- *)

let stamps (e : _ H.entry) =
  let s = [ e.H.create_inv; e.H.create_res ] in
  let s = match e.H.eval_inv with Some t -> t :: s | None -> s in
  match e.H.eval_res with Some t -> t :: s | None -> s

(* Deterministic seeded corruption of a recorded history. Preferred
   shape: find two matched add/remove pairs whose recorded lifetimes are
   strictly ordered (every stamp of one precedes every stamp of the
   other) and swap the two removes' values — the swapped-in remove now
   provably completes before its add begins, a violation under any FL
   condition. Fallback when the history has matched pairs but no ordered
   two: retarget one remove at a value that was never added. A history
   with no matched remove at all is returned unchanged (nothing to
   corrupt — the campaign moves on). *)
let corrupt_history ~seed ~value_of_add ~value_of_remove ~with_remove_value h =
  let adds = Hashtbl.create 997 and rems = Hashtbl.create 997 in
  let maxv = ref 0 in
  Array.iteri
    (fun i (e : _ H.entry) ->
      (match value_of_add e.H.op with
      | Some v ->
          Hashtbl.replace adds v i;
          maxv := max !maxv v
      | None -> ());
      match value_of_remove e.H.op with
      | Some v ->
          Hashtbl.replace rems v i;
          maxv := max !maxv v
      | None -> ())
    h;
  let pairs =
    Hashtbl.fold
      (fun v ai acc ->
        match Hashtbl.find_opt rems v with
        | Some ri -> (v, ai, ri) :: acc
        | None -> acc)
      adds []
  in
  let life (_, ai, ri) =
    let ss = stamps h.(ai) @ stamps h.(ri) in
    (List.fold_left min max_int ss, List.fold_left max min_int ss)
  in
  let parr =
    Array.of_list
      (List.sort (fun p q -> compare (life p, p) (life q, q)) pairs)
  in
  let rng = Rng.create ~seed ~stream:0xc0de in
  let h' = Array.copy h in
  (* Candidate ordered pairs-of-pairs: with pairs sorted by lifetime
     start, scan forward from each for a few whose start clears its
     end. *)
  let candidates = ref [] in
  Array.iteri
    (fun i p ->
      let _, hi = life p in
      let rec scan j k =
        if j < Array.length parr && k > 0 then begin
          let lo, _ = life parr.(j) in
          if lo > hi then begin
            candidates := (i, j) :: !candidates;
            scan (j + 1) (k - 1)
          end
          else scan (j + 1) k
        end
      in
      scan (i + 1) 3)
    parr;
  match Array.of_list (List.rev !candidates) with
  | [||] ->
      if Array.length parr = 0 then h'
      else begin
        let _, _, ri = parr.(Rng.below rng (Array.length parr)) in
        h'.(ri) <-
          {
            (h'.(ri)) with
            H.op =
              with_remove_value h'.(ri).H.op (!maxv + 1 + Rng.below rng 64);
          };
        h'
      end
  | cs ->
      let i, j = cs.(Rng.below rng (Array.length cs)) in
      let v1, _, r1 = parr.(i) and v2, _, r2 = parr.(j) in
      h'.(r1) <- { (h'.(r1)) with H.op = with_remove_value h'.(r1).H.op v2 };
      h'.(r2) <- { (h'.(r2)) with H.op = with_remove_value h'.(r2).H.op v1 };
      h'

let q_add = function Lin.Spec.Queue_spec.Enq v -> Some v | _ -> None

let q_rem = function
  | Lin.Spec.Queue_spec.Deq (Some v) -> Some v
  | _ -> None

let q_set op v =
  match op with
  | Lin.Spec.Queue_spec.Deq (Some _) -> Lin.Spec.Queue_spec.Deq (Some v)
  | _ -> op

let s_add = function Lin.Spec.Stack_spec.Push v -> Some v | _ -> None

let s_rem = function
  | Lin.Spec.Stack_spec.Pop (Some v) -> Some v
  | _ -> None

let s_set op v =
  match op with
  | Lin.Spec.Stack_spec.Pop (Some _) -> Lin.Spec.Stack_spec.Pop (Some v)
  | _ -> op

(* ------------------------------ run ------------------------------- *)

let run ?condition (t : target) prog plan =
  if Plan.has_kills plan then
    invalid_arg "Fuzz.Mega.run: kill plans are not allowed in mega mode";
  let cond =
    match condition with
    | Some c -> c
    | None -> Conformance.claimed_condition t.impl
  in
  (match cond with
  | Lin.Order.Strong | Lin.Order.Weak -> ()
  | c ->
      invalid_arg
        ("Fuzz.Mega.run: mega histories need the streaming certificates, \
          which cover Strong and Weak only (got "
        ^ Lin.Order.condition_name c ^ ")"));
  Faults.install_plan plan;
  Fun.protect
    ~finally:(fun () -> Faults.uninstall_plan plan)
    (fun () ->
      match t.family with
      | P.Queue ->
          let h = Exec.record_queue ~impl:t.impl prog in
          let h =
            match t.corrupt with
            | Some seed ->
                corrupt_history ~seed ~value_of_add:q_add ~value_of_remove:q_rem
                  ~with_remove_value:q_set h
            | None -> h
          in
          {
            verdict = Lin.Stream.check_queue_history cond h;
            ops = Array.length h;
          }
      | P.Stack ->
          let h = Exec.record_stack ~impl:t.impl prog in
          let h =
            match t.corrupt with
            | Some seed ->
                corrupt_history ~seed ~value_of_add:s_add ~value_of_remove:s_rem
                  ~with_remove_value:s_set h
            | None -> h
          in
          {
            verdict = Lin.Stream.check_stack_history cond h;
            ops = Array.length h;
          }
      | _ ->
          invalid_arg
            "Fuzz.Mega.run: mega targets are stack or queue families only")

(* ---------------------------- campaign ---------------------------- *)

type report = {
  target : string;
  condition : Lin.Order.condition;
  iters : int;
  total_ops : int;
  violating_index : int option;
  repro_path : string option;
  shrunk_ops : int option;
  first_failure : string option;
}

let derived ~seed ~iter =
  let rng = Rng.create ~seed ~stream:(0x6d65 + iter) in
  let prog_seed = Rng.next rng in
  let plan_seed = Rng.next rng in
  (prog_seed, plan_seed)

let fuzz ?(threads = 3) ?(steps = 2000) ?condition ?(iters = 5)
    ?(plan_intensity = 12) ?(shrink_tries = 2) ?(max_shrink_evals = 200)
    ?(out_dir = Driver.default_out_dir) ?file ~seed (t : target) =
  let condition =
    match condition with
    | Some c -> c
    | None -> Conformance.claimed_condition t.impl
  in
  let total_ops = ref 0 in
  let rec loop i =
    if i >= iters then None
    else begin
      let prog_seed, plan_seed = derived ~seed ~iter:i in
      let prog = P.generate_mega ~threads t.family ~steps ~seed:prog_seed in
      let plan =
        Plan.generate ~kills:false ~intensity:plan_intensity ~seed:plan_seed ()
      in
      let out = run ~condition t prog plan in
      total_ops := !total_ops + out.ops;
      match out.verdict with
      | Lin.Stream.Accept -> loop (i + 1)
      | Lin.Stream.Reject { reason; _ } -> Some (i, prog, plan, reason)
    end
  in
  match loop 0 with
  | None ->
      {
        target = target_to_string t;
        condition;
        iters;
        total_ops = !total_ops;
        violating_index = None;
        repro_path = None;
        shrunk_ops = None;
        first_failure = None;
      }
  | Some (i, prog, plan, reason) ->
      let fails p pl =
        let rec go k =
          k < shrink_tries
          &&
          match (run ~condition t p pl).verdict with
          | Lin.Stream.Reject _ -> true
          | Lin.Stream.Accept -> go (k + 1)
        in
        go 0
      in
      let prog, plan, _stats =
        Shrink.minimize ~fails ~max_evals:max_shrink_evals prog plan
      in
      let violating_index =
        match (run ~condition t prog plan).verdict with
        | Lin.Stream.Reject { index; _ } -> Some index
        | Lin.Stream.Accept -> None
      in
      let file =
        match file with
        | Some f -> f
        | None -> string_of_int seed ^ "-mega.repro"
      in
      let path = Filename.concat out_dir file in
      Repro.save ~path
        {
          Repro.target = target_to_string t;
          condition;
          seed;
          program = prog;
          plan;
        };
      {
        target = target_to_string t;
        condition;
        iters = i + 1;
        total_ops = !total_ops;
        violating_index;
        repro_path = Some path;
        shrunk_ops = Some (P.recorded_ops prog);
        first_failure = Some reason;
      }

let replay path =
  let r = Repro.load path in
  let t = target_of_string r.Repro.target in
  (r, run ~condition:r.Repro.condition t r.Repro.program r.Repro.plan)
