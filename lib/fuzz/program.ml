module Rng = Faults.Rng

type kind = Stack | Queue | Set | Map | Multi

let kind_name = function
  | Stack -> "stack"
  | Queue -> "queue"
  | Set -> "set"
  | Map -> "map"
  | Multi -> "multi"

let kind_of_name = function
  | "stack" -> Stack
  | "queue" -> Queue
  | "set" -> Set
  | "map" -> Map
  | "multi" -> Multi
  | s -> invalid_arg ("Fuzz.Program.kind_of_name: " ^ s)

type op =
  | Push of int
  | Pop
  | Enq of int
  | Deq
  | Add of int
  | Del of int
  | Mem of int
  | Bind of int * int
  | Lookup of int
  | Unbind of int
  | Force

type step = { obj : int; op : op }

type t = { kind : kind; threads : int; phases : step list array list }

(* The stdlib leaves [List.init]/[Array.init] evaluation order
   unspecified; generation must consume the rng in a fixed order, so the
   iteration helpers here are explicit. *)
let init_list n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let recorded_ops t =
  List.fold_left
    (fun acc phase ->
      Array.fold_left
        (fun acc steps ->
          List.fold_left
            (fun acc st -> if st.op = Force then acc else acc + 1)
            acc steps)
        acc phase)
    0 t.phases

type size = { threads : int; phases : int; steps : int }

let default_size = { threads = 3; phases = 2; steps = 5 }

(* Every phase ends with a join, so each phase is one quiescent segment
   for the checker; cap sizes so a phase's recorded ops fit the 62-op
   exact-search bound even for the global (Fsc) check. *)
let cap size =
  let threads = max 1 (min 8 size.threads) in
  let phases = max 1 (min 8 size.phases) in
  let steps = max 1 (min (62 / threads) size.steps) in
  { threads; phases; steps }

let objects = function Multi -> 2 | Stack | Queue | Set | Map -> 1

let key_range = 4

let gen_op kind rng ~uid =
  match kind with
  | Stack -> (
      match Rng.below rng 5 with
      | 0 | 1 -> Push (uid ())
      | 2 | 3 -> Pop
      | _ -> Force)
  | Queue | Multi -> (
      match Rng.below rng 5 with
      | 0 | 1 -> Enq (uid ())
      | 2 | 3 -> Deq
      | _ -> Force)
  | Set -> (
      match Rng.below rng 7 with
      | 0 | 1 -> Add (Rng.below rng key_range)
      | 2 | 3 -> Del (Rng.below rng key_range)
      | 4 | 5 -> Mem (Rng.below rng key_range)
      | _ -> Force)
  | Map -> (
      match Rng.below rng 8 with
      | 0 | 1 | 2 -> Bind (Rng.below rng key_range, uid ())
      | 3 | 4 -> Lookup (Rng.below rng key_range)
      | 5 | 6 -> Unbind (Rng.below rng key_range)
      | _ -> Force)

let generate ?(size = default_size) kind ~seed =
  let size = cap size in
  let rng = Rng.create ~seed ~stream:0x9e37 in
  (* Pushed/enqueued/bound values are unique within a program: value
     collisions would let the checker legalize a history by crediting a
     result to the wrong operation, hiding real violations. *)
  let uid =
    let c = ref 0 in
    fun () ->
      incr c;
      !c
  in
  let nobjs = objects kind in
  let phases =
    init_list size.phases (fun _ ->
        let phase = Array.make size.threads [] in
        for ti = 0 to size.threads - 1 do
          phase.(ti) <-
            init_list size.steps (fun _ ->
                let obj = if nobjs = 1 then 0 else Rng.below rng nobjs in
                { obj; op = gen_op kind rng ~uid })
        done;
        phase)
  in
  { kind; threads = size.threads; phases }

(* Mega programs: one phase, uncapped steps — histories far beyond the
   62-op exact-search bound, certifiable only by the streaming monitor
   (Lin.Stream). Value uniqueness matters even more here: the
   certificates require pairwise-distinct added values. *)
let generate_mega ?(threads = 3) kind ~steps ~seed =
  let threads = max 1 (min 8 threads) in
  let rng = Rng.create ~seed ~stream:0x3e6a in
  let uid =
    let c = ref 0 in
    fun () ->
      incr c;
      !c
  in
  let nobjs = objects kind in
  let phase = Array.make threads [] in
  for ti = 0 to threads - 1 do
    phase.(ti) <-
      init_list steps (fun _ ->
          let obj = if nobjs = 1 then 0 else Rng.below rng nobjs in
          { obj; op = gen_op kind rng ~uid })
  done;
  { kind; threads; phases = [ phase ] }

(* ------------------------- serialization -------------------------- *)

let op_to_string = function
  | Push v -> "push " ^ string_of_int v
  | Pop -> "pop"
  | Enq v -> "enq " ^ string_of_int v
  | Deq -> "deq"
  | Add k -> "add " ^ string_of_int k
  | Del k -> "del " ^ string_of_int k
  | Mem k -> "mem " ^ string_of_int k
  | Bind (k, v) -> Printf.sprintf "bind %d %d" k v
  | Lookup k -> "lookup " ^ string_of_int k
  | Unbind k -> "unbind " ^ string_of_int k
  | Force -> "force"

let op_of_string s =
  let int w =
    match int_of_string_opt w with
    | Some n -> n
    | None -> invalid_arg ("Fuzz.Program.op_of_string: bad int " ^ w)
  in
  match String.split_on_char ' ' s with
  | [ "push"; v ] -> Push (int v)
  | [ "pop" ] -> Pop
  | [ "enq"; v ] -> Enq (int v)
  | [ "deq" ] -> Deq
  | [ "add"; k ] -> Add (int k)
  | [ "del"; k ] -> Del (int k)
  | [ "mem"; k ] -> Mem (int k)
  | [ "bind"; k; v ] -> Bind (int k, int v)
  | [ "lookup"; k ] -> Lookup (int k)
  | [ "unbind"; k ] -> Unbind (int k)
  | [ "force" ] -> Force
  | _ -> invalid_arg ("Fuzz.Program.op_of_string: " ^ s)

(* --------------------------- shrinking ---------------------------- *)

let with_steps (t : t) ~phase ~thread steps =
  {
    t with
    phases =
      List.mapi
        (fun pi ph ->
          if pi <> phase then ph
          else begin
            let ph = Array.copy ph in
            ph.(thread) <- steps;
            ph
          end)
        t.phases;
  }

(* Reduction candidates, most aggressive first: whole phases, whole
   threads, half of one thread's steps in one phase, then single steps.
   The shrinker greedily restarts from the first candidate that still
   fails, so order is a heuristic, not a correctness concern. *)
let shrink_candidates (t : t) =
  let nphases = List.length t.phases in
  let drop_phases =
    if nphases <= 1 then []
    else
      init_list nphases (fun pi ->
          { t with phases = List.filteri (fun i _ -> i <> pi) t.phases })
  in
  let drop_threads =
    if t.threads <= 1 then []
    else
      init_list t.threads (fun ti ->
          {
            t with
            threads = t.threads - 1;
            phases =
              List.map
                (fun ph ->
                  Array.of_list
                    (List.filteri (fun i _ -> i <> ti) (Array.to_list ph)))
                t.phases;
          })
  in
  let drop_steps =
    List.concat
      (List.concat
         (List.mapi
            (fun pi ph ->
              init_list (Array.length ph) (fun ti ->
                  let steps = ph.(ti) in
                  let n = List.length steps in
                  if n = 0 then []
                  else begin
                    let halves =
                      if n <= 1 then []
                      else begin
                        let front =
                          List.filteri (fun i _ -> i < n / 2) steps
                        and back =
                          List.filteri (fun i _ -> i >= n / 2) steps
                        in
                        [
                          with_steps t ~phase:pi ~thread:ti back;
                          with_steps t ~phase:pi ~thread:ti front;
                        ]
                      end
                    in
                    (* Single-step drops are O(steps²) candidates to even
                       materialize; on mega-sized threads stick to halving
                       until the list is small enough to pick at. *)
                    if n > 64 then halves
                    else
                      halves
                      @ init_list n (fun si ->
                            with_steps t ~phase:pi ~thread:ti
                              (List.filteri (fun i _ -> i <> si) steps))
                  end))
            t.phases))
  in
  drop_phases @ drop_threads @ drop_steps
