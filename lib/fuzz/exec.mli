(** Target registry and program execution.

    A {e target} pairs something to fuzz with the condition it claims
    and a way to run a {!Program.t} under a {!Plan.t}. Most targets are
    {e history-checked}: the program runs phase by phase (fresh domains
    per phase, completions deferred newest-first, [Force] steps
    flushing), every operation is recorded through {!Lin.History}, and
    the merged history is checked with the exact segmented search. Two
    are {e oracle} targets with no recorded history: [slack]
    (exactly-once evaluation policy), [fclease] (flat-combining
    combiner-lease sum oracle) and [shardmap] (sharded-map transfer
    protocol: liveness — no future outlives the recovery drain — and
    store refinement under kills at every protocol step). Only oracle
    targets with [kill_plan] accept kill plans: killed operations are
    ambiguous in a recorded history, so history-checked targets reject
    them. *)

type verdict = Pass | Violation of string

type outcome = {
  verdict : verdict;
  ops : int;  (** operations executed (recorded, for checked targets) *)
  fsc_witness : bool;
      (** [fig3] only: per-object Strong held but the global
          futures-sequential-consistency check failed — the paper's
          Figure-3 non-compositionality witness. Informational, never a
          violation. *)
}

type runner

type target = {
  name : string;  (** e.g. ["stack/weak"], ["fig3"], ["fclease"] *)
  kind : Program.kind;
  condition : Lin.Order.condition;  (** the condition the target claims *)
  kill_plan : bool;  (** plans for this target may contain kills *)
  runner : runner;
}

val targets : target list
(** Every registry implementation (stacks, queues, lists) plus
    [map/weak], the Figure-3 two-queue shape ([fig3]), and the [slack],
    [fclease] and [shardmap] oracles. *)

val find : string -> target
(** Raises [Invalid_argument] for unknown names. *)

val run : ?condition:Lin.Order.condition -> target -> Program.t -> Plan.t -> outcome
(** Execute the program under the installed plan and judge it.
    [condition] overrides the target's claimed condition (how the
    intentionally-too-strong checks are requested, e.g. the weak stack
    against Medium). The plan's points are scripted for the duration of
    the call and cleared afterwards; other fault scripts and seeded
    chaos are left untouched. Raises [Invalid_argument] if the plan
    kills but the target is history-checked. *)
