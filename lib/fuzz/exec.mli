(** Target registry and program execution.

    A {e target} pairs something to fuzz with the condition it claims
    and a way to run a {!Program.t} under a {!Plan.t}. Most targets are
    {e history-checked}: the program runs phase by phase (fresh domains
    per phase, completions deferred newest-first, [Force] steps
    flushing), every operation is recorded through {!Lin.History}, and
    the merged history is checked with the exact segmented search. A few
    are {e oracle} targets with no recorded history: [slack]
    (exactly-once evaluation policy), [fclease] (flat-combining
    combiner-lease sum oracle) and [shardmap] (sharded-map transfer
    protocol: liveness — no future outlives the recovery drain — and
    store refinement under kills at every protocol step). Targets with
    [kill_plan] accept kill plans; for history-checked targets that is
    normally forbidden — killed operations are ambiguous in a recorded
    history — with one exception: [tuned], which fuzzes the weak
    exchanger stack while a live {!Tune.Controller} retunes its dials.
    Its operations never pass a kill point (the only reachable one is
    the controller's ["tune.epoch"]), so a kill can only take down the
    tuner, and the history must stay conformant with the last-good
    configuration left in place.

    The [service] target fuzzes the admission-controlled session path:
    map ops pass a live {!Workload.Overload} gate held in the shedding
    regime before touching a sharded store, so every op is either
    admitted (executed, history-checked on kill-free plans) or shed
    (refused before any structure call — no future, no history entry,
    no store effect). It accepts kill plans at the service.* and
    shard.* points; under kills the oracle is liveness (no admitted
    future outlives the recovery drain) plus shed exclusion (every
    surviving binding came from an admitted Bind). *)

type verdict = Pass | Violation of string

type outcome = {
  verdict : verdict;
  ops : int;  (** operations executed (recorded, for checked targets) *)
  fsc_witness : bool;
      (** [fig3] only: per-object Strong held but the global
          futures-sequential-consistency check failed — the paper's
          Figure-3 non-compositionality witness. Informational, never a
          violation. *)
}

type runner

type target = {
  name : string;  (** e.g. ["stack/weak"], ["fig3"], ["fclease"] *)
  kind : Program.kind;
  condition : Lin.Order.condition;  (** the condition the target claims *)
  kill_plan : bool;  (** plans for this target may contain kills *)
  runner : runner;
}

val targets : target list
(** Every registry implementation (stacks, queues, lists) plus
    [map/weak], the Figure-3 two-queue shape ([fig3]), the [slack],
    [fclease] and [shardmap] oracles, and the live-retuning [tuned]
    target. *)

val find : string -> target
(** Raises [Invalid_argument] for unknown names. *)

val record_stack :
  impl:string ->
  Program.t ->
  Lin.Spec.Stack_spec.op Lin.History.entry array
(** Execute a (stack-kind) program against the named registry
    implementation and return the merged recorded history unjudged —
    the raw material of the {!Mega} streaming-checked mode. Raises
    [Invalid_argument] for unknown implementation names. *)

val record_queue :
  impl:string ->
  Program.t ->
  Lin.Spec.Queue_spec.op Lin.History.entry array
(** Queue counterpart of {!record_stack}. *)

val run : ?condition:Lin.Order.condition -> target -> Program.t -> Plan.t -> outcome
(** Execute the program under the installed plan and judge it.
    [condition] overrides the target's claimed condition (how the
    intentionally-too-strong checks are requested, e.g. the weak stack
    against Medium). The plan's points are scripted for the duration of
    the call and cleared afterwards; other fault scripts and seeded
    chaos are left untouched. Raises [Invalid_argument] if the plan
    kills but the target is history-checked. *)
