module Rng = Faults.Rng

type report = {
  target : string;
  condition : Lin.Order.condition;
  iters : int;
  total_ops : int;
  violations : int;
  fsc_witnesses : int;
  repro_path : string option;
  shrunk_ops : int option;
  shrunk_plan : int option;
  first_failure : string option;
}

(* Per-iteration seeds derive from the campaign seed through dedicated
   rng streams, so iteration [i]'s program and plan are pure functions
   of [(seed, i)] — the determinism contract of `flbench fuzz --seed`. *)
let derived ~seed ~iter =
  let rng = Rng.create ~seed ~stream:iter in
  let prog_seed = Rng.next rng in
  let plan_seed = Rng.next rng in
  (prog_seed, plan_seed)

let default_out_dir = "results/fuzz"

let fuzz ?(size = Program.default_size) ?condition ?(iters = 20)
    ?(budget = infinity) ?(plan_intensity = 12) ?(shrink_tries = 2)
    ?(max_shrink_evals = 400) ?(out_dir = default_out_dir) ?file ~seed
    (t : Exec.target) =
  let condition = Option.value condition ~default:t.condition in
  let deadline =
    if budget = infinity then infinity else Sync.Mono.now () +. budget
  in
  let fails prog plan =
    let rec go k =
      k < shrink_tries
      &&
      match (Exec.run ~condition t prog plan).Exec.verdict with
      | Exec.Violation _ -> true
      | Exec.Pass -> go (k + 1)
    in
    go 0
  in
  let total_ops = ref 0 and fsc = ref 0 in
  let rec loop i =
    if i >= iters || Sync.Mono.now () > deadline then None
    else begin
      let prog_seed, plan_seed = derived ~seed ~iter:i in
      let prog = Program.generate ~size t.Exec.kind ~seed:prog_seed in
      let plan =
        Plan.generate ~kills:t.Exec.kill_plan ~intensity:plan_intensity
          ~seed:plan_seed ()
      in
      let out = Exec.run ~condition t prog plan in
      total_ops := !total_ops + out.Exec.ops;
      if out.Exec.fsc_witness then incr fsc;
      match out.Exec.verdict with
      | Exec.Pass -> loop (i + 1)
      | Exec.Violation msg -> Some (i, prog, plan, msg)
    end
  in
  match loop 0 with
  | None ->
      {
        target = t.Exec.name;
        condition;
        iters;
        total_ops = !total_ops;
        violations = 0;
        fsc_witnesses = !fsc;
        repro_path = None;
        shrunk_ops = None;
        shrunk_plan = None;
        first_failure = None;
      }
  | Some (i, prog, plan, msg) ->
      let prog, plan, _stats =
        Shrink.minimize ~fails ~max_evals:max_shrink_evals prog plan
      in
      let file =
        match file with
        | Some f -> f
        | None -> string_of_int seed ^ ".repro"
      in
      let path = Filename.concat out_dir file in
      Repro.save ~path
        { Repro.target = t.Exec.name; condition; seed; program = prog; plan };
      {
        target = t.Exec.name;
        condition;
        iters = i + 1;
        total_ops = !total_ops;
        violations = 1;
        fsc_witnesses = !fsc;
        repro_path = Some path;
        shrunk_ops = Some (Program.recorded_ops prog);
        shrunk_plan = Some (List.length plan);
        first_failure = Some msg;
      }

let replay path =
  let r = Repro.load path in
  let t = Exec.find r.Repro.target in
  let out = Exec.run ~condition:r.Repro.condition t r.Repro.program r.Repro.plan in
  (r, out)
