(** Mega-history fuzz mode: streaming-checked conformance at scale.

    Ordinary fuzz targets are judged by the exact segmented checker and
    therefore live under the 62-op-per-segment bound. A {e mega} target
    runs one uncapped single-phase program (100k+ recorded operations)
    against a registry stack or queue and certifies the merged history
    with the {!Lin.Stream} order-respecting certificates — histories no
    reachable-state search could ever decide.

    Because real implementations essentially never fail, the negative
    path is {e seeded corruption}: a target of the form
    [mega/queue/strong@0x2a] records the history and then corrupts it
    deterministically (swapping the values of two provably-ordered
    matched remove operations, or retargeting a remove at a value never
    added), which the monitor must reject. The corruption, the violating
    index, and — for single-threaded programs — the entire history are
    pure functions of the repro contents, so a saved [.repro] replays to
    the same verdict {e and the same violating index}. *)

type target = {
  family : Program.kind;  (** [Stack] or [Queue] only *)
  impl : string;  (** registry implementation name, e.g. ["strong"] *)
  corrupt : int option;  (** corruption seed; [None] = honest run *)
}

val target_of_string : string -> target
(** Parse ["mega/<stack|queue>/<impl>"], optionally suffixed
    ["@<seed>"] (decimal or [0x] hex) for seeded corruption. Raises
    [Invalid_argument] on anything else (including non-mega names). *)

val target_to_string : target -> string

val is_mega_name : string -> bool
(** Does the name start with ["mega/"]? (Cheap dispatch predicate; the
    full parse can still reject it.) *)

type outcome = { verdict : Lin.Stream.verdict; ops : int }

val run :
  ?condition:Lin.Order.condition -> target -> Program.t -> Plan.t -> outcome
(** Execute and judge one program. [condition] defaults to the
    implementation's claimed condition and must be [Strong] or [Weak]
    (the certificate conditions — anything else raises
    [Invalid_argument], as do kill plans and non-stack/queue kinds). *)

type report = {
  target : string;
  condition : Lin.Order.condition;
  iters : int;
  total_ops : int;
  violating_index : int option;
      (** feed index reported by the monitor for the shrunk repro *)
  repro_path : string option;
  shrunk_ops : int option;
  first_failure : string option;
}

val fuzz :
  ?threads:int ->
  ?steps:int ->
  ?condition:Lin.Order.condition ->
  ?iters:int ->
  ?plan_intensity:int ->
  ?shrink_tries:int ->
  ?max_shrink_evals:int ->
  ?out_dir:string ->
  ?file:string ->
  seed:int ->
  target ->
  report
(** Campaign loop in the style of {!Driver.fuzz}: iteration [i]'s
    program and plan seeds derive from [(seed, i)]; the first rejection
    is shrunk with the twin {!Shrink.minimize} (a candidate {e fails}
    when the streaming monitor still rejects its corrupted history) and
    saved as a [.repro] whose [target] line round-trips the corruption
    seed. [steps] (default 2000) is per thread. *)

val replay : string -> Repro.t * outcome
(** Load a mega [.repro] and re-execute its exact program and plan —
    corruption included — under its recorded condition. *)
