(** Reusable sense-reversing barrier for coordinating benchmark domains.

    All participating domains call [wait]; none proceeds until every one of
    the [parties] has arrived. The barrier resets itself, so the same value
    can synchronize successive phases. *)

type t

val create : int -> t
(** [create parties] makes a barrier for [parties] domains.
    Raises [Invalid_argument] if [parties <= 0]. *)

val parties : t -> int

val wait : t -> unit
(** Block (spin with yields) until all parties have called [wait] for the
    current phase. *)
