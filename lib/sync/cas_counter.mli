(** Striped event counter for low-overhead CAS accounting.

    The lock-free structures count every CAS attempt so benchmarks can
    reproduce the paper's observation (§5.2) that the weak-FL queue's
    running-time spike correlates with the number of CAS operations per
    high-level operation. Striping by domain id keeps the counter off the
    hot structures' contended cache lines. *)

type t

val create : unit -> t

val incr : t -> unit
(** Count one event, attributed to the calling domain's stripe. *)

val add : t -> int -> unit
(** Count [n] events at once. *)

val total : t -> int
(** Sum across all stripes. Not atomic with respect to concurrent [incr];
    intended to be read when the counted activity has quiesced. *)

val reset : t -> unit
(** Zero all stripes. *)
