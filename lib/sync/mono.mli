(** Monotonic time for deadlines and measurement.

    Bounded waits ([Future.await_for], [Spinlock.try_acquire_for], …)
    used to compute deadlines from [Unix.gettimeofday]; a wall-clock
    step (NTP slew, manual adjustment, suspend/resume) could then fire a
    timeout instantly or postpone it for hours. This module reads
    [CLOCK_MONOTONIC], which only ever moves forward at one second per
    second, so [now () +. seconds] is a deadline that means what it
    says. The absolute value is meaningless (typically time since boot);
    only differences are. *)

val now_ns : unit -> int64
(** Monotonic time in nanoseconds. Allocation-free. *)

val now_ns_int : unit -> int
(** [now_ns] truncated to an OCaml int (63 bits: ~146 years of uptime).
    Unlike the [int64] reading — whose box is only elided under flambda —
    this never allocates on any compiler, which is what the obs flight
    recorder's record path needs. *)

val now : unit -> float
(** Monotonic time in seconds, for deadline arithmetic alongside
    fractional-second timeouts. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [now () -. t0]. *)
