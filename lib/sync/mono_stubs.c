/* Monotonic clock for bounded waits: CLOCK_MONOTONIC via clock_gettime,
   returned as nanoseconds in an int64. Exposed unboxed + noalloc so a
   deadline check inside a spin loop costs a C call and nothing else. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t flds_mono_now_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return 0; /* cannot happen on a supported kernel; 0 keeps waits finite */
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

value flds_mono_now_byte(value unit)
{
  return caml_copy_int64(flds_mono_now_unboxed(unit));
}

/* Same clock truncated to an OCaml int (63 bits of nanoseconds: ~146
   years of uptime). The int64 variant's box is only elided under
   flambda; the obs flight recorder stamps events on every hot-path
   call, so it needs a reading that never allocates on any compiler. */
intnat flds_mono_now_int_unboxed(value unit)
{
  return (intnat)flds_mono_now_unboxed(unit);
}

value flds_mono_now_int_byte(value unit)
{
  return Val_long(flds_mono_now_int_unboxed(unit));
}
