type t = { locked : bool Atomic.t }

(* The lock word is the definition of a contended cell: pad it so CAS
   storms on one lock never invalidate a neighbouring allocation. *)
let create () = { locked = Padded.atomic false }

let try_acquire t =
  (* Test before test-and-set to avoid bouncing the cache line. *)
  (not (Atomic.get t.locked)) && Atomic.compare_and_set t.locked false true

let acquire t =
  Faults.point "spinlock.acquire";
  let b = Backoff.create () in
  let rec loop () =
    if not (try_acquire t) then begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let acquire_until t stop =
  Faults.point "spinlock.acquire";
  let b = Backoff.create () in
  let rec loop () =
    if try_acquire t then true
    else if stop () then false
    else begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let try_acquire_for t ~seconds =
  Faults.point "spinlock.acquire";
  if try_acquire t then true
  else begin
    let deadline = Mono.now () +. seconds in
    let b = Backoff.create () in
    let rec loop () =
      if try_acquire t then true
      else if Mono.now () >= deadline then false
      else begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()
  end

let release t =
  if not (Atomic.get t.locked) then
    invalid_arg "Spinlock.release: lock is not held";
  Atomic.set t.locked false

let is_locked t = Atomic.get t.locked

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
