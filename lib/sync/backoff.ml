type t = {
  min_wait : int;
  max_wait : int;
  budget : int; (* rounds per streak before [give_up]; max_int = none *)
  mutable window : int;
  mutable seed : int;
  mutable rounds : int;
  mutable yields : int;
}

(* Number of backoff rounds after which we start sleeping instead of pure
   spinning. On a machine with fewer cores than runnable domains, the domain
   we are waiting for may be descheduled; sleeping hands it the CPU. *)
let yield_threshold = 4

let create ?(min_wait = 16) ?(max_wait = 4096) ?budget () =
  if min_wait <= 0 then invalid_arg "Backoff.create: min_wait must be positive";
  if max_wait < min_wait then
    invalid_arg "Backoff.create: max_wait must be >= min_wait";
  let budget =
    match budget with
    | None -> max_int
    | Some b ->
        if b <= 0 then invalid_arg "Backoff.create: budget must be positive";
        b
  in
  {
    min_wait;
    max_wait;
    budget;
    window = min_wait;
    seed = (Domain.self () :> int) + 0x9e3779b9;
    rounds = 0;
    yields = 0;
  }

(* Cheap xorshift; quality is irrelevant, we only need to decorrelate the
   spin lengths of competing domains. *)
let next_rand t =
  let s = t.seed in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  t.seed <- s;
  s land max_int

let once t =
  Faults.point "backoff.once";
  let limit = 1 + (next_rand t mod t.window) in
  for _ = 1 to limit do
    Domain.cpu_relax ()
  done;
  t.rounds <- t.rounds + 1;
  if t.rounds > yield_threshold then begin
    t.yields <- t.yields + 1;
    Unix.sleepf 1e-6
  end;
  if t.window < t.max_wait then t.window <- min t.max_wait (t.window * 2)

let reset t =
  t.window <- t.min_wait;
  t.rounds <- 0

let current_window t = t.window
let rounds t = t.rounds
let yields t = t.yields
let give_up t = t.rounds >= t.budget
