external now_ns : unit -> (int64[@unboxed])
  = "flds_mono_now_byte" "flds_mono_now_unboxed"
[@@noalloc]

external now_ns_int : unit -> (int[@untagged])
  = "flds_mono_now_int_byte" "flds_mono_now_int_unboxed"
[@@noalloc]

let now () = Int64.to_float (now_ns ()) *. 1e-9

let elapsed_since t0 = now () -. t0
