(** Cache-line padding for contended atomics.

    OCaml 5.1 allocates an ['a Atomic.t] as an ordinary one-word block, so
    two atomics allocated close together routinely share a cache line and
    every CAS on one invalidates the other on every core — classic false
    sharing. The paper's C++ prototype pads its contended fields; this
    module is the OCaml equivalent: a value is re-allocated into a block
    whose size is rounded up to a full cache line, so no two padded blocks
    ever share a line (the [multicore-magic] idiom; OCaml ≥ 5.2 has
    [Atomic.make_contended] built in, which this emulates on 5.1).

    Padding trades memory for isolation: a padded atomic occupies
    {!word_count} words instead of 2. Use it for long-lived, contended
    cells (structure heads, locks, counters, combiner state), not for
    bulk data. *)

val word_count : int
(** Words per padded block: 128 bytes on 64-bit — one cache line plus the
    adjacent line fetched by the spatial prefetcher on current x86. *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded v] returns a shallow copy of the heap block [v] whose
    block size is rounded up to {!word_count} words; immediates and
    already-large blocks are returned unchanged. The extra words are
    invisible to pattern matching, equality and the GC (they hold unit). *)

val atomic : 'a -> 'a Atomic.t
(** [atomic v] is [Atomic.make v] in its own cache line. *)

val atomic_array : int -> 'a -> 'a Atomic.t array
(** [atomic_array n v]: [n] independent padded atomics — the striping
    building block (the array itself is ordinary; the cells don't share
    lines with each other or with it). *)

(** A plain (non-atomic) int array whose logical slots each live on their
    own cache line — for single-writer striping, e.g. per-domain
    statistics or PRNG states, where a torn or lost update is benign but
    false sharing is not. *)
module Int_array : sig
  type t

  val make : int -> t
  (** [make n] is [n] zero-initialised padded slots. *)

  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val add : t -> int -> int -> unit
  val sum : t -> int
end
