(* 128 bytes = 16 words on 64-bit: one destination line plus the adjacent
   line pulled in by the spatial prefetcher. *)
let word_count = 128 / (Sys.word_size / 8)

(* The multicore-magic idiom: re-allocate the block with its size rounded
   up to a whole cache line. [Obj.new_block] initialises every field to
   the unit value, so the padding words are always valid for the GC; the
   runtime never confuses logical size with block size for records,
   atomics or arrays of pointers. Blocks with unboxed layouts
   (custom/float/bytes) and immediates are returned unchanged — padding
   them would change their meaning. *)
let copy_as_padded (type a) (v : a) : a =
  let r = Obj.repr v in
  if
    Obj.is_block r
    && Obj.tag r < Obj.no_scan_tag
    && Obj.tag r <> Obj.double_array_tag
    && Obj.size r < word_count
  then begin
    let padded = Obj.new_block (Obj.tag r) word_count in
    for i = 0 to Obj.size r - 1 do
      Obj.set_field padded i (Obj.field r i)
    done;
    (Obj.magic padded : a)
  end
  else v

let atomic v = copy_as_padded (Atomic.make v)

let atomic_array n v = Array.init n (fun _ -> atomic v)

module Int_array = struct
  (* One logical slot per cache line of a flat int array (ints are
     unboxed, so striding by [word_count] entries strides by exactly one
     padded line). *)
  type t = int array

  let make n = Array.make (n * word_count) 0
  let length a = Array.length a / word_count
  let get a i = Array.unsafe_get a (i * word_count)
  let set a i v = Array.unsafe_set a (i * word_count) v
  let add a i d = Array.unsafe_set a (i * word_count) (get a i + d)

  let sum a =
    let acc = ref 0 in
    for i = 0 to length a - 1 do
      acc := !acc + get a i
    done;
    !acc
end
