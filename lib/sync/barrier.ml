type t = {
  parties : int;
  remaining : int Atomic.t;
  sense : bool Atomic.t; (* flips when a phase completes *)
}

let create parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { parties; remaining = Atomic.make parties; sense = Atomic.make false }

let parties t = t.parties

let wait t =
  let my_sense = Atomic.get t.sense in
  if Atomic.fetch_and_add t.remaining (-1) = 1 then begin
    (* Last arrival: reset the count, then release everyone by flipping
       the sense. Order matters: the count must be ready for the next
       phase before anyone observes the flip. *)
    Atomic.set t.remaining t.parties;
    Atomic.set t.sense (not my_sense)
  end
  else begin
    let b = Backoff.create () in
    while Atomic.get t.sense = my_sense do
      Backoff.once b
    done
  end
