(** Test-and-test-and-set spin lock with exponential backoff.

    Used by the strong-FL engine to protect evaluation of pending
    operations (Kogan & Herlihy §4). Not reentrant. Safe to share across
    domains. *)

type t

val create : unit -> t

val try_acquire : t -> bool
(** Attempt to take the lock without waiting; [true] on success. *)

val acquire : t -> unit
(** Take the lock, spinning with backoff until available. *)

val acquire_until : t -> (unit -> bool) -> bool
(** [acquire_until l stop] spins to take the lock, but polls [stop] between
    attempts and abandons the wait when it returns [true]. Returns [true]
    iff the lock was acquired (in which case the caller must release it).
    This implements the strong-FL evaluation wait: "if T fails to acquire
    the lock, it waits until the lock becomes available again, checking
    periodically that F is still pending". *)

val try_acquire_for : t -> seconds:float -> bool
(** [try_acquire_for l ~seconds] spins to take the lock for at most
    [seconds] of monotonic time ([Mono.now]), then gives up. Returns [true] iff the
    lock was acquired (in which case the caller must release it). The
    bounded-wait counterpart of [acquire] for callers that must degrade
    gracefully when the holder has stalled. *)

val release : t -> unit
(** Release the lock. Raises [Invalid_argument] if the lock is not held. *)

val is_locked : t -> bool
(** Current state snapshot (for tests and diagnostics). *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock l f] runs [f] holding [l], releasing on exception. *)
