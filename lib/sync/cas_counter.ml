(* One atomic per stripe, each stripe on its own cache line: a CAS
   counter is bumped on every attempt of every domain, so unpadded
   stripes would false-share and the act of measuring contention would
   create it. OCaml domain ids grow monotonically over the program's
   lifetime, so we hash them into a fixed number of stripes. *)

let stripes = 16

type t = { cells : int Atomic.t array }

let create () = { cells = Padded.atomic_array stripes 0 }

let stripe_of_self () = (Domain.self () :> int) land (stripes - 1)

let incr t = Atomic.incr t.cells.(stripe_of_self ())
let add t n = ignore (Atomic.fetch_and_add t.cells.(stripe_of_self ()) n)

let total t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells
let reset t = Array.iter (fun c -> Atomic.set c 0) t.cells
