(** Truncated exponential backoff for contended atomic retry loops.

    Each [once] call spins for a pseudo-random number of iterations drawn
    from a window that doubles (up to a ceiling) on every call. On a
    single-core host a pure spin can starve the lock holder, so past a
    configurable threshold [once] also yields the processor with a short
    sleep, letting the holder run.

    A value of type [t] is owned by one domain and must not be shared. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] returns a fresh backoff in its initial (smallest) window.
    [min_wait] and [max_wait] bound the spin-iteration window; defaults are
    [16] and [4096]. Raises [Invalid_argument] if
    [min_wait <= 0 || max_wait < min_wait]. *)

val once : t -> unit
(** Spin (and possibly yield) once, then widen the window. *)

val reset : t -> unit
(** Shrink the window back to [min_wait]; call after a successful CAS. *)

val current_window : t -> int
(** Current window size in spin iterations (for tests and diagnostics). *)
