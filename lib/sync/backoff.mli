(** Truncated exponential backoff for contended atomic retry loops.

    Each [once] call spins for a pseudo-random number of iterations drawn
    from a window that doubles (up to a ceiling) on every call. On a
    single-core host a pure spin can starve the lock holder, so past a
    configurable threshold [once] also yields the processor with a short
    sleep, letting the holder run.

    A backoff may carry a {e spin budget}: a bound on the rounds spent in
    one waiting streak. The backoff never blocks the caller by itself —
    [once] keeps working past the budget — but {!give_up} turns true, and
    wait loops that support graceful degradation (combiner takeover,
    timeouts) poll it to stop spinning on a helper that is never coming
    back. [reset] starts a new streak.

    A value of type [t] is owned by one domain and must not be shared. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> ?budget:int -> unit -> t
(** [create ()] returns a fresh backoff in its initial (smallest) window.
    [min_wait] and [max_wait] bound the spin-iteration window; defaults are
    [16] and [4096]. [budget], if given, is the number of rounds per
    streak after which {!give_up} turns true; by default there is no
    budget and {!give_up} is always false. Raises [Invalid_argument] if
    [min_wait <= 0 || max_wait < min_wait || budget <= 0]. *)

val once : t -> unit
(** Spin (and possibly yield) once, then widen the window. *)

val reset : t -> unit
(** Shrink the window back to [min_wait] and start a new streak
    (zeroing {!rounds}); call after a successful CAS or any observed
    progress. *)

val give_up : t -> bool
(** True when this streak has used at least its [budget] rounds; always
    false for budget-less backoffs. *)

val rounds : t -> int
(** Rounds spent in the current streak. *)

val yields : t -> int
(** Total yield-sleeps performed over the backoff's lifetime (rounds past
    the single-core yield threshold; for tests and diagnostics). *)

val current_window : t -> int
(** Current window size in spin iterations (for tests and diagnostics). *)
