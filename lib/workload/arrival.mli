(** Arrival-process pacing.

    Two modes. The {e closed-loop} pacer ([t]/[pacer]/[tick]) gates an
    issue loop: steady back-to-back issue, or bursts of [burst]
    operations separated by [pause_ns] idle gaps. The adapt benchmark
    sweeps both regimes; bursty arrivals are the stress case for an
    online controller.

    The {e open-loop} schedule ([process]/[schedule]/[next_arrival_ns])
    is the service layer's generator: it stamps every request with its
    {e intended} arrival time, independent of how fast the system
    absorbs requests. When the system falls behind, the generator does
    not slow down — requests queue, and their sojourn clocks keep
    running from the intended stamp. That is what makes latency
    recorded against these stamps coordinated-omission-safe.

    All waits go through a yielding [Sync.Backoff] (never a raw spin),
    and no rate, burst size or gap — including burst 1, a zero gap, and
    arbitrarily high rates — can divide by zero or hang. *)

type t = Steady | Bursty of { burst : int; pause_ns : int }

val to_string : t -> string

type pacer
(** Per-worker state; one per worker thread, never shared. *)

val pacer : t -> pacer
(** Raises [Invalid_argument] if [burst < 1] or [pause_ns < 0]. *)

val tick : pacer -> unit
(** Call once per issued operation; waits out the idle gap when a burst
    ends. [Steady] ticks, zero gaps, and bursts of 1 with no gap are
    free. *)

(** {2 Open-loop arrival processes} *)

type process =
  | Periodic of { rate : float }  (** deterministic interarrival gaps *)
  | Poisson of { rate : float }
      (** exponential interarrival gaps — memoryless open-loop traffic *)
  | Burst of { rate : float; burst : int }
      (** [burst] coincident arrivals, then an idle gap sized to keep
          the long-run rate at [rate] *)

val process_to_string : process -> string

val validate : process -> unit
(** Raises [Invalid_argument] on a non-positive or non-finite rate, or
    [burst < 1]. [schedule] validates implicitly. *)

type schedule
(** Per-worker generator state; one per worker thread, never shared. *)

val schedule : ?start_ns:int -> process -> rng:Rng.t -> schedule
(** [schedule p ~rng] starts the process at [start_ns] (default: now on
    the monotonic clock). Raises like {!validate}. *)

val next_arrival_ns : schedule -> int
(** Intended arrival stamp (monotonic ns) of the next request;
    monotonically nondecreasing. Very high rates saturate to zero gaps
    — every arrival carries the same stamp — rather than dividing by
    zero or going negative. *)

val wait_until : int -> unit
(** Backoff-wait (yielding past the spin threshold) until the monotonic
    clock reaches the given stamp; returns immediately when the stamp
    is already past — the open-loop generator is behind and must issue,
    never skip. *)
