(** Arrival-process pacing: steady back-to-back issue, or bursts of
    [burst] operations separated by [pause_ns] idle gaps (spun, not
    slept — scheduler granularity would swamp microsecond gaps). The
    adapt benchmark sweeps both regimes; bursty arrivals are the
    stress case for an online controller, whose tuned-for contention
    level keeps vanishing and returning. *)

type t = Steady | Bursty of { burst : int; pause_ns : int }

val to_string : t -> string

type pacer
(** Per-worker state; one per worker thread, never shared. *)

val pacer : t -> pacer

val tick : pacer -> unit
(** Call once per issued operation; spins through the idle gap when a
    burst ends. [Steady] ticks are free. *)
