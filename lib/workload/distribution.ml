type stack_op = Push of int | Pop
type queue_op = Enq of int | Deq
type list_op = Insert of int | Remove of int | Contains of int

let stack_op rng = if Rng.bool rng then Push (Rng.below rng 1_000_000) else Pop

let queue_op rng = if Rng.bool rng then Enq (Rng.below rng 1_000_000) else Deq

let default_key_range = 10_000

let list_op ?(key_range = default_key_range) rng =
  let key = Rng.below rng key_range in
  match Rng.below rng 10 with
  | 0 | 1 -> Insert key
  | 2 | 3 -> Remove key
  | _ -> Contains key

let initial_keys ?(key_range = default_key_range) ~seed () =
  let rng = Rng.create ~seed ~stream:0xf111 in
  let target = key_range / 2 in
  let present = Hashtbl.create target in
  let rec loop acc n =
    if n = target then acc
    else
      let k = Rng.below rng key_range in
      if Hashtbl.mem present k then loop acc n
      else begin
        Hashtbl.add present k ();
        loop (k :: acc) (n + 1)
      end
  in
  loop [] 0

type zipf = { cumulative : float array }

let zipf ?(exponent = 1.0) ~n () =
  if n <= 0 then invalid_arg "Distribution.zipf: n must be positive";
  if exponent < 0.0 then
    invalid_arg "Distribution.zipf: exponent must be non-negative";
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (k + 1) ** exponent));
    cumulative.(k) <- !total
  done;
  Array.iteri (fun i c -> cumulative.(i) <- c /. !total) cumulative;
  { cumulative }

let zipf_draw z rng =
  let u = Rng.float rng in
  (* Smallest index whose cumulative weight reaches u. *)
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if z.cumulative.(mid) < u then bisect (mid + 1) hi else bisect lo mid
  in
  bisect 0 (Array.length z.cumulative - 1)

let list_op_skewed z rng =
  let key = zipf_draw z rng in
  match Rng.below rng 10 with
  | 0 | 1 -> Insert key
  | 2 | 3 -> Remove key
  | _ -> Contains key
