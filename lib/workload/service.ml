(* The open-loop service layer: a session model (job queue + session
   store, both FL structures) driven by open-loop arrival schedules and
   guarded by the Overload admission controller. See service.mli.

   Latency discipline: every request is stamped with its *intended*
   arrival time drawn from the Arrival schedule before any waiting or
   queueing happens, and its sojourn is recorded — at the moment its
   session-store future is forced — against that stamp. A generator
   that falls behind therefore charges the backlog to the system, not
   to the next request's clock: coordinated-omission-safe tails. *)

module Key = struct
  type t = int

  let compare = Int.compare
  let hash k = Hashtbl.hash k
end

module SM = Fl.Shard_map.Make (Key)
module WM = Fl.Weak_map.Make (Key)
module WQ = Fl.Weak_queue

type backend = Central | Sharded

let backend_name = function Central -> "central" | Sharded -> "sharded"

type config = {
  workers : int;
  requests_per_worker : int;
  process : Arrival.process;
  backend : backend;
  slack : int;
  buckets : int;
  lease_s : float;
  grant_timeout_s : float;
  key_range : int;
  seed : int;
  retry_attempts : int;
  queue_drain : int; (* dequeue this many jobs every queue_drain requests *)
  overload : Overload.config;
  epoch_s : float;
}

let default_config =
  {
    workers = 2;
    requests_per_worker = 10_000;
    process = Arrival.Poisson { rate = 50_000.0 };
    backend = Sharded;
    slack = 16;
    buckets = 8;
    (* A latency-sensitive service wants short leases: a quiet bucket
       owner may stall another worker's op for up to one lease, so the
       store default (50 ms) would put lease transfers straight into the
       sojourn tail. *)
    lease_s = 0.005;
    grant_timeout_s = 0.0005;
    key_range = 1024;
    seed = 2014;
    retry_attempts = 3;
    queue_drain = 16;
    overload = Overload.default;
    epoch_s = 0.002;
  }

type result = {
  offered : int;
  admitted : int;
  shed : int;
  completed : int;
  failed : int; (* admitted ops whose future was cancelled/poisoned *)
  degraded_writes : int;
  retries : int; (* resubmissions the bounded-retry path attempted *)
  max_stage : Overload.stage;
  final_stage : Overload.stage;
  escalations : int;
  recoveries : int;
  controller_epochs : int;
  sojourn : Obs.Histogram.s;
  measurement : Runner.measurement;
}

let sojourn_p result p = Obs.Histogram.percentile_value result.sojourn p
let shed_rate r =
  if r.offered = 0 then 0.0
  else float_of_int r.shed /. float_of_int r.offered

(* Per-repeat shared context. *)
type ctx = {
  queue : int WQ.t;
  smap : int SM.t option;
  wmap : int WM.t option;
}

(* One session-store view bound to a worker's handle. *)
type session = {
  s_insert : int -> int -> bool Futures.Future.t;
  s_find : int -> int option Futures.Future.t;
  s_remove : int -> int option Futures.Future.t;
  s_flush : unit -> unit;
  s_abandon : unit -> int;
}

let session_of ctx =
  match (ctx.smap, ctx.wmap) with
  | Some m, _ ->
      let h = SM.handle m in
      {
        s_insert = (fun k v -> SM.insert h k v);
        s_find = (fun k -> SM.find h k);
        s_remove = (fun k -> SM.remove h k);
        s_flush = (fun () -> SM.flush h);
        s_abandon = (fun () -> SM.abandon h);
      }
  | None, Some m ->
      let h = WM.handle m in
      {
        s_insert = (fun k v -> WM.insert h k v);
        s_find = (fun k -> WM.find h k);
        s_remove = (fun k -> WM.remove h k);
        s_flush = (fun () -> WM.flush h);
        s_abandon = (fun () -> WM.abandon h);
      }
  | None, None -> assert false

type op = Read of int | Write of int | Evict of int

(* Job-queue tickets must be globally unique for the conformance
   monitor's distinct-value certificates: epoch (bumped once per
   measured repeat) over worker index over request number. *)
let ticket_epoch = Atomic.make 0

(* 60% reads / 30% writes / 10% removes over the session keyspace. *)
let pick_op rng ~key_range =
  let k = Rng.below rng key_range in
  let d = Rng.below rng 10 in
  if d < 6 then Read k else if d < 9 then Write k else Evict k

let run ?plan ?chaos ?watchdog ?(repeats = 1) (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Service.run: workers must be >= 1";
  if cfg.requests_per_worker < 1 then
    invalid_arg "Service.run: requests_per_worker must be >= 1";
  if cfg.slack < 1 then invalid_arg "Service.run: slack must be >= 1";
  if cfg.lease_s <= 0.0 || cfg.grant_timeout_s <= 0.0 then
    invalid_arg "Service.run: lease_s and grant_timeout_s must be > 0";
  if cfg.key_range < 1 then invalid_arg "Service.run: key_range must be >= 1";
  if cfg.retry_attempts < 1 then
    invalid_arg "Service.run: retry_attempts must be >= 1";
  if cfg.queue_drain < 1 then invalid_arg "Service.run: queue_drain must be >= 1";
  Arrival.validate cfg.process;
  let ov = Overload.create ~cfg:cfg.overload ~epoch:cfg.epoch_s () in
  let sojourn = Obs.Histogram.create () in
  let admitted = Atomic.make 0 in
  let shed = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let degraded_writes = Atomic.make 0 in
  let retries = Atomic.make 0 in
  let max_stage = Atomic.make 0 in
  let bump_stage () =
    let s = Overload.stage_index (Overload.stage ov) in
    let rec bump () =
      let cur = Atomic.get max_stage in
      if s > cur && not (Atomic.compare_and_set max_stage cur s) then bump ()
    in
    bump ()
  in
  let setup () =
    Atomic.incr ticket_epoch;
    match cfg.backend with
    | Sharded ->
        {
          queue = WQ.create ();
          smap =
            Some
              (SM.create ~buckets:cfg.buckets ~lease:cfg.lease_s
                 ~grant_timeout:cfg.grant_timeout_s ());
          wmap = None;
        }
    | Central ->
        { queue = WQ.create (); smap = None; wmap = Some (WM.create ()) }
  in
  let worker ctx ~thread ~ops =
    let rng = Rng.create ~seed:cfg.seed ~stream:thread in
    let sched = Arrival.schedule cfg.process ~rng in
    let qh = WQ.handle ctx.queue in
    let sess = session_of ctx in
    let sl = Fl.Slack.create cfg.slack in
    Overload.register_slack ov sl;
    (* Recovery: if this worker dies (chaos kill at any fault point),
       poison everything still pending in its windows so no waiter or
       teardown hangs on an op that will never be applied. *)
    Runner.set_abandon_hook (fun () ->
        let n = sess.s_abandon () + WQ.abandon qh in
        n + Fl.Slack.abandon sl);
    (* Force one admitted op's future, recording its sojourn against the
       intended arrival stamp. *)
    let note_completion ~stamp force =
      Fl.Slack.note sl (fun () ->
          match force () with
          | () ->
              let d = Sync.Mono.now_ns_int () - stamp in
              Obs.Histogram.record sojourn d;
              Obs.service_complete ~sojourn_ns:d;
              Atomic.incr completed
          | exception Futures.Future.Rejected -> ()
          | exception (Futures.Future.Cancelled | Futures.Future.Broken _) ->
              Atomic.incr failed)
    in
    (* The admission gate around one session op, as a future factory for
       the bounded-retry path. Writes are refused outright while the
       controller has degraded the store to read-only. *)
    let submit op =
      let gated mk =
        let calls = ref 0 in
        let f =
          Futures.Future.retry ~attempts:cfg.retry_attempts (fun () ->
              incr calls;
              if not (Overload.admit ov) then Futures.Future.rejected ()
              else mk ())
        in
        if !calls > 1 then ignore (Atomic.fetch_and_add retries (!calls - 1));
        f
      in
      match op with
      | Read k ->
          let f = gated (fun () -> sess.s_find k) in
          if Futures.Future.is_rejected f then None
          else Some (fun () -> ignore (Futures.Future.force f))
      | Write k ->
          let f =
            gated (fun () ->
                if Overload.writes_degraded ov then begin
                  Atomic.incr degraded_writes;
                  Futures.Future.rejected ()
                end
                else sess.s_insert k k)
          in
          if Futures.Future.is_rejected f then None
          else Some (fun () -> ignore (Futures.Future.force f))
      | Evict k ->
          let f =
            gated (fun () ->
                if Overload.writes_degraded ov then begin
                  Atomic.incr degraded_writes;
                  Futures.Future.rejected ()
                end
                else sess.s_remove k)
          in
          if Futures.Future.is_rejected f then None
          else Some (fun () -> ignore (Futures.Future.force f))
    in
    let epoch = Atomic.get ticket_epoch in
    for req = 1 to ops do
      Runner.heartbeat ();
      let stamp = Arrival.next_arrival_ns sched in
      Arrival.wait_until stamp;
      (match submit (pick_op rng ~key_range:cfg.key_range) with
      | Some force ->
          Atomic.incr admitted;
          (* Every admitted request also files a job; jobs are drained
             [queue_drain] at a time so the queue stays bounded. The job
             value is a globally-unique ticket so the conformance
             monitor can match this enqueue with its dequeue. *)
          let ticket = (epoch lsl 40) lor (thread lsl 32) lor req in
          let t0 = Obs.op_begin () in
          let jf = WQ.enqueue qh ticket in
          Fl.Slack.note sl (fun () ->
              match Futures.Future.force jf with
              | () -> Obs.op_enq ~value:ticket ~obj:0 ~t0
              | exception _ -> ());
          note_completion ~stamp force
      | None -> Atomic.incr shed);
      bump_stage ();
      if req mod cfg.queue_drain = 0 then
        for _ = 1 to cfg.queue_drain do
          let t0 = Obs.op_begin () in
          let df = WQ.dequeue qh in
          Fl.Slack.note sl (fun () ->
              match Futures.Future.force df with
              | Some v -> Obs.op_deq ~value:v ~obj:0 ~t0
              | None -> Obs.op_deq_empty ~obj:0 ~t0
              | exception _ -> ())
        done
    done;
    Fl.Slack.drain sl;
    sess.s_flush ();
    WQ.flush qh
  in
  let teardown ctx =
    (* Drain: settle every window still attached to live handles, then
       recover expired buckets until nothing is in flight, so futures of
       dead workers are poisoned, never left pending. *)
    match ctx.smap with
    | None -> ()
    | Some m ->
        let h = SM.handle m in
        let deadline = Sync.Mono.now () +. 5.0 in
        let b = Sync.Backoff.create () in
        while SM.in_flight m > 0 && Sync.Mono.now () < deadline do
          ignore (SM.recover_all h);
          Sync.Backoff.once b
        done
  in
  Overload.start ov;
  let measurement =
    Fun.protect
      ~finally:(fun () -> Overload.stop ov)
      (fun () ->
        Runner.run ~threads:cfg.workers ~repeats
          ~ops_per_thread:cfg.requests_per_worker ~setup ~worker ~teardown
          ?chaos ?plan ?watchdog ())
  in
  {
    offered = Overload.offered ov;
    admitted = Atomic.get admitted;
    shed = Atomic.get shed;
    completed = Atomic.get completed;
    failed = Atomic.get failed;
    degraded_writes = Atomic.get degraded_writes;
    retries = Atomic.get retries;
    max_stage =
      (match Atomic.get max_stage with
      | 0 -> Overload.Admit
      | 1 -> Overload.Squeeze
      | 2 -> Overload.Shed
      | _ -> Overload.Degrade);
    final_stage = Overload.stage ov;
    escalations = Overload.escalations ov;
    recoveries = Overload.recoveries ov;
    controller_epochs = Overload.epochs ov;
    sojourn = Obs.Histogram.snapshot sojourn;
    measurement;
  }
