(* The generator itself lives in [Faults.Rng] (bottom of the library
   stack) so fault schedules and workload generation share one
   deterministic source; this module is its historical home and public
   name for workload code. *)
include Faults.Rng
