(** Operation mixes for the paper's three benchmarks (§5).

    - Stacks: 50% push / 50% pop, stack initially empty.
    - Queues: 50% enq / 50% deq, queue initially empty.
    - Lists: 20% insert / 20% remove / 60% contains, keys uniform in a
      range of 10K, list pre-filled with half the range. *)

type stack_op = Push of int | Pop
type queue_op = Enq of int | Deq
type list_op = Insert of int | Remove of int | Contains of int

val default_key_range : int
(** 10_000, the paper's key range. *)

val stack_op : Rng.t -> stack_op
(** Uniform push/pop; push values are random. *)

val queue_op : Rng.t -> queue_op

val list_op : ?key_range:int -> Rng.t -> list_op
(** 20/20/60 insert/remove/contains with keys uniform below [key_range]
    (default 10_000, the paper's range). *)

val initial_keys : ?key_range:int -> seed:int -> unit -> int list
(** The paper's list initialization: distinct random keys, [key_range / 2]
    of them (half the range), deterministic in [seed]. *)

(** {2 Skewed keys (extension experiments)}

    The paper draws keys uniformly; real key popularity is usually
    skewed. A Zipf distribution lets the benchmark explore how the
    combining optimizations behave when many pending operations hit the
    same few keys. *)

type zipf

val zipf : ?exponent:float -> n:int -> unit -> zipf
(** Zipf sampler over ranks [0, n): rank k has weight 1/(k+1)^exponent
    (default exponent 1.0). Raises [Invalid_argument] if [n <= 0] or
    [exponent < 0]. O(n) table, O(log n) draws. *)

val zipf_draw : zipf -> Rng.t -> int

val list_op_skewed : zipf -> Rng.t -> list_op
(** The 20/20/60 list mix with Zipf-distributed keys. *)
