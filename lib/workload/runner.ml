type measurement = {
  threads : int;
  seconds : float;
  std_dev : float;
  throughput : float;
  cas_per_op : float;
  minor_words_per_op : float;
  killed : int;
  suppressed_failures : int;
  stall_warnings : int;
  poisoned : int;
  recovered : int;
}

type chaos = { c_seed : int; c_kill : bool; c_stall : float }

exception Killed_worker of int

let chaos ?(kill = true) ?(stall = 0.005) ~seed () =
  if stall < 0.0 then invalid_arg "Runner.chaos: stall must be non-negative";
  { c_seed = seed; c_kill = kill; c_stall = stall }

let time f =
  let t0 = Sync.Mono.now () in
  f ();
  Sync.Mono.now () -. t0

(* Per-worker lifecycle word, written once by the worker's own domain on
   the way out and read by the watchdog and the main thread. *)
let st_running = 0
let st_done = 1
let st_dead = 2

(* What a worker domain can reach through [heartbeat] and
   [set_abandon_hook]: its own beat counter and hook cell for the
   current repeat, installed in domain-local storage by the spawn
   wrapper. Outside a run the slot is empty and both calls are no-ops,
   so workloads can call them unconditionally. *)
type worker_slot = {
  beat : int Atomic.t;
  hook : (unit -> int) option Atomic.t;
}

let slot_key : worker_slot option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let heartbeat () =
  match Domain.DLS.get slot_key with
  | Some s -> Atomic.incr s.beat
  | None -> ()

let set_abandon_hook f =
  match Domain.DLS.get slot_key with
  | Some s -> Atomic.set s.hook (Some f)
  | None -> ()

(* The victim's plan for one repeat, drawn from the chaos seed: which
   thread misbehaves, after how many of its operations, and whether it
   dies there or stalls and resumes. *)
type victim_plan = Healthy | Die of int | Stall of int * float

let plan_victims ~chaos ~threads ~ops_per_thread ~rep =
  match chaos with
  | None -> Array.make threads Healthy
  | Some c ->
      let rng = Rng.create ~seed:c.c_seed ~stream:rep in
      let plans = Array.make threads Healthy in
      let victim = Rng.below rng threads in
      let cut = 1 + Rng.below rng (max 1 ops_per_thread) in
      plans.(victim) <-
        (if c.c_kill && Rng.bool rng then Die cut else Stall (cut, c.c_stall));
      plans

(* Shared recovery state for one repeat. [abandoned] is the once-flag
   per worker: whoever wins its CAS (watchdog mid-run, or the main
   thread's post-join sweep) runs the worker's abandon hook exactly
   once. *)
type recovery = {
  states : int Atomic.t array;
  beats : int Atomic.t array;
  hooks : (unit -> int) option Atomic.t array;
  abandoned : bool Atomic.t array;
  poisoned : int Atomic.t;
  recovered : int Atomic.t;
  stall_warnings : int Atomic.t;
}

let make_recovery threads =
  {
    states = Array.init threads (fun _ -> Atomic.make st_running);
    beats = Array.init threads (fun _ -> Atomic.make 0);
    hooks = Array.init threads (fun _ -> Atomic.make None);
    abandoned = Array.init threads (fun _ -> Atomic.make false);
    poisoned = Atomic.make 0;
    recovered = Atomic.make 0;
    stall_warnings = Atomic.make 0;
  }

(* Recover worker [i] if nobody has yet: run its abandon hook (poisoning
   its orphaned futures, detaching its windows) and count it. Only ever
   called for workers whose state word says Dead — a stalled worker may
   resume and must keep its live windows. *)
let try_abandon r i =
  if Atomic.compare_and_set r.abandoned.(i) false true then begin
    let n =
      match Atomic.get r.hooks.(i) with
      | Some hook ->
          let n = hook () in
          ignore (Atomic.fetch_and_add r.poisoned n);
          n
      | None -> 0
    in
    Atomic.incr r.recovered;
    (* The hook above already emitted one [future.poisoned] per orphan,
       so in a trace the poison events precede this recovery marker. *)
    Obs.worker_recovered ~worker:i ~poisoned:n
  end

(* One watchdog scan: recover dead workers, flag silent heartbeats. A
   worker is warned about only when it opted into heartbeats (beat > 0)
   and its beat did not advance over a whole interval while still
   Running — and only once per repeat. *)
let watchdog_scan r ~last_beats ~warned =
  Array.iteri
    (fun i st ->
      let s = Atomic.get st in
      if s = st_dead then try_abandon r i
      else if s = st_running then begin
        let b = Atomic.get r.beats.(i) in
        if b > 0 && b = last_beats.(i) && not warned.(i) then begin
          warned.(i) <- true;
          Atomic.incr r.stall_warnings;
          Obs.worker_stalled ~worker:i
        end;
        last_beats.(i) <- b
      end)
    r.states

let watchdog_loop r ~interval ~stop =
  let threads = Array.length r.states in
  let last_beats = Array.make threads (-1) in
  let warned = Array.make threads false in
  while not (Atomic.get stop) do
    Unix.sleepf interval;
    watchdog_scan r ~last_beats ~warned
  done

let run ~threads ~repeats ~ops_per_thread ~setup ~worker ?cas_total ?teardown
    ?chaos ?plan ?watchdog () =
  if threads <= 0 then invalid_arg "Runner.run: threads must be positive";
  if repeats <= 0 then invalid_arg "Runner.run: repeats must be positive";
  (match watchdog with
  | Some dt when dt <= 0.0 ->
      invalid_arg "Runner.run: watchdog interval must be positive"
  | _ -> ());
  let samples = Array.make repeats 0.0 in
  let cas_samples = Array.make repeats Float.nan in
  let words_samples = Array.make repeats 0.0 in
  let killed = ref 0 in
  let suppressed = ref 0 in
  let poisoned = ref 0 in
  let recovered = ref 0 in
  let stall_warnings = ref 0 in
  for rep = 0 to repeats - 1 do
    (* A scripted plan is (re)installed per repeat so its [at] indices
       count from each repeat's first hit, and uninstalled on every exit
       path — normal completion, a worker's genuine failure re-raised
       below, and watchdog-recovered deaths alike — so a failing repeat
       never leaks its fault script into the caller or the next run. *)
    (match plan with Some p -> Faults.install_plan p | None -> ());
    Fun.protect
      ~finally:(fun () ->
        match plan with Some p -> Faults.uninstall_plan p | None -> ())
    @@ fun () ->
    let ctx = setup () in
    let barrier = Sync.Barrier.create (threads + 1) in
    let cas_before = match cas_total with Some f -> f ctx | None -> 0 in
    let plans = plan_victims ~chaos ~threads ~ops_per_thread ~rep in
    let recovery = make_recovery threads in
    (* Per-domain minor-heap allocation, summed across workers.
       [Gc.minor_words] counts the calling domain only, so each worker
       measures its own delta and adds it here (words are integral). *)
    let words_acc = Atomic.make 0 in
    let spawn i =
      Domain.spawn (fun () ->
          Domain.DLS.set slot_key
            (Some { beat = recovery.beats.(i); hook = recovery.hooks.(i) });
          Sync.Barrier.wait barrier;
          let w0 = Gc.minor_words () in
          let body () =
            Fun.protect
              ~finally:(fun () ->
                let dw = int_of_float (Gc.minor_words () -. w0) in
                ignore (Atomic.fetch_and_add words_acc dw))
              (fun () ->
                match plans.(i) with
                | Healthy -> worker ctx ~thread:i ~ops:ops_per_thread
                | Die cut ->
                    (* Simulated mid-run death: the worker performs a
                       seeded prefix of its operations, then its domain
                       is lost — pending futures unforced, handles never
                       flushed. *)
                    worker ctx ~thread:i ~ops:(min cut ops_per_thread);
                    raise (Killed_worker i)
                | Stall (cut, stall) ->
                    let cut = min cut ops_per_thread in
                    worker ctx ~thread:i ~ops:cut;
                    Unix.sleepf stall;
                    worker ctx ~thread:i ~ops:(ops_per_thread - cut))
          in
          (* The state word is the watchdog's ground truth: Dead means
             this domain is unwinding and will never touch its handles
             again, so abandoning them is safe. *)
          match body () with
          | () -> Atomic.set recovery.states.(i) st_done
          | exception e ->
              Atomic.set recovery.states.(i) st_dead;
              (* Emitted from the dying domain itself, so the kill
                 timestamp precedes any recovery the watchdog performs. *)
              Obs.worker_killed ~worker:i;
              raise e)
    in
    let domains = List.init threads spawn in
    let wd_stop = Atomic.make false in
    let wd_domain =
      match watchdog with
      | Some interval ->
          Some
            (Domain.spawn (fun () ->
                 watchdog_loop recovery ~interval ~stop:wd_stop))
      | None -> None
    in
    (* Release all workers at once and time until the last finishes. Join
       every domain before acting on failures; chaos kills are expected
       and counted, the first genuine failure is re-raised (after
       teardown), and further genuine failures are counted as
       suppressed. *)
    let failure = ref None in
    let seconds =
      time (fun () ->
          Sync.Barrier.wait barrier;
          List.iter
            (fun d ->
              match Domain.join d with
              | () -> ()
              | exception Killed_worker _ -> incr killed
              | exception Faults.Killed _ ->
                  (* Scripted injection killed the worker mid-loop —
                     stronger than [Die], which lets the prefix flush:
                     here futures die pending. Expected, like [Die]. *)
                  incr killed
              | exception e ->
                  if !failure = None then failure := Some e
                  else incr suppressed)
            domains)
    in
    Atomic.set wd_stop true;
    (match wd_domain with Some d -> Domain.join d | None -> ());
    (* Post-join sweep: recover any dead worker the watchdog did not get
       to (or all of them, when no watchdog runs) before teardown reads
       the context, so orphaned futures are poisoned rather than left
       pending into the conformance checks. *)
    Array.iteri
      (fun i st -> if Atomic.get st = st_dead then try_abandon recovery i)
      recovery.states;
    poisoned := !poisoned + Atomic.get recovery.poisoned;
    recovered := !recovered + Atomic.get recovery.recovered;
    stall_warnings := !stall_warnings + Atomic.get recovery.stall_warnings;
    samples.(rep) <- seconds;
    words_samples.(rep) <-
      float_of_int (Atomic.get words_acc)
      /. float_of_int (threads * ops_per_thread);
    (match cas_total with
    | Some f ->
        let total_ops = threads * ops_per_thread in
        cas_samples.(rep) <-
          float_of_int (f ctx - cas_before) /. float_of_int total_ops
    | None -> ());
    (* Teardown must run even when a worker failed: it settles shared
       pending state, and skipping it would leak the failure into the
       next repeat's (fresh) context diagnostics. *)
    (match teardown with Some f -> f ctx | None -> ());
    match !failure with
    | Some e ->
        if !suppressed > 0 then
          Printf.eprintf
            "Runner.run: suppressed %d additional worker failure(s) behind \
             the re-raised one\n\
             %!"
            !suppressed;
        raise e
    | None -> ()
  done;
  let mean = Stats.mean samples in
  {
    threads;
    seconds = mean;
    std_dev = Stats.std_dev samples;
    throughput = float_of_int (threads * ops_per_thread) /. mean;
    cas_per_op =
      (if cas_total = None then Float.nan else Stats.mean cas_samples);
    minor_words_per_op = Stats.mean words_samples;
    killed = !killed;
    suppressed_failures = !suppressed;
    stall_warnings = !stall_warnings;
    poisoned = !poisoned;
    recovered = !recovered;
  }
