type measurement = {
  threads : int;
  seconds : float;
  std_dev : float;
  throughput : float;
  cas_per_op : float;
  minor_words_per_op : float;
  killed : int;
  suppressed_failures : int;
}

type chaos = { c_seed : int; c_kill : bool; c_stall : float }

exception Killed_worker of int

let chaos ?(kill = true) ?(stall = 0.005) ~seed () =
  if stall < 0.0 then invalid_arg "Runner.chaos: stall must be non-negative";
  { c_seed = seed; c_kill = kill; c_stall = stall }

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* The victim's plan for one repeat, drawn from the chaos seed: which
   thread misbehaves, after how many of its operations, and whether it
   dies there or stalls and resumes. *)
type victim_plan = Healthy | Die of int | Stall of int * float

let plan_victims ~chaos ~threads ~ops_per_thread ~rep =
  match chaos with
  | None -> Array.make threads Healthy
  | Some c ->
      let rng = Rng.create ~seed:c.c_seed ~stream:rep in
      let plans = Array.make threads Healthy in
      let victim = Rng.below rng threads in
      let cut = 1 + Rng.below rng (max 1 ops_per_thread) in
      plans.(victim) <-
        (if c.c_kill && Rng.bool rng then Die cut else Stall (cut, c.c_stall));
      plans

let run ~threads ~repeats ~ops_per_thread ~setup ~worker ?cas_total ?teardown
    ?chaos () =
  if threads <= 0 then invalid_arg "Runner.run: threads must be positive";
  if repeats <= 0 then invalid_arg "Runner.run: repeats must be positive";
  let samples = Array.make repeats 0.0 in
  let cas_samples = Array.make repeats Float.nan in
  let words_samples = Array.make repeats 0.0 in
  let killed = ref 0 in
  let suppressed = ref 0 in
  for rep = 0 to repeats - 1 do
    let ctx = setup () in
    let barrier = Sync.Barrier.create (threads + 1) in
    let cas_before = match cas_total with Some f -> f ctx | None -> 0 in
    let plans = plan_victims ~chaos ~threads ~ops_per_thread ~rep in
    (* Per-domain minor-heap allocation, summed across workers.
       [Gc.minor_words] counts the calling domain only, so each worker
       measures its own delta and adds it here (words are integral). *)
    let words_acc = Atomic.make 0 in
    let spawn i =
      Domain.spawn (fun () ->
          Sync.Barrier.wait barrier;
          let w0 = Gc.minor_words () in
          Fun.protect
            ~finally:(fun () ->
              let dw = int_of_float (Gc.minor_words () -. w0) in
              ignore (Atomic.fetch_and_add words_acc dw))
            (fun () ->
              match plans.(i) with
              | Healthy -> worker ctx ~thread:i ~ops:ops_per_thread
              | Die cut ->
                  (* Simulated mid-run death: the worker performs a seeded
                     prefix of its operations, then its domain is lost —
                     pending futures unforced, handles never flushed. *)
                  worker ctx ~thread:i ~ops:(min cut ops_per_thread);
                  raise (Killed_worker i)
              | Stall (cut, stall) ->
                  let cut = min cut ops_per_thread in
                  worker ctx ~thread:i ~ops:cut;
                  Unix.sleepf stall;
                  worker ctx ~thread:i ~ops:(ops_per_thread - cut)))
    in
    let domains = List.init threads spawn in
    (* Release all workers at once and time until the last finishes. Join
       every domain before acting on failures; chaos kills are expected
       and counted, the first genuine failure is re-raised (after
       teardown), and further genuine failures are counted as
       suppressed. *)
    let failure = ref None in
    let seconds =
      time (fun () ->
          Sync.Barrier.wait barrier;
          List.iter
            (fun d ->
              match Domain.join d with
              | () -> ()
              | exception Killed_worker _ -> incr killed
              | exception Faults.Killed _ ->
                  (* Scripted injection killed the worker mid-loop —
                     stronger than [Die], which lets the prefix flush:
                     here futures die pending. Expected, like [Die]. *)
                  incr killed
              | exception e ->
                  if !failure = None then failure := Some e
                  else incr suppressed)
            domains)
    in
    samples.(rep) <- seconds;
    words_samples.(rep) <-
      float_of_int (Atomic.get words_acc)
      /. float_of_int (threads * ops_per_thread);
    (match cas_total with
    | Some f ->
        let total_ops = threads * ops_per_thread in
        cas_samples.(rep) <-
          float_of_int (f ctx - cas_before) /. float_of_int total_ops
    | None -> ());
    (* Teardown must run even when a worker failed: it settles shared
       pending state, and skipping it would leak the failure into the
       next repeat's (fresh) context diagnostics. *)
    (match teardown with Some f -> f ctx | None -> ());
    match !failure with
    | Some e ->
        if !suppressed > 0 then
          Printf.eprintf
            "Runner.run: suppressed %d additional worker failure(s) behind \
             the re-raised one\n\
             %!"
            !suppressed;
        raise e
    | None -> ()
  done;
  let mean = Stats.mean samples in
  {
    threads;
    seconds = mean;
    std_dev = Stats.std_dev samples;
    throughput = float_of_int (threads * ops_per_thread) /. mean;
    cas_per_op =
      (if cas_total = None then Float.nan else Stats.mean cas_samples);
    minor_words_per_op = Stats.mean words_samples;
    killed = !killed;
    suppressed_failures = !suppressed;
  }
