type measurement = {
  threads : int;
  seconds : float;
  std_dev : float;
  throughput : float;
  cas_per_op : float;
}

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let run ~threads ~repeats ~ops_per_thread ~setup ~worker ?cas_total
    ?teardown () =
  if threads <= 0 then invalid_arg "Runner.run: threads must be positive";
  if repeats <= 0 then invalid_arg "Runner.run: repeats must be positive";
  let samples = Array.make repeats 0.0 in
  let cas_samples = Array.make repeats Float.nan in
  for rep = 0 to repeats - 1 do
    let ctx = setup () in
    let barrier = Sync.Barrier.create (threads + 1) in
    let cas_before = match cas_total with Some f -> f ctx | None -> 0 in
    let spawn i =
      Domain.spawn (fun () ->
          Sync.Barrier.wait barrier;
          worker ctx ~thread:i ~ops:ops_per_thread)
    in
    let domains = List.init threads spawn in
    (* Release all workers at once and time until the last finishes. *)
    let seconds =
      time (fun () ->
          Sync.Barrier.wait barrier;
          (* Join in order; re-raise the first worker failure, but only
             after every domain has been joined. *)
          let failure = ref None in
          List.iter
            (fun d ->
              match Domain.join d with
              | () -> ()
              | exception e -> if !failure = None then failure := Some e)
            domains;
          match !failure with Some e -> raise e | None -> ())
    in
    samples.(rep) <- seconds;
    (match cas_total with
    | Some f ->
        let total_ops = threads * ops_per_thread in
        cas_samples.(rep) <-
          float_of_int (f ctx - cas_before) /. float_of_int total_ops
    | None -> ());
    match teardown with Some f -> f ctx | None -> ()
  done;
  let mean = Stats.mean samples in
  {
    threads;
    seconds = mean;
    std_dev = Stats.std_dev samples;
    throughput = float_of_int (threads * ops_per_thread) /. mean;
    cas_per_op =
      (if cas_total = None then Float.nan else Stats.mean cas_samples);
  }
