(* The admission controller: a Tune-style epoch loop that walks the
   Admit -> Squeeze -> Shed -> Degrade ladder on hot epochs and back,
   with hysteresis, on calm ones. See overload.mli for the contract.

   Concurrency shape: [admit] is called from every worker on every
   arrival, so the decision reads two atomics (stage, shed percent) and
   draws a ticket from a striped-enough counter; all ladder bookkeeping
   (streaks, last snapshot) is owned by whoever calls [step] — the
   background domain once started, or a test driving epochs by hand —
   never both. Stage transitions publish through the atomics, so
   workers see them at their next arrival without fences. *)

type stage = Admit | Squeeze | Shed | Degrade

let stage_index = function Admit -> 0 | Squeeze -> 1 | Shed -> 2 | Degrade -> 3

let stage_of_index = function
  | 0 -> Admit
  | 1 -> Squeeze
  | 2 -> Shed
  | _ -> Degrade

let stage_name = function
  | Admit -> "admit"
  | Squeeze -> "squeeze"
  | Shed -> "shed"
  | Degrade -> "degrade"

type config = {
  min_ops : int;
  p99_budget_ns : int;
  pending_budget_ns : int;
  sojourn_budget_ns : int;
  recover_fraction : float;
  hysteresis : int;
  squeeze_slack : int;
  shed_floor : int;
  shed_ceiling : int;
}

let default =
  {
    min_ops = 32;
    p99_budget_ns = 1_000_000;
    pending_budget_ns = 10_000_000;
    sojourn_budget_ns = 50_000_000;
    recover_fraction = 0.5;
    hysteresis = 3;
    squeeze_slack = 1;
    shed_floor = 25;
    shed_ceiling = 90;
  }

type t = {
  cfg : config;
  epoch : float;
  stage : int Atomic.t; (* stage_index, read by every admit *)
  shed_pct : int Atomic.t; (* percent of arrivals refused at >= Shed *)
  ticket : int Atomic.t; (* admission lottery counter *)
  (* Registered slack windows with their registration-time bounds;
     CAS-push, never removed (windows die with their structures). *)
  slacks : (Fl.Slack.t * int) list Atomic.t;
  offered : int Atomic.t;
  sheds : int Atomic.t;
  escalations : int Atomic.t;
  recoveries : int Atomic.t;
  epochs : int Atomic.t;
  errors : int Atomic.t;
  (* Epoch bookkeeping below is owned by the [step] caller. *)
  mutable last : Obs.Metrics.snapshot;
  mutable calm_streak : int;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  mutable obs_was_enabled : bool;
}

let default_epoch = 0.005

let create ?(cfg = default) ?(epoch = default_epoch) () =
  if epoch <= 0.0 then invalid_arg "Overload.create: epoch must be > 0";
  if cfg.min_ops < 0 then invalid_arg "Overload.create: min_ops < 0";
  if cfg.p99_budget_ns < 1 || cfg.pending_budget_ns < 1
     || cfg.sojourn_budget_ns < 1
  then invalid_arg "Overload.create: budgets must be >= 1";
  if cfg.recover_fraction <= 0.0 || cfg.recover_fraction > 1.0 then
    invalid_arg "Overload.create: recover_fraction must be in (0, 1]";
  if cfg.hysteresis < 1 then invalid_arg "Overload.create: hysteresis < 1";
  if cfg.squeeze_slack < 1 then invalid_arg "Overload.create: squeeze_slack < 1";
  if
    cfg.shed_floor < 0 || cfg.shed_ceiling > 100
    || cfg.shed_floor > cfg.shed_ceiling
  then invalid_arg "Overload.create: shed percents must satisfy 0 <= floor <= ceiling <= 100";
  {
    cfg;
    epoch;
    stage = Atomic.make 0;
    shed_pct = Atomic.make 0;
    ticket = Atomic.make 0;
    slacks = Atomic.make [];
    offered = Atomic.make 0;
    sheds = Atomic.make 0;
    escalations = Atomic.make 0;
    recoveries = Atomic.make 0;
    epochs = Atomic.make 0;
    errors = Atomic.make 0;
    last = Obs.Metrics.snapshot ();
    calm_streak = 0;
    stop_flag = Atomic.make false;
    domain = None;
    obs_was_enabled = true;
  }

let stage t = stage_of_index (Atomic.get t.stage)
let shed_percent t = Atomic.get t.shed_pct
let writes_degraded t = Atomic.get t.stage >= 3
let offered t = Atomic.get t.offered
let sheds t = Atomic.get t.sheds
let escalations t = Atomic.get t.escalations
let recoveries t = Atomic.get t.recoveries
let epochs t = Atomic.get t.epochs
let errors t = Atomic.get t.errors

let squeeze_slacks t =
  List.iter
    (fun (s, _) ->
      try Fl.Slack.set_slack s t.cfg.squeeze_slack
      with _ -> Atomic.incr t.errors)
    (Atomic.get t.slacks)

let restore_slacks t =
  List.iter
    (fun (s, orig) ->
      try Fl.Slack.set_slack s orig with _ -> Atomic.incr t.errors)
    (Atomic.get t.slacks)

let register_slack t s =
  let entry = (s, Fl.Slack.slack s) in
  let rec push () =
    let cur = Atomic.get t.slacks in
    if not (Atomic.compare_and_set t.slacks cur (entry :: cur)) then push ()
  in
  push ();
  (* A worker joining a squeezed service squeezes immediately. *)
  if Atomic.get t.stage >= 1 then
    try Fl.Slack.set_slack s t.cfg.squeeze_slack
    with _ -> Atomic.incr t.errors

(* Apply the actions of a transition old -> next (one rung either way)
   and publish it. Runs on the [step] caller only. *)
let transition t ~from ~to_ =
  Atomic.set t.stage to_;
  Obs.service_stage ~from ~to_;
  (match stage_of_index to_ with
  | Admit -> restore_slacks t
  | Squeeze ->
      squeeze_slacks t;
      Atomic.set t.shed_pct 0
  | Shed -> Atomic.set t.shed_pct t.cfg.shed_floor
  | Degrade ->
      Faults.point "service.degrade";
      Atomic.set t.shed_pct t.cfg.shed_ceiling);
  if to_ > from then Atomic.incr t.escalations else Atomic.incr t.recoveries

let escalate t =
  let cur = Atomic.get t.stage in
  if cur < 3 then transition t ~from:cur ~to_:(cur + 1)
  else begin
    (* Already fully degraded: keep the shed fraction at the ceiling. *)
    Atomic.set t.shed_pct t.cfg.shed_ceiling
  end

(* A hot epoch while sitting at Shed ramps the shed fraction before the
   ladder moves on to Degrade: refuse more traffic first, refuse writes
   only if that still is not enough. Ramping counts as the epoch's
   response, so the caller escalates only when the ramp is exhausted. *)
let ramp_or_escalate t =
  if Atomic.get t.stage = 2 then begin
    let cur = Atomic.get t.shed_pct in
    let next = min t.cfg.shed_ceiling (max 1 (2 * cur)) in
    if next > cur then Atomic.set t.shed_pct next else escalate t
  end
  else escalate t

let de_escalate t =
  let cur = Atomic.get t.stage in
  if cur > 0 then transition t ~from:cur ~to_:(cur - 1)

let step t =
  let now = Obs.Metrics.snapshot () in
  let d = Obs.Metrics.diff now t.last in
  t.last <- now;
  let o = Tune.Policy.observe d in
  let pend_p99 = Obs.Metrics.pendingness_p99 d in
  (* Sojourn is the open-loop signal: when the arrival generator falls
     behind, every individual force can still be fast — only the
     intended-arrival→forced sojourn shows the backlog. It is unsampled,
     so it also contributes to the idle gate. *)
  let sojourn_p99 = Obs.Metrics.service_p99 d in
  let completions = Obs.Histogram.count d.Obs.Metrics.service_ns in
  let busy =
    o.Tune.Policy.ops >= t.cfg.min_ops || completions >= t.cfg.min_ops
  in
  let under frac signal budget =
    float_of_int signal <= frac *. float_of_int budget
  in
  let hot =
    busy
    && (o.Tune.Policy.force_p99_ns > t.cfg.p99_budget_ns
       || pend_p99 > t.cfg.pending_budget_ns
       || sojourn_p99 > t.cfg.sojourn_budget_ns)
  in
  let calm =
    (not busy)
    || (under t.cfg.recover_fraction o.Tune.Policy.force_p99_ns
          t.cfg.p99_budget_ns
       && under t.cfg.recover_fraction pend_p99 t.cfg.pending_budget_ns
       && under t.cfg.recover_fraction sojourn_p99 t.cfg.sojourn_budget_ns)
  in
  if hot then begin
    t.calm_streak <- 0;
    ramp_or_escalate t
  end
  else if calm then begin
    t.calm_streak <- t.calm_streak + 1;
    if t.calm_streak >= t.cfg.hysteresis then begin
      t.calm_streak <- 0;
      de_escalate t
    end
  end
  else t.calm_streak <- 0;
  Atomic.incr t.epochs

let force_stage t s =
  let target = stage_index s in
  let rec walk () =
    let cur = Atomic.get t.stage in
    if cur < target then begin
      transition t ~from:cur ~to_:(cur + 1);
      walk ()
    end
    else if cur > target then begin
      transition t ~from:cur ~to_:(cur - 1);
      walk ()
    end
  in
  walk ()

let admit t =
  Faults.point "service.admit";
  Atomic.incr t.offered;
  if Atomic.get t.stage < 2 then begin
    Obs.service_admit ();
    true
  end
  else begin
    let pct = Atomic.get t.shed_pct in
    let ticket = Atomic.fetch_and_add t.ticket 1 in
    if ticket mod 100 < pct then begin
      Faults.point "service.shed";
      Obs.service_shed ~stage:(Atomic.get t.stage);
      Atomic.incr t.sheds;
      false
    end
    else begin
      Obs.service_admit ();
      true
    end
  end

let running t = match t.domain with Some _ -> true | None -> false

let start t =
  if running t then invalid_arg "Overload.start: already running";
  t.obs_was_enabled <- Obs.enabled ();
  if not t.obs_was_enabled then Obs.set_enabled true;
  Atomic.set t.stop_flag false;
  t.last <- Obs.Metrics.snapshot ();
  t.domain <-
    Some
      (Domain.spawn (fun () ->
           try
             while not (Atomic.get t.stop_flag) do
               (* Kill point: chaos can murder the controller here; the
                  last-good stage stays published in the atomics and the
                  service keeps running without backpressure updates. *)
               Faults.point "service.epoch";
               step t;
               Unix.sleepf t.epoch
             done
           with _ -> Atomic.incr t.errors))

let stop t =
  match t.domain with
  | None -> ()
  | Some d ->
      Atomic.set t.stop_flag true;
      Domain.join d;
      t.domain <- None;
      if not t.obs_was_enabled then Obs.set_enabled false
