type t = {
  title : string;
  columns : string list;
  mutable rows : (string * string list) list; (* newest first *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t ~label ~cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Report.add_row: cell count does not match columns";
  t.rows <- (label, cells) :: t.rows

let seconds s =
  if Float.is_nan s then "-"
  else if s >= 1.0 then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.0fus" (s *. 1e6)

let all_rows t = List.rev t.rows

let print ppf t =
  let header = "threads" :: t.columns in
  let body =
    List.map (fun (label, cells) -> label :: cells) (all_rows t)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) body)
      header
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let print_row row =
    let padded = List.map2 pad row widths in
    Format.fprintf ppf "  %s@." (String.concat "  " padded)
  in
  Format.fprintf ppf "%s@." t.title;
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row body

let csv ppf t =
  Format.fprintf ppf "# %s@." t.title;
  Format.fprintf ppf "threads,%s@." (String.concat "," t.columns);
  List.iter
    (fun (label, cells) ->
      Format.fprintf ppf "%s,%s@." label (String.concat "," cells))
    (all_rows t)
