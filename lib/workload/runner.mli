(** Multi-domain benchmark runner.

    Mirrors the paper's methodology (§5): [n] threads each perform a preset
    number of operations on a shared structure with no external work in
    between; we measure the wall-clock time for {e all} threads to finish,
    from a common barrier release. Results are the mean over [repeats]
    runs on fresh structure instances. *)

type measurement = {
  threads : int;
  seconds : float;  (** mean completion time *)
  std_dev : float;
  throughput : float;  (** total ops / mean seconds *)
  cas_per_op : float;
      (** CAS attempts on the shared structure per high-level operation,
          when the workload reports them; [nan] otherwise *)
}

val run :
  threads:int ->
  repeats:int ->
  ops_per_thread:int ->
  setup:(unit -> 'ctx) ->
  worker:('ctx -> thread:int -> ops:int -> unit) ->
  ?cas_total:('ctx -> int) ->
  ?teardown:('ctx -> unit) ->
  unit ->
  measurement
(** [setup] builds a fresh shared context per repeat; [worker ctx ~thread
    ~ops] is executed by each of the [threads] domains and must perform
    [ops] operations; [cas_total] reads the context's CAS counter after
    the run; [teardown] may validate or drain the context. Exceptions in
    workers are re-raised after all domains join. *)

val time : (unit -> unit) -> float
(** Wall-clock seconds of one call (monotonic). *)
