(** Multi-domain benchmark runner.

    Mirrors the paper's methodology (§5): [n] threads each perform a preset
    number of operations on a shared structure with no external work in
    between; we measure the wall-clock time for {e all} threads to finish,
    from a common barrier release. Results are the mean over [repeats]
    runs on fresh structure instances.

    {b Chaos mode.} Helper-based structures (combining, strong-FL
    evaluation) must survive losing a participant: passing [?chaos] makes
    one seeded victim thread per repeat either die mid-run (its domain
    raises {!Killed_worker} after a seeded prefix of its operations,
    leaving futures unforced and handles unflushed) or stall for a
    configured pause before resuming. Kills are expected failures: they
    are counted in [killed], not re-raised. Callers then re-check
    structure invariants — typically via [Conformance] — on the
    torn-down context.

    {b Recovery.} A worker may register an {e abandon hook} (typically
    its handle's [abandon], which swap-detaches pending windows and
    poisons un-applied futures) via {!set_abandon_hook}, and signal
    liveness via {!heartbeat}. When [?watchdog] is given, a watchdog
    domain polls every worker at that interval: a worker whose domain
    died (its lifecycle word reads Dead — set by the worker's own
    unwinding, never inferred) has its hook invoked exactly once, from
    the watchdog, while the run is still in flight; workers that
    heartbeat but go silent for a whole interval are counted in
    [stall_warnings] but never abandoned, since a stalled worker may
    resume and must keep its live windows. With or without a watchdog,
    the main thread sweeps after all joins and abandons any dead worker
    the watchdog did not get to, so teardown and conformance checks see
    poisoned futures, never indefinitely-pending ones. *)

type measurement = {
  threads : int;
  seconds : float;  (** mean completion time *)
  std_dev : float;
  throughput : float;  (** total ops / mean seconds *)
  cas_per_op : float;
      (** CAS attempts on the shared structure per high-level operation,
          when the workload reports them; [nan] otherwise *)
  minor_words_per_op : float;
      (** minor-heap words allocated per high-level operation, summed
          over all worker domains (mean over repeats) *)
  killed : int;
      (** chaos-mode worker deaths over all repeats; 0 without [?chaos] *)
  suppressed_failures : int;
      (** genuine worker failures beyond the first (re-raised) one *)
  stall_warnings : int;
      (** workers the watchdog saw heartbeat and then go silent for a
          whole interval while still running (at most one per worker per
          repeat); 0 without [?watchdog] *)
  poisoned : int;
      (** futures poisoned by abandon hooks over all repeats — the
          orphaned operations of dead workers *)
  recovered : int;
      (** dead workers whose abandon ran (hook or no-op), over all
          repeats; [recovered = killed] when every death was recovered *)
}

type chaos

val chaos : ?kill:bool -> ?stall:float -> seed:int -> unit -> chaos
(** A seeded fault plan. Each repeat draws one victim thread and a cut
    point in its operation sequence from [seed]; the victim then either
    dies there ([kill], default [true], chooses death vs stall per
    repeat) or sleeps [stall] seconds (default [0.005]) and resumes.
    Raises [Invalid_argument] if [stall < 0]. *)

exception Killed_worker of int
(** Raised inside a chaos victim's domain to simulate its death; the
    argument is the thread index. Counted by [run], never re-raised. *)

val heartbeat : unit -> unit
(** Bump the calling worker's liveness beat. Call once per operation (or
    batch); the watchdog flags a worker that beat at least once and then
    went silent for a whole interval. A no-op outside a [run] worker. *)

val set_abandon_hook : (unit -> int) -> unit
(** Register the calling worker's recovery hook for the current repeat —
    typically [fun () -> Handle.abandon h] for the handle the worker
    just created. The hook is invoked at most once, by the watchdog or
    the post-join sweep, and only after the worker's domain is known
    dead; its return value (futures poisoned) is accumulated into
    [poisoned]. A no-op outside a [run] worker. *)

val run :
  threads:int ->
  repeats:int ->
  ops_per_thread:int ->
  setup:(unit -> 'ctx) ->
  worker:('ctx -> thread:int -> ops:int -> unit) ->
  ?cas_total:('ctx -> int) ->
  ?teardown:('ctx -> unit) ->
  ?chaos:chaos ->
  ?plan:Faults.plan_step list ->
  ?watchdog:float ->
  unit ->
  measurement
(** [setup] builds a fresh shared context per repeat; [worker ctx ~thread
    ~ops] is executed by each of the [threads] domains and must perform
    [ops] operations; [cas_total] reads the context's CAS counter after
    the run; [teardown] may validate or drain the context and runs on
    {e every} path, including after worker failures. Exceptions in
    workers are re-raised after all domains join and teardown completes;
    only the first is re-raised, the rest are counted in
    [suppressed_failures] (and a note is printed to stderr). Chaos
    victims' {!Killed_worker} exceptions are counted in [killed] instead.
    [plan] is a scripted fault schedule ({!Faults.install_plan}) installed
    at the start of {e every} repeat and uninstalled — via
    {!Faults.uninstall_plan} under [Fun.protect] — on every exit path,
    including repeats whose workers died and were recovered by the
    watchdog and repeats aborted by a re-raised genuine failure, so a
    run never leaks its fault script into subsequent code.
    [watchdog] spawns a recovery domain polling worker liveness at that
    interval (seconds; must be positive) — see the module preamble.
    Note that a stalling victim calls [worker] twice in its domain
    (prefix and remainder), so workers must tolerate re-entry per thread
    (fresh handle, fresh slack window). *)

val time : (unit -> unit) -> float
(** Seconds of one call, measured on the monotonic clock ([Sync.Mono]) —
    immune to wall-clock jumps. *)
